// Reproduces paper Table III: NORA vs digital full precision on the
// LLaMA-2 / LLaMA-3 / Mistral stand-ins at the Table II operating point.
//
// Expected shape: <1.6-point loss for the LLaMA-like models and <1 point
// for the Mistral-like model. The naive analog column (not in the
// paper's table, included for context) drops far more.
//
//   ./table3_llms [--examples=N] [--lambda=F]
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const float lambda = static_cast<float>(cli.get_double("lambda", 0.5));

  std::printf("Table III — NORA accuracy for LLaMA/Mistral-like models "
              "(Table II settings, %d examples)\n\n", n_examples);

  const cim::TileConfig hw = cim::TileConfig::paper_table2();
  util::Table table({"model", "setting", "SynthLambada acc (%)"});
  for (const auto& m : model::other_family()) {
    const auto nora = bench::eval_analog(m, hw, /*nora=*/true, lambda, n_examples);
    const auto fp = bench::eval_digital(m, n_examples);
    const auto naive = bench::eval_analog(m, hw, /*nora=*/false, lambda, n_examples);
    table.add_row({m, "NORA (our method)", util::Table::pct(nora.accuracy)});
    table.add_row({m, "Digital full precision", util::Table::pct(fp.accuracy)});
    table.add_row({m, "(naive analog, for context)", util::Table::pct(naive.accuracy)});
  }
  table.print();
  table.write_csv("results/table3_llms.csv");
  std::printf("\npaper shape check: NORA within ~1.6 points of fp32 "
              "(Table III: 87.99/89.04, 81.33/82.92, 86.55/87.41).\n");
  return 0;
}
