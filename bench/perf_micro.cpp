// google-benchmark microbenchmarks of the simulator's hot paths: digital
// GEMM vs analog tile MVM at several sizes and noise configurations,
// plus the quantizer and Gaussian-sampling kernels.
//
// These don't reproduce a paper figure; they document the simulation
// cost model (how much each modelled non-ideality costs per MVM).
#include <benchmark/benchmark.h>

#include "cim/analog_matmul.hpp"
#include "noise/quantizer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

using namespace nora;

namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, 0.5f);
  return m;
}

void BM_DigitalGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 1);
  const Matrix x = random_matrix(8, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_DigitalGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_AnalogIdeal(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 3);
  const Matrix x = random_matrix(8, n, 4);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::ideal(), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_AnalogIdeal)->Arg(64)->Arg(128)->Arg(256);

void BM_AnalogTable2(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 6);
  const Matrix x = random_matrix(8, n, 7);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::paper_table2(), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_AnalogTable2)->Arg(64)->Arg(128)->Arg(256);

void BM_AnalogIrDropOnly(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 9);
  const Matrix x = random_matrix(8, n, 10);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::ideal_except_ir_drop(1.0f), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_AnalogIrDropOnly)->Arg(128);

void BM_TileProgramming(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 12);
  const cim::TileConfig cfg = cim::TileConfig::paper_table2();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cim::AnalogMatmul unit(w, {}, cfg, ++seed);
    benchmark::DoNotOptimize(&unit);
  }
}
BENCHMARK(BM_TileProgramming)->Arg(128)->Arg(512);

void BM_Quantizer(benchmark::State& state) {
  const auto q = noise::UniformQuantizer::from_bits(7, 1.0f);
  util::Rng rng(13);
  std::vector<float> xs(4096);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-1.5, 1.5));
  for (auto _ : state) {
    auto copy = xs;
    q.apply(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Quantizer);

void BM_GaussianSampling(benchmark::State& state) {
  util::Rng rng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.gaussian());
  }
}
BENCHMARK(BM_GaussianSampling);

}  // namespace

BENCHMARK_MAIN();
