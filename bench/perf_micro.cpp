// google-benchmark microbenchmarks of the simulator's hot paths: digital
// GEMM vs analog tile MVM at several sizes and noise configurations,
// plus the quantizer and Gaussian-sampling kernels.
//
// These don't reproduce a paper figure; they document the simulation
// cost model (how much each modelled non-ideality costs per MVM).
#include <benchmark/benchmark.h>

#include "cim/analog_matmul.hpp"
#include "noise/quantizer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace nora;

namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, 0.5f);
  return m;
}

void BM_DigitalGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 1);
  const Matrix x = random_matrix(8, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_DigitalGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_AnalogIdeal(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 3);
  const Matrix x = random_matrix(8, n, 4);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::ideal(), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_AnalogIdeal)->Arg(64)->Arg(128)->Arg(256);

void BM_AnalogTable2(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 6);
  const Matrix x = random_matrix(8, n, 7);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::paper_table2(), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_AnalogTable2)->Arg(64)->Arg(128)->Arg(256);

void BM_AnalogIrDropOnly(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 9);
  const Matrix x = random_matrix(8, n, 10);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::ideal_except_ir_drop(1.0f), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_AnalogIrDropOnly)->Arg(128);

void BM_TileProgramming(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Matrix w = random_matrix(n, n, 12);
  const cim::TileConfig cfg = cim::TileConfig::paper_table2();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cim::AnalogMatmul unit(w, {}, cfg, ++seed);
    benchmark::DoNotOptimize(&unit);
  }
}
BENCHMARK(BM_TileProgramming)->Arg(128)->Arg(512);

// Thread scaling of the deterministic parallel forward: a 1024x1024
// weight matrix (2x2 grid of 512x512 tiles) at 16 tokens, full
// paper_table2 noise. Output is bit-identical at every width (see
// tests/test_thread_invariance.cpp), so this measures pure speedup.
// Run with --benchmark_format=json to capture the table for
// EXPERIMENTS.md.
void BM_AnalogTable2ThreadScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  util::ThreadPool::global().resize(threads);
  const std::int64_t n = 1024;
  const Matrix w = random_matrix(n, n, 15);
  const Matrix x = random_matrix(16, n, 16);
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.n_threads = threads;
  cim::AnalogMatmul unit(w, {}, cfg, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16 * n * n);
  state.counters["threads"] = threads;
  util::ThreadPool::global().resize(1);
}
BENCHMARK(BM_AnalogTable2ThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Digital GEMM thread scaling (tensor/ops.cpp row-parallel dispatch).
void BM_DigitalGemmThreadScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  util::ThreadPool::global().resize(threads);
  const std::int64_t n = 512;
  const Matrix w = random_matrix(n, n, 18);
  const Matrix x = random_matrix(64, n, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 64 * n * n);
  state.counters["threads"] = threads;
  util::ThreadPool::global().resize(1);
}
BENCHMARK(BM_DigitalGemmThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_Quantizer(benchmark::State& state) {
  const auto q = noise::UniformQuantizer::from_bits(7, 1.0f);
  util::Rng rng(13);
  std::vector<float> xs(4096);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-1.5, 1.5));
  for (auto _ : state) {
    auto copy = xs;
    q.apply(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Quantizer);

void BM_GaussianSampling(benchmark::State& state) {
  util::Rng rng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.gaussian());
  }
}
BENCHMARK(BM_GaussianSampling);

}  // namespace

BENCHMARK_MAIN();
