// Hard-fault ablation: accuracy vs device fault rate for naive vs NORA
// mappings, with and without the fault-tolerance machinery (spare-column
// remapping, program-verify-reprogram, per-layer health check with
// digital fallback).
//
// The paper's noise model assumes every device works; this bench asks
// the question it leaves open — does NORA's rescaling survive *hard*
// faults (stuck-at devices, dead bitlines, yield loss), and how much of
// the loss does architectural repair claw back?
//
// At each fault rate r the device fault mix is 80% stuck-at-zero / 20%
// stuck-at-gmax plus a dead-bitline rate of r/4; the "repair" columns
// enable 16 spare columns per tile, 3 program-verify retries, and the
// health policy (fault-density + ADC-saturation thresholds + non-finite
// guard) that degrades unsalvageable layers to the digital path.
//
//   ./ablation_faults [--examples=N] [--model=name]
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {

core::DeployOptions make_opts(double rate, bool nora, float lambda,
                              bool repair) {
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::paper_table2();
  opts.tile.faults.stuck_zero_rate = static_cast<float>(0.8 * rate);
  opts.tile.faults.stuck_gmax_rate = static_cast<float>(0.2 * rate);
  opts.tile.faults.dead_col_rate = static_cast<float>(rate / 4.0);
  opts.nora.enabled = nora;
  opts.nora.lambda = lambda;
  if (repair) {
    opts.tile.spare_cols = 16;
    opts.tile.spare_remap_threshold = 0.05f;
    opts.tile.max_program_retries = 3;
    opts.health.enabled = true;
    opts.health.max_residual_fault_fraction = 0.05f;
    opts.health.max_adc_saturation_rate = 0.5f;
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 96));
  const std::string m = cli.get("model", "opt-1.3b-sim");
  const float lambda = 0.5f;

  const auto fp = bench::eval_digital(m, n_examples);
  std::printf("Hard-fault ablation, model %s (fp32 %.2f%%, %d examples)\n\n",
              m.c_str(), 100.0 * fp.accuracy, n_examples);

  util::Table t({"fault rate", "naive (%)", "naive+repair (%)", "NORA (%)",
                 "NORA+repair (%)", "fallback layers"});
  faults::DeploymentReport last_report;
  for (const double rate : {0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05}) {
    const auto naive =
        bench::eval_analog_deploy(m, make_opts(rate, false, lambda, false),
                                  n_examples);
    faults::DeploymentReport rep_naive;
    const auto naive_rep =
        bench::eval_analog_deploy(m, make_opts(rate, false, lambda, true),
                                  n_examples, &rep_naive);
    const auto nora =
        bench::eval_analog_deploy(m, make_opts(rate, true, lambda, false),
                                  n_examples);
    faults::DeploymentReport rep_nora;
    const auto nora_rep =
        bench::eval_analog_deploy(m, make_opts(rate, true, lambda, true),
                                  n_examples, &rep_nora);
    t.add_row({util::Table::num(rate, 4), util::Table::pct(naive.accuracy),
               util::Table::pct(naive_rep.accuracy),
               util::Table::pct(nora.accuracy),
               util::Table::pct(nora_rep.accuracy),
               std::to_string(rep_naive.digital_fallbacks()) + " / " +
                   std::to_string(rep_nora.digital_fallbacks())});
    last_report = rep_nora;
  }
  t.print("accuracy vs device fault rate (repair = spares + reprogram + "
          "health fallback; fallbacks: naive / NORA):");
  t.write_csv("results/ablation_faults.csv");

  std::printf("\nNORA+repair deployment report at the highest fault rate:\n%s",
              last_report.to_string().c_str());
  std::printf("\nshape check: accuracy decays monotonically with fault rate; "
              "repair holds accuracy at moderate rates; at extreme rates the "
              "health check degrades layers to digital instead of emitting "
              "garbage.\n");
  return 0;
}
