// Ablation (paper future work): the migration-strength exponent lambda
// in s_k = max|x_k|^lambda / max|w_k|^(1-lambda).
//
// lambda = 0 ignores activations entirely; lambda = 1 moves the whole
// burden onto the weights. The paper follows SmoothQuant's default 0.5;
// this sweep shows accuracy across the range at the Table II operating
// point. Expected shape: a broad optimum around 0.5; the extremes
// under-correct (0) or inflate weight ranges (1).
//
//   ./ablation_lambda [--examples=N] [--models=a,b]
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const auto models = cli.has("models")
                          ? parse_models(cli.get("models", ""))
                          : std::vector<std::string>{"opt-2.7b-sim",
                                                     "llama3-8b-sim"};
  std::printf("Ablation — NORA migration strength lambda (Table II settings "
              "hardened to 5-bit converters so the optimum is visible, "
              "%d examples)\n\n", n_examples);

  cim::TileConfig hw = cim::TileConfig::paper_table2();
  hw.dac_bits = 5;
  hw.adc_bits = 5;
  hw.out_noise = 0.08f;
  const std::vector<float> lambdas{0.0f, 0.25f, 0.5f, 0.75f, 1.0f};
  util::Table table([&] {
    std::vector<std::string> hdr{"model", "fp32 (%)", "naive (%)"};
    for (const float l : lambdas) {
      hdr.push_back("NORA l=" + util::Table::num(l, 2));
    }
    return hdr;
  }());
  for (const auto& m : models) {
    const auto fp = bench::eval_digital(m, n_examples);
    const auto naive = bench::eval_analog(m, hw, false, 0.5f, n_examples);
    std::vector<std::string> row{m, util::Table::pct(fp.accuracy),
                                 util::Table::pct(naive.accuracy)};
    for (const float l : lambdas) {
      const auto r = bench::eval_analog(m, hw, true, l, n_examples);
      row.push_back(util::Table::pct(r.accuracy));
    }
    table.add_row(std::move(row));
  }
  table.print();
  table.write_csv("results/ablation_lambda.csv");
  return 0;
}
