// Ablation (paper future work: "per-layer evaluation"): which layers'
// analog conversion costs accuracy, and where NORA's rescale matters.
//
// Deploys the linear layers of ONE transformer block at a time to the
// analog backend (Table II settings) while every other layer stays
// digital fp32, for both the naive and NORA mappings; then the LM head
// alone. Expected shape: early blocks (whose activations feed everything
// downstream) and outlier-facing projections dominate the loss.
//
//   ./ablation_per_layer [--examples=N] [--model=name]
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {

double eval_partial(const model::ModelSpec& spec, const std::string& prefix,
                    bool nora, int n_examples) {
  auto model = model::get_or_train(spec, /*verbose=*/false);
  const eval::SynthLambada task(spec.task);
  const auto cals = core::calibrate(*model, task, 32);
  const auto linears = model->linear_layers();
  const cim::TileConfig hw = cim::TileConfig::paper_table2();
  for (std::size_t i = 0; i < linears.size(); ++i) {
    if (linears[i]->name().rfind(prefix, 0) != 0) continue;
    std::vector<float> s;
    if (nora) s = core::smoothing_vector(cals[i], 0.5f, 1e-3f);
    linears[i]->to_analog(hw, std::move(s),
                          util::derive_seed(2025, linears[i]->name()));
  }
  eval::EvalOptions eo;
  eo.n_examples = n_examples;
  return eval::evaluate(*model, task, eo).accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const std::string name = cli.get("model", "opt-6.7b-sim");
  const model::ModelSpec spec = model::spec_by_name(name);

  const auto fp = bench::eval_digital(name, n_examples);
  std::printf("Ablation — per-layer analog conversion, model %s "
              "(fp32 %.2f%%, %d examples)\n\n",
              name.c_str(), 100.0 * fp.accuracy, n_examples);

  std::vector<std::string> prefixes;
  for (std::int64_t l = 0; l < spec.arch.n_layers; ++l) {
    prefixes.push_back("blk" + std::to_string(l) + ".");
  }
  prefixes.push_back("lm_head");

  util::Table table({"analog subset", "naive (%)", "naive drop",
                     "NORA (%)", "NORA drop"});
  for (const auto& prefix : prefixes) {
    const double naive = eval_partial(spec, prefix, false, n_examples);
    const double nora = eval_partial(spec, prefix, true, n_examples);
    table.add_row({prefix, util::Table::pct(naive),
                   util::Table::pct(fp.accuracy - naive), util::Table::pct(nora),
                   util::Table::pct(fp.accuracy - nora)});
  }
  // Whole model, for reference.
  const auto all_naive = bench::eval_analog(
      name, cim::TileConfig::paper_table2(), false, 0.5f, n_examples);
  const auto all_nora = bench::eval_analog(
      name, cim::TileConfig::paper_table2(), true, 0.5f, n_examples);
  table.add_row({"(all layers)", util::Table::pct(all_naive.accuracy),
                 util::Table::pct(fp.accuracy - all_naive.accuracy),
                 util::Table::pct(all_nora.accuracy),
                 util::Table::pct(fp.accuracy - all_nora.accuracy)});
  table.print();
  table.write_csv("results/ablation_per_layer.csv");
  return 0;
}
