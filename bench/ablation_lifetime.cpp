// Lifetime robustness: accuracy of an analog-deployed model over
// simulated serving time (1 s -> 1 month of PCM drift + growing 1/f read
// noise), under the three refresh policies of runtime::IntegrityMonitor:
//
//   never     deploy once and let drift run (the naive baseline)
//   periodic  blind refresh of every layer each --period seconds
//   watchdog  ABFT-checksum + ADC-saturation watchdog walking the
//             re-read -> refresh -> digital-fallback escalation ladder
//
// for the naive and NORA mappings. Each serving horizon runs evaluation
// traffic, lets the monitor inspect the window (watchdog actions happen
// here), and repeats until the monitor takes no further action — so the
// reported accuracy is the post-repair steady state an operator would
// see. Refresh / re-read / fallback counts are reported per policy and,
// for the watchdog, per layer.
//
//   ./ablation_lifetime [--examples=N] [--models=a,b] [--period=SECONDS]
//                       [--smoke]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/evaluator.hpp"
#include "runtime/integrity_monitor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {

std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

struct Horizon {
  const char* label;
  float t_seconds;
};

struct LifetimeRow {
  std::vector<double> accuracy;  // one per horizon
  std::int64_t rereads = 0;
  std::int64_t refreshes = 0;
  int fallbacks = 0;
  std::string per_layer;  // per-layer runtime report (watchdog only)
};

LifetimeRow run_lifetime(const std::string& name, bool nora,
                         runtime::RefreshPolicy policy, float period_s,
                         const std::vector<Horizon>& horizons,
                         int n_examples) {
  const model::ModelSpec spec = model::spec_by_name(name);
  auto model = model::get_or_train(spec, /*verbose=*/false);
  const eval::SynthLambada task(spec.task);

  core::DeployOptions opts;
  opts.tile = cim::TileConfig::paper_table2();
  opts.tile.drift_enabled = true;
  opts.tile.drift.sigma_1f = 0.01f;  // 1/f read noise grows with time
  opts.tile.abft_checksum = true;    // one checksum column per tile
  opts.nora.enabled = nora;
  faults::DeploymentReport report;
  core::deploy_analog(*model, task, opts, &report);

  runtime::MonitorConfig mc;
  mc.policy = policy;
  mc.refresh_period_s = period_s;
  runtime::IntegrityMonitor monitor(*model, opts.seed, mc, &report);

  eval::EvalOptions eo;
  eo.n_examples = n_examples;

  LifetimeRow row;
  for (const Horizon& h : horizons) {
    monitor.advance_to(h.t_seconds);
    // Serve traffic, let the monitor inspect the window, and repeat
    // while it keeps acting (the escalation ladder needs one window per
    // rung); the recorded accuracy is the post-repair steady state.
    double acc = 0.0;
    for (int round = 0; round < 4; ++round) {
      acc = eval::evaluate(*model, task, eo).accuracy;
      if (monitor.inspect() == 0) break;
    }
    row.accuracy.push_back(acc);
  }
  row.rereads = monitor.total_rereads();
  row.refreshes = monitor.total_refreshes();
  row.fallbacks = monitor.total_fallbacks();
  if (policy == runtime::RefreshPolicy::kWatchdog) {
    row.per_layer = report.to_string();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const int n_examples =
      static_cast<int>(cli.get_int("examples", smoke ? 16 : 96));
  const float period_s =
      static_cast<float>(cli.get_double("period", 604800.0));  // 1 week
  const auto models = cli.has("models")
                          ? parse_models(cli.get("models", ""))
                          : std::vector<std::string>{"llama3-8b-sim"};
  const std::vector<Horizon> horizons =
      smoke ? std::vector<Horizon>{{"t=1min", 60.0f},
                                   {"t=24h", 86400.0f},
                                   {"t=1mo", 2592000.0f}}
            : std::vector<Horizon>{{"t=1s", 1.0f},
                                   {"t=1min", 60.0f},
                                   {"t=1h", 3600.0f},
                                   {"t=24h", 86400.0f},
                                   {"t=1w", 604800.0f},
                                   {"t=1mo", 2592000.0f}};

  std::printf(
      "Ablation — lifetime robustness: accuracy over serving time under "
      "refresh policies\n(Table II + drift + 1/f read noise, ABFT checksum "
      "columns on, %d examples%s)\n\n",
      n_examples, smoke ? ", smoke" : "");

  std::vector<std::string> hdr{"model", "mapping", "policy"};
  for (const Horizon& h : horizons) hdr.push_back(std::string(h.label) + " (%)");
  hdr.insert(hdr.end(), {"rereads", "refreshes", "fallbacks"});
  util::Table table(std::move(hdr));

  std::string watchdog_reports;
  bool recovery_ok = true;
  for (const auto& m : models) {
    for (const bool nora : {false, true}) {
      double acc_first_never = 0.0, acc_last_never = 0.0, acc_last_watchdog = 0.0;
      for (const auto policy : {runtime::RefreshPolicy::kNever,
                                runtime::RefreshPolicy::kPeriodic,
                                runtime::RefreshPolicy::kWatchdog}) {
        const LifetimeRow r =
            run_lifetime(m, nora, policy, period_s, horizons, n_examples);
        std::vector<std::string> cells{m, nora ? "NORA" : "naive",
                                       runtime::to_string(policy)};
        for (double a : r.accuracy) cells.push_back(util::Table::pct(a));
        cells.push_back(std::to_string(r.rereads));
        cells.push_back(std::to_string(r.refreshes));
        cells.push_back(std::to_string(r.fallbacks));
        table.add_row(std::move(cells));
        if (policy == runtime::RefreshPolicy::kNever) {
          acc_first_never = r.accuracy.front();
          acc_last_never = r.accuracy.back();
        }
        if (policy == runtime::RefreshPolicy::kWatchdog) {
          acc_last_watchdog = r.accuracy.back();
        }
        if (!r.per_layer.empty()) {
          watchdog_reports += m + std::string(nora ? " NORA" : " naive") +
                              " watchdog per-layer service record:\n" +
                              r.per_layer + "\n";
        }
      }
      // Acceptance check: at the longest horizon the watchdog should
      // recover at least half of what the never-refresh policy lost.
      const double lost = acc_first_never - acc_last_never;
      const double recovered = acc_last_watchdog - acc_last_never;
      if (lost > 0.01 && recovered < 0.5 * lost) recovery_ok = false;
      std::printf("%s %s: never-policy loses %.1f pts by %s; watchdog "
                  "recovers %.1f pts\n",
                  m.c_str(), nora ? "NORA" : "naive", 100.0 * lost,
                  horizons.back().label, 100.0 * recovered);
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv("results/ablation_lifetime.csv");
  std::printf("\n%s", watchdog_reports.c_str());
  std::printf("recovery criterion (watchdog >= half of never-refresh loss "
              "at %s): %s\n",
              horizons.back().label, recovery_ok ? "PASS" : "FAIL");
  return recovery_ok ? 0 : 1;
}
