// Multi-chip sharding ablation: tensor/pipeline parallelism over the
// simulated chip fabric, swept at 1/2/4/8 chips on the zoo model.
//
// Phase 1 (chip invariance, criterion): the same serving workload runs
// under tensor-parallel plans of every chip count; tokens AND logits
// must be bit-identical. Sharded execution repartitions the identical
// (token, row-block, tile) work items and reduces them in a canonical
// order, so chip count — like host thread count — must never change a
// single bit.
//
// Phase 2 (throughput scaling, criterion): a saturated decode batch is
// served with the pipelined multi-chip replay under the cost-model
// placement for each chip budget. Simulated time must scale: >= 1.6x at
// 2 chips and >= 2.5x at 4 chips over the 1-chip plan.
//
// Phase 3 (placement quality, criterion): the cost-model-driven plan
// (exhaustive stage partition x tensor-parallel widths, scored on the
// SAME pipelined replay the scheduler uses) must beat naive round-robin
// block placement on mean simulated TTFT at the full chip budget.
//
//   ./ablation_shard [--smoke] [--batch=16] [--tokens=8]
//                    [--out=results/ablation_shard.json]
//                    [--chip-link-ns=20] [--chip-link-bytes-per-ns=32] ...
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cim/tile_config.hpp"
#include "core/nora.hpp"
#include "cost/device_costs_cli.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "nn/transformer.hpp"
#include "serve/scheduler.hpp"
#include "shard/apply.hpp"
#include "shard/chip_set.hpp"
#include "shard/plan.hpp"
#include "timing/hw_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace nora;

namespace {

/// 4x16 tiles on the zoo model's d_model=64 layers: qkv spans a 16x12
/// grid, down-proj 64x4 — multi-tile grids on BOTH axes, so both shard
/// axes have real extents, and the deep row-block stacks keep the
/// ADC-serialized (row-split-scalable) share of each op's latency well
/// above the fixed DAC/link/attention overheads. Noise + ABFT stay on:
/// the invariance claim is about the noisy operating point, not an
/// ideal array.
cim::TileConfig bench_tiles() {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 4;
  cfg.tile_cols = 16;
  cfg.in_noise = 0.02f;
  cfg.abft_checksum = true;
  cfg.n_threads = 1;
  return cfg;
}

std::vector<std::vector<int>> make_prompts(int n, int vocab) {
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < n; ++i) {
    const int len = 8 + (i % 3) * 3;  // 8 / 11 / 14 tokens
    std::vector<int> p;
    for (int t = 0; t < len; ++t) p.push_back((7 * i + 3 * t) % vocab);
    prompts.push_back(std::move(p));
  }
  return prompts;
}

struct SimRun {
  std::int64_t sim_ps = 0;
  double mean_sim_ttft_us = 0.0;
  std::int64_t link_transfers = 0;
  std::vector<std::vector<int>> tokens;
  std::vector<std::vector<std::vector<float>>> logits;  // per req, per tok
};

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Serve `prompts` (all submitted up front — a saturated batch) under
/// whatever shard plan is currently applied to the model, with the
/// multi-chip pipelined replay driving the simulated clock.
SimRun run_serve(nn::TransformerLM& model,
                 const std::vector<std::vector<int>>& prompts, int n_tokens,
                 const timing::TimingConfig& sim_cfg, bool record_logits) {
  serve::SchedulerConfig cfg;
  cfg.max_batch = static_cast<int>(prompts.size());
  cfg.seed = 913;
  cfg.timing = sim_cfg;
  cfg.shard_replay = true;
  cfg.record_logits = record_logits;
  serve::Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    serve::RequestParams p;
    p.prompt = prompts[i];
    p.max_new_tokens = n_tokens;
    p.stream_seed = 1000 + i;  // keyed streams: plan-invariant outputs
    ids.push_back(sched.submit(std::move(p)));
  }
  sched.run_until_idle();
  SimRun r;
  const serve::Metrics m = sched.metrics();
  r.sim_ps = m.sim_time_ps;
  r.mean_sim_ttft_us = mean(m.sim_ttft_us);
  r.link_transfers = m.sim_link_transfers;
  for (const auto id : ids) {
    const serve::RequestRecord rec = sched.request(id);
    r.tokens.push_back(rec.tokens);
    if (record_logits) r.logits.push_back(rec.logits);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const int batch = static_cast<int>(cli.get_int("batch", 24));
  const int n_tokens = static_cast<int>(cli.get_int("tokens", smoke ? 4 : 8));
  const std::string out_path = cli.get("out", "results/ablation_shard.json");
  timing::TimingConfig sim_cfg;
  sim_cfg.enabled = true;
  sim_cfg.pipeline_depth = 4;
  sim_cfg.costs = cost::device_costs_from_cli(cli);
  cli.check_unknown();
  util::ThreadPool::global().resize(1);

  // Zoo model, analog-deployed with multi-tile grids.
  const model::ModelSpec spec = model::spec_by_name("opt-1.3b-sim");
  auto model = model::get_or_train(spec, /*verbose=*/false);
  const eval::SynthLambada task{spec.task};
  core::DeployOptions opts;
  opts.tile = bench_tiles();
  opts.seed = 4040;
  core::deploy_analog(*model, task, opts);
  const int n_blocks = static_cast<int>(model->blocks().size());
  std::printf("Multi-chip sharding ablation — %s (%d blocks), batch %d x %d "
              "tokens, link %.0f ns + %.0f B/ns%s\n\n",
              spec.name.c_str(), n_blocks, batch, n_tokens,
              sim_cfg.costs.chip_link_latency_ns,
              sim_cfg.costs.chip_link_bytes_per_ns, smoke ? " (smoke)" : "");

  const std::vector<int> chip_counts{1, 2, 4, 8};
  const auto prompts = make_prompts(batch, static_cast<int>(
                                               spec.arch.vocab_size));
  const timing::HwModel hw(sim_cfg);
  // One chip set sized for the largest sweep point; smaller plans use a
  // prefix of its pools (the set must outlive every installed plan).
  shard::ChipSet chips(chip_counts.back(), 1);

  // --- phase 1: chip invariance (bit-identical outputs) --------------
  // Tensor-parallel plans sweep the chip count over the SAME workload;
  // a small request set with logits recording keeps the comparison
  // payload meaningful but cheap.
  const auto inv_prompts = make_prompts(4, static_cast<int>(
                                               spec.arch.vocab_size));
  bool bits_ok = true;
  SimRun inv_ref;
  for (const int n_chips : chip_counts) {
    shard::apply_plan(*model, chips,
                      shard::plan_tensor_parallel(n_blocks, n_chips));
    const SimRun r = run_serve(*model, inv_prompts, n_tokens, sim_cfg,
                               /*record_logits=*/true);
    if (n_chips == 1) {
      inv_ref = r;
    } else {
      const bool same = r.tokens == inv_ref.tokens &&
                        r.logits == inv_ref.logits;
      bits_ok = bits_ok && same;
      std::printf("chip invariance at %d chips: tokens %s, logits %s\n",
                  n_chips, r.tokens == inv_ref.tokens ? "identical" : "DIFFER",
                  r.logits == inv_ref.logits ? "bit-identical" : "DIFFER");
    }
  }
  std::printf("\n");

  // --- phase 2: simulated-throughput scaling -------------------------
  struct ChipResult {
    int chips = 0;
    std::string plan;
    std::int64_t sim_ps = 0;
    double speedup = 1.0;
    double ttft_us = 0.0;
    std::int64_t link_transfers = 0;
  };
  std::vector<ChipResult> results;
  std::int64_t base_ps = 0;
  for (const int n_chips : chip_counts) {
    const shard::PipelinePlan plan = shard::plan_cost_model(
        *model, hw, n_chips, /*microbatches=*/batch);
    shard::apply_plan(*model, chips, plan);
    const SimRun r = run_serve(*model, prompts, n_tokens, sim_cfg,
                               /*record_logits=*/false);
    if (n_chips == 1) base_ps = r.sim_ps;
    ChipResult cr;
    cr.chips = n_chips;
    cr.plan = plan.to_string();
    cr.sim_ps = r.sim_ps;
    cr.speedup = r.sim_ps > 0
                     ? static_cast<double>(base_ps) /
                           static_cast<double>(r.sim_ps)
                     : 0.0;
    cr.ttft_us = r.mean_sim_ttft_us;
    cr.link_transfers = r.link_transfers;
    results.push_back(std::move(cr));
  }
  util::Table ttable({"chips", "placement", "sim time (us)", "speedup",
                      "mean sim TTFT (us)", "link transfers"});
  for (const auto& cr : results) {
    ttable.add_row({std::to_string(cr.chips), cr.plan,
                    util::Table::num(static_cast<double>(cr.sim_ps) * 1e-6, 1),
                    util::Table::num(cr.speedup, 2),
                    util::Table::num(cr.ttft_us, 1),
                    std::to_string(cr.link_transfers)});
  }
  std::printf("cost-model placement per chip budget (saturated batch of %d, "
              "pipelined multi-chip replay):\n",
              batch);
  ttable.print();

  // --- phase 3: placement quality vs round-robin ---------------------
  const int full = chip_counts.back() / 2;  // 4 chips: both plans fit
  const shard::PipelinePlan dp_plan =
      shard::plan_cost_model(*model, hw, full, batch);
  const shard::PipelinePlan rr_plan = shard::plan_round_robin(n_blocks, full);
  shard::apply_plan(*model, chips, dp_plan);
  const SimRun dp = run_serve(*model, prompts, n_tokens, sim_cfg, false);
  shard::apply_plan(*model, chips, rr_plan);
  const SimRun rr = run_serve(*model, prompts, n_tokens, sim_cfg, false);
  shard::clear_plan(*model);
  std::printf("\nplacement quality at %d chips (mean sim TTFT):\n", full);
  std::printf("  cost-model %-32s %10.1f us\n", dp_plan.to_string().c_str(),
              dp.mean_sim_ttft_us);
  std::printf("  round-robin %-31s %10.1f us\n", rr_plan.to_string().c_str(),
              rr.mean_sim_ttft_us);

  // --- acceptance ----------------------------------------------------
  double speed2 = 0.0, speed4 = 0.0;
  for (const auto& cr : results) {
    if (cr.chips == 2) speed2 = cr.speedup;
    if (cr.chips == 4) speed4 = cr.speedup;
  }
  const bool scale2 = speed2 >= 1.6;
  const bool scale4 = speed4 >= 2.5;
  const bool placement = dp.mean_sim_ttft_us < rr.mean_sim_ttft_us;
  std::printf("\nchip-invariance criterion (bit-identical tokens+logits at "
              "1/2/4/8 chips): %s\n",
              bits_ok ? "PASS" : "FAIL");
  std::printf("throughput criterion (>= 1.6x at 2 chips): %.2fx — %s\n",
              speed2, scale2 ? "PASS" : "FAIL");
  std::printf("throughput criterion (>= 2.5x at 4 chips): %.2fx — %s\n",
              speed4, scale4 ? "PASS" : "FAIL");
  std::printf("placement criterion (cost model beats round-robin on sim "
              "TTFT): %s\n",
              placement ? "PASS" : "FAIL");

  if (!out_path.empty()) {
    std::string rows;
    for (const auto& cr : results) {
      char entry[256];
      std::snprintf(entry, sizeof(entry),
                    "%s{\"chips\":%d,\"plan\":\"%s\",\"sim_ps\":%lld,"
                    "\"speedup\":%.6g,\"mean_sim_ttft_us\":%.6g}",
                    rows.empty() ? "" : ",", cr.chips, cr.plan.c_str(),
                    static_cast<long long>(cr.sim_ps), cr.speedup,
                    cr.ttft_us);
      rows += entry;
    }
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "{\"model\":\"%s\",\"batch\":%d,\"tokens\":%d,"
                  "\"chips\":[%s],\"bits_identical\":%s,"
                  "\"dp_mean_sim_ttft_us\":%.6g,"
                  "\"rr_mean_sim_ttft_us\":%.6g}",
                  spec.name.c_str(), batch, n_tokens, rows.c_str(),
                  bits_ok ? "true" : "false", dp.mean_sim_ttft_us,
                  rr.mean_sim_ttft_us);
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", buf);
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "WARNING: cannot write %s\n", out_path.c_str());
    }
  }

  const bool ok = bits_ok && scale2 && scale4 && placement;
  return ok ? 0 : 1;
}
