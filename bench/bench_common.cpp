#include "bench_common.hpp"

#include "noise/mse_calibrator.hpp"

namespace nora::bench {

std::vector<NoiseKnob> fig3_knobs() {
  using cim::TileConfig;
  std::vector<NoiseKnob> knobs;
  // (a) ADC quantization: the knob is "coarseness" = 256 / steps, so the
  // MSE is monotone increasing in the parameter.
  knobs.push_back({"adc-quantization", "IO", [](double p) {
                     TileConfig c = TileConfig::ideal();
                     c.adc_steps_override =
                         static_cast<float>(std::max(2.0, 256.0 / p));
                     c.adc_bits = 1;  // enable; override supplies steps
                     return c;
                   }});
  // (b) DAC quantization.
  knobs.push_back({"dac-quantization", "IO", [](double p) {
                     TileConfig c = TileConfig::ideal();
                     c.dac_steps_override =
                         static_cast<float>(std::max(2.0, 256.0 / p));
                     c.dac_bits = 1;
                     return c;
                   }});
  // (c) Additive output noise (system Gaussian, before the ADC).
  knobs.push_back({"additive-output-noise", "IO", [](double p) {
                     return TileConfig::ideal_except_out_noise(
                         static_cast<float>(p));
                   }});
  // (d) Additive input noise (system Gaussian, after the DAC).
  knobs.push_back({"additive-input-noise", "IO", [](double p) {
                     return TileConfig::ideal_except_in_noise(
                         static_cast<float>(p));
                   }});
  // (e) IR-drop.
  knobs.push_back({"ir-drop", "tile", [](double p) {
                     return TileConfig::ideal_except_ir_drop(
                         static_cast<float>(p));
                   }});
  // (f) Short-term weight read noise.
  knobs.push_back({"short-term-read-noise", "tile", [](double p) {
                     return TileConfig::ideal_except_w_noise(
                         static_cast<float>(p));
                   }});
  // (g) S-shape nonlinearity.
  knobs.push_back({"s-shape-nonlinearity", "IO", [](double p) {
                     return TileConfig::ideal_except_sshape(
                         static_cast<float>(p));
                   }});
  // (h) Programming noise.
  knobs.push_back({"programming-noise", "tile", [](double p) {
                     return TileConfig::ideal_except_prog_noise(
                         static_cast<float>(p));
                   }});
  return knobs;
}

double solve_level(const NoiseKnob& knob, double target_mse) {
  cim::MseProbeOptions probe;
  probe.k = 128;
  probe.n = 128;
  probe.t = 16;
  const noise::MseCalibrator cal(cim::mse_of_knob(knob.make, probe));
  return cal.solve(target_mse);
}

DeployedEval eval_digital(const std::string& model_name, int n_examples) {
  const model::ModelSpec spec = model::spec_by_name(model_name);
  auto model = model::get_or_train(spec, /*verbose=*/true);
  const eval::SynthLambada task(spec.task);
  eval::EvalOptions eo;
  eo.n_examples = n_examples;
  const auto r = eval::evaluate(*model, task, eo);
  return {r.accuracy, r.avg_loss, 0.0};
}

DeployedEval eval_analog(const std::string& model_name,
                         const cim::TileConfig& tile, bool nora, float lambda,
                         int n_examples) {
  core::DeployOptions opts;
  opts.tile = tile;
  opts.nora.enabled = nora;
  opts.nora.lambda = lambda;
  return eval_analog_deploy(model_name, opts, n_examples);
}

DeployedEval eval_analog_deploy(const std::string& model_name,
                                const core::DeployOptions& opts,
                                int n_examples,
                                faults::DeploymentReport* report) {
  const model::ModelSpec spec = model::spec_by_name(model_name);
  auto model = model::get_or_train(spec, /*verbose=*/false);
  const eval::SynthLambada task(spec.task);
  core::deploy_analog(*model, task, opts, report);
  eval::EvalOptions eo;
  eo.n_examples = n_examples;
  const auto r = eval::evaluate(*model, task, eo);
  DeployedEval out{r.accuracy, r.avg_loss, 0.0};
  double agg = 0.0;
  int count = 0;
  for (const auto& st : core::scaling_factor_stats(*model)) {
    agg += st.alpha_gamma_gmax;
    ++count;
  }
  if (count > 0) out.mean_alpha_gamma_gmax = agg / count;
  return out;
}

}  // namespace nora::bench
