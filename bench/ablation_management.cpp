// Ablation (paper Sec. II-A / Fig. 1 "Challenge 2"): the classic
// noise/bound management techniques of [Gokmen'17, Rasch'23] vs NORA.
//
// The paper argues those dynamic input-scaling techniques, effective on
// conventional DNNs, become ineffective for LLMs because outlier-heavy
// inputs leave no good alpha: per-token abs-max kills resolution,
// average-abs-max clips outliers, and iterative bound management only
// fixes ADC saturation, not input resolution.
//
//   ./ablation_management [--examples=N] [--models=a,b]
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const auto models = cli.has("models")
                          ? parse_models(cli.get("models", ""))
                          : std::vector<std::string>{"opt-6.7b-sim",
                                                     "mistral-7b-sim"};

  std::printf("Ablation — input management baselines vs NORA "
              "(Table II settings, %d examples)\n\n", n_examples);

  struct Setting {
    const char* label;
    cim::InputScaling scaling;
    bool bound_management;
    bool nora;
  };
  const std::vector<Setting> settings{
      {"naive (per-token abs-max) [Eq.5]", cim::InputScaling::kAbsMax, false, false},
      {"noise management (avg abs-max)", cim::InputScaling::kAvgAbsMax, false, false},
      {"bound management (iterative)", cim::InputScaling::kAbsMax, true, false},
      {"NM + BM", cim::InputScaling::kAvgAbsMax, true, false},
      {"NORA (ours)", cim::InputScaling::kAbsMax, false, true},
      {"NORA + BM", cim::InputScaling::kAbsMax, true, true},
  };

  util::Table table([&] {
    std::vector<std::string> hdr{"setting"};
    for (const auto& m : models) hdr.push_back(m + " (%)");
    return hdr;
  }());
  std::vector<std::string> fp_row{"digital fp32"};
  for (const auto& m : models) {
    fp_row.push_back(util::Table::pct(bench::eval_digital(m, n_examples).accuracy));
  }
  table.add_row(std::move(fp_row));
  for (const auto& s : settings) {
    std::vector<std::string> row{s.label};
    for (const auto& m : models) {
      cim::TileConfig hw = cim::TileConfig::paper_table2();
      hw.scaling = s.scaling;
      hw.bound_management = s.bound_management;
      const auto r = bench::eval_analog(m, hw, s.nora, 0.5f, n_examples);
      row.push_back(util::Table::pct(r.accuracy));
    }
    table.add_row(std::move(row));
  }
  table.print();
  table.write_csv("results/ablation_management.csv");
  std::printf("\npaper shape check: NM/BM help little on LLM-like "
              "distributions; NORA dominates.\n");
  return 0;
}
