// Open-loop load generator for the HTTP serving front end.
//
// Drives nora_serve-style serving with thousands of concurrent client
// sockets from a single-threaded nonblocking event loop (the same
// net::Poller the server uses), and measures the latency/goodput curve
// as offered load rises:
//
//   1. burst phase — open --conns connections as fast as possible, all
//      streaming completions at once; every one must reach a terminal
//      outcome (stream finished, or a clean 4xx/5xx rejection), with
//      zero resets and zero stuck sockets;
//   2. rate sweep — open-loop Poisson arrivals at each rate in --rates;
//      arrivals never wait for completions (closed-loop generators hide
//      overload), so queueing shows up in TTFT/TPOT, and shedding shows
//      up as 429/503 counts, exactly like production;
//   3. drain phase — SIGTERM mid-stream: in-flight streams must finish,
//      the server must exit 0, and afterwards the scheduler must hold
//      zero KV slabs and the process zero leaked fds.
//
// Default is a self-contained in-process server over the tiny model
// (CI-able, leak-checkable); --port drives an external server instead
// (phases 1-2 only). Results go to --out as a JSON latency-under-load
// curve.
//
//   ./serve_load [--conns=1000] [--rates=100,300,1000] [--duration=3]
//                [--smoke] [--port=0] [--seed=1] [--out=serve_load.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <dirent.h>
#include <numeric>
#include <random>
#include <string>
#include <sys/resource.h>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cim/tile_config.hpp"
#include "net/poller.hpp"
#include "net/server.hpp"
#include "net/signals.hpp"
#include "net/transport.hpp"
#include "nn/transformer.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace nora;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int count_open_fds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int n = 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n - 3;  // ".", "..", and the dirfd itself
}

void raise_nofile_limit(rlim_t want) {
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur >= want) return;
  rl.rlim_cur = std::min<rlim_t>(want, rl.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &rl);
}

nn::TransformerLM make_tiny() {
  nn::TransformerConfig arch;
  arch.vocab_size = 30;
  arch.d_model = 24;
  arch.n_layers = 2;
  arch.n_heads = 3;
  arch.d_ff = 48;
  arch.max_seq = 64;
  arch.seed = 77;
  nn::TransformerLM model(arch);
  cim::TileConfig tiles = cim::TileConfig::paper_table2();
  tiles.tile_rows = 16;
  tiles.tile_cols = 12;
  tiles.in_noise = 0.02f;
  tiles.abft_checksum = true;
  tiles.n_threads = 1;
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tiles, {}, seed++);
  }
  return model;
}

std::string completion_request(std::mt19937_64& rng, int max_new,
                               bool stream) {
  std::uniform_int_distribution<int> tok(0, 29);
  std::uniform_int_distribution<int> len(2, 6);
  std::string body = "{\"prompt\":[";
  const int n = len(rng);
  for (int i = 0; i < n; ++i) {
    if (i > 0) body += ",";
    body += std::to_string(tok(rng));
  }
  body += "],\"max_new_tokens\":" + std::to_string(max_new) +
          ",\"stream\":" + (stream ? "true" : "false") + "}";
  return "POST /v1/completions HTTP/1.1\r\nHost: bench\r\n"
         "Connection: close\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// ---------------------------------------------------------------------
// Client-side event loop
// ---------------------------------------------------------------------

struct ClientConn {
  std::unique_ptr<net::TcpTransport> t;
  std::string out;
  std::size_t off = 0;
  std::string in;
  std::size_t scan = 0;  // resume point for the token-chunk scanner
  double t_start = 0.0;
  double t_ttft = -1.0;
  double t_prev_tok = -1.0;
  double tpot_sum = 0.0;
  int tpot_n = 0;
  int tokens = 0;
  bool sent_all = false;
  bool done = false;
  bool failed = false;
};

struct PhaseStats {
  std::int64_t launched = 0;
  std::int64_t connect_failed = 0;
  std::int64_t completed = 0;   // 2xx with a finished stream / full body
  std::int64_t rejected = 0;    // clean 4xx/5xx (backpressure working)
  std::int64_t failed = 0;      // reset / garbled / no response
  std::int64_t stuck = 0;       // no terminal outcome by the deadline
  std::int64_t tokens = 0;
  std::vector<double> ttft_s;
  std::vector<double> tpot_s;
  double wall_s = 0.0;

  bool all_terminal() const {
    return stuck == 0 && failed == 0 && connect_failed == 0;
  }
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

class LoadGen {
 public:
  explicit LoadGen(int port) : port_(port) {}

  void launch(const std::string& request) {
    ++stats_.launched;
    auto t = net::TcpTransport::connect_local(port_);
    if (t == nullptr) {
      ++stats_.connect_failed;
      return;
    }
    auto c = std::make_unique<ClientConn>();
    c->t = std::move(t);
    c->out = request;
    c->t_start = now_s();
    const std::uint64_t key = next_key_++;
    poller_.add(c->t->fd(), key, /*want_read=*/true, /*want_write=*/true);
    conns_.emplace(key, std::move(c));
  }

  std::size_t open_count() const { return conns_.size(); }

  void poll_once(int timeout_ms) {
    events_.clear();
    poller_.wait(events_, timeout_ms);
    const double now = now_s();
    for (const auto& ev : events_) {
      auto it = conns_.find(ev.key);
      if (it == conns_.end()) continue;
      ClientConn& c = *it->second;
      if (ev.writable && !c.sent_all) on_writable(ev.key, c);
      if (ev.readable && !c.done && !c.failed) on_readable(c, now);
      if (ev.error && !ev.readable && !c.done) c.failed = true;
      if (c.done || c.failed) finish(it);
    }
  }

  /// Drive until every connection is terminal or `deadline_s` passes.
  void drain(double deadline_s) {
    while (!conns_.empty() && now_s() < deadline_s) poll_once(20);
    stats_.stuck += static_cast<std::int64_t>(conns_.size());
    for (auto& [key, c] : conns_) {
      poller_.remove(c->t->fd());
      c->t->close();
    }
    conns_.clear();
  }

  PhaseStats take_stats() {
    PhaseStats out = std::move(stats_);
    stats_ = PhaseStats{};
    return out;
  }

 private:
  void on_writable(std::uint64_t key, ClientConn& c) {
    while (c.off < c.out.size()) {
      const std::ptrdiff_t w =
          c.t->write(c.out.data() + c.off, c.out.size() - c.off);
      if (w > 0) {
        c.off += static_cast<std::size_t>(w);
        continue;
      }
      if (w == net::Transport::kAgain) return;
      c.failed = true;  // connect refused / reset
      return;
    }
    c.sent_all = true;
    poller_.modify(c.t->fd(), key, /*want_read=*/true, /*want_write=*/false);
  }

  void on_readable(ClientConn& c, double now) {
    char buf[4096];
    while (true) {
      const std::ptrdiff_t r = c.t->read(buf, sizeof(buf));
      if (r > 0) {
        c.in.append(buf, static_cast<std::size_t>(r));
        scan_tokens(c, now);
        continue;
      }
      if (r == net::Transport::kAgain) return;
      if (r == net::Transport::kEof) {
        c.done = true;
      } else {
        c.failed = true;
      }
      return;
    }
  }

  void scan_tokens(ClientConn& c, double now) {
    static const std::string needle = "{\"token\":";
    for (std::size_t pos = c.in.find(needle, c.scan);
         pos != std::string::npos; pos = c.in.find(needle, pos + 1)) {
      ++c.tokens;
      if (c.t_ttft < 0) {
        c.t_ttft = now - c.t_start;
      } else {
        c.tpot_sum += now - c.t_prev_tok;
        ++c.tpot_n;
      }
      c.t_prev_tok = now;
      c.scan = pos + 1;
    }
    // Keep one needle of overlap so a chunk split mid-marker still scans.
    if (c.in.size() > needle.size()) {
      c.scan = std::max(c.scan, c.in.size() - needle.size());
    }
  }

  void finish(
      std::unordered_map<std::uint64_t,
                         std::unique_ptr<ClientConn>>::iterator it) {
    ClientConn& c = *it->second;
    if (c.done) {
      const bool ok2xx = c.in.rfind("HTTP/1.1 2", 0) == 0;
      const bool reject = c.in.rfind("HTTP/1.1 4", 0) == 0 ||
                          c.in.rfind("HTTP/1.1 5", 0) == 0;
      const bool finished_stream =
          c.in.find("\"done\":true") != std::string::npos;
      const bool unary_body =
          c.in.find("\"tokens\":[") != std::string::npos;
      if (ok2xx && (finished_stream || unary_body)) {
        ++stats_.completed;
        stats_.tokens += c.tokens;
        if (c.t_ttft >= 0) stats_.ttft_s.push_back(c.t_ttft);
        if (c.tpot_n > 0) {
          stats_.tpot_s.push_back(c.tpot_sum /
                                  static_cast<double>(c.tpot_n));
        }
      } else if (reject) {
        ++stats_.rejected;
      } else {
        ++stats_.failed;  // EOF without a recognizable response
      }
    } else {
      ++stats_.failed;
    }
    poller_.remove(c.t->fd());
    c.t->close();
    conns_.erase(it);
  }

  int port_;
  net::Poller poller_{/*force_poll=*/false};
  std::unordered_map<std::uint64_t, std::unique_ptr<ClientConn>> conns_;
  std::vector<net::Poller::Event> events_;
  std::uint64_t next_key_ = 1;
  PhaseStats stats_;
};

std::string phase_json(const char* name, double rate,
                       const PhaseStats& s) {
  char buf[512];
  const double goodput =
      s.wall_s > 0 ? static_cast<double>(s.tokens) / s.wall_s : 0.0;
  std::snprintf(
      buf, sizeof(buf),
      "{\"phase\":\"%s\",\"rate_rps\":%g,\"launched\":%lld,"
      "\"completed\":%lld,\"rejected\":%lld,\"failed\":%lld,"
      "\"stuck\":%lld,\"connect_failed\":%lld,\"tokens\":%lld,"
      "\"wall_s\":%.3f,\"goodput_tok_s\":%.1f,\"ttft_p50_ms\":%.2f,"
      "\"ttft_p95_ms\":%.2f,\"tpot_mean_ms\":%.2f}",
      name, rate, static_cast<long long>(s.launched),
      static_cast<long long>(s.completed),
      static_cast<long long>(s.rejected), static_cast<long long>(s.failed),
      static_cast<long long>(s.stuck),
      static_cast<long long>(s.connect_failed),
      static_cast<long long>(s.tokens), s.wall_s, goodput,
      1e3 * percentile(s.ttft_s, 0.50), 1e3 * percentile(s.ttft_s, 0.95),
      s.tpot_s.empty()
          ? 0.0
          : 1e3 *
                (std::accumulate(s.tpot_s.begin(), s.tpot_s.end(), 0.0) /
                 static_cast<double>(s.tpot_s.size())));
  return buf;
}

void print_phase(const char* name, const PhaseStats& s) {
  std::printf("%-10s launched %5lld  completed %5lld  rejected %4lld  "
              "failed %3lld  stuck %3lld  ttft p50/p95 %.1f/%.1f ms  "
              "goodput %.0f tok/s\n",
              name, static_cast<long long>(s.launched),
              static_cast<long long>(s.completed),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.failed),
              static_cast<long long>(s.stuck),
              1e3 * percentile(s.ttft_s, 0.50),
              1e3 * percentile(s.ttft_s, 0.95),
              s.wall_s > 0 ? static_cast<double>(s.tokens) / s.wall_s : 0.0);
}

std::vector<double> parse_rates(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string part =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!part.empty()) out.push_back(std::stod(part));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const int conns = static_cast<int>(cli.get_int("conns", smoke ? 200 : 1000));
  const double duration = static_cast<double>(
      cli.get_double("duration", smoke ? 1.5 : 3.0));
  const std::vector<double> rates =
      parse_rates(cli.get("rates", smoke ? "200" : "100,300,1000"));
  const int ext_port = static_cast<int>(cli.get_int("port", 0));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string out_path = cli.get("out", "serve_load.json");
  cli.check_unknown();

  util::ThreadPool::global().resize(1);
  raise_nofile_limit(static_cast<rlim_t>(conns) * 2 + 512);
  net::install_signal_handlers();

  // ---- server (in-process unless --port points elsewhere) ------------
  const bool in_process = ext_port == 0;
  std::unique_ptr<nn::TransformerLM> model;
  std::unique_ptr<serve::Scheduler> sched;
  std::unique_ptr<net::HttpServer> server;
  std::thread server_thread;
  std::atomic<int> server_rc{-1};
  int port = ext_port;
  if (in_process) {
    model = std::make_unique<nn::TransformerLM>(make_tiny());
    serve::SchedulerConfig scfg;
    scfg.max_batch = 16;
    scfg.kv_budget_tokens = 2048;
    scfg.queue_capacity = 4096;
    scfg.reject_on_pool_full = true;
    scfg.record_events = true;
    sched = std::make_unique<serve::Scheduler>(*model, scfg);
    net::ServerConfig ncfg;
    // The open-loop sweep can hold ~2x the burst width in flight; size
    // the cap so the latency curve measures queueing, not shedding.
    ncfg.max_connections = conns * 2 + 64;
    ncfg.listen_backlog = 1024;
    ncfg.drain_timeout_ms = 15000;
    server = std::make_unique<net::HttpServer>(*sched, ncfg);
    server->listen();
    port = server->port();
    server_thread = std::thread([&] { server_rc = server->run(); });
  }
  std::printf("serve_load: target 127.0.0.1:%d (%s), %d conns, smoke=%d\n",
              port, in_process ? "in-process tiny model" : "external", conns,
              smoke ? 1 : 0);

  const int fd_baseline = count_open_fds();
  std::mt19937_64 rng(seed);
  LoadGen gen(port);
  std::vector<std::string> results;
  bool ok = true;

  // ---- phase 1: concurrent-connection burst --------------------------
  {
    const double t0 = now_s();
    for (int i = 0; i < conns; ++i) {
      gen.launch(completion_request(rng, 8, /*stream=*/true));
      // Brief poll every batch keeps the accept queue drained while we
      // pile on connections.
      if (i % 64 == 63) gen.poll_once(0);
    }
    gen.drain(now_s() + 60.0);
    PhaseStats s = gen.take_stats();
    s.wall_s = now_s() - t0;
    print_phase("burst", s);
    results.push_back(phase_json("burst", 0.0, s));
    ok = ok && s.all_terminal() &&
         s.completed + s.rejected == static_cast<std::int64_t>(conns);
  }

  // ---- phase 2: open-loop Poisson rate sweep -------------------------
  for (const double rate : rates) {
    std::exponential_distribution<double> gap(rate);
    const double t0 = now_s();
    const double t_end = t0 + duration;
    double next_arrival = t0;
    const std::size_t max_open = static_cast<std::size_t>(conns) * 2;
    while (now_s() < t_end) {
      const double now = now_s();
      while (next_arrival <= now) {
        next_arrival += gap(rng);
        if (gen.open_count() >= max_open) continue;  // fd-cap shed
        gen.launch(completion_request(rng, 8, /*stream=*/true));
      }
      const double sleep_s =
          std::clamp(next_arrival - now_s(), 0.0, 0.01);
      gen.poll_once(static_cast<int>(sleep_s * 1e3));
    }
    gen.drain(now_s() + 30.0);
    PhaseStats s = gen.take_stats();
    s.wall_s = now_s() - t0;
    char label[32];
    std::snprintf(label, sizeof(label), "rate %.0f", rate);
    print_phase(label, s);
    results.push_back(phase_json("poisson", rate, s));
    ok = ok && s.all_terminal();
  }

  // ---- phase 3: SIGTERM drain mid-stream (in-process only) -----------
  if (in_process) {
    const double t0 = now_s();
    for (int i = 0; i < 16; ++i) {
      gen.launch(completion_request(rng, 24, /*stream=*/true));
    }
    // Wait until streams are demonstrably in flight, then pull the plug.
    PhaseStats probe;
    const double probe_deadline = now_s() + 10.0;
    while (now_s() < probe_deadline && gen.open_count() == 16) {
      gen.poll_once(5);
      break;  // one sweep is enough to push the requests out
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::raise(SIGTERM);
    gen.drain(now_s() + 30.0);
    PhaseStats s = gen.take_stats();
    s.wall_s = now_s() - t0;
    print_phase("drain", s);
    results.push_back(phase_json("drain", 0.0, s));
    // Every stream opened before SIGTERM must still finish (graceful
    // drain), and the server loop must exit 0.
    ok = ok && s.all_terminal();
    server_thread.join();
    std::printf("server drain exit code: %d\n", server_rc.load());
    ok = ok && server_rc.load() == 0;
    std::printf("server metrics: %s\n", server->metrics_json().c_str());

    const serve::AuditSnapshot snap = sched->audit_snapshot();
    // At idle the pool may legitimately retain published KV prefix
    // entries (resident cache, evictable under budget pressure) — a
    // leak is anything beyond that store, a live per-request slab, or
    // an outstanding prefix lease.
    const bool no_slab_leak = snap.pool_live == 0 &&
                              snap.pool_used == snap.pool_prefix_tokens &&
                              snap.pool_prefix_refs == 0 &&
                              snap.pool_acquires == snap.pool_releases;
    std::printf(
        "kv slabs: %lld live, %lld acquires, %lld releases, "
        "%lld used == %lld prefix-resident, %lld leases held -> %s\n",
        static_cast<long long>(snap.pool_live),
        static_cast<long long>(snap.pool_acquires),
        static_cast<long long>(snap.pool_releases),
        static_cast<long long>(snap.pool_used),
        static_cast<long long>(snap.pool_prefix_tokens),
        static_cast<long long>(snap.pool_prefix_refs),
        no_slab_leak ? "PASS" : "FAIL");
    ok = ok && no_slab_leak;
  }

  const int fd_final = count_open_fds();
  const bool no_fd_leak =
      fd_baseline < 0 || fd_final < 0 || fd_final <= fd_baseline;
  std::printf("fds: baseline %d, final %d -> %s\n", fd_baseline, fd_final,
              no_fd_leak ? "PASS" : "FAIL");
  ok = ok && no_fd_leak;

  // ---- JSON curve ----------------------------------------------------
  std::string json = "{\"conns\":" + std::to_string(conns) + ",\"phases\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json += ",";
    json += results[i];
  }
  json += "]}";
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("curve written to %s\n", out_path.c_str());
  }

  std::printf("serve_load: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
