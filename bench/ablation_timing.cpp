// Timing co-simulation ablation: event-driven hardware latency replayed
// over the serving stack, sweeping analog pipeline depth and the
// scheduler's batching policy.
//
// Phase 1 (reconciliation): per-layer event-driven latency of one
// forward pass vs the analytic cost_model bound (tokens * tile read).
// The event simulator charges the SAME tile-read constant split into
// DAC/crossbar/ADC stages, so a single unpipelined tile degenerates to
// the analytic number exactly (printed, and asserted in
// test_cost_sim_consistency); multi-tile grids show the extra serial
// cost of shared ADC column groups and inter-tile partial-sum links the
// analytic model hides.
//
// Phase 2 (pipeline depth): the same serve workload at depth 1/2/4/8 —
// overlapping consecutive tokens' DAC/crossbar/ADC stages raises
// simulated throughput until the bottleneck stage saturates.
//
// Phase 3 (batching policy, criterion): fixed open-loop offered load in
// SIMULATED time, served under the default greedy batch-growth policy
// and under the latency-aware prefill-budget policy. Token outputs are
// bit-identical (batch-invariant streams); only latency moves. The
// acceptance criterion requires the latency-aware policy to cut mean
// simulated TTFT by >= 5% at the same offered load, with identical
// outputs — any miss exits nonzero.
//
//   ./ablation_timing [--smoke] [--requests=32] [--tokens=8]
//                     [--prefill-budget=16] [--load=1.5]
//                     [--out=results/ablation_timing.json]
//                     [--tile-read-ns=100] [--adc-fom-fj=30] ...
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cim/tile_config.hpp"
#include "cost/device_costs_cli.hpp"
#include "nn/transformer.hpp"
#include "serve/scheduler.hpp"
#include "timing/hw_model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace nora;

namespace {

nn::TransformerConfig bench_arch() {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 32;
  cfg.seed = 77;
  return cfg;
}

cim::TileConfig bench_tiles() {
  // Small tiles force multi-tile grids (qkv is 24x72 -> 2x6 tiles), so
  // shared-ADC serialization and inter-tile links actually bite.
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 16;
  cfg.tile_cols = 12;
  cfg.n_threads = 1;
  return cfg;
}

nn::TransformerLM make_model() {
  nn::TransformerLM model(bench_arch());
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(bench_tiles(), {}, seed++);
  }
  return model;
}

std::vector<std::vector<int>> make_prompts(int n) {
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < n; ++i) {
    const int len = 10 + (i % 3) * 3;  // 10 / 13 / 16 tokens
    std::vector<int> p;
    for (int t = 0; t < len; ++t) p.push_back((7 * i + 3 * t) % 30);
    prompts.push_back(std::move(p));
  }
  return prompts;
}

struct SimRun {
  serve::Metrics metrics;
  std::int64_t sim_ps = 0;
  std::vector<timing::LayerTiming> layers;
  std::vector<std::vector<int>> tokens;  // per request, submit order
  double mean_sim_ttft_us = 0.0;
};

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Open-loop serving with arrivals scheduled in SIMULATED time: request
/// i is submitted once the sim clock reaches arrival_ps[i]. The arrival
/// trace is identical across policies, so "offered load" means the same
/// thing for every contender (a drained scheduler fast-forwards to the
/// next arrival, as the wall-clock benches do with steps).
SimRun run_policy(nn::TransformerLM& model,
                  const std::vector<std::vector<int>>& prompts, int n_tokens,
                  const std::vector<std::int64_t>& arrival_ps,
                  const timing::TimingConfig& sim_cfg,
                  serve::BatchPolicy policy, std::int64_t prefill_budget) {
  serve::SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.seed = 913;
  cfg.timing = sim_cfg;
  cfg.batch_policy = policy;
  cfg.prefill_tokens_per_step = prefill_budget;
  serve::Scheduler sched(model, cfg);
  std::vector<std::int64_t> arrivals = arrival_ps;
  arrivals.resize(prompts.size(), 0);  // missing entries arrive at sim t=0
  std::vector<std::int64_t> ids;
  std::size_t next = 0;
  bool busy = true;
  while (next < prompts.size() || busy) {
    while (next < prompts.size() && arrivals[next] <= sched.sim_now_ps()) {
      serve::RequestParams p;
      p.prompt = prompts[next];
      p.max_new_tokens = n_tokens;
      p.stream_seed = 1000 + next;  // policy-invariant outputs
      ids.push_back(sched.submit(std::move(p)));
      ++next;
    }
    busy = sched.step();
    if (!busy && next < prompts.size()) {
      arrivals[next] = sched.sim_now_ps();  // fast-forward to next arrival
      busy = true;
    }
  }
  SimRun r;
  r.metrics = sched.metrics();
  r.sim_ps = sched.sim_now_ps();
  r.layers = sched.timing_layers();
  for (const auto id : ids) r.tokens.push_back(sched.request(id).tokens);
  r.mean_sim_ttft_us = mean(r.metrics.sim_ttft_us);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const int n_requests =
      static_cast<int>(cli.get_int("requests", smoke ? 12 : 32));
  const int n_tokens = static_cast<int>(cli.get_int("tokens", 8));
  const std::int64_t prefill_budget = cli.get_int("prefill-budget", 16);
  const double load = cli.get_double("load", 1.5);
  const std::string out_path = cli.get("out", "results/ablation_timing.json");
  timing::TimingConfig sim_cfg;
  sim_cfg.enabled = true;
  sim_cfg.costs = cost::device_costs_from_cli(cli);
  cli.check_unknown();
  util::ThreadPool::global().resize(1);

  nn::TransformerLM model = make_model();
  const auto prompts = make_prompts(n_requests);
  std::printf("Timing co-simulation ablation — %d requests x %d tokens, "
              "tile read %.0f ns%s\n\n",
              n_requests, n_tokens, sim_cfg.costs.tile_read_latency_ns,
              smoke ? " (smoke)" : "");

  // --- phase 1: event-driven vs analytic reconciliation --------------
  const timing::HwModel hw(sim_cfg);
  {
    timing::TimingOp one;
    one.kind = timing::OpKind::kAnalogMvm;
    one.layer = "single-tile";
    one.rows = 16;
    one.k = 16;
    one.n = 12;
    one.row_blocks = 1;
    one.col_blocks = 1;
    const std::int64_t event_ps = hw.analog_op_ps(one);
    const std::int64_t analytic_ps = one.rows * hw.tile_ps();
    std::printf("degenerate single unpipelined tile, %lld tokens: "
                "event-driven %lld ps vs analytic %lld ps — %s\n\n",
                static_cast<long long>(one.rows),
                static_cast<long long>(event_ps),
                static_cast<long long>(analytic_ps),
                event_ps == analytic_ps ? "EXACT" : "MISMATCH");
    if (event_ps != analytic_ps) return 1;
  }
  // Per-layer contrast on a real forward: one 16-token prefill.
  const std::vector<std::int64_t> immediate(1, 0);
  SimRun probe = run_policy(model, {prompts[2]}, n_tokens, immediate, sim_cfg,
                            serve::BatchPolicy::kGrowth, 0);
  util::Table ltable({"layer", "ops", "sim (us)", "analytic floor (us)",
                      "grid overhead"});
  for (const auto& lt : probe.layers) {
    // The analytic model charges one tile read per token per analog op;
    // the replay knows how many ops (and tokens each) hit the layer, so
    // approximate the floor from the layer's op count x mean tokens.
    // For this single-request probe every analog pass is the request's
    // current row count; the contrast column is qualitative.
    const double sim_us = static_cast<double>(lt.ps) * 1e-6;
    const double floor_us =
        static_cast<double>(
            lt.ops > 0
                ? (static_cast<std::int64_t>(prompts[2].size()) +
                   (lt.ops - 1)) *
                      hw.tile_ps()
                : 0) *
        1e-6;
    ltable.add_row({lt.layer, std::to_string(lt.ops),
                    util::Table::num(sim_us, 3),
                    util::Table::num(floor_us, 3),
                    util::Table::num(floor_us > 0.0 ? sim_us / floor_us : 0.0,
                                     2)});
  }
  std::printf("per-layer simulated time, one request (%d prompt + %d decode "
              "tokens; floor = analytic one-tile-read-per-token):\n",
              static_cast<int>(prompts[2].size()), n_tokens);
  ltable.print();

  // --- phase 2: pipeline-depth sweep ---------------------------------
  const std::vector<int> depths =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  util::Table dtable({"pipeline depth", "sim time (us)", "sim tok/s",
                      "sim TPOT p50 (us)", "events"});
  std::string depth_json;
  for (const int depth : depths) {
    timing::TimingConfig c = sim_cfg;
    c.pipeline_depth = depth;
    const SimRun r = run_policy(model, prompts, n_tokens, immediate, c,
                                serve::BatchPolicy::kGrowth, 0);
    dtable.add_row({std::to_string(depth),
                    util::Table::num(static_cast<double>(r.sim_ps) * 1e-6, 1),
                    util::Table::num(r.metrics.sim_tokens_per_s(), 0),
                    util::Table::num(r.metrics.sim_tpot_p50_us(), 2),
                    std::to_string(r.metrics.sim_events)});
    char entry[160];
    std::snprintf(entry, sizeof(entry),
                  "%s{\"depth\":%d,\"sim_ps\":%lld,\"sim_tok_per_s\":%.6g}",
                  depth_json.empty() ? "" : ",", depth,
                  static_cast<long long>(r.sim_ps),
                  r.metrics.sim_tokens_per_s());
    depth_json += entry;
  }
  std::printf("\npipeline-depth sweep (saturated batch, all %d requests "
              "submitted at sim t=0):\n",
              n_requests);
  dtable.print();

  // --- phase 3: batching-policy sweep at fixed offered load ----------
  // Calibrate the arrival process off one solo request's service time,
  // then offer bursts of co-arriving requests at Poisson-spaced epochs
  // (`load` requests per solo-service interval on average). Bursts are
  // the regime where admission policy matters: greedy growth co-admits
  // the whole burst into one giant prefill step, so everyone's first
  // token waits for everyone's prompt; the latency-aware budget
  // staggers prefills instead. Both policies replay the IDENTICAL
  // arrival trace.
  const std::int64_t service_ps = probe.sim_ps;
  const int burst = 6;
  std::vector<std::int64_t> arrival_ps(static_cast<std::size_t>(n_requests));
  {
    util::Rng rng(4242);
    double t = 0.0;
    for (int i = 0; i < n_requests; ++i) {
      if (i % burst == 0 && i > 0) {
        t += -std::log(1.0 - rng.uniform()) * burst *
             static_cast<double>(service_ps) / load;
      }
      arrival_ps[static_cast<std::size_t>(i)] =
          static_cast<std::int64_t>(t);
    }
  }
  const SimRun growth =
      run_policy(model, prompts, n_tokens, arrival_ps, sim_cfg,
                 serve::BatchPolicy::kGrowth, 0);
  const SimRun latency =
      run_policy(model, prompts, n_tokens, arrival_ps, sim_cfg,
                 serve::BatchPolicy::kLatencyAware, prefill_budget);
  util::Table ptable({"policy", "mean sim TTFT (us)", "sim TTFT p50 (us)",
                      "sim TTFT p95 (us)", "sim TPOT p50 (us)",
                      "sim goodput (tok/s)", "sim time (us)"});
  auto add_policy = [&ptable](const char* label, const SimRun& r) {
    ptable.add_row({label, util::Table::num(r.mean_sim_ttft_us, 1),
                    util::Table::num(r.metrics.sim_ttft_p50_us(), 1),
                    util::Table::num(r.metrics.sim_ttft_p95_us(), 1),
                    util::Table::num(r.metrics.sim_tpot_p50_us(), 2),
                    util::Table::num(r.metrics.sim_goodput_tokens_per_s(), 0),
                    util::Table::num(static_cast<double>(r.sim_ps) * 1e-6,
                                     1)});
  };
  add_policy("batch-growth (default)", growth);
  add_policy("latency-aware", latency);
  std::printf("\nbatching-policy sweep at offered load %.2fx (Poisson "
              "bursts of %d in sim time, prefill budget %lld tokens):\n",
              load, burst, static_cast<long long>(prefill_budget));
  ptable.print();

  const bool same_tokens = growth.tokens == latency.tokens;
  const double improvement =
      growth.mean_sim_ttft_us > 0.0
          ? 1.0 - latency.mean_sim_ttft_us / growth.mean_sim_ttft_us
          : 0.0;
  std::printf("\noutputs bit-identical across policies: %s\n",
              same_tokens ? "PASS" : "FAIL");
  std::printf("mean sim TTFT: growth %.1f us -> latency-aware %.1f us "
              "(%.1f%% better)\n",
              growth.mean_sim_ttft_us, latency.mean_sim_ttft_us,
              improvement * 100.0);

  if (!out_path.empty()) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"requests\":%d,\"tokens\":%d,\"load\":%.3g,"
                  "\"depths\":[%s],\"growth_mean_sim_ttft_us\":%.6g,"
                  "\"latency_mean_sim_ttft_us\":%.6g,"
                  "\"ttft_improvement\":%.6g,\"same_tokens\":%s}",
                  n_requests, n_tokens, load, depth_json.c_str(),
                  growth.mean_sim_ttft_us, latency.mean_sim_ttft_us,
                  improvement, same_tokens ? "true" : "false");
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", buf);
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "WARNING: cannot write %s\n", out_path.c_str());
    }
  }

  // --- acceptance ----------------------------------------------------
  bool ok = same_tokens;
  if (!same_tokens) {
    std::printf("FAIL: batching policy changed request outputs — admission "
                "must only move latency, never tokens.\n");
  }
  const bool faster = improvement >= 0.05;
  std::printf("latency-aware criterion (>= 5%% mean sim-TTFT cut at fixed "
              "offered load): %s\n",
              faster ? "PASS" : "FAIL");
  ok = ok && faster;
  return ok ? 0 : 1;
}
