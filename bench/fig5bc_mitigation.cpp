// Reproduces paper Fig. 5 (b)/(c): per-non-ideality mitigation by NORA.
// Each noise source is scaled (alone, others ideal) to the fixed
// MSE-matched level of the paper (1.5e-3..1.6e-3 on the reference
// feature map), then accuracy is compared between the naive mapping and
// NORA. "recovered" is the fraction of the naive drop NORA wins back.
//
// Expected shape (paper Sec. V-B): large recovery for ADC/DAC
// quantization on quantization-sensitive (OPT-like) models (paper: ~75%
// of the ADC drop on OPT-6.7b) and substantial recovery for additive
// input/output noise (paper: 60-70% output, 5-60% input).
//
//   ./fig5bc_mitigation [--examples=N] [--models=a,b] [--lambda=F]
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "noise/mse_calibrator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 96));
  const float lambda = static_cast<float>(cli.get_double("lambda", 0.5));
  const auto models =
      cli.has("models")
          ? parse_models(cli.get("models", ""))
          : std::vector<std::string>{"opt-2.7b-sim", "opt-6.7b-sim",
                                     "llama3-8b-sim", "mistral-7b-sim"};

  std::printf("Fig. 5b/c — NORA noise mitigation per non-ideality at "
              "MSE-matched level %.2e (%d examples)\n\n",
              noise::kFig5MseLevel, n_examples);

  util::Table table({"non-ideality", "model", "fp32 (%)", "naive (%)",
                     "NORA (%)", "naive drop", "NORA drop", "recovered (%)"});
  for (const auto& knob : bench::fig3_knobs()) {
    const double param = bench::solve_level(knob, noise::kFig5MseLevel);
    std::printf("[%s] calibrated param: %.5g\n", knob.name.c_str(), param);
    std::fflush(stdout);
    const cim::TileConfig cfg = knob.make(param);
    for (const auto& m : models) {
      const auto fp = bench::eval_digital(m, n_examples);
      const auto naive = bench::eval_analog(m, cfg, false, lambda, n_examples);
      const auto nora = bench::eval_analog(m, cfg, true, lambda, n_examples);
      const double drop_naive = fp.accuracy - naive.accuracy;
      const double drop_nora = fp.accuracy - nora.accuracy;
      const double recovered =
          drop_naive > 1e-9 ? 100.0 * (nora.accuracy - naive.accuracy) / drop_naive
                            : 0.0;
      table.add_row({knob.name, m, util::Table::pct(fp.accuracy),
                     util::Table::pct(naive.accuracy),
                     util::Table::pct(nora.accuracy),
                     util::Table::pct(drop_naive), util::Table::pct(drop_nora),
                     util::Table::num(recovered, 1)});
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv("results/fig5bc_mitigation.csv");
  std::printf("\npaper shape check: large recovery on quantization for "
              "OPT-like models and on additive I/O noise everywhere;\n"
              "tile non-idealities barely drop in the first place.\n");
  return 0;
}
