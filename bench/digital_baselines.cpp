// Digital-quantization baselines vs analog CIM (paper Sec. VI related
// work): SmoothQuant solves the same outlier problem on digital INT8
// cores that NORA solves on analog tiles. This bench puts all five
// settings side by side:
//
//   fp32 | digital int8 | digital int8 + SmoothQuant |
//   analog naive | analog NORA
//
// Expected shape: plain W8A8 degrades on outlier-heavy (OPT-like) models
// and SmoothQuant repairs it — the digital mirror of Fig. 5a — while the
// analog column needs NORA because quantization is only one of its
// non-idealities.
//
//   ./digital_baselines [--examples=N] [--models=a,b,c]
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

double eval_int8(const std::string& name, bool smooth, bool static_act,
                 int n_examples) {
  const model::ModelSpec spec = model::spec_by_name(name);
  auto model = model::get_or_train(spec, /*verbose=*/false);
  const eval::SynthLambada task(spec.task);
  core::NoraOptions nora;
  nora.enabled = smooth;
  core::deploy_digital_int8(*model, task, nora, static_act);
  eval::EvalOptions eo;
  eo.n_examples = n_examples;
  return eval::evaluate(*model, task, eo).accuracy;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const auto models =
      cli.has("models")
          ? parse_models(cli.get("models", ""))
          : std::vector<std::string>{"opt-1.3b-sim", "opt-2.7b-sim",
                                     "opt-6.7b-sim", "mistral-7b-sim"};

  std::printf("Digital INT8 baselines vs analog CIM (%d examples)\n\n",
              n_examples);
  const cim::TileConfig hw = cim::TileConfig::paper_table2();
  util::Table table({"model", "fp32 (%)", "int8 dynamic (%)",
                     "int8 static (%)", "int8 static+SmoothQuant (%)",
                     "analog naive (%)", "analog NORA (%)"});
  for (const auto& m : models) {
    const auto fp = bench::eval_digital(m, n_examples);
    const double i8_dyn = eval_int8(m, false, false, n_examples);
    const double i8_static = eval_int8(m, false, true, n_examples);
    const double i8_smooth = eval_int8(m, true, true, n_examples);
    const auto an = bench::eval_analog(m, hw, false, 0.5f, n_examples);
    const auto anr = bench::eval_analog(m, hw, true, 0.5f, n_examples);
    table.add_row({m, util::Table::pct(fp.accuracy), util::Table::pct(i8_dyn),
                   util::Table::pct(i8_static), util::Table::pct(i8_smooth),
                   util::Table::pct(an.accuracy),
                   util::Table::pct(anr.accuracy)});
  }
  table.print();
  table.write_csv("results/digital_baselines.csv");
  std::printf("\nshape check: static per-tensor INT8 (SmoothQuant's target "
              "setting) degrades on\noutlier-heavy models and SmoothQuant "
              "repairs it — the digital mirror of NORA;\nper-token dynamic "
              "INT8 is the easy case; analog naive is worst (quantization\n"
              "plus additive noise plus ADC saturation).\n");
  return 0;
}
