// Reproduces paper Fig. 4: kernel-density-style comparison of the
// normalized activation vs query-weight distribution of layer 2 of the
// Mistral-like model, plus their kurtosis.
//
// Expected shape: activations have extreme kurtosis driven by a few
// outlier channels (paper: 113.61) while weights are near-Gaussian
// (paper: 1.25); zooming into low densities shows the activation's
// long tail.
//
//   ./fig4_distribution [--model=mistral-7b-sim] [--layer=1] [--bins=41]
#include <cmath>
#include <cstdio>

#include "eval/synthlambada.hpp"
#include "model/zoo.hpp"
#include "tensor/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<float> normalized(std::span<const float> xs) {
  const double sd = stats::stddev(xs);
  std::vector<float> out(xs.begin(), xs.end());
  if (sd > 0) {
    for (auto& v : out) v = static_cast<float>(v / sd);
  }
  return out;
}

void print_kde(const char* label, const stats::Histogram& h) {
  std::printf("%s\n", label);
  const double peak = *std::max_element(h.density.begin(), h.density.end());
  for (std::size_t b = 0; b < h.density.size(); ++b) {
    const double x = h.lo + (b + 0.5) * h.bin_width();
    const int bar =
        peak > 0 ? static_cast<int>(60.0 * h.density[b] / peak) : 0;
    std::printf("  %7.2f | %-60s %.4f\n", x, std::string(bar, '#').c_str(),
                h.density[b]);
  }
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "mistral-7b-sim");
  const int layer = static_cast<int>(cli.get_int("layer", 1));  // "layer 2"
  const int bins = static_cast<int>(cli.get_int("bins", 41));

  const model::ModelSpec spec = model::spec_by_name(name);
  auto model = model::get_or_train(spec);
  const eval::SynthLambada task(spec.task);

  if (layer < 0 || layer >= static_cast<int>(model->blocks().size())) {
    std::fprintf(stderr, "layer %d out of range\n", layer);
    return 1;
  }
  // Capture the activations entering the QKV projection of the chosen
  // layer (the paper plots the input of the query projection).
  nn::Linear& qkv = model->blocks()[static_cast<std::size_t>(layer)]
                        .attention().qkv();
  qkv.set_capture_full(true);
  for (const auto& tokens : task.calibration_set(32)) {
    model->forward(tokens);
  }
  const Matrix& acts = qkv.captured_inputs();
  // Query-projection weight = the first d_model output columns of QKV.
  const Matrix& w = qkv.weight().value;
  std::vector<float> wq;
  wq.reserve(static_cast<std::size_t>(w.rows() * model->config().d_model));
  for (std::int64_t r = 0; r < w.rows(); ++r) {
    for (std::int64_t c = 0; c < model->config().d_model; ++c) {
      wq.push_back(w.at(r, c));
    }
  }
  const std::vector<float> a_norm = normalized(
      std::span<const float>(acts.data(), static_cast<std::size_t>(acts.size())));
  const std::vector<float> w_norm = normalized(wq);

  std::printf("Fig. 4 — activation vs query-weight distribution, %s layer %d\n\n",
              name.c_str(), layer + 1);
  std::printf("kurtosis: activation %.2f, weight %.2f (paper: 113.61 vs 1.25)\n\n",
              stats::kurtosis(a_norm), stats::kurtosis(w_norm));

  const auto ha = stats::histogram(a_norm, -8.0, 8.0, bins);
  const auto hw = stats::histogram(w_norm, -8.0, 8.0, bins);
  print_kde("(a) normalized activation density:", ha);
  std::printf("\n");
  print_kde("    normalized query-weight density:", hw);

  // (b) zoom into the low-density region: the activation long tail.
  std::printf("\n(b) tail mass |x| > 4 sigma:  activation %.5f   weight %.5f\n",
              stats::outlier_fraction(a_norm, 4.0),
              stats::outlier_fraction(w_norm, 4.0));
  std::printf("    max |x| / sigma:          activation %.1f      weight %.1f\n",
              double(*std::max_element(a_norm.begin(), a_norm.end(),
                                       [](float x, float y) {
                                         return std::fabs(x) < std::fabs(y);
                                       })),
              double(*std::max_element(w_norm.begin(), w_norm.end(),
                                       [](float x, float y) {
                                         return std::fabs(x) < std::fabs(y);
                                       })));
  std::printf("\npaper shape check: activation kurtosis orders of magnitude "
              "above weight kurtosis,\nwith visible long tails.\n");
  return 0;
}
