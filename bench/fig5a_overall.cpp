// Reproduces paper Fig. 5 (a): overall SynthLambada accuracy of the
// OPT-like family under (1) digital full precision, (2) the naive analog
// mapping at the Table II operating point, and (3) NORA.
//
// Expected shape: catastrophic loss for the naive mapping (the paper
// reports up to >40 points; our smaller models drop even harder), with
// NORA recovering to within ~1 point of fp32.
//
//   ./fig5a_overall [--examples=N] [--lambda=F]
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const float lambda = static_cast<float>(cli.get_double("lambda", 0.5));

  std::printf("Fig. 5a — OPT-like family accuracy: fp32 vs naive analog vs "
              "NORA (Table II settings, %d examples)\n\n", n_examples);

  const cim::TileConfig hw = cim::TileConfig::paper_table2();
  util::Table table({"model", "digital fp32 (%)", "naive analog (%)",
                     "NORA (%)", "naive drop", "NORA drop"});
  for (const auto& m : model::opt_family()) {
    const auto fp = bench::eval_digital(m, n_examples);
    const auto naive = bench::eval_analog(m, hw, /*nora=*/false, lambda, n_examples);
    const auto nora = bench::eval_analog(m, hw, /*nora=*/true, lambda, n_examples);
    table.add_row({m, util::Table::pct(fp.accuracy),
                   util::Table::pct(naive.accuracy),
                   util::Table::pct(nora.accuracy),
                   util::Table::pct(fp.accuracy - naive.accuracy),
                   util::Table::pct(fp.accuracy - nora.accuracy)});
  }
  table.print();
  table.write_csv("results/fig5a_overall.csv");
  std::printf("\npaper shape check: naive drop is catastrophic (paper: up to "
              ">40 points);\nNORA drop stays near zero (paper: <1 point for "
              "OPT-6.7b/13b).\n");
  return 0;
}
