// Deterministic chaos soak of the degraded-mode serving stack.
//
// A compact analog transformer is served for thousands of scheduler
// steps while a seeded ChaosEngine injects device upsets, permanent
// wear, ADC-saturation storms, background traffic, bursts and racing
// cancels, with the integrity monitor opening maintenance windows and
// the retry policy re-queueing transient failures. The serve::Auditor
// checks the conservation invariants after EVERY step.
//
// Acceptance criteria (any miss exits nonzero):
//   * zero Auditor violations across the whole soak + idle drain;
//   * zero leaked KV slabs (lifetime acquires == releases, pool empty);
//   * every submitted request ends in exactly one terminal state;
//   * >= 99% of non-rejected requests eventually finish;
//   * the first 500 steps replay bit-identically under the same seed;
//   * with chaos disabled (--no-chaos) the serve output must be
//     bit-identical between sequential and continuously-batched serving
//     — the golden-stream determinism gate.
//
// With --net the soak runs through the HTTP front end instead of
// direct submit(): a NetChaosEngine population of simulated clients
// (streamers, slow-loris readers, stalled writers, mid-stream
// disconnects, malformed senders) drives an HttpServer over
// deterministic sim pipes on a virtual clock, while physical chaos
// keeps hitting the analog substrate underneath. Same replay and
// conservation gates, now covering the connection lifecycle.
//
// SIGINT/SIGTERM interrupt the soak gracefully: injection stops, the
// backlog drains, final metrics print, exit 0. A second signal skips
// the drain.
//
//   ./chaos_soak [--steps=10000] [--seed=2300] [--smoke] [--no-chaos]
//                [--net]
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "chaos/net_chaos.hpp"
#include "cim/tile_config.hpp"
#include "net/server.hpp"
#include "net/signals.hpp"
#include "nn/transformer.hpp"
#include "runtime/integrity_monitor.hpp"
#include "serve/auditor.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace nora;

namespace {

nn::TransformerConfig soak_arch() {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 32;
  cfg.seed = 77;
  return cfg;
}

cim::TileConfig soak_tiles() {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 16;
  cfg.tile_cols = 12;
  cfg.in_noise = 0.02f;
  cfg.abft_checksum = true;
  cfg.n_threads = 1;
  return cfg;
}

nn::TransformerLM make_model() {
  nn::TransformerLM model(soak_arch());
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(soak_tiles(), {}, seed++);
  }
  return model;
}

serve::SchedulerConfig soak_sched_cfg(runtime::IntegrityMonitor* monitor) {
  serve::SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.kv_budget_tokens = 128;
  cfg.seed = 913;
  cfg.monitor = monitor;
  cfg.inspect_every = 8;
  cfg.step_dt_s = 0.5f;
  cfg.maintenance_window_steps = 3;
  // Pool pressure takes the retry/backoff path, not head-of-line
  // blocking — the soak must exercise requeues, not just queueing.
  cfg.reject_on_pool_full = true;
  cfg.retry.max_attempts = 4;
  cfg.retry.backoff_base_steps = 1;
  cfg.retry.backoff_cap_steps = 16;
  cfg.retry.jitter_steps = 2;
  return cfg;
}

chaos::ChaosConfig soak_chaos_cfg(std::uint64_t seed) {
  chaos::ChaosConfig cfg;
  cfg.seed = seed;
  cfg.upset_rate = 0.3;
  cfg.wear_rate = 0.02;
  cfg.adc_storm_rate = 0.01;
  cfg.adc_storm_size = 16;
  cfg.submit_rate = 0.5;
  cfg.burst_rate = 0.03;
  cfg.burst_size = 4;
  // Low cancel/deadline pressure: injected aborts are part of the soak,
  // but the >= 99%-finished criterion must stay reachable.
  cfg.cancel_rate = 0.02;
  cfg.deadline_prob = 0.02;
  cfg.deadline_min = 48;
  cfg.deadline_max = 128;
  return cfg;
}

struct SoakOutcome {
  chaos::ChaosStats stats;
  serve::AuditSnapshot snap;
  std::vector<std::string> violations;
  std::int64_t soak_steps = 0;
  std::int64_t drain_steps = 0;
  bool drained = true;
  bool interrupted = false;  // signal arrived; soak cut short + drained
};

SoakOutcome run_soak(std::uint64_t seed, std::int64_t steps) {
  nn::TransformerLM model = make_model();
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/5050, {});
  serve::Scheduler sched(model, soak_sched_cfg(&monitor));
  chaos::ChaosEngine engine(sched, model, soak_chaos_cfg(seed));
  serve::Auditor auditor(sched);
  SoakOutcome out;
  for (std::int64_t s = 0; s < steps; ++s) {
    if (net::shutdown_requested()) {
      out.interrupted = true;  // stop injecting, fall through to drain
      break;
    }
    engine.tick(s);
    sched.step();
    auditor.check();
    ++out.soak_steps;
  }
  // Idle drain: no more injections; the retry budgets and deadlines
  // bound how long the backlog can live.
  const std::int64_t drain_cap = steps * 4 + 10000;
  while (sched.step()) {
    auditor.check();
    if (net::shutdown_signal_count() >= 2) {
      out.interrupted = true;  // operator insisted: skip the drain
      break;
    }
    if (++out.drain_steps > drain_cap) {
      out.drained = false;  // livelock/deadlock: a hard failure
      break;
    }
  }
  auditor.check_idle();
  out.stats = engine.stats();
  out.snap = sched.audit_snapshot();
  out.violations = auditor.violations();
  return out;
}

// ---------------------------------------------------------------------
// Network chaos soak (--net): the same stack fronted by the HTTP server
// over deterministic sim transports and a virtual clock.
// ---------------------------------------------------------------------

constexpr std::int64_t kNetStepMs = 100;  // virtual ms per soak step

net::ServerConfig net_soak_server_cfg() {
  net::ServerConfig cfg;
  cfg.max_connections = 32;           // bursts of clients can hit the cap
  cfg.max_write_buffer_bytes = 512;   // stalled streams overflow quickly
  cfg.header_timeout_ms = 1500;       // 15 steps: kills the 1 B/step loris
  cfg.idle_timeout_ms = 5000;
  cfg.write_stall_timeout_ms = 1000;  // 10 steps of zero write progress
  cfg.drain_timeout_ms = 3000;
  cfg.step_scheduler = false;         // the soak loop owns step()
  return cfg;
}

chaos::NetChaosConfig net_soak_chaos_cfg(std::uint64_t seed) {
  chaos::NetChaosConfig cfg;
  cfg.seed = seed;
  cfg.step_ms = kNetStepMs;
  cfg.connect_rate = 0.15;
  cfg.burst_rate = 0.02;
  cfg.burst_size = 6;
  cfg.disconnect_rate = 0.05;
  cfg.loris_rate = 0.02;
  cfg.stall_rate = 0.02;
  cfg.malformed_rate = 0.02;
  cfg.pipe_capacity = 128;  // small pipes make backpressure real
  cfg.max_new_min = 4;      // long enough streams to disconnect into
  cfg.max_new_max = 12;
  return cfg;
}

struct NetSoakOutcome {
  chaos::ChaosStats phys;
  chaos::NetChaosStats netstats;
  net::NetMetrics netm;
  serve::AuditSnapshot snap;
  std::vector<std::string> violations;
  std::int64_t soak_steps = 0;
  std::int64_t drain_steps = 0;
  bool drained = true;
  bool server_drained = false;  // request_shutdown() reached drained()
  bool interrupted = false;
};

NetSoakOutcome run_net_soak(std::uint64_t seed, std::int64_t steps) {
  nn::TransformerLM model = make_model();
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/5050, {});
  serve::SchedulerConfig scfg = soak_sched_cfg(&monitor);
  scfg.record_events = true;  // the server streams from drain_events()
  serve::Scheduler sched(model, scfg);

  // Physical chaos keeps hammering the substrate; direct traffic is
  // dialed down — the HTTP clients are the load now.
  chaos::ChaosConfig ccfg = soak_chaos_cfg(seed);
  ccfg.submit_rate = 0.1;
  ccfg.burst_rate = 0.0;
  ccfg.cancel_rate = 0.01;
  chaos::ChaosEngine engine(sched, model, ccfg);

  net::HttpServer server(sched, net_soak_server_cfg());
  chaos::NetChaosEngine net_engine(server, net_soak_chaos_cfg(seed),
                                   soak_arch().vocab_size);
  serve::Auditor auditor(sched);
  NetSoakOutcome out;

  for (std::int64_t s = 0; s < steps; ++s) {
    if (net::shutdown_requested()) {
      out.interrupted = true;
      break;
    }
    const std::int64_t now = s * kNetStepMs;
    engine.tick(s);
    net_engine.tick(s);
    server.pump(now);  // ingest requests, run timeouts
    sched.step();
    server.pump(now);  // route this step's tokens into the pipes
    auditor.check();
    ++out.soak_steps;
  }

  // Drain: no new spawns (rates only fire through tick's draws against
  // future steps, but the client population still needs driving until
  // every connection reaches a terminal fate).
  const std::int64_t drain_cap = steps * 4 + 10000;
  std::int64_t s = steps;
  while (sched.in_flight() > 0 || !net_engine.all_done() ||
         server.connections() > 0) {
    if (net::shutdown_signal_count() >= 2) {
      out.interrupted = true;
      break;
    }
    const std::int64_t now = s * kNetStepMs;
    net_engine.tick(s);  // all rates re-drawn per step; drives clients
    server.pump(now);
    sched.step();
    server.pump(now);
    auditor.check();
    ++s;
    if (++out.drain_steps > drain_cap) {
      out.drained = false;
      break;
    }
  }

  // Graceful-drain gate: with everything idle this must complete
  // immediately; with stragglers it must finish inside drain_timeout.
  server.request_shutdown(s * kNetStepMs);
  for (std::int64_t d = 0; d <= 64 && !server.drained(); ++d) {
    server.pump((s + d) * kNetStepMs);
    sched.step();
  }
  out.server_drained = server.drained();

  auditor.check_idle();
  out.phys = engine.stats();
  out.netstats = net_engine.stats();
  out.netm = server.net_metrics();
  out.snap = sched.audit_snapshot();
  out.violations = auditor.violations();
  return out;
}

int run_net_mode(std::uint64_t seed, std::int64_t steps) {
  std::printf("network chaos soak: %lld steps, seed %llu\n",
              static_cast<long long>(steps),
              static_cast<unsigned long long>(seed));

  // Replay gate: same seed, same virtual clock, same sim pipes — the
  // injection schedule AND every connection outcome must reproduce.
  {
    const std::int64_t replay_steps = std::min<std::int64_t>(steps, 500);
    const NetSoakOutcome a = run_net_soak(seed, replay_steps);
    const NetSoakOutcome b = run_net_soak(seed, replay_steps);
    if (a.interrupted || b.interrupted) return 0;
    const bool replay_ok =
        a.netstats.total_events() == b.netstats.total_events() &&
        a.netstats.streams_completed == b.netstats.streams_completed &&
        a.netstats.tokens_received == b.netstats.tokens_received &&
        a.netstats.bytes_received == b.netstats.bytes_received &&
        a.netm.accepted == b.netm.accepted &&
        a.netm.header_timeouts == b.netm.header_timeouts &&
        a.netm.disconnect_cancels == b.netm.disconnect_cancels &&
        a.snap.states == b.snap.states &&
        a.snap.metrics.generated_tokens == b.snap.metrics.generated_tokens;
    std::printf("replay gate (%lld steps twice, same seed): %s\n",
                static_cast<long long>(replay_steps),
                replay_ok ? "PASS" : "FAIL");
    if (!replay_ok) return 1;
  }

  const NetSoakOutcome out = run_net_soak(seed, steps);
  const serve::Metrics& m = out.snap.metrics;

  std::int64_t terminal = 0;
  for (const auto st : out.snap.states) {
    if (st != serve::RequestState::kQueued &&
        st != serve::RequestState::kRunning) {
      ++terminal;
    }
  }

  std::printf("\ninjected: %lld connects (%lld bursts), %lld disconnects, "
              "%lld loris, %lld stalls, %lld malformed; physical: %lld "
              "upsets, %lld wears, %lld storms\n",
              static_cast<long long>(out.netstats.connects),
              static_cast<long long>(out.netstats.bursts),
              static_cast<long long>(out.netstats.disconnects),
              static_cast<long long>(out.netstats.loris_spawned),
              static_cast<long long>(out.netstats.stalls_spawned),
              static_cast<long long>(out.netstats.malformed_sent),
              static_cast<long long>(out.phys.upsets),
              static_cast<long long>(out.phys.wears),
              static_cast<long long>(out.phys.storms));
  std::printf("client view: %lld 2xx, %lld 4xx, %lld 5xx, %lld streams "
              "completed, %lld tokens received\n",
              static_cast<long long>(out.netstats.responses_2xx),
              static_cast<long long>(out.netstats.responses_4xx),
              static_cast<long long>(out.netstats.responses_5xx),
              static_cast<long long>(out.netstats.streams_completed),
              static_cast<long long>(out.netstats.tokens_received));
  std::printf("server view: %s\n", out.netm.to_json(0).c_str());
  std::printf("%s\n", m.to_string().c_str());

  if (out.interrupted) {
    std::printf("interrupted by signal: drained, final metrics above\n");
    return 0;
  }

  bool ok = true;
  auto criterion = [&ok](const char* name, bool pass) {
    std::printf("criterion %-38s %s\n", name, pass ? "PASS" : "FAIL");
    ok = ok && pass;
  };
  criterion("drained to idle (no livelock):", out.drained);
  criterion("server drained gracefully:", out.server_drained);
  criterion("zero auditor violations:", out.violations.empty());
  for (std::size_t i = 0; i < out.violations.size() && i < 10; ++i) {
    std::printf("  VIOLATION: %s\n", out.violations[i].c_str());
  }
  criterion("zero leaked KV slabs:",
            out.snap.pool_live == 0 && out.snap.pool_used == 0 &&
                out.snap.pool_acquires == out.snap.pool_releases);
  criterion("every request terminal:",
            terminal == static_cast<std::int64_t>(out.snap.states.size()));
  criterion("streams actually completed:",
            out.netstats.streams_completed > 0 &&
                out.netstats.responses_2xx > 0);
  criterion("loris died to header timeout:",
            out.netstats.loris_spawned > 0 && out.netm.header_timeouts > 0);
  criterion("stalled writers reaped + cancelled:",
            out.netstats.stall_reaped > 0 &&
                out.netm.write_stall_cancels + out.netm.overflow_closes > 0);
  criterion("disconnects cancelled scheduler work:",
            out.netstats.disconnects > 0 && out.netm.disconnect_cancels > 0);
  criterion("malformed requests rejected:",
            out.netstats.malformed_sent > 0 && out.netm.malformed > 0);
  criterion("chaos actually fired:",
            out.netstats.total_events() > 0 && out.phys.upsets > 0);
  return ok ? 0 : 1;
}

/// Chaos-disabled gate: a fixed request set served one-at-a-time and
/// continuously batched must produce bit-identical tokens (the serving
/// determinism contract the golden-stream tests pin down).
bool run_golden_gate() {
  auto run = [](int max_batch) {
    nn::TransformerLM model = make_model();
    serve::SchedulerConfig cfg;
    cfg.max_batch = max_batch;
    serve::Scheduler sched(model, cfg);
    chaos::ChaosConfig ccfg;  // all rates zero: must be a strict no-op
    chaos::ChaosEngine engine(sched, model, ccfg);
    std::vector<std::int64_t> ids;
    for (int i = 0; i < 8; ++i) {
      serve::RequestParams p;
      p.prompt = {3 + i % 5, 1, 4, 1, 5};
      p.max_new_tokens = 8;
      p.stream_seed = 700 + static_cast<std::uint64_t>(i);
      ids.push_back(sched.submit(std::move(p)));
    }
    std::int64_t s = 0;
    bool busy = true;
    while (busy) {
      engine.tick(s++);
      busy = sched.step();
    }
    std::vector<std::vector<int>> tokens;
    for (const auto id : ids) tokens.push_back(sched.request(id).tokens);
    return tokens;
  };
  const auto seq = run(1);
  const auto bat = run(8);
  return seq == bat;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const bool no_chaos = cli.get_flag("no-chaos");
  const bool net = cli.get_flag("net");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2300));
  const std::int64_t steps = cli.get_int("steps", smoke ? 1500 : 10000);
  cli.check_unknown();
  util::ThreadPool::global().resize(1);
  net::install_signal_handlers();

  if (net) return run_net_mode(seed, steps);

  if (no_chaos) {
    const bool ok = run_golden_gate();
    std::printf("chaos disabled: sequential vs batched serve output "
                "bit-identical: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  std::printf("chaos soak: %lld steps, seed %llu%s\n",
              static_cast<long long>(steps),
              static_cast<unsigned long long>(seed), smoke ? " (smoke)" : "");

  // Replay gate first (cheap): the same seed must reproduce the same
  // injection schedule and the same per-request outcomes.
  {
    const std::int64_t replay_steps = std::min<std::int64_t>(steps, 500);
    const SoakOutcome a = run_soak(seed, replay_steps);
    const SoakOutcome b = run_soak(seed, replay_steps);
    if (a.interrupted || b.interrupted) {
      std::printf("interrupted by signal during replay gate: drained\n");
      return 0;
    }
    const bool replay_ok =
        a.stats.total_events() == b.stats.total_events() &&
        a.stats.upsets == b.stats.upsets && a.stats.wears == b.stats.wears &&
        a.stats.storms == b.stats.storms &&
        a.stats.cancels_accepted == b.stats.cancels_accepted &&
        a.snap.states == b.snap.states &&
        a.snap.metrics.generated_tokens == b.snap.metrics.generated_tokens;
    std::printf("replay gate (%lld steps twice, same seed): %s\n",
                static_cast<long long>(replay_steps),
                replay_ok ? "PASS" : "FAIL");
    if (!replay_ok) return 1;
  }

  const SoakOutcome out = run_soak(seed, steps);
  const serve::Metrics& m = out.snap.metrics;

  std::int64_t terminal = 0;
  for (const auto st : out.snap.states) {
    if (st != serve::RequestState::kQueued &&
        st != serve::RequestState::kRunning) {
      ++terminal;
    }
  }
  // Finished fraction over requests the system was actually asked to
  // complete: harness-injected cancels are deliberate aborts, so they
  // leave the denominator; expiries stay in it (a deadline miss under
  // load is the scheduler's failure to deliver, not an injected abort).
  const std::int64_t non_rejected = m.submitted - m.rejected - m.cancelled;
  const double finished_frac =
      non_rejected > 0
          ? static_cast<double>(m.finished) / static_cast<double>(non_rejected)
          : 1.0;

  std::printf("\ninjected: %lld upsets, %lld wears, %lld storms, %lld "
              "submits (%lld bursts), %lld/%lld cancels accepted, %lld "
              "skipped\n",
              static_cast<long long>(out.stats.upsets),
              static_cast<long long>(out.stats.wears),
              static_cast<long long>(out.stats.storms),
              static_cast<long long>(out.stats.submits),
              static_cast<long long>(out.stats.bursts),
              static_cast<long long>(out.stats.cancels_accepted),
              static_cast<long long>(out.stats.cancels_attempted),
              static_cast<long long>(out.stats.skipped));
  std::printf("%s\n", m.to_string().c_str());
  std::printf("auditor: %lld checks, %zu violations\n",
              static_cast<long long>(out.soak_steps + out.drain_steps + 1),
              out.violations.size());
  for (std::size_t i = 0; i < out.violations.size() && i < 10; ++i) {
    std::printf("  VIOLATION: %s\n", out.violations[i].c_str());
  }

  if (out.interrupted) {
    std::printf("interrupted by signal: drained, final metrics above\n");
    return 0;
  }

  // --- acceptance criteria -------------------------------------------
  bool ok = true;
  auto criterion = [&ok](const char* name, bool pass) {
    std::printf("criterion %-38s %s\n", name, pass ? "PASS" : "FAIL");
    ok = ok && pass;
  };
  criterion("drained to idle (no livelock):", out.drained);
  criterion("zero auditor violations:", out.violations.empty());
  criterion("zero leaked KV slabs:",
            out.snap.pool_live == 0 && out.snap.pool_used == 0 &&
                out.snap.pool_acquires == out.snap.pool_releases);
  criterion("every request terminal:",
            terminal == static_cast<std::int64_t>(out.snap.states.size()));
  std::printf("  finished %lld / %lld non-rejected non-cancelled (%.2f%%)\n",
              static_cast<long long>(m.finished),
              static_cast<long long>(non_rejected), 100.0 * finished_frac);
  criterion(">= 99% of non-rejected finished:", finished_frac >= 0.99);
  criterion("chaos actually fired:", out.stats.total_events() > 0 &&
                                         out.stats.upsets > 0 &&
                                         out.stats.submits > 0);
  return ok ? 0 : 1;
}
