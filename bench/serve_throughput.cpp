// Continuous-batching serving throughput and latency.
//
// Phase 1 (criterion): the same request set is served twice through the
// analog-deployed model — one request at a time (max_batch=1) and
// continuously batched (max_batch=8). Batching shares every analog tile
// pass across the whole batch and fans the per-row work items over the
// thread pool, so tokens/s must scale. The acceptance criterion
// (batched >= 2x sequential at mean occupancy >= 4) is only meaningful
// when the pool actually has parallel hardware: it is enforced at >= 4
// effective threads (the GitHub CI runner class); below that the bench
// still runs and instead enforces a no-regression floor, loudly saying
// so. The determinism cross-check (batched output bit-identical to
// sequential output) is hardware-independent and always enforced.
//
// Phase 2: open-loop Poisson arrivals replayed deterministically at
// several offered loads; reports occupancy, tokens/s and p50/p95 TTFT —
// on the wall clock AND on the simulated-hardware clock (the timing
// co-simulator replays each step's op trace against DeviceCosts-derived
// resource models; sim columns are replay-exact at any thread count).
//
//   ./serve_throughput [--model=opt-1.3b-sim] [--threads=N] [--batch=8]
//                      [--requests=24] [--tokens=20] [--smoke]
//                      [--pipeline-depth=1] [--tile-read-ns=100] ...
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/nora.hpp"
#include "cost/device_costs_cli.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "serve/scheduler.hpp"
#include "timing/hw_model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace nora;

namespace {

struct RunResult {
  serve::Metrics metrics;
  double wall_s = 0.0;  // end-to-end serving wall time
  std::vector<std::vector<int>> tokens;  // per request, submit order
  double tokens_per_s() const {
    return wall_s > 0.0
               ? static_cast<double>(metrics.generated_tokens) / wall_s
               : 0.0;
  }
};

std::vector<std::vector<int>> make_prompts(const eval::SynthLambada& task,
                                           int n) {
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < n; ++i) {
    prompts.push_back(
        task.make_example("test", static_cast<std::uint64_t>(i)).tokens);
  }
  return prompts;
}

/// Serve all prompts, submitted upfront (closed-loop saturation).
RunResult run_saturated(nn::TransformerLM& model,
                        const std::vector<std::vector<int>>& prompts,
                        int max_batch, int n_tokens) {
  serve::SchedulerConfig cfg;
  cfg.max_batch = max_batch;
  serve::Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    serve::RequestParams p;
    p.prompt = prompts[i];
    p.max_new_tokens = n_tokens;
    // Fixed per-request streams: the sequential and batched runs must
    // produce bit-identical outputs (the serving determinism contract).
    p.stream_seed = 1000 + i;
    ids.push_back(sched.submit(std::move(p)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  sched.run_until_idle();
  RunResult r;
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.metrics = sched.metrics();
  for (const auto id : ids) r.tokens.push_back(sched.request(id).tokens);
  return r;
}

/// Open-loop: deterministic Poisson arrivals at `load` requests/step.
/// `streams` (optional) pins each request's noise stream — the prefix
/// phase uses it to make shared-prompt requests share (or not share) a
/// stream; null keeps the distinct per-request default.
RunResult run_poisson(nn::TransformerLM& model,
                      const std::vector<std::vector<int>>& prompts,
                      int max_batch, int n_tokens, double load,
                      std::uint64_t seed,
                      const std::vector<std::uint64_t>* streams = nullptr,
                      const timing::TimingConfig* timing = nullptr) {
  std::vector<std::int64_t> arrival_step(prompts.size());
  util::Rng rng(seed);
  double t = 0.0;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    t += -std::log(1.0 - rng.uniform()) / load;
    arrival_step[i] = static_cast<std::int64_t>(t);
  }
  serve::SchedulerConfig cfg;
  cfg.max_batch = max_batch;
  if (timing != nullptr) cfg.timing = *timing;
  serve::Scheduler sched(model, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t next = 0;
  bool busy = true;
  while (next < prompts.size() || busy) {
    while (next < prompts.size() &&
           arrival_step[next] <= sched.current_step()) {
      serve::RequestParams p;
      p.prompt = prompts[next];
      p.max_new_tokens = n_tokens;
      p.stream_seed = streams != nullptr ? (*streams)[next] : 2000 + next;
      sched.submit(std::move(p));
      ++next;
    }
    busy = sched.step();
    // The step clock only ticks while there is work; a fully drained
    // scheduler fast-forwards to the next arrival.
    if (!busy && next < prompts.size()) {
      arrival_step[next] = sched.current_step();
      busy = true;
    }
  }
  RunResult r;
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.metrics = sched.metrics();
  return r;
}

/// 80%-shared-prefix workload: four of every five requests extend one
/// common prompt head with a short unique tail (a system-prompt / multi-
/// turn shape); the rest are unique cold prompts. With `reuse` the
/// shared requests ride one noise stream — the precondition for KV
/// prefix-cache hits — and without it they get distinct streams, which
/// makes sharing impossible and gives the no-reuse baseline for the
/// SAME token workload.
struct PrefixWorkload {
  std::vector<std::vector<int>> prompts;
  std::vector<std::uint64_t> streams;
};

PrefixWorkload make_prefix_workload(
    const std::vector<std::vector<int>>& base, std::size_t head_tokens,
    bool reuse) {
  PrefixWorkload w;
  // A long shared head makes the workload prefill-heavy — the shape
  // where prompt reuse pays. Concatenate base prompts up to the target.
  std::vector<int> head;
  for (const auto& b : base) {
    head.insert(head.end(), b.begin(), b.end());
    if (head.size() >= head_tokens) break;
  }
  if (head.size() > head_tokens) head.resize(head_tokens);
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (i % 5 != 0) {  // 80% shared
      std::vector<int> p = head;
      p.push_back(head[i % head.size()]);
      p.push_back(head[(3 * i + 1) % head.size()]);
      w.prompts.push_back(std::move(p));
      w.streams.push_back(reuse ? 5000 : 6000 + i);
    } else {
      w.prompts.push_back(base[i]);
      w.streams.push_back(7000 + i);
    }
  }
  return w;
}

void deploy(nn::TransformerLM& model, const eval::SynthLambada& task,
            int threads) {
  model.to_digital();
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::paper_table2();
  opts.tile.n_threads = threads;
  opts.nora.enabled = true;
  core::deploy_analog(model, task, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const std::string name = cli.get("model", "opt-1.3b-sim");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads =
      static_cast<int>(cli.get_int("threads", hw > 0 ? hw : 1));
  const int batch = static_cast<int>(cli.get_int("batch", 8));
  // Decode-heavy defaults (short prompt, long generation): prefill rows
  // parallelize even under sequential serving, so the batching win the
  // criterion measures lives almost entirely in the decode steps.
  const int n_requests =
      static_cast<int>(cli.get_int("requests", smoke ? 12 : 24));
  const int n_tokens =
      static_cast<int>(cli.get_int("tokens", smoke ? 16 : 20));
  // Timing co-sim for the Poisson phase: simulated-hardware latency
  // columns next to the wall-clock ones. Every DeviceCosts constant is
  // a flag (cost/device_costs_cli.hpp); depth 1 = unpipelined tiles.
  timing::TimingConfig sim_cfg;
  sim_cfg.enabled = true;
  sim_cfg.pipeline_depth =
      static_cast<int>(cli.get_int("pipeline-depth", 1));
  sim_cfg.costs = cost::device_costs_from_cli(cli);
  cli.check_unknown();

  const model::ModelSpec spec = model::spec_by_name(name);
  eval::SynthLambadaConfig task_cfg = spec.task;
  task_cfg.seq_len = spec.task.seq_len - n_tokens;  // decode headroom
  const eval::SynthLambada task(task_cfg);
  auto model = model::get_or_train(spec);
  const auto prompts = make_prompts(task, n_requests);

  std::printf(
      "Continuous-batching serving throughput — %s, NORA analog "
      "(Table II), %d requests x %d tokens, %d threads%s\n\n",
      name.c_str(), n_requests, n_tokens, threads, smoke ? ", smoke" : "");

  // --- phase 1: saturation speedup criterion -------------------------
  deploy(*model, task, threads);
  const RunResult seq = run_saturated(*model, prompts, /*max_batch=*/1,
                                      n_tokens);
  deploy(*model, task, threads);  // fresh tiles: independent measurement
  const RunResult bat = run_saturated(*model, prompts, batch, n_tokens);

  const double speedup =
      seq.tokens_per_s() > 0.0 ? bat.tokens_per_s() / seq.tokens_per_s()
                               : 0.0;
  const bool deterministic = seq.tokens == bat.tokens;

  util::Table table({"mode", "occupancy", "tok/s", "TTFT p50 (s)",
                     "TTFT p95 (s)", "KV high water (tok)"});
  auto add_mode = [&table](const char* mode, const RunResult& r) {
    table.add_row({mode, util::Table::num(r.metrics.mean_occupancy(), 2),
                   util::Table::num(r.tokens_per_s(), 1),
                   util::Table::num(r.metrics.ttft_p50_s(), 4),
                   util::Table::num(r.metrics.ttft_p95_s(), 4),
                   std::to_string(r.metrics.kv_high_water_tokens)});
  };
  add_mode("sequential (batch 1)", seq);
  add_mode("batched", bat);
  table.print();
  std::printf("\nbatched vs sequential speedup: %.2fx at mean occupancy "
              "%.2f\n",
              speedup, bat.metrics.mean_occupancy());
  std::printf("determinism cross-check (batched output bit-identical to "
              "sequential): %s\n\n",
              deterministic ? "PASS" : "FAIL");

  // --- phase 2: Poisson replay ---------------------------------------
  const std::vector<double> loads =
      smoke ? std::vector<double>{0.3} : std::vector<double>{0.15, 0.3, 0.6};
  util::Table ptable({"offered load (req/step)", "finished", "occupancy",
                      "tok/s", "queue wait (steps)", "TTFT p50 (s)",
                      "TTFT p95 (s)", "sim TTFT p50 (us)",
                      "sim TPOT p50 (us)", "sim goodput (tok/s)"});
  for (const double load : loads) {
    deploy(*model, task, threads);
    const RunResult r = run_poisson(*model, prompts, batch, n_tokens, load,
                                    /*seed=*/99, nullptr, &sim_cfg);
    ptable.add_row({util::Table::num(load, 2),
                    std::to_string(r.metrics.finished),
                    util::Table::num(r.metrics.mean_occupancy(), 2),
                    util::Table::num(r.tokens_per_s(), 1),
                    util::Table::num(r.metrics.mean_queue_wait_steps(), 2),
                    util::Table::num(r.metrics.ttft_p50_s(), 4),
                    util::Table::num(r.metrics.ttft_p95_s(), 4),
                    util::Table::num(r.metrics.sim_ttft_p50_us(), 1),
                    util::Table::num(r.metrics.sim_tpot_p50_us(), 2),
                    util::Table::num(r.metrics.sim_goodput_tokens_per_s(),
                                     0)});
  }
  std::printf("Poisson open-loop replay (deterministic arrival trace; sim "
              "columns are simulated-hardware time from the timing "
              "co-simulator):\n");
  ptable.print();
  ptable.write_csv("results/serve_throughput.csv");

  // --- phase 3: KV prefix-reuse criterion ----------------------------
  // Same 80%-shared-prefix Poisson workload twice: once with the shared
  // requests on one noise stream (prefix cache can share their head
  // rows) and once on distinct streams (sharing impossible). The tokens
  // generated are the same count, so the decode tok/s ratio is exactly
  // the wall-time won by not re-prefilling the shared head.
  // Prefill-heavy shape: shared head as long as max_seq allows after a
  // short generation, arrivals calm enough that a predecessor usually
  // retires (publishes) before the next shared request is admitted.
  const int p3_tokens = smoke ? 6 : 8;
  const std::size_t head_tokens = static_cast<std::size_t>(
      task_cfg.seq_len + n_tokens - p3_tokens - 2);
  const PrefixWorkload pw_cold =
      make_prefix_workload(prompts, head_tokens, false);
  const PrefixWorkload pw_warm =
      make_prefix_workload(prompts, head_tokens, true);
  deploy(*model, task, threads);
  const RunResult pcold = run_poisson(*model, pw_cold.prompts, batch,
                                      p3_tokens, 0.15, /*seed=*/77,
                                      &pw_cold.streams);
  deploy(*model, task, threads);
  const RunResult pwarm = run_poisson(*model, pw_warm.prompts, batch,
                                      p3_tokens, 0.15, /*seed=*/77,
                                      &pw_warm.streams);
  const double reuse_speedup =
      pcold.tokens_per_s() > 0.0 ? pwarm.tokens_per_s() / pcold.tokens_per_s()
                                 : 0.0;
  std::printf(
      "\n80%%-shared-prefix Poisson workload: no-reuse %.1f tok/s, "
      "prefix-reuse %.1f tok/s (%.2fx), %lld hits / %lld warm tokens, "
      "%lld published\n",
      pcold.tokens_per_s(), pwarm.tokens_per_s(), reuse_speedup,
      static_cast<long long>(pwarm.metrics.kv_prefix_hits),
      static_cast<long long>(pwarm.metrics.kv_prefix_hit_tokens),
      static_cast<long long>(pwarm.metrics.kv_prefix_published));

  std::printf("\nbatched metrics (saturation run):\n%s\n",
              bat.metrics.to_json().c_str());

  // --- acceptance ----------------------------------------------------
  bool ok = deterministic;
  if (!deterministic) {
    std::printf("FAIL: batching changed request outputs — the per-request "
                "noise-stream keying is broken.\n");
  }
  // Prefix reuse is a structural win (skipped prefill passes), so the
  // criterion holds at any thread count; no-reuse on the same workload
  // must also have produced zero hits, or the baseline is not cold.
  const bool reuse_ok = reuse_speedup >= 1.5 &&
                        pwarm.metrics.kv_prefix_hits > 0 &&
                        pcold.metrics.kv_prefix_hits == 0;
  std::printf("prefix-reuse criterion (>= 1.5x decode tok/s on the "
              "80%%-shared workload): %s\n",
              reuse_ok ? "PASS" : "FAIL");
  ok = ok && reuse_ok;
  if (threads >= 4) {
    const bool fast = speedup >= 2.0 && bat.metrics.mean_occupancy() >= 4.0;
    std::printf("throughput criterion (>= 2.0x at occupancy >= 4, %d "
                "threads): %s\n",
                threads, fast ? "PASS" : "FAIL");
    ok = ok && fast;
  } else {
    // One- or two-core hosts cannot express the fan-out win; hold the
    // line at "batching must not cost throughput" and say so loudly.
    const bool no_regression = speedup >= 0.85;
    std::printf(
        "NOTE: only %d effective thread(s) — the 2x speedup criterion "
        "needs >= 4 (it measures thread-pool fan-out across the batch). "
        "Enforcing no-regression floor instead (>= 0.85x): %s\n",
        threads, no_regression ? "PASS" : "FAIL");
    ok = ok && no_regression;
  }
  return ok ? 0 : 1;
}
