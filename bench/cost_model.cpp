// Energy / latency / area comparison of analog CIM vs digital inference
// (the paper's "future work" evaluation, and the quantitative backing
// for its introduction's energy-efficiency motivation).
//
// Prints, for each zoo model: per-forward energy and latency on digital
// fp32, digital INT8, and analog CIM at the Table II operating point,
// with the analog energy breakdown (ADC / DAC / crossbar) — plus the
// ADC-resolution sweep showing where the analog advantage erodes
// (ADC energy scales exponentially in bits, the classic analog-CIM
// design tension the paper's 7-bit choice reflects).
//
// Besides the tables/CSVs, --out writes one machine-readable JSON report
// (same pattern as bench/serve_load) so CI and EXPERIMENTS.md can diff
// energy/latency numbers across PRs. Every DeviceCosts constant is a
// --flag (see cost/device_costs_cli.hpp).
//
//   ./cost_model [--tokens=32] [--out=results/cost_model.json]
//                [--tile-read-ns=100] [--adc-fom-fj=30] ...
#include <cstdio>
#include <string>

#include "cost/cost_model.hpp"
#include "cost/device_costs_cli.hpp"
#include "model/zoo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::int64_t tokens = cli.get_int("tokens", 32);
  const std::string out_path = cli.get("out", "results/cost_model.json");
  const cost::DeviceCosts dev = cost::device_costs_from_cli(cli);
  cli.check_unknown();
  const cim::TileConfig hw = cim::TileConfig::paper_table2();

  std::printf("Analytic cost model — energy/latency of all linear layers, "
              "one forward pass over %lld tokens\n\n",
              static_cast<long long>(tokens));

  std::string json = "{\"tokens\":" + std::to_string(tokens) +
                     ",\"tile_read_ns\":" +
                     std::to_string(dev.tile_read_latency_ns) +
                     ",\"models\":[";
  bool first_model_entry = true;

  util::Table table({"model", "backend", "energy (nJ)", "latency (us)",
                     "adc (nJ)", "dac (nJ)", "cells (nJ)", "macs (nJ)",
                     "mem (nJ)"});
  for (const auto& name : model::all_models()) {
    auto m = model::get_or_train(name, /*verbose=*/false);
    for (const auto backend :
         {cost::Backend::kDigitalFp32, cost::Backend::kDigitalInt8,
          cost::Backend::kAnalogCim}) {
      const auto c = cost::model_linear_cost(*m, tokens, backend, hw, dev);
      double adc = 0.0, dac = 0.0, cell = 0.0, mac = 0.0, mem = 0.0;
      for (const auto& l : c.layers) {
        adc += l.adc_pj;
        dac += l.dac_pj;
        cell += l.cell_pj;
        mac += l.mac_pj;
        mem += l.mem_pj;
      }
      const char* label = backend == cost::Backend::kDigitalFp32 ? "digital fp32"
                          : backend == cost::Backend::kDigitalInt8
                              ? "digital int8"
                              : "analog CIM";
      table.add_row({name, label, util::Table::num(c.energy_pj * 1e-3, 2),
                     util::Table::num(c.latency_ns * 1e-3, 2),
                     util::Table::num(adc * 1e-3, 2),
                     util::Table::num(dac * 1e-3, 2),
                     util::Table::num(cell * 1e-3, 2),
                     util::Table::num(mac * 1e-3, 2),
                     util::Table::num(mem * 1e-3, 2)});
      char entry[512];
      std::snprintf(entry, sizeof(entry),
                    "%s{\"model\":\"%s\",\"backend\":\"%s\","
                    "\"energy_pj\":%.6g,\"latency_ns\":%.6g,"
                    "\"adc_pj\":%.6g,\"dac_pj\":%.6g,\"cell_pj\":%.6g,"
                    "\"mac_pj\":%.6g,\"mem_pj\":%.6g}",
                    first_model_entry ? "" : ",", name.c_str(), label,
                    c.energy_pj, c.latency_ns, adc, dac, cell, mac, mem);
      json += entry;
      first_model_entry = false;
    }
  }
  table.print();
  table.write_csv("results/cost_model.csv");

  // ADC-bits sweep: the exponential converter cost that motivates the
  // paper's <=7-bit constraint (Sec. I: "energy and area constraints of
  // high-resolution A/D converters").
  std::printf("\nADC/DAC resolution sweep (opt-6.7b-sim, analog):\n");
  util::Table sweep({"bits", "energy (nJ)", "adc share (%)",
                     "vs digital int8 (x)"});
  auto m = model::get_or_train("opt-6.7b-sim", /*verbose=*/false);
  const auto dig = cost::model_linear_cost(*m, tokens,
                                           cost::Backend::kDigitalInt8, hw, dev);
  json += "],\"bits_sweep\":[";
  bool first_sweep_entry = true;
  for (const int bits : {5, 6, 7, 8, 9, 10, 11, 12}) {
    cim::TileConfig cfg = hw;
    cfg.dac_bits = bits;
    cfg.adc_bits = bits;
    const auto c =
        cost::model_linear_cost(*m, tokens, cost::Backend::kAnalogCim, cfg, dev);
    double adc = 0.0;
    for (const auto& l : c.layers) adc += l.adc_pj;
    sweep.add_row({std::to_string(bits), util::Table::num(c.energy_pj * 1e-3, 2),
                   util::Table::num(100.0 * adc / c.energy_pj, 1),
                   util::Table::num(dig.energy_pj / c.energy_pj, 2)});
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "%s{\"bits\":%d,\"energy_pj\":%.6g,\"adc_share\":%.6g,"
                  "\"vs_int8\":%.6g}",
                  first_sweep_entry ? "" : ",", bits, c.energy_pj,
                  adc / c.energy_pj, dig.energy_pj / c.energy_pj);
    json += entry;
    first_sweep_entry = false;
  }
  json += "]}";
  sweep.print();
  sweep.write_csv("results/cost_model_bits.csv");
  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "WARNING: cannot write %s\n", out_path.c_str());
    }
  }
  std::printf("\nshape check: ADC energy doubles per bit and dominates "
              "beyond ~8-9 bits,\neroding the analog advantage — which is "
              "why low-resolution converters (and\nhence NORA-style accuracy "
              "rescue) matter.\n");
  return 0;
}
