// Ablation (paper Sec. VII): NVM device families and weight-programming
// quality.
//
//  (1) PCM (continuous conductance) vs ReRAM (discrete levels,
//      bit-sliced over 1/2/3 cells of 4 bits): the paper claims NORA
//      extends to ReRAM as long as multi-cell slicing provides >= 8-bit
//      weight precision.
//  (2) write-verify programming iterations [Buechel'23, Mackin'22]:
//      weight-side fabrication error shrinks with extra program/verify
//      rounds — but since LLMs are weight-noise-resilient (Fig. 3h),
//      accuracy barely cares, which is exactly why NORA can dump the
//      conversion burden there.
//
//   ./ablation_device [--examples=N] [--model=name]
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const std::string m = cli.get("model", "opt-6.7b-sim");

  const auto fp = bench::eval_digital(m, n_examples);
  std::printf("Ablation — NVM device family and programming quality, model "
              "%s (fp32 %.2f%%, %d examples)\n\n",
              m.c_str(), 100.0 * fp.accuracy, n_examples);

  util::Table dev({"device", "weight precision", "naive (%)", "NORA (%)"});
  {
    cim::TileConfig pcm = cim::TileConfig::paper_table2();
    const auto naive = bench::eval_analog(m, pcm, false, 0.5f, n_examples);
    const auto nora = bench::eval_analog(m, pcm, true, 0.5f, n_examples);
    dev.add_row({"PCM (continuous)", "analog", util::Table::pct(naive.accuracy),
                 util::Table::pct(nora.accuracy)});
  }
  for (const int cells : {1, 2, 3}) {
    cim::TileConfig reram = cim::TileConfig::paper_table2();
    reram.device = cim::DeviceKind::kReramQuantized;
    reram.reram_bits_per_cell = 4;
    reram.reram_cells_per_weight = cells;
    const auto naive = bench::eval_analog(m, reram, false, 0.5f, n_examples);
    const auto nora = bench::eval_analog(m, reram, true, 0.5f, n_examples);
    dev.add_row({"ReRAM (" + std::to_string(cells) + " cell x 4b)",
                 std::to_string(4 * cells) + "-bit",
                 util::Table::pct(naive.accuracy),
                 util::Table::pct(nora.accuracy)});
  }
  dev.print("(1) device family:");
  dev.write_csv("results/ablation_device.csv");

  std::printf("\n");
  util::Table wv({"write-verify iters", "naive (%)", "NORA (%)"});
  for (const int iters : {1, 2, 4, 8}) {
    cim::TileConfig cfg = cim::TileConfig::paper_table2();
    cfg.prog_noise_scale = 4.0f;  // exaggerated so the effect is visible
    cfg.write_verify_iters = iters;
    const auto naive = bench::eval_analog(m, cfg, false, 0.5f, n_examples);
    const auto nora = bench::eval_analog(m, cfg, true, 0.5f, n_examples);
    wv.add_row({std::to_string(iters), util::Table::pct(naive.accuracy),
                util::Table::pct(nora.accuracy)});
  }
  wv.print("(2) write-verify programming (programming noise x4):");
  wv.write_csv("results/ablation_write_verify.csv");
  std::printf("\npaper shape check: >=8-bit ReRAM slicing matches PCM; "
              "1-cell (4-bit) weights degrade.\n");
  return 0;
}
