// Shared harness for the paper-reproduction benches: the Fig. 3 noise
// knob registry, MSE-matched level solving, and deploy-and-evaluate
// helpers over the model zoo.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cim/mse_probe.hpp"
#include "cim/tile_config.hpp"
#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"

namespace nora::bench {

/// One sweepable non-ideality (a row of paper Table I / a panel of
/// Fig. 3): maps a continuous noise parameter to an otherwise-ideal
/// TileConfig with only that knob set.
struct NoiseKnob {
  std::string name;      // e.g. "adc-quantization"
  std::string category;  // "IO" or "tile" (Table I taxonomy)
  std::function<cim::TileConfig(double)> make;
};

/// The eight non-idealities of Fig. 3 (a)-(h), in figure order.
std::vector<NoiseKnob> fig3_knobs();

/// Solve the knob parameter that causes `target_mse` on the reference
/// feature map (the paper's Fig. 3 x-axis protocol).
double solve_level(const NoiseKnob& knob, double target_mse);

struct DeployedEval {
  double accuracy = 0.0;
  double avg_loss = 0.0;
  double mean_alpha_gamma_gmax = 0.0;  // averaged over linear layers
};

/// Digital fp32 accuracy of a zoo model (loads/trains via the cache).
DeployedEval eval_digital(const std::string& model_name, int n_examples);

/// Accuracy after converting all linear layers to analog under `tile`,
/// with NORA enabled/disabled. The model is re-loaded fresh each call so
/// evaluations are independent.
DeployedEval eval_analog(const std::string& model_name,
                         const cim::TileConfig& tile, bool nora,
                         float lambda, int n_examples);

/// Fully-configurable variant: deploys under `opts` (including any
/// fault-tolerance HealthPolicy) and optionally fills a per-layer
/// deployment report. Used by the fault-injection bench.
DeployedEval eval_analog_deploy(const std::string& model_name,
                                const core::DeployOptions& opts,
                                int n_examples,
                                faults::DeploymentReport* report = nullptr);

/// Shared CLI defaults for the bench binaries.
struct BenchOptions {
  int n_examples = 96;
  float lambda = 0.5f;
};

}  // namespace nora::bench
