// Ablation (paper "Limitations and Future Work"): PCM conductance drift.
// The paper re-evaluated NORA one hour after (simulated) programming and
// found the advantage shrinks for some models. This bench sweeps read
// time t in {0, 1 min, 1 h, 24 h} with per-device drift exponents and
// global drift compensation, for the naive and NORA mappings.
//
//   ./ablation_drift [--examples=N] [--models=a,b]
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

double eval_at_time(const std::string& name, const cim::TileConfig& tile,
                    bool nora, float t_seconds, int n_examples) {
  const model::ModelSpec spec = model::spec_by_name(name);
  auto model = model::get_or_train(spec, /*verbose=*/false);
  const eval::SynthLambada task(spec.task);
  core::DeployOptions opts;
  opts.tile = tile;
  opts.nora.enabled = nora;
  core::deploy_analog(*model, task, opts);
  core::set_read_time(*model, t_seconds);
  eval::EvalOptions eo;
  eo.n_examples = n_examples;
  return eval::evaluate(*model, task, eo).accuracy;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const auto models = cli.has("models")
                          ? parse_models(cli.get("models", ""))
                          : std::vector<std::string>{"opt-6.7b-sim",
                                                     "llama3-8b-sim"};
  std::printf("Ablation — PCM drift: accuracy vs time since programming "
              "(Table II + drift, global compensation on, %d examples)\n\n",
              n_examples);

  cim::TileConfig hw = cim::TileConfig::paper_table2();
  hw.drift_enabled = true;
  hw.drift.sigma_1f = 0.01f;  // 1/f read noise grows slowly with time

  const std::vector<std::pair<const char*, float>> times{
      {"t=0", 0.0f}, {"t=1min", 60.0f}, {"t=1h", 3600.0f}, {"t=24h", 86400.0f}};
  util::Table table([&] {
    std::vector<std::string> hdr{"model", "mapping", "fp32 (%)"};
    for (const auto& [label, t] : times) hdr.push_back(std::string(label) + " (%)");
    return hdr;
  }());
  for (const auto& m : models) {
    const auto fp = bench::eval_digital(m, n_examples);
    for (const bool nora : {false, true}) {
      std::vector<std::string> row{m, nora ? "NORA" : "naive",
                                   util::Table::pct(fp.accuracy)};
      for (const auto& [label, t] : times) {
        row.push_back(util::Table::pct(eval_at_time(m, hw, nora, t, n_examples)));
      }
      table.add_row(std::move(row));
    }
  }
  table.print();
  table.write_csv("results/ablation_drift.csv");
  std::printf("\npaper shape check: NORA's advantage persists but shrinks "
              "with drift time\n(residual per-device drift spread is a "
              "weight-side error NORA does not target).\n");
  return 0;
}
