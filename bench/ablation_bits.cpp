// Ablation: converter resolution. Sweeps the DAC/ADC bit width around
// the paper's 7-bit operating point (Table II) with all other
// non-idealities at their Table II values, naive vs NORA.
//
// Expected shape: the naive mapping needs several extra bits to approach
// fp32; NORA reaches near-fp32 already at low resolutions, i.e. it buys
// back converter precision (the paper's central claim restated in bits).
//
//   ./ablation_bits [--examples=N] [--model=name]
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const std::string m = cli.get("model", "opt-6.7b-sim");

  std::printf("Ablation — DAC/ADC bit width (other Table II noise on), "
              "model %s, %d examples\n\n", m.c_str(), n_examples);

  const auto fp = bench::eval_digital(m, n_examples);
  util::Table table({"bits (DAC=ADC)", "naive analog (%)", "NORA (%)",
                     "fp32 (%)"});
  for (const int bits : {5, 6, 7, 8, 9}) {
    cim::TileConfig hw = cim::TileConfig::paper_table2();
    hw.dac_bits = bits;
    hw.adc_bits = bits;
    const auto naive = bench::eval_analog(m, hw, false, 0.5f, n_examples);
    const auto nora = bench::eval_analog(m, hw, true, 0.5f, n_examples);
    table.add_row({std::to_string(bits), util::Table::pct(naive.accuracy),
                   util::Table::pct(nora.accuracy),
                   util::Table::pct(fp.accuracy)});
  }
  table.print();
  table.write_csv("results/ablation_bits.csv");
  return 0;
}
