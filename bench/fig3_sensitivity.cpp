// Reproduces paper Fig. 3 (a)-(h): sensitivity of LLM accuracy to each
// of the eight analog CIM non-idealities, applied one at a time at
// MSE-matched magnitudes (levels causing 1.5e-4 ... 2.75e-3 MSE on the
// reference feature map), on the naive analog mapping.
//
// Expected shape (paper Sec. III-A): accuracy collapses under the IO
// non-idealities — additive output noise worst, A/D quantization worst
// for the OPT-like family — while the tile non-idealities
// (IR-drop, read noise, programming noise) and the S-shape nonlinearity
// cause nearly no drop.
//
//   ./fig3_sensitivity [--examples=N] [--models=a,b,c]
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "noise/mse_calibrator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 96));
  const auto models = cli.has("models")
                          ? parse_models(cli.get("models", ""))
                          : model::all_models();

  std::printf("Fig. 3 — sensitivity of SynthLambada accuracy to analog CIM "
              "non-idealities\n(naive mapping, one noise at a time, "
              "MSE-matched levels; %d eval examples)\n\n",
              n_examples);

  // Digital baselines.
  std::printf("digital fp32 baselines:\n");
  std::vector<double> fp_acc;
  for (const auto& m : models) {
    const auto r = bench::eval_digital(m, n_examples);
    fp_acc.push_back(r.accuracy);
    std::printf("  %-16s %.2f%%\n", m.c_str(), 100.0 * r.accuracy);
  }
  std::printf("\n");

  const auto knobs = bench::fig3_knobs();
  util::Table table([&] {
    std::vector<std::string> hdr{"non-ideality", "type", "model"};
    for (const double mse : noise::kFig3MseLevels) {
      hdr.push_back("drop@mse=" + util::Table::num(mse, 5));
    }
    return hdr;
  }());

  for (const auto& knob : knobs) {
    // Solve the parameter for each MSE level once per knob.
    std::vector<double> params;
    for (const double mse : noise::kFig3MseLevels) {
      params.push_back(bench::solve_level(knob, mse));
    }
    std::printf("[%s] calibrated params:", knob.name.c_str());
    for (const double p : params) std::printf(" %.5g", p);
    std::printf("\n");
    std::fflush(stdout);
    for (std::size_t mi = 0; mi < models.size(); ++mi) {
      std::vector<std::string> row{knob.name, knob.category, models[mi]};
      for (const double p : params) {
        const auto r = bench::eval_analog(models[mi], knob.make(p),
                                          /*nora=*/false, 0.5f, n_examples);
        row.push_back(util::Table::pct(fp_acc[mi] - r.accuracy));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("\n");
  table.print("accuracy drop (percentage points) vs noise level:");
  table.write_csv("results/fig3_sensitivity.csv");
  std::printf("\npaper shape check: IO rows (quantization / additive noise) "
              "should dominate;\ntile rows (ir-drop / read / programming) and "
              "s-shape should stay near zero.\n");
  return 0;
}
