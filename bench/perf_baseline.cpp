// Performance-regression harness for the analog hot path.
//
// Three metrics, written to BENCH_PERF.json and compared against the
// checked-in bench/perf_baseline.json:
//
//   decode_tok_s    continuous-batching decode throughput (8 requests
//                   saturating max_batch=8 on a tiny analog model,
//                   4 pool threads — the ISSUE's reference scenario)
//   mvm_ns          nanoseconds per AnalogTile::mvm (single-thread
//                   AnalogMatmul forward over a fixed 256x256 tile grid)
//   allocs_per_step heap allocations per steady-state decode step,
//                   counted by the operator new hook below. This is the
//                   metric the workspace-reuse work pins down: it must
//                   stay O(1) in sequence length and step index.
//
// Exit status is nonzero if any metric regresses more than 10% against
// its baseline value. The timing baselines are deliberately conservative
// floors (shared CI runners are noisy; the gate is for real regressions,
// not scheduler jitter), while the allocation count is deterministic and
// its baseline is exact.
//
//   ./perf_baseline [--smoke] [--threads=4] [--out=BENCH_PERF.json]
//                   [--baseline=path/to/perf_baseline.json]
//
// --smoke shrinks the workloads for CI; metrics and gating are the same.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "cim/analog_matmul.hpp"
#include "nn/transformer.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

// ---------------------------------------------------------------------
// Counting allocator hook. Defined in this translation unit only, so it
// is linked into the perf_baseline executable and nothing else — the
// library code and the other benches run on the plain allocator.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace nora;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- ns per tile MVM --------------------------------------------------

double bench_mvm_ns(int iters) {
  Matrix w(256, 256);
  util::Rng wr(1234);
  w.fill_gaussian(wr, 0.5f);
  cim::TileConfig tile = cim::TileConfig::paper_table2();
  tile.tile_rows = 64;
  tile.tile_cols = 48;
  tile.n_threads = 1;
  cim::AnalogMatmul unit(w, {}, tile, 4242);
  Matrix x(1, 256);
  util::Rng xr(5678);
  x.fill_gaussian(xr, 1.0f);
  // 4 row blocks x 6 column tiles, no bound-management retries: exactly
  // 24 tile MVMs per forward call.
  const double mvms_per_forward =
      std::ceil(256.0 / tile.tile_rows) * std::ceil(256.0 / tile.tile_cols);
  volatile float sink = 0.0f;
  for (int i = 0; i < iters / 4 + 1; ++i) sink += unit.forward(x).at(0, 0);
  double best = 1e18;  // best-of-batches: robust against scheduler noise
  for (int batch = 0; batch < 3; ++batch) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) sink += unit.forward(x).at(0, 0);
    best = std::min(best, seconds_since(t0));
  }
  (void)sink;
  return best * 1e9 / (static_cast<double>(iters) * mvms_per_forward);
}

// --- serve decode throughput + allocations per step -------------------

struct DecodeResult {
  double tok_s = 0.0;
  double allocs_per_step = 0.0;
};

nn::TransformerLM make_decode_model() {
  nn::TransformerConfig arch;
  arch.vocab_size = 64;
  arch.d_model = 64;
  arch.n_layers = 4;
  arch.n_heads = 4;
  arch.d_ff = 128;
  arch.max_seq = 256;
  arch.seed = 77;
  nn::TransformerLM model(arch);
  cim::TileConfig tile = cim::TileConfig::paper_table2();
  tile.tile_rows = 64;
  tile.tile_cols = 48;
  tile.n_threads = 4;
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) lin->to_analog(tile, {}, seed++);
  return model;
}

DecodeResult bench_decode(int n_requests, int new_tokens) {
  nn::TransformerLM model = make_decode_model();
  serve::SchedulerConfig scfg;
  scfg.max_batch = 8;
  serve::Scheduler sched(model, scfg);
  for (int i = 0; i < n_requests; ++i) {
    serve::RequestParams p;
    p.prompt = {1, 2, 3, 4, 5, 6, 7, 8};
    p.max_new_tokens = new_tokens;
    p.stream_seed = 500 + static_cast<std::uint64_t>(i);
    sched.submit(std::move(p));
  }
  // Warm up past admission/prefill and the scratch high-water marks:
  // after a handful of steps every workspace has reached its steady
  // size, and remaining per-step allocations are the O(1) cost the
  // baseline pins (fresh activation matrices, pool job plumbing).
  const int warm = 6;
  for (int s = 0; s < warm; ++s) sched.step();
  const int measured = std::max(4, new_tokens - warm - 4);
  const std::int64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  // occupancy_sum advances by the batch size every busy step — i.e. by
  // the number of tokens decoded — while generated_tokens only lands
  // when a request retires, which never happens mid-measurement.
  const double occ0 = sched.metrics().occupancy_sum;
  for (int s = 0; s < measured && sched.in_flight() > 0; ++s) sched.step();
  const double dt = seconds_since(t0);
  const double steps_tokens = sched.metrics().occupancy_sum - occ0;
  const std::int64_t da = g_allocs.load(std::memory_order_relaxed) - a0;
  sched.run_until_idle();
  DecodeResult r;
  r.tok_s = dt > 0.0 ? steps_tokens / dt : 0.0;
  r.allocs_per_step = static_cast<double>(da) / measured;
  return r;
}

// --- baseline compare -------------------------------------------------

/// Pull "key": <number> out of a flat JSON object; nan if absent.
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nan("");
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::string out_path = cli.get("out", "BENCH_PERF.json");
  const std::string baseline_path =
      cli.get("baseline", std::string(NORA_SOURCE_DIR) +
                              "/bench/perf_baseline.json");
  util::ThreadPool::global().resize(threads);

  const int mvm_iters = smoke ? 40 : 200;
  const int requests = smoke ? 4 : 8;
  const int new_tokens = smoke ? 24 : 48;

  const double mvm_ns = bench_mvm_ns(mvm_iters);
  std::printf("mvm: %.0f ns per tile MVM (256x256 over 64x48 tiles)\n",
              mvm_ns);
  const DecodeResult dec = bench_decode(requests, new_tokens);
  std::printf("decode: %.1f tok/s, %.1f allocs per steady-state step "
              "(%d requests x %d tokens, %d threads)\n",
              dec.tok_s, dec.allocs_per_step, requests, new_tokens, threads);

  std::string json = "{";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"decode_tok_s\":%.1f,\"mvm_ns\":%.0f,"
                "\"allocs_per_step\":%.1f,",
                dec.tok_s, mvm_ns, dec.allocs_per_step);
  json += buf;
  std::snprintf(buf, sizeof(buf), "\"threads\":%d,\"smoke\":%s}", threads,
                smoke ? "true" : "false");
  json += buf;
  if (std::FILE* f = std::fopen(out_path.c_str(), "wb")) {
    std::fputs(json.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "perf_baseline: cannot write %s\n", out_path.c_str());
    return 2;
  }

  const std::string base = read_file(baseline_path);
  if (base.empty()) {
    std::fprintf(stderr, "perf_baseline: no baseline at %s\n",
                 baseline_path.c_str());
    return 2;
  }
  int failures = 0;
  const auto gate = [&failures](const char* name, double value,
                                double baseline, bool higher_is_better) {
    if (std::isnan(baseline)) {
      std::fprintf(stderr, "FAIL %s: baseline value missing\n", name);
      ++failures;
      return;
    }
    const double limit =
        higher_is_better ? baseline * 0.9 : baseline * 1.1;
    const bool ok = higher_is_better ? value >= limit : value <= limit;
    std::printf("%s %s: %.1f vs baseline %.1f (limit %.1f)\n",
                ok ? "ok  " : "FAIL", name, value, baseline, limit);
    if (!ok) ++failures;
  };
  gate("decode_tok_s", dec.tok_s, json_number(base, "decode_tok_s"), true);
  gate("mvm_ns", mvm_ns, json_number(base, "mvm_ns"), false);
  gate("allocs_per_step", dec.allocs_per_step,
       json_number(base, "allocs_per_step"), false);
  return failures == 0 ? 0 : 1;
}
