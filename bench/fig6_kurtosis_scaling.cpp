// Reproduces paper Fig. 6:
//  (a) per-layer input kurtosis before vs after NORA,
//  (b) per-layer query-weight kurtosis before vs after NORA,
//  (c) per-layer mean alpha*gamma*g_max (naive vs NORA) — smaller means
//      larger output current into the ADC, i.e. higher SNR.
//
// Expected shape: input kurtosis collapses under NORA while weight
// kurtosis rises only slightly, and alpha*gamma*g_max shrinks in every
// layer.
//
//   ./fig6_kurtosis_scaling [--examples=N] [--models=a,b,c] [--lambda=F]
#include <cstdio>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {
std::vector<std::string> parse_models(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 64));
  const float lambda = static_cast<float>(cli.get_double("lambda", 0.5));
  const auto models = cli.has("models")
                          ? parse_models(cli.get("models", ""))
                          : std::vector<std::string>{
                                "opt-6.7b-sim", "llama3-8b-sim", "mistral-7b-sim"};

  std::printf("Fig. 6 — per-layer distribution and scaling-factor effects of "
              "NORA (lambda=%.2f)\n\n", lambda);

  core::NoraOptions nora_opts;
  nora_opts.lambda = lambda;

  util::Table kurt({"model", "layer", "input kurt (naive)", "input kurt (NORA)",
                    "weight kurt (naive)", "weight kurt (NORA)"});
  for (const auto& name : models) {
    const model::ModelSpec spec = model::spec_by_name(name);
    auto model = model::get_or_train(spec, /*verbose=*/true);
    const eval::SynthLambada task(spec.task);
    const auto naive = core::distribution_stats(*model, task, nora_opts, false);
    const auto nora = core::distribution_stats(*model, task, nora_opts, true);
    for (std::size_t i = 0; i < naive.size(); ++i) {
      kurt.add_row({name, naive[i].layer,
                    util::Table::num(naive[i].input_kurtosis, 2),
                    util::Table::num(nora[i].input_kurtosis, 2),
                    util::Table::num(naive[i].weight_kurtosis, 2),
                    util::Table::num(nora[i].weight_kurtosis, 2)});
    }
  }
  kurt.print("(a)/(b) per-layer kurtosis, naive vs NORA:");
  kurt.write_csv("results/fig6_kurtosis.csv");

  // (c) alpha*gamma*g_max per layer after running the eval set through
  // the analog model at the Table II operating point.
  std::printf("\n");
  util::Table scal({"model", "layer", "alpha*gamma*gmax (naive)",
                    "alpha*gamma*gmax (NORA)", "reduction (x)"});
  const cim::TileConfig hw = cim::TileConfig::paper_table2();
  for (const auto& name : models) {
    const model::ModelSpec spec = model::spec_by_name(name);
    const eval::SynthLambada task(spec.task);
    eval::EvalOptions eo;
    eo.n_examples = n_examples;
    std::map<std::string, double> naive_ag;
    {
      auto m = model::get_or_train(spec, /*verbose=*/false);
      core::DeployOptions d;
      d.tile = hw;
      d.nora.enabled = false;
      core::deploy_analog(*m, task, d);
      eval::evaluate(*m, task, eo);
      for (const auto& st : core::scaling_factor_stats(*m)) {
        naive_ag[st.layer] = st.alpha_gamma_gmax;
      }
    }
    auto m = model::get_or_train(spec, /*verbose=*/false);
    core::DeployOptions d;
    d.tile = hw;
    d.nora.enabled = true;
    d.nora.lambda = lambda;
    core::deploy_analog(*m, task, d);
    eval::evaluate(*m, task, eo);
    for (const auto& st : core::scaling_factor_stats(*m)) {
      const double nv = naive_ag[st.layer];
      scal.add_row({name, st.layer, util::Table::num(nv, 2),
                    util::Table::num(st.alpha_gamma_gmax, 2),
                    util::Table::num(nv / std::max(st.alpha_gamma_gmax, 1e-9), 2)});
    }
  }
  scal.print("(c) scaling factors alpha*gamma*g_max (smaller -> more output "
             "current -> higher SNR):");
  scal.write_csv("results/fig6_scaling.csv");
  std::printf("\npaper shape check: input kurtosis drops sharply (most in "
              "early layers for the\nquantization-resilient models), weight "
              "kurtosis rises slightly, alpha*gamma shrinks.\n");
  return 0;
}
