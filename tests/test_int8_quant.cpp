// Tests for the digital INT8 (W8A8) baseline and SmoothQuant rescaling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nora.hpp"
#include "quant/int8_linear.hpp"
#include "tensor/ops.hpp"

namespace nora::quant {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

double rel_err(const Matrix& y, const Matrix& ref) {
  return std::sqrt(ops::mse(y, ref)) /
         (ops::frobenius_norm(ref) / std::sqrt(double(ref.size())));
}

TEST(Int8Linear, AccurateOnWellConditionedData) {
  const Matrix x = random_matrix(8, 64, 1, 1.0f);
  const Matrix w = random_matrix(64, 32, 2, 0.2f);
  const Matrix ref = ops::matmul(x, w);
  const Matrix y = int8_linear(x, w);
  EXPECT_LT(rel_err(y, ref), 0.02);  // 8-bit symmetric: ~1% error
}

TEST(Int8Linear, OutliersDegradeAndSmoothQuantRepairs) {
  Matrix x = random_matrix(8, 64, 3, 1.0f);
  for (std::int64_t r = 0; r < x.rows(); ++r) x.at(r, 5) *= 40.0f;
  const Matrix w = random_matrix(64, 32, 4, 0.2f);
  const Matrix ref = ops::matmul(x, w);
  const double err_plain = rel_err(int8_linear(x, w), ref);
  const auto s = smoothquant_vector(ops::col_abs_max(x), ops::row_abs_max(w));
  const double err_smooth = rel_err(int8_linear(x, w, s), ref);
  EXPECT_GT(err_plain, 2.0 * err_smooth);
}

TEST(Int8Linear, StatsReportScalesAndSaturations) {
  const Matrix x = random_matrix(4, 16, 5, 1.0f);
  const Matrix w = random_matrix(16, 8, 6, 0.2f);
  Int8GemmStats stats;
  int8_linear(x, w, {}, &stats);
  EXPECT_GT(stats.mean_act_scale, 0.0);
  EXPECT_EQ(stats.act_saturations, 0);  // abs-max scaling never saturates
}

TEST(Int8Linear, ValidatesArguments) {
  const Matrix x = random_matrix(2, 8, 7);
  const Matrix w = random_matrix(4, 8, 8);
  EXPECT_THROW(int8_linear(x, w), std::invalid_argument);
  const Matrix w2 = random_matrix(8, 4, 9);
  EXPECT_THROW(int8_linear(x, w2, std::vector<float>(3, 1.0f)),
               std::invalid_argument);
}

TEST(SmoothquantVector, MatchesNoraFormula) {
  const std::vector<float> ax{16.0f, 1.0f};
  const std::vector<float> wx{0.25f, 1.0f};
  const auto s = smoothquant_vector(ax, wx, 0.5f);
  EXPECT_NEAR(s[0], 8.0f, 1e-5);
  EXPECT_NEAR(s[1], 1.0f, 1e-6);
  EXPECT_THROW(smoothquant_vector(ax, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(Int8Backend, LinearRoundTripAndTrainingGuard) {
  util::Rng rng(10);
  nn::Linear lin("l", 16, 8, rng, 0.3f);
  const Matrix x = random_matrix(4, 16, 11, 1.0f);
  const Matrix fp = lin.forward(x);
  lin.to_int8({});
  EXPECT_TRUE(lin.is_int8());
  const Matrix q = lin.forward(x);
  EXPECT_LT(rel_err(q, fp), 0.05);
  EXPECT_THROW(lin.forward(x, /*training=*/true), std::logic_error);
  lin.to_digital();
  EXPECT_FALSE(lin.is_int8());
  EXPECT_EQ(ops::mse(lin.forward(x), fp), 0.0);
}

TEST(Int8Backend, DeployDigitalInt8OnModel) {
  eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  nn::TransformerConfig arch;
  arch.vocab_size = task_cfg.vocab_size();
  arch.max_seq = task_cfg.seq_len;
  arch.d_model = 24;
  arch.n_layers = 1;
  arch.n_heads = 2;
  arch.d_ff = 48;
  nn::TransformerLM model(arch);
  const auto ex = task.make_example("test", 0);
  const Matrix fp = model.forward(ex.tokens);
  core::NoraOptions opts;
  opts.enabled = true;
  core::deploy_digital_int8(model, task, opts);
  const Matrix q = model.forward(ex.tokens);
  EXPECT_LT(rel_err(q, fp), 0.1);  // W8A8 with SmoothQuant stays close
  model.to_digital();
  EXPECT_EQ(ops::mse(model.forward(ex.tokens), fp), 0.0);
}

}  // namespace
}  // namespace nora::quant
