// Tests for the single-tile analog MVM (Eq. 3-5) and its invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/analog_tile.hpp"
#include "tensor/ops.hpp"

namespace nora::cim {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

std::vector<float> random_vec(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

float l2(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += double(x) * x;
  return static_cast<float>(std::sqrt(s));
}

TEST(AnalogTile, GammaIsPerColumnAbsMax) {
  Matrix w(2, 3, {1.0f, -4.0f, 0.0f, -2.0f, 3.0f, 0.0f});
  AnalogTile tile(w, TileConfig::ideal(), util::Rng(1));
  EXPECT_FLOAT_EQ(tile.gamma()[0], 2.0f);
  EXPECT_FLOAT_EQ(tile.gamma()[1], 4.0f);
  EXPECT_FLOAT_EQ(tile.gamma()[2], 1.0f);  // zero column guards to 1
}

TEST(AnalogTile, IdealTileMatchesDigitalGemv) {
  const Matrix w = random_matrix(48, 32, 2);
  AnalogTile tile(w, TileConfig::ideal(), util::Rng(3));
  // Normalized input (alpha = max|x|) exactly as the array would stream it.
  auto x = random_vec(48, 4);
  float alpha = 0.0f;
  for (float v : x) alpha = std::max(alpha, std::fabs(v));
  std::vector<float> x_hat = x;
  for (auto& v : x_hat) v /= alpha;
  std::vector<float> y(32, 0.0f);
  util::Rng rng(5);
  const bool sat = tile.mvm(x_hat, l2(x_hat), alpha, y, rng);
  EXPECT_FALSE(sat);
  for (std::int64_t j = 0; j < 32; ++j) {
    double ref = 0.0;
    for (std::int64_t k = 0; k < 48; ++k) ref += double(w.at(k, j)) * x[static_cast<std::size_t>(k)];
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], ref, 1e-3 + 1e-4 * std::fabs(ref));
  }
}

TEST(AnalogTile, AdcSaturationIsCountedAndClamped) {
  // One column of all-max weights and an all-ones input saturates a
  // low-bound ADC.
  Matrix w(32, 1);
  w.fill(1.0f);
  TileConfig cfg = TileConfig::ideal();
  cfg.adc_bits = 7;
  cfg.adc_bound = 4.0f;  // sum of 32 normalized products saturates
  AnalogTile tile(w, cfg, util::Rng(6));
  std::vector<float> x_hat(32, 1.0f);
  std::vector<float> y(1, 0.0f);
  util::Rng rng(7);
  const bool sat = tile.mvm(x_hat, l2({x_hat.begin(), x_hat.end()}), 1.0f, y, rng);
  EXPECT_TRUE(sat);
  EXPECT_EQ(tile.adc_saturations(), 1);
  EXPECT_EQ(tile.adc_reads(), 1);
  // Clamped to the ADC's top code: (bound - step) * gamma(=1) * alpha.
  EXPECT_FLOAT_EQ(y[0], 4.0f * 63.0f / 64.0f);
}

TEST(AnalogTile, OutputNoiseScalesWithGammaAndAlpha) {
  // The real-unit impact of out_noise is alpha*gamma*sigma: doubling the
  // weight scale doubles gamma and with it the output error.
  const std::int64_t k = 16, reps = 3000;
  Matrix w1 = random_matrix(k, 1, 8);
  Matrix w2 = w1;
  ops::scale_inplace(w2, 2.0f);
  TileConfig cfg = TileConfig::ideal();
  cfg.out_noise = 0.04f;
  auto measure = [&](const Matrix& w) {
    AnalogTile tile(w, cfg, util::Rng(9));
    std::vector<float> x_hat(static_cast<std::size_t>(k), 0.5f);
    const float xl2 = l2(x_hat);
    util::Rng rng(10);
    double ref = 0.0;
    for (std::int64_t r = 0; r < k; ++r) ref += double(w.at(r, 0)) * 0.5;
    double sq = 0.0;
    for (int i = 0; i < reps; ++i) {
      std::vector<float> y(1, 0.0f);
      tile.mvm(x_hat, xl2, 1.0f, y, rng);
      sq += (y[0] - ref) * (y[0] - ref);
    }
    return std::sqrt(sq / reps);
  };
  const double e1 = measure(w1);
  const double e2 = measure(w2);
  EXPECT_NEAR(e2 / e1, 2.0, 0.15);
}

TEST(AnalogTile, DeterministicGivenSeed) {
  const Matrix w = random_matrix(24, 24, 11);
  TileConfig cfg;  // paper Table II, all noise on
  auto run = [&] {
    AnalogTile tile(w, cfg, util::Rng(12));
    std::vector<float> x_hat(24, 0.3f);
    std::vector<float> y(24, 0.0f);
    util::Rng rng(13);
    tile.mvm(x_hat, l2({x_hat.begin(), x_hat.end()}), 1.0f, y, rng);
    return y;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(AnalogTile, ProgrammingNoiseAppliedOncePerProgram) {
  // With only programming noise, repeated reads give identical results
  // (the error is frozen at program time), but two differently seeded
  // tiles differ.
  const Matrix w = random_matrix(16, 16, 14);
  const TileConfig cfg = TileConfig::ideal_except_prog_noise(1.0f);
  AnalogTile tile(w, cfg, util::Rng(15));
  std::vector<float> x_hat(16, 0.4f);
  const float xl2 = l2({x_hat.begin(), x_hat.end()});
  util::Rng rng(16);
  std::vector<float> y1(16, 0.0f), y2(16, 0.0f), y3(16, 0.0f);
  tile.mvm(x_hat, xl2, 1.0f, y1, rng);
  tile.mvm(x_hat, xl2, 1.0f, y2, rng);
  EXPECT_EQ(y1, y2);
  AnalogTile other(w, cfg, util::Rng(17));
  other.mvm(x_hat, xl2, 1.0f, y3, rng);
  EXPECT_NE(y1, y3);
}

TEST(AnalogTile, DriftReducesThenCompensationRestoresScale) {
  Matrix w(32, 1);
  w.fill(0.8f);
  TileConfig cfg = TileConfig::ideal();
  cfg.drift_enabled = true;
  cfg.drift.compensate = false;
  cfg.drift.nu_sigma = 0.0f;  // deterministic drift
  AnalogTile tile(w, cfg, util::Rng(18));
  std::vector<float> x_hat(32, 1.0f);
  const float xl2 = l2({x_hat.begin(), x_hat.end()});
  util::Rng rng(19);
  std::vector<float> y0(1, 0.0f), y1(1, 0.0f), yc(1, 0.0f);
  tile.mvm(x_hat, xl2, 1.0f, y0, rng);
  tile.set_read_time(3600.0f);
  tile.mvm(x_hat, xl2, 1.0f, y1, rng);
  EXPECT_LT(y1[0], y0[0] * 0.9f);  // uncompensated drift shrinks outputs
  // With compensation and zero spread, drift cancels exactly.
  cfg.drift.compensate = true;
  AnalogTile tile2(w, cfg, util::Rng(18));
  tile2.set_read_time(3600.0f);
  tile2.mvm(x_hat, xl2, 1.0f, yc, rng);
  EXPECT_NEAR(yc[0], y0[0], 1e-3);
}

TEST(AnalogTile, RejectsBadShapes) {
  EXPECT_THROW(AnalogTile(Matrix(), TileConfig::ideal(), util::Rng(1)),
               std::invalid_argument);
  const Matrix w = random_matrix(8, 8, 20);
  AnalogTile tile(w, TileConfig::ideal(), util::Rng(2));
  std::vector<float> x(4, 0.0f), y(8, 0.0f);
  util::Rng rng(3);
  EXPECT_THROW(tile.mvm(x, 0.0f, 1.0f, y, rng), std::invalid_argument);
}

}  // namespace
}  // namespace nora::cim
