// Event-driven hardware timing co-simulation tests.
//
// Three layers of guarantees: (1) the discrete-event kernel itself —
// strict time ordering, FIFO ties, zero-duration events that terminate,
// rejection of time moving backwards; (2) the hardware resource model —
// pipelining, shared-ADC serialization, replay goldens; (3) the serving
// integration — simulated time is a pure function of the op trace
// (bit-identical at any tile thread count), timing.enabled=false is a
// strict no-op on the data path, and the batching policy moves latency
// but never tokens.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cim/tile_config.hpp"
#include "nn/transformer.hpp"
#include "serve/scheduler.hpp"
#include "timing/event_clock.hpp"
#include "timing/hw_model.hpp"
#include "timing/resource.hpp"
#include "timing/trace.hpp"
#include "util/thread_pool.hpp"

namespace nora::timing {
namespace {

// ---------------------------------------------------------------- clock

TEST(EventClock, DispatchesInTimeOrder) {
  EventClock clock;
  std::vector<int> order;
  clock.schedule_at(30, [&] { order.push_back(3); });
  clock.schedule_at(10, [&] { order.push_back(1); });
  clock.schedule_at(20, [&] { order.push_back(2); });
  clock.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now_ps(), 30);
  EXPECT_EQ(clock.processed(), 3);
  EXPECT_TRUE(clock.empty());
}

TEST(EventClock, TiesDispatchInScheduleOrder) {
  EventClock clock;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    clock.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  clock.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventClock, ZeroDurationEventsTerminate) {
  // An event scheduling a follow-up at the CURRENT time is legal (a
  // zero-latency stage) and runs after already-queued same-timestamp
  // events — and a finite chain of them terminates rather than
  // spinning the clock.
  EventClock clock;
  std::vector<int> order;
  int chain = 0;
  std::function<void()> self = [&] {
    order.push_back(100 + chain);
    if (++chain < 3) clock.schedule_at(clock.now_ps(), self);
  };
  clock.schedule_at(5, self);
  clock.schedule_at(5, [&] { order.push_back(0); });
  clock.run();
  // First pass at t=5 runs, then the queued tie, then the re-armed
  // zero-duration chain.
  EXPECT_EQ(order, (std::vector<int>{100, 0, 101, 102}));
  EXPECT_EQ(clock.now_ps(), 5);
  EXPECT_EQ(clock.processed(), 4);
}

TEST(EventClock, RejectsTimeMovingBackwards) {
  EventClock clock;
  clock.schedule_at(10, [] {});
  clock.run();
  EXPECT_THROW(clock.schedule_at(9, [] {}), std::invalid_argument);
  EXPECT_THROW(clock.schedule_after(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(clock.schedule_at(20, nullptr), std::invalid_argument);
  EXPECT_NO_THROW(clock.schedule_at(10, [] {}));  // t == now is legal
  clock.run();
  EXPECT_EQ(clock.now_ps(), 10);
}

TEST(EventClock, StepAdvancesOneEvent) {
  EventClock clock;
  int fired = 0;
  clock.schedule_at(3, [&] { ++fired; });
  clock.schedule_at(7, [&] { ++fired; });
  EXPECT_EQ(clock.pending(), 2u);
  EXPECT_TRUE(clock.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now_ps(), 3);
  EXPECT_TRUE(clock.step());
  EXPECT_FALSE(clock.step());
  EXPECT_EQ(fired, 2);
}

// ------------------------------------------------------------- resource

TEST(Resource, SerializesGrantsFifo) {
  Resource adc;
  EXPECT_EQ(adc.acquire(0, 10), 10);   // idle: starts immediately
  EXPECT_EQ(adc.acquire(5, 10), 20);   // busy until 10: queues behind
  EXPECT_EQ(adc.acquire(50, 10), 60);  // idle gap: starts at ready time
  EXPECT_EQ(adc.busy_ps(), 30);
  EXPECT_EQ(adc.grants(), 3);
  EXPECT_EQ(adc.free_at_ps(), 60);
  EXPECT_THROW(adc.acquire(-1, 10), std::invalid_argument);
  EXPECT_THROW(adc.acquire(0, -10), std::invalid_argument);
  EXPECT_EQ(adc.acquire(60, 0), 60);  // zero-duration grant is legal
}

// ------------------------------------------------------- config/hwmodel

TEST(TimingConfig, ValidatesKnobs) {
  TimingConfig ok;
  EXPECT_NO_THROW(ok.validate());

  TimingConfig bad = ok;
  bad.pipeline_depth = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.dac_frac = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.dac_frac = 0.7;  // dac + xbar >= 1 leaves no ADC stage
  bad.xbar_frac = 0.3;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.link_bytes_per_ns = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.costs.tile_read_latency_ns = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  TimingConfig zero_dac = ok;  // a zero-duration DAC stage is legal
  zero_dac.dac_frac = 0.0;
  EXPECT_NO_THROW(zero_dac.validate());
  const HwModel hw(zero_dac);
  EXPECT_EQ(hw.dac_ps(), 0);
  TimingOp op;
  op.kind = OpKind::kAnalogMvm;
  op.layer = "z";
  op.rows = 3;
  op.k = op.n = 8;
  EXPECT_EQ(hw.analog_op_ps(op), 3 * hw.tile_ps());
}

TEST(HwModel, StageSplitSumsExactly) {
  TimingConfig cfg;
  cfg.dac_frac = 0.17;  // awkward fractions: remainder lands in the ADC
  cfg.xbar_frac = 0.29;
  const HwModel hw(cfg);
  EXPECT_EQ(hw.dac_ps() + hw.xbar_ps() + hw.adc_ps(), hw.tile_ps());
  EXPECT_GT(hw.dac_ps(), 0);
  EXPECT_GT(hw.xbar_ps(), 0);
  EXPECT_GT(hw.adc_ps(), 0);
}

TEST(HwModel, PipeliningOverlapsTokens) {
  TimingConfig cfg;
  const HwModel d1(cfg);
  cfg.pipeline_depth = 4;
  const HwModel d4(cfg);

  TimingOp op;
  op.kind = OpKind::kAnalogMvm;
  op.layer = "l";
  op.rows = 16;
  op.k = op.n = 8;
  const std::int64_t serial = d1.analog_op_ps(op);
  const std::int64_t piped = d4.analog_op_ps(op);
  EXPECT_EQ(serial, 16 * d1.tile_ps());
  EXPECT_LT(piped, serial);
  // Throughput is bounded by the longest stage: depth 4 cannot beat
  // one-bottleneck-stage-per-token plus the fill latency.
  const std::int64_t bottleneck =
      std::max(d4.dac_ps(), std::max(d4.xbar_ps(), d4.adc_ps()));
  EXPECT_GE(piped, 15 * bottleneck + d4.tile_ps());
}

TEST(HwModel, SharedAdcSerializesRowBlocks) {
  // Two row blocks share the column's ADC group: their conversions
  // serialize, so the op takes longer than the single-block analytic
  // time even though crossbar reads fire in parallel.
  TimingConfig cfg;
  const HwModel hw(cfg);
  TimingOp op;
  op.kind = OpKind::kAnalogMvm;
  op.layer = "l";
  op.rows = 4;
  op.k = 32;
  op.n = 8;
  op.row_blocks = 1;
  op.col_blocks = 1;
  const std::int64_t single = hw.analog_op_ps(op);
  op.row_blocks = 2;
  const std::int64_t split = hw.analog_op_ps(op);
  EXPECT_EQ(single, 4 * hw.tile_ps());
  EXPECT_GT(split, single);
}

TEST(HwModel, ReplayGolden) {
  // Hard-coded integers: any change to event ordering, the stage split,
  // or resource accounting shows up here as a diff, not a flake.
  TimingConfig cfg;  // tile read 100 ns -> 100000 ps/tile
  const HwModel hw(cfg);
  Trace trace;
  TimingOp a;
  a.kind = OpKind::kAnalogMvm;
  a.layer = "attn.qkv";
  a.rows = 2;
  a.k = 24;
  a.n = 12;
  a.row_blocks = 2;
  a.col_blocks = 1;
  trace.ops.push_back(a);
  TimingOp d;
  d.kind = OpKind::kDigitalGemm;
  d.layer = "lm_head";
  d.rows = 2;
  d.k = 24;
  d.n = 30;
  d.macs = 2 * 24 * 30;
  trace.ops.push_back(d);

  // Worked example: stages split 15000/35000/50000 ps; the two row
  // blocks convert in parallel but share the column ADC, so token 0
  // lands at 100000 + 50000 (serialized ADC) + 750 (12-col x 4 B
  // partial-sum hop at 64 B/ns) = 150750; two serial tokens = 301500.
  // The digital op is DRAM-bound: 24*30*4 B / 64 B/ns = 45 ns.
  const StepTiming st = hw.replay(trace);
  EXPECT_EQ(st.total_ps, 346500);
  EXPECT_EQ(st.events, 14);
  ASSERT_EQ(st.layers.size(), 2u);
  EXPECT_EQ(st.layers[0].layer, "attn.qkv");
  EXPECT_EQ(st.layers[0].ps, 301500);
  EXPECT_EQ(st.layers[1].layer, "lm_head");
  EXPECT_EQ(st.layers[1].ps, 45000);
}

TEST(HwModel, RejectsMalformedOps) {
  const HwModel hw(TimingConfig{});
  TimingOp op;
  op.kind = OpKind::kAnalogMvm;
  op.layer = "bad";
  op.rows = 0;  // no tokens
  op.k = op.n = 8;
  EXPECT_THROW(hw.analog_op_ps(op), std::invalid_argument);
}

// ---------------------------------------------------- serve integration

nn::TransformerConfig tiny_arch() {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 32;
  cfg.seed = 77;
  return cfg;
}

cim::TileConfig tiny_tiles(int n_threads) {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 16;
  cfg.tile_cols = 12;
  cfg.in_noise = 0.02f;
  cfg.n_threads = n_threads;
  return cfg;
}

nn::TransformerLM analog_model(int n_threads) {
  nn::TransformerLM model(tiny_arch());
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tiny_tiles(n_threads), {}, seed++);
  }
  return model;
}

struct ServedSim {
  std::vector<std::vector<int>> tokens;
  std::vector<std::int64_t> first_token_ps;
  std::vector<std::int64_t> finish_ps;
  std::int64_t sim_ps = 0;
  std::int64_t sim_events = 0;
};

ServedSim serve_with_timing(nn::TransformerLM& model,
                            serve::SchedulerConfig cfg) {
  serve::Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  std::uint64_t stream = 101;
  for (const auto& prompt : std::vector<std::vector<int>>{
           {3, 1, 4, 1, 5}, {2, 7, 1, 8}, {9, 9, 9}, {1, 2, 3, 4, 5, 6}}) {
    serve::RequestParams p;
    p.prompt = prompt;
    p.max_new_tokens = 5;
    p.stream_seed = stream++;
    ids.push_back(sched.submit(std::move(p)));
  }
  while (sched.step()) {
  }
  ServedSim out;
  for (const auto id : ids) {
    const auto rec = sched.request(id);
    out.tokens.push_back(rec.tokens);
    out.first_token_ps.push_back(rec.sim_first_token_ps);
    out.finish_ps.push_back(rec.sim_finish_ps);
  }
  out.sim_ps = sched.sim_now_ps();
  out.sim_events = sched.metrics().sim_events;
  return out;
}

TEST(TimingServe, SimTimeInvariantUnderTileThreadCount) {
  // The replay is a pure function of the op trace; the trace is emitted
  // only from the step-driving thread. So every simulated timestamp is
  // bit-identical no matter how many threads the tile MVPs fan across.
  util::ThreadPool::global().resize(4);
  serve::SchedulerConfig cfg;
  cfg.timing.enabled = true;
  auto m1 = analog_model(1);
  auto m4 = analog_model(4);
  const ServedSim a = serve_with_timing(m1, cfg);
  const ServedSim b = serve_with_timing(m4, cfg);
  util::ThreadPool::global().resize(1);

  EXPECT_EQ(a.tokens, b.tokens);  // serving itself is thread-invariant
  EXPECT_GT(a.sim_ps, 0);
  EXPECT_EQ(a.sim_ps, b.sim_ps);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.first_token_ps, b.first_token_ps);
  EXPECT_EQ(a.finish_ps, b.finish_ps);
  for (std::size_t i = 0; i < a.first_token_ps.size(); ++i) {
    EXPECT_GT(a.first_token_ps[i], 0);
    EXPECT_GE(a.finish_ps[i], a.first_token_ps[i]);
  }
}

TEST(TimingServe, DisabledTimingIsStrictNoOp) {
  auto model = analog_model(1);
  serve::SchedulerConfig off;  // timing.enabled defaults to false
  const ServedSim cold = serve_with_timing(model, off);
  serve::SchedulerConfig on;
  on.timing.enabled = true;
  const ServedSim hot = serve_with_timing(model, on);

  EXPECT_EQ(cold.tokens, hot.tokens);  // co-sim never perturbs the data path
  EXPECT_EQ(cold.sim_ps, 0);
  EXPECT_EQ(cold.sim_events, 0);
  for (const auto ps : cold.first_token_ps) EXPECT_EQ(ps, -1);
  EXPECT_GT(hot.sim_ps, 0);
}

TEST(TimingServe, BatchPolicyMovesLatencyNotTokens) {
  auto model = analog_model(1);
  serve::SchedulerConfig growth;
  growth.timing.enabled = true;
  serve::SchedulerConfig latency = growth;
  latency.batch_policy = serve::BatchPolicy::kLatencyAware;
  latency.prefill_tokens_per_step = 5;

  const ServedSim g = serve_with_timing(model, growth);
  const ServedSim l = serve_with_timing(model, latency);
  EXPECT_EQ(g.tokens, l.tokens);  // admission must never change outputs
  // Staggered prefills: the first request's first token lands earlier
  // than under co-admitted growth prefill.
  EXPECT_LT(l.first_token_ps[0], g.first_token_ps[0]);
}

TEST(TimingServe, LatencyAwareCapsCoAdmittedPrefill) {
  auto model = analog_model(1);
  serve::SchedulerConfig cfg;
  cfg.timing.enabled = true;
  cfg.batch_policy = serve::BatchPolicy::kLatencyAware;
  cfg.prefill_tokens_per_step = 5;  // exactly one prompt below
  serve::Scheduler sched(model, cfg);
  for (int i = 0; i < 4; ++i) {
    serve::RequestParams p;
    p.prompt = {1, 2, 3, 4, 5};
    p.max_new_tokens = 3;
    p.stream_seed = 200 + i;
    sched.submit(std::move(p));
  }
  sched.step();
  const auto snap = sched.audit_snapshot();
  EXPECT_EQ(snap.running, 1u);  // budget admitted one prompt, not four
  EXPECT_EQ(snap.queued, 3u);
  while (sched.step()) {
  }
  EXPECT_EQ(sched.audit_snapshot().queued, 0u);
}

TEST(TimingServe, PolicyParsing) {
  EXPECT_EQ(serve::batch_policy_from_string("growth"),
            serve::BatchPolicy::kGrowth);
  EXPECT_EQ(serve::batch_policy_from_string("latency-aware"),
            serve::BatchPolicy::kLatencyAware);
  EXPECT_EQ(serve::batch_policy_from_string("LATENCY"),
            serve::BatchPolicy::kLatencyAware);
  EXPECT_THROW(serve::batch_policy_from_string("bogus"),
               std::invalid_argument);
  EXPECT_STREQ(serve::to_string(serve::BatchPolicy::kGrowth), "growth");
  EXPECT_STREQ(serve::to_string(serve::BatchPolicy::kLatencyAware),
               "latency");
}

}  // namespace
}  // namespace nora::timing
