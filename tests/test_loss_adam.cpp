// Tests for the training substrate: cross-entropy loss and Adam.
#include <gtest/gtest.h>

#include <cmath>

#include "train/adam.hpp"
#include "train/loss.hpp"

namespace nora::train {
namespace {

TEST(Loss, UniformLogitsGiveLogV) {
  Matrix logits(1, 4);  // all zero -> uniform
  const std::vector<int> targets{2};
  const auto res = softmax_cross_entropy(logits, targets);
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-6);
  // Gradient: p - onehot.
  EXPECT_NEAR(res.dlogits.at(0, 0), 0.25, 1e-6);
  EXPECT_NEAR(res.dlogits.at(0, 2), 0.25 - 1.0, 1e-6);
}

TEST(Loss, GradientRowsSumToZero) {
  Matrix logits(3, 5);
  util::Rng rng(1);
  logits.fill_gaussian(rng, 2.0f);
  const std::vector<int> targets{0, 4, 2};
  const auto res = softmax_cross_entropy(logits, targets);
  for (std::int64_t t = 0; t < 3; ++t) {
    double s = 0.0;
    for (float v : res.dlogits.row(t)) s += v;
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, SkippedAndWeightedPositions) {
  Matrix logits(3, 4);
  const std::vector<int> targets{1, -1, 2};
  const std::vector<float> weights{1.0f, 0.0f, 3.0f};
  const auto res = softmax_cross_entropy(logits, targets, weights);
  // Position 1 skipped entirely.
  for (float v : res.dlogits.row(1)) EXPECT_EQ(v, 0.0f);
  // Weighted mean: both positions contribute log(4), weights 1 and 3.
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-6);
  // Position 2 contributes 3x the gradient of position 0.
  EXPECT_NEAR(res.dlogits.at(2, 0) / res.dlogits.at(0, 0), 3.0, 1e-4);
}

TEST(Loss, NumericallyStableForLargeLogits) {
  Matrix logits(1, 3, {1000.0f, 999.0f, 0.0f});
  const std::vector<int> targets{0};
  const auto res = softmax_cross_entropy(logits, targets);
  EXPECT_TRUE(std::isfinite(res.loss));
  EXPECT_LT(res.loss, 0.5);
}

TEST(Loss, ValidatesArguments) {
  Matrix logits(2, 3);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{1}),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{1, 5}),
               std::invalid_argument);
  const std::vector<int> t2{0, 1};
  EXPECT_THROW(softmax_cross_entropy(logits, t2, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(Loss, AllSkippedGivesZero) {
  Matrix logits(2, 3);
  const auto res = softmax_cross_entropy(logits, std::vector<int>{-1, -1});
  EXPECT_EQ(res.loss, 0.0);
}

TEST(Adam, MinimizesQuadratic) {
  // One Param holding 4 values; loss = 0.5 * ||w - target||^2.
  nn::Param p("w", Matrix(1, 4, {5.0f, -3.0f, 2.0f, 0.0f}));
  const std::vector<float> target{1.0f, 1.0f, -1.0f, 0.5f};
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.grad_clip = 0.0f;
  Adam opt({&p}, cfg);
  for (int i = 0; i < 500; ++i) {
    p.zero_grad();
    for (std::int64_t j = 0; j < 4; ++j) {
      p.grad.at(0, j) = p.value.at(0, j) - target[static_cast<std::size_t>(j)];
    }
    opt.step();
  }
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(p.value.at(0, j), target[static_cast<std::size_t>(j)], 1e-2);
  }
  EXPECT_EQ(opt.steps_taken(), 500);
}

TEST(Adam, RespectsNonTrainableParams) {
  nn::Param frozen("f", Matrix(1, 2, {1.0f, 2.0f}), /*train=*/false);
  Adam opt({&frozen});
  frozen.grad.fill(10.0f);
  opt.step();
  EXPECT_FLOAT_EQ(frozen.value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(frozen.value.at(0, 1), 2.0f);
}

TEST(Adam, GradClipBoundsStepSize) {
  nn::Param p("w", Matrix(1, 1, {0.0f}));
  AdamConfig cfg;
  cfg.lr = 1.0f;
  cfg.grad_clip = 1e-3f;
  Adam opt({&p}, cfg);
  p.grad.at(0, 0) = 1e6f;
  opt.step();
  // Adam normalizes by sqrt(v), so the step is ~lr regardless; the clip
  // mainly protects the moment estimates. Verify the update is finite
  // and bounded by lr.
  EXPECT_LE(std::fabs(p.value.at(0, 0)), 1.0f + 1e-3f);
}

TEST(Adam, WeightDecayShrinksWeights) {
  nn::Param p("w", Matrix(1, 1, {4.0f}));
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.1f;
  Adam opt({&p}, cfg);
  for (int i = 0; i < 100; ++i) {
    p.zero_grad();  // zero gradient: only decay acts
    opt.step();
  }
  EXPECT_LT(std::fabs(p.value.at(0, 0)), 2.0f);
}

}  // namespace
}  // namespace nora::train
