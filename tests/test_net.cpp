// Network front-end tests: JSON parser, incremental HTTP parser,
// timeout wheel, ServeError->HTTP mapping, and the full connection
// state machine driven deterministically over SimTransport pipes with a
// virtual clock — timeouts, backpressure, disconnects, shedding and
// graceful drain, all without a single real socket or sleep.
#include <gtest/gtest.h>

#include <csignal>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "cim/tile_config.hpp"
#include "net/http.hpp"
#include "net/json.hpp"
#include "net/poller.hpp"
#include "net/server.hpp"
#include "net/signals.hpp"
#include "net/timeout_wheel.hpp"
#include "net/transport.hpp"
#include "nn/transformer.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "util/thread_pool.hpp"

namespace nora::net {
namespace {

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  const JsonParseResult r = json_parse(
      " {\"a\": 1, \"b\": [true, false, null, -2.5e3], \"c\": {\"d\":\"x\"}} ");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  EXPECT_EQ(r.value.get_int("a", -1), 1);
  const JsonValue* b = r.value.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->as_array().size(), 4u);
  EXPECT_TRUE(b->as_array()[0].as_bool());
  EXPECT_TRUE(b->as_array()[2].is_null());
  EXPECT_DOUBLE_EQ(b->as_array()[3].as_double(), -2500.0);
  const JsonValue* c = r.value.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->get_string("d", ""), "x");
}

TEST(Json, ParsesEscapes) {
  const JsonParseResult r =
      json_parse("{\"s\":\"a\\n\\t\\\"\\\\b\\u0041\"}");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.get_string("s", ""), "a\n\t\"\\bA");
}

TEST(Json, RejectsMalformed) {
  const char* bad[] = {
      "{\"a\":1,}",          // trailing comma
      "{\"a\":1} x",         // trailing content
      "{\"a\":1,\"a\":2}",   // duplicate key
      "{\"a\":NaN}",         // NaN is not JSON
      "{\"a\":Infinity}",    // neither is Infinity
      "{\"a\":01}",          // leading zero
      "{\"a\":\"\x01\"}",    // raw control char in string
      "{\"a\":\"\\q\"}",     // bad escape
      "{\"a\":}",            // missing value
      "[1 2]",               // missing comma
      "\"unterminated",      // unterminated string
  };
  for (const char* s : bad) {
    const JsonParseResult r = json_parse(s);
    EXPECT_FALSE(r.ok) << "should reject: " << s;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(Json, RejectsExcessiveDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(json_parse(deep, /*max_depth=*/64).ok);
  EXPECT_TRUE(json_parse(deep, /*max_depth=*/128).ok);
}

TEST(Json, EscapeRoundTrips) {
  const std::string raw = "he said \"hi\"\n\ttab\\slash\x01";
  const JsonParseResult r = json_parse("{\"k\":" + json_escape(raw) + "}");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.get_string("k", ""), raw);
}

// --- Metrics::to_json well-formedness (the JSON checker satellite) ----

TEST(Json, EmptyMetricsJsonIsWellFormed) {
  const serve::Metrics m;
  const std::string js = m.to_json();
  const JsonParseResult r = json_parse(js);
  ASSERT_TRUE(r.ok) << r.error << "\n" << js;
  EXPECT_TRUE(r.value.is_object());
  EXPECT_EQ(r.value.get_int("submitted", -1), 0);
}

TEST(Json, MetricsJsonWithPerCodeRejectionsIsWellFormed) {
  serve::Metrics m;
  m.submitted = 7;
  m.rejected = 3;
  m.rejected_by_code[static_cast<std::size_t>(
      serve::ServeError::kQueueFull)] = 2;
  m.rejected_by_code[static_cast<std::size_t>(
      serve::ServeError::kEmptyPrompt)] = 1;
  m.ttft_s = {0.5, 0.25};
  const std::string js = m.to_json();
  const JsonParseResult r = json_parse(js);
  ASSERT_TRUE(r.ok) << r.error << "\n" << js;
  const JsonValue* by_code = r.value.find("rejected_by_code");
  ASSERT_NE(by_code, nullptr);
  ASSERT_TRUE(by_code->is_object());
  EXPECT_EQ(by_code->get_int("queue_full", -1), 2);
  EXPECT_EQ(by_code->get_int("empty_prompt", -1), 1);
}

TEST(Json, MetricsJsonGuardsNonFiniteValues) {
  serve::Metrics m;
  m.generated_tokens = 100;
  m.wall_s = 0.0;  // tokens_per_s() guards this internally...
  m.occupancy_sum = std::numeric_limits<double>::quiet_NaN();
  m.busy_steps = 1;  // ...but mean_occupancy() is now NaN
  const std::string js = m.to_json();
  const JsonParseResult r = json_parse(js);
  ASSERT_TRUE(r.ok) << "NaN must serialize as null, got: " << js;
  const JsonValue* v = r.value.find("mean_occupancy");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->is_null());
}

// ---------------------------------------------------------------------
// HTTP parser
// ---------------------------------------------------------------------

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser p;
  EXPECT_FALSE(p.started());
  const auto st =
      p.feed("GET /healthz?x=1 HTTP/1.1\r\nHost: a\r\n\r\n");
  ASSERT_EQ(st, HttpParser::Status::kComplete);
  EXPECT_TRUE(p.started());
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/healthz?x=1");
  EXPECT_EQ(p.request().path(), "/healthz");
  EXPECT_TRUE(p.request().keep_alive);  // HTTP/1.1 default
  ASSERT_NE(p.request().header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*p.request().header("HOST"), "a");
}

TEST(HttpParser, ParsesBodyAndSingleByteFeeds) {
  const std::string req =
      "POST /v1/completions HTTP/1.1\r\nHost: a\r\n"
      "Content-Length: 11\r\n\r\nhello world";
  HttpParser p;
  HttpParser::Status st = HttpParser::Status::kNeedMore;
  for (const char ch : req) st = p.feed(std::string_view(&ch, 1));
  ASSERT_EQ(st, HttpParser::Status::kComplete);
  EXPECT_EQ(p.request().body, "hello world");
}

TEST(HttpParser, PipelinedRequestsSurviveReset) {
  HttpParser p;
  const auto st = p.feed(
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(st, HttpParser::Status::kComplete);
  EXPECT_EQ(p.request().path(), "/a");
  ASSERT_EQ(p.reset(), HttpParser::Status::kComplete);
  EXPECT_EQ(p.request().path(), "/b");
  EXPECT_EQ(p.reset(), HttpParser::Status::kNeedMore);
}

TEST(HttpParser, ConnectionSemantics) {
  {
    HttpParser p;
    p.feed("GET / HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(p.request().keep_alive);
  }
  {
    HttpParser p;
    p.feed("GET / HTTP/1.0\r\nHost: a\r\n\r\n");
    EXPECT_FALSE(p.request().keep_alive);  // 1.0 default close
  }
  {
    HttpParser p;
    p.feed("GET / HTTP/1.0\r\nHost: a\r\nConnection: keep-alive\r\n\r\n");
    EXPECT_TRUE(p.request().keep_alive);
  }
}

TEST(HttpParser, RejectsProtocolViolations) {
  struct Case {
    const char* req;
    int status;
  };
  const Case cases[] = {
      {"GARBAGE\r\n\r\n", 400},
      {"GET  / HTTP/1.1\r\n\r\n", 400},                        // double space
      {"GET http://e/ HTTP/1.1\r\nHost: a\r\n\r\n", 400},      // absolute-form
      {"GET / HTTP/2.0\r\nHost: a\r\n\r\n", 505},
      {"GET / HTTP/1.1\r\nHost: a\r\nX: 1\r\n 2\r\n\r\n", 400},  // obs-fold
      {"GET / HTTP/1.1\r\nHost : a\r\n\r\n", 400},  // ws before colon
      {"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
       400},
      {"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
  };
  for (const Case& c : cases) {
    HttpParser p;
    EXPECT_EQ(p.feed(c.req), HttpParser::Status::kError) << c.req;
    EXPECT_EQ(p.error_status(), c.status) << c.req;
  }
}

TEST(HttpParser, EnforcesSizeLimits) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  limits.max_body_bytes = 8;
  {
    HttpParser p(limits);
    const std::string big_header =
        "GET / HTTP/1.1\r\nX-Pad: " + std::string(100, 'a') + "\r\n\r\n";
    EXPECT_EQ(p.feed(big_header), HttpParser::Status::kError);
    EXPECT_EQ(p.error_status(), 431);
  }
  {
    HttpParser p(limits);
    EXPECT_EQ(p.feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
              HttpParser::Status::kError);
    EXPECT_EQ(p.error_status(), 413);
  }
}

TEST(HttpParser, ResponseBuildersProduceValidFraming) {
  const std::string resp =
      http_response(200, "application/json", "{\"a\":1}", true);
  EXPECT_EQ(resp.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\n{\"a\":1}"), std::string::npos);

  EXPECT_EQ(http_chunk("abc"), "3\r\nabc\r\n");
  EXPECT_EQ(http_chunk(std::string(26, 'x')),
            "1a\r\n" + std::string(26, 'x') + "\r\n");
  EXPECT_EQ(http_last_chunk(), "0\r\n\r\n");
  const std::string head = http_chunked_head(200, "application/json", false);
  EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_NE(head.find("Connection: close\r\n"), std::string::npos);
}

// ---------------------------------------------------------------------
// Timeout wheel
// ---------------------------------------------------------------------

TEST(TimeoutWheel, FiresJustDueEntriesWithoutAFullRotation) {
  TimeoutWheel w(/*tick_ms=*/50, /*slots=*/8);
  std::vector<std::uint64_t> fired;
  w.expire(0, fired);
  // Deadline rounds UP into the next slot; it must still fire at the
  // first expire() at/after the deadline, not one rotation later.
  w.schedule(1, 60);
  w.expire(55, fired);
  EXPECT_TRUE(fired.empty());  // not due yet
  w.expire(60, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  fired.clear();
  w.expire(500, fired);
  EXPECT_TRUE(fired.empty());  // fired once, not again
}

TEST(TimeoutWheel, CancelAndRearm) {
  TimeoutWheel w(10, 16);
  std::vector<std::uint64_t> fired;
  w.expire(0, fired);
  w.schedule(1, 50);
  w.schedule(2, 50);
  w.cancel(1);
  w.schedule(2, 200);  // re-arm replaces the old deadline
  w.expire(100, fired);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(w.next_deadline(), 200);
  w.expire(200, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2u);
  EXPECT_EQ(w.next_deadline(), -1);
}

TEST(TimeoutWheel, SurvivesLongClockJumps) {
  TimeoutWheel w(10, 4);  // tiny wheel: jumps cross many rotations
  std::vector<std::uint64_t> fired;
  w.expire(0, fired);
  w.schedule(7, 25);
  w.expire(10000, fired);  // clock leaps far past everything
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
}

// ---------------------------------------------------------------------
// ServeError -> HTTP status
// ---------------------------------------------------------------------

TEST(ServeErrorMapping, CoversEveryCode) {
  using serve::ServeError;
  EXPECT_EQ(http_status_for(ServeError::kNone), 200);
  EXPECT_EQ(http_status_for(ServeError::kEmptyPrompt), 400);
  EXPECT_EQ(http_status_for(ServeError::kMaxTokensNonPositive), 400);
  EXPECT_EQ(http_status_for(ServeError::kDeadlineNegative), 400);
  EXPECT_EQ(http_status_for(ServeError::kPromptTooLong), 400);
  EXPECT_EQ(http_status_for(ServeError::kFootprintOverBudget), 413);
  EXPECT_EQ(http_status_for(ServeError::kQueueFull), 429);
  EXPECT_EQ(http_status_for(ServeError::kMaintenance), 503);
  EXPECT_EQ(http_status_for(ServeError::kPoolExhausted), 503);
  EXPECT_EQ(http_status_for(ServeError::kRetryBudgetExhausted), 503);
  // Every enumerator maps somewhere sane (4xx/5xx for errors).
  for (std::size_t i = 1;
       i < static_cast<std::size_t>(ServeError::kCount); ++i) {
    const int s = http_status_for(static_cast<ServeError>(i));
    EXPECT_GE(s, 400);
    EXPECT_LT(s, 600);
  }
}

// ---------------------------------------------------------------------
// Poller (real fds, both backends)
// ---------------------------------------------------------------------

void poller_smoke(bool force_poll) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  {
    Poller poller(force_poll);
    poller.add(fds[0], /*key=*/42, /*want_read=*/true, /*want_write=*/false);
    std::vector<Poller::Event> events;
    poller.wait(events, 0);
    EXPECT_TRUE(events.empty());
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    poller.wait(events, 1000);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].key, 42u);
    EXPECT_TRUE(events[0].readable);
    poller.remove(fds[0]);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Poller, EpollBackend) { poller_smoke(false); }
TEST(Poller, PollBackend) { poller_smoke(true); }

// ---------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------

TEST(SimTransport, BoundedPipeBackpressureAndClose) {
  auto [a, b] = make_sim_pair(/*capacity=*/4);
  EXPECT_EQ(a->write("abcdef", 6), 4);        // capacity-bounded
  EXPECT_EQ(a->write("x", 1), Transport::kAgain);
  char buf[8];
  EXPECT_EQ(b->read(buf, 2), 2);
  EXPECT_EQ(a->write("ef", 2), 2);            // space freed
  EXPECT_EQ(b->read(buf, 8), 4);
  EXPECT_EQ(std::string("cdef"), std::string(buf, 4));
  EXPECT_EQ(b->read(buf, 8), Transport::kAgain);
  a->close();
  EXPECT_EQ(b->read(buf, 8), Transport::kEof);
  EXPECT_EQ(b->write("y", 1), Transport::kError);  // EPIPE analog
  EXPECT_TRUE(b->peer_closed());
}

// ---------------------------------------------------------------------
// HttpServer over sim transports (virtual clock throughout)
// ---------------------------------------------------------------------

nn::TransformerLM make_tiny_model() {
  nn::TransformerConfig arch;
  arch.vocab_size = 30;
  arch.d_model = 24;
  arch.n_layers = 2;
  arch.n_heads = 3;
  arch.d_ff = 48;
  arch.max_seq = 64;
  arch.seed = 77;
  nn::TransformerLM model(arch);
  cim::TileConfig tiles = cim::TileConfig::paper_table2();
  tiles.tile_rows = 16;
  tiles.tile_cols = 12;
  tiles.in_noise = 0.02f;
  tiles.abft_checksum = true;
  tiles.n_threads = 1;
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tiles, {}, seed++);
  }
  return model;
}

struct Harness {
  nn::TransformerLM model;
  std::unique_ptr<serve::Scheduler> sched;
  std::unique_ptr<HttpServer> server;
  std::int64_t now = 0;

  explicit Harness(ServerConfig ncfg = {},
                   serve::SchedulerConfig scfg = {})
      : model(make_tiny_model()) {
    util::ThreadPool::global().resize(1);
    scfg.record_events = true;
    sched = std::make_unique<serve::Scheduler>(model, scfg);
    server = std::make_unique<HttpServer>(*sched, ncfg);
  }

  /// Advance virtual time in `tick` ms pumps (the server steps the
  /// scheduler itself unless the config says otherwise).
  void advance(std::int64_t ms, std::int64_t tick = 10) {
    const std::int64_t until = now + ms;
    while (now < until) {
      now = std::min(now + tick, until);
      server->pump(now);
    }
  }

  std::unique_ptr<SimTransport> connect(std::size_t capacity = 4096) {
    auto [server_end, client_end] = make_sim_pair(capacity);
    server->adopt(std::move(server_end), now);
    return std::move(client_end);
  }
};

void send_all(Harness& h, SimTransport& t, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const std::ptrdiff_t w = t.write(data.data() + off, data.size() - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
    } else {
      ASSERT_EQ(w, Transport::kAgain);
    }
    h.advance(10);
  }
}

std::string read_avail(SimTransport& t) {
  std::string out;
  char buf[512];
  while (true) {
    const std::ptrdiff_t r = t.read(buf, sizeof(buf));
    if (r <= 0) break;
    out.append(buf, static_cast<std::size_t>(r));
  }
  return out;
}

/// Drive until the peer closes (response complete) or `max_ms` passes.
std::string read_response(Harness& h, SimTransport& t,
                          std::int64_t max_ms = 5000) {
  std::string out;
  const std::int64_t until = h.now + max_ms;
  while (h.now < until) {
    out += read_avail(t);
    if (t.peer_closed() && t.readable() == 0) break;
    h.advance(10);
  }
  out += read_avail(t);
  return out;
}

std::string completion_req(const std::string& prompt_csv, int max_new,
                           bool stream, bool close = true) {
  const std::string body = "{\"prompt\":[" + prompt_csv +
                           "],\"max_new_tokens\":" + std::to_string(max_new) +
                           ",\"stream\":" + (stream ? "true" : "false") + "}";
  return "POST /v1/completions HTTP/1.1\r\nHost: t\r\n" +
         std::string(close ? "Connection: close\r\n" : "") +
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(HttpServer, RequiresEventRecording) {
  nn::TransformerLM model = make_tiny_model();
  serve::SchedulerConfig scfg;  // record_events left false
  serve::Scheduler sched(model, scfg);
  EXPECT_THROW(HttpServer(sched, ServerConfig{}), std::invalid_argument);
}

TEST(HttpServer, HealthzMetricsAndErrors) {
  Harness h;
  {
    auto c = h.connect();
    send_all(h, *c,
             "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    const std::string resp = read_response(h, *c);
    EXPECT_EQ(resp.rfind("HTTP/1.1 200", 0), 0u) << resp;
    EXPECT_NE(resp.find("\"status\":\"ok\""), std::string::npos);
  }
  {
    auto c = h.connect();
    send_all(h, *c,
             "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    const std::string resp = read_response(h, *c);
    EXPECT_EQ(resp.rfind("HTTP/1.1 200", 0), 0u);
    // The whole /metrics body must be valid JSON.
    const std::size_t body_at = resp.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const JsonParseResult r = json_parse(resp.substr(body_at + 4));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(r.value.find("serve"), nullptr);
    EXPECT_NE(r.value.find("net"), nullptr);
  }
  {
    auto c = h.connect();
    send_all(h, *c,
             "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(read_response(h, *c).rfind("HTTP/1.1 404", 0), 0u);
  }
  {
    auto c = h.connect();
    send_all(h, *c,
             "POST /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
             "Content-Length: 0\r\n\r\n");
    EXPECT_EQ(read_response(h, *c).rfind("HTTP/1.1 405", 0), 0u);
  }
  {
    auto c = h.connect();
    send_all(h, *c, "NONSENSE\r\n\r\n");
    EXPECT_EQ(read_response(h, *c).rfind("HTTP/1.1 400", 0), 0u);
    EXPECT_EQ(h.server->net_metrics().malformed, 1);
  }
}

TEST(HttpServer, StreamingCompletionMatchesSchedulerRecord) {
  Harness h;
  auto c = h.connect();
  send_all(h, *c, completion_req("3,1,4,1,5", 6, /*stream=*/true));
  const std::string resp = read_response(h, *c);
  EXPECT_EQ(resp.rfind("HTTP/1.1 200", 0), 0u) << resp;
  EXPECT_NE(resp.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(resp.find("\"done\":true"), std::string::npos);
  EXPECT_NE(resp.find("\"state\":\"finished\""), std::string::npos);

  // Token chunks must match the scheduler's own record, in order.
  const serve::RequestRecord rec = h.sched->request(0);
  ASSERT_EQ(rec.tokens.size(), 6u);
  std::size_t pos = 0;
  for (const int tok : rec.tokens) {
    const std::string marker = "{\"token\":" + std::to_string(tok);
    pos = resp.find(marker, pos);
    ASSERT_NE(pos, std::string::npos) << "missing/misordered " << marker;
    ++pos;
  }
  EXPECT_EQ(h.server->net_metrics().chunks_sent, 6);
  EXPECT_EQ(h.server->connections(), 0u);  // Connection: close honored
}

TEST(HttpServer, UnaryCompletionReturnsFullBody) {
  Harness h;
  auto c = h.connect();
  send_all(h, *c, completion_req("2,7,1", 4, /*stream=*/false));
  const std::string resp = read_response(h, *c);
  EXPECT_EQ(resp.rfind("HTTP/1.1 200", 0), 0u) << resp;
  const std::size_t body_at = resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const JsonParseResult r = json_parse(resp.substr(body_at + 4));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.get_string("state", ""), "finished");
  const JsonValue* tokens = r.value.find("tokens");
  ASSERT_NE(tokens, nullptr);
  ASSERT_TRUE(tokens->is_array());
  const serve::RequestRecord rec = h.sched->request(0);
  ASSERT_EQ(tokens->as_array().size(), rec.tokens.size());
  for (std::size_t i = 0; i < rec.tokens.size(); ++i) {
    EXPECT_EQ(tokens->as_array()[i].as_int(), rec.tokens[i]);
  }
}

TEST(HttpServer, KeepAliveServesSequentialRequests) {
  Harness h;
  auto c = h.connect();
  send_all(h, *c, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  h.advance(50);
  std::string first = read_avail(*c);
  EXPECT_EQ(first.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_EQ(h.server->connections(), 1u);  // still open
  send_all(h, *c,
           "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  const std::string second = read_response(h, *c);
  EXPECT_EQ(second.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_EQ(h.server->net_metrics().requests, 2);
}

TEST(HttpServer, RejectsBadCompletionRequests) {
  Harness h;
  {
    auto c = h.connect();
    const std::string body = "{not json";
    send_all(h, *c,
             "POST /v1/completions HTTP/1.1\r\nHost: t\r\n"
             "Connection: close\r\nContent-Length: " +
                 std::to_string(body.size()) + "\r\n\r\n" + body);
    const std::string resp = read_response(h, *c);
    EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u);
    EXPECT_NE(resp.find("bad_json"), std::string::npos);
  }
  {
    auto c = h.connect();
    send_all(h, *c, completion_req("", 4, true));  // empty prompt
    EXPECT_EQ(read_response(h, *c).rfind("HTTP/1.1 400", 0), 0u);
  }
  {
    ServerConfig ncfg;
    ncfg.max_prompt_tokens = 4;
    Harness h2(ncfg);
    auto c = h2.connect();
    send_all(h2, *c, completion_req("1,2,3,4,5,6", 4, true));
    EXPECT_EQ(read_response(h2, *c).rfind("HTTP/1.1 413", 0), 0u);
  }
}

TEST(HttpServer, QueueFullMapsTo429WithRetryAfter) {
  ServerConfig ncfg;
  ncfg.step_scheduler = false;  // keep the queue full: nobody admits
  serve::SchedulerConfig scfg;
  scfg.queue_capacity = 1;
  Harness h(ncfg, scfg);
  // Fill the queue directly (the scheduler never steps here).
  serve::RequestParams p;
  p.prompt = {1, 2};
  h.sched->submit(std::move(p));
  auto c = h.connect();
  send_all(h, *c, completion_req("3,4", 4, true));
  const std::string resp = read_response(h, *c);
  EXPECT_EQ(resp.rfind("HTTP/1.1 429", 0), 0u) << resp;
  EXPECT_NE(resp.find("Retry-After: "), std::string::npos);
  EXPECT_NE(resp.find("queue_full"), std::string::npos);
}

TEST(HttpServer, HeaderTimeoutKillsSlowLoris) {
  ServerConfig ncfg;
  ncfg.header_timeout_ms = 200;
  Harness h(ncfg);
  auto c = h.connect();
  send_all(h, *c, "GET /healthz HT");  // header never completes
  h.advance(500);
  const std::string resp = read_avail(*c);
  EXPECT_EQ(resp.rfind("HTTP/1.1 408", 0), 0u) << resp;
  EXPECT_TRUE(c->peer_closed());
  EXPECT_EQ(h.server->net_metrics().header_timeouts, 1);
  EXPECT_EQ(h.server->connections(), 0u);
}

TEST(HttpServer, IdleTimeoutReapsSilentConnections) {
  ServerConfig ncfg;
  ncfg.idle_timeout_ms = 300;
  Harness h(ncfg);
  auto c = h.connect();
  h.advance(250);
  EXPECT_EQ(h.server->connections(), 1u);  // not idle-timed-out yet
  h.advance(200);
  EXPECT_TRUE(c->peer_closed());
  EXPECT_EQ(h.server->net_metrics().idle_timeouts, 1);
  EXPECT_EQ(h.server->connections(), 0u);
}

TEST(HttpServer, WriteStallCancelsSchedulerRequest) {
  ServerConfig ncfg;
  ncfg.write_stall_timeout_ms = 300;
  Harness h(ncfg);
  auto c = h.connect(/*capacity=*/64);  // tiny pipe, and we never read
  // Long generation (one token per 10ms pump): the 300ms stall deadline
  // must fire mid-stream, well before the request could finish.
  send_all(h, *c, completion_req("1,2,3", 48, /*stream=*/true));
  h.advance(2000);
  EXPECT_EQ(h.server->net_metrics().write_stall_cancels, 1);
  EXPECT_EQ(h.server->connections(), 0u);
  const serve::RequestRecord rec = h.sched->request(0);
  EXPECT_EQ(rec.state, serve::RequestState::kCancelled);
  // Cancellation released the slab: nothing may leak.
  const serve::AuditSnapshot snap = h.sched->audit_snapshot();
  EXPECT_EQ(snap.pool_live, 0);
  EXPECT_EQ(snap.pool_acquires, snap.pool_releases);
}

TEST(HttpServer, WriteBufferOverflowCancelsStream) {
  ServerConfig ncfg;
  ncfg.write_stall_timeout_ms = 1000000;  // stall timer out of the picture
  ncfg.max_write_buffer_bytes = 64;
  Harness h(ncfg);
  auto c = h.connect(/*capacity=*/16);
  send_all(h, *c, completion_req("1,2,3", 32, /*stream=*/true));
  h.advance(3000);
  EXPECT_EQ(h.server->net_metrics().overflow_closes, 1);
  EXPECT_EQ(h.sched->request(0).state, serve::RequestState::kCancelled);
}

TEST(HttpServer, ClientDisconnectCancelsMidStream) {
  Harness h;
  auto c = h.connect();
  // Small prompt, long generation; disconnect after the first token.
  send_all(h, *c, completion_req("5,6", 32, /*stream=*/true));
  const std::int64_t deadline = h.now + 5000;
  std::string seen;
  while (h.now < deadline && seen.find("{\"token\":") == std::string::npos) {
    seen += read_avail(*c);
    h.advance(10);
  }
  c->close();
  h.advance(500);
  EXPECT_EQ(h.server->net_metrics().disconnect_cancels, 1);
  EXPECT_EQ(h.server->connections(), 0u);
  EXPECT_EQ(h.sched->request(0).state, serve::RequestState::kCancelled);
  const serve::AuditSnapshot snap = h.sched->audit_snapshot();
  EXPECT_EQ(snap.pool_live, 0);
}

TEST(HttpServer, ShedsBeyondConnectionCap) {
  ServerConfig ncfg;
  ncfg.max_connections = 1;
  Harness h(ncfg);
  auto keeper = h.connect();
  auto shed = h.connect();  // over the cap: 503 + close, never adopted
  EXPECT_EQ(h.server->connections(), 1u);
  EXPECT_EQ(h.server->net_metrics().shed, 1);
  const std::string resp = read_avail(*shed);
  EXPECT_EQ(resp.rfind("HTTP/1.1 503", 0), 0u) << resp;
  EXPECT_NE(resp.find("Retry-After: "), std::string::npos);
  EXPECT_TRUE(shed->peer_closed());
}

TEST(HttpServer, GracefulDrainFinishesInFlightStreams) {
  Harness h;
  auto c = h.connect();
  send_all(h, *c, completion_req("1,2,3", 8, /*stream=*/true));
  h.advance(30);  // request submitted, stream under way
  h.server->request_shutdown(h.now);
  EXPECT_TRUE(h.server->draining());

  // New work during the drain is refused with 503 + Retry-After.
  auto late = h.connect();
  send_all(h, *late, completion_req("4,5", 4, /*stream=*/false));
  const std::string refused = read_response(h, *late);
  EXPECT_EQ(refused.rfind("HTTP/1.1 503", 0), 0u) << refused;
  EXPECT_NE(refused.find("Retry-After: "), std::string::npos);

  // The in-flight stream still finishes cleanly.
  const std::string resp = read_response(h, *c);
  EXPECT_NE(resp.find("\"done\":true"), std::string::npos);
  EXPECT_NE(resp.find("\"state\":\"finished\""), std::string::npos);
  h.advance(100);
  EXPECT_TRUE(h.server->drained());
  EXPECT_EQ(h.server->net_metrics().drain_cancels, 0);
}

TEST(HttpServer, DrainDeadlineForceCancelsStragglers) {
  ServerConfig ncfg;
  ncfg.drain_timeout_ms = 300;
  ncfg.step_scheduler = false;  // nobody steps: the request can't finish
  Harness h(ncfg);
  auto c = h.connect();
  send_all(h, *c, completion_req("1,2", 8, /*stream=*/true));
  h.server->request_shutdown(h.now);
  h.advance(1000);
  EXPECT_TRUE(h.server->drained());
  EXPECT_EQ(h.server->net_metrics().drain_cancels, 1);
  // cancel() is deferred to the next step(); apply it and check.
  h.sched->step();
  EXPECT_EQ(h.sched->request(0).state, serve::RequestState::kCancelled);
}

// ---------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------

TEST(Signals, FlagAndWakeFd) {
  install_signal_handlers();
  reset_shutdown_flag();
  EXPECT_FALSE(shutdown_requested());
  ::raise(SIGTERM);
  EXPECT_TRUE(shutdown_requested());
  EXPECT_EQ(shutdown_signal_count(), 1);
  ::raise(SIGINT);
  EXPECT_EQ(shutdown_signal_count(), 2);  // the "abandon drain" threshold
  reset_shutdown_flag();
  EXPECT_FALSE(shutdown_requested());
}

}  // namespace
}  // namespace nora::net
