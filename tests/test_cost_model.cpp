// Tests for the analytic energy/latency/area cost model.
#include <gtest/gtest.h>

#include "cost/cost_model.hpp"

namespace nora::cost {
namespace {

TEST(CostModel, BreakdownSumsToTotal) {
  const auto a = analog_linear_cost(512, 512, 16, cim::TileConfig::paper_table2());
  EXPECT_NEAR(a.energy_pj, a.adc_pj + a.dac_pj + a.cell_pj, 1e-6);
  EXPECT_GT(a.area_um2, 0.0);
  const auto d = digital_linear_cost(512, 512, 16, 32);
  EXPECT_NEAR(d.energy_pj, d.mac_pj + d.mem_pj, 1e-6);
}

TEST(CostModel, AdcEnergyDoublesPerBit) {
  cim::TileConfig c7 = cim::TileConfig::paper_table2();
  cim::TileConfig c8 = c7;
  c8.adc_bits = 8;
  const auto a7 = analog_linear_cost(512, 512, 4, c7);
  const auto a8 = analog_linear_cost(512, 512, 4, c8);
  EXPECT_NEAR(a8.adc_pj / a7.adc_pj, 2.0, 1e-6);
}

TEST(CostModel, EnergyScalesLinearlyInTokens) {
  const auto c1 = analog_linear_cost(256, 256, 1, cim::TileConfig::paper_table2());
  const auto c4 = analog_linear_cost(256, 256, 4, cim::TileConfig::paper_table2());
  EXPECT_NEAR(c4.energy_pj / c1.energy_pj, 4.0, 1e-6);
  EXPECT_NEAR(c4.latency_ns / c1.latency_ns, 4.0, 1e-6);
}

TEST(CostModel, TilePartitioningAddsAdcConversions) {
  // Splitting K over two row blocks doubles the ADC conversions
  // (partial sums are converted separately).
  cim::TileConfig one = cim::TileConfig::paper_table2();
  one.tile_rows = 1024;
  cim::TileConfig two = one;
  two.tile_rows = 512;
  const auto a1 = analog_linear_cost(1024, 256, 4, one);
  const auto a2 = analog_linear_cost(1024, 256, 4, two);
  EXPECT_NEAR(a2.adc_pj / a1.adc_pj, 2.0, 1e-6);
  EXPECT_EQ(a1.cell_pj, a2.cell_pj);
}

TEST(CostModel, Int8BeatsFp32Digital) {
  const auto fp32 = digital_linear_cost(512, 512, 16, 32);
  const auto int8 = digital_linear_cost(512, 512, 16, 8);
  EXPECT_LT(int8.energy_pj, fp32.energy_pj);
}

TEST(CostModel, WeightReuseAmortizesMemoryWall) {
  // Per-token energy shrinks as more tokens share one weight stream.
  const auto few = digital_linear_cost(512, 512, 1, 32);
  const auto many = digital_linear_cost(512, 512, 64, 32);
  EXPECT_LT(many.energy_pj / 64.0, few.energy_pj);
}

TEST(CostModel, AnalogBeatsDigitalAtModerateResolutionLosesAtHigh) {
  // The crossover the bench prints: 7-bit analog beats int8 digital for
  // single-token (memory-bound) inference; very high ADC resolution
  // erodes the advantage.
  const auto dig = digital_linear_cost(512, 512, 1, 8);
  cim::TileConfig lowres = cim::TileConfig::paper_table2();
  const auto analog7 = analog_linear_cost(512, 512, 1, lowres);
  EXPECT_LT(analog7.energy_pj, dig.energy_pj);
  cim::TileConfig hires = lowres;
  hires.adc_bits = 14;
  hires.dac_bits = 14;
  const auto analog14 = analog_linear_cost(512, 512, 1, hires);
  EXPECT_GT(analog14.energy_pj, analog7.energy_pj * 20.0);
}

TEST(CostModel, ValidatesArguments) {
  EXPECT_THROW(analog_linear_cost(0, 8, 1, cim::TileConfig::paper_table2()),
               std::invalid_argument);
  EXPECT_THROW(digital_linear_cost(8, 8, 1, 16), std::invalid_argument);
}

TEST(CostModel, ModelAggregationMatchesLayerSum) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 20;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  nn::TransformerLM model(cfg);
  const auto c = model_linear_cost(model, 8, Backend::kAnalogCim,
                                   cim::TileConfig::paper_table2());
  EXPECT_EQ(c.layers.size(), model.linear_layers().size());
  double sum = 0.0;
  for (const auto& l : c.layers) sum += l.energy_pj;
  EXPECT_NEAR(sum, c.energy_pj, 1e-6);
}

}  // namespace
}  // namespace nora::cost
