// Cross-request KV prefix caching: pool mechanics and the serving-layer
// bit-exactness contract.
//
// The headline property: a request admitted with a prefix lease — its
// prompt's leading tokens' KV rows read from a retired predecessor's
// published slab instead of being recomputed — produces tokens AND
// logits bit-identical to the cold run that prefills everything itself.
// This holds because KV row i depends only on tokens 0..i and the noise
// keys (stream, 0..i), so for the SAME stream the shared rows ARE the
// rows the cold run would compute. Divergence is copy-on-write by
// construction (appends only ever touch the private slab), eviction is
// LRU over unreferenced entries, and cancelling a lease-holding request
// releases its reference exactly once.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cim/tile_config.hpp"
#include "nn/transformer.hpp"
#include "serve/auditor.hpp"
#include "serve/kv_cache_pool.hpp"
#include "serve/scheduler.hpp"

namespace nora::serve {
namespace {

nn::TransformerConfig tiny_arch() {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 32;
  cfg.seed = 77;
  return cfg;
}

/// Noisy analog operating point: per-row keyed noise is what makes the
/// bit-exactness claim non-trivial (a digital model is trivially
/// deterministic).
nn::TransformerLM make_analog_model() {
  cim::TileConfig tile = cim::TileConfig::paper_table2();
  tile.tile_rows = 16;
  tile.tile_cols = 12;
  tile.in_noise = 0.02f;
  nn::TransformerLM model(tiny_arch());
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tile, {}, seed++);
  }
  return model;
}

/// Give a pool-owned slab `rows` of fake cached content so publish/trim
/// have real matrices to work on (pool unit tests run without a model).
void fake_fill(nn::KvCache* cache, std::int64_t rows) {
  cache->blocks.resize(1);
  cache->blocks[0].k = Matrix(rows, 2);
  cache->blocks[0].v = Matrix(rows, 2);
  cache->length = rows;
}

/// Warmed row capacity of the first block (what best-fit matches on).
std::int64_t warmed(const nn::KvCache* cache) {
  return cache->blocks.empty() ? 0 : cache->blocks[0].k.row_capacity();
}

TEST(KvPrefixPool, BestFitPrefersSmallestCoveringWarmedSlab) {
  KvCachePool pool(/*budget_tokens=*/64);
  nn::KvCache* a = pool.acquire(4);
  nn::KvCache* b = pool.acquire(8);
  nn::KvCache* c = pool.acquire(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  // Warm each slab to its lease size (the transformer would).
  fake_fill(a, 4);
  fake_fill(b, 8);
  fake_fill(c, 16);
  pool.release(a);
  pool.release(b);
  pool.release(c);
  // 6 rows fit in the 8-slab: best-fit must skip the 16-slab even
  // though it covers too (first-fit used to grab whatever came first).
  nn::KvCache* got = pool.acquire(6);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got, b);
  EXPECT_GE(warmed(got), 8);
  // Nothing warmed covers 20: take the most-warmed slab (least new
  // allocation when it grows).
  nn::KvCache* big = pool.acquire(20);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big, c);
  EXPECT_GE(warmed(big), 16);
  pool.release(got);
  pool.release(big);
  EXPECT_EQ(pool.used_tokens(), 0);
}

TEST(KvPrefixPool, PublishLeaseReleaseConservation) {
  KvCachePool pool(/*budget_tokens=*/32);
  nn::KvCache* slab = pool.acquire(8);
  ASSERT_NE(slab, nullptr);
  fake_fill(slab, 6);  // prompt 4 + 2 decode rows
  const std::vector<int> prompt = {1, 2, 3, 4};
  EXPECT_TRUE(pool.publish_prefix(42, prompt, slab));
  // The lease ended (publish counts as the release); only the trimmed
  // prompt rows stay resident.
  EXPECT_EQ(pool.total_acquires(), pool.total_releases());
  EXPECT_EQ(pool.used_tokens(), 4);
  EXPECT_EQ(pool.prefix_tokens(), 4);
  EXPECT_EQ(pool.prefix_published(), 1);

  // Identical prompt: share everything but the last token (the lessee
  // must compute at least one row to get its logits).
  const std::vector<int> same = {1, 2, 3, 4};
  auto l1 = pool.lease_prefix(42, same);
  ASSERT_NE(l1.base, nullptr);
  EXPECT_EQ(l1.tokens, 3);
  EXPECT_EQ(l1.base->length, 4);
  // Divergent continuation: share up to the divergence point.
  const std::vector<int> diverged = {1, 2, 9, 9, 9};
  auto l2 = pool.lease_prefix(42, diverged);
  ASSERT_NE(l2.base, nullptr);
  EXPECT_EQ(l2.tokens, 2);
  EXPECT_EQ(pool.prefix_refs(), 2);
  EXPECT_EQ(pool.prefix_leases() - pool.prefix_lease_releases(),
            pool.prefix_refs());
  // Wrong stream / first-token mismatch / 1-token prompt: all misses.
  const std::vector<int> other_head = {9, 2, 3};
  const std::vector<int> lone = {1};
  EXPECT_EQ(pool.lease_prefix(43, same).base, nullptr);
  EXPECT_EQ(pool.lease_prefix(42, other_head).base, nullptr);
  EXPECT_EQ(pool.lease_prefix(42, lone).base, nullptr);
  pool.release_prefix(l1.base);
  pool.release_prefix(l2.base);
  EXPECT_EQ(pool.prefix_refs(), 0);
  EXPECT_THROW(pool.release_prefix(l1.base), std::invalid_argument);
}

TEST(KvPrefixPool, EvictionUnderBudgetPressureIsLruAndRefAware) {
  KvCachePool pool(/*budget_tokens=*/16);
  // Publish two entries on different streams: 6 + 6 resident tokens.
  for (std::uint64_t stream = 1; stream <= 2; ++stream) {
    nn::KvCache* slab = pool.acquire(8);
    ASSERT_NE(slab, nullptr);
    fake_fill(slab, 7);
    std::vector<int> prompt(6, static_cast<int>(stream));
    EXPECT_TRUE(pool.publish_prefix(stream, prompt, slab));
  }
  EXPECT_EQ(pool.prefix_tokens(), 12);
  // Touch stream 1 so stream 2 becomes the LRU entry.
  auto touch = pool.lease_prefix(1, std::vector<int>(6, 1));
  ASSERT_NE(touch.base, nullptr);
  pool.release_prefix(touch.base);
  // A 10-token lease does not fit (12 + 10 > 16): evict LRU entries
  // until it does. One eviction (stream 2) suffices.
  nn::KvCache* slab = pool.acquire(10);
  ASSERT_NE(slab, nullptr);
  EXPECT_EQ(pool.prefix_evicted(), 1);
  EXPECT_EQ(pool.prefix_tokens(), 6);
  auto survivor = pool.lease_prefix(1, std::vector<int>(6, 1));
  EXPECT_NE(survivor.base, nullptr);
  EXPECT_EQ(pool.lease_prefix(2, std::vector<int>(6, 2)).base, nullptr);
  pool.release_prefix(survivor.base);

  // A referenced entry must NOT be evicted: demand that cannot be met
  // without it fails instead.
  auto held = pool.lease_prefix(1, std::vector<int>(6, 1));
  ASSERT_NE(held.base, nullptr);
  EXPECT_EQ(pool.acquire(12), nullptr);  // 10 leased + 6 held > 16
  pool.release_prefix(held.base);
  EXPECT_NE(pool.acquire(6), nullptr);  // now the entry can go
  EXPECT_EQ(pool.prefix_tokens(), 0);
}

TEST(KvPrefixPool, InvalidateFreesNowOrOnLastRelease) {
  KvCachePool pool(/*budget_tokens=*/32);
  const std::vector<int> prompt = {1, 2, 3, 4, 5};
  const std::vector<int> longer = {1, 2, 3, 4, 5, 6};
  nn::KvCache* slab = pool.acquire(8);
  fake_fill(slab, 5);
  EXPECT_TRUE(pool.publish_prefix(7, prompt, slab));
  auto lease = pool.lease_prefix(7, longer);
  ASSERT_NE(lease.base, nullptr);
  EXPECT_EQ(pool.invalidate_prefixes(), 1);
  // Dead but referenced: still resident, but no new leases.
  EXPECT_EQ(pool.prefix_tokens(), 5);
  EXPECT_EQ(pool.lease_prefix(7, longer).base, nullptr);
  pool.release_prefix(lease.base);  // last reference frees it
  EXPECT_EQ(pool.prefix_tokens(), 0);
  EXPECT_EQ(pool.used_tokens(), 0);
  // Unreferenced entries are freed immediately.
  slab = pool.acquire(8);
  fake_fill(slab, 5);
  const std::vector<int> short_prompt = {1, 2, 3};
  EXPECT_TRUE(pool.publish_prefix(8, short_prompt, slab));
  EXPECT_EQ(pool.invalidate_prefixes(), 1);
  EXPECT_EQ(pool.used_tokens(), 0);
}

/// Run one request to completion and return its terminal record.
RequestRecord run_one(Scheduler& sched, const std::vector<int>& prompt,
                      std::uint64_t stream, int max_new = 4) {
  RequestParams p;
  p.prompt = prompt;
  p.max_new_tokens = max_new;
  p.stream_seed = stream;
  const std::int64_t id = sched.submit(std::move(p));
  sched.run_until_idle();
  return sched.request(id);
}

SchedulerConfig logits_cfg() {
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.record_logits = true;
  return cfg;
}

TEST(ServePrefix, WarmHitBitIdenticalToColdRun) {
  nn::TransformerLM model = make_analog_model();
  const std::uint64_t stream = 777;
  const std::vector<int> first = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<int> follow = first;
  follow.push_back(8);  // multi-turn continuation of the same prompt

  // Cold reference: a fresh scheduler serves the follow-up with no
  // published prefixes anywhere.
  Scheduler cold(model, logits_cfg());
  const RequestRecord ref = run_one(cold, follow, stream);
  ASSERT_EQ(ref.state, RequestState::kFinished);

  // Warm path: the first request retires and publishes its prompt rows;
  // the follow-up on the SAME stream leases them.
  Scheduler warm(model, logits_cfg());
  Auditor auditor(warm);
  const RequestRecord a = run_one(warm, first, stream);
  ASSERT_EQ(a.state, RequestState::kFinished);
  EXPECT_EQ(warm.metrics().kv_prefix_published, 1);
  const RequestRecord b = run_one(warm, follow, stream);
  ASSERT_EQ(b.state, RequestState::kFinished);
  const Metrics m = warm.metrics();
  EXPECT_EQ(m.kv_prefix_hits, 1);
  EXPECT_EQ(m.kv_prefix_hit_tokens,
            static_cast<std::int64_t>(first.size()));  // whole first prompt

  // Tokens AND logits, bit for bit.
  EXPECT_EQ(b.tokens, ref.tokens);
  ASSERT_EQ(b.logits.size(), ref.logits.size());
  for (std::size_t t = 0; t < b.logits.size(); ++t) {
    EXPECT_EQ(b.logits[t], ref.logits[t]) << "logits row " << t;
  }
  EXPECT_EQ(auditor.check_idle(), 0u) << auditor.violations().front();
}

TEST(ServePrefix, DivergenceIsCopyOnWrite) {
  nn::TransformerLM model = make_analog_model();
  const std::uint64_t stream = 555;
  const std::vector<int> base_prompt = {7, 2, 8, 1, 8, 2, 8};
  std::vector<int> diverged = base_prompt;
  diverged[4] = 3;  // shares tokens [0,4), then splits
  diverged.push_back(6);

  // Each reference runs on its own scheduler, so nothing is warm.
  Scheduler cold_div(model, logits_cfg());
  const RequestRecord ref_div = run_one(cold_div, diverged, stream);
  Scheduler cold_base(model, logits_cfg());
  const RequestRecord ref_base = run_one(cold_base, base_prompt, stream);

  Scheduler warm(model, logits_cfg());
  Auditor auditor(warm);
  const RequestRecord a = run_one(warm, base_prompt, stream);
  ASSERT_EQ(a.state, RequestState::kFinished);
  EXPECT_EQ(a.tokens, ref_base.tokens);  // cold == cold sanity
  // Diverging request: leases only the common prefix, recomputes the
  // rest, and must match its own cold run.
  const RequestRecord b = run_one(warm, diverged, stream);
  EXPECT_EQ(warm.metrics().kv_prefix_hits, 1);
  EXPECT_EQ(warm.metrics().kv_prefix_hit_tokens, 4);
  EXPECT_EQ(b.tokens, ref_div.tokens);
  // Copy-on-write: b's divergence must not have corrupted the published
  // rows — a third request repeating the ORIGINAL prompt still matches
  // its cold run while leasing the same entry.
  const RequestRecord c = run_one(warm, base_prompt, stream);
  EXPECT_EQ(warm.metrics().kv_prefix_hits, 2);
  EXPECT_EQ(c.tokens, ref_base.tokens);
  for (std::size_t t = 0; t < c.logits.size(); ++t) {
    EXPECT_EQ(c.logits[t], ref_base.logits[t]) << "logits row " << t;
  }
  EXPECT_EQ(auditor.check_idle(), 0u) << auditor.violations().front();
}

TEST(ServePrefix, EvictionUnderBudgetPressureKeepsServing) {
  nn::TransformerLM model = make_analog_model();
  SchedulerConfig cfg = logits_cfg();
  cfg.kv_budget_tokens = 16;  // one request's footprint + little else
  Scheduler sched(model, cfg);
  Auditor auditor(sched);
  // Distinct streams: every retirement publishes, every admission then
  // needs the budget back — the store must yield (LRU) every time.
  for (int i = 0; i < 4; ++i) {
    const RequestRecord r = run_one(
        sched, {1 + i, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
        /*stream=*/9000 + static_cast<std::uint64_t>(i));
    ASSERT_EQ(r.state, RequestState::kFinished) << i;
  }
  const Metrics m = sched.metrics();
  EXPECT_EQ(m.finished, 4);
  EXPECT_GT(m.kv_prefix_published, 0);
  EXPECT_GT(m.kv_prefix_evicted, 0);  // pressure actually evicted
  EXPECT_LE(m.kv_used_tokens, 16);
  EXPECT_EQ(auditor.check_idle(), 0u) << auditor.violations().front();
}

TEST(ServePrefix, CancelMidPrefixReleasesLeaseExactlyOnce) {
  nn::TransformerLM model = make_analog_model();
  const std::uint64_t stream = 321;
  const std::vector<int> prompt = {5, 5, 5, 5, 5, 5};
  for (int cancel_step = 0; cancel_step < 6; ++cancel_step) {
    Scheduler sched(model, logits_cfg());
    Auditor auditor(sched);
    const RequestRecord a = run_one(sched, prompt, stream, /*max_new=*/6);
    ASSERT_EQ(a.state, RequestState::kFinished);
    RequestParams p;
    p.prompt = prompt;
    p.prompt.push_back(9);
    p.max_new_tokens = 6;
    p.stream_seed = stream;
    const std::int64_t id = sched.submit(std::move(p));
    // Audit the conservation invariants after EVERY step, not just at
    // idle: a lease released twice (or not at all) on the cancel path
    // shows up as a transient refs mismatch that an idle-only audit
    // would miss once later steps rebalance the counters.
    for (int s = 0; s < cancel_step; ++s) {
      sched.step();
      ASSERT_EQ(auditor.check(), 0u)
          << "pre-cancel step " << s << ": " << auditor.violations().back();
    }
    if (cancel_step > 0) {  // admission (and the lease) happens in step()
      EXPECT_EQ(sched.metrics().kv_prefix_hits, 1);
    }
    sched.cancel(id);
    while (sched.step()) {
      ASSERT_EQ(auditor.check(), 0u)
          << "post-cancel: " << auditor.violations().back();
    }
    const RequestState st = sched.request(id).state;
    EXPECT_TRUE(st == RequestState::kCancelled ||
                st == RequestState::kFinished);
    // Whatever step the cancel landed on, the lease came back exactly
    // once (the idle audit checks refs == 0 and slab conservation).
    EXPECT_EQ(auditor.check_idle(), 0u)
        << "cancel at " << cancel_step << ": " << auditor.violations().front();
  }
}

TEST(ServePrefix, CancelHammerUnderBudgetPressureHoldsEveryStep) {
  // Same per-step audit, but with a budget so tight that every admission
  // fights the prefix store for tokens: cancels now race against LRU
  // eviction and lease-or-evict decisions, the paths where a lease
  // refcount is easiest to drop or double-release.
  nn::TransformerLM model = make_analog_model();
  SchedulerConfig cfg = logits_cfg();
  cfg.kv_budget_tokens = 20;
  const std::vector<int> prompt = {5, 5, 5, 5, 5, 5};
  for (int cancel_step = 0; cancel_step < 5; ++cancel_step) {
    Scheduler sched(model, cfg);
    Auditor auditor(sched);
    const RequestRecord a = run_one(sched, prompt, /*stream=*/64, 4);
    ASSERT_EQ(a.state, RequestState::kFinished);
    // Two follow-ups on the warm stream plus one cold stream: more
    // demand than the budget can hold at once.
    std::vector<std::int64_t> ids;
    for (int r = 0; r < 3; ++r) {
      RequestParams p;
      p.prompt = prompt;
      p.prompt.push_back(9 + r);
      p.max_new_tokens = 4;
      p.stream_seed = (r == 2) ? 65 : 64;
      ids.push_back(sched.submit(std::move(p)));
    }
    for (int s = 0; s < cancel_step; ++s) {
      sched.step();
      ASSERT_EQ(auditor.check(), 0u)
          << "pre-cancel step " << s << ": " << auditor.violations().back();
    }
    sched.cancel(ids[static_cast<std::size_t>(cancel_step % 3)]);
    while (sched.step()) {
      ASSERT_EQ(auditor.check(), 0u)
          << "post-cancel: " << auditor.violations().back();
    }
    EXPECT_EQ(auditor.check_idle(), 0u)
        << "cancel at " << cancel_step << ": " << auditor.violations().front();
  }
}

TEST(ServePrefix, DegradedRunsAreNeverPublished) {
  // A tainted (digital-bypass) request must not publish: its rows came
  // off the fp32 path and would poison a future warm run's contract.
  // Simulated here via the pool directly: the scheduler-side guard is
  // `degraded_tokens == 0`, exercised by the maintenance tests; this
  // pins the pool-side fallback when the slab is too short to publish.
  KvCachePool pool(/*budget_tokens=*/32);
  nn::KvCache* slab = pool.acquire(8);
  fake_fill(slab, 2);  // fewer rows than the prompt: cannot publish
  const std::vector<int> prompt = {1, 2, 3, 4};
  EXPECT_FALSE(pool.publish_prefix(1, prompt, slab));
  EXPECT_EQ(pool.prefix_published(), 0);
  EXPECT_EQ(pool.used_tokens(), 0);  // recycled exactly like release()
  EXPECT_EQ(pool.total_acquires(), pool.total_releases());
}

}  // namespace
}  // namespace nora::serve
