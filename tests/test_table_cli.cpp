// Tests for the console-table writer and CLI parser used by the bench
// harness.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace nora::util {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 2.5   |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.8799), "87.99");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, RejectsBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, WriteCsvCreatesParentDirectories) {
  Table t({"x"});
  t.add_row({"1"});
  const auto dir = std::filesystem::temp_directory_path() / "nora_table_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "sub" / "out.csv").string();
  t.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::filesystem::remove_all(dir);
}

TEST(Cli, ParsesKeysFlagsAndTypes) {
  const char* argv[] = {"prog", "--alpha=0.5", "--steps=200", "--verbose",
                        "--name=opt", "--off=false"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("alpha"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(cli.get_int("steps", 0), 200);
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_FALSE(cli.get_flag("off", true));
  EXPECT_EQ(cli.get("name", ""), "opt");
  EXPECT_EQ(cli.get_int("absent", 7), 7);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Cli, RejectsDuplicateFlags) {
  const char* argv[] = {"prog", "--steps=100", "--steps=200"};
  try {
    Cli cli(3, const_cast<char**>(argv));
    FAIL() << "duplicate flag must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("steps"), std::string::npos);
  }
  // A value form and a bare-flag form of the same key also collide.
  const char* argv2[] = {"prog", "--verbose", "--verbose=true"};
  EXPECT_THROW(Cli(3, const_cast<char**>(argv2)), std::invalid_argument);
}

TEST(Cli, CheckUnknownRejectsUnconsultedFlags) {
  const char* argv[] = {"prog", "--steps=100", "--stpes=200"};
  Cli cli(3, const_cast<char**>(argv));
  cli.get_int("steps", 0);
  try {
    cli.check_unknown();
    FAIL() << "unconsulted flag must throw";
  } catch (const std::invalid_argument& e) {
    // The error names the typo, not the flag that was understood.
    EXPECT_NE(std::string(e.what()).find("stpes"), std::string::npos);
  }
}

TEST(Cli, CheckUnknownPassesWhenEverythingIsConsulted) {
  const char* argv[] = {"prog", "--steps=100", "--verbose"};
  Cli cli(3, const_cast<char**>(argv));
  cli.get_int("steps", 0);
  cli.get_flag("verbose");
  EXPECT_NO_THROW(cli.check_unknown());
  // has() counts as consultation too: probing is how binaries learn
  // about optional flags.
  const char* argv2[] = {"prog", "--maybe=x"};
  Cli cli2(2, const_cast<char**>(argv2));
  EXPECT_TRUE(cli2.has("maybe"));
  EXPECT_NO_THROW(cli2.check_unknown());
}

}  // namespace
}  // namespace nora::util
