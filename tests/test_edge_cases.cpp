// Edge-case and robustness tests across the stack: degenerate shapes,
// zero and extreme inputs, and guard behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/analog_matmul.hpp"
#include "core/nora.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"

namespace nora {
namespace {

TEST(EdgeCases, ZeroInputThroughNoisyTileStaysSmall) {
  util::Rng rng(1);
  Matrix w(32, 16);
  w.fill_gaussian(rng, 0.5f);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::paper_table2(), 2);
  Matrix x(4, 32);  // all zeros
  const Matrix y = unit.forward(x);
  // alpha guards to 1; only additive noise remains, bounded by
  // alpha * gamma * (out_noise + ADC step), far below signal scale.
  for (std::int64_t i = 0; i < y.size(); ++i) {
    ASSERT_TRUE(std::isfinite(y.data()[i]));
    EXPECT_LT(std::fabs(y.data()[i]), 1.0f);
  }
}

TEST(EdgeCases, SingleRowAndSingleColumnWeights) {
  util::Rng rng(3);
  Matrix w_row(1, 8);
  w_row.fill_gaussian(rng, 0.5f);
  Matrix w_col(8, 1);
  w_col.fill_gaussian(rng, 0.5f);
  Matrix x1(2, 1);
  x1.fill(0.7f);
  Matrix x8(2, 8);
  x8.fill_gaussian(rng, 1.0f);
  const Matrix y1 = cim::AnalogMatmul(w_row, {}, cim::TileConfig::ideal(), 4)
                        .forward(x1);
  EXPECT_LT(ops::mse(y1, ops::matmul(x1, w_row)), 1e-8);
  const Matrix y2 = cim::AnalogMatmul(w_col, {}, cim::TileConfig::ideal(), 5)
                        .forward(x8);
  EXPECT_LT(ops::mse(y2, ops::matmul(x8, w_col)), 1e-8);
}

TEST(EdgeCases, HugeInputsStayFiniteAtTable2) {
  util::Rng rng(6);
  Matrix w(16, 16);
  w.fill_gaussian(rng, 0.5f);
  cim::AnalogMatmul unit(w, {}, cim::TileConfig::paper_table2(), 7);
  Matrix x(2, 16);
  x.fill(1e6f);
  const Matrix y = unit.forward(x);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    ASSERT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(EdgeCases, SmoothingVectorOnConstantChannels) {
  core::LayerCalibration cal;
  cal.layer = "l";
  cal.act_abs_max = {2.0f, 2.0f};
  cal.w_abs_max = {0.5f, 0.5f};
  const auto s = core::smoothing_vector(cal, 0.5f, 1e-3f);
  EXPECT_FLOAT_EQ(s[0], s[1]);  // uniform channels -> uniform rescale
  // Uniform s changes nothing about relative ranges -> NORA is a no-op
  // transform on already-balanced layers, as expected.
}

TEST(EdgeCases, OneTokenTransformerForward) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 10;
  cfg.d_model = 8;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 16;
  cfg.max_seq = 4;
  nn::TransformerLM model(cfg);
  const Matrix logits = model.forward(std::vector<int>{3});
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 10);
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    ASSERT_TRUE(std::isfinite(logits.data()[i]));
  }
}

TEST(EdgeCases, EmptyMatrixOperations) {
  Matrix empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(ops::abs_max(empty), 0.0f);
  EXPECT_EQ(ops::frobenius_norm(empty), 0.0f);
  Matrix zero_rows(0, 5);
  EXPECT_EQ(zero_rows.size(), 0);
  EXPECT_EQ(ops::col_abs_max(zero_rows).size(), 5u);
}

TEST(EdgeCases, TileLargerThanMatrix) {
  // A 512x512 tile holding an 8x4 matrix must behave identically to a
  // right-sized tile.
  util::Rng rng(8);
  Matrix w(8, 4);
  w.fill_gaussian(rng, 0.5f);
  Matrix x(3, 8);
  x.fill_gaussian(rng, 1.0f);
  cim::TileConfig big = cim::TileConfig::ideal();  // 512x512 tiles
  cim::TileConfig snug = cim::TileConfig::ideal();
  snug.tile_rows = 8;
  snug.tile_cols = 4;
  const Matrix y_big = cim::AnalogMatmul(w, {}, big, 9).forward(x);
  const Matrix y_snug = cim::AnalogMatmul(w, {}, snug, 9).forward(x);
  EXPECT_LT(ops::mse(y_big, y_snug), 1e-10);
}

}  // namespace
}  // namespace nora
