// Behavioral tests for the learned relative-position bias in attention:
// a single bias parameter must be able to express offset-based heads
// (e.g. the "previous token" head), independent of content.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.hpp"

namespace nora::nn {
namespace {

TEST(RelativeBias, LargePrevTokenBiasCopiesPreviousValue) {
  util::Rng rng(1);
  CausalSelfAttention attn("a", 8, 1, 16, rng, 0.0f);  // zero-init weights
  // With zero QKV weights, V is only the bias path; make V = identity of
  // the input by setting the value block of the QKV weight to I.
  Matrix& w = attn.qkv().weight().value;  // [8 x 24]
  for (std::int64_t c = 0; c < 8; ++c) w.at(c, 16 + c) = 1.0f;
  Matrix& wo = attn.out_proj().weight().value;  // [8 x 8]
  for (std::int64_t c = 0; c < 8; ++c) wo.at(c, c) = 1.0f;
  // Huge bias at offset 1: every position attends to its predecessor.
  ParamRefs params;
  attn.collect_params(params);
  Param* bias = params.back();
  ASSERT_NE(bias->name.find("rel_bias"), std::string::npos);
  bias->value.at(0, 1) = 50.0f;

  Matrix x(4, 8);
  util::Rng xr(2);
  x.fill_gaussian(xr, 1.0f);
  const Matrix y = attn.forward(x);
  // Row t (t >= 1) should be ~ x[t-1]; row 0 attends to itself.
  for (std::int64_t t = 1; t < 4; ++t) {
    for (std::int64_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(y.at(t, c), x.at(t - 1, c), 1e-3) << "t=" << t;
    }
  }
  for (std::int64_t c = 0; c < 8; ++c) EXPECT_NEAR(y.at(0, c), x.at(0, c), 1e-3);
}

TEST(RelativeBias, ZeroBiasGivesUniformAttentionForZeroScores) {
  util::Rng rng(3);
  CausalSelfAttention attn("a", 8, 1, 16, rng, 0.0f);
  Matrix& w = attn.qkv().weight().value;
  for (std::int64_t c = 0; c < 8; ++c) w.at(c, 16 + c) = 1.0f;
  Matrix& wo = attn.out_proj().weight().value;
  for (std::int64_t c = 0; c < 8; ++c) wo.at(c, c) = 1.0f;
  Matrix x(3, 8);
  util::Rng xr(4);
  x.fill_gaussian(xr, 1.0f);
  const Matrix y = attn.forward(x);
  // Zero scores + zero bias -> uniform attention over the causal prefix.
  for (std::int64_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(y.at(1, c), 0.5f * (x.at(0, c) + x.at(1, c)), 1e-4);
    EXPECT_NEAR(y.at(2, c),
                (x.at(0, c) + x.at(1, c) + x.at(2, c)) / 3.0f, 1e-4);
  }
}

TEST(RelativeBias, SequencePastMaxSeqThrowsInsteadOfReadingPastTable) {
  // Regression: offsets i-j beyond max_seq used to index past the end of
  // the rel_bias row (silent out-of-bounds read). Both forward paths now
  // reject such sequences, naming the layer and the lengths involved.
  util::Rng rng(6);
  CausalSelfAttention attn("blk3.attn", 8, 2, 4, rng, 0.1f);
  Matrix ok(4, 8);
  util::Rng xr(7);
  ok.fill_gaussian(xr, 1.0f);
  EXPECT_NO_THROW(attn.forward(ok));
  Matrix too_long(5, 8);
  too_long.fill_gaussian(xr, 1.0f);
  try {
    attn.forward(too_long);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("blk3.attn"), std::string::npos) << what;
    EXPECT_NE(what.find("5"), std::string::npos) << what;
    EXPECT_NE(what.find("4"), std::string::npos) << what;
  }
}

TEST(RelativeBias, CachedPathAlsoGuardsMaxSeq) {
  util::Rng rng(8);
  CausalSelfAttention attn("blk0.attn", 8, 2, 4, rng, 0.1f);
  KvCache::BlockCache cache;
  util::Rng xr(9);
  Matrix first(3, 8);
  first.fill_gaussian(xr, 1.0f);
  EXPECT_NO_THROW(attn.forward_cached(first, cache, 0));
  Matrix second(1, 8);
  second.fill_gaussian(xr, 1.0f);
  EXPECT_NO_THROW(attn.forward_cached(second, cache, 3));  // fills to 4
  Matrix third(1, 8);
  third.fill_gaussian(xr, 1.0f);
  try {
    attn.forward_cached(third, cache, 4);  // would read bias[4]
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("blk0.attn"), std::string::npos) << what;
    EXPECT_NE(what.find("max_seq"), std::string::npos) << what;
  }
}

TEST(RelativeBias, IsTrainableParam) {
  util::Rng rng(5);
  CausalSelfAttention attn("a", 8, 2, 16, rng, 0.1f);
  ParamRefs params;
  attn.collect_params(params);
  Param* bias = params.back();
  EXPECT_TRUE(bias->trainable);
  EXPECT_EQ(bias->value.rows(), 2);   // per head
  EXPECT_EQ(bias->value.cols(), 16);  // per offset up to max_seq
}

}  // namespace
}  // namespace nora::nn
