// Bit-equality of the AVX2+FMA kernels against their scalar op maps.
//
// Each kernel in util/simd_kernels.hpp documents the exact scalar
// operation sequence it vectorizes (including the FMA contractions the
// compiled scalar build performs). These tests re-state those op maps
// with explicit std::fma — a correctly-rounded single operation, so the
// reference is identical under every optimization level — and demand
// the kernels match bit for bit on randomized inputs spanning several
// magnitudes, plus the ragged tail lengths the gather fallbacks handle.
// The golden-stream suite (run with NORA_FORCE_SCALAR on and off)
// covers the production call sites end to end; this file pins each
// kernel in isolation so a divergence names the broken kernel directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "noise/quantizer.hpp"
#include "util/simd.hpp"
#include "util/simd_kernels.hpp"

namespace nora {
namespace {

bool have_avx2() {
#if defined(__AVX2__) && defined(__FMA__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#define REQUIRE_AVX2()                                         \
  do {                                                         \
    if (!have_avx2()) GTEST_SKIP() << "AVX2+FMA unavailable";  \
  } while (0)

/// Bitwise float equality (EXPECT_EQ on floats treats -0 == +0 and
/// fails on NaN == NaN; kernels must reproduce the exact bits).
::testing::AssertionResult same_bits(float a, float b) {
  std::uint32_t ua, ub;
  std::memcpy(&ua, &a, 4);
  std::memcpy(&ub, &b, 4);
  if (ua == ub) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << ua << ") != " << b << " (0x" << ub
         << ")";
}

std::vector<float> random_floats(std::mt19937& gen, std::size_t n,
                                 float scale) {
  std::uniform_real_distribution<float> dist(-scale, scale);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(gen);
  return v;
}

TEST(RoundHalfAway, MatchesStdRoundEverywhere) {
  using noise::UniformQuantizer;
  const float edge[] = {0.0f,       -0.0f,       0.5f,     -0.5f,
                        1.5f,       -1.5f,       2.5f,     -2.5f,
                        0.49999997f, -0.49999997f, 8388607.5f, -8388607.5f,
                        16777216.0f, -16777216.0f, 1e30f,   -1e30f,
                        1e-30f,     -1e-30f,
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity(),
                        std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::denorm_min()};
  for (const float y : edge) {
    const float got = UniformQuantizer::round_half_away(y);
    const float want = std::round(y);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got)) << y;
    } else {
      EXPECT_TRUE(same_bits(got, want)) << "y = " << y;
    }
    // Signed zero must survive (std::round preserves the sign bit).
    if (y == 0.0f) {
      EXPECT_EQ(std::signbit(got), std::signbit(y));
    }
  }
  std::mt19937 gen(123);
  for (const float scale : {1.0f, 64.0f, 1e6f, 1e20f}) {
    for (const float y : random_floats(gen, 4096, scale)) {
      EXPECT_TRUE(same_bits(UniformQuantizer::round_half_away(y),
                            std::round(y)))
          << "y = " << y;
    }
  }
}

TEST(SimdKernels, MvmDot8MatchesFmaChain) {
  REQUIRE_AVX2();
  std::mt19937 gen(7);
  // Odd lengths exercise the per-row gather tail after the 4-wide body.
  for (const std::size_t n : {1u, 4u, 7u, 16u, 33u, 257u}) {
    const std::int64_t stride = static_cast<std::int64_t>(n);
    const std::vector<float> w = random_floats(gen, 8 * n, 2.0f);
    const std::vector<float> x = random_floats(gen, n, 2.0f);
    float out[8];
    util::simd::mvm_dot8_avx2(w.data(), stride, x.data(), n, out);
    for (int i = 0; i < 8; ++i) {
      double acc = 0.0;
      const float* wi = w.data() + i * stride;
      for (std::size_t k = 0; k < n; ++k) {
        acc = std::fma(static_cast<double>(wi[k]),
                       static_cast<double>(x[k]), acc);
      }
      EXPECT_TRUE(same_bits(out[i], static_cast<float>(acc)))
          << "n = " << n << ", col " << i;
    }
  }
}

TEST(SimdKernels, IrFused8MatchesScalarRecurrence) {
  REQUIRE_AVX2();
  std::mt19937 gen(11);
  const float kappa = 0.05f * 1.0f * (48.0f / 512.0f);
  for (const std::size_t n : {1u, 5u, 16u, 48u, 131u}) {
    const std::int64_t stride = static_cast<std::int64_t>(n);
    const std::vector<float> w = random_floats(gen, 8 * n, 1.0f);
    const std::vector<float> x = random_floats(gen, n, 1.0f);
    float out[8];
    util::simd::ir_fused8_avx2(w.data(), stride, x.data(), n, kappa, out);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (int i = 0; i < 8; ++i) {
      const float* wi = w.data() + i * stride;
      double ca = 0.0, acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const float c = wi[k] * x[k];
        ca += static_cast<double>(std::fabs(c));
        const double t = static_cast<double>(kappa) * ca;
        const double factor = std::fma(-t, inv_n, 1.0);
        acc = std::fma(static_cast<double>(c), factor, acc);
      }
      EXPECT_TRUE(same_bits(out[i], static_cast<float>(acc)))
          << "n = " << n << ", col " << i;
    }
  }
}

TEST(SimdKernels, DacScaleClipQuantizeMatchesScalarPipeline) {
  REQUIRE_AVX2();
  std::mt19937 gen(17);
  const float bound = 1.0f;
  for (const float steps : {0.0f, 128.0f, 100.0f}) {  // off / 7-bit / frac
    for (const std::size_t n : {1u, 8u, 13u, 64u, 255u}) {
      // Scale 3x the clip point so a healthy fraction of lanes clip.
      const std::vector<float> xs = random_floats(gen, n, 3.0f);
      const float inv_alpha = 0.9f;
      std::vector<float> got(n), want(n);
      const std::int64_t clipped = util::simd::dac_scale_clip_quantize_avx2(
          xs.data(), got.data(), n, inv_alpha, steps, bound);
      const float half = steps / 2.0f;
      std::int64_t want_clipped = 0;
      for (std::size_t k = 0; k < n; ++k) {
        float v = xs[k] * inv_alpha;
        if (std::fabs(v) > 1.0f) {
          ++want_clipped;
          v = v > 0.0f ? 1.0f : -1.0f;
        }
        if (steps > 0.0f) {
          float q = noise::UniformQuantizer::round_half_away(
              v / bound * half);
          q = std::clamp(q, -half, half - 1.0f);
          v = q * bound / half;
        }
        want[k] = v;
      }
      EXPECT_EQ(clipped, want_clipped) << "steps " << steps << ", n " << n;
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_TRUE(same_bits(got[k], want[k]))
            << "steps " << steps << ", n " << n << ", k " << k;
      }
    }
  }
}

TEST(SimdKernels, GaussianEpiloguesMatchFmaForms) {
  REQUIRE_AVX2();
  std::mt19937 gen(23);
  std::normal_distribution<double> nd(0.0, 1.0);
  for (const std::size_t n : {1u, 4u, 6u, 64u, 129u}) {
    std::vector<double> raw(n);
    for (auto& r : raw) r = nd(gen);
    // add_scaled_gaussian: v[k] += (float)fma(stddev, raw[k], 0.0)
    std::vector<float> v = random_floats(gen, n, 1.0f);
    std::vector<float> want = v;
    const double stddev = 0.02;
    util::simd::add_scaled_gaussian_avx2(v.data(), raw.data(), n, stddev);
    for (std::size_t k = 0; k < n; ++k) {
      want[k] += static_cast<float>(std::fma(stddev, raw[k], 0.0));
      EXPECT_TRUE(same_bits(v[k], want[k])) << "n " << n << ", k " << k;
    }
    // scale_convert: dst[k] = (float)fma(stddev, raw[k], mean)
    std::vector<float> dst(n);
    util::simd::scale_convert_avx2(dst.data(), raw.data(), n, 0.5, 1.7);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_TRUE(same_bits(dst[k],
                            static_cast<float>(std::fma(1.7, raw[k], 0.5))))
          << "n " << n << ", k " << k;
    }
  }
}

TEST(SimdDispatch, ActiveIsaIsStableAndNamed) {
  const util::simd::Isa isa = util::simd::active();
  EXPECT_EQ(isa, util::simd::active());  // resolved once, then cached
  const char* name = util::simd::isa_name(isa);
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2");
  if (isa == util::simd::Isa::kAvx2) {
    EXPECT_TRUE(have_avx2());
  }
}

}  // namespace
}  // namespace nora
