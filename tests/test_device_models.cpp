// Tests for the NVM device extensions: ReRAM quantized conductances with
// multi-cell bit-slicing, and write-verify programming.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/analog_matmul.hpp"
#include "noise/programming.hpp"
#include "tensor/ops.hpp"

namespace nora::cim {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

TEST(WriteVerify, ResidualShrinksWithIterations) {
  const noise::ProgrammingNoise prog(1.0f);
  util::Rng rng(1);
  auto rms = [&](int iters) {
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const float e = prog.residual_error(0.5f, iters, rng);
      sq += double(e) * e;
    }
    return std::sqrt(sq / n);
  };
  const double r1 = rms(1);
  const double r2 = rms(2);
  const double r8 = rms(8);
  EXPECT_LT(r2, 0.6 * r1);
  EXPECT_LT(r8, r2);
  // Converges to a floor (pulse granularity), not to zero.
  EXPECT_GT(r8, 0.1 * r1);
  EXPECT_NEAR(r1, prog.sigma(0.5f), 0.01);
}

TEST(WriteVerify, DisabledNoiseStaysZero) {
  const noise::ProgrammingNoise prog(0.0f);
  util::Rng rng(2);
  EXPECT_EQ(prog.residual_error(0.5f, 4, rng), 0.0f);
}

TEST(WriteVerify, ImprovesGemmAccuracy) {
  const Matrix w = random_matrix(64, 32, 3, 0.2f);
  const Matrix x = random_matrix(8, 64, 4, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  TileConfig cfg = TileConfig::ideal_except_prog_noise(4.0f);
  cfg.write_verify_iters = 1;
  const double mse1 = ops::mse(AnalogMatmul(w, {}, cfg, 5).forward(x), ref);
  cfg.write_verify_iters = 8;
  const double mse8 = ops::mse(AnalogMatmul(w, {}, cfg, 5).forward(x), ref);
  EXPECT_LT(mse8, 0.5 * mse1);
}

TEST(Reram, QuantizedWeightsBoundedError) {
  // Noise-free ReRAM: the only error is the conductance grid, bounded by
  // half a level of the effective (bits_per_cell * cells) precision.
  const Matrix w = random_matrix(32, 16, 6, 0.2f);
  const Matrix x = random_matrix(4, 32, 7, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  TileConfig cfg = TileConfig::ideal();
  cfg.device = DeviceKind::kReramQuantized;
  cfg.reram_bits_per_cell = 4;
  for (const int cells : {1, 2, 3}) {
    cfg.reram_cells_per_weight = cells;
    const double mse = ops::mse(AnalogMatmul(w, {}, cfg, 8).forward(x), ref);
    if (cells == 1) {
      EXPECT_GT(mse, 1e-5);  // 4-bit weights visibly wrong
    } else {
      EXPECT_LT(mse, 1e-4);  // >= 8-bit slicing near-exact (paper Sec. VII)
    }
  }
}

TEST(Reram, ErrorDecreasesWithCells) {
  const Matrix w = random_matrix(48, 24, 9, 0.2f);
  const Matrix x = random_matrix(4, 48, 10, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  TileConfig cfg = TileConfig::ideal();
  cfg.device = DeviceKind::kReramQuantized;
  cfg.reram_bits_per_cell = 4;
  double prev = 1e9;
  for (const int cells : {1, 2, 3}) {
    cfg.reram_cells_per_weight = cells;
    const double mse = ops::mse(AnalogMatmul(w, {}, cfg, 11).forward(x), ref);
    EXPECT_LT(mse, prev);
    prev = mse;
  }
}

TEST(Reram, ValidatesPrecisionRange) {
  const Matrix w = random_matrix(8, 8, 12);
  TileConfig cfg = TileConfig::ideal();
  cfg.device = DeviceKind::kReramQuantized;
  cfg.reram_bits_per_cell = 0;
  cfg.reram_cells_per_weight = 0;
  EXPECT_THROW(AnalogMatmul(w, {}, cfg, 13), std::invalid_argument);
  cfg.reram_bits_per_cell = 9;
  cfg.reram_cells_per_weight = 3;  // 27 bits: over the 16-bit cap
  EXPECT_THROW(AnalogMatmul(w, {}, cfg, 13), std::invalid_argument);
}

TEST(Reram, NoraRescaleStillWorksOnQuantizedDevices) {
  // The paper's Sec. VII extension claim: NORA composes with ReRAM.
  const std::int64_t k = 64;
  const Matrix w = random_matrix(k, 32, 14, 0.1f);
  Matrix x = random_matrix(8, k, 15, 1.0f);
  for (std::int64_t r = 0; r < x.rows(); ++r) x.at(r, 2) *= 30.0f;
  const Matrix ref = ops::matmul(x, w);
  TileConfig cfg = TileConfig::ideal();
  cfg.device = DeviceKind::kReramQuantized;
  cfg.reram_bits_per_cell = 4;
  cfg.reram_cells_per_weight = 2;
  cfg.dac_bits = 7;
  cfg.adc_bits = 7;
  const double mse_naive = ops::mse(AnalogMatmul(w, {}, cfg, 16).forward(x), ref);
  const auto ax = ops::col_abs_max(x);
  const auto wx = ops::row_abs_max(w);
  std::vector<float> s(static_cast<std::size_t>(k), 1.0f);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sqrt(ax[i] / std::max(wx[i], 1e-6f));
  }
  const double mse_nora = ops::mse(AnalogMatmul(w, s, cfg, 16).forward(x), ref);
  EXPECT_LT(mse_nora, 0.5 * mse_naive);
}

}  // namespace
}  // namespace nora::cim
