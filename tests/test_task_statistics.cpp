// Statistical properties of the SynthLambada generator — guards against
// degenerate task distributions that would make accuracy numbers
// meaningless (e.g. a biased answer marginal that a majority-class
// predictor could exploit).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "eval/synthlambada.hpp"

namespace nora::eval {
namespace {

TEST(TaskStatistics, AnswerMarginalIsRoughlyUniform) {
  const SynthLambada task;
  const auto& cfg = task.config();
  std::map<int, int> counts;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    counts[task.make_example("train", static_cast<std::uint64_t>(i)).answer]++;
  }
  EXPECT_EQ(static_cast<int>(counts.size()), cfg.n_vals);
  const double expected = static_cast<double>(n) / cfg.n_vals;
  for (const auto& [val, count] : counts) {
    EXPECT_GT(count, 0.5 * expected) << "value " << val;
    EXPECT_LT(count, 1.7 * expected) << "value " << val;
  }
}

TEST(TaskStatistics, QueriedKeyVariesAcrossExamples) {
  const SynthLambada task;
  std::set<int> keys;
  for (int i = 0; i < 200; ++i) {
    keys.insert(task.make_example("test", static_cast<std::uint64_t>(i)).tokens.back());
  }
  // Fixed-slot layout uses the first n_pairs slot keys; all should occur.
  EXPECT_EQ(static_cast<int>(keys.size()), task.config().n_pairs);
}

TEST(TaskStatistics, ValuesIndependentAcrossExamples) {
  // The answer must not be predictable from the key alone: the same
  // queried key maps to many different values across examples.
  const SynthLambada task;
  std::map<int, std::set<int>> values_per_key;
  for (int i = 0; i < 500; ++i) {
    const auto ex = task.make_example("train", static_cast<std::uint64_t>(i));
    values_per_key[ex.tokens.back()].insert(ex.answer);
  }
  for (const auto& [key, values] : values_per_key) {
    EXPECT_GT(values.size(), 5u) << "key " << key;
  }
}

TEST(TaskStatistics, SplitsProduceDisjointExampleStreams) {
  const SynthLambada task;
  int identical = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = task.make_example("train", static_cast<std::uint64_t>(i));
    const auto b = task.make_example("test", static_cast<std::uint64_t>(i));
    identical += a.tokens == b.tokens;
  }
  EXPECT_EQ(identical, 0);
}

TEST(TaskStatistics, SeedChangesTheWholeDataset) {
  SynthLambadaConfig a_cfg;
  SynthLambadaConfig b_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  const SynthLambada a(a_cfg), b(b_cfg);
  int identical = 0;
  for (int i = 0; i < 50; ++i) {
    identical += a.make_example("train", static_cast<std::uint64_t>(i)).tokens ==
                 b.make_example("train", static_cast<std::uint64_t>(i)).tokens;
  }
  EXPECT_EQ(identical, 0);
}

}  // namespace
}  // namespace nora::eval
