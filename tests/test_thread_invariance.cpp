// The tentpole property: analog inference is bit-identical for ANY
// thread count, because every noise draw comes from a counter-keyed
// stream instead of a shared sequential RNG. Also checks that the
// one-time stream relayout preserved the noise *statistics* of each
// knob (the simulator models the same hardware, just reproducibly).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "cim/analog_matmul.hpp"
#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace nora {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<std::size_t>(a.size())) == 0;
}

/// Everything-on operating point: converters, all noise knobs, S-shape,
/// IR drop, bound management, hard faults + spares + verify retries,
/// ABFT checksum columns — small tiles so the 70x50 matrix spans a
/// 3x3 grid of row/column blocks.
cim::TileConfig everything_on(int n_threads) {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cfg.in_noise = 0.02f;
  cfg.sshape_k = 0.2f;
  cfg.bound_management = true;
  cfg.adc_bound = 4.0f;  // low bound so bound management actually fires
  cfg.faults.stuck_zero_rate = 0.01f;
  cfg.faults.stuck_gmax_rate = 0.002f;
  cfg.spare_cols = 2;
  cfg.max_program_retries = 2;
  cfg.abft_checksum = true;
  cfg.n_threads = n_threads;
  return cfg;
}

TEST(ThreadInvariance, MatmulBitIdenticalAcrossThreadCounts) {
  const Matrix w = random_matrix(70, 50, 909);
  const Matrix x = random_matrix(6, 70, 808, 1.0f);
  // Reference: fully sequential run (pool width 1, serial code path).
  util::ThreadPool::global().resize(1);
  cim::AnalogMatmul ref_unit(w, {}, everything_on(1), 777);
  const Matrix ref1 = ref_unit.forward(x);
  const Matrix ref2 = ref_unit.forward(x);  // second epoch too
  const auto ref_stats = ref_unit.stats();
  const std::int64_t ref_reads = ref_unit.adc_reads();
  const auto ref_abft = ref_unit.abft_stats();
  for (const int threads : {2, 7, 16}) {
    util::ThreadPool::global().resize(threads);
    cim::AnalogMatmul unit(w, {}, everything_on(threads), 777);
    const Matrix y1 = unit.forward(x);
    const Matrix y2 = unit.forward(x);
    EXPECT_TRUE(bitwise_equal(y1, ref1)) << "threads=" << threads;
    EXPECT_TRUE(bitwise_equal(y2, ref2)) << "threads=" << threads;
    // Statistics reduce in canonical order: equally thread-invariant.
    EXPECT_EQ(unit.stats().dac_samples, ref_stats.dac_samples);
    EXPECT_EQ(unit.stats().dac_clipped, ref_stats.dac_clipped);
    EXPECT_EQ(unit.stats().bm_retries, ref_stats.bm_retries);
    EXPECT_EQ(unit.stats().alpha_sum, ref_stats.alpha_sum);
    EXPECT_EQ(unit.adc_reads(), ref_reads);
    EXPECT_EQ(unit.abft_stats().checks, ref_abft.checks);
    EXPECT_EQ(unit.abft_stats().residual_abs_sum, ref_abft.residual_abs_sum);
  }
  util::ThreadPool::global().resize(1);
}

TEST(ThreadInvariance, NoraRescaleAndDriftAlsoInvariant) {
  const Matrix w = random_matrix(70, 50, 909);
  const Matrix x = random_matrix(4, 70, 808, 1.0f);
  std::vector<float> s(70);
  util::Rng sr(606);
  for (auto& v : s) v = static_cast<float>(std::exp(sr.gaussian(0.0, 0.5)));
  auto run = [&](int threads) {
    util::ThreadPool::global().resize(threads);
    cim::TileConfig cfg = everything_on(threads);
    cfg.drift_enabled = true;
    cim::AnalogMatmul unit(w, s, cfg, 555);
    unit.set_read_time(3600.0f);
    return unit.forward(x);
  };
  const Matrix ref = run(1);
  EXPECT_TRUE(bitwise_equal(run(2), ref));
  EXPECT_TRUE(bitwise_equal(run(7), ref));
  util::ThreadPool::global().resize(1);
}

TEST(ThreadInvariance, DeployedModelLogitsBitIdentical) {
  const eval::SynthLambadaConfig task_cfg;
  nn::TransformerConfig arch;
  arch.vocab_size = task_cfg.vocab_size();
  arch.max_seq = task_cfg.seq_len;
  arch.d_model = 32;
  arch.n_layers = 2;
  arch.n_heads = 4;
  arch.d_ff = 64;
  arch.seed = 21;
  const std::vector<int> tokens{3, 1, 4, 1, 5, 9, 2, 6};
  const eval::SynthLambada task{task_cfg};
  auto run = [&](int threads) {
    util::ThreadPool::global().resize(threads);
    nn::TransformerLM model(arch);
    core::DeployOptions opts;
    opts.tile = everything_on(threads);
    opts.tile.tile_rows = 16;
    opts.tile.tile_cols = 12;
    opts.seed = 4040;
    core::deploy_analog(model, task, opts);
    return model.forward(tokens);
  };
  const Matrix ref = run(1);
  for (const int threads : {2, 7, 16}) {
    EXPECT_TRUE(bitwise_equal(run(threads), ref)) << "threads=" << threads;
  }
  util::ThreadPool::global().resize(1);
}

TEST(ThreadInvariance, ForwardsDecorrelateButReconstructionReplays) {
  const Matrix w = random_matrix(40, 30, 11);
  const Matrix x = random_matrix(3, 40, 12, 1.0f);
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cim::AnalogMatmul unit(w, {}, cfg, 1234);
  const Matrix y1 = unit.forward(x);
  const Matrix y2 = unit.forward(x);
  // Successive forwards use fresh epochs: the noise must not repeat.
  EXPECT_FALSE(bitwise_equal(y1, y2));
  // Reconstructing the unit replays the exact same epoch sequence.
  cim::AnalogMatmul again(w, {}, cfg, 1234);
  EXPECT_TRUE(bitwise_equal(again.forward(x), y1));
  EXPECT_TRUE(bitwise_equal(again.forward(x), y2));
}

// --- statistical equivalence of the relayout -------------------------
// The stream relayout changed WHICH pseudo-random numbers each noise
// source consumes, never their distribution. For each knob, compare the
// empirical mean/std of the injected error against the analytic value
// over many forward epochs.

struct Moments {
  double mean = 0.0;
  double std = 0.0;
};

/// Runs `reps` single-token forwards of a [k x 1] unit and returns the
/// moments of (y - y_clean).
Moments error_moments(const cim::TileConfig& noisy_cfg, std::uint64_t seed,
                      int reps) {
  const std::int64_t k = 32;
  const Matrix w = random_matrix(k, 1, 5151);
  const Matrix x = random_matrix(1, k, 5252, 1.0f);
  cim::AnalogMatmul clean_unit(w, {}, cim::TileConfig::ideal(), seed);
  const float clean = clean_unit.forward(x).at(0, 0);
  cim::AnalogMatmul unit(w, {}, noisy_cfg, seed);
  double sum = 0.0, sq = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double e = double(unit.forward(x).at(0, 0)) - clean;
    sum += e;
    sq += e * e;
  }
  const double mean = sum / reps;
  return {mean, std::sqrt(std::max(0.0, sq / reps - mean * mean))};
}

TEST(StreamStatistics, OutputNoiseMomentsMatchAnalytic) {
  const float sigma = 0.1f;
  const std::int64_t k = 32;
  const Matrix w = random_matrix(k, 1, 5151);
  const Matrix x = random_matrix(1, k, 5252, 1.0f);
  float gamma = 0.0f, alpha = 0.0f;
  for (std::int64_t i = 0; i < k; ++i) {
    gamma = std::max(gamma, std::fabs(w.at(i, 0)));
    alpha = std::max(alpha, std::fabs(x.at(0, i)));
  }
  // y = alpha * gamma * (w_hat . x_hat + n), n ~ N(0, sigma).
  const double expected = double(alpha) * gamma * sigma;
  const auto m =
      error_moments(cim::TileConfig::ideal_except_out_noise(sigma), 99, 2000);
  EXPECT_NEAR(m.mean, 0.0, 0.1 * expected);
  EXPECT_NEAR(m.std / expected, 1.0, 0.06);
}

TEST(StreamStatistics, InputNoiseMomentsMatchAnalytic) {
  const float sigma = 0.05f;
  const std::int64_t k = 32;
  const Matrix w = random_matrix(k, 1, 5151);
  const Matrix x = random_matrix(1, k, 5252, 1.0f);
  float alpha = 0.0f;
  double w_l2 = 0.0;
  for (std::int64_t i = 0; i < k; ++i) {
    alpha = std::max(alpha, std::fabs(x.at(0, i)));
    w_l2 += double(w.at(i, 0)) * w.at(i, 0);
  }
  // y error = alpha * gamma * sum_k w_hat_k n_k = alpha * (w . n)/|.|:
  // std = alpha * sigma * ||w||_2 (gamma cancels against w_hat).
  const double expected = double(alpha) * sigma * std::sqrt(w_l2);
  const auto m =
      error_moments(cim::TileConfig::ideal_except_in_noise(sigma), 98, 2000);
  EXPECT_NEAR(m.mean, 0.0, 0.1 * expected);
  EXPECT_NEAR(m.std / expected, 1.0, 0.06);
}

TEST(StreamStatistics, ReadNoiseMomentsMatchAnalytic) {
  const float sigma_r = 0.05f;
  const std::int64_t k = 32;
  const Matrix w = random_matrix(k, 1, 5151);
  const Matrix x = random_matrix(1, k, 5252, 1.0f);
  float gamma = 0.0f, alpha = 0.0f;
  for (std::int64_t i = 0; i < k; ++i) {
    gamma = std::max(gamma, std::fabs(w.at(i, 0)));
    alpha = std::max(alpha, std::fabs(x.at(0, i)));
  }
  double xhat_l2 = 0.0;
  for (std::int64_t i = 0; i < k; ++i) {
    const double v = double(x.at(0, i)) / alpha;
    xhat_l2 += v * v;
  }
  // Aggregated read noise: n ~ N(0, sigma_r * ||x_hat||_2) on the
  // pre-ADC accumulation, scaled by alpha * gamma at the output.
  const double expected =
      double(alpha) * gamma * sigma_r * std::sqrt(xhat_l2);
  const auto m =
      error_moments(cim::TileConfig::ideal_except_w_noise(sigma_r), 97, 2000);
  EXPECT_NEAR(m.mean, 0.0, 0.1 * expected);
  EXPECT_NEAR(m.std / expected, 1.0, 0.06);
}

}  // namespace
}  // namespace nora
