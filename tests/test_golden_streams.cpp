// Golden regression for the counter-keyed runtime RNG streams.
//
// Pins the exact forward output of an everything-on operating point
// (converters, input/output/read noise, S-shape, IR drop, bound
// management, hard faults + spare remap + verify retries, ABFT) so any
// future change of the stream derivation — reordering the key
// coordinates, changing derive_stream, consuming draws in a different
// order — fails loudly instead of silently re-randomizing every
// experiment. The same pinned values must appear at EVERY thread count:
// this is the golden-file form of the thread-invariance property.
#include <gtest/gtest.h>

#include "cim/analog_matmul.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nora {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

cim::TileConfig everything_on(int n_threads) {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cfg.in_noise = 0.02f;
  cfg.sshape_k = 0.2f;
  cfg.bound_management = true;
  cfg.adc_bound = 4.0f;
  cfg.faults.stuck_zero_rate = 0.01f;
  cfg.faults.stuck_gmax_rate = 0.002f;
  cfg.spare_cols = 2;
  cfg.max_program_retries = 2;
  cfg.abft_checksum = true;
  cfg.n_threads = n_threads;
  return cfg;
}

// Captured with the stream relayout that introduced derive_stream keying
// (epoch, token, row-block|attempt, tile); w = random_matrix(70,50,101),
// x = random_matrix(5,70,202,1.0), seed 31337.
struct Golden {
  int t, j;
  float v;
};
constexpr Golden kGolden[] = {
    {0, 3, -0.0379376411f}, {0, 25, -2.34188604f}, {0, 49, 4.39771414f},
    {1, 3, 1.05696332f},    {1, 25, 1.14505994f},  {1, 49, 1.59453928f},
    {4, 3, -4.99205256f},   {4, 25, -8.36700153f}, {4, 49, 2.59049129f},
};

class GoldenStreams : public ::testing::TestWithParam<int> {};

TEST_P(GoldenStreams, EverythingOnForwardMatchesPinnedValues) {
  const int threads = GetParam();
  util::ThreadPool::global().resize(threads);
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(5, 70, 202, 1.0f);
  cim::AnalogMatmul unit(w, {}, everything_on(threads), 31337);
  const Matrix y = unit.forward(x);
  for (const auto& g : kGolden) {
    EXPECT_EQ(y.at(g.t, g.j), g.v)
        << "t=" << g.t << " j=" << g.j << " threads=" << threads;
  }
  // Converter traffic and integrity counters are part of the contract.
  EXPECT_EQ(unit.stats().dac_samples, 350);
  EXPECT_EQ(unit.stats().dac_clipped, 0);
  EXPECT_EQ(unit.adc_reads(), 750);
  EXPECT_EQ(unit.abft_stats().checks, 45);
  util::ThreadPool::global().resize(1);
}

// Same contract for the keyed forward (the serve path): rows keyed on
// explicit (stream, token) coordinates must reproduce these exact bits
// at every thread count. Captured before the workspace-reuse rewrite of
// the MVM kernels (batched gaussian_fill, fused IR-drop accumulate,
// per-thread scratch); the rewrite must change zero output bits.
constexpr Golden kKeyedGolden[] = {
    {0, 3, -1.31310511f}, {0, 25, -2.49494028f}, {0, 49, 3.9100728f},
    {2, 3, 2.39242101f},  {2, 25, -3.56807423f}, {2, 49, 4.11092043f},
    {4, 3, -4.57111788f}, {4, 25, -7.67750311f}, {4, 49, 2.21436882f},
};

TEST_P(GoldenStreams, KeyedForwardMatchesPinnedValues) {
  const int threads = GetParam();
  util::ThreadPool::global().resize(threads);
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(5, 70, 202, 1.0f);
  cim::AnalogMatmul unit(w, {}, everything_on(threads), 31337);
  // Two stream groups (t/3) with per-row token coordinates, as the
  // scheduler produces for a prefill segment next to decode rows.
  std::vector<cim::StreamKey> keys(5);
  for (std::uint64_t t = 0; t < 5; ++t) keys[t] = {1000 + t / 3, 10 + t};
  const Matrix y = unit.forward(x, keys);
  for (const auto& g : kKeyedGolden) {
    EXPECT_EQ(y.at(g.t, g.j), g.v)
        << "t=" << g.t << " j=" << g.j << " threads=" << threads;
  }
  EXPECT_EQ(unit.stats().dac_samples, 350);
  EXPECT_EQ(unit.adc_reads(), 750);
  EXPECT_EQ(unit.abft_stats().checks, 45);
  util::ThreadPool::global().resize(1);
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenStreams, ::testing::Values(1, 2, 7, 16));

TEST(GoldenStreams, DeriveStreamIsAFixedFunction) {
  // The key schedule itself is pinned: changing the mixing breaks every
  // golden above, but catch it directly with a readable failure first.
  const std::uint64_t base = util::derive_seed(31337, "mvm-streams");
  EXPECT_EQ(util::derive_stream(base, 0, 0, 0),
            util::derive_stream(base, 0, 0, 0));
  EXPECT_NE(util::derive_stream(base, 0, 0, 0),
            util::derive_stream(base, 1, 0, 0));
  EXPECT_NE(util::derive_stream(base, 0, 1, 0),
            util::derive_stream(base, 0, 0, 1));
  // derive_stream(base, a) == derive_stream(base, a, 0, 0) (defaults).
  EXPECT_EQ(util::derive_stream(base, 7), util::derive_stream(base, 7, 0, 0));
}

}  // namespace
}  // namespace nora
