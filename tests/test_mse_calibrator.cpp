// Tests for the MSE-matched noise-level solver (Fig. 3 x-axis protocol).
#include <gtest/gtest.h>

#include <cmath>

#include "cim/mse_probe.hpp"
#include "cim/tile_config.hpp"
#include "noise/mse_calibrator.hpp"

namespace nora::noise {
namespace {

TEST(MseCalibrator, SolvesAnalyticQuadratic) {
  // mse(p) = p^2: target t -> p = sqrt(t).
  const MseCalibrator cal([](double p) { return p * p; });
  for (const double target : {1e-4, 1e-3, 2.75e-3}) {
    const double p = cal.solve(target);
    EXPECT_NEAR(p, std::sqrt(target), 0.05 * std::sqrt(target));
  }
}

TEST(MseCalibrator, ExpandsUpperBracket) {
  // Needs param far above the initial hi=1.
  MseCalibratorOptions opts;
  opts.param_hi = 1.0;
  const MseCalibrator cal([](double p) { return p / 1000.0; }, opts);
  EXPECT_NEAR(cal.solve(0.5), 500.0, 25.0);
}

TEST(MseCalibrator, RejectsBadInputs) {
  const MseCalibrator cal([](double p) { return p; });
  EXPECT_THROW(cal.solve(0.0), std::invalid_argument);
  EXPECT_THROW(cal.solve(-1.0), std::invalid_argument);
  EXPECT_THROW(MseCalibrator(nullptr), std::invalid_argument);
  // Floor above the target cannot be bracketed.
  const MseCalibrator floor_cal([](double) { return 1.0; });
  EXPECT_THROW(floor_cal.solve(0.5), std::runtime_error);
}

TEST(MseCalibrator, Fig3LevelsAreOrdered) {
  for (int i = 1; i < 4; ++i) EXPECT_GT(kFig3MseLevels[i], kFig3MseLevels[i - 1]);
  EXPECT_GE(kFig3MseLevels[0], 1e-4);
  EXPECT_LE(kFig3MseLevels[3], 2.8e-3);
  EXPECT_GT(kFig5MseLevel, 1.5e-3);
  EXPECT_LT(kFig5MseLevel, 1.6e-3);
}

TEST(MseProbe, IdealTileHasTinyMse) {
  cim::MseProbeOptions opts;
  opts.k = 64;
  opts.n = 64;
  opts.t = 8;
  const double mse = cim::feature_map_mse(cim::TileConfig::ideal(), opts);
  EXPECT_LT(mse, 1e-10);
}

TEST(MseProbe, MseMonotoneInOutNoise) {
  cim::MseProbeOptions opts;
  opts.k = 64;
  opts.n = 64;
  opts.t = 8;
  double prev = 0.0;
  for (const float sigma : {0.01f, 0.04f, 0.16f}) {
    const double mse =
        cim::feature_map_mse(cim::TileConfig::ideal_except_out_noise(sigma), opts);
    EXPECT_GT(mse, prev);
    prev = mse;
  }
}

TEST(MseProbe, CalibratesOutNoiseToTarget) {
  cim::MseProbeOptions opts;
  opts.k = 64;
  opts.n = 64;
  opts.t = 8;
  const MseCalibrator cal(cim::mse_of_knob(
      [](double p) {
        return cim::TileConfig::ideal_except_out_noise(static_cast<float>(p));
      },
      opts));
  const double target = 1.55e-3;
  const double sigma = cal.solve(target);
  const double achieved = cim::feature_map_mse(
      cim::TileConfig::ideal_except_out_noise(static_cast<float>(sigma)), opts);
  EXPECT_NEAR(achieved / target, 1.0, 0.1);
}

TEST(MseProbe, CalibratesIrDropToTarget) {
  cim::MseProbeOptions opts;
  opts.k = 64;
  opts.n = 64;
  opts.t = 8;
  const MseCalibrator cal(cim::mse_of_knob(
      [](double p) {
        return cim::TileConfig::ideal_except_ir_drop(static_cast<float>(p));
      },
      opts));
  const double sigma = cal.solve(1e-3);
  EXPECT_GT(sigma, 0.0);
}

}  // namespace
}  // namespace nora::noise
