// Tests for the distribution statistics used by the Fig. 4 / Fig. 6
// analyses (kurtosis, histograms, outlier measures).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/stats.hpp"
#include "util/rng.hpp"

namespace nora::stats {
namespace {

std::vector<float> gaussian_samples(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> xs(static_cast<std::size_t>(n));
  for (auto& x : xs) x = static_cast<float>(rng.gaussian());
  return xs;
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<float> xs{1, 2, 3, 4};
  EXPECT_NEAR(mean(xs), 2.5, 1e-9);
  EXPECT_NEAR(variance(xs), 1.25, 1e-6);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-6);
  EXPECT_EQ(mean(std::span<const float>{}), 0.0);
}

TEST(Stats, KurtosisOfGaussianIsNearZero) {
  const auto xs = gaussian_samples(100000, 5);
  EXPECT_NEAR(kurtosis(xs), 0.0, 0.1);  // Fisher convention
}

TEST(Stats, KurtosisOfUniformIsNegative) {
  util::Rng rng(6);
  std::vector<float> xs(50000);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-1, 1));
  EXPECT_NEAR(kurtosis(xs), -1.2, 0.05);  // analytic value for uniform
}

TEST(Stats, KurtosisOfOutlierMixtureIsLarge) {
  // The paper's core distributional fact: a few amplified channels give
  // activations a huge kurtosis (Fig. 4: 113.61 for Mistral layer 2).
  auto xs = gaussian_samples(20000, 7);
  for (std::size_t i = 0; i < xs.size(); i += 50) xs[i] *= 30.0f;
  EXPECT_GT(kurtosis(xs), 50.0);
}

TEST(Stats, KurtosisDegenerateInputs) {
  const std::vector<float> constant(100, 3.0f);
  EXPECT_EQ(kurtosis(constant), 0.0);  // zero variance -> defined as 0
  const std::vector<float> single{1.0f};
  EXPECT_EQ(kurtosis(single), 0.0);
}

TEST(Stats, MatrixOverloads) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_NEAR(mean(m), 2.5, 1e-9);
}

TEST(Stats, HistogramDensityIntegratesToOne) {
  const auto xs = gaussian_samples(10000, 8);
  const Histogram h = histogram(xs, -5.0, 5.0, 50);
  double integral = 0.0;
  for (double d : h.density) integral += d * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
  // Peak near the center for a zero-mean Gaussian.
  std::size_t peak = 0;
  for (std::size_t i = 0; i < h.density.size(); ++i) {
    if (h.density[i] > h.density[peak]) peak = i;
  }
  EXPECT_NEAR(static_cast<double>(peak), 24.5, 3.0);
}

TEST(Stats, HistogramClampsOutOfRange) {
  const std::vector<float> xs{-100.0f, 100.0f};
  const Histogram h = histogram(xs, -1.0, 1.0, 4);
  EXPECT_GT(h.density.front(), 0.0);
  EXPECT_GT(h.density.back(), 0.0);
  EXPECT_THROW(histogram(xs, 1.0, -1.0, 4), std::invalid_argument);
  EXPECT_THROW(histogram(xs, -1.0, 1.0, 0), std::invalid_argument);
}

TEST(Stats, OutlierFraction) {
  const std::vector<float> xs{0.1f, -0.2f, 5.0f, -6.0f};
  EXPECT_NEAR(outlier_fraction(xs, 1.0), 0.5, 1e-9);
  EXPECT_EQ(outlier_fraction(std::span<const float>{}, 1.0), 0.0);
}

}  // namespace
}  // namespace nora::stats
