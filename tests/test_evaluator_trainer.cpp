// Tests for the evaluator and the training loop.
#include <gtest/gtest.h>

#include "eval/evaluator.hpp"
#include "train/trainer.hpp"

namespace nora {
namespace {

eval::SynthLambadaConfig tiny_task() {
  eval::SynthLambadaConfig t;
  t.seq_len = 16;
  t.n_pairs = 2;
  t.n_keys = 6;
  t.n_vals = 6;
  t.n_filler = 6;
  t.n_queries = 2;
  return t;
}

nn::TransformerConfig tiny_arch(const eval::SynthLambadaConfig& t) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = t.vocab_size();
  cfg.max_seq = t.seq_len;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  return cfg;
}

TEST(Evaluator, UntrainedModelIsNearChance) {
  const auto t = tiny_task();
  const eval::SynthLambada task(t);
  nn::TransformerLM model(tiny_arch(t));
  eval::EvalOptions eo;
  eo.n_examples = 120;
  const auto r = eval::evaluate(model, task, eo);
  EXPECT_EQ(r.n_examples, 120);
  // Untrained: far from solved, loss near uniform ln(V).
  EXPECT_LT(r.accuracy, 0.5);
  EXPECT_GT(r.avg_loss, 1.5);
}

TEST(Evaluator, DeterministicAcrossCalls) {
  const auto t = tiny_task();
  const eval::SynthLambada task(t);
  nn::TransformerLM model(tiny_arch(t));
  eval::EvalOptions eo;
  eo.n_examples = 32;
  const auto a = eval::evaluate(model, task, eo);
  const auto b = eval::evaluate(model, task, eo);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.avg_loss, b.avg_loss);
}

TEST(Evaluator, ZeroExamplesIsEmptyResult) {
  const auto t = tiny_task();
  const eval::SynthLambada task(t);
  nn::TransformerLM model(tiny_arch(t));
  eval::EvalOptions eo;
  eo.n_examples = 0;
  const auto r = eval::evaluate(model, task, eo);
  EXPECT_EQ(r.accuracy, 0.0);
  EXPECT_EQ(r.n_examples, 0);
}

TEST(Trainer, LossDecreasesAndAccuracyImproves) {
  const auto t = tiny_task();
  const eval::SynthLambada task(t);
  nn::TransformerLM model(tiny_arch(t));
  eval::EvalOptions eo;
  eo.n_examples = 64;
  const double acc_before = eval::evaluate(model, task, eo).accuracy;
  train::TrainConfig tc;
  tc.steps = 220;
  tc.batch_size = 8;
  tc.eval_every = 100;
  tc.eval_examples = 32;
  tc.target_accuracy = 0.0;  // run all steps
  tc.verbose = false;
  std::vector<double> losses;
  const auto report = train::train_lm(
      model, task, tc,
      [&](int, double loss, double) { losses.push_back(loss); });
  EXPECT_EQ(report.steps_run, 220);
  ASSERT_GE(losses.size(), 2u);
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_GT(eval::evaluate(model, task, eo).accuracy, acc_before);
}

TEST(Trainer, EarlyStopOnTargetAccuracy) {
  const auto t = tiny_task();
  const eval::SynthLambada task(t);
  nn::TransformerLM model(tiny_arch(t));
  train::TrainConfig tc;
  tc.steps = 3000;
  tc.batch_size = 8;
  tc.eval_every = 50;
  tc.eval_examples = 48;
  tc.target_accuracy = 0.8;  // tiny copy-ish task reaches this quickly
  tc.verbose = false;
  const auto report = train::train_lm(model, task, tc);
  EXPECT_LT(report.steps_run, 3000);
  EXPECT_GE(report.final_accuracy, 0.8);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto t = tiny_task();
  const eval::SynthLambada task(t);
  auto run = [&] {
    nn::TransformerLM model(tiny_arch(t));
    train::TrainConfig tc;
    tc.steps = 40;
    tc.batch_size = 4;
    tc.eval_every = 40;
    tc.eval_examples = 16;
    tc.target_accuracy = 0.0;
    tc.verbose = false;
    train::train_lm(model, task, tc);
    const auto ex = task.make_example("test", 0);
    return model.forward(ex.tokens);
  };
  const Matrix a = run();
  const Matrix b = run();
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace nora
