// Tests for the individual non-ideality models of paper Table I.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "noise/additive.hpp"
#include "noise/drift.hpp"
#include "noise/ir_drop.hpp"
#include "noise/programming.hpp"
#include "noise/read_noise.hpp"
#include "noise/sshape.hpp"

namespace nora::noise {
namespace {

TEST(AdditiveGaussian, DisabledIsIdentity) {
  AdditiveGaussian g(0.0f);
  util::Rng rng(1);
  EXPECT_EQ(g.apply(1.5f, rng), 1.5f);
}

TEST(AdditiveGaussian, MomentsMatchSigma) {
  AdditiveGaussian g(0.25f);
  util::Rng rng(2);
  const int n = 30000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = g.apply(0.0f, rng);
    sum += d;
    sq += d * d;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.005);
  EXPECT_NEAR(std::sqrt(sq / n), 0.25, 0.01);
}

TEST(SShape, DisabledIsIdentity) {
  const SShapeNonlinearity s(0.0f);
  EXPECT_EQ(s.apply(0.73f), 0.73f);
}

TEST(SShape, FixesEndpointsAndOddSymmetry) {
  const SShapeNonlinearity s(2.0f);
  EXPECT_NEAR(s.apply(1.0f), 1.0f, 1e-6);
  EXPECT_NEAR(s.apply(-1.0f), -1.0f, 1e-6);
  EXPECT_NEAR(s.apply(0.0f), 0.0f, 1e-7);
  for (float x = 0.1f; x < 1.0f; x += 0.2f) {
    EXPECT_NEAR(s.apply(-x), -s.apply(x), 1e-6);
  }
}

TEST(SShape, CompressiveAboveMidrange) {
  // tanh-shaped: expands small |x|, compresses toward the rails, and the
  // deviation grows with severity k.
  const SShapeNonlinearity weak(0.5f), strong(4.0f);
  EXPECT_GT(weak.apply(0.2f), 0.2f);
  EXPECT_GT(strong.apply(0.2f), weak.apply(0.2f));
  // Local slope near the rails falls below 1 (saturating transfer curve).
  EXPECT_LT(strong.apply(0.95f) - strong.apply(0.85f), 0.1f * 0.5f);
  EXPECT_THROW(SShapeNonlinearity(-1.0f), std::invalid_argument);
}

TEST(ProgrammingNoise, SigmaPolynomialShape) {
  const ProgrammingNoise p(1.0f);
  // Conductance-dependent: sigma grows with |w| over the usable range.
  EXPECT_GT(p.sigma(0.0f), 0.0f);
  EXPECT_GT(p.sigma(0.5f), p.sigma(0.0f));
  EXPECT_GT(p.sigma(1.0f), p.sigma(0.0f));
  EXPECT_EQ(p.sigma(0.3f), p.sigma(-0.3f));  // differential pair symmetry
  EXPECT_EQ(ProgrammingNoise(0.0f).sigma(0.5f), 0.0f);
}

TEST(ProgrammingNoise, AppliedErrorMatchesSigma) {
  const ProgrammingNoise p(1.0f);
  Matrix w(200, 200);
  w.fill(0.5f);
  Matrix noisy = w;
  util::Rng rng(7);
  p.apply(noisy, rng);
  double sq = 0.0;
  for (std::int64_t i = 0; i < w.size(); ++i) {
    const double d = double(noisy.data()[i]) - w.data()[i];
    sq += d * d;
  }
  EXPECT_NEAR(std::sqrt(sq / w.size()), p.sigma(0.5f), 0.002);
}

TEST(ReadNoise, AggregatedFormMatchesExactFormStatistically) {
  // y = (W + eps) x has output noise N(0, sigma * ||x||). Verify the
  // fast aggregated path reproduces the exact per-element variance.
  const float sigma = 0.05f;
  const ShortTermReadNoise rn(sigma);
  util::Rng rng(9);
  Matrix w(64, 1);
  w.fill_gaussian(rng, 0.3f);
  std::vector<float> x(64);
  for (auto& v : x) v = static_cast<float>(rng.gaussian());
  double x_l2sq = 0.0;
  for (float v : x) x_l2sq += double(v) * v;
  const float x_l2 = static_cast<float>(std::sqrt(x_l2sq));

  const int trials = 4000;
  double var_exact = 0.0, var_fast = 0.0;
  for (int t = 0; t < trials; ++t) {
    const Matrix wn = rn.perturbed_weights(w, rng);
    double y = 0.0, y0 = 0.0;
    for (int k = 0; k < 64; ++k) {
      y += double(wn.at(k, 0)) * x[static_cast<std::size_t>(k)];
      y0 += double(w.at(k, 0)) * x[static_cast<std::size_t>(k)];
    }
    var_exact += (y - y0) * (y - y0);
    std::vector<float> out{0.0f};
    rn.apply_to_outputs(out, x_l2, rng);
    var_fast += double(out[0]) * out[0];
  }
  var_exact /= trials;
  var_fast /= trials;
  const double expected = double(sigma) * sigma * x_l2sq;
  EXPECT_NEAR(var_exact / expected, 1.0, 0.1);
  EXPECT_NEAR(var_fast / expected, 1.0, 0.1);
}

TEST(ReadNoise, DisabledIsIdentity) {
  const ShortTermReadNoise rn(0.0f);
  util::Rng rng(1);
  std::vector<float> y{1.0f, 2.0f};
  rn.apply_to_outputs(y, 10.0f, rng);
  EXPECT_EQ(y[0], 1.0f);
  EXPECT_EQ(y[1], 2.0f);
}

TEST(IrDrop, DisabledGivesExactSum) {
  const IrDropModel ir(0.0f, 128);
  const std::vector<float> c{0.5f, -0.25f, 1.0f};
  EXPECT_FLOAT_EQ(ir.accumulate_column(c), 1.25f);
}

TEST(IrDrop, ReducesMagnitudeOfUnidirectionalCurrent) {
  const IrDropModel ir(1.0f, 512);
  std::vector<float> c(512, 0.5f);
  const float y = ir.accumulate_column(c);
  EXPECT_LT(y, 256.0f);
  EXPECT_GT(y, 0.9f * 256.0f);  // first-order effect stays small
}

TEST(IrDrop, EffectGrowsWithScaleAndRows) {
  std::vector<float> c(256, 0.5f);
  const float ideal = 128.0f;
  const float weak = IrDropModel(0.5f, 256).accumulate_column(c);
  const float strong = IrDropModel(2.0f, 256).accumulate_column(c);
  EXPECT_LT(strong, weak);
  EXPECT_LT(weak, ideal);
  // Longer lines (more rows) at the same scale drop more, relatively.
  std::vector<float> c2(512, 0.5f);
  const float long_line = IrDropModel(1.0f, 512).accumulate_column(c2) / 256.0f;
  const float short_line = IrDropModel(1.0f, 256).accumulate_column(c) / 128.0f;
  EXPECT_LT(long_line, short_line);
  EXPECT_THROW(IrDropModel(-1.0f, 128), std::invalid_argument);
  EXPECT_THROW(IrDropModel(1.0f, 0), std::invalid_argument);
}

TEST(Drift, DecayLawAndCompensation) {
  DriftConfig cfg;
  cfg.nu_mean = 0.05f;
  cfg.t0 = 20.0f;
  const PcmDriftModel drift(cfg);
  EXPECT_FLOAT_EQ(drift.decay(0.05f, 10.0f), 1.0f);  // before t0: no drift
  const float one_hour = drift.decay(0.05f, 3600.0f);
  EXPECT_LT(one_hour, 1.0f);
  EXPECT_NEAR(one_hour, std::pow(3600.0f / 20.0f, -0.05f), 1e-5);
  EXPECT_FLOAT_EQ(drift.compensation(3600.0f), one_hour);
  DriftConfig no_comp = cfg;
  no_comp.compensate = false;
  EXPECT_FLOAT_EQ(PcmDriftModel(no_comp).compensation(3600.0f), 1.0f);
}

TEST(Drift, CompensatedMeanIsStable) {
  DriftConfig cfg;
  cfg.nu_sigma = 0.02f;
  const PcmDriftModel drift(cfg);
  util::Rng rng(11);
  Matrix w(100, 100);
  w.fill(0.8f);
  const Matrix nu = drift.sample_exponents(100, 100, rng);
  Matrix drifted = w;
  drift.apply(drifted, nu, 3600.0f);
  double mean = 0.0;
  for (std::int64_t i = 0; i < drifted.size(); ++i) mean += drifted.data()[i];
  mean /= drifted.size();
  // Global compensation keeps the mean near the programmed value while
  // device-to-device spread remains (the residual error NORA cannot fix).
  EXPECT_NEAR(mean, 0.8, 0.02);
  double var = 0.0;
  for (std::int64_t i = 0; i < drifted.size(); ++i) {
    var += (drifted.data()[i] - mean) * (drifted.data()[i] - mean);
  }
  EXPECT_GT(var / drifted.size(), 1e-5);
  EXPECT_THROW(drift.apply(drifted, Matrix(2, 2), 100.0f), std::invalid_argument);
}

TEST(Drift, ReadNoiseGrowsWithTime) {
  DriftConfig cfg;
  cfg.sigma_1f = 0.01f;
  const PcmDriftModel drift(cfg);
  EXPECT_GT(drift.read_noise_sigma(3600.0f), drift.read_noise_sigma(60.0f));
  DriftConfig off;
  off.sigma_1f = 0.0f;
  EXPECT_EQ(PcmDriftModel(off).read_noise_sigma(3600.0f), 0.0f);
}

// Every noise-model constructor must reject NaN/Inf parameters: the
// existing range checks (`x < 0.0f` and friends) are all false for NaN,
// so a non-finite config would silently poison every downstream MVM.
TEST(NoiseCtors, RejectNonFiniteParameters) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();

  // Brace-init everywhere: `Type(nan)` inside the macro would parse as a
  // declaration of a variable named `nan` and throw nothing.
  EXPECT_THROW(IrDropModel(nan, 128), std::invalid_argument);
  EXPECT_THROW(IrDropModel(inf, 128), std::invalid_argument);
  EXPECT_THROW(SShapeNonlinearity{nan}, std::invalid_argument);
  EXPECT_THROW(SShapeNonlinearity{inf}, std::invalid_argument);
  EXPECT_THROW(ShortTermReadNoise{nan}, std::invalid_argument);
  EXPECT_THROW(ShortTermReadNoise{inf}, std::invalid_argument);
  EXPECT_THROW(ShortTermReadNoise{-0.1f}, std::invalid_argument);
  EXPECT_THROW(AdditiveGaussian{nan}, std::invalid_argument);
  EXPECT_THROW(AdditiveGaussian{inf}, std::invalid_argument);
  EXPECT_THROW(AdditiveGaussian{-0.1f}, std::invalid_argument);
  EXPECT_THROW(ProgrammingNoise{nan}, std::invalid_argument);
  EXPECT_THROW(ProgrammingNoise{inf}, std::invalid_argument);
  EXPECT_THROW(ProgrammingNoise{-1.0f}, std::invalid_argument);

  DriftConfig bad;
  bad.nu_mean = nan;
  EXPECT_THROW(PcmDriftModel{bad}, std::invalid_argument);
  bad = DriftConfig{};
  bad.nu_sigma = -0.01f;
  EXPECT_THROW(PcmDriftModel{bad}, std::invalid_argument);
  bad = DriftConfig{};
  bad.t0 = 0.0f;
  EXPECT_THROW(PcmDriftModel{bad}, std::invalid_argument);
  bad = DriftConfig{};
  bad.sigma_1f = inf;
  EXPECT_THROW(PcmDriftModel{bad}, std::invalid_argument);

  // Defaults and in-range values stay accepted.
  EXPECT_NO_THROW(PcmDriftModel{DriftConfig{}});
  EXPECT_NO_THROW(ShortTermReadNoise{0.0175f});
  EXPECT_NO_THROW(AdditiveGaussian{0.0f});
  EXPECT_NO_THROW(ProgrammingNoise{1.0f});
}

}  // namespace
}  // namespace nora::noise
