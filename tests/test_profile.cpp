// Tests for persistent NORA calibration profiles.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/profile.hpp"
#include "tensor/ops.hpp"

namespace nora::core {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

nn::TransformerLM make_model(const eval::SynthLambadaConfig& task_cfg) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = task_cfg.vocab_size();
  cfg.max_seq = task_cfg.seq_len;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 48;
  cfg.norm_gain = std::vector<float>(24, 1.0f);
  cfg.norm_gain[7] = 15.0f;
  return nn::TransformerLM(cfg);
}

TEST(Profile, RoundTripPreservesEverything) {
  const eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  auto model = make_model(task_cfg);
  NoraOptions opts;
  opts.lambda = 0.75f;
  opts.calib_examples = 4;
  const NoraProfile profile = make_profile(model, task, opts);
  const std::string path = temp_path("nora_test_profile.npro");
  save_profile(path, profile);
  const NoraProfile back = load_profile(path);
  EXPECT_EQ(back.lambda, 0.75f);
  ASSERT_EQ(back.layers.size(), profile.layers.size());
  for (std::size_t i = 0; i < back.layers.size(); ++i) {
    EXPECT_EQ(back.layers[i].layer, profile.layers[i].layer);
    EXPECT_EQ(back.layers[i].act_abs_max, profile.layers[i].act_abs_max);
    EXPECT_EQ(back.layers[i].w_abs_max, profile.layers[i].w_abs_max);
  }
  std::remove(path.c_str());
}

TEST(Profile, DeployFromProfileMatchesDirectDeploy) {
  const eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  const auto ex = task.make_example("test", 0);
  NoraOptions opts;
  opts.calib_examples = 4;

  // Direct: calibrate + deploy in one go.
  auto direct = make_model(task_cfg);
  DeployOptions dopts;
  dopts.tile = cim::TileConfig::paper_table2();
  dopts.nora = opts;
  dopts.seed = 99;
  deploy_analog(direct, task, dopts);
  const Matrix y_direct = direct.forward(ex.tokens);

  // Via profile: calibrate, save, load, deploy on a fresh twin.
  auto source = make_model(task_cfg);
  const NoraProfile profile = make_profile(source, task, opts);
  const std::string path = temp_path("nora_test_profile2.npro");
  save_profile(path, profile);
  auto twin = make_model(task_cfg);
  deploy_analog_with_profile(twin, load_profile(path),
                             cim::TileConfig::paper_table2(), opts.s_min, 99);
  const Matrix y_profile = twin.forward(ex.tokens);
  EXPECT_EQ(ops::mse(y_direct, y_profile), 0.0);  // identical seeds + s
  std::remove(path.c_str());
}

TEST(Profile, RejectsMismatchedModel) {
  const eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  auto model = make_model(task_cfg);
  NoraOptions opts;
  opts.calib_examples = 2;
  NoraProfile profile = make_profile(model, task, opts);
  profile.layers.pop_back();
  EXPECT_THROW(deploy_analog_with_profile(model, profile,
                                          cim::TileConfig::ideal(), 1e-3f, 1),
               std::invalid_argument);
  NoraProfile renamed = make_profile(model, task, opts);
  renamed.layers[0].layer = "wrong.name";
  EXPECT_THROW(deploy_analog_with_profile(model, renamed,
                                          cim::TileConfig::ideal(), 1e-3f, 1),
               std::invalid_argument);
}

TEST(Profile, RejectsCorruptFiles) {
  EXPECT_THROW(load_profile("/nonexistent/profile.npro"), std::runtime_error);
  const std::string path = temp_path("nora_test_badprofile.npro");
  {
    std::ofstream f(path, std::ios::binary);
    f << "garbage";
  }
  EXPECT_THROW(load_profile(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nora::core
