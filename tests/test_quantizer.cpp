// Tests for the DAC/ADC uniform quantizer, including a parameterized
// sweep over converter bit widths (the paper's in_res/out_res knobs).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "noise/quantizer.hpp"
#include "util/rng.hpp"

namespace nora::noise {
namespace {

TEST(Quantizer, IdealPassthrough) {
  const auto q = UniformQuantizer::ideal();
  EXPECT_FALSE(q.enabled());
  EXPECT_EQ(q.quantize(0.12345f), 0.12345f);
  EXPECT_FALSE(q.saturates(100.0f));
}

TEST(Quantizer, FromBitsStepCount) {
  const auto q = UniformQuantizer::from_bits(7, 1.0f);
  EXPECT_EQ(q.steps(), 128);  // Table II: 7 bit = 128 steps
  EXPECT_FLOAT_EQ(q.step_size(), 2.0f / 128.0f);
  EXPECT_FALSE(UniformQuantizer::from_bits(0, 1.0f).enabled());
}

TEST(Quantizer, SaturatesAtBound) {
  const UniformQuantizer q(128, 1.0f);
  // Two's-complement grid: the top code is bound - step (63/64), the
  // bottom code is exactly -bound. 128 codes total, not 129.
  EXPECT_FLOAT_EQ(q.quantize(5.0f), 63.0f / 64.0f);
  EXPECT_FLOAT_EQ(q.quantize(-5.0f), -1.0f);
  EXPECT_TRUE(q.saturates(1.5f));
  EXPECT_TRUE(q.saturates(-1.0f));
  EXPECT_FALSE(q.saturates(0.5f));
}

TEST(Quantizer, ExactlyStepsDistinctLevels) {
  // Regression for the off-by-one level grid: clamping codes to
  // [-steps/2, +steps/2] admits steps+1 distinct outputs, one more than
  // the converter's bit width can encode. The fixed grid is
  // [-steps/2, steps/2 - 1] — exactly `steps` codes.
  const UniformQuantizer q(8, 1.0f);
  std::set<float> levels;
  for (float x = -2.0f; x <= 2.0f; x += 1e-3f) levels.insert(q.quantize(x));
  EXPECT_EQ(levels.size(), 8u);
  // A 7-bit converter must produce exactly 128 codes (Table II).
  const auto q7 = UniformQuantizer::from_bits(7, 1.0f);
  std::set<float> levels7;
  for (float x = -1.5f; x <= 1.5f; x += 1e-4f) levels7.insert(q7.quantize(x));
  EXPECT_EQ(levels7.size(), 128u);
  // Zero stays exactly representable.
  EXPECT_EQ(q.quantize(0.0f), 0.0f);
  EXPECT_EQ(q7.quantize(0.0f), 0.0f);
}

TEST(Quantizer, ZeroMapsToZero) {
  const UniformQuantizer q(128, 1.0f);
  EXPECT_FLOAT_EQ(q.quantize(0.0f), 0.0f);
}

TEST(Quantizer, RoundsToNearestLevel) {
  const UniformQuantizer q(4, 1.0f);  // levels at -1, -0.5, 0, 0.5, 1
  EXPECT_FLOAT_EQ(q.quantize(0.3f), 0.5f);
  EXPECT_FLOAT_EQ(q.quantize(0.2f), 0.0f);
  EXPECT_FLOAT_EQ(q.quantize(-0.74f), -0.5f);
  EXPECT_FLOAT_EQ(q.quantize(-0.76f), -1.0f);
}

TEST(Quantizer, Idempotent) {
  const UniformQuantizer q(128, 2.0f);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.uniform(-3, 3));
    const float once = q.quantize(x);
    EXPECT_FLOAT_EQ(q.quantize(once), once);
  }
}

TEST(Quantizer, Monotone) {
  const UniformQuantizer q(16, 1.0f);
  float prev = q.quantize(-2.0f);
  for (float x = -2.0f; x <= 2.0f; x += 0.01f) {
    const float y = q.quantize(x);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(Quantizer, ApplySpan) {
  const UniformQuantizer q(2, 1.0f);  // levels -1, 0
  std::vector<float> xs{0.2f, 0.9f, -0.7f};
  q.apply(xs);
  EXPECT_FLOAT_EQ(xs[0], 0.0f);
  EXPECT_FLOAT_EQ(xs[1], 0.0f);  // top code of a 2-step grid is 0
  EXPECT_FLOAT_EQ(xs[2], -1.0f);
}

TEST(Quantizer, InvalidArguments) {
  EXPECT_THROW(UniformQuantizer(-1, 1.0f), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(4, 0.0f), std::invalid_argument);
  EXPECT_NO_THROW(UniformQuantizer(0, -5.0f));  // disabled: bound unused
}

TEST(Quantizer, RejectsNonFiniteParameters) {
  // `steps < 0.0f` etc. are all false for NaN, so without an explicit
  // isfinite check a NaN config would pass validation and poison every
  // downstream MVM.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_THROW(UniformQuantizer(nan, 1.0f), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(inf, 1.0f), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(256.0f, nan), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(256.0f, inf), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(0.0f, nan), std::invalid_argument);
}

// Property sweep: for b-bit conversion over [-1, 1], the worst-case
// rounding error is half a step everywhere except at the asymmetric top
// edge, where inputs near +1 saturate to the highest code (bound - step)
// and can err by a full step. Error still shrinks ~2x per extra bit.
class QuantizerBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBitsSweep, ErrorBoundedByOneStep) {
  const int bits = GetParam();
  const auto q = UniformQuantizer::from_bits(bits, 1.0f);
  util::Rng rng(bits);
  double max_err = 0.0;
  double max_interior_err = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1, 1));
    const double err = std::fabs(double(q.quantize(x)) - x);
    max_err = std::max(max_err, err);
    // Away from the clamped top code the half-step bound is exact.
    if (x < 1.0f - 1.5f * q.step_size()) {
      max_interior_err = std::max(max_interior_err, err);
    }
  }
  EXPECT_LE(max_err, q.step_size() + 1e-6);
  EXPECT_LE(max_interior_err, q.step_size() / 2.0 + 1e-6);
  EXPECT_GT(max_err, q.step_size() / 8.0);  // bound is near-tight
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerBitsSweep, ::testing::Values(3, 5, 7, 9));

}  // namespace
}  // namespace nora::noise
