// Tests for the DAC/ADC uniform quantizer, including a parameterized
// sweep over converter bit widths (the paper's in_res/out_res knobs).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "noise/quantizer.hpp"
#include "util/rng.hpp"

namespace nora::noise {
namespace {

TEST(Quantizer, IdealPassthrough) {
  const auto q = UniformQuantizer::ideal();
  EXPECT_FALSE(q.enabled());
  EXPECT_EQ(q.quantize(0.12345f), 0.12345f);
  EXPECT_FALSE(q.saturates(100.0f));
}

TEST(Quantizer, FromBitsStepCount) {
  const auto q = UniformQuantizer::from_bits(7, 1.0f);
  EXPECT_EQ(q.steps(), 128);  // Table II: 7 bit = 128 steps
  EXPECT_FLOAT_EQ(q.step_size(), 2.0f / 128.0f);
  EXPECT_FALSE(UniformQuantizer::from_bits(0, 1.0f).enabled());
}

TEST(Quantizer, SaturatesAtBound) {
  const UniformQuantizer q(128, 1.0f);
  EXPECT_FLOAT_EQ(q.quantize(5.0f), 1.0f);
  EXPECT_FLOAT_EQ(q.quantize(-5.0f), -1.0f);
  EXPECT_TRUE(q.saturates(1.5f));
  EXPECT_TRUE(q.saturates(-1.0f));
  EXPECT_FALSE(q.saturates(0.5f));
}

TEST(Quantizer, ZeroMapsToZero) {
  const UniformQuantizer q(128, 1.0f);
  EXPECT_FLOAT_EQ(q.quantize(0.0f), 0.0f);
}

TEST(Quantizer, RoundsToNearestLevel) {
  const UniformQuantizer q(4, 1.0f);  // levels at -1, -0.5, 0, 0.5, 1
  EXPECT_FLOAT_EQ(q.quantize(0.3f), 0.5f);
  EXPECT_FLOAT_EQ(q.quantize(0.2f), 0.0f);
  EXPECT_FLOAT_EQ(q.quantize(-0.74f), -0.5f);
  EXPECT_FLOAT_EQ(q.quantize(-0.76f), -1.0f);
}

TEST(Quantizer, Idempotent) {
  const UniformQuantizer q(128, 2.0f);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.uniform(-3, 3));
    const float once = q.quantize(x);
    EXPECT_FLOAT_EQ(q.quantize(once), once);
  }
}

TEST(Quantizer, Monotone) {
  const UniformQuantizer q(16, 1.0f);
  float prev = q.quantize(-2.0f);
  for (float x = -2.0f; x <= 2.0f; x += 0.01f) {
    const float y = q.quantize(x);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(Quantizer, ApplySpan) {
  const UniformQuantizer q(2, 1.0f);  // levels -1, 0, 1
  std::vector<float> xs{0.2f, 0.9f, -0.7f};
  q.apply(xs);
  EXPECT_FLOAT_EQ(xs[0], 0.0f);
  EXPECT_FLOAT_EQ(xs[1], 1.0f);
  EXPECT_FLOAT_EQ(xs[2], -1.0f);
}

TEST(Quantizer, InvalidArguments) {
  EXPECT_THROW(UniformQuantizer(-1, 1.0f), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(4, 0.0f), std::invalid_argument);
  EXPECT_NO_THROW(UniformQuantizer(0, -5.0f));  // disabled: bound unused
}

// Property sweep: for b-bit conversion over [-1, 1], the worst-case
// rounding error of in-range values is half a step, and the RMS error of
// uniform inputs shrinks ~2x per extra bit.
class QuantizerBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBitsSweep, ErrorBoundedByHalfStep) {
  const int bits = GetParam();
  const auto q = UniformQuantizer::from_bits(bits, 1.0f);
  util::Rng rng(bits);
  double max_err = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1, 1));
    max_err = std::max(max_err, std::fabs(double(q.quantize(x)) - x));
  }
  EXPECT_LE(max_err, q.step_size() / 2.0 + 1e-6);
  EXPECT_GT(max_err, q.step_size() / 8.0);  // bound is near-tight
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerBitsSweep, ::testing::Values(3, 5, 7, 9));

}  // namespace
}  // namespace nora::noise
