// Chaos-engine and Auditor tests.
//
// Three properties carry the harness:
//   1. chaos disabled is a true no-op — serve output stays bit-identical
//      to a run with no engine attached;
//   2. the injection schedule is replayable — same seed, same events,
//      same end state, run after run;
//   3. a mixed-chaos mini-soak (upsets, wear, storms, bursts, cancels,
//      maintenance windows, retries) holds every Auditor conservation
//      invariant and drains to zero leaked slabs.
#include <gtest/gtest.h>

#include <vector>

#include "chaos/chaos_engine.hpp"
#include "cim/tile_config.hpp"
#include "nn/transformer.hpp"
#include "runtime/integrity_monitor.hpp"
#include "serve/auditor.hpp"
#include "serve/scheduler.hpp"
#include "util/thread_pool.hpp"

namespace nora::chaos {
namespace {

nn::TransformerConfig tiny_arch() {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 32;
  cfg.seed = 77;
  return cfg;
}

cim::TileConfig noisy_tiles() {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 16;
  cfg.tile_cols = 12;
  cfg.in_noise = 0.02f;
  cfg.abft_checksum = true;
  cfg.n_threads = 1;
  return cfg;
}

nn::TransformerLM make_analog_model(const cim::TileConfig& tile) {
  nn::TransformerLM model(tiny_arch());
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tile, {}, seed++);
  }
  return model;
}

std::vector<std::vector<int>> serve_fixed_jobs(nn::TransformerLM& model,
                                               bool with_engine) {
  serve::SchedulerConfig cfg;
  cfg.max_batch = 3;
  serve::Scheduler sched(model, cfg);
  ChaosConfig ccfg;  // every rate zero
  ChaosEngine engine(sched, model, ccfg);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 4; ++i) {
    serve::RequestParams p;
    p.prompt = {3 + i, 1, 4, 1};
    p.max_new_tokens = 6;
    p.stream_seed = 300 + static_cast<std::uint64_t>(i);
    ids.push_back(sched.submit(std::move(p)));
  }
  std::int64_t step = 0;
  bool busy = true;
  while (busy) {
    if (with_engine) engine.tick(step++);
    busy = sched.step();
  }
  if (with_engine) {
    EXPECT_EQ(engine.stats().total_events(), 0);
    EXPECT_EQ(engine.stats().skipped, 0);
  }
  std::vector<std::vector<int>> out;
  for (const auto id : ids) out.push_back(sched.request(id).tokens);
  return out;
}

TEST(ChaosEngine, ZeroRatesAreANoOpOnServeOutput) {
  util::ThreadPool::global().resize(1);
  nn::TransformerLM a = make_analog_model(noisy_tiles());
  nn::TransformerLM b = make_analog_model(noisy_tiles());
  EXPECT_EQ(serve_fixed_jobs(a, /*with_engine=*/false),
            serve_fixed_jobs(b, /*with_engine=*/true));
}

struct SoakResult {
  ChaosStats stats;
  std::vector<serve::RequestState> states;
  std::vector<std::string> violations;
  std::int64_t finished = 0;
};

SoakResult run_mini_soak(std::uint64_t chaos_seed, int steps) {
  util::ThreadPool::global().resize(1);
  nn::TransformerLM model = make_analog_model(noisy_tiles());
  runtime::MonitorConfig mcfg;
  mcfg.policy = runtime::RefreshPolicy::kWatchdog;
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/5050, mcfg);
  serve::SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_budget_tokens = 64;
  cfg.seed = 913;
  cfg.monitor = &monitor;
  cfg.inspect_every = 8;
  cfg.step_dt_s = 0.5f;
  cfg.maintenance_window_steps = 3;
  cfg.retry.max_attempts = 4;
  cfg.retry.backoff_base_steps = 1;
  cfg.retry.jitter_steps = 2;
  serve::Scheduler sched(model, cfg);
  ChaosConfig ccfg;
  ccfg.seed = chaos_seed;
  ccfg.upset_rate = 0.4;
  ccfg.wear_rate = 0.05;
  ccfg.adc_storm_rate = 0.02;
  ccfg.adc_storm_size = 8;
  ccfg.submit_rate = 0.5;
  ccfg.burst_rate = 0.05;
  ccfg.burst_size = 3;
  ccfg.cancel_rate = 0.15;
  ccfg.deadline_prob = 0.2;
  ChaosEngine engine(sched, model, ccfg);
  serve::Auditor auditor(sched);
  for (int s = 0; s < steps; ++s) {
    engine.tick(s);
    sched.step();
    auditor.check();
  }
  // Drain: no new chaos, existing work runs out (bounded by the retry
  // budget and deadlines, so this terminates).
  int guard = 0;
  while (sched.step()) {
    auditor.check();
    EXPECT_LT(++guard, 100000) << "soak failed to drain";
  }
  auditor.check_idle();
  SoakResult r;
  r.stats = engine.stats();
  const serve::AuditSnapshot snap = sched.audit_snapshot();
  r.states = snap.states;
  r.violations = auditor.violations();
  r.finished = snap.metrics.finished;
  return r;
}

TEST(ChaosSoak, MiniSoakHoldsEveryConservationInvariant) {
  const SoakResult r = run_mini_soak(/*chaos_seed=*/2300, /*steps=*/150);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size() << " violations, first: " << r.violations[0];
  EXPECT_GT(r.stats.upsets, 0);
  EXPECT_GT(r.stats.submits, 0);
  EXPECT_GT(r.finished, 0);
  for (const auto st : r.states) {
    EXPECT_TRUE(st == serve::RequestState::kFinished ||
                st == serve::RequestState::kCancelled ||
                st == serve::RequestState::kExpired ||
                st == serve::RequestState::kRejected)
        << "non-terminal request after drain: " << serve::to_string(st);
  }
}

TEST(ChaosSoak, SameSeedReplaysSameScheduleAndOutcome) {
  const SoakResult a = run_mini_soak(/*chaos_seed=*/77, /*steps=*/100);
  const SoakResult b = run_mini_soak(/*chaos_seed=*/77, /*steps=*/100);
  EXPECT_EQ(a.stats.upsets, b.stats.upsets);
  EXPECT_EQ(a.stats.wears, b.stats.wears);
  EXPECT_EQ(a.stats.storms, b.stats.storms);
  EXPECT_EQ(a.stats.submits, b.stats.submits);
  EXPECT_EQ(a.stats.bursts, b.stats.bursts);
  EXPECT_EQ(a.stats.cancels_attempted, b.stats.cancels_attempted);
  EXPECT_EQ(a.stats.cancels_accepted, b.stats.cancels_accepted);
  EXPECT_EQ(a.stats.skipped, b.stats.skipped);
  // Full per-request outcome equality: the soak is a deterministic
  // simulation, not just statistically similar.
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.finished, b.finished);
  // A different seed must actually produce a different schedule
  // (otherwise the keying is broken and every "replay" is vacuous).
  const SoakResult c = run_mini_soak(/*chaos_seed=*/78, /*steps=*/100);
  EXPECT_NE(a.stats.total_events(), 0);
  EXPECT_TRUE(a.stats.upsets != c.stats.upsets ||
              a.stats.submits != c.stats.submits ||
              a.states != c.states);
}

TEST(ServeError, TaxonomyNamesAndTransience) {
  using serve::ServeError;
  EXPECT_STREQ(serve::to_string(ServeError::kPoolExhausted),
               "pool_exhausted");
  EXPECT_STREQ(serve::to_string(ServeError::kMaintenance), "maintenance");
  EXPECT_STREQ(serve::to_string(ServeError::kQueueFull), "queue_full");
  EXPECT_TRUE(serve::is_transient(ServeError::kPoolExhausted));
  EXPECT_TRUE(serve::is_transient(ServeError::kMaintenance));
  EXPECT_FALSE(serve::is_transient(ServeError::kEmptyPrompt));
  EXPECT_FALSE(serve::is_transient(ServeError::kRetryBudgetExhausted));
  EXPECT_EQ(serve::describe(ServeError::kQueueFull, "3 waiting"),
            "queue_full: 3 waiting");
  EXPECT_EQ(serve::describe(ServeError::kQueueFull, ""), "queue_full");
}

}  // namespace
}  // namespace nora::chaos
