// Finite-difference gradient checks for every trainable module, end to
// end through the full TransformerLM. A wrong backward pass would
// silently cripple the synthetic-LLM training substrate, so this is the
// most load-bearing test in the training stack.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/synthlambada.hpp"
#include "nn/transformer.hpp"
#include "train/loss.hpp"

namespace nora {
namespace {

// Loss of the model on a fixed example (pure function of parameters).
double model_loss(nn::TransformerLM& model, const eval::Example& ex) {
  const Matrix logits = model.forward(ex.tokens, /*training=*/false);
  return train::softmax_cross_entropy(logits, ex.targets, ex.weights).loss;
}

TEST(GradCheck, FullModelMatchesFiniteDifferences) {
  eval::SynthLambadaConfig task_cfg;
  task_cfg.seq_len = 12;
  task_cfg.n_pairs = 2;
  task_cfg.n_keys = 4;
  task_cfg.n_vals = 4;
  task_cfg.n_filler = 4;
  const eval::SynthLambada task(task_cfg);
  const auto ex = task.make_example("train", 3);

  nn::TransformerConfig cfg;
  cfg.vocab_size = task_cfg.vocab_size();
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = task_cfg.seq_len;
  cfg.norm_gain = std::vector<float>(16, 1.0f);
  cfg.norm_gain[3] = 5.0f;  // exercise the planted-gain path too
  for (const auto mlp : {nn::MlpKind::kGelu, nn::MlpKind::kSiluGated}) {
    cfg.mlp_kind = mlp;
    cfg.norm_kind = mlp == nn::MlpKind::kGelu ? nn::NormKind::kLayerNorm
                                              : nn::NormKind::kRmsNorm;
    nn::TransformerLM model(cfg);

    // Analytic gradients.
    model.zero_grads();
    const Matrix logits = model.forward(ex.tokens, /*training=*/true);
    const auto res = train::softmax_cross_entropy(logits, ex.targets, ex.weights);
    model.backward(res.dlogits);

    // Spot-check a handful of entries of every parameter tensor.
    const double eps = 1e-3;
    int checked = 0;
    for (nn::Param* p : model.collect_params()) {
      if (!p->trainable) continue;
      const std::int64_t stride = std::max<std::int64_t>(1, p->value.size() / 5);
      for (std::int64_t i = 0; i < p->value.size(); i += stride) {
        float& w = p->value.data()[i];
        const float orig = w;
        w = orig + static_cast<float>(eps);
        const double lp = model_loss(model, ex);
        w = orig - static_cast<float>(eps);
        const double lm = model_loss(model, ex);
        w = orig;
        const double fd = (lp - lm) / (2 * eps);
        const double an = p->grad.data()[i];
        EXPECT_NEAR(an, fd, 2e-2 + 0.05 * std::fabs(fd))
            << "param " << p->name << " index " << i;
        ++checked;
      }
    }
    EXPECT_GT(checked, 50);
  }
}

}  // namespace
}  // namespace nora
