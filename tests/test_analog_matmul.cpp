// Tests for the tiled analog matrix-multiply unit, including the two
// central mathematical invariants of the paper:
//   1. zero-noise equivalence: ideal tile == digital GEMM, and
//   2. NORA output invariance: the rescale vector s cancels exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/analog_matmul.hpp"
#include "tensor/ops.hpp"

namespace nora::cim {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

std::vector<float> random_s(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> s(static_cast<std::size_t>(n));
  for (auto& v : s) v = static_cast<float>(std::exp(rng.gaussian(0.0, 1.0)));
  return s;
}

TEST(AnalogMatmul, IdealEqualsDigital) {
  const Matrix w = random_matrix(100, 60, 1);
  const Matrix x = random_matrix(7, 100, 2, 1.0f);
  AnalogMatmul unit(w, {}, TileConfig::ideal(), 3);
  const Matrix y = unit.forward(x);
  const Matrix ref = ops::matmul(x, w);
  const double rel = std::sqrt(ops::mse(y, ref)) /
                     (ops::frobenius_norm(ref) / std::sqrt(double(ref.size())));
  EXPECT_LT(rel, 1e-4);
}

TEST(AnalogMatmul, NoraRescaleIsExactAtZeroNoise) {
  // Eq. 6-8: programming w*s and streaming x/s must cancel exactly.
  const Matrix w = random_matrix(80, 40, 4);
  const Matrix x = random_matrix(5, 80, 5, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  for (const std::uint64_t s_seed : {10u, 11u, 12u}) {
    AnalogMatmul unit(w, random_s(80, s_seed), TileConfig::ideal(), 6);
    const Matrix y = unit.forward(x);
    const double rel = std::sqrt(ops::mse(y, ref)) /
                       (ops::frobenius_norm(ref) / std::sqrt(double(ref.size())));
    EXPECT_LT(rel, 1e-4) << "s_seed " << s_seed;
  }
}

TEST(AnalogMatmul, TilePartitioningIsInvariantAtZeroNoise) {
  // Splitting the weight across many small tiles must not change the
  // ideal result (partial sums accumulate digitally).
  const Matrix w = random_matrix(90, 70, 7);
  const Matrix x = random_matrix(4, 90, 8, 1.0f);
  TileConfig big = TileConfig::ideal();
  TileConfig small = TileConfig::ideal();
  small.tile_rows = 32;
  small.tile_cols = 16;
  const Matrix y_big = AnalogMatmul(w, {}, big, 9).forward(x);
  const Matrix y_small = AnalogMatmul(w, {}, small, 9).forward(x);
  EXPECT_LT(ops::mse(y_big, y_small), 1e-8);
}

TEST(AnalogMatmul, QuantizationErrorShrinksUnderNoraForOutlierInputs) {
  const std::int64_t k = 128, n = 64;
  const Matrix w = random_matrix(k, n, 10, 0.1f);
  Matrix x = random_matrix(12, k, 11, 1.0f);
  // Amplify a few channels 25x: per-token abs-max scaling then destroys
  // the resolution of every other channel.
  for (std::int64_t c = 0; c < k; c += 16) {
    for (std::int64_t r = 0; r < x.rows(); ++r) x.at(r, c) *= 25.0f;
  }
  const Matrix ref = ops::matmul(x, w);
  TileConfig cfg = TileConfig::ideal();
  cfg.dac_bits = 7;
  cfg.adc_bits = 7;
  const double mse_naive = ops::mse(AnalogMatmul(w, {}, cfg, 12).forward(x), ref);
  const auto ax = ops::col_abs_max(x);
  const auto wx = ops::row_abs_max(w);
  std::vector<float> s(static_cast<std::size_t>(k), 1.0f);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sqrt(ax[i] / std::max(wx[i], 1e-6f));
  }
  const double mse_nora = ops::mse(AnalogMatmul(w, s, cfg, 12).forward(x), ref);
  EXPECT_LT(mse_nora, 0.5 * mse_naive);
}

TEST(AnalogMatmul, AlphaGammaShrinksUnderNora) {
  const std::int64_t k = 64;
  const Matrix w = random_matrix(k, 32, 13, 0.1f);
  Matrix x = random_matrix(8, k, 14, 1.0f);
  for (std::int64_t r = 0; r < x.rows(); ++r) x.at(r, 0) *= 30.0f;
  const auto ax = ops::col_abs_max(x);
  const auto wx = ops::row_abs_max(w);
  std::vector<float> s(static_cast<std::size_t>(k), 1.0f);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sqrt(ax[i] / std::max(wx[i], 1e-6f));
  }
  AnalogMatmul naive(w, {}, TileConfig::ideal(), 15);
  AnalogMatmul nora(w, s, TileConfig::ideal(), 15);
  naive.forward(x);
  nora.forward(x);
  EXPECT_LT(nora.mean_alpha_gamma_gmax(), naive.mean_alpha_gamma_gmax());
}

TEST(AnalogMatmul, InputScalingPolicies) {
  const Matrix w = random_matrix(32, 16, 16);
  const Matrix x = random_matrix(6, 32, 17, 1.0f);
  // kNone with inputs beyond [-1, 1] clips at the DAC.
  TileConfig none_cfg = TileConfig::ideal();
  none_cfg.dac_bits = 7;
  none_cfg.scaling = InputScaling::kNone;
  AnalogMatmul none(w, {}, none_cfg, 18);
  none.forward(x);
  EXPECT_GT(none.stats().dac_clipped, 0);
  // kAbsMax never clips.
  TileConfig abs_cfg = none_cfg;
  abs_cfg.scaling = InputScaling::kAbsMax;
  AnalogMatmul absmax(w, {}, abs_cfg, 18);
  absmax.forward(x);
  EXPECT_EQ(absmax.stats().dac_clipped, 0);
  // kAvgAbsMax clips only the above-average rows.
  TileConfig avg_cfg = none_cfg;
  avg_cfg.scaling = InputScaling::kAvgAbsMax;
  AnalogMatmul avg(w, {}, avg_cfg, 18);
  avg.forward(x);
  EXPECT_GT(avg.stats().dac_clipped, 0);
  EXPECT_LT(avg.stats().dac_clipped, none.stats().dac_clipped);
}

TEST(AnalogMatmul, BoundManagementResolvesSaturation) {
  // Strongly correlated inputs/weights saturate a tight ADC; iterative
  // bound management doubles alpha until the read fits.
  Matrix w(64, 4);
  w.fill(0.9f);
  Matrix x(3, 64);
  x.fill(0.7f);
  TileConfig cfg = TileConfig::ideal();
  cfg.adc_bits = 7;
  cfg.adc_bound = 12.0f;  // |sum| = 64*0.9*0.7 normalized ~ 44 >> 12
  const Matrix ref = ops::matmul(x, w);
  AnalogMatmul no_bm(w, {}, cfg, 19);
  const Matrix y_clipped = no_bm.forward(x);
  EXPECT_GT(std::fabs(y_clipped.at(0, 0) - ref.at(0, 0)), 1.0f);
  TileConfig bm_cfg = cfg;
  bm_cfg.bound_management = true;
  bm_cfg.bm_max_iters = 4;
  AnalogMatmul bm(w, {}, bm_cfg, 19);
  const Matrix y_bm = bm.forward(x);
  EXPECT_GT(bm.stats().bm_retries, 0);
  EXPECT_NEAR(y_bm.at(0, 0), ref.at(0, 0), 0.05f * std::fabs(ref.at(0, 0)));
}

TEST(AnalogMatmul, DacStatsCountOnlyAcceptedPassUnderBoundManagement) {
  // Regression: bound-management retries used to re-count every DAC
  // sample per attempt, inflating dac_samples (and deflating the clip
  // fraction) by the retry multiplicity. A retry replays the SAME input
  // samples at a different alpha, so converter traffic must count the
  // accepted pass once; retry work is reported separately in bm_retries.
  Matrix w(64, 4);
  w.fill(0.9f);
  Matrix x(3, 64);
  x.fill(0.7f);  // |sum| ~ 44 >> adc_bound: every token saturates
  TileConfig cfg = TileConfig::ideal();
  cfg.dac_bits = 7;
  cfg.adc_bits = 7;
  cfg.adc_bound = 12.0f;
  cfg.bound_management = true;
  cfg.bm_max_iters = 4;
  AnalogMatmul unit(w, {}, cfg, 19);
  unit.forward(x);
  EXPECT_GT(unit.stats().bm_retries, 0);
  // 3 tokens x 64 inputs, regardless of how many bound-management
  // attempts each token needed.
  EXPECT_EQ(unit.stats().dac_samples, 3 * 64);
  // The ADC, by contrast, physically re-reads on every attempt: its
  // counter must keep counting all passes.
  EXPECT_EQ(unit.adc_reads(),
            3 * 4 + unit.stats().bm_retries * 4);
}

TEST(AnalogMatmul, DeterministicForwardGivenSeed) {
  const Matrix w = random_matrix(48, 48, 20);
  const Matrix x = random_matrix(4, 48, 21, 1.0f);
  const TileConfig cfg;  // full Table II noise
  const Matrix y1 = AnalogMatmul(w, {}, cfg, 22).forward(x);
  const Matrix y2 = AnalogMatmul(w, {}, cfg, 22).forward(x);
  EXPECT_EQ(0.0, ops::mse(y1, y2));
  const Matrix y3 = AnalogMatmul(w, {}, cfg, 23).forward(x);
  EXPECT_GT(ops::mse(y1, y3), 0.0);
}

TEST(AnalogMatmul, ValidatesArguments) {
  const Matrix w = random_matrix(8, 8, 24);
  EXPECT_THROW(AnalogMatmul(w, std::vector<float>(4, 1.0f), TileConfig::ideal(), 1),
               std::invalid_argument);
  std::vector<float> bad_s(8, 1.0f);
  bad_s[3] = 0.0f;
  EXPECT_THROW(AnalogMatmul(w, bad_s, TileConfig::ideal(), 1),
               std::invalid_argument);
  bad_s[3] = -2.0f;
  EXPECT_THROW(AnalogMatmul(w, bad_s, TileConfig::ideal(), 1),
               std::invalid_argument);
  AnalogMatmul unit(w, {}, TileConfig::ideal(), 1);
  EXPECT_THROW(unit.forward(Matrix(2, 4)), std::invalid_argument);
}

TEST(AnalogMatmul, StatsAccumulateAndReset) {
  const Matrix w = random_matrix(16, 8, 25);
  const Matrix x = random_matrix(3, 16, 26, 1.0f);
  TileConfig cfg = TileConfig::ideal();
  cfg.dac_bits = 7;
  AnalogMatmul unit(w, {}, cfg, 27);
  unit.forward(x);
  EXPECT_EQ(unit.stats().alpha_count, 3);
  EXPECT_EQ(unit.stats().dac_samples, 3 * 16);
  EXPECT_GT(unit.mean_alpha(), 0.0);
  unit.reset_stats();
  EXPECT_EQ(unit.stats().alpha_count, 0);

  // reset_stats must also clear the per-tile ADC counters, not just the
  // array-level input stats (saturation rates would otherwise leak
  // across measurement windows).
  TileConfig adc_cfg = TileConfig::ideal();
  adc_cfg.adc_bits = 7;
  adc_cfg.adc_bound = 0.25f;  // tight full scale: guarantees saturations
  AnalogMatmul sat(w, {}, adc_cfg, 28);
  sat.forward(x);
  EXPECT_EQ(sat.adc_reads(), 3 * 8);
  EXPECT_GT(sat.adc_saturations(), 0);
  EXPECT_GT(sat.adc_saturation_rate(), 0.0);
  sat.reset_stats();
  EXPECT_EQ(sat.adc_reads(), 0);
  EXPECT_EQ(sat.adc_saturations(), 0);
  EXPECT_EQ(sat.adc_saturation_rate(), 0.0);
}

}  // namespace
}  // namespace nora::cim
