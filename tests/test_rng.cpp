// Tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace nora::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, GaussianMoments) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0.0, sq = 0.0, quad = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
    quad += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
  EXPECT_NEAR(quad / n, 3.0, 0.15);  // Gaussian kurtosis (non-excess)
}

TEST(Rng, GaussianMeanStddev) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sq += (g - 5.0) * (g - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng a = parent.split("alpha");
  Rng b = parent.split("beta");
  Rng a2 = Rng(99).split("alpha");
  int same_ab = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, a2.next_u64());  // label-stable
    same_ab += va == b.next_u64();
  }
  EXPECT_LT(same_ab, 2);
}

TEST(Rng, DeriveSeedLabelSensitive) {
  EXPECT_NE(derive_seed(1, "x"), derive_seed(1, "y"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(2, "x"));
  EXPECT_EQ(derive_seed(5, "tile-0"), derive_seed(5, "tile-0"));
}

// The batched fill is the analog hot path's replacement for per-draw
// gaussian() calls; bit-identity with the sequential sequence — cache
// semantics included — is what keeps every golden output unchanged.
TEST(Rng, GaussianFillMatchesSequentialDrawsBitForBit) {
  for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1001u}) {
    Rng seq(321), fill(321);
    std::vector<double> want(n), got(n);
    for (auto& v : want) v = seq.gaussian();
    fill.gaussian_fill(got);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(want[i], got[i]) << n;
    // End state identical too: the next draws must agree (this is what
    // proves the odd-count leftover stays in the cache).
    for (int i = 0; i < 5; ++i) ASSERT_EQ(seq.gaussian(), fill.gaussian()) << n;
  }
}

TEST(Rng, GaussianFillInterleavesWithSingleDraws) {
  // fills and single draws in any mixture == one long single-draw run.
  Rng seq(777), mix(777);
  std::vector<double> ref(1 + 3 + 1 + 4 + 5);
  for (auto& v : ref) v = seq.gaussian();
  std::size_t i = 0;
  std::vector<double> buf;
  ASSERT_EQ(ref[i++], mix.gaussian());  // cache now populated
  buf.assign(3, 0.0);
  mix.gaussian_fill(buf);  // consumes the cached draw first
  for (double v : buf) ASSERT_EQ(ref[i++], v);
  ASSERT_EQ(ref[i++], mix.gaussian());
  buf.assign(4, 0.0);
  mix.gaussian_fill(buf);
  for (double v : buf) ASSERT_EQ(ref[i++], v);
  buf.assign(5, 0.0);
  mix.gaussian_fill(buf);
  for (double v : buf) ASSERT_EQ(ref[i++], v);
}

TEST(Rng, ScaledGaussianFillMatchesSequentialScaledDraws) {
  for (const std::size_t n : {1u, 2u, 9u, 128u}) {
    Rng seq(55), fill(55);
    seq.gaussian();   // leave a cached second draw behind
    fill.gaussian();
    std::vector<float> want(n), got(n);
    for (auto& v : want) v = static_cast<float>(seq.gaussian(0.25, 1.75));
    fill.gaussian_fill(got, 0.25, 1.75);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(want[i], got[i]) << n;
    ASSERT_EQ(seq.gaussian(), fill.gaussian()) << n;
  }
}

}  // namespace
}  // namespace nora::util
