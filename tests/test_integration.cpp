// End-to-end integration test: train a micro LLM with planted outlier
// channels, deploy it on the simulated analog hardware at the paper's
// Table II operating point, and verify the paper's headline ordering:
//
//   digital fp32  >=  NORA analog  >>  naive analog.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "train/trainer.hpp"

namespace nora {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static eval::SynthLambadaConfig task_cfg() {
    eval::SynthLambadaConfig t;
    t.n_queries = 4;
    return t;
  }

  // Train once for the whole suite (a few seconds).
  static nn::TransformerLM* trained_model() {
    static std::unique_ptr<nn::TransformerLM> model = [] {
      nn::TransformerConfig arch;
      const auto t = task_cfg();
      arch.vocab_size = t.vocab_size();
      arch.max_seq = t.seq_len;
      arch.d_model = 48;
      arch.n_layers = 2;
      arch.n_heads = 4;
      arch.d_ff = 96;
      arch.seed = 11;
      model::OutlierSpec outliers{0.08f, 22.0f, 38.0f, 11};
      arch.norm_gain = model::planted_gains(arch.d_model, outliers);
      auto m = std::make_unique<nn::TransformerLM>(arch);
      model::compensate_planted_gains(*m);
      train::TrainConfig tc;
      tc.steps = 1200;
      tc.eval_every = 50;
      tc.target_accuracy = 0.95;
      tc.verbose = false;
      train::train_lm(*m, eval::SynthLambada(task_cfg()), tc);
      return m;
    }();
    return model.get();
  }

  static double eval_accuracy(nn::TransformerLM& m) {
    eval::EvalOptions eo;
    eo.n_examples = 96;
    eval::SynthLambadaConfig t = task_cfg();
    t.n_queries = 1;
    return eval::evaluate(m, eval::SynthLambada(t), eo).accuracy;
  }
};

TEST_F(IntegrationTest, TrainingSolvesTheTask) {
  EXPECT_GE(eval_accuracy(*trained_model()), 0.9);
}

TEST_F(IntegrationTest, HeadlineOrderingDigitalGeNoraGtNaive) {
  nn::TransformerLM& model = *trained_model();
  model.to_digital();
  const double fp = eval_accuracy(model);

  const eval::SynthLambada task(task_cfg());
  core::DeployOptions naive;
  naive.tile = cim::TileConfig::paper_table2();
  naive.nora.enabled = false;
  core::deploy_analog(model, task, naive);
  const double acc_naive = eval_accuracy(model);

  model.to_digital();
  core::DeployOptions nora;
  nora.tile = cim::TileConfig::paper_table2();
  nora.nora.enabled = true;
  core::deploy_analog(model, task, nora);
  const double acc_nora = eval_accuracy(model);
  model.to_digital();

  // The paper's headline: naive deployment is catastrophic, NORA is
  // near-lossless (Fig. 5a).
  EXPECT_LT(acc_naive, fp - 0.10);
  EXPECT_GE(acc_nora, fp - 0.05);
  EXPECT_GT(acc_nora, acc_naive + 0.10);
}

TEST_F(IntegrationTest, NoraIsExactWithoutNoise) {
  nn::TransformerLM& model = *trained_model();
  model.to_digital();
  const double fp = eval_accuracy(model);
  const eval::SynthLambada task(task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.nora.enabled = true;
  core::deploy_analog(model, task, opts);
  EXPECT_EQ(eval_accuracy(model), fp);
  model.to_digital();
}

TEST_F(IntegrationTest, QuantizationOnlyHurtsAndNoraRecovers) {
  nn::TransformerLM& model = *trained_model();
  model.to_digital();
  const double fp = eval_accuracy(model);
  const eval::SynthLambada task(task_cfg());
  // 7-bit converters alone (no other noise).
  cim::TileConfig q = cim::TileConfig::ideal();
  q.dac_bits = 7;
  q.adc_bits = 7;
  core::DeployOptions naive;
  naive.tile = q;
  naive.nora.enabled = false;
  core::deploy_analog(model, task, naive);
  const double acc_naive = eval_accuracy(model);
  model.to_digital();
  core::DeployOptions nora;
  nora.tile = q;
  nora.nora.enabled = true;
  core::deploy_analog(model, task, nora);
  const double acc_nora = eval_accuracy(model);
  model.to_digital();
  EXPECT_GE(acc_nora, acc_naive);
  EXPECT_GE(acc_nora, fp - 0.05);
}

}  // namespace
}  // namespace nora
