// Cross-validation: the analytic cost model's conversion counts must
// match what the tile simulator actually performs (its ADC-read and
// DAC-sample counters). Keeps the two views of the hardware in sync.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/analog_matmul.hpp"
#include "cost/cost_model.hpp"
#include "timing/hw_model.hpp"

namespace nora {
namespace {

TEST(CostSimConsistency, ConversionCountsMatchSimulator) {
  const std::int64_t k = 90, n = 70, tokens = 5;
  util::Rng rng(1);
  Matrix w(k, n);
  w.fill_gaussian(rng, 0.5f);
  Matrix x(tokens, k);
  x.fill_gaussian(rng, 1.0f);

  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;  // force a 3 x 3 tile grid
  cfg.tile_cols = 32;
  cfg.bound_management = false;

  cim::AnalogMatmul unit(w, {}, cfg, 2);
  unit.forward(x);

  // Cost model's implied conversion counts.
  const cost::DeviceCosts d;
  const auto c = cost::analog_linear_cost(k, n, tokens, cfg, d);
  const double row_blocks = 3.0;  // ceil(90 / 32)
  const double expected_adc = tokens * row_blocks * n;
  const double expected_dac = static_cast<double>(tokens) * k;

  EXPECT_EQ(static_cast<double>(unit.adc_reads()), expected_adc);
  EXPECT_EQ(static_cast<double>(unit.stats().dac_samples), expected_dac);
  // And the model's energies are built from exactly those counts.
  EXPECT_NEAR(c.adc_pj,
              expected_adc * d.adc_fom_fj_per_step * cfg.adc_steps() * 1e-3,
              1e-6);
  EXPECT_NEAR(c.dac_pj,
              expected_dac * d.dac_fom_fj_per_step * cfg.dac_steps() * 1e-3,
              1e-6);
}

TEST(CostSimConsistency, BoundManagementAddsReads) {
  // Iterative bound management re-runs saturated blocks; the simulator's
  // ADC counter exceeds the static model's count in that regime.
  Matrix w(64, 4);
  w.fill(0.9f);
  Matrix x(2, 64);
  x.fill(0.7f);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.adc_bits = 7;
  cfg.adc_bound = 12.0f;
  cfg.bound_management = true;
  cfg.bm_max_iters = 4;
  cim::AnalogMatmul unit(w, {}, cfg, 3);
  unit.forward(x);
  EXPECT_GT(unit.stats().bm_retries, 0);
  EXPECT_GT(unit.adc_reads(), 2 * 4);  // more than one pass per token
}

TEST(CostSimConsistency, EventDrivenDegeneratesToAnalytic) {
  // A single unpipelined tile has no resource contention, so the
  // event-driven simulator must land EXACTLY on the analytic model's
  // tokens x tile_read_latency — the lock-step contract between
  // timing::HwModel and cost::analog_linear_cost.
  timing::TimingConfig cfg;
  cfg.enabled = true;
  cfg.pipeline_depth = 1;
  const timing::HwModel hw(cfg);

  const std::int64_t tokens = 7, k = 24, n = 16;
  timing::TimingOp op;
  op.kind = timing::OpKind::kAnalogMvm;
  op.layer = "probe";
  op.rows = tokens;
  op.k = k;
  op.n = n;
  op.row_blocks = 1;
  op.col_blocks = 1;

  const cim::TileConfig tile = cim::TileConfig::paper_table2();
  const auto analytic =
      cost::analog_linear_cost(k, n, tokens, tile, cfg.costs);
  EXPECT_EQ(hw.analog_op_ps(op),
            std::llround(analytic.latency_ns * 1000.0));
  // And the stage split re-sums to the whole tile read exactly.
  EXPECT_EQ(hw.dac_ps() + hw.xbar_ps() + hw.adc_ps(), hw.tile_ps());

  // Multi-tile grids only ever ADD serialization (shared ADC column
  // groups, inter-tile links) on top of the analytic floor.
  op.row_blocks = 2;
  op.col_blocks = 3;
  EXPECT_GT(hw.analog_op_ps(op), std::llround(analytic.latency_ns * 1000.0));
}

TEST(CostSimConsistency, DigitalOpMatchesAnalyticLatency) {
  timing::TimingConfig cfg;
  cfg.enabled = true;
  const timing::HwModel hw(cfg);
  const std::int64_t tokens = 5, k = 96, n = 48;

  timing::TimingOp op;
  op.kind = timing::OpKind::kDigitalGemm;
  op.layer = "fp32";
  op.rows = tokens;
  op.k = k;
  op.n = n;
  const auto fp32 = cost::digital_linear_cost(k, n, tokens, 32, cfg.costs);
  EXPECT_EQ(hw.digital_op_ps(op), std::llround(fp32.latency_ns * 1000.0));

  op.kind = timing::OpKind::kInt8Gemm;
  op.layer = "int8";
  const auto int8 = cost::digital_linear_cost(k, n, tokens, 8, cfg.costs);
  EXPECT_EQ(hw.digital_op_ps(op), std::llround(int8.latency_ns * 1000.0));
}

}  // namespace
}  // namespace nora
