// Tests for the runtime integrity subsystem: ABFT checksum columns
// (exact-zero residual property, single-flip detection, data-path
// invariance), refresh-from-seed, the IntegrityMonitor escalation
// ladder, and the core satellites (loud set_read_time, stats skipping
// degraded layers).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cim/analog_matmul.hpp"
#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "nn/transformer.hpp"
#include "runtime/integrity_monitor.hpp"
#include "tensor/ops.hpp"

namespace nora {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

// ---------------------------------------------------------------------
// ABFT checksum property: with every noise/fault knob off the residual
// is exactly zero — no float-rounding floor — for every tile shape,
// including ragged last tiles, NORA-rescaled weights, spare-remapped
// columns and post-repair programming noise.

struct AbftShape {
  std::int64_t rows, cols;
  int tile_rows, tile_cols;
  int spare_cols;
  float dead_col_rate;
  float prog_noise_scale;
  bool nora_s;
};

class AbftZeroResidual : public ::testing::TestWithParam<AbftShape> {};

TEST_P(AbftZeroResidual, ExactlyZeroWhenKnobsOff) {
  const AbftShape p = GetParam();
  const Matrix w = random_matrix(p.rows, p.cols, 7 + p.rows);
  const Matrix x = random_matrix(3, p.rows, 11 + p.cols, 1.0f);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.tile_rows = p.tile_rows;
  cfg.tile_cols = p.tile_cols;
  cfg.abft_checksum = true;
  cfg.spare_cols = p.spare_cols;
  cfg.faults.dead_col_rate = p.dead_col_rate;
  cfg.prog_noise_scale = p.prog_noise_scale;
  if (p.prog_noise_scale > 0.0f) cfg.max_program_retries = 2;
  std::vector<float> s;
  if (p.nora_s) {
    util::Rng sr(99);
    s.resize(static_cast<std::size_t>(p.rows));
    for (auto& v : s) v = static_cast<float>(std::exp(sr.gaussian(0.0, 0.5)));
  }
  cim::AnalogMatmul unit(w, s, cfg, 4242);
  ASSERT_TRUE(unit.abft_enabled());
  unit.forward(x);
  const cim::AbftStats stats = unit.abft_stats();
  EXPECT_GT(stats.checks, 0);
  EXPECT_EQ(stats.flags, 0);
  // Exact: the as-programmed signature and the live checksum read run
  // the identical accumulation, so an unchanged array is bitwise zero.
  EXPECT_EQ(stats.residual_max, 0.0);
  EXPECT_EQ(stats.residual_abs_sum, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    TileShapeSweep, AbftZeroResidual,
    ::testing::Values(
        AbftShape{64, 48, 32, 24, 0, 0.0f, 0.0f, false},   // exact grid
        AbftShape{70, 50, 32, 24, 0, 0.0f, 0.0f, false},   // ragged both dims
        AbftShape{33, 17, 32, 24, 0, 0.0f, 0.0f, false},   // 1-wide last tiles
        AbftShape{16, 8, 64, 64, 0, 0.0f, 0.0f, false},    // single small tile
        AbftShape{70, 50, 32, 24, 0, 0.0f, 0.0f, true},    // NORA rescale
        AbftShape{64, 40, 32, 28, 8, 0.3f, 0.0f, false},   // spare-remapped
        AbftShape{70, 50, 32, 24, 0, 0.0f, 4.0f, false},   // post-repair noise
        AbftShape{64, 40, 32, 28, 8, 0.3f, 4.0f, true}));  // everything

// A single device flipped after deployment must flag within ONE forward
// pass when the threshold is noise-free (any change is detectable).
TEST(AbftDetection, SingleFlippedDeviceFlagsWithinOneForward) {
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(1, 70, 202, 1.0f);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cfg.abft_checksum = true;
  cim::AnalogMatmul unit(w, {}, cfg, 4242);
  unit.forward(x);
  EXPECT_EQ(unit.abft_stats().flags, 0);
  unit.reset_stats();
  unit.wear_stuck(/*k=*/5, /*n=*/7, 0.77f);  // silent post-deployment flip
  unit.forward(x);
  EXPECT_GE(unit.abft_stats().flags, 1);
  EXPECT_GT(unit.abft_stats().residual_max, 0.0);
}

// Under the full Table II noise stack the 4-sigma threshold keeps the
// false-positive rate negligible.
TEST(AbftDetection, NoFalsePositiveStormUnderTableIINoise) {
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(8, 70, 202, 1.0f);
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cfg.abft_checksum = true;
  cim::AnalogMatmul unit(w, {}, cfg, 4242);
  unit.forward(x);
  const cim::AbftStats stats = unit.abft_stats();
  EXPECT_GT(stats.checks, 0);
  EXPECT_LE(stats.flag_rate(), 0.05);
}

// Enabling the checksum column must not perturb the data path: the
// checksum read draws from a dedicated RNG stream.
TEST(AbftDetection, DataPathBitIdenticalWithAbftOnOrOff) {
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(5, 70, 202, 1.0f);
  cim::TileConfig off = cim::TileConfig::paper_table2();
  off.tile_rows = 32;
  off.tile_cols = 24;
  cim::TileConfig on = off;
  on.abft_checksum = true;
  cim::AnalogMatmul unit_off(w, {}, off, 4242);
  cim::AnalogMatmul unit_on(w, {}, on, 4242);
  for (int pass = 0; pass < 2; ++pass) {
    const Matrix y_off = unit_off.forward(x);
    const Matrix y_on = unit_on.forward(x);
    ASSERT_EQ(y_off.rows(), y_on.rows());
    for (std::int64_t i = 0; i < y_off.size(); ++i) {
      ASSERT_EQ(y_off.data()[i], y_on.data()[i]) << "pass " << pass << " i=" << i;
    }
  }
}

// Transient upsets clear on the next re-read; wear survives it.
TEST(AbftDetection, ReReadClearsUpsetsButNotWear) {
  const Matrix w = random_matrix(64, 48, 55);
  const Matrix x = random_matrix(2, 64, 56, 1.0f);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cfg.abft_checksum = true;
  cim::AnalogMatmul unit(w, {}, cfg, 77);
  unit.upset_device(3, 4, 0.8f);
  unit.forward(x);
  EXPECT_GT(unit.abft_stats().flags, 0);
  unit.reset_stats();
  unit.set_read_time(0.0f);  // analog re-read: effective state re-derived
  unit.forward(x);
  EXPECT_EQ(unit.abft_stats().flags, 0);

  unit.wear_stuck(3, 4, 0.8f);
  unit.reset_stats();
  unit.set_read_time(0.0f);
  unit.forward(x);
  EXPECT_GT(unit.abft_stats().flags, 0) << "wear must survive a re-read";
  ASSERT_EQ(unit.wear().size(), 1u);
}

// ---------------------------------------------------------------------
// Model-level fixtures: a micro transformer (untrained — the runtime
// machinery cares about state management, not accuracy).

eval::SynthLambadaConfig micro_task_cfg() {
  eval::SynthLambadaConfig t;
  t.n_queries = 4;
  return t;
}

std::unique_ptr<nn::TransformerLM> micro_model() {
  nn::TransformerConfig arch;
  const auto t = micro_task_cfg();
  arch.vocab_size = t.vocab_size();
  arch.max_seq = t.seq_len;
  arch.d_model = 32;
  arch.n_layers = 1;
  arch.n_heads = 4;
  arch.d_ff = 64;
  arch.seed = 5;
  return std::make_unique<nn::TransformerLM>(arch);
}

void serve_traffic(nn::TransformerLM& model, const eval::SynthLambada& task) {
  for (const auto& tokens : task.calibration_set(2)) {
    model.forward(tokens, /*training=*/false);
  }
}

// Refreshing a layer from its deployment seed restores the exact
// as-deployed analog state (same RNG streams, drift reset).
TEST(RefreshAnalogLayer, RestoresAsDeployedStateBitwise) {
  const Matrix x = random_matrix(3, 32, 91, 1.0f);
  util::Rng wrng(17);
  nn::Linear lin("layer", 32, 24, wrng, 0.3f);
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 16;
  cfg.tile_cols = 16;
  cfg.drift_enabled = true;
  cfg.abft_checksum = true;
  const std::uint64_t deploy_seed = 2025;
  lin.to_analog(cfg, {}, util::derive_seed(deploy_seed, lin.name()));
  const Matrix y0 = lin.forward(x);
  lin.analog()->set_read_time(86400.0f);
  const Matrix y_drift = lin.forward(x);
  EXPECT_GT(ops::mse(y_drift, y0), 0.0);
  core::refresh_analog_layer(lin, deploy_seed);
  const Matrix y1 = lin.forward(x);
  for (std::int64_t i = 0; i < y0.size(); ++i) {
    ASSERT_EQ(y0.data()[i], y1.data()[i]) << "i=" << i;
  }
}

TEST(RefreshAnalogLayer, ReplaysWearOntoFreshProgram) {
  const Matrix x = random_matrix(2, 32, 92, 1.0f);
  util::Rng wrng(18);
  nn::Linear lin("layer", 32, 24, wrng, 0.3f);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.tile_rows = 16;
  cfg.tile_cols = 16;
  cfg.abft_checksum = true;
  lin.to_analog(cfg, {}, util::derive_seed(1u, lin.name()));
  lin.analog()->wear_stuck(4, 6, 0.77f);
  core::refresh_analog_layer(lin, 1u);
  ASSERT_EQ(lin.analog()->wear().size(), 1u);
  lin.analog()->reset_stats();
  lin.forward(x);
  EXPECT_GT(lin.analog()->abft_stats().flags, 0)
      << "wear must survive a refresh: reprogramming cannot fix silicon";
  lin.to_digital();
  EXPECT_THROW(core::refresh_analog_layer(lin, 1u), std::logic_error);
}

// Satellite: set_read_time must fail loudly when drift was never
// deployed — a lifetime sweep would otherwise silently measure nothing.
TEST(SetReadTime, ThrowsLoudlyWithoutDriftDeployment) {
  auto model = micro_model();
  const eval::SynthLambada task(micro_task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.nora.enabled = false;
  core::deploy_analog(*model, task, opts);
  EXPECT_THROW(core::set_read_time(*model, 3600.0f), std::logic_error);
  EXPECT_NO_THROW(core::set_read_time(*model, 0.0f));  // t = 0 is a no-op

  model->to_digital();
  opts.tile.drift_enabled = true;
  core::deploy_analog(*model, task, opts);
  EXPECT_NO_THROW(core::set_read_time(*model, 3600.0f));
}

// Satellite: stats helpers skip degraded-to-digital and never-forwarded
// layers instead of emitting misleading zero rows.
TEST(ScalingFactorStats, SkipsDegradedAndIdleLayers) {
  auto model = micro_model();
  const eval::SynthLambada task(micro_task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.nora.enabled = false;
  core::deploy_analog(*model, task, opts);
  // No forwards yet: no layer has alpha statistics, so no rows at all.
  EXPECT_TRUE(core::scaling_factor_stats(*model).empty());
  const auto linears = model->linear_layers();
  linears[0]->to_digital();  // simulate a degraded layer
  serve_traffic(*model, task);
  const auto stats = core::scaling_factor_stats(*model);
  EXPECT_EQ(stats.size(), linears.size() - 1);
  for (const auto& st : stats) {
    EXPECT_NE(st.layer, linears[0]->name());
    EXPECT_GT(st.alpha_gamma_gmax, 0.0);
  }
}

// ---------------------------------------------------------------------
// IntegrityMonitor escalation ladder.

TEST(IntegrityMonitor, DriftBeyondBudgetWalksReReadThenRefresh) {
  auto model = micro_model();
  const eval::SynthLambada task(micro_task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.tile.drift_enabled = true;
  opts.tile.abft_checksum = true;
  opts.nora.enabled = false;
  faults::DeploymentReport report;
  core::deploy_analog(*model, task, opts, &report);

  runtime::MonitorConfig mc;
  mc.policy = runtime::RefreshPolicy::kWatchdog;
  mc.ewma_alpha = 1.0;  // judge each window on its own (deterministic)
  mc.flag_rate_budget = 0.01;
  mc.fallback_after_refreshes = 1;
  runtime::IntegrityMonitor monitor(*model, opts.seed, mc, &report);

  monitor.advance_to(2592000.0f);  // 1 month: drift spread flags everywhere
  serve_traffic(*model, task);
  EXPECT_GT(monitor.inspect(), 0);  // rung 1: analog re-read
  EXPECT_GT(monitor.total_rereads(), 0);
  EXPECT_EQ(monitor.total_refreshes(), 0);

  serve_traffic(*model, task);
  EXPECT_GT(monitor.inspect(), 0);  // re-read cannot cure drift -> refresh
  EXPECT_GT(monitor.total_refreshes(), 0);
  EXPECT_EQ(monitor.total_fallbacks(), 0);

  serve_traffic(*model, task);
  EXPECT_EQ(monitor.inspect(), 0);  // refresh reset drift: all clean
  EXPECT_EQ(monitor.total_fallbacks(), 0);
  EXPECT_TRUE(model->is_analog());

  // Report counters mirror the monitor's per-layer health.
  for (const auto& h : monitor.health()) {
    const faults::LayerReport* rep = report.find(h.layer);
    ASSERT_NE(rep, nullptr) << h.layer;
    EXPECT_EQ(rep->runtime_rereads, h.rereads);
    EXPECT_EQ(rep->runtime_refreshes, h.refreshes);
    EXPECT_FALSE(rep->runtime_fallback);
    EXPECT_GT(rep->abft_checks, 0);
  }
  EXPECT_EQ(report.runtime_rereads(), monitor.total_rereads());
  EXPECT_EQ(report.runtime_refreshes(), monitor.total_refreshes());
}

TEST(IntegrityMonitor, WearSurvivingRefreshFallsBackToDigital) {
  auto model = micro_model();
  const eval::SynthLambada task(micro_task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.tile.abft_checksum = true;
  opts.nora.enabled = false;
  faults::DeploymentReport report;
  core::deploy_analog(*model, task, opts, &report);

  const auto linears = model->linear_layers();
  nn::Linear* victim = linears[1];
  victim->analog()->wear_stuck(2, 3, 0.77f);  // permanent silicon damage

  runtime::MonitorConfig mc;
  mc.policy = runtime::RefreshPolicy::kWatchdog;
  mc.ewma_alpha = 1.0;
  mc.flag_rate_budget = 0.01;
  mc.fallback_after_refreshes = 1;
  runtime::IntegrityMonitor monitor(*model, opts.seed, mc, &report);

  // Ladder: re-read (window 1) -> refresh + wear replay (window 2) ->
  // digital fallback (window 3).
  for (int window = 0; window < 3; ++window) {
    serve_traffic(*model, task);
    EXPECT_GT(monitor.inspect(), 0) << "window " << window;
  }
  EXPECT_FALSE(victim->is_analog());
  const runtime::LayerHealth* h = monitor.find(victim->name());
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->fallback);
  EXPECT_EQ(h->rereads, 1);
  EXPECT_EQ(h->refreshes, 1);
  const faults::LayerReport* rep = report.find(victim->name());
  ASSERT_NE(rep, nullptr);
  EXPECT_TRUE(rep->runtime_fallback);
  EXPECT_FALSE(rep->analog);
  EXPECT_EQ(report.runtime_fallbacks(), 1);
  // The healthy layers were never touched.
  for (auto* lin : linears) {
    if (lin == victim) continue;
    EXPECT_TRUE(lin->is_analog());
    const runtime::LayerHealth* hh = monitor.find(lin->name());
    ASSERT_NE(hh, nullptr);
    EXPECT_EQ(hh->rereads + hh->refreshes, 0) << lin->name();
  }
  // And the serving loop keeps running cleanly after the fallback.
  serve_traffic(*model, task);
  EXPECT_EQ(monitor.inspect(), 0);
}

TEST(IntegrityMonitor, PeriodicPolicyRefreshesOnSchedule) {
  auto model = micro_model();
  const eval::SynthLambada task(micro_task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.tile.drift_enabled = true;
  opts.nora.enabled = false;
  core::deploy_analog(*model, task, opts);
  const int n_analog = static_cast<int>(model->linear_layers().size());

  runtime::MonitorConfig mc;
  mc.policy = runtime::RefreshPolicy::kPeriodic;
  mc.refresh_period_s = 100.0f;
  runtime::IntegrityMonitor monitor(*model, opts.seed, mc);
  EXPECT_EQ(monitor.advance_to(50.0f), 0);
  EXPECT_EQ(monitor.advance_to(150.0f), n_analog);  // every layer aged out
  EXPECT_EQ(monitor.advance_to(200.0f), 0);         // epochs were reset
  EXPECT_EQ(monitor.total_refreshes(), n_analog);
  EXPECT_THROW(monitor.advance_to(100.0f), std::invalid_argument);
}

TEST(IntegrityMonitor, VirtualClockZeroAdvanceIsLegal) {
  // advance_to(now()) is a zero-duration window: legal, side-effect
  // free, and terminates immediately (only strictly-backward time is
  // rejected). A zero refresh period likewise means "disabled", not a
  // zero-length epoch that would refresh every layer on every call.
  auto model = micro_model();
  const eval::SynthLambada task(micro_task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.nora.enabled = false;
  core::deploy_analog(*model, task, opts);

  runtime::MonitorConfig mc;
  mc.policy = runtime::RefreshPolicy::kPeriodic;
  mc.refresh_period_s = 100.0f;
  runtime::IntegrityMonitor monitor(*model, opts.seed, mc);
  EXPECT_EQ(monitor.advance_to(0.0f), 0);  // zero-advance from t=0
  monitor.advance_to(50.0f);
  EXPECT_EQ(monitor.advance_to(50.0f), 0);
  EXPECT_EQ(monitor.advance_to(50.0f), 0);  // repeatable, no spinning
  EXPECT_FLOAT_EQ(monitor.now(), 50.0f);
  EXPECT_EQ(monitor.total_refreshes(), 0);

  runtime::MonitorConfig zero;
  zero.policy = runtime::RefreshPolicy::kPeriodic;
  zero.refresh_period_s = 0.0f;
  runtime::IntegrityMonitor disabled(*model, opts.seed, zero);
  EXPECT_EQ(disabled.advance_to(1e6f), 0);
  EXPECT_EQ(disabled.total_refreshes(), 0);
}

TEST(IntegrityMonitor, NeverPolicyObservesWithoutActing) {
  auto model = micro_model();
  const eval::SynthLambada task(micro_task_cfg());
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.tile.drift_enabled = true;
  opts.tile.abft_checksum = true;
  opts.nora.enabled = false;
  faults::DeploymentReport report;
  core::deploy_analog(*model, task, opts, &report);

  runtime::MonitorConfig mc;
  mc.policy = runtime::RefreshPolicy::kNever;
  mc.ewma_alpha = 1.0;
  mc.flag_rate_budget = 0.01;
  runtime::IntegrityMonitor monitor(*model, opts.seed, mc, &report);
  monitor.advance_to(2592000.0f);
  serve_traffic(*model, task);
  EXPECT_EQ(monitor.inspect(), 0);  // records, never acts
  EXPECT_EQ(monitor.total_rereads() + monitor.total_refreshes(), 0);
  EXPECT_TRUE(model->is_analog());
  bool any_flags = false;
  for (const auto& l : report.layers) any_flags |= l.abft_flags > 0;
  EXPECT_TRUE(any_flags) << "the symptom must still be on record";
  EXPECT_NE(report.to_string().find("runtime:"), std::string::npos);
}

TEST(RefreshPolicy, RoundTripsThroughStrings) {
  for (const auto p : {runtime::RefreshPolicy::kNever,
                       runtime::RefreshPolicy::kPeriodic,
                       runtime::RefreshPolicy::kWatchdog}) {
    EXPECT_EQ(runtime::refresh_policy_from_string(runtime::to_string(p)), p);
  }
  EXPECT_THROW(runtime::refresh_policy_from_string("sometimes"),
               std::invalid_argument);
}

TEST(RefreshPolicy, ParsingIsCaseInsensitive) {
  // CLI flags and config files arrive in every capitalization.
  EXPECT_EQ(runtime::refresh_policy_from_string("Watchdog"),
            runtime::RefreshPolicy::kWatchdog);
  EXPECT_EQ(runtime::refresh_policy_from_string("PERIODIC"),
            runtime::RefreshPolicy::kPeriodic);
  EXPECT_EQ(runtime::refresh_policy_from_string("NeVeR"),
            runtime::RefreshPolicy::kNever);
  // Unknown names still throw, echoing the original spelling.
  try {
    runtime::refresh_policy_from_string("SomeTimes");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("SomeTimes"), std::string::npos);
  }
}

}  // namespace
}  // namespace nora
