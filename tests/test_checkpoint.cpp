// Tests for checkpoint save/load and matrix serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"
#include "train/checkpoint.hpp"
#include "util/crc32.hpp"

namespace nora {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, MatrixRoundTrip) {
  util::Rng rng(1);
  Matrix m(13, 7);
  m.fill_gaussian(rng, 2.0f);
  std::stringstream ss;
  write_matrix(ss, m);
  const Matrix back = read_matrix(ss);
  EXPECT_EQ(back.rows(), 13);
  EXPECT_EQ(back.cols(), 7);
  EXPECT_EQ(ops::mse(m, back), 0.0);
}

TEST(Serialize, DetectsCorruption) {
  std::stringstream empty;
  EXPECT_THROW(read_matrix(empty), std::runtime_error);
  std::stringstream bad("XXXXgarbage-not-a-matrix");
  EXPECT_THROW(read_matrix(bad), std::runtime_error);
  // Truncated payload.
  Matrix m(4, 4);
  std::stringstream ss;
  write_matrix(ss, m);
  std::string data = ss.str();
  data.resize(data.size() - 8);
  std::stringstream truncated(data);
  EXPECT_THROW(read_matrix(truncated), std::runtime_error);
}

TEST(Checkpoint, RoundTripPreservesPredictions) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 20;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 12;
  cfg.norm_gain = std::vector<float>(16, 1.0f);
  cfg.norm_gain[5] = 7.0f;
  nn::TransformerLM model(cfg);
  const std::string path = temp_path("nora_test_ckpt.nckp");
  train::save_checkpoint(path, model);
  auto loaded = train::load_checkpoint(path);
  // Same architecture, same planted gains, same logits.
  EXPECT_EQ(loaded->config().norm_gain[5], 7.0f);
  EXPECT_EQ(loaded->config().mlp_kind, cfg.mlp_kind);
  const std::vector<int> tokens{1, 2, 3, 4, 5};
  const Matrix a = model.forward(tokens);
  const Matrix b = loaded->forward(tokens);
  EXPECT_EQ(ops::mse(a, b), 0.0);
  std::remove(path.c_str());
}

TEST(Crc32, MatchesKnownVectorsAndIsContinuable) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32("", 0), 0x00000000u);
  // Streaming: crc(a+b) == crc(b, crc(a)).
  const std::string a = "hello ", b = "world";
  const std::uint32_t whole = util::crc32("hello world", 11);
  EXPECT_EQ(util::crc32(b.data(), b.size(), util::crc32(a.data(), a.size())),
            whole);
}

TEST(Checkpoint, Crc32DetectsBitRotAndTruncation) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 12;
  cfg.d_model = 8;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 16;
  cfg.max_seq = 8;
  nn::TransformerLM model(cfg);
  const std::string path = temp_path("nora_test_crc.nckp");
  train::save_checkpoint(path, model);
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  // v2 header: 4-byte magic + i64 version + i64 payload size + i64 CRC.
  ASSERT_GT(bytes.size(), 28u + 64u);

  // Flip one payload bit deep inside the weights.
  std::string rotten = bytes;
  rotten[rotten.size() - 5] ^= 0x10;
  {
    std::ofstream f(path, std::ios::binary);
    f.write(rotten.data(), static_cast<std::streamsize>(rotten.size()));
  }
  try {
    train::load_checkpoint(path);
    FAIL() << "bit rot not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC-32"), std::string::npos);
  }

  // Truncate the file mid-payload.
  std::string truncated = bytes.substr(0, bytes.size() - 64);
  {
    std::ofstream f(path, std::ios::binary);
    f.write(truncated.data(), static_cast<std::streamsize>(truncated.size()));
  }
  EXPECT_THROW(train::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ReadsLegacyVersion1Files) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 12;
  cfg.d_model = 8;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 16;
  cfg.max_seq = 8;
  nn::TransformerLM model(cfg);
  const std::string path = temp_path("nora_test_v1.nckp");
  train::save_checkpoint(path, model);
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  // Rewrite as the checksum-less v1 layout: magic + version + payload
  // (the v2 payload starts after the 28-byte header).
  {
    std::ofstream f(path, std::ios::binary);
    f.write(bytes.data(), 4);                       // magic
    const std::int64_t v1 = 1;
    char vbuf[8];
    std::memcpy(vbuf, &v1, 8);
    f.write(vbuf, 8);
    f.write(bytes.data() + 28,
            static_cast<std::streamsize>(bytes.size() - 28));
  }
  auto loaded = train::load_checkpoint(path);
  const std::vector<int> tokens{1, 2, 3};
  EXPECT_EQ(ops::mse(model.forward(tokens), loaded->forward(tokens)), 0.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(train::load_checkpoint("/nonexistent/path.nckp"),
               std::runtime_error);
  const std::string path = temp_path("nora_test_corrupt.nckp");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOT A CHECKPOINT";
  }
  EXPECT_THROW(train::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nora
