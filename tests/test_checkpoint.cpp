// Tests for checkpoint save/load and matrix serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"
#include "train/checkpoint.hpp"

namespace nora {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, MatrixRoundTrip) {
  util::Rng rng(1);
  Matrix m(13, 7);
  m.fill_gaussian(rng, 2.0f);
  std::stringstream ss;
  write_matrix(ss, m);
  const Matrix back = read_matrix(ss);
  EXPECT_EQ(back.rows(), 13);
  EXPECT_EQ(back.cols(), 7);
  EXPECT_EQ(ops::mse(m, back), 0.0);
}

TEST(Serialize, DetectsCorruption) {
  std::stringstream empty;
  EXPECT_THROW(read_matrix(empty), std::runtime_error);
  std::stringstream bad("XXXXgarbage-not-a-matrix");
  EXPECT_THROW(read_matrix(bad), std::runtime_error);
  // Truncated payload.
  Matrix m(4, 4);
  std::stringstream ss;
  write_matrix(ss, m);
  std::string data = ss.str();
  data.resize(data.size() - 8);
  std::stringstream truncated(data);
  EXPECT_THROW(read_matrix(truncated), std::runtime_error);
}

TEST(Checkpoint, RoundTripPreservesPredictions) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 20;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 12;
  cfg.norm_gain = std::vector<float>(16, 1.0f);
  cfg.norm_gain[5] = 7.0f;
  nn::TransformerLM model(cfg);
  const std::string path = temp_path("nora_test_ckpt.nckp");
  train::save_checkpoint(path, model);
  auto loaded = train::load_checkpoint(path);
  // Same architecture, same planted gains, same logits.
  EXPECT_EQ(loaded->config().norm_gain[5], 7.0f);
  EXPECT_EQ(loaded->config().mlp_kind, cfg.mlp_kind);
  const std::vector<int> tokens{1, 2, 3, 4, 5};
  const Matrix a = model.forward(tokens);
  const Matrix b = loaded->forward(tokens);
  EXPECT_EQ(ops::mse(a, b), 0.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(train::load_checkpoint("/nonexistent/path.nckp"),
               std::runtime_error);
  const std::string path = temp_path("nora_test_corrupt.nckp");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOT A CHECKPOINT";
  }
  EXPECT_THROW(train::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nora
