// Tests for the Matrix container and linear-algebra kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace nora {
namespace {

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::int64_t k = 0; k < a.cols(); ++k) s += double(a.at(i, k)) * b.at(k, j);
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, 1.0f);
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (std::int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
  m.at(1, 2) = 5.0f;
  EXPECT_EQ(m.at(1, 2), 5.0f);
  EXPECT_EQ(m.row(1)[2], 5.0f);
}

TEST(Matrix, ConstructFromDataValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, SliceRows) {
  Matrix m(4, 2, {0, 1, 2, 3, 4, 5, 6, 7});
  const Matrix s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.at(0, 0), 2.0f);
  EXPECT_EQ(s.at(1, 1), 5.0f);
  EXPECT_THROW(m.slice_rows(3, 2), std::out_of_range);
  EXPECT_THROW(m.slice_rows(0, 5), std::out_of_range);
}

TEST(Matrix, Transposed) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) EXPECT_EQ(m.at(i, j), t.at(j, i));
  }
}

TEST(Ops, MatmulMatchesNaive) {
  const Matrix a = random_matrix(17, 33, 1);
  const Matrix b = random_matrix(33, 9, 2);
  const Matrix c = ops::matmul(a, b);
  const Matrix ref = naive_matmul(a, b);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4);
  }
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(ops::matmul(Matrix(2, 3), Matrix(4, 2)), std::invalid_argument);
}

TEST(Ops, MatmulBtMatchesTransposedForm) {
  const Matrix a = random_matrix(5, 8, 3);
  const Matrix b = random_matrix(7, 8, 4);  // [N x K]
  const Matrix c = ops::matmul_bt(a, b);
  const Matrix ref = naive_matmul(a, b.transposed());
  ASSERT_EQ(c.rows(), 5);
  ASSERT_EQ(c.cols(), 7);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4);
  }
}

TEST(Ops, MatmulAtMatchesTransposedForm) {
  const Matrix a = random_matrix(8, 5, 5);  // [K x M]
  const Matrix b = random_matrix(8, 6, 6);  // [K x N]
  const Matrix c = ops::matmul_at(a, b);
  const Matrix ref = naive_matmul(a.transposed(), b);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4);
  }
}

TEST(Ops, MatmulAccAccumulates) {
  const Matrix a = random_matrix(3, 4, 7);
  const Matrix b = random_matrix(4, 2, 8);
  Matrix c = random_matrix(3, 2, 9);
  const Matrix before = c;
  ops::matmul_acc(a, b, c);
  const Matrix prod = ops::matmul(a, b);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], before.data()[i] + prod.data()[i], 1e-4);
  }
}

TEST(Ops, ElementwiseArithmetic) {
  Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {10, 20, 30});
  EXPECT_EQ(ops::add(a, b).at(0, 1), 22.0f);
  EXPECT_EQ(ops::sub(b, a).at(0, 2), 27.0f);
  EXPECT_EQ(ops::hadamard(a, b).at(0, 0), 10.0f);
  ops::scale_inplace(a, 2.0f);
  EXPECT_EQ(a.at(0, 2), 6.0f);
  EXPECT_THROW(ops::add(a, Matrix(2, 2)), std::invalid_argument);
}

TEST(Ops, RowVectorOps) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<float> v{1, 10, 100};
  ops::add_row_vector(a, v);
  EXPECT_EQ(a.at(0, 0), 2.0f);
  EXPECT_EQ(a.at(1, 2), 106.0f);
  ops::mul_row_vector(a, v);
  EXPECT_EQ(a.at(0, 1), 120.0f);
  ops::div_row_vector(a, v);
  EXPECT_EQ(a.at(0, 1), 12.0f);
  const std::vector<float> bad{1, 2};
  EXPECT_THROW(ops::add_row_vector(a, bad), std::invalid_argument);
}

TEST(Ops, AbsMaxReductions) {
  const Matrix m(2, 3, {1, -5, 2, -3, 4, -2});
  const auto rmax = ops::row_abs_max(m);
  EXPECT_EQ(rmax[0], 5.0f);
  EXPECT_EQ(rmax[1], 4.0f);
  const auto cmax = ops::col_abs_max(m);
  EXPECT_EQ(cmax[0], 3.0f);
  EXPECT_EQ(cmax[1], 5.0f);
  EXPECT_EQ(cmax[2], 2.0f);
  EXPECT_EQ(ops::abs_max(m), 5.0f);
}

TEST(Ops, MseAndNorm) {
  const Matrix a(1, 4, {1, 2, 3, 4});
  const Matrix b(1, 4, {1, 2, 3, 6});
  EXPECT_NEAR(ops::mse(a, b), 1.0, 1e-9);  // (0+0+0+4)/4
  EXPECT_NEAR(ops::frobenius_norm(a), std::sqrt(30.0f), 1e-5);
  EXPECT_THROW(ops::mse(a, Matrix(2, 2)), std::invalid_argument);
}

TEST(Ops, FillGaussianStatistics) {
  util::Rng rng(123);
  Matrix m(100, 100);
  m.fill_gaussian(rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (std::int64_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += double(m.data()[i]) * m.data()[i];
  }
  EXPECT_NEAR(sum / m.size(), 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / m.size()), 2.0, 0.05);
}

}  // namespace
}  // namespace nora
