// Tests for KV-cached incremental decoding: the cached path must be
// numerically identical to the full-context forward, on both digital
// and (noise-free) analog backends.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "cim/tile_config.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"

namespace nora::nn {
namespace {

TransformerLM make_model() {
  TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 16;
  cfg.seed = 77;
  return TransformerLM(cfg);
}

const std::vector<int> kTokens{3, 1, 4, 1, 5, 9, 2, 6};

TEST(KvCache, BulkCachedForwardMatchesFullForward) {
  TransformerLM model = make_model();
  const Matrix full = model.forward(kTokens);
  KvCache cache;
  const Matrix cached = model.forward_cached(kTokens, cache);
  EXPECT_EQ(cache.length, static_cast<std::int64_t>(kTokens.size()));
  ASSERT_TRUE(full.same_shape(cached));
  for (std::int64_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(full.data()[i], cached.data()[i], 1e-4) << "index " << i;
  }
}

TEST(KvCache, TokenByTokenMatchesFullForward) {
  TransformerLM model = make_model();
  const Matrix full = model.forward(kTokens);
  KvCache cache;
  for (std::size_t t = 0; t < kTokens.size(); ++t) {
    const int tok[] = {kTokens[t]};
    const Matrix logits = model.forward_cached(tok, cache);
    ASSERT_EQ(logits.rows(), 1);
    const auto ref = full.row(static_cast<std::int64_t>(t));
    const auto got = logits.row(0);
    for (std::int64_t v = 0; v < full.cols(); ++v) {
      ASSERT_NEAR(ref[v], got[v], 1e-3) << "t=" << t << " v=" << v;
    }
  }
}

TEST(KvCache, ChunkedPrefillMatches) {
  TransformerLM model = make_model();
  const Matrix full = model.forward(kTokens);
  KvCache cache;
  const std::vector<int> first(kTokens.begin(), kTokens.begin() + 3);
  const std::vector<int> rest(kTokens.begin() + 3, kTokens.end());
  model.forward_cached(first, cache);
  const Matrix tail = model.forward_cached(rest, cache);
  for (std::int64_t t = 0; t < tail.rows(); ++t) {
    const auto ref = full.row(3 + t);
    const auto got = tail.row(t);
    for (std::int64_t v = 0; v < full.cols(); ++v) {
      ASSERT_NEAR(ref[v], got[v], 1e-3);
    }
  }
}

TEST(KvCache, WorksOnIdealAnalogBackend) {
  TransformerLM model = make_model();
  const Matrix full = model.forward(kTokens);
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(cim::TileConfig::ideal(), {}, 5);
  }
  KvCache cache;
  const Matrix cached = model.forward_cached(kTokens, cache);
  EXPECT_LT(ops::mse(full, cached), 1e-6);
}

TEST(KvCache, ValidatesUsage) {
  TransformerLM model = make_model();
  KvCache cache;
  EXPECT_THROW(model.forward_cached(std::vector<int>{}, cache),
               std::invalid_argument);
  EXPECT_THROW(model.forward_cached(std::vector<int>(17, 1), cache),
               std::invalid_argument);
  model.forward_cached(std::vector<int>{1, 2}, cache);
  EXPECT_THROW(model.forward_cached(std::vector<int>{99}, cache),
               std::invalid_argument);
  KvCache foreign;
  foreign.blocks.resize(5);
  EXPECT_THROW(model.forward_cached(std::vector<int>{1}, foreign),
               std::invalid_argument);
}

TEST(KvCache, TrimRewindsAndReplaysBitIdentically) {
  TransformerLM model = make_model();
  const std::vector<int> head(kTokens.begin(), kTokens.begin() + 3);
  const std::vector<int> rest(kTokens.begin() + 3, kTokens.end());
  KvCache cache;
  model.forward_cached(head, cache);
  const Matrix tail1 = model.forward_cached(rest, cache);
  EXPECT_EQ(cache.length, 8);
  const std::int64_t bytes_full = cache.bytes();
  // Rewind past the tail and replay it: same cache state, same math,
  // bit-identical logits.
  cache.trim(3);
  EXPECT_EQ(cache.length, 3);
  EXPECT_LT(cache.bytes(), bytes_full);
  const Matrix tail2 = model.forward_cached(rest, cache);
  ASSERT_TRUE(tail1.same_shape(tail2));
  EXPECT_EQ(std::memcmp(tail1.data(), tail2.data(),
                        sizeof(float) * static_cast<std::size_t>(tail1.size())),
            0);
}

TEST(KvCache, TrimValidates) {
  TransformerLM model = make_model();
  KvCache cache;
  model.forward_cached(kTokens, cache);
  EXPECT_THROW(cache.trim(-1), std::invalid_argument);
  cache.trim(cache.length);  // no-op
  EXPECT_EQ(cache.length, 8);
  cache.trim(100);  // longer than length: also a no-op
  EXPECT_EQ(cache.length, 8);
  cache.trim(0);
  EXPECT_EQ(cache.length, 0);
  EXPECT_EQ(cache.bytes(), 0);
  // An emptied cache is immediately reusable.
  const Matrix again = model.forward_cached(kTokens, cache);
  EXPECT_EQ(cache.length, 8);
  EXPECT_EQ(again.rows(), 8);
}

TEST(KvCache, CapacityGuardThrowsNamedErrorBeforeTouchingState) {
  TransformerLM model = make_model();
  KvCache cache;
  cache.capacity = 4;
  model.forward_cached(std::vector<int>{1, 2, 3}, cache);
  EXPECT_EQ(cache.length, 3);
  // 2 more tokens would need length 5 > capacity 4: named error, cache
  // untouched.
  EXPECT_THROW(model.forward_cached(std::vector<int>{4, 5}, cache),
               KvCacheOverflow);
  EXPECT_EQ(cache.length, 3);
  // One more token exactly fills the capacity.
  model.forward_cached(std::vector<int>{4}, cache);
  EXPECT_EQ(cache.length, 4);
  EXPECT_THROW(model.forward_cached(std::vector<int>{5}, cache),
               KvCacheOverflow);
  // The model-level max_seq guard is the same named error.
  KvCache fresh;
  EXPECT_THROW(model.forward_cached(std::vector<int>(17, 1), fresh),
               KvCacheOverflow);
}

TEST(Generate, GreedyMatchesRepeatedPredictNext) {
  TransformerLM model = make_model();
  std::vector<int> prompt{3, 1, 4};
  const auto generated = model.generate(prompt, 5);
  ASSERT_EQ(generated.size(), 5u);
  std::vector<int> seq = prompt;
  for (int tok : generated) {
    EXPECT_EQ(tok, model.predict_next(seq));
    seq.push_back(tok);
  }
}

TEST(Generate, StopsAtMaxSeq) {
  TransformerLM model = make_model();
  std::vector<int> prompt{1, 2, 3};
  const auto generated = model.generate(prompt, 100);
  // max_seq = 16, prompt 3 -> at most 13 new tokens.
  EXPECT_LE(generated.size(), 13u);
  EXPECT_GE(generated.size(), 12u);
  EXPECT_THROW(model.generate(std::vector<int>{}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace nora::nn
