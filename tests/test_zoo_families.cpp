// Tests for the synthetic model zoo: family specs, outlier planting, and
// gain compensation.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "model/zoo.hpp"
#include "tensor/ops.hpp"

namespace nora::model {
namespace {

TEST(Families, AllSpecsAreWellFormed) {
  for (const auto& name : all_models()) {
    const ModelSpec spec = spec_by_name(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(spec.arch.d_model % spec.arch.n_heads, 0) << name;
    EXPECT_EQ(spec.arch.vocab_size, spec.task.vocab_size()) << name;
    EXPECT_EQ(spec.arch.max_seq, spec.task.seq_len) << name;
    EXPECT_GT(spec.outliers.fraction, 0.0f) << name;
    EXPECT_GE(spec.outliers.amp_hi, spec.outliers.amp_lo) << name;
    EXPECT_GT(spec.train.target_accuracy, 0.7) << name;
  }
  EXPECT_THROW(spec_by_name("gpt-5-sim"), std::invalid_argument);
}

TEST(Families, FamilyArchitectureConventions) {
  // OPT-like: LayerNorm + GELU; LLaMA/Mistral-like: RMSNorm + SiLU-gated.
  for (const auto& name : opt_family()) {
    const ModelSpec s = spec_by_name(name);
    EXPECT_EQ(s.arch.norm_kind, nn::NormKind::kLayerNorm) << name;
    EXPECT_EQ(s.arch.mlp_kind, nn::MlpKind::kGelu) << name;
  }
  for (const auto& name : other_family()) {
    const ModelSpec s = spec_by_name(name);
    EXPECT_EQ(s.arch.norm_kind, nn::NormKind::kRmsNorm) << name;
    EXPECT_EQ(s.arch.mlp_kind, nn::MlpKind::kSiluGated) << name;
  }
  // OPT sizes are ordered (the scaled-down analog of 1.3b < 2.7b < ...).
  std::int64_t prev = 0;
  for (const auto& name : opt_family()) {
    const auto count = spec_by_name(name).arch.param_count();
    EXPECT_GT(count, prev) << name;
    prev = count;
  }
}

TEST(PlantedGains, CountAmplitudeAndDeterminism) {
  OutlierSpec spec;
  spec.fraction = 0.1f;
  spec.amp_lo = 10.0f;
  spec.amp_hi = 20.0f;
  spec.seed = 7;
  const auto g1 = planted_gains(64, spec);
  const auto g2 = planted_gains(64, spec);
  EXPECT_EQ(g1, g2);
  int outliers = 0;
  for (float g : g1) {
    if (g != 1.0f) {
      ++outliers;
      EXPECT_GE(g, 10.0f);
      EXPECT_LE(g, 20.0f);
    }
  }
  EXPECT_EQ(outliers, 6);  // floor(64 * 0.1)
  spec.seed = 8;
  EXPECT_NE(planted_gains(64, spec), g1);
  OutlierSpec none;
  for (float g : planted_gains(16, none)) EXPECT_EQ(g, 1.0f);
}

TEST(CompensatePlantedGains, NeutralizesGainAtInit) {
  // With compensation, the function computed at init equals (up to fp)
  // the function of an unplanted twin: gains cancel in norm->linear.
  eval::SynthLambadaConfig task_cfg;
  nn::TransformerConfig planted;
  planted.vocab_size = task_cfg.vocab_size();
  planted.d_model = 16;
  planted.n_layers = 2;
  planted.n_heads = 2;
  planted.d_ff = 32;
  planted.max_seq = task_cfg.seq_len;
  planted.norm_gain = std::vector<float>(16, 1.0f);
  planted.norm_gain[2] = 12.0f;
  planted.norm_gain[9] = 25.0f;
  nn::TransformerConfig plain = planted;
  plain.norm_gain.clear();
  nn::TransformerLM planted_model(planted);
  compensate_planted_gains(planted_model);
  nn::TransformerLM plain_model(plain);
  const std::vector<int> tokens{1, 2, 3, 4, 5, 6};
  const Matrix a = planted_model.forward(tokens);
  const Matrix b = plain_model.forward(tokens);
  const double rel = std::sqrt(ops::mse(a, b)) /
                     (ops::frobenius_norm(b) / std::sqrt(double(b.size())));
  EXPECT_LT(rel, 1e-4);
}

TEST(Zoo, TrainsTinyModelAndCaches) {
  // A micro spec trains in a few seconds and exercises the full
  // train -> save -> load path.
  const auto tmp = std::filesystem::temp_directory_path() / "nora_zoo_test";
  std::filesystem::remove_all(tmp);
  setenv("NORA_CACHE_DIR", tmp.c_str(), 1);
  ModelSpec spec = spec_by_name("opt-1.3b-sim");
  spec.name = "micro-test";
  spec.arch.d_model = 32;
  spec.arch.d_ff = 64;
  spec.arch.n_layers = 1;
  spec.train.steps = 400;
  spec.train.eval_every = 50;
  spec.train.target_accuracy = 0.6;
  spec.train.verbose = false;
  auto m1 = get_or_train(spec, /*verbose=*/false);
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(spec)));
  auto m2 = get_or_train(spec, /*verbose=*/false);  // loads from cache
  const eval::SynthLambada task(spec.task);
  const auto ex = task.make_example("test", 0);
  EXPECT_EQ(ops::mse(m1->forward(ex.tokens), m2->forward(ex.tokens)), 0.0);
  unsetenv("NORA_CACHE_DIR");
  std::filesystem::remove_all(tmp);
}

}  // namespace
}  // namespace nora::model
