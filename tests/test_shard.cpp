// Multi-chip sharding: the chip-invariance property (outputs bit-identical
// for ANY chip count and ANY per-chip thread count — the multi-chip
// extension of thread invariance), plan mechanics, placement search
// quality, tensor-parallel timing, pipelined replay, and the sharded
// golden-stream regression.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "cim/analog_matmul.hpp"
#include "nn/transformer.hpp"
#include "runtime/integrity_monitor.hpp"
#include "serve/auditor.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "shard/apply.hpp"
#include "shard/chip_set.hpp"
#include "shard/plan.hpp"
#include "timing/hw_model.hpp"
#include "timing/trace.hpp"
#include "util/thread_pool.hpp"

namespace nora {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<std::size_t>(a.size())) == 0;
}

/// Everything-on operating point (mirrors test_thread_invariance): every
/// noise source, bound management, faults + spares + retries, ABFT —
/// small tiles so a 70x50 matrix spans a 3x3 grid.
cim::TileConfig everything_on() {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cfg.in_noise = 0.02f;
  cfg.sshape_k = 0.2f;
  cfg.bound_management = true;
  cfg.adc_bound = 4.0f;
  cfg.faults.stuck_zero_rate = 0.01f;
  cfg.faults.stuck_gmax_rate = 0.002f;
  cfg.spare_cols = 2;
  cfg.max_program_retries = 2;
  cfg.abft_checksum = true;
  return cfg;
}

nn::TransformerConfig tiny_arch() {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 32;
  cfg.seed = 77;
  return cfg;
}

/// Analog-deploy a tiny model with all noise sources live, 16x12 tiles
/// (multi-tile grids on every linear).
nn::TransformerLM make_analog_model() {
  cim::TileConfig tile = everything_on();
  tile.tile_rows = 16;
  tile.tile_cols = 12;
  nn::TransformerLM model(tiny_arch());
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tile, {}, seed++);
  }
  return model;
}

// --- ChipSet ---------------------------------------------------------

TEST(ChipSet, ConstructionAndPoolRanges) {
  EXPECT_THROW(shard::ChipSet(0), std::invalid_argument);
  EXPECT_THROW(shard::ChipSet(-2), std::invalid_argument);
  shard::ChipSet chips(4, /*threads_per_chip=*/2);
  EXPECT_EQ(chips.n_chips(), 4);
  const auto range = chips.pool_range(1, 2);
  ASSERT_EQ(range.size(), 2u);
  EXPECT_EQ(range[0], &chips.pool(1));
  EXPECT_EQ(range[1], &chips.pool(2));
  EXPECT_THROW(chips.pool_range(3, 2), std::out_of_range);
  EXPECT_THROW(chips.pool_range(-1, 1), std::out_of_range);
  // Nonsense per-chip widths clamp instead of throwing or oversubscribing.
  shard::ChipSet degenerate(2, /*threads_per_chip=*/0);
  EXPECT_EQ(degenerate.pool(0).threads(), 1);
  EXPECT_EQ(degenerate.pool(1).threads(), 1);
}

// --- plans -----------------------------------------------------------

TEST(PipelinePlan, BaselineShapesAndValidation) {
  const shard::PipelinePlan rr = shard::plan_round_robin(5, 3);
  ASSERT_EQ(rr.stages.size(), 5u);
  for (int b = 0; b < 5; ++b) {
    EXPECT_EQ(rr.stages[static_cast<std::size_t>(b)].chip0, b % 3);
    EXPECT_EQ(rr.stages[static_cast<std::size_t>(b)].tp_chips, 1);
    EXPECT_EQ(rr.stage_of_block(b), b);
  }
  rr.validate(5);
  EXPECT_THROW(rr.validate(6), std::invalid_argument);  // uncovered block

  const shard::PipelinePlan tp = shard::plan_tensor_parallel(4, 2);
  ASSERT_EQ(tp.stages.size(), 1u);
  EXPECT_EQ(tp.stages[0].n_blocks, 4);
  EXPECT_EQ(tp.stages[0].tp_chips, 2);
  tp.validate(4);
  EXPECT_EQ(&tp.last_stage(), &tp.stages[0]);

  shard::PipelinePlan bad = tp;
  bad.stages[0].chip0 = 1;  // chips [1,3) exceed the 2-chip budget
  EXPECT_THROW(bad.validate(4), std::invalid_argument);
  shard::PipelinePlan gap;
  gap.n_chips = 2;
  gap.stages = {{0, 1, 0, 1}, {2, 1, 1, 1}};  // block 1 uncovered
  EXPECT_THROW(gap.validate(3), std::invalid_argument);
  EXPECT_THROW(gap.stage_of_block(1), std::invalid_argument);
}

// --- chip invariance: sharded AnalogMatmul ---------------------------

TEST(ChipInvariance, MatmulBitIdenticalAcrossChipAndThreadCounts) {
  const Matrix w = random_matrix(70, 50, 909);
  const Matrix x = random_matrix(6, 70, 808, 1.0f);
  util::ThreadPool::global().resize(1);

  // Reference: sharded path on ONE chip, sequential pool. (The sharded
  // path's canonical tree reduce and per-tile bound management differ
  // deterministically from the legacy fold; invariance is sharded vs
  // sharded, which is exactly what multi-chip deployments compare.)
  auto run = [&](cim::ShardAxis axis, int n_chips, int threads_per_chip,
                 cim::ArrayStats* stats_out) {
    shard::ChipSet chips(n_chips, threads_per_chip);
    cim::AnalogMatmul unit(w, {}, everything_on(), 777);
    cim::ShardPlan plan;
    plan.axis = axis;
    plan.n_chips = n_chips;
    plan.pools = chips.pool_range(0, n_chips);
    unit.set_shard_plan(plan);
    Matrix y1 = unit.forward(x);
    Matrix y2 = unit.forward(x);  // second epoch too
    if (stats_out != nullptr) *stats_out = unit.stats();
    // Concatenate both epochs for a single comparison payload.
    Matrix both(y1.rows() * 2, y1.cols());
    std::memcpy(both.data(), y1.data(),
                sizeof(float) * static_cast<std::size_t>(y1.size()));
    std::memcpy(both.data() + y1.size(), y2.data(),
                sizeof(float) * static_cast<std::size_t>(y2.size()));
    return both;
  };

  for (const cim::ShardAxis axis :
       {cim::ShardAxis::kRowBlocks, cim::ShardAxis::kColBlocks}) {
    cim::ArrayStats ref_stats;
    const Matrix ref = run(axis, 1, 1, &ref_stats);
    for (const int n_chips : {2, 4}) {
      for (const int threads : {1, 4}) {
        cim::ArrayStats stats;
        const Matrix got = run(axis, n_chips, threads, &stats);
        EXPECT_TRUE(bitwise_equal(got, ref))
            << "axis=" << static_cast<int>(axis) << " chips=" << n_chips
            << " threads/chip=" << threads;
        // Statistics fold in canonical order: equally chip-invariant.
        EXPECT_EQ(stats.dac_samples, ref_stats.dac_samples);
        EXPECT_EQ(stats.dac_clipped, ref_stats.dac_clipped);
        EXPECT_EQ(stats.bm_retries, ref_stats.bm_retries);
        EXPECT_EQ(stats.alpha_sum, ref_stats.alpha_sum);
      }
    }
    // The two axes partition the same item set: identical bits too.
  }
  const Matrix row_ref = run(cim::ShardAxis::kRowBlocks, 1, 1, nullptr);
  const Matrix col_ref = run(cim::ShardAxis::kColBlocks, 4, 2, nullptr);
  EXPECT_TRUE(bitwise_equal(row_ref, col_ref));
  util::ThreadPool::global().resize(1);
}

TEST(ChipInvariance, DeployedModelLogitsBitIdenticalAcrossChips) {
  const std::vector<int> tokens{3, 1, 4, 1, 5, 9, 2, 6};
  auto run = [&](int n_chips, int threads_per_chip) {
    util::ThreadPool::global().resize(1);
    nn::TransformerLM model = make_analog_model();
    shard::ChipSet chips(n_chips, threads_per_chip);
    const shard::PipelinePlan plan = shard::plan_tensor_parallel(
        static_cast<int>(model.blocks().size()), n_chips);
    shard::apply_plan(model, chips, plan);
    return model.forward(tokens);
  };
  const Matrix ref = run(1, 1);
  for (const int n_chips : {2, 4}) {
    for (const int threads : {1, 4}) {
      EXPECT_TRUE(bitwise_equal(run(n_chips, threads), ref))
          << "chips=" << n_chips << " threads/chip=" << threads;
    }
  }
  util::ThreadPool::global().resize(1);
}

TEST(ChipInvariance, PipelinePlacementDoesNotChangeBits) {
  // Pipeline placement moves blocks between chips (and changes the
  // timing stamps) but must never change the computation.
  const std::vector<int> tokens{3, 1, 4, 1, 5, 9, 2, 6};
  auto run = [&](const shard::PipelinePlan& plan, int n_chips) {
    util::ThreadPool::global().resize(1);
    nn::TransformerLM model = make_analog_model();
    shard::ChipSet chips(n_chips, 2);
    shard::apply_plan(model, chips, plan);
    return model.forward(tokens);
  };
  const Matrix ref = run(shard::plan_tensor_parallel(2, 1), 1);
  EXPECT_TRUE(bitwise_equal(run(shard::plan_round_robin(2, 2), 2), ref));
  shard::PipelinePlan hybrid;
  hybrid.n_chips = 4;
  hybrid.stages = {{0, 1, 0, 2}, {1, 1, 2, 2}};  // 2 stages x TP2
  EXPECT_TRUE(bitwise_equal(run(hybrid, 4), ref));
  util::ThreadPool::global().resize(1);
}

TEST(ChipInvariance, ClearPlanRestoresLegacyPath) {
  const Matrix w = random_matrix(70, 50, 909);
  const Matrix x = random_matrix(4, 70, 808, 1.0f);
  util::ThreadPool::global().resize(1);
  cim::AnalogMatmul legacy(w, {}, everything_on(), 777);
  const Matrix ref = legacy.forward(x);
  shard::ChipSet chips(2);
  cim::AnalogMatmul unit(w, {}, everything_on(), 777);
  cim::ShardPlan plan;
  plan.n_chips = 2;
  plan.pools = chips.pool_range(0, 2);
  unit.set_shard_plan(plan);
  EXPECT_TRUE(unit.sharded());
  unit.clear_shard_plan();
  EXPECT_FALSE(unit.sharded());
  // After clearing, epoch 0 replays the exact legacy bits.
  EXPECT_TRUE(bitwise_equal(unit.forward(x), ref));
}

// --- sharded golden-stream regression --------------------------------

// Pinned values of the sharded execution path (canonical tree reduce +
// per-tile bound management), captured at 2 chips / kRowBlocks. The
// chip-invariance tests guarantee the same bits at ANY chip count; this
// golden pins the absolute values so a change to the work-item
// derivation or the reduction bracketing fails loudly.
struct Golden {
  int t, j;
  float v;
};
constexpr Golden kShardGolden[] = {
    {0, 3, -0.0379376411f}, {0, 25, -2.34188604f}, {0, 49, 4.39771414f},
    {4, 3, -4.99205256f},   {4, 25, -8.36700153f}, {4, 49, 2.59049129f},
};

TEST(ShardGolden, ShardedForwardMatchesPinnedValues) {
  util::ThreadPool::global().resize(1);
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(5, 70, 202, 1.0f);
  shard::ChipSet chips(2, 2);
  cim::AnalogMatmul unit(w, {}, everything_on(), 31337);
  cim::ShardPlan plan;
  plan.axis = cim::ShardAxis::kRowBlocks;
  plan.n_chips = 2;
  plan.pools = chips.pool_range(0, 2);
  unit.set_shard_plan(plan);
  const Matrix y = unit.forward(x);
  for (const auto& g : kShardGolden) {
    EXPECT_EQ(y.at(g.t, g.j), g.v) << "t=" << g.t << " j=" << g.j;
  }
  // Converter traffic is part of the contract (same DAC/ADC totals as
  // the legacy path: sharding never changes WHAT runs, only where).
  EXPECT_EQ(unit.stats().dac_samples, 350);
  EXPECT_EQ(unit.adc_reads(), 750);
  EXPECT_EQ(unit.abft_stats().checks, 45);
}

// --- plan traces and the placement search ----------------------------

timing::TimingConfig timing_cfg() {
  timing::TimingConfig cfg;
  cfg.enabled = true;
  cfg.pipeline_depth = 4;
  return cfg;
}

TEST(PlanTrace, StampsMatchThePlan) {
  nn::TransformerLM model = make_analog_model();
  shard::PipelinePlan plan;
  plan.n_chips = 4;
  plan.stages = {{0, 1, 0, 2}, {1, 1, 2, 2}};
  const timing::Trace trace =
      shard::plan_trace(model, plan, /*rows=*/8, /*ctx_hint=*/16);
  // Per block: qkv, scores, out, up, down (no gate in this MLP) + head.
  ASSERT_EQ(trace.ops.size(), 2u * 5u + 1u);
  for (const auto& op : trace.ops) {
    EXPECT_EQ(op.rows, 8);
    const bool block0 = op.layer.find("blk0") != std::string::npos;
    EXPECT_EQ(op.chip, block0 ? 0 : 2) << op.layer;  // lm_head: last stage
    if (op.kind == timing::OpKind::kAnalogMvm) {
      EXPECT_EQ(op.tp_chips, 2) << op.layer;
      EXPECT_NE(op.tp_axis, timing::ShardAxis::kNone) << op.layer;
    }
  }
  // qkv/up/head split columns; out/down split rows.
  for (const auto& op : trace.ops) {
    if (op.kind != timing::OpKind::kAnalogMvm) continue;
    const bool row_split = op.layer.find("out") != std::string::npos ||
                           op.layer.find("down") != std::string::npos;
    EXPECT_EQ(op.tp_axis, row_split ? timing::ShardAxis::kRowBlocks
                                    : timing::ShardAxis::kColBlocks)
        << op.layer;
  }
}

TEST(PlacementSearch, CostModelPlanBeatsRoundRobin) {
  nn::TransformerLM model = make_analog_model();
  const timing::HwModel hw(timing_cfg());
  for (const int n_chips : {2, 4}) {
    const shard::PipelinePlan best =
        shard::plan_cost_model(model, hw, n_chips, /*microbatches=*/8);
    best.validate(static_cast<int>(model.blocks().size()));
    const shard::PipelinePlan naive =
        shard::plan_round_robin(static_cast<int>(model.blocks().size()),
                                n_chips);
    const auto score = [&](const shard::PipelinePlan& p) {
      return hw.replay_pipelined(shard::plan_trace(model, p, 8, 32)).total_ps;
    };
    EXPECT_LE(score(best), score(naive)) << n_chips << " chips";
    // And the search must actually use the budget: the best plan beats
    // the single-chip plan on simulated time.
    const shard::PipelinePlan solo = shard::plan_tensor_parallel(
        static_cast<int>(model.blocks().size()), 1);
    EXPECT_LT(score(best), score(solo)) << n_chips << " chips";
  }
}

TEST(PlacementSearch, DeterministicAcrossCalls) {
  nn::TransformerLM model = make_analog_model();
  const timing::HwModel hw(timing_cfg());
  const shard::PipelinePlan a = shard::plan_cost_model(model, hw, 4);
  const shard::PipelinePlan b = shard::plan_cost_model(model, hw, 4);
  EXPECT_EQ(a.to_string(), b.to_string());
}

// --- tensor-parallel timing ------------------------------------------

TEST(TpTiming, RowSplitCutsLatencyAndChargesTheLink) {
  const timing::HwModel hw(timing_cfg());
  timing::TimingOp op;
  op.kind = timing::OpKind::kAnalogMvm;
  op.rows = 4;
  op.k = 256;
  op.n = 64;
  op.row_blocks = 8;
  op.col_blocks = 2;
  op.macs = op.rows * op.k * op.n;
  const std::int64_t solo = hw.analog_op_ps(op);
  timing::TimingOp tp = op;
  tp.tp_chips = 4;
  tp.tp_axis = timing::ShardAxis::kRowBlocks;
  const std::int64_t split = hw.analog_op_ps(tp);
  EXPECT_LT(split, solo);  // 8 row blocks -> 2 per chip dominates the link
  // The link is charged: an absurdly slow link makes the split slower
  // than running solo.
  timing::TimingConfig slow = timing_cfg();
  slow.costs.chip_link_latency_ns = 1e6;
  const timing::HwModel hw_slow(slow);
  EXPECT_GT(hw_slow.analog_op_ps(tp), hw_slow.analog_op_ps(op));
  // Width clamps to the axis extent: splitting 8 row blocks 16 ways
  // equals splitting them 8 ways.
  timing::TimingOp wide = tp;
  wide.tp_chips = 16;
  timing::TimingOp exact = tp;
  exact.tp_chips = 8;
  EXPECT_EQ(hw.analog_op_ps(wide), hw.analog_op_ps(exact));
}

TEST(TpTiming, ColSplitGathersOnce) {
  const timing::HwModel hw(timing_cfg());
  timing::TimingOp op;
  op.kind = timing::OpKind::kAnalogMvm;
  op.rows = 2;
  op.k = 64;
  op.n = 256;
  op.row_blocks = 2;
  op.col_blocks = 8;
  op.macs = op.rows * op.k * op.n;
  timing::TimingOp tp = op;
  tp.tp_chips = 2;
  tp.tp_axis = timing::ShardAxis::kColBlocks;
  // A column split never beats the solo op on latency (the shared-ADC
  // serialization is over ROW blocks), but it must stay close: one
  // gather round, not a log2 all-reduce.
  const std::int64_t solo = hw.analog_op_ps(op);
  const std::int64_t split = hw.analog_op_ps(tp);
  EXPECT_GT(split, 0);
  EXPECT_LT(split, solo + solo / 2);
}

// --- pipelined replay ------------------------------------------------

timing::Trace two_chip_trace(std::int64_t rows) {
  timing::Trace trace;
  for (int i = 0; i < 2; ++i) {
    timing::TimingOp op;
    op.kind = timing::OpKind::kDigitalGemm;
    op.layer = i == 0 ? "stage0" : "stage1";
    op.rows = rows;
    op.k = 64;
    op.n = 64;
    op.macs = rows * 64 * 64;
    op.chip = i;
    trace.ops.push_back(op);
  }
  return trace;
}

TEST(ReplayPipelined, SingleChipDegeneratesToMicrobatchedChain) {
  const timing::HwModel hw(timing_cfg());
  timing::Trace trace = two_chip_trace(8);
  for (auto& op : trace.ops) op.chip = 0;
  const timing::StepTiming st = hw.replay_pipelined(trace);
  EXPECT_EQ(st.link_ps, 0);
  EXPECT_EQ(st.link_transfers, 0);
  // M = 8 microbatches through a serial 2-op chain: fill (1 chain) plus
  // 7 more intervals of the single busy chip == 8 x chain.
  timing::TimingOp mb = trace.ops[0];
  mb.rows = 1;
  mb.macs = trace.ops[0].macs / 8;
  const std::int64_t chain = 2 * hw.op_ps(mb);
  EXPECT_EQ(st.total_ps, 8 * chain);
}

TEST(ReplayPipelined, TwoChipsOverlapAndChargeTheLink) {
  const timing::HwModel hw(timing_cfg());
  const timing::Trace trace = two_chip_trace(8);
  const timing::StepTiming pipelined = hw.replay_pipelined(trace);
  EXPECT_EQ(pipelined.link_transfers, 8);  // one crossing x 8 microbatches
  EXPECT_GT(pipelined.link_ps, 0);
  timing::Trace serial = trace;
  for (auto& op : serial.ops) op.chip = 0;
  const timing::StepTiming one_chip = hw.replay_pipelined(serial);
  // Two balanced stages overlap: strictly faster than one chip, no
  // better than the ideal 2x.
  EXPECT_LT(pipelined.total_ps, one_chip.total_ps);
  EXPECT_GE(2 * pipelined.total_ps, one_chip.total_ps);
  // Per-layer attribution covers every op.
  ASSERT_EQ(pipelined.layers.size(), 2u);
  EXPECT_EQ(pipelined.layers[0].ops, 1);
}

TEST(ReplayPipelined, RejectsNegativeChipStamps) {
  const timing::HwModel hw(timing_cfg());
  timing::Trace trace = two_chip_trace(4);
  trace.ops[0].chip = -1;
  EXPECT_THROW(hw.replay_pipelined(trace), std::invalid_argument);
  trace.ops[0].chip = 0;
  trace.ops[1].tp_chips = 0;
  EXPECT_THROW(hw.replay_pipelined(trace), std::invalid_argument);
}

// --- serving with sharded replay -------------------------------------

TEST(ServeShard, ShardReplayRequiresTiming) {
  nn::TransformerLM model = make_analog_model();
  serve::SchedulerConfig cfg;
  cfg.shard_replay = true;  // timing.enabled left false
  EXPECT_THROW(serve::Scheduler(model, cfg), std::invalid_argument);
}

TEST(ServeShard, PipelinedServeCountsLinkTrafficAndStaysBitExact) {
  const std::vector<int> prompt{3, 1, 4, 1, 5, 9};
  auto serve_tokens = [&](bool sharded, serve::Metrics* metrics_out) {
    util::ThreadPool::global().resize(1);
    nn::TransformerLM model = make_analog_model();
    shard::ChipSet chips(2, 2);
    const shard::PipelinePlan plan = shard::plan_round_robin(2, 2);
    if (sharded) shard::apply_plan(model, chips, plan);
    serve::SchedulerConfig cfg;
    cfg.timing = timing_cfg();
    cfg.shard_replay = sharded;
    serve::Scheduler sched(model, cfg);
    serve::Auditor auditor(sched);
    serve::RequestParams p;
    p.prompt = prompt;
    p.max_new_tokens = 4;
    p.stream_seed = 4242;
    const std::int64_t id = sched.submit(std::move(p));
    sched.run_until_idle();
    EXPECT_EQ(auditor.check_idle(), 0u) << auditor.violations().front();
    if (metrics_out != nullptr) *metrics_out = sched.metrics();
    return sched.request(id).tokens;
  };
  serve::Metrics sharded_m;
  const std::vector<int> sharded_tokens = serve_tokens(true, &sharded_m);
  EXPECT_GT(sharded_m.sim_time_ps, 0);
  EXPECT_GT(sharded_m.sim_link_transfers, 0);  // 2-chip pipeline crossed
  EXPECT_GT(sharded_m.sim_link_ps, 0);
  // Token bits: pipeline sharding at 2 chips == TP sharding at 1 chip
  // (chip invariance through the whole serving stack). The unsharded
  // LEGACY path is a different (also deterministic) reduction order, so
  // the comparison baseline is the 1-chip plan.
  auto one_chip_tokens = [&]() {
    util::ThreadPool::global().resize(1);
    nn::TransformerLM model = make_analog_model();
    shard::ChipSet chips(1, 1);
    shard::apply_plan(model, chips, shard::plan_tensor_parallel(2, 1));
    serve::SchedulerConfig cfg;
    cfg.timing = timing_cfg();
    cfg.shard_replay = true;
    serve::Scheduler sched(model, cfg);
    serve::RequestParams p;
    p.prompt = prompt;
    p.max_new_tokens = 4;
    p.stream_seed = 4242;
    const std::int64_t id = sched.submit(std::move(p));
    sched.run_until_idle();
    return sched.request(id).tokens;
  };
  EXPECT_EQ(sharded_tokens, one_chip_tokens());
}

// --- per-chip health -------------------------------------------------

TEST(ChipHealth, AggregatesByPlacementStamp) {
  nn::TransformerLM model = make_analog_model();
  shard::ChipSet chips(2, 1);
  shard::apply_plan(model, chips, shard::plan_round_robin(2, 2));
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/900);
  const auto per_chip = monitor.chip_health();
  ASSERT_EQ(per_chip.size(), 2u);
  std::int64_t layers = 0;
  for (const auto& ch : per_chip) layers += ch.layers;
  EXPECT_EQ(layers, static_cast<std::int64_t>(monitor.health().size()));
  // block0's linears sit on chip 0; block1's + lm_head on chip 1.
  EXPECT_EQ(per_chip[0].chip, 0);
  EXPECT_EQ(per_chip[1].chip, 1);
  EXPECT_EQ(per_chip[0].layers, 4);   // block0: qkv, out, up, down
  EXPECT_EQ(per_chip[1].layers, 5);   // block1's four + lm_head
  EXPECT_EQ(per_chip[0].analog_layers, 4);
  // Unsharded models collapse to one chip-0 entry.
  shard::clear_plan(model);
  runtime::IntegrityMonitor flat(model, 900);
  const auto single = flat.chip_health();
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].layers,
            static_cast<std::int64_t>(flat.health().size()));
}

// --- metrics snapshot parity (satellite: renderer divergence fix) ----

TEST(MetricsSnapshot, RenderersAgreeAndSortOncePerVector) {
  serve::Metrics m;
  m.submitted = 3;
  m.finished = 3;
  for (int i = 0; i < 7; ++i) {
    m.ttft_s.push_back(0.01 * (7 - i));
    m.sim_ttft_us.push_back(5.0 * (i + 1));
    m.sim_tpot_us.push_back(1.0 + 0.25 * i);
  }
  m.sim_time_ps = 1000000;
  const serve::Metrics::Snapshot snap = m.snapshot();
  EXPECT_EQ(snap.ttft_p50_s, m.ttft_p50_s());
  EXPECT_EQ(snap.ttft_p95_s, m.ttft_p95_s());
  EXPECT_EQ(snap.sim_ttft_p50_us, m.sim_ttft_p50_us());
  EXPECT_EQ(snap.sim_ttft_p95_us, m.sim_ttft_p95_us());
  EXPECT_EQ(snap.sim_tpot_p50_us, m.sim_tpot_p50_us());
  EXPECT_EQ(snap.sim_tpot_p95_us, m.sim_tpot_p95_us());
  // One snapshot = one sort per sample vector (3 vectors), for BOTH
  // renderers — the old code re-sorted per renderer and could disagree
  // mid-serve when a sample landed between the two dumps.
  const std::int64_t before = serve::percentile_sort_count();
  const std::string text = m.to_string();
  EXPECT_EQ(serve::percentile_sort_count() - before, 3);
  const std::int64_t mid = serve::percentile_sort_count();
  const std::string json = m.to_json();
  EXPECT_EQ(serve::percentile_sort_count() - mid, 3);
  // Both renderers now report the full quantile set, including the sim
  // TPOT p95 the JSON used to omit.
  EXPECT_NE(text.find("TPOT p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(json.find("\"sim_tpot_p95_us\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_link_ps\""), std::string::npos);
}

}  // namespace
}  // namespace nora
