// Continuous-batching serving layer tests.
//
// The headline property: a request's output (tokens AND logits) is
// bit-identical whether it is served alone or continuously batched with
// any mix of other requests, at any thread-pool width — because every
// noise draw is keyed on (request stream, request-local position), not
// on batch row or arrival order. The rest covers the scheduler's state
// machine (cancel, deadline, pool exhaustion, retirement) and the
// mid-serve integrity-monitor hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "cim/tile_config.hpp"
#include "nn/transformer.hpp"
#include "runtime/integrity_monitor.hpp"
#include "serve/scheduler.hpp"
#include "util/thread_pool.hpp"

namespace nora::serve {
namespace {

nn::TransformerConfig tiny_arch() {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 3;
  cfg.d_ff = 48;
  cfg.max_seq = 32;
  cfg.seed = 77;
  return cfg;
}

/// Noisy analog operating point with ABFT on, sized so the tiny model
/// spans several tile blocks.
cim::TileConfig noisy_tiles(int n_threads) {
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 16;
  cfg.tile_cols = 12;
  cfg.in_noise = 0.02f;
  cfg.abft_checksum = true;
  cfg.n_threads = n_threads;
  return cfg;
}

nn::TransformerLM make_analog_model(const cim::TileConfig& tile) {
  nn::TransformerLM model(tiny_arch());
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tile, {}, seed++);
  }
  return model;
}

struct Job {
  std::vector<int> prompt;
  int max_new = 6;
  std::uint64_t stream = 0;
};

const std::vector<Job> kJobs{
    {{3, 1, 4, 1, 5}, 6, 101},
    {{2, 7, 1, 8}, 6, 102},
    {{9, 9, 9}, 6, 103},
    {{1, 2, 3, 4, 5, 6}, 6, 104},
};

/// Serve `jobs` (optionally in a permuted submission order) and return
/// the finished records keyed by stream seed, in kJobs order.
std::vector<RequestRecord> serve_jobs(nn::TransformerLM& model, int max_batch,
                                      const std::vector<std::size_t>& order) {
  SchedulerConfig cfg;
  cfg.max_batch = max_batch;
  cfg.record_logits = true;
  Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids(kJobs.size());
  for (const std::size_t j : order) {
    RequestParams p;
    p.prompt = kJobs[j].prompt;
    p.max_new_tokens = kJobs[j].max_new;
    p.stream_seed = kJobs[j].stream;
    ids[j] = sched.submit(std::move(p));
  }
  sched.run_until_idle();
  std::vector<RequestRecord> out;
  for (std::size_t j = 0; j < kJobs.size(); ++j) {
    out.push_back(sched.request(ids[j]));
    EXPECT_EQ(out.back().state, RequestState::kFinished);
  }
  return out;
}

bool logits_bitwise_equal(const RequestRecord& a, const RequestRecord& b) {
  if (a.logits.size() != b.logits.size()) return false;
  for (std::size_t t = 0; t < a.logits.size(); ++t) {
    if (a.logits[t].size() != b.logits[t].size()) return false;
    if (std::memcmp(a.logits[t].data(), b.logits[t].data(),
                    sizeof(float) * a.logits[t].size()) != 0) {
      return false;
    }
  }
  return true;
}

// --- the tentpole property -------------------------------------------

TEST(ServeBatchInvariance, TokensAndLogitsMatchAloneVsBatchedAnyThreads) {
  const std::vector<std::size_t> fifo{0, 1, 2, 3};
  const std::vector<std::size_t> reversed{3, 2, 1, 0};
  // Reference: one-at-a-time serving (max_batch 1), serial pool.
  util::ThreadPool::global().resize(1);
  nn::TransformerLM ref_model = make_analog_model(noisy_tiles(1));
  const auto ref = serve_jobs(ref_model, /*max_batch=*/1, fifo);
  for (const auto& r : ref) {
    ASSERT_EQ(r.tokens.size(), 6u);
    ASSERT_EQ(r.logits.size(), 6u);
  }
  // Fully batched on a wider pool, FIFO and reversed submission order:
  // same requests, different batch compositions every step.
  struct Case {
    int threads;
    int max_batch;
    const std::vector<std::size_t>* order;
  };
  const Case cases[] = {{3, 4, &fifo}, {1, 2, &reversed}, {3, 4, &reversed}};
  for (const Case& c : cases) {
    util::ThreadPool::global().resize(c.threads);
    nn::TransformerLM model = make_analog_model(noisy_tiles(c.threads));
    const auto got = serve_jobs(model, c.max_batch, *c.order);
    for (std::size_t j = 0; j < kJobs.size(); ++j) {
      EXPECT_EQ(got[j].tokens, ref[j].tokens)
          << "job " << j << " threads=" << c.threads
          << " batch=" << c.max_batch;
      EXPECT_TRUE(logits_bitwise_equal(got[j], ref[j]))
          << "job " << j << " threads=" << c.threads
          << " batch=" << c.max_batch;
    }
  }
  util::ThreadPool::global().resize(1);
}

TEST(ServeBatchInvariance, NoiseIsLiveAndStreamKeyed) {
  // Same prompt, different stream seeds: the analog noise must actually
  // differ (otherwise the invariance property above is vacuous).
  util::ThreadPool::global().resize(1);
  nn::TransformerLM model = make_analog_model(noisy_tiles(1));
  SchedulerConfig cfg;
  cfg.record_logits = true;
  Scheduler sched(model, cfg);
  RequestParams a;
  a.prompt = {3, 1, 4, 1, 5};
  a.max_new_tokens = 4;
  a.stream_seed = 501;
  RequestParams b = a;
  b.stream_seed = 502;
  RequestParams a2 = a;  // identical stream: identical request
  const auto ia = sched.submit(std::move(a));
  const auto ib = sched.submit(std::move(b));
  const auto ia2 = sched.submit(std::move(a2));
  sched.run_until_idle();
  EXPECT_FALSE(logits_bitwise_equal(sched.request(ia), sched.request(ib)));
  EXPECT_TRUE(logits_bitwise_equal(sched.request(ia), sched.request(ia2)));
  EXPECT_EQ(sched.request(ia).tokens, sched.request(ia2).tokens);
}

TEST(ServeBatchInvariance, DigitalSchedulerMatchesGenerate) {
  // On the digital backend the serve path must reproduce plain greedy
  // generate() exactly — batching may not change any request's output.
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.max_batch = 3;
  Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (const Job& j : kJobs) {
    RequestParams p;
    p.prompt = j.prompt;
    p.max_new_tokens = j.max_new;
    ids.push_back(sched.submit(std::move(p)));
  }
  sched.run_until_idle();
  for (std::size_t j = 0; j < kJobs.size(); ++j) {
    const auto expect = model.generate(kJobs[j].prompt, kJobs[j].max_new);
    EXPECT_EQ(sched.request(ids[j]).tokens, expect) << "job " << j;
  }
}

// --- scheduler state machine -----------------------------------------

TEST(Scheduler, EmptyTickIsIdle) {
  nn::TransformerLM model(tiny_arch());
  Scheduler sched(model);
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.in_flight(), 0u);
  EXPECT_EQ(sched.metrics().steps, 0);
  EXPECT_EQ(sched.metrics().busy_steps, 0);
}

TEST(Scheduler, RejectsInvalidRequestsAtSubmit) {
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.kv_budget_tokens = 10;
  Scheduler sched(model, cfg);
  const auto empty = sched.submit({});
  RequestParams zero;
  zero.prompt = {1, 2};
  zero.max_new_tokens = 0;
  const auto none = sched.submit(std::move(zero));
  RequestParams longp;
  longp.prompt.assign(32, 1);  // == max_seq: no room for even one token
  const auto toolong = sched.submit(std::move(longp));
  RequestParams fat;
  fat.prompt = {1, 2, 3, 4, 5};
  fat.max_new_tokens = 20;  // footprint 24 > budget 10
  const auto toofat = sched.submit(std::move(fat));
  // Every reject carries its structured cause, not just prose.
  const struct {
    std::int64_t id;
    ServeError code;
  } expected[] = {{empty, ServeError::kEmptyPrompt},
                  {none, ServeError::kMaxTokensNonPositive},
                  {toolong, ServeError::kPromptTooLong},
                  {toofat, ServeError::kFootprintOverBudget}};
  for (const auto& e : expected) {
    EXPECT_EQ(sched.request(e.id).state, RequestState::kRejected);
    EXPECT_EQ(sched.request(e.id).error, e.code);
    EXPECT_FALSE(is_transient(e.code));
  }
  EXPECT_EQ(sched.in_flight(), 0u);
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.metrics().rejected, 4);
  EXPECT_EQ(sched.metrics().rejected_with(ServeError::kEmptyPrompt), 1);
  EXPECT_EQ(sched.metrics().rejected_with(ServeError::kFootprintOverBudget),
            1);
  EXPECT_THROW(sched.request(999), std::out_of_range);
}

TEST(Scheduler, NegativeDeadlineRejectedZeroMeansNoDeadline) {
  // deadline_steps semantics: 0 is EXPLICITLY "no deadline" — such a
  // request must run to completion, not expire instantly; negative
  // values are a caller bug and are rejected with a structured code.
  nn::TransformerLM model(tiny_arch());
  Scheduler sched(model);
  RequestParams neg;
  neg.prompt = {1, 2, 3};
  neg.max_new_tokens = 4;
  neg.deadline_steps = -1;
  const auto bad = sched.submit(std::move(neg));
  EXPECT_EQ(sched.request(bad).state, RequestState::kRejected);
  EXPECT_EQ(sched.request(bad).error, ServeError::kDeadlineNegative);
  EXPECT_NE(sched.request(bad).error_detail.find("-1"), std::string::npos);
  RequestParams none;
  none.prompt = {1, 2, 3};
  none.max_new_tokens = 4;
  none.deadline_steps = 0;
  const auto ok = sched.submit(std::move(none));
  sched.run_until_idle();
  EXPECT_EQ(sched.request(ok).state, RequestState::kFinished);
  EXPECT_EQ(sched.request(ok).tokens.size(), 4u);
  EXPECT_EQ(sched.request(ok).error, ServeError::kNone);
}

TEST(Scheduler, CancelMidDecodeFreesSlabAndKeepsPartialOutput) {
  nn::TransformerLM model(tiny_arch());
  Scheduler sched(model);
  RequestParams p;
  p.prompt = {3, 1, 4};
  p.max_new_tokens = 12;
  const auto id = sched.submit(std::move(p));
  sched.step();
  sched.step();
  sched.step();
  EXPECT_EQ(sched.pool().live(), 1u);
  EXPECT_TRUE(sched.cancel(id));
  sched.step();  // cancellation lands at the step boundary
  const auto rec = sched.request(id);
  EXPECT_EQ(rec.state, RequestState::kCancelled);
  EXPECT_EQ(rec.tokens.size(), 3u);  // one token per completed step
  EXPECT_EQ(sched.pool().live(), 0u);
  EXPECT_EQ(sched.pool().used_tokens(), 0);
  EXPECT_EQ(sched.in_flight(), 0u);
  EXPECT_FALSE(sched.cancel(id));  // already terminal
  EXPECT_FALSE(sched.cancel(12345));
}

TEST(Scheduler, PoolExhaustionQueuesUntilRetirementFreesSlabs) {
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_budget_tokens = 8;  // exactly one {prompt 4, max_new 5} request
  Scheduler sched(model, cfg);
  RequestParams p;
  p.prompt = {1, 2, 3, 4};
  p.max_new_tokens = 5;  // footprint 8
  const auto a = sched.submit(RequestParams(p));
  const auto b = sched.submit(RequestParams(p));
  sched.step();
  EXPECT_EQ(sched.request(a).state, RequestState::kRunning);
  EXPECT_EQ(sched.request(b).state, RequestState::kQueued);
  EXPECT_EQ(sched.pool().used_tokens(), 8);
  while (sched.step()) {
    EXPECT_LE(sched.pool().used_tokens(), sched.pool().budget_tokens());
  }
  EXPECT_EQ(sched.request(a).state, RequestState::kFinished);
  EXPECT_EQ(sched.request(b).state, RequestState::kFinished);
  // b could only start after a retired and returned its slab.
  EXPECT_GE(sched.request(b).start_step, sched.request(a).finish_step);
  EXPECT_EQ(sched.request(b).tokens, sched.request(a).tokens);  // digital
  EXPECT_EQ(sched.pool().high_water_tokens(), 8);
  // Idle residency is exactly the published prefix rows (a's prompt may
  // remain cached for the next request on its stream) — anything above
  // that would be a leaked slab.
  EXPECT_EQ(sched.pool().used_tokens(), sched.pool().prefix_tokens());
}

TEST(Scheduler, PoolExhaustionRejectsWhenConfigured) {
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.kv_budget_tokens = 8;
  cfg.reject_on_pool_full = true;
  Scheduler sched(model, cfg);
  RequestParams p;
  p.prompt = {1, 2, 3, 4};
  p.max_new_tokens = 5;
  const auto a = sched.submit(RequestParams(p));
  const auto b = sched.submit(RequestParams(p));
  sched.step();
  EXPECT_EQ(sched.request(a).state, RequestState::kRunning);
  EXPECT_EQ(sched.request(b).state, RequestState::kRejected);
  EXPECT_EQ(sched.request(b).error, ServeError::kPoolExhausted);
  EXPECT_TRUE(is_transient(sched.request(b).error));
  sched.run_until_idle();
  EXPECT_EQ(sched.request(a).state, RequestState::kFinished);
}

TEST(Scheduler, QueueCapacityRejectsOverflow) {
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.queue_capacity = 2;
  Scheduler sched(model, cfg);
  RequestParams p;
  p.prompt = {1, 2};
  p.max_new_tokens = 2;
  sched.submit(RequestParams(p));
  sched.submit(RequestParams(p));
  const auto c = sched.submit(RequestParams(p));
  EXPECT_EQ(sched.request(c).state, RequestState::kRejected);
  EXPECT_EQ(sched.request(c).error, ServeError::kQueueFull);
}

TEST(Scheduler, DeadlineExpiryWhileQueuedAndWhileRunning) {
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_budget_tokens = 8;  // one slab: the second request starves
  Scheduler sched(model, cfg);
  RequestParams hog;
  hog.prompt = {1, 2, 3, 4};
  hog.max_new_tokens = 5;
  hog.deadline_steps = 3;  // expires mid-decode
  const auto a = sched.submit(std::move(hog));
  RequestParams starved;
  starved.prompt = {5, 6, 7, 8};
  starved.max_new_tokens = 5;
  starved.deadline_steps = 2;  // expires while pool-blocked in the queue
  const auto b = sched.submit(std::move(starved));
  sched.run_until_idle();
  const auto ra = sched.request(a);
  EXPECT_EQ(ra.state, RequestState::kExpired);
  EXPECT_FALSE(ra.tokens.empty());              // partial output kept
  EXPECT_LT(static_cast<int>(ra.tokens.size()), 5);
  const auto rb = sched.request(b);
  EXPECT_EQ(rb.state, RequestState::kExpired);
  EXPECT_TRUE(rb.tokens.empty());
  EXPECT_EQ(sched.pool().used_tokens(), 0);
  EXPECT_EQ(sched.metrics().expired, 2);
}

TEST(Scheduler, BudgetNeverExceededUnderLoad) {
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.max_batch = 3;
  cfg.kv_budget_tokens = 20;
  Scheduler sched(model, cfg);
  for (int i = 0; i < 7; ++i) {
    RequestParams p;
    p.prompt.assign(static_cast<std::size_t>(2 + i % 4), 1 + i);
    p.max_new_tokens = 3 + i % 5;
    sched.submit(std::move(p));
  }
  while (sched.step()) {
    ASSERT_LE(sched.pool().used_tokens(), 20);
    ASSERT_LE(static_cast<std::int64_t>(sched.pool().live()), 3);
  }
  const Metrics m = sched.metrics();
  EXPECT_EQ(m.finished, 7);
  EXPECT_LE(m.kv_high_water_tokens, 20);
  EXPECT_EQ(m.kv_used_tokens, m.kv_prefix_tokens);  // only published rows stay
  EXPECT_LE(m.max_occupancy, 3);
  EXPECT_GT(m.mean_occupancy(), 1.0);  // batching actually happened
  EXPECT_GT(m.generated_tokens, 0);
  // Every record is terminal and consistent.
  EXPECT_EQ(sched.completed().size(), 7u);
}

// --- retry / backoff --------------------------------------------------

TEST(Scheduler, PoolExhaustionRetriesWithBackoffThenFinishes) {
  // reject_on_pool_full + a RetryPolicy: the blocked request is NOT
  // rejected; it backs off, retries, and finishes once the hog retires.
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.kv_budget_tokens = 8;
  cfg.reject_on_pool_full = true;
  cfg.retry.max_attempts = 8;
  cfg.retry.backoff_base_steps = 1;
  cfg.retry.jitter_steps = 2;
  Scheduler sched(model, cfg);
  RequestParams p;
  p.prompt = {1, 2, 3, 4};
  p.max_new_tokens = 5;  // footprint 8 == whole budget
  const auto a = sched.submit(RequestParams(p));
  const auto b = sched.submit(RequestParams(p));
  sched.run_until_idle();
  EXPECT_EQ(sched.request(a).state, RequestState::kFinished);
  const auto rb = sched.request(b);
  EXPECT_EQ(rb.state, RequestState::kFinished);
  EXPECT_GT(rb.attempts, 1);
  EXPECT_EQ(rb.tokens, sched.request(a).tokens);  // digital, same prompt
  const Metrics m = sched.metrics();
  EXPECT_GT(m.retries, 0);
  EXPECT_EQ(m.rejected, 0);
  EXPECT_EQ(sched.pool().total_acquires(), sched.pool().total_releases());
}

TEST(Scheduler, RetryBudgetExhaustedRejectsWithStructuredCode) {
  // A hog that outlives every retry: the contender must end rejected
  // with kRetryBudgetExhausted (not the bare kPoolExhausted), after
  // exactly max_attempts scheduling attempts.
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.kv_budget_tokens = 28;
  cfg.reject_on_pool_full = true;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_base_steps = 1;
  cfg.retry.backoff_cap_steps = 2;  // retries land while the hog still runs
  Scheduler sched(model, cfg);
  RequestParams hog;
  hog.prompt = {1, 2, 3, 4};
  hog.max_new_tokens = 25;  // footprint 28: the whole pool, for 25 steps
  const auto a = sched.submit(std::move(hog));
  RequestParams contender;
  contender.prompt = {5, 6, 7, 8};
  contender.max_new_tokens = 5;
  const auto b = sched.submit(std::move(contender));
  sched.run_until_idle();
  EXPECT_EQ(sched.request(a).state, RequestState::kFinished);
  const auto rb = sched.request(b);
  EXPECT_EQ(rb.state, RequestState::kRejected);
  EXPECT_EQ(rb.error, ServeError::kRetryBudgetExhausted);
  EXPECT_EQ(rb.attempts, 3);
  EXPECT_EQ(sched.metrics().retries, 2);  // attempts 2 and 3
  EXPECT_EQ(sched.metrics().rejected_with(ServeError::kRetryBudgetExhausted),
            1);
}

TEST(Scheduler, RetryScheduleIsBitReproducible) {
  // Same seed, same workload -> identical attempt counts and identical
  // step-clock history, jitter included (it is drawn from a
  // counter-keyed stream, not a shared RNG).
  auto run = [] {
    nn::TransformerLM model(tiny_arch());
    SchedulerConfig cfg;
    cfg.seed = 4242;
    cfg.kv_budget_tokens = 8;
    cfg.reject_on_pool_full = true;
    cfg.retry.max_attempts = 6;
    cfg.retry.backoff_base_steps = 1;
    cfg.retry.jitter_steps = 3;
    Scheduler sched(model, cfg);
    RequestParams p;
    p.prompt = {1, 2, 3, 4};
    p.max_new_tokens = 5;
    std::vector<std::int64_t> ids;
    for (int i = 0; i < 3; ++i) ids.push_back(sched.submit(RequestParams(p)));
    sched.run_until_idle();
    std::vector<std::int64_t> history;
    for (const auto id : ids) {
      const auto rec = sched.request(id);
      history.push_back(rec.attempts);
      history.push_back(rec.start_step);
      history.push_back(rec.finish_step);
      history.push_back(static_cast<std::int64_t>(rec.state));
    }
    return history;
  };
  EXPECT_EQ(run(), run());
}

// --- KV pool exhaustion / recovery property ---------------------------

TEST(KvCachePool, ExhaustionRecoveryLeaksNothing) {
  // Property: fill the pool to its budget, retire/cancel the leases in
  // an arbitrary mix, and the pool must re-admit new work with zero
  // leaked slabs and stable high-water accounting.
  KvCachePool pool(/*budget_tokens=*/24, /*bytes_per_token=*/4);
  std::vector<nn::KvCache*> leases;
  for (int i = 0; i < 4; ++i) {
    nn::KvCache* c = pool.acquire(6);
    ASSERT_NE(c, nullptr);
    leases.push_back(c);
  }
  EXPECT_EQ(pool.used_tokens(), 24);
  EXPECT_EQ(pool.acquire(1), nullptr);  // budget exhausted
  EXPECT_EQ(pool.high_water_tokens(), 24);
  // Release a mix (reverse order: exercises non-LIFO slab reuse).
  pool.release(leases[3]);
  pool.release(leases[0]);
  EXPECT_EQ(pool.used_tokens(), 12);
  // Re-admission succeeds and recycles the freed slabs.
  nn::KvCache* again = pool.acquire(12);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(pool.used_tokens(), 24);
  EXPECT_EQ(pool.high_water_tokens(), 24);  // never above budget
  pool.release(again);
  pool.release(leases[1]);
  pool.release(leases[2]);
  EXPECT_EQ(pool.used_tokens(), 0);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.total_acquires(), 5);
  EXPECT_EQ(pool.total_releases(), 5);
  // Double release of a retired lease is a hard error, not a leak.
  EXPECT_THROW(pool.release(leases[0]), std::invalid_argument);
}

TEST(Scheduler, PoolRecoveryAfterExhaustionUnderServing) {
  // End-to-end version of the property above: saturate the scheduler's
  // pool, cancel half the load mid-decode, and verify the freed budget
  // re-admits the rest — with the acquire/release ledger balanced.
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.max_batch = 6;
  cfg.kv_budget_tokens = 16;  // two {4+5-1=8}-token footprints
  Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    RequestParams p;
    p.prompt = {1 + i, 2, 3, 4};
    p.max_new_tokens = 5;
    ids.push_back(sched.submit(std::move(p)));
  }
  sched.step();  // admits exactly two
  EXPECT_EQ(sched.pool().used_tokens(), 16);
  sched.cancel(ids[0]);
  sched.cancel(ids[1]);
  sched.run_until_idle();
  for (std::size_t i = 2; i < ids.size(); ++i) {
    EXPECT_EQ(sched.request(ids[i]).state, RequestState::kFinished) << i;
  }
  EXPECT_EQ(sched.pool().used_tokens(), sched.pool().prefix_tokens());
  EXPECT_EQ(sched.pool().live(), 0u);
  EXPECT_EQ(sched.pool().total_acquires(), sched.pool().total_releases());
  EXPECT_EQ(sched.pool().high_water_tokens(), 16);
}

// --- maintenance windows ----------------------------------------------

/// Watchdog monitor that takes an action at every inspection — the
/// deterministic trigger for maintenance windows.
runtime::MonitorConfig trigger_happy() {
  runtime::MonitorConfig mcfg;
  mcfg.policy = runtime::RefreshPolicy::kWatchdog;
  mcfg.flag_rate_budget = -1.0;           // every window is "over budget"
  mcfg.fallback_after_refreshes = 100000;  // never drop to digital
  return mcfg;
}

TEST(ServeMaintenance, WindowServesDegradedAndDropsNoRequest) {
  // The acceptance property: a maintenance window opening mid-serve
  // never deadlocks and never drops a request — in-flight requests
  // finish via the digital bypass with their degraded tokens recorded,
  // queued requests are admitted after the window closes.
  util::ThreadPool::global().resize(1);
  cim::TileConfig tile = cim::TileConfig::ideal();
  tile.abft_checksum = true;
  nn::TransformerLM model = make_analog_model(tile);
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/4040,
                                    trigger_happy());
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.monitor = &monitor;
  cfg.inspect_every = 1;
  cfg.maintenance_window_steps = 3;
  Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (const Job& j : kJobs) {  // 4 jobs > max_batch: queue is exercised
    RequestParams p;
    p.prompt = j.prompt;
    p.max_new_tokens = j.max_new;
    p.stream_seed = j.stream;
    ids.push_back(sched.submit(std::move(p)));
  }
  // Bounded loop instead of run_until_idle: a deadlock fails the test
  // rather than hanging it.
  bool saw_window = false;
  int guard = 0;
  while (sched.step()) {
    saw_window |= sched.in_maintenance();
    ASSERT_LT(++guard, 2000) << "maintenance window deadlocked the loop";
  }
  EXPECT_TRUE(saw_window);
  std::int64_t total_degraded = 0;
  for (const auto id : ids) {
    const auto rec = sched.request(id);
    EXPECT_EQ(rec.state, RequestState::kFinished) << "request " << id;
    EXPECT_EQ(rec.tokens.size(), 6u);
    total_degraded += rec.degraded_tokens;
    EXPECT_LE(rec.degraded_tokens,
              static_cast<std::int64_t>(rec.tokens.size()));
  }
  const Metrics m = sched.metrics();
  EXPECT_GT(m.maintenance_windows, 0);
  EXPECT_GT(m.maintenance_steps, 0);
  EXPECT_GT(total_degraded, 0);  // the window really served degraded
  EXPECT_EQ(m.degraded_tokens, total_degraded);
  EXPECT_TRUE(model.is_analog());  // bypass was non-destructive
  for (auto* lin : model.linear_layers()) {
    EXPECT_FALSE(lin->digital_bypass());  // and switched back off
  }
  EXPECT_EQ(sched.pool().total_acquires(), sched.pool().total_releases());
}

TEST(ServeMaintenance, RequeuePolicyDrainsAndRetriesWithoutDropping) {
  // kRequeue: requests with retry budget are drained back to the queue
  // when a window opens (their partial output discarded to
  // wasted_tokens); once the budget is spent they finish on the bypass.
  // Either way every request terminates kFinished.
  util::ThreadPool::global().resize(1);
  cim::TileConfig tile = cim::TileConfig::ideal();
  tile.abft_checksum = true;
  nn::TransformerLM model = make_analog_model(tile);
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/4041,
                                    trigger_happy());
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.monitor = &monitor;
  cfg.inspect_every = 1;
  cfg.maintenance_window_steps = 2;
  cfg.maintenance_policy = MaintenancePolicy::kRequeue;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_base_steps = 1;
  Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (const Job& j : kJobs) {
    RequestParams p;
    p.prompt = j.prompt;
    p.max_new_tokens = j.max_new;
    p.stream_seed = j.stream;
    ids.push_back(sched.submit(std::move(p)));
  }
  int guard = 0;
  while (sched.step()) {
    ASSERT_LT(++guard, 4000) << "requeue policy deadlocked the loop";
  }
  bool saw_retry = false;
  for (const auto id : ids) {
    const auto rec = sched.request(id);
    EXPECT_EQ(rec.state, RequestState::kFinished) << "request " << id;
    EXPECT_EQ(rec.tokens.size(), 6u);
    saw_retry |= rec.attempts > 1;
  }
  EXPECT_TRUE(saw_retry);
  const Metrics m = sched.metrics();
  EXPECT_GT(m.retries, 0);
  EXPECT_GT(m.wasted_tokens, 0);
  EXPECT_EQ(m.rejected, 0);  // drained, retried — never dropped
  EXPECT_EQ(sched.pool().total_acquires(), sched.pool().total_releases());
}

TEST(ServeMaintenance, RejectDuringMaintenanceShedsLoad) {
  util::ThreadPool::global().resize(1);
  cim::TileConfig tile = cim::TileConfig::ideal();
  tile.abft_checksum = true;
  nn::TransformerLM model = make_analog_model(tile);
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/4042,
                                    trigger_happy());
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.monitor = &monitor;
  cfg.inspect_every = 1;
  cfg.maintenance_window_steps = 4;
  cfg.reject_during_maintenance = true;
  Scheduler sched(model, cfg);
  RequestParams p;
  p.prompt = {3, 1, 4};
  p.max_new_tokens = 6;
  sched.submit(RequestParams(p));
  sched.step();  // busy step -> monitor action -> window opens
  ASSERT_TRUE(sched.in_maintenance());
  const auto shed = sched.submit(RequestParams(p));
  EXPECT_EQ(sched.request(shed).state, RequestState::kRejected);
  EXPECT_EQ(sched.request(shed).error, ServeError::kMaintenance);
  sched.run_until_idle();
  EXPECT_EQ(sched.metrics().rejected_with(ServeError::kMaintenance), 1);
}

TEST(ServeMaintenance, ZeroWindowKeepsLegacyBitIdenticalBehavior) {
  // maintenance_window_steps = 0 (the default) must reproduce the
  // pre-maintenance scheduler exactly: monitor actions are free, no
  // window opens, nothing is flagged degraded. This is what keeps the
  // existing serve goldens valid.
  util::ThreadPool::global().resize(1);
  cim::TileConfig tile = cim::TileConfig::ideal();
  tile.abft_checksum = true;
  nn::TransformerLM model = make_analog_model(tile);
  runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/4043,
                                    trigger_happy());
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.monitor = &monitor;
  cfg.inspect_every = 1;
  Scheduler sched(model, cfg);
  RequestParams p;
  p.prompt = {3, 1, 4};
  p.max_new_tokens = 6;
  const auto id = sched.submit(std::move(p));
  bool ever_maintenance = false;
  while (sched.step()) ever_maintenance |= sched.in_maintenance();
  EXPECT_FALSE(ever_maintenance);
  const Metrics m = sched.metrics();
  EXPECT_GT(m.monitor_actions, 0);
  EXPECT_EQ(m.maintenance_windows, 0);
  EXPECT_EQ(m.maintenance_steps, 0);
  EXPECT_EQ(m.degraded_tokens, 0);
  EXPECT_EQ(sched.request(id).degraded_tokens, 0);
}

// --- integrity-monitor interaction -----------------------------------

TEST(ServeIntegrity, MidServeAbftActionsDoNotCorruptInFlightOutputs) {
  // Ideal (noise-free) tiles with ABFT checksum columns: re-reads and
  // refreshes are output-identity, so a serving run under an
  // aggressively-triggering watchdog must produce bit-identical tokens
  // to an unmonitored run — the actions may not disturb in-flight
  // requests.
  util::ThreadPool::global().resize(1);
  cim::TileConfig tile = cim::TileConfig::ideal();
  tile.abft_checksum = true;
  auto run = [&](bool monitored, std::int64_t* actions_out) {
    nn::TransformerLM model = make_analog_model(tile);
    runtime::MonitorConfig mcfg;
    mcfg.policy = runtime::RefreshPolicy::kWatchdog;
    mcfg.flag_rate_budget = -1.0;  // every window is "over budget"
    mcfg.fallback_after_refreshes = 1000;  // never reach the digital rung
    runtime::IntegrityMonitor monitor(model, /*deploy_seed=*/4040, mcfg);
    SchedulerConfig cfg;
    cfg.max_batch = 3;
    cfg.record_logits = true;
    if (monitored) {
      cfg.monitor = &monitor;
      cfg.inspect_every = 1;
    }
    Scheduler sched(model, cfg);
    std::vector<std::int64_t> ids;
    for (const Job& j : kJobs) {
      RequestParams p;
      p.prompt = j.prompt;
      p.max_new_tokens = j.max_new;
      p.stream_seed = j.stream;
      ids.push_back(sched.submit(std::move(p)));
    }
    sched.run_until_idle();
    if (monitored) {
      EXPECT_GT(sched.metrics().monitor_inspections, 0);
      EXPECT_GT(sched.metrics().monitor_actions, 0);
      EXPECT_GT(monitor.total_rereads(), 0);
      EXPECT_GT(monitor.total_refreshes(), 0);
      EXPECT_EQ(monitor.total_fallbacks(), 0);
      EXPECT_TRUE(model.is_analog());
      if (actions_out != nullptr) {
        *actions_out = sched.metrics().monitor_actions;
      }
    }
    std::vector<RequestRecord> out;
    for (const auto id : ids) out.push_back(sched.request(id));
    return out;
  };
  const auto plain = run(false, nullptr);
  std::int64_t actions = 0;
  const auto healed = run(true, &actions);
  ASSERT_GT(actions, 0);
  for (std::size_t j = 0; j < kJobs.size(); ++j) {
    EXPECT_EQ(healed[j].state, RequestState::kFinished);
    EXPECT_EQ(healed[j].tokens, plain[j].tokens) << "job " << j;
    EXPECT_TRUE(logits_bitwise_equal(healed[j], plain[j])) << "job " << j;
  }
}

TEST(Scheduler, CancelAtEveryStepReleasesPoolExactlyOnce) {
  // cancel() may land at any step boundary relative to a request's
  // natural retirement — including the very step it finishes on, and
  // after it is already terminal. Whatever the interleaving, each slab
  // must go back to the pool exactly once: KvCachePool::release throws
  // on a non-live lease, so a double release aborts the test, and a
  // missed release leaves used_tokens above zero.
  nn::TransformerLM model(tiny_arch());
  for (int k = 0;; ++k) {
    SchedulerConfig cfg;
    cfg.max_batch = 3;
    Scheduler sched(model, cfg);
    std::vector<std::int64_t> ids;
    for (int i = 0; i < 4; ++i) {  // one more than max_batch: queue too
      RequestParams p;
      p.prompt = {1 + i, 2, 3};
      p.max_new_tokens = 3 + i;
      ids.push_back(sched.submit(std::move(p)));
    }
    for (int s = 0; s < k; ++s) sched.step();
    bool any_live = false;
    for (const auto id : ids) {
      const RequestState st = sched.request(id).state;
      any_live |= st == RequestState::kQueued || st == RequestState::kRunning;
      sched.cancel(id);  // false on terminal ids; must never throw
    }
    ASSERT_NO_THROW(sched.run_until_idle()) << "cancel at step " << k;
    EXPECT_EQ(sched.pool().live(), 0u) << "cancel at step " << k;
    EXPECT_EQ(sched.pool().used_tokens(), sched.pool().prefix_tokens())
        << "cancel at step " << k;
    EXPECT_EQ(sched.in_flight(), 0u) << "cancel at step " << k;
    for (const auto id : ids) {
      const RequestState st = sched.request(id).state;
      EXPECT_TRUE(st == RequestState::kCancelled ||
                  st == RequestState::kFinished)
          << "cancel at step " << k;
    }
    if (!any_live) break;  // k passed every natural retirement: done
  }
}

TEST(Scheduler, ConcurrentCancelRacingStepsNeverDoubleReleases) {
  // submit()/cancel() are allowed to race step() from other threads;
  // hammer cancels over the whole run and require the same exactly-once
  // release invariant at the end.
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    RequestParams p;
    p.prompt = {1 + i, 2};
    p.max_new_tokens = 8;
    ids.push_back(sched.submit(std::move(p)));
  }
  std::thread canceller([&sched, &ids] {
    for (int round = 0; round < 200; ++round) {
      for (const auto id : ids) sched.cancel(id);
    }
  });
  sched.run_until_idle();
  canceller.join();
  EXPECT_EQ(sched.pool().live(), 0u);
  EXPECT_EQ(sched.pool().used_tokens(), sched.pool().prefix_tokens());
  EXPECT_EQ(sched.in_flight(), 0u);
  for (const auto& rec : sched.completed()) {
    EXPECT_TRUE(rec.state == RequestState::kCancelled ||
                rec.state == RequestState::kFinished);
  }
}

TEST(Scheduler, ConcurrentSubmitAndCancelRacingStepLoop) {
  // The full thread contract at once: several submitter threads and a
  // canceller hammer the scheduler WHILE the owning thread runs the
  // step() loop (not just before it, as the tests above do). Under tsan
  // this is the data-race probe for the submit/cancel/step locking;
  // under any build it must end with every request terminal and every
  // KV lease released exactly once.
  nn::TransformerLM model(tiny_arch());
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.queue_capacity = 32;  // bounded: submitters also hit kQueueFull
  cfg.record_events = true;
  Scheduler sched(model, cfg);

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 20;
  std::atomic<bool> stop{false};
  std::atomic<int> submitted{0};
  std::mutex ids_m;
  std::vector<std::int64_t> ids;

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RequestParams p;
        p.prompt = {1 + t, 1 + (i % 7), 3};
        p.max_new_tokens = 4 + (i % 5);
        const std::int64_t id = sched.submit(std::move(p));
        ++submitted;
        {
          std::lock_guard<std::mutex> lock(ids_m);
          ids.push_back(id);
        }
      }
    });
  }
  std::thread canceller([&] {
    while (!stop.load()) {
      std::vector<std::int64_t> snapshot;
      {
        std::lock_guard<std::mutex> lock(ids_m);
        snapshot = ids;
      }
      // Cancel a pseudo-random third: enough churn to race retirement.
      for (std::size_t i = 0; i < snapshot.size(); i += 3) {
        sched.cancel(snapshot[i]);
      }
    }
  });

  // Step concurrently with the submissions until everything lands.
  while (submitted.load() < kSubmitters * kPerThread ||
         sched.in_flight() > 0) {
    sched.step();
    sched.drain_events();  // keep the event log bounded, as a server would
  }
  stop.store(true);
  for (auto& t : submitters) t.join();
  canceller.join();
  sched.step();  // apply any cancel that landed after the last step
  sched.drain_events();

  EXPECT_EQ(sched.in_flight(), 0u);
  EXPECT_EQ(sched.pool().live(), 0u);
  EXPECT_EQ(sched.pool().used_tokens(), sched.pool().prefix_tokens());
  const AuditSnapshot snap = sched.audit_snapshot();
  EXPECT_EQ(snap.pool_acquires, snap.pool_releases);
  int terminal = 0;
  for (const std::int64_t id : ids) {
    const RequestRecord rec = sched.request(id);
    EXPECT_TRUE(rec.state == RequestState::kFinished ||
                rec.state == RequestState::kCancelled ||
                rec.state == RequestState::kRejected)
        << "request " << id << " not terminal";
    ++terminal;
  }
  EXPECT_EQ(terminal, kSubmitters * kPerThread);
}

TEST(ServeMetrics, PercentileAndDumpsAreWellFormed) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0.95), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  nn::TransformerLM model(tiny_arch());
  Scheduler sched(model);
  RequestParams p;
  p.prompt = {1, 2, 3};
  p.max_new_tokens = 4;
  sched.submit(std::move(p));
  sched.run_until_idle();
  const Metrics m = sched.metrics();
  EXPECT_EQ(m.finished, 1);
  const std::string text = m.to_string();
  EXPECT_NE(text.find("serving metrics"), std::string::npos);
  const std::string json = m.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"finished\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kv_budget_tokens\":"), std::string::npos);
}

TEST(ServeMetrics, FreshMetricsDumpIsSafe) {
  // A dump before any traffic exercises every divide-by-count and
  // empty-percentile guard; all aggregates must read as exact zeros.
  const Metrics m;
  EXPECT_DOUBLE_EQ(m.mean_occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_queue_wait_steps(), 0.0);
  EXPECT_DOUBLE_EQ(m.tokens_per_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.ttft_p50_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.ttft_p95_s(), 0.0);
  const std::string text = m.to_string();
  EXPECT_NE(text.find("serving metrics"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  const std::string json = m.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"ttft_p50_s\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tokens_per_s\":0"), std::string::npos);
}

TEST(ServeMetrics, DumpSortsTtftSamplesAtMostOnce) {
  // Regression for the old percentile(): by-value vector copy + one
  // re-sort per quantile. Both ttft quantiles in a dump must now come
  // from a single sorted pass, and empty samples must not sort at all.
  Metrics m;
  m.ttft_s = {0.4, 0.1, 0.3, 0.2, 0.5};
  std::int64_t before = percentile_sort_count();
  const std::string text = m.to_string();
  EXPECT_EQ(percentile_sort_count() - before, 1);
  EXPECT_NE(text.find("p50 0.3000"), std::string::npos);
  before = percentile_sort_count();
  m.to_json();
  EXPECT_EQ(percentile_sort_count() - before, 1);
  m.ttft_s.clear();
  before = percentile_sort_count();
  m.to_string();
  m.to_json();
  EXPECT_DOUBLE_EQ(m.ttft_p50_s(), 0.0);
  EXPECT_EQ(percentile_sort_count(), before);
}

}  // namespace
}  // namespace nora::serve
