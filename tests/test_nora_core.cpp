// Tests for the NORA core: calibration, the smoothing vector (Sec. IV),
// deployment, and the distribution analytics behind Fig. 4 / Fig. 6.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nora.hpp"
#include "tensor/ops.hpp"

namespace nora::core {
namespace {

nn::TransformerConfig tiny_arch(const eval::SynthLambadaConfig& task,
                                float outlier_gain = 12.0f) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = task.vocab_size();
  cfg.d_model = 24;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 48;
  cfg.max_seq = task.seq_len;
  cfg.norm_gain = std::vector<float>(24, 1.0f);
  cfg.norm_gain[3] = outlier_gain;
  cfg.norm_gain[17] = outlier_gain * 1.5f;
  return cfg;
}

TEST(SmoothingVector, FormulaAndClamping) {
  LayerCalibration cal;
  cal.layer = "l";
  cal.act_abs_max = {16.0f, 4.0f, 0.0f, 1e-8f};
  cal.w_abs_max = {0.25f, 1.0f, 1.0f, 1e-9f};
  const auto s = smoothing_vector(cal, 0.5f, 1e-3f);
  EXPECT_NEAR(s[0], std::sqrt(16.0f) / std::sqrt(0.25f), 1e-5);  // 8
  EXPECT_NEAR(s[1], 2.0f, 1e-5);
  EXPECT_EQ(s[2], 1.0f);  // dead activation channel keeps s = 1
  EXPECT_GE(s[3], 1e-3f);
  // lambda extremes.
  const auto s0 = smoothing_vector(cal, 0.0f, 1e-3f);
  EXPECT_NEAR(s0[0], 1.0f / 0.25f, 1e-5);  // weights only
  const auto s1 = smoothing_vector(cal, 1.0f, 1e-3f);
  EXPECT_NEAR(s1[0], 16.0f, 1e-4);  // activations only
  LayerCalibration bad = cal;
  bad.w_abs_max.pop_back();
  EXPECT_THROW(smoothing_vector(bad, 0.5f, 1e-3f), std::invalid_argument);
}

TEST(SmoothingVector, DegenerateChannelsAndClampFloor) {
  LayerCalibration cal;
  cal.layer = "edge";
  //                 all-zero act | all-zero w row | both dead | tiny act
  cal.act_abs_max = {0.0f,          8.0f,            0.0f,       1e-10f};
  cal.w_abs_max   = {2.0f,          0.0f,            0.0f,       4.0f};
  const auto s = smoothing_vector(cal, 0.5f, 1e-3f);
  // A channel that never activates must not be migrated: s = 1 keeps the
  // weight column untouched.
  EXPECT_EQ(s[0], 1.0f);
  // An all-zero weight row would drive s -> inf (divide by 0^(1-lambda));
  // it also stays at the identity instead.
  EXPECT_EQ(s[1], 1.0f);
  EXPECT_EQ(s[2], 1.0f);
  // A live but minuscule activation hits the s_min floor exactly:
  // sqrt(1e-10)/sqrt(4) = 5e-6 < 1e-3.
  EXPECT_EQ(s[3], 1e-3f);
  // The floor follows the configured s_min.
  const auto s_loose = smoothing_vector(cal, 0.5f, 1e-7f);
  EXPECT_NEAR(s_loose[3], 5e-6f, 1e-9f);
  // Degenerate channels are no-ops end to end: folding s into weights
  // and unfolding at the input changes nothing for s = 1 channels.
  for (float v : s) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0f);
  }
}

TEST(Calibrate, CapturesPerChannelRanges) {
  eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  nn::TransformerLM model(tiny_arch(task_cfg));
  const auto cals = calibrate(model, task, 4);
  EXPECT_EQ(cals.size(), model.linear_layers().size());
  for (const auto& cal : cals) {
    EXPECT_FALSE(cal.act_abs_max.empty());
    EXPECT_EQ(cal.act_abs_max.size(), cal.w_abs_max.size());
    float max_act = 0.0f;
    for (float a : cal.act_abs_max) max_act = std::max(max_act, a);
    EXPECT_GT(max_act, 0.0f) << cal.layer;
  }
  // Outlier channels show up in the QKV input ranges (post-norm gain).
  const auto& qkv = cals[0];
  ASSERT_EQ(qkv.layer, "blk0.attn.qkv");
  float typical = 0.0f;
  for (std::size_t c = 0; c < qkv.act_abs_max.size(); ++c) {
    if (c != 3 && c != 17) typical = std::max(typical, qkv.act_abs_max[c]);
  }
  EXPECT_GT(qkv.act_abs_max[3], 2.0f * typical);
}

TEST(DeployAnalog, IdealTileWithNoraIsExact) {
  eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  nn::TransformerLM model(tiny_arch(task_cfg));
  const auto ex = task.make_example("test", 0);
  const Matrix digital = model.forward(ex.tokens);
  DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.nora.enabled = true;
  const auto cals = deploy_analog(model, task, opts);
  EXPECT_EQ(cals.size(), model.linear_layers().size());
  EXPECT_TRUE(model.is_analog());
  const Matrix analog = model.forward(ex.tokens);
  const double rel = std::sqrt(ops::mse(digital, analog)) /
                     (ops::frobenius_norm(digital) /
                      std::sqrt(double(digital.size())));
  EXPECT_LT(rel, 1e-3);  // Eq. 6-8 cancel exactly up to fp accumulation
}

TEST(DeployAnalog, RejectsCalibrationOnAnalogModel) {
  eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  nn::TransformerLM model(tiny_arch(task_cfg));
  DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.nora.enabled = false;
  deploy_analog(model, task, opts);
  EXPECT_THROW(calibrate(model, task, 2), std::logic_error);
  model.to_digital();
  EXPECT_NO_THROW(calibrate(model, task, 2));
}

TEST(DistributionStats, NoraReducesInputKurtosis) {
  eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  nn::TransformerLM model(tiny_arch(task_cfg, 20.0f));
  NoraOptions nora;
  nora.calib_examples = 8;
  const auto naive = distribution_stats(model, task, nora, false);
  const auto rescaled = distribution_stats(model, task, nora, true);
  ASSERT_EQ(naive.size(), rescaled.size());
  // The QKV inputs (post planted gain) must show the paper's effect:
  // large kurtosis collapsing under NORA, weight kurtosis rising a bit.
  const auto& n0 = naive[0];
  const auto& r0 = rescaled[0];
  EXPECT_GT(n0.input_kurtosis, 10.0);
  EXPECT_LT(r0.input_kurtosis, 0.5 * n0.input_kurtosis);
  EXPECT_GE(r0.weight_kurtosis, n0.weight_kurtosis - 0.5);
}

TEST(ScalingFactorStats, NoraShrinksAlphaGamma) {
  eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  const auto ex = task.make_example("test", 0);
  auto run = [&](bool nora_on) {
    nn::TransformerLM model(tiny_arch(task_cfg, 20.0f));
    DeployOptions opts;
    opts.tile = cim::TileConfig::paper_table2();
    opts.nora.enabled = nora_on;
    deploy_analog(model, task, opts);
    model.forward(ex.tokens);
    double sum = 0.0;
    const auto stats = scaling_factor_stats(model);
    for (const auto& st : stats) sum += st.alpha_gamma_gmax;
    return sum / static_cast<double>(stats.size());
  };
  const double ag_naive = run(false);
  const double ag_nora = run(true);
  EXPECT_LT(ag_nora, ag_naive);
}

TEST(SetReadTime, RequiresDriftDeployment) {
  eval::SynthLambadaConfig task_cfg;
  const eval::SynthLambada task(task_cfg);
  nn::TransformerLM model(tiny_arch(task_cfg));
  DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.tile.drift_enabled = true;
  opts.tile.drift.nu_sigma = 0.0f;
  opts.nora.enabled = false;
  deploy_analog(model, task, opts);
  const auto ex = task.make_example("test", 1);
  const Matrix y0 = model.forward(ex.tokens);
  set_read_time(model, 3600.0f);
  const Matrix y1 = model.forward(ex.tokens);
  // Deterministic drift + compensation cancels exactly.
  EXPECT_LT(ops::mse(y0, y1), 1e-8);
}

}  // namespace
}  // namespace nora::core
