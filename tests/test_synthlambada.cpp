// Tests for the SynthLambada dataset generator.
#include <gtest/gtest.h>

#include <set>

#include "eval/synthlambada.hpp"

namespace nora::eval {
namespace {

TEST(SynthLambada, DeterministicPerSplitAndIndex) {
  const SynthLambada task;
  const auto a = task.make_example("test", 5);
  const auto b = task.make_example("test", 5);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.answer, b.answer);
  const auto c = task.make_example("test", 6);
  EXPECT_NE(a.tokens, c.tokens);
  const auto d = task.make_example("calib", 5);
  EXPECT_NE(a.tokens, d.tokens);  // splits are disjoint streams
}

TEST(SynthLambada, StructureInvariants) {
  SynthLambadaConfig cfg;
  cfg.n_queries = 4;
  const SynthLambada task(cfg);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto ex = task.make_example("train", i);
    ASSERT_EQ(static_cast<int>(ex.tokens.size()), cfg.seq_len);
    EXPECT_EQ(ex.tokens[0], cfg.bos());
    // All tokens in vocab range.
    for (int t : ex.tokens) {
      ASSERT_GE(t, 0);
      ASSERT_LT(t, cfg.vocab_size());
    }
    // Final two tokens: QUERY then a key; answer is a value token.
    const int t_last = ex.tokens.back();
    EXPECT_EQ(ex.tokens[ex.tokens.size() - 2], cfg.query());
    EXPECT_GE(t_last, cfg.key_id(0));
    EXPECT_LT(t_last, cfg.key_id(cfg.n_keys));
    EXPECT_GE(ex.answer, cfg.val_id(0));
    EXPECT_LT(ex.answer, cfg.val_id(cfg.n_vals));
    // The final position is supervised at full weight with the answer.
    EXPECT_EQ(ex.targets.back(), ex.answer);
    EXPECT_EQ(ex.weights.back(), 1.0f);
  }
}

TEST(SynthLambada, AnswerIsGroundedInContext) {
  // The queried key occurs in the body, immediately followed by the
  // answer value (the retrieval is well-posed).
  const SynthLambada task;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto ex = task.make_example("test", i);
    const int key = ex.tokens.back();
    bool found = false;
    for (std::size_t t = 1; t + 1 < ex.tokens.size() - 2; ++t) {
      if (ex.tokens[t] == key && ex.tokens[t + 1] == ex.answer) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "example " << i;
  }
}

TEST(SynthLambada, FixedSlotsPlacePairsAtLeadingPositions) {
  SynthLambadaConfig cfg;  // fixed_slots = true by default
  const SynthLambada task(cfg);
  const auto ex = task.make_example("test", 3);
  for (int k = 0; k < cfg.n_pairs; ++k) {
    const int key_pos = 1 + 2 * k;
    EXPECT_GE(ex.tokens[static_cast<std::size_t>(key_pos)], cfg.key_id(0));
    EXPECT_LT(ex.tokens[static_cast<std::size_t>(key_pos)],
              cfg.key_id(cfg.n_keys));
    EXPECT_GE(ex.tokens[static_cast<std::size_t>(key_pos) + 1], cfg.val_id(0));
    EXPECT_LT(ex.tokens[static_cast<std::size_t>(key_pos) + 1],
              cfg.val_id(cfg.n_vals));
  }
}

TEST(SynthLambada, RandomSlotsVaryKeyPositions) {
  SynthLambadaConfig cfg;
  cfg.fixed_slots = false;
  const SynthLambada task(cfg);
  std::set<std::size_t> first_key_positions;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto ex = task.make_example("train", i);
    for (std::size_t t = 1; t < ex.tokens.size() - 2; ++t) {
      if (ex.tokens[t] >= cfg.key_id(0) && ex.tokens[t] < cfg.key_id(cfg.n_keys)) {
        first_key_positions.insert(t);
        break;
      }
    }
  }
  EXPECT_GT(first_key_positions.size(), 3u);
}

TEST(SynthLambada, AuxWeightAddsNextTokenTargets) {
  SynthLambadaConfig cfg;
  cfg.aux_weight = 0.1f;
  const SynthLambada task(cfg);
  const auto ex = task.make_example("train", 1);
  // Early positions carry next-token targets at the aux weight.
  EXPECT_EQ(ex.targets[0], ex.tokens[1]);
  EXPECT_FLOAT_EQ(ex.weights[0], 0.1f);
}

TEST(SynthLambada, CalibrationSetShapes) {
  const SynthLambada task;
  const auto calib = task.calibration_set(7);
  EXPECT_EQ(calib.size(), 7u);
  for (const auto& seq : calib) {
    EXPECT_EQ(static_cast<int>(seq.size()), task.config().seq_len);
  }
}

TEST(SynthLambada, ValidatesConfig) {
  SynthLambadaConfig tiny;
  tiny.seq_len = 5;
  tiny.n_pairs = 3;
  EXPECT_THROW(SynthLambada{tiny}, std::invalid_argument);
  SynthLambadaConfig bad_pairs;
  bad_pairs.n_pairs = bad_pairs.n_keys + 1;
  bad_pairs.seq_len = 128;
  EXPECT_THROW(SynthLambada{bad_pairs}, std::invalid_argument);
  SynthLambadaConfig bad_queries;
  bad_queries.n_queries = 0;
  EXPECT_THROW(SynthLambada{bad_queries}, std::invalid_argument);
}

}  // namespace
}  // namespace nora::eval
