// Tests for the deterministic work pool: full index coverage, disjoint
// writes, nesting, exception propagation, resize semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace nora::util {
namespace {

TEST(ThreadPool, SequentialWidthRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));  // no races at width 1
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::int64_t n : {1, 2, 3, 7, 100, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
    }
  }
}

TEST(ThreadPool, GrainChunksStillCoverEverything) {
  ThreadPool pool(3);
  const std::int64_t n = 997;  // prime: never divides evenly into chunks
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for(
      n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
      /*grain=*/64);
  std::int64_t total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, n);
}

TEST(ThreadPool, DisjointWritesProduceExactResult) {
  ThreadPool pool(4);
  const std::int64_t n = 5000;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  pool.parallel_for(n, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = i * i;
  });
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(4);
  const std::int64_t outer = 8, inner = 64;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(outer * inner));
  pool.parallel_for(outer, [&](std::int64_t i) {
    pool.parallel_for(inner, [&](std::int64_t j) {
      hits[static_cast<std::size_t>(i * inner + j)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::int64_t i) {
                          if (i == 37) throw std::runtime_error("item 37");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ResizeAndEnsure) {
  ThreadPool pool(1);
  pool.ensure(3);
  EXPECT_EQ(pool.threads(), 3);
  pool.ensure(2);  // never shrinks
  EXPECT_EQ(pool.threads(), 3);
  pool.resize(2);
  EXPECT_EQ(pool.threads(), 2);
  EXPECT_THROW(pool.resize(0), std::invalid_argument);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, GlobalSingletonStartsSequential) {
  EXPECT_GE(ThreadPool::global().threads(), 1);
}

TEST(ThreadPool, EmptyLoopIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace nora::util
