// Tests for the deterministic work pool: full index coverage, disjoint
// writes, nesting, exception propagation, resize semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace nora::util {
namespace {

TEST(ThreadPool, SequentialWidthRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));  // no races at width 1
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::int64_t n : {1, 2, 3, 7, 100, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
    }
  }
}

TEST(ThreadPool, GrainChunksStillCoverEverything) {
  ThreadPool pool(3);
  const std::int64_t n = 997;  // prime: never divides evenly into chunks
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for(
      n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
      /*grain=*/64);
  std::int64_t total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, n);
}

TEST(ThreadPool, DisjointWritesProduceExactResult) {
  ThreadPool pool(4);
  const std::int64_t n = 5000;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  pool.parallel_for(n, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = i * i;
  });
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(4);
  const std::int64_t outer = 8, inner = 64;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(outer * inner));
  pool.parallel_for(outer, [&](std::int64_t i) {
    pool.parallel_for(inner, [&](std::int64_t j) {
      hits[static_cast<std::size_t>(i * inner + j)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::int64_t i) {
                          if (i == 37) throw std::runtime_error("item 37");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ResizeAndEnsure) {
  // Widths above hardware_concurrency() clamp (a 1-core CI host installs
  // width 1 everywhere), so assert against the clamp, not the request.
  ThreadPool pool(1);
  pool.ensure(3);
  EXPECT_EQ(pool.threads(), ThreadPool::clamp_width(3));
  pool.ensure(2);  // never shrinks
  EXPECT_EQ(pool.threads(), ThreadPool::clamp_width(3));
  pool.resize(2);
  EXPECT_EQ(pool.threads(), ThreadPool::clamp_width(2));
  pool.resize(0);  // clamps to 1 instead of throwing
  EXPECT_EQ(pool.threads(), 1);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, WidthClampsDeterministically) {
  // Non-positive widths clamp to 1 (sequential), both at construction
  // and on resize — a config of "0 threads" must never throw mid-serve.
  ThreadPool zero(0);
  EXPECT_EQ(zero.threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.threads(), 1);
  // Absurd widths clamp to hardware_concurrency() instead of spawning
  // thousands of OS threads. When hc is unknown (0) the request stands,
  // so only assert the clamp when hc is reported.
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc > 0) {
    ThreadPool huge(1 << 20);
    EXPECT_EQ(huge.threads(), static_cast<int>(hc));
    EXPECT_EQ(ThreadPool::clamp_width(1 << 20), static_cast<int>(hc));
  }
  EXPECT_EQ(ThreadPool::clamp_width(0), 1);
  EXPECT_EQ(ThreadPool::clamp_width(-7), 1);
  EXPECT_EQ(ThreadPool::clamp_width(1), 1);
}

TEST(ThreadPool, CrossPoolNestingDoesNotDeadlock) {
  // A chip pool draining work inside a job running on another pool is
  // exactly the sharded-execution shape: the outer pool's worker blocks
  // in the inner parallel_for but assists the inner job, so no thread
  // ever waits on a queue it alone could serve.
  ThreadPool outer(2);
  ThreadPool chip_a(2);
  ThreadPool chip_b(2);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(2 * 64));
  outer.parallel_for(2, [&](std::int64_t c) {
    ThreadPool& chip = (c == 0) ? chip_a : chip_b;
    chip.parallel_for(64, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(c * 64 + i)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Nested construction inside a running job must also complete.
  outer.parallel_for(2, [&](std::int64_t c) {
    ThreadPool inner(2);
    std::atomic<std::int64_t> sum{0};
    inner.parallel_for(16, [&](std::int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 120) << "chip " << c;
  });
}

TEST(ThreadPool, GlobalSingletonStartsSequential) {
  EXPECT_GE(ThreadPool::global().threads(), 1);
}

TEST(ThreadPool, EmptyLoopIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace nora::util
