// Tests for the hard-fault subsystem: fault-map sampling, stuck-at
// degradation, spare-column remapping, the program-verify-reprogram
// retry loop, health-check fallback — and the regression guarantee that
// fault-free configurations are bit-identical to the pre-fault-subsystem
// simulator (golden values captured from the seed build).
#include <gtest/gtest.h>

#include <cmath>

#include "cim/analog_matmul.hpp"
#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "faults/fault_model.hpp"
#include "model/zoo.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace nora {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

double rel_error(const Matrix& y, const Matrix& ref) {
  return std::sqrt(ops::mse(y, ref)) /
         (ops::frobenius_norm(ref) / std::sqrt(double(ref.size())));
}

TEST(FaultMap, DefaultConfigSamplesNothing) {
  EXPECT_FALSE(faults::FaultConfig{}.any());
  faults::FaultConfig cfg;
  cfg.stuck_zero_rate = 0.01f;
  EXPECT_TRUE(cfg.any());
  cfg = faults::FaultConfig{};
  cfg.tile_yield = 0.9f;
  EXPECT_TRUE(cfg.any());
}

TEST(FaultMap, SamplingRatesAndDeterminism) {
  faults::FaultConfig cfg;
  cfg.stuck_zero_rate = 0.10f;
  cfg.stuck_gmax_rate = 0.05f;
  cfg.dead_row_rate = 0.10f;
  util::Rng rng(42);
  const auto map = faults::FaultMap::sample(200, 100, cfg, rng);
  const double n = 200.0 * 100.0;
  // Stuck counts near their expectations (dead rows add stuck-zeros).
  EXPECT_GT(map.stuck_gmax_count(), 0.02 * n);
  EXPECT_LT(map.stuck_gmax_count(), 0.09 * n);
  EXPECT_GT(map.stuck_zero_count(), 0.05 * n);
  EXPECT_GT(map.dead_rows(), 4);
  EXPECT_LT(map.dead_rows(), 50);
  EXPECT_EQ(map.faulty_total(), map.stuck_zero_count() + map.stuck_gmax_count());
  // Dead rows force a full row of stuck-zero devices.
  EXPECT_GE(map.stuck_zero_count(), map.dead_rows() * 100);
  // Same seed, same map; different seed, different map.
  util::Rng rng2(42);
  const auto map2 = faults::FaultMap::sample(200, 100, cfg, rng2);
  std::int64_t diffs = 0;
  for (std::int64_t j = 0; j < 100; ++j) {
    for (std::int64_t k = 0; k < 200; ++k) {
      if (map.at(j, k) != map2.at(j, k)) ++diffs;
    }
  }
  EXPECT_EQ(diffs, 0);
  util::Rng rng3(43);
  const auto map3 = faults::FaultMap::sample(200, 100, cfg, rng3);
  for (std::int64_t j = 0; j < 100 && diffs == 0; ++j) {
    for (std::int64_t k = 0; k < 200; ++k) {
      if (map.at(j, k) != map3.at(j, k)) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultMap, TileYieldKillsWholeTile) {
  faults::FaultConfig cfg;
  cfg.tile_yield = 0.0f;  // certain death
  util::Rng rng(7);
  const auto map = faults::FaultMap::sample(16, 8, cfg, rng);
  EXPECT_TRUE(map.tile_dead());
  EXPECT_EQ(map.faulty_total(), 16 * 8);
  EXPECT_DOUBLE_EQ(map.fault_fraction(), 1.0);
}

// Golden regression: with every fault knob at its default (zero), the
// analog output must be bit-identical across refactors of the fault
// subsystem. Values captured after the one-time runtime-stream relayout
// (counter-keyed per-work-item RNG streams, see DESIGN.md "Threading &
// RNG streams"); Table II config, 32x24 tile grid, seed 4242. Two
// consecutive forwards check that the forward-epoch counter advances
// (fresh noise per call) exactly as the old sequential stream did.
TEST(FaultFreeRegression, BitIdenticalToSeedBuild) {
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(5, 70, 202, 1.0f);
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cim::AnalogMatmul unit(w, {}, cfg, 4242);
  const Matrix y = unit.forward(x);
  const Matrix y2 = unit.forward(x);
  const struct { int t, j; float first, second; } golden[] = {
      {0, 0, 6.54166842f, 6.70757914f},   {0, 17, 5.7183094f, 5.7183094f},
      {0, 49, 3.99117732f, 4.56156254f},  {2, 0, 2.61159039f, 2.25431633f},
      {2, 17, -3.42510891f, -4.04196787f}, {2, 49, 4.47333384f, 4.00965929f},
      {4, 0, -2.54052782f, -3.13647461f}, {4, 17, -2.83991742f, -3.05528641f},
      {4, 49, 2.4728806f, 2.4728806f},
  };
  for (const auto& g : golden) {
    EXPECT_EQ(y.at(g.t, g.j), g.first) << "t=" << g.t << " j=" << g.j;
    EXPECT_EQ(y2.at(g.t, g.j), g.second) << "t=" << g.t << " j=" << g.j;
  }
}

TEST(FaultFreeRegression, NoraPathBitIdenticalToSeedBuild) {
  const Matrix w = random_matrix(70, 50, 101);
  const Matrix x = random_matrix(5, 70, 202, 1.0f);
  std::vector<float> s(70);
  util::Rng sr(303);
  for (auto& v : s) v = static_cast<float>(std::exp(sr.gaussian(0.0, 0.7)));
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.tile_rows = 32;
  cfg.tile_cols = 24;
  cim::AnalogMatmul unit(w, s, cfg, 4242);
  const Matrix y = unit.forward(x);
  const struct { int t, j; float v; } golden[] = {
      {1, 5, 6.26226425f}, {1, 33, 3.6862278f},
      {3, 5, -6.56141138f}, {3, 33, 2.44109011f},
  };
  for (const auto& g : golden) {
    EXPECT_EQ(y.at(g.t, g.j), g.v) << "t=" << g.t << " j=" << g.j;
  }
}

TEST(FaultInjection, StuckFaultsDegradeOutputMonotonically) {
  const Matrix w = random_matrix(96, 64, 31);
  const Matrix x = random_matrix(8, 96, 32, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  double prev = -1.0;
  for (const double rate : {0.0, 0.01, 0.05, 0.2}) {
    cim::TileConfig cfg = cim::TileConfig::ideal();
    cfg.faults.stuck_zero_rate = static_cast<float>(rate);
    cim::AnalogMatmul unit(w, {}, cfg, 33);
    const double err = rel_error(unit.forward(x), ref);
    EXPECT_GT(err, prev) << "rate " << rate;
    prev = err;
  }
  // Stuck-at-gmax is far more damaging than stuck-at-zero at equal rate
  // (a zeroed weight loses a contribution; a railed one adds a large,
  // arbitrary-signed current).
  cim::TileConfig zero_cfg = cim::TileConfig::ideal();
  zero_cfg.faults.stuck_zero_rate = 0.05f;
  cim::TileConfig gmax_cfg = cim::TileConfig::ideal();
  gmax_cfg.faults.stuck_gmax_rate = 0.05f;
  const double err_zero =
      rel_error(cim::AnalogMatmul(w, {}, zero_cfg, 34).forward(x), ref);
  const double err_gmax =
      rel_error(cim::AnalogMatmul(w, {}, gmax_cfg, 34).forward(x), ref);
  EXPECT_GT(err_gmax, err_zero);
}

TEST(FaultRepair, SpareColumnsRemapDeadBitlines) {
  const Matrix w = random_matrix(64, 48, 41);
  const Matrix x = random_matrix(6, 64, 42, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.faults.dead_col_rate = 0.25f;
  cim::AnalogMatmul broken(w, {}, cfg, 43);
  const double err_broken = rel_error(broken.forward(x), ref);
  EXPECT_EQ(broken.fault_stats().cols_remapped, 0);
  EXPECT_GT(err_broken, 0.1);

  cim::TileConfig repaired_cfg = cfg;
  repaired_cfg.spare_cols = 24;
  cim::AnalogMatmul repaired(w, {}, repaired_cfg, 43);
  const auto stats = repaired.fault_stats();
  EXPECT_GT(stats.cols_remapped, 0);
  EXPECT_LT(stats.residual_fault_fraction(),
            stats.raw_fault_fraction());
  const double err_repaired = rel_error(repaired.forward(x), ref);
  EXPECT_LT(err_repaired, 0.5 * err_broken);
}

TEST(FaultRepair, ProgramVerifyRetryShrinksProgrammingError) {
  const Matrix w = random_matrix(80, 40, 51);
  const Matrix x = random_matrix(6, 80, 52, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.prog_noise_scale = 6.0f;  // exaggerated single-shot error
  cfg.program_tolerance = 0.01f;
  cim::AnalogMatmul one_shot(w, {}, cfg, 53);
  const double err_one_shot = rel_error(one_shot.forward(x), ref);
  EXPECT_EQ(one_shot.fault_stats().reprogram_devices, 0);

  cim::TileConfig retry_cfg = cfg;
  retry_cfg.max_program_retries = 5;
  cim::AnalogMatmul retried(w, {}, retry_cfg, 53);
  const auto stats = retried.fault_stats();
  EXPECT_GT(stats.reprogram_devices, 0);
  EXPECT_GE(stats.reprogram_rounds, stats.reprogram_devices);
  const double err_retried = rel_error(retried.forward(x), ref);
  EXPECT_LT(err_retried, 0.5 * err_one_shot);
}

TEST(FaultRepair, StuckDevicesAreVerifyFailures) {
  const Matrix w = random_matrix(64, 32, 61);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.prog_noise_scale = 1.0f;
  cfg.max_program_retries = 3;
  cfg.program_tolerance = 0.005f;
  cfg.faults.stuck_gmax_rate = 0.05f;
  cim::AnalogMatmul unit(w, {}, cfg, 62);
  const auto stats = unit.fault_stats();
  // Railed devices sit ~1 normalized unit from their target — every one
  // of them must be reported as beyond repair.
  EXPECT_GE(stats.verify_failures, stats.faulty_devices * 9 / 10);
}

TEST(FaultStats, SpareColumnsShrinkLogicalTileCapacity) {
  const Matrix w = random_matrix(40, 100, 71);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.tile_rows = 64;
  cfg.tile_cols = 32;
  cfg.spare_cols = 8;  // 24 logical columns per tile -> ceil(100/24) = 5
  cim::AnalogMatmul unit(w, {}, cfg, 72);
  EXPECT_EQ(unit.fault_stats().tiles, 5);
  cfg.spare_cols = 32;  // no capacity left
  EXPECT_THROW(cim::AnalogMatmul(w, {}, cfg, 72), std::invalid_argument);
  // Ideal output is unaffected by the reserved spares.
  cim::TileConfig plain = cim::TileConfig::ideal();
  plain.tile_rows = 64;
  plain.tile_cols = 32;
  cim::TileConfig spared = plain;
  spared.spare_cols = 8;
  const Matrix x = random_matrix(4, 40, 73, 1.0f);
  const Matrix y_plain = cim::AnalogMatmul(w, {}, plain, 74).forward(x);
  const Matrix y_spared = cim::AnalogMatmul(w, {}, spared, 74).forward(x);
  EXPECT_LT(ops::mse(y_plain, y_spared), 1e-10);
}

TEST(NonFiniteGuard, NamesLayerTokenAndColumn) {
  const Matrix w = random_matrix(16, 8, 81);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.scaling = cim::InputScaling::kNone;  // pass NaN straight through
  cim::AnalogMatmul unit(w, {}, cfg, 82);
  unit.set_label("blk0.mlp.up");
  Matrix x(3, 16);
  x.fill(0.25f);
  EXPECT_NO_THROW(unit.forward(x));
  x.at(1, 4) = std::numeric_limits<float>::quiet_NaN();
  try {
    unit.forward(x);
    FAIL() << "expected non-finite guard to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("blk0.mlp.up"), std::string::npos) << what;
    EXPECT_NE(what.find("token 1"), std::string::npos) << what;
  }
}

// --- end-to-end fault tolerance on a trained micro model ---

class FaultDeployTest : public ::testing::Test {
 protected:
  static eval::SynthLambadaConfig task_cfg() {
    eval::SynthLambadaConfig t;
    t.n_queries = 4;
    return t;
  }

  // Same micro model as the integration suite: planted outlier channels
  // make naive analog deployment lossy, so NORA has room to matter.
  static nn::TransformerLM* trained_model() {
    static std::unique_ptr<nn::TransformerLM> model = [] {
      nn::TransformerConfig arch;
      const auto t = task_cfg();
      arch.vocab_size = t.vocab_size();
      arch.max_seq = t.seq_len;
      arch.d_model = 48;
      arch.n_layers = 2;
      arch.n_heads = 4;
      arch.d_ff = 96;
      arch.seed = 11;
      model::OutlierSpec outliers{0.08f, 22.0f, 38.0f, 11};
      arch.norm_gain = model::planted_gains(arch.d_model, outliers);
      auto m = std::make_unique<nn::TransformerLM>(arch);
      model::compensate_planted_gains(*m);
      train::TrainConfig tc;
      tc.steps = 1200;
      tc.eval_every = 50;
      tc.target_accuracy = 0.95;
      tc.verbose = false;
      train::train_lm(*m, eval::SynthLambada(task_cfg()), tc);
      return m;
    }();
    return model.get();
  }

  static double eval_accuracy(nn::TransformerLM& m) {
    eval::EvalOptions eo;
    eo.n_examples = 64;
    eval::SynthLambadaConfig t = task_cfg();
    t.n_queries = 1;
    return eval::evaluate(m, eval::SynthLambada(t), eo).accuracy;
  }

  static double deploy_and_eval(nn::TransformerLM& model,
                                const core::DeployOptions& opts,
                                faults::DeploymentReport* report = nullptr) {
    model.to_digital();
    const eval::SynthLambada task(task_cfg());
    core::deploy_analog(model, task, opts, report);
    const double acc = eval_accuracy(model);
    model.to_digital();
    return acc;
  }
};

TEST_F(FaultDeployTest, AccuracyDegradesMonotonicallyWithFaultRate) {
  nn::TransformerLM& model = *trained_model();
  double prev = 2.0;
  std::vector<double> accs;
  for (const double rate : {0.0, 0.02, 0.1, 0.4}) {
    core::DeployOptions opts;
    opts.tile = cim::TileConfig::ideal();
    opts.tile.faults.stuck_zero_rate = static_cast<float>(0.8 * rate);
    opts.tile.faults.stuck_gmax_rate = static_cast<float>(0.2 * rate);
    const double acc = deploy_and_eval(model, opts);
    accs.push_back(acc);
    EXPECT_LE(acc, prev + 0.02) << "rate " << rate;  // monotone (small slack)
    prev = acc;
  }
  EXPECT_GE(accs.front(), 0.9);                 // fault-free is near fp32
  EXPECT_LT(accs.back(), accs.front() - 0.3);   // heavy faults are fatal
}

TEST_F(FaultDeployTest, RepairRecoversAccuracyAtModerateFaultRates) {
  nn::TransformerLM& model = *trained_model();
  core::DeployOptions clean;
  clean.tile = cim::TileConfig::paper_table2();
  clean.nora.enabled = true;
  const double acc_clean = deploy_and_eval(model, clean);

  core::DeployOptions faulty = clean;
  faulty.tile.faults.dead_col_rate = 0.15f;
  faulty.tile.faults.stuck_zero_rate = 0.01f;
  const double acc_faulty = deploy_and_eval(model, faulty);

  core::DeployOptions repaired = faulty;
  repaired.tile.spare_cols = 48;
  repaired.tile.max_program_retries = 3;
  faults::DeploymentReport report;
  const double acc_repaired = deploy_and_eval(model, repaired, &report);

  EXPECT_LT(acc_faulty, acc_clean - 0.1);  // faults hurt
  EXPECT_GT(acc_repaired, acc_faulty);     // repair claws accuracy back
  EXPECT_GE(acc_repaired, acc_clean - 0.08);
  std::int64_t remapped = 0;
  for (const auto& l : report.layers) remapped += l.faults.cols_remapped;
  EXPECT_GT(remapped, 0);
}

TEST_F(FaultDeployTest, UnrepairableLayersFallBackToDigitalWithReport) {
  nn::TransformerLM& model = *trained_model();
  model.to_digital();
  const double acc_digital = eval_accuracy(model);

  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.tile.faults.stuck_zero_rate = 0.4f;  // far beyond any repair
  opts.health.enabled = true;
  opts.health.max_residual_fault_fraction = 0.02f;
  faults::DeploymentReport report;
  const double acc = deploy_and_eval(model, opts, &report);

  const auto n_layers = static_cast<int>(report.layers.size());
  EXPECT_GT(n_layers, 0);
  EXPECT_EQ(report.digital_fallbacks(), n_layers);
  EXPECT_EQ(report.analog_layers(), 0);
  for (const auto& l : report.layers) {
    EXPECT_FALSE(l.analog);
    EXPECT_NE(l.reason.find("residual fault density"), std::string::npos)
        << l.reason;
  }
  // Every layer degraded to digital: accuracy is exactly the digital one.
  EXPECT_EQ(acc, acc_digital);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("DIGITAL"), std::string::npos);
  EXPECT_NE(text.find("fallback"), std::string::npos);
}

TEST_F(FaultDeployTest, AdcSaturationTriggersFallback) {
  nn::TransformerLM& model = *trained_model();
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::ideal();
  opts.tile.adc_bits = 7;
  opts.tile.adc_bound = 0.05f;  // absurdly tight full scale: saturates
  opts.health.enabled = true;
  opts.health.max_adc_saturation_rate = 0.3f;
  faults::DeploymentReport report;
  deploy_and_eval(model, opts, &report);
  EXPECT_GT(report.digital_fallbacks(), 0);
  bool saw_reason = false;
  for (const auto& l : report.layers) {
    if (!l.analog && l.reason.find("ADC saturation") != std::string::npos) {
      saw_reason = true;
    }
  }
  EXPECT_TRUE(saw_reason);
}

TEST_F(FaultDeployTest, HealthProbeLeavesNoRngTrace) {
  nn::TransformerLM& model = *trained_model();
  const eval::SynthLambada task(task_cfg());
  const auto ex = task.make_example("test", 3);

  model.to_digital();
  core::DeployOptions plain;
  plain.tile = cim::TileConfig::paper_table2();
  core::deploy_analog(model, task, plain);
  const Matrix y_plain = model.forward(ex.tokens);

  model.to_digital();
  core::DeployOptions probed = plain;
  probed.health.enabled = true;
  faults::DeploymentReport report;
  core::deploy_analog(model, task, probed, &report);
  EXPECT_EQ(report.digital_fallbacks(), 0);
  const Matrix y_probed = model.forward(ex.tokens);
  model.to_digital();
  // Survivors are re-programmed from their original seeds, so health
  // checking must not perturb the deployed noise streams at all.
  EXPECT_EQ(ops::mse(y_plain, y_probed), 0.0);
}

}  // namespace
}  // namespace nora
