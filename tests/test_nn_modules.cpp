// Unit tests for the neural-network modules (forward semantics; the
// backward passes are covered by the finite-difference suite).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/norm.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"

namespace nora::nn {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, 1.0f);
  return m;
}

TEST(Activations, GeluKnownValues) {
  EXPECT_NEAR(gelu(0.0f), 0.0f, 1e-6);
  EXPECT_NEAR(gelu(3.0f), 3.0f, 1e-2);    // saturates to identity
  EXPECT_NEAR(gelu(-3.0f), 0.0f, 1e-2);   // saturates to zero
  EXPECT_LT(gelu(-1.0f), 0.0f);           // dips below zero
  // Numerical derivative agreement.
  for (float x = -2.0f; x <= 2.0f; x += 0.37f) {
    const float fd = (gelu(x + 1e-3f) - gelu(x - 1e-3f)) / 2e-3f;
    EXPECT_NEAR(gelu_grad(x), fd, 1e-3);
  }
}

TEST(Activations, SiluKnownValues) {
  EXPECT_NEAR(silu(0.0f), 0.0f, 1e-6);
  EXPECT_NEAR(silu(5.0f), 5.0f, 5e-2);
  for (float x = -2.0f; x <= 2.0f; x += 0.37f) {
    const float fd = (silu(x + 1e-3f) - silu(x - 1e-3f)) / 2e-3f;
    EXPECT_NEAR(silu_grad(x), fd, 1e-3);
  }
}

TEST(Linear, ForwardMatchesGemmPlusBias) {
  util::Rng rng(1);
  Linear lin("l", 8, 4, rng, 0.5f);
  lin.bias().value.at(0, 2) = 3.0f;
  const Matrix x = random_matrix(5, 8, 2);
  const Matrix y = lin.forward(x);
  Matrix ref = ops::matmul(x, lin.weight().value);
  ops::add_row_vector(ref, lin.bias().value.row(0));
  EXPECT_LT(ops::mse(y, ref), 1e-12);
  EXPECT_THROW(lin.forward(Matrix(2, 3)), std::invalid_argument);
}

TEST(Linear, AnalogBackendIdealMatchesDigital) {
  util::Rng rng(3);
  Linear lin("l", 16, 8, rng, 0.5f);
  const Matrix x = random_matrix(4, 16, 4);
  const Matrix digital = lin.forward(x);
  lin.to_analog(cim::TileConfig::ideal(), {}, 99);
  EXPECT_TRUE(lin.is_analog());
  const Matrix analog = lin.forward(x);
  EXPECT_LT(ops::mse(digital, analog), 1e-6);
  lin.to_digital();
  EXPECT_FALSE(lin.is_analog());
}

TEST(Linear, TrainingThroughAnalogRejected) {
  util::Rng rng(5);
  Linear lin("l", 4, 4, rng, 0.5f);
  lin.to_analog(cim::TileConfig::ideal(), {}, 1);
  EXPECT_THROW(lin.forward(random_matrix(2, 4, 6), /*training=*/true),
               std::logic_error);
}

TEST(Linear, CaptureInputRecordsChannelMax) {
  util::Rng rng(7);
  Linear lin("l", 3, 2, rng, 0.5f);
  lin.set_capture_input(true);
  Matrix x(2, 3, {1.0f, -5.0f, 2.0f, -3.0f, 4.0f, 0.5f});
  lin.forward(x);
  const auto m = lin.input_abs_max();
  EXPECT_FLOAT_EQ(m[0], 3.0f);
  EXPECT_FLOAT_EQ(m[1], 5.0f);
  EXPECT_FLOAT_EQ(m[2], 2.0f);
}

TEST(Linear, CaptureFullAccumulatesRows) {
  util::Rng rng(8);
  Linear lin("l", 3, 2, rng, 0.5f);
  lin.set_capture_full(true);
  lin.forward(random_matrix(2, 3, 9));
  lin.forward(random_matrix(3, 3, 10));
  EXPECT_EQ(lin.captured_inputs().rows(), 5);
  lin.set_capture_full(false);
}

TEST(Norm, LayerNormNormalizesRows) {
  Norm ln("n", NormKind::kLayerNorm, 8);
  const Matrix x = random_matrix(4, 8, 11);
  const Matrix y = ln.forward(x);
  for (std::int64_t t = 0; t < y.rows(); ++t) {
    double mean = 0.0, var = 0.0;
    for (float v : y.row(t)) mean += v;
    mean /= 8;
    for (float v : y.row(t)) var += (v - mean) * (v - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Norm, RmsNormPreservesDirectionPerChannelGain) {
  std::vector<float> gain(8, 1.0f);
  gain[3] = 10.0f;
  Norm rn("n", NormKind::kRmsNorm, 8, gain);
  Matrix x(1, 8);
  x.fill(1.0f);
  const Matrix y = rn.forward(x);
  EXPECT_NEAR(y.at(0, 3) / y.at(0, 0), 10.0, 1e-4);  // gain is per channel
  // RMSNorm: output RMS (pre-gain) is 1, so channel 0 ~ 1/1 = 1.
  EXPECT_NEAR(y.at(0, 0), 1.0, 1e-3);
}

TEST(Norm, GainIsNotTrainableBiasFollowsKind) {
  Norm ln("a", NormKind::kLayerNorm, 4);
  Norm rn("b", NormKind::kRmsNorm, 4);
  ParamRefs pl, pr;
  ln.collect_params(pl);
  rn.collect_params(pr);
  EXPECT_FALSE(pl[0]->trainable);  // gain
  EXPECT_TRUE(pl[1]->trainable);   // LayerNorm bias
  EXPECT_FALSE(pr[0]->trainable);
  EXPECT_FALSE(pr[1]->trainable);  // RMSNorm has no bias
  EXPECT_THROW(Norm("c", NormKind::kLayerNorm, 4, std::vector<float>(3, 1.0f)),
               std::invalid_argument);
}

TEST(Attention, CausalityFutureTokensDoNotAffectPast) {
  util::Rng rng(12);
  CausalSelfAttention attn("a", 16, 4, 32, rng, 0.2f);
  Matrix x = random_matrix(6, 16, 13);
  const Matrix y1 = attn.forward(x);
  // Perturb the last token only; earlier outputs must be unchanged.
  for (std::int64_t c = 0; c < 16; ++c) x.at(5, c) += 1.0f;
  const Matrix y2 = attn.forward(x);
  for (std::int64_t t = 0; t < 5; ++t) {
    for (std::int64_t c = 0; c < 16; ++c) {
      EXPECT_FLOAT_EQ(y1.at(t, c), y2.at(t, c)) << "t=" << t;
    }
  }
  // The last row must change.
  double diff = 0.0;
  for (std::int64_t c = 0; c < 16; ++c) diff += std::fabs(y1.at(5, c) - y2.at(5, c));
  EXPECT_GT(diff, 1e-3);
}

TEST(Attention, HeadsMustDivide) {
  util::Rng rng(14);
  EXPECT_THROW(CausalSelfAttention("a", 10, 4, 8, rng, 0.1f),
               std::invalid_argument);
}

TEST(Mlp, GatedAndPlainShapes) {
  util::Rng rng(15);
  Mlp gelu_mlp("g", MlpKind::kGelu, 8, 16, rng, 0.2f);
  Mlp gated_mlp("s", MlpKind::kSiluGated, 8, 16, rng, 0.2f);
  const Matrix x = random_matrix(3, 8, 16);
  EXPECT_EQ(gelu_mlp.forward(x).cols(), 8);
  EXPECT_EQ(gated_mlp.forward(x).cols(), 8);
  std::vector<Linear*> lins;
  gelu_mlp.collect_linears(lins);
  EXPECT_EQ(lins.size(), 2u);
  lins.clear();
  gated_mlp.collect_linears(lins);
  EXPECT_EQ(lins.size(), 3u);
}

TEST(Transformer, ForwardShapesAndValidation) {
  TransformerConfig cfg;
  cfg.vocab_size = 20;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 10;
  TransformerLM model(cfg);
  const std::vector<int> tokens{1, 2, 3, 4};
  const Matrix logits = model.forward(tokens);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), 20);
  EXPECT_THROW(model.forward(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(model.forward(std::vector<int>(11, 1)), std::invalid_argument);
  EXPECT_THROW(model.forward(std::vector<int>{25}), std::invalid_argument);
  const int next = model.predict_next(tokens);
  EXPECT_GE(next, 0);
  EXPECT_LT(next, 20);
}

TEST(Transformer, LinearLayerEnumerationIsStable) {
  TransformerConfig cfg;
  cfg.vocab_size = 20;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.mlp_kind = MlpKind::kSiluGated;
  TransformerLM model(cfg);
  const auto lins = model.linear_layers();
  // 2 per attention + 3 per gated MLP per block, + LM head.
  EXPECT_EQ(lins.size(), 2u * 5u + 1u);
  EXPECT_EQ(lins.back()->name(), "lm_head");
  EXPECT_EQ(lins[0]->name(), "blk0.attn.qkv");
}

TEST(Transformer, ParamCountMatchesEnumeration) {
  TransformerConfig cfg;
  cfg.vocab_size = 30;
  cfg.d_model = 24;
  cfg.n_layers = 3;
  cfg.n_heads = 4;
  cfg.d_ff = 48;
  cfg.max_seq = 16;
  TransformerLM model(cfg);
  std::int64_t total = 0;
  for (const Param* p : model.collect_params()) total += p->value.size();
  EXPECT_EQ(total, cfg.param_count());
}

TEST(Transformer, AnalogDeployAndRevert) {
  TransformerConfig cfg;
  cfg.vocab_size = 20;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  TransformerLM model(cfg);
  const std::vector<int> tokens{3, 1, 4, 1, 5};
  const Matrix digital = model.forward(tokens);
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(cim::TileConfig::ideal(), {}, 7);
  }
  EXPECT_TRUE(model.is_analog());
  const Matrix analog = model.forward(tokens);
  EXPECT_LT(ops::mse(digital, analog), 1e-6);
  model.to_digital();
  EXPECT_FALSE(model.is_analog());
}

TEST(Transformer, TiedHeadInitCopiesEmbedding) {
  TransformerConfig cfg;
  cfg.vocab_size = 12;
  cfg.d_model = 8;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 16;
  cfg.tie_head_init = true;
  TransformerLM tied(cfg);
  ParamRefs params = tied.collect_params();
  const Param* emb = params.front();
  ASSERT_EQ(emb->name, "tok_emb");
  const Matrix& head = tied.lm_head().weight().value;
  for (std::int64_t v = 0; v < 12; ++v) {
    for (std::int64_t c = 0; c < 8; ++c) {
      EXPECT_FLOAT_EQ(emb->value.at(v, c), head.at(c, v));
    }
  }
}

}  // namespace
}  // namespace nora::nn
