// Property-based (parameterized) suites over the simulator's invariants:
// tile-partition invariance, NORA exactness for arbitrary lambda,
// resolution monotonicity, and finiteness under every scaling policy.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cim/analog_matmul.hpp"
#include "core/nora.hpp"
#include "tensor/ops.hpp"

namespace nora {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed,
                     float std_dev = 0.5f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.fill_gaussian(rng, std_dev);
  return m;
}

Matrix outlier_inputs(std::int64_t t, std::int64_t k, std::uint64_t seed) {
  Matrix x = random_matrix(t, k, seed, 1.0f);
  for (std::int64_t c = 0; c < k; c += 10) {
    for (std::int64_t r = 0; r < t; ++r) x.at(r, c) *= 15.0f;
  }
  return x;
}

// ---------------------------------------------------------------- tiles
class TileShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TileShapeSweep, PartitionInvarianceAtZeroNoise) {
  const auto [rows, cols] = GetParam();
  const Matrix w = random_matrix(75, 53, 1);
  const Matrix x = random_matrix(6, 75, 2, 1.0f);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.tile_rows = rows;
  cfg.tile_cols = cols;
  const Matrix y = cim::AnalogMatmul(w, {}, cfg, 3).forward(x);
  const Matrix ref = ops::matmul(x, w);
  EXPECT_LT(ops::mse(y, ref), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TileShapeSweep,
                         ::testing::Values(std::tuple{512, 512},
                                           std::tuple{64, 64},
                                           std::tuple{32, 17},
                                           std::tuple{19, 128},
                                           std::tuple{7, 7}));

// --------------------------------------------------------------- lambda
class LambdaSweep : public ::testing::TestWithParam<float> {};

TEST_P(LambdaSweep, RescaleExactAtZeroNoise) {
  const float lambda = GetParam();
  const std::int64_t k = 60;
  const Matrix w = random_matrix(k, 30, 4, 0.2f);
  const Matrix x = outlier_inputs(5, k, 5);
  const auto ax = ops::col_abs_max(x);
  const auto wx = ops::row_abs_max(w);
  core::LayerCalibration cal;
  cal.act_abs_max = ax;
  cal.w_abs_max = wx;
  const auto s = core::smoothing_vector(cal, lambda, 1e-3f);
  const Matrix y = cim::AnalogMatmul(w, s, cim::TileConfig::ideal(), 6).forward(x);
  const Matrix ref = ops::matmul(x, w);
  const double rel = std::sqrt(ops::mse(y, ref)) /
                     (ops::frobenius_norm(ref) / std::sqrt(double(ref.size())));
  EXPECT_LT(rel, 1e-4);
}

TEST_P(LambdaSweep, PositiveLambdaTightensInputRange) {
  const float lambda = GetParam();
  if (lambda == 0.0f) GTEST_SKIP() << "lambda=0 ignores activations";
  const std::int64_t k = 60;
  const Matrix w = random_matrix(k, 30, 7, 0.2f);
  const Matrix x = outlier_inputs(5, k, 8);
  core::LayerCalibration cal;
  cal.act_abs_max = ops::col_abs_max(x);
  cal.w_abs_max = ops::row_abs_max(w);
  const auto s = core::smoothing_vector(cal, lambda, 1e-3f);
  // Ratio of largest to median |x_k|/s_k shrinks vs raw ranges.
  std::vector<float> scaled(cal.act_abs_max.size());
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    scaled[i] = cal.act_abs_max[i] / s[i];
  }
  auto spread = [](std::vector<float> v) {
    std::sort(v.begin(), v.end());
    return v.back() / std::max(v[v.size() / 2], 1e-9f);
  };
  EXPECT_LT(spread(scaled), spread({cal.act_abs_max.begin(),
                                    cal.act_abs_max.end()}));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(0.0f, 0.25f, 0.5f, 0.75f, 1.0f));

// ----------------------------------------------------------- resolution
class BitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitsSweep, GemmErrorShrinksWithResolution) {
  const int bits = GetParam();
  const Matrix w = random_matrix(64, 64, 9, 0.2f);
  const Matrix x = random_matrix(8, 64, 10, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  cim::TileConfig coarse = cim::TileConfig::ideal();
  coarse.dac_bits = bits;
  coarse.adc_bits = bits;
  cim::TileConfig fine = coarse;
  fine.dac_bits = bits + 2;
  fine.adc_bits = bits + 2;
  const double mse_coarse =
      ops::mse(cim::AnalogMatmul(w, {}, coarse, 11).forward(x), ref);
  const double mse_fine =
      ops::mse(cim::AnalogMatmul(w, {}, fine, 11).forward(x), ref);
  EXPECT_LT(mse_fine, mse_coarse);
}

INSTANTIATE_TEST_SUITE_P(Bits, BitsSweep, ::testing::Values(3, 5, 7));

// ------------------------------------------------------ policy x noise
class PolicyNoiseSweep
    : public ::testing::TestWithParam<std::tuple<cim::InputScaling, bool>> {};

TEST_P(PolicyNoiseSweep, OutputsAlwaysFinite) {
  const auto [scaling, bm] = GetParam();
  const Matrix w = random_matrix(48, 24, 12);
  const Matrix x = outlier_inputs(6, 48, 13);
  cim::TileConfig cfg = cim::TileConfig::paper_table2();
  cfg.scaling = scaling;
  cfg.bound_management = bm;
  const Matrix y = cim::AnalogMatmul(w, {}, cfg, 14).forward(x);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    ASSERT_TRUE(std::isfinite(y.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyNoiseSweep,
    ::testing::Combine(::testing::Values(cim::InputScaling::kNone,
                                         cim::InputScaling::kAbsMax,
                                         cim::InputScaling::kAvgAbsMax),
                       ::testing::Bool()));

// ------------------------------------------------------------ mse knob
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, NoiseIsUnbiasedAcrossSeeds) {
  // The mean output over noisy runs converges to the ideal product:
  // noise models must not introduce systematic bias (other than IR-drop
  // and S-shape, which are deterministic distortions and disabled here).
  const std::uint64_t seed = GetParam();
  const Matrix w = random_matrix(32, 4, seed, 0.3f);
  const Matrix x = random_matrix(2, 32, seed + 1, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  cim::TileConfig cfg = cim::TileConfig::ideal();
  cfg.out_noise = 0.05f;
  cfg.w_noise = 0.02f;
  cfg.in_noise = 0.02f;
  Matrix mean(x.rows(), w.cols());
  const int reps = 600;
  cim::AnalogMatmul unit(w, {}, cfg, seed + 2);
  for (int r = 0; r < reps; ++r) ops::add_inplace(mean, unit.forward(x));
  ops::scale_inplace(mean, 1.0f / reps);
  for (std::int64_t i = 0; i < mean.size(); ++i) {
    EXPECT_NEAR(mean.data()[i], ref.data()[i], 0.08)
        << "seed " << seed << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(100u, 200u, 300u));

}  // namespace
}  // namespace nora
