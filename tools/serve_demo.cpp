// Interactive-scale tour of the serving layer: a handful of requests
// with mixed prompts, deadlines and a mid-flight cancellation, served
// continuously through the analog-deployed model, with the per-request
// lifecycle and the aggregate metrics dumped at the end.
//
//   ./serve_demo [--model=opt-1.3b-sim] [--batch=4] [--tokens=10]
//                [--kv-budget=96] [--json]
#include <cstdio>

#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "net/signals.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "opt-1.3b-sim");
  const int batch = static_cast<int>(cli.get_int("batch", 4));
  const int n_tokens = static_cast<int>(cli.get_int("tokens", 10));
  const std::int64_t kv_budget = cli.get_int("kv-budget", 96);
  cli.check_unknown();
  // Ctrl-C / SIGTERM: stop stepping, cancel what's left, and still print
  // the lifecycle table + final metrics instead of dying mid-serve.
  net::install_signal_handlers();

  const model::ModelSpec spec = model::spec_by_name(name);
  eval::SynthLambadaConfig task_cfg = spec.task;
  task_cfg.seq_len = spec.task.seq_len - n_tokens;
  const eval::SynthLambada task(task_cfg);
  auto model = model::get_or_train(spec);
  core::DeployOptions opts;
  opts.tile = cim::TileConfig::paper_table2();
  opts.nora.enabled = true;
  core::deploy_analog(*model, task, opts);

  serve::SchedulerConfig cfg;
  cfg.max_batch = batch;
  cfg.kv_budget_tokens = kv_budget;
  serve::Scheduler sched(*model, cfg);

  // Eight requests: six plain, one with a tight deadline, one that will
  // be cancelled mid-decode.
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 8; ++i) {
    serve::RequestParams p;
    p.prompt = task.make_example("test", static_cast<std::uint64_t>(i)).tokens;
    p.max_new_tokens = n_tokens;
    p.stream_seed = 42 + static_cast<std::uint64_t>(i);
    if (i == 5) p.deadline_steps = 4;
    ids.push_back(sched.submit(std::move(p)));
  }
  std::printf("serving %zu requests (batch %d, KV budget %lld tokens)...\n\n",
              ids.size(), batch, static_cast<long long>(kv_budget));

  int ticks = 0;
  bool busy = true;
  bool interrupted = false;
  while (busy) {
    if (net::shutdown_requested() && !interrupted) {
      // Graceful drain: cancel everything still live; the next steps
      // retire the batch and release every KV lease before we report.
      interrupted = true;
      std::printf("signal received: draining in-flight requests...\n");
      for (const auto id : ids) sched.cancel(id);
    }
    busy = sched.step();
    if (++ticks == 3) sched.cancel(ids[2]);  // caller gave up
  }
  if (interrupted) {
    std::printf("drained: %zu requests settled after interrupt\n\n",
                ids.size());
  }

  util::Table table({"id", "state", "queued@", "started@", "finished@",
                     "tokens", "first ids", "error"});
  for (const auto id : ids) {
    const serve::RequestRecord r = sched.request(id);
    std::string head;
    for (std::size_t t = 0; t < r.tokens.size() && t < 5; ++t) {
      head += std::to_string(r.tokens[t]) + " ";
    }
    // Structured outcome: the enum name plus its detail, "-" when clean.
    const std::string err = r.error == serve::ServeError::kNone
                                ? "-"
                                : serve::describe(r.error, r.error_detail);
    table.add_row({std::to_string(r.id), serve::to_string(r.state),
                   std::to_string(r.submit_step),
                   std::to_string(r.start_step),
                   std::to_string(r.finish_step),
                   std::to_string(r.tokens.size()), head, err});
  }
  table.print();
  std::printf("\n%s", sched.metrics().to_string().c_str());
  if (cli.get_flag("json")) {
    std::printf("\n%s\n", sched.metrics().to_json().c_str());
  }
  return 0;
}
