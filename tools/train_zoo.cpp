// Train (or load) every model in the zoo and print a summary — a
// convenience for warming the checkpoint cache before a bench sweep.
//
//   ./train_zoo [--examples=128]
#include <cstdio>

#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  util::Table table({"model", "params", "layers", "d_model",
                     "fp32 SynthLambada acc (%)"});
  for (const auto& name : model::all_models()) {
    const model::ModelSpec spec = model::spec_by_name(name);
    auto m = model::get_or_train(spec);
    const eval::SynthLambada task(spec.task);
    eval::EvalOptions eo;
    eo.n_examples = n_examples;
    const auto r = eval::evaluate(*m, task, eo);
    table.add_row({name, std::to_string(spec.arch.param_count()),
                   std::to_string(spec.arch.n_layers),
                   std::to_string(spec.arch.d_model),
                   util::Table::pct(r.accuracy)});
  }
  std::printf("\n");
  table.print("model zoo:");
  return 0;
}
