// Standalone HTTP serving daemon for the analog-deployed model zoo.
//
// Binds 127.0.0.1 and serves the continuous-batching scheduler over the
// fault-tolerant HTTP/1.1 front end:
//
//   POST /v1/completions   {"prompt":[ids...], "max_new_tokens":N,
//                           "stream":true|false, "stream_seed":S,
//                           "deadline_steps":D}
//     stream:true  -> chunked response, one JSON object per token
//     stream:false -> single JSON body with the full token list
//   GET /metrics           {"serve":{...},"net":{...}}
//   GET /healthz           200 ok / 503 draining
//
// SIGTERM/SIGINT drain gracefully: the listener closes, new work gets
// 503 + Retry-After, in-flight streams finish (bounded by
// --drain-timeout), final metrics print, exit 0. A second signal
// abandons the drain (exit 1).
//
//   ./nora_serve [--model=tiny] [--port=8080] [--batch=8]
//                [--kv-budget=256] [--max-conns=1024] [--tokens=16]
//                [--drain-timeout=30000] [--force-poll] [--json]
//
// --model=tiny serves a compact untrained transformer (instant start:
// benches, CI, smoke tests). Any zoo name (e.g. opt-1.3b-sim) trains or
// loads the real thing first.
#include <cstdio>
#include <string>

#include "cim/tile_config.hpp"
#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "net/server.hpp"
#include "net/signals.hpp"
#include "nn/transformer.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"

using namespace nora;

namespace {

nn::TransformerLM make_tiny() {
  nn::TransformerConfig arch;
  arch.vocab_size = 30;
  arch.d_model = 24;
  arch.n_layers = 2;
  arch.n_heads = 3;
  arch.d_ff = 48;
  arch.max_seq = 64;
  arch.seed = 77;
  nn::TransformerLM model(arch);
  cim::TileConfig tiles = cim::TileConfig::paper_table2();
  tiles.tile_rows = 16;
  tiles.tile_cols = 12;
  tiles.in_noise = 0.02f;
  tiles.abft_checksum = true;
  tiles.n_threads = 1;
  std::uint64_t seed = 900;
  for (auto* lin : model.linear_layers()) {
    lin->to_analog(tiles, {}, seed++);
  }
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "tiny");
  const int port = static_cast<int>(cli.get_int("port", 8080));
  const int batch = static_cast<int>(cli.get_int("batch", 8));
  const std::int64_t kv_budget = cli.get_int("kv-budget", 256);
  const int max_conns = static_cast<int>(cli.get_int("max-conns", 1024));
  const int tokens = static_cast<int>(cli.get_int("tokens", 16));
  const std::int64_t drain_ms = cli.get_int("drain-timeout", 30000);
  const bool force_poll = cli.get_flag("force-poll");
  const bool json = cli.get_flag("json");
  cli.check_unknown();

  serve::SchedulerConfig scfg;
  scfg.max_batch = batch;
  scfg.kv_budget_tokens = kv_budget;
  scfg.record_events = true;
  // Pool pressure must reject (-> 503 + Retry-After) rather than block
  // the queue head: an HTTP client can retry, a stuck stream cannot.
  scfg.reject_on_pool_full = true;

  net::ServerConfig ncfg;
  ncfg.port = port;
  ncfg.max_connections = max_conns;
  ncfg.default_max_new_tokens = tokens;
  ncfg.drain_timeout_ms = drain_ms;
  ncfg.force_poll = force_poll;

  net::install_signal_handlers();

  int rc;
  std::string final_metrics;
  if (name == "tiny") {
    nn::TransformerLM model = make_tiny();
    serve::Scheduler sched(model, scfg);
    net::HttpServer server(sched, ncfg);
    server.listen();
    std::printf("nora_serve: model=tiny vocab=%lld listening on "
                "127.0.0.1:%d (batch %d, kv budget %lld)\n",
                static_cast<long long>(model.config().vocab_size),
                server.port(), batch, static_cast<long long>(kv_budget));
    std::fflush(stdout);
    rc = server.run();
    final_metrics = server.metrics_json();
  } else {
    const model::ModelSpec spec = model::spec_by_name(name);
    const eval::SynthLambada task(spec.task);
    auto model = model::get_or_train(spec);
    core::DeployOptions opts;
    opts.tile = cim::TileConfig::paper_table2();
    opts.nora.enabled = true;
    core::deploy_analog(*model, task, opts);
    serve::Scheduler sched(*model, scfg);
    net::HttpServer server(sched, ncfg);
    server.listen();
    std::printf("nora_serve: model=%s listening on 127.0.0.1:%d "
                "(batch %d, kv budget %lld)\n",
                name.c_str(), server.port(), batch,
                static_cast<long long>(kv_budget));
    std::fflush(stdout);
    rc = server.run();
    final_metrics = server.metrics_json();
  }

  std::printf("%s after %s\n", rc == 0 ? "drained" : "drain abandoned",
              net::shutdown_requested() ? "signal" : "shutdown");
  if (json) std::printf("%s\n", final_metrics.c_str());
  return rc;
}
