// Developer tool: train a SynthLambada model with fully CLI-overridable
// architecture / task / outlier parameters, to study convergence and the
// effect of planted outlier channels without touching the model zoo.
//
//   ./train_experiment --d=64 --layers=2 --heads=4 --steps=2000 \
//       --outlier_frac=0.08 --amp_lo=10 --amp_hi=18 --compensate=1
#include <cstdio>

#include "model/families.hpp"
#include "nn/transformer.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  eval::SynthLambadaConfig task_cfg;
  task_cfg.n_queries = static_cast<int>(cli.get_int("queries", 4));
  task_cfg.n_pairs = static_cast<int>(cli.get_int("pairs", 3));
  const eval::SynthLambada task(task_cfg);

  nn::TransformerConfig arch;
  arch.d_model = cli.get_int("d", 64);
  arch.n_layers = cli.get_int("layers", 2);
  arch.n_heads = cli.get_int("heads", 4);
  arch.d_ff = cli.get_int("ff", 4 * arch.d_model);
  arch.vocab_size = task_cfg.vocab_size();
  arch.max_seq = task_cfg.seq_len;
  arch.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  arch.norm_kind = cli.get_flag("rms") ? nn::NormKind::kRmsNorm
                                       : nn::NormKind::kLayerNorm;
  arch.mlp_kind = cli.get_flag("gated") ? nn::MlpKind::kSiluGated
                                        : nn::MlpKind::kGelu;
  model::OutlierSpec outliers;
  outliers.fraction = static_cast<float>(cli.get_double("outlier_frac", 0.0));
  outliers.amp_lo = static_cast<float>(cli.get_double("amp_lo", 1.0));
  outliers.amp_hi = static_cast<float>(cli.get_double("amp_hi", 1.0));
  outliers.seed = arch.seed;
  arch.norm_gain = model::planted_gains(arch.d_model, outliers);

  nn::TransformerLM model(arch);
  if (cli.get_flag("compensate", true)) {
    model::compensate_planted_gains(model);
  }
  train::TrainConfig tc;
  tc.steps = static_cast<int>(cli.get_int("steps", 2000));
  tc.batch_size = static_cast<int>(cli.get_int("batch", 16));
  tc.adam.lr = static_cast<float>(cli.get_double("lr", 3e-3));
  tc.eval_every = static_cast<int>(cli.get_int("eval_every", 100));
  tc.seed = arch.seed + 7;
  const auto report = train::train_lm(model, task, tc);
  std::printf("final: steps=%d loss=%.4f acc=%.3f\n", report.steps_run,
              report.final_loss, report.final_accuracy);
  return 0;
}
