// Autoregressive generation on analog hardware: error accumulation.
//
// A single noisy forward pass perturbs one prediction; during greedy
// decoding every generated token is conditioned on previous (possibly
// corrupted) outputs, so analog noise compounds. This example generates
// continuations with the KV-cached decoder under three backends —
// digital fp32, naive analog, NORA analog — and reports how long each
// analog continuation agrees with the digital one.
//
//   ./generate_compare [--model=opt-1.3b-sim] [--prompts=12] [--tokens=8]
#include <cstdio>

#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {

std::vector<std::vector<int>> generate_all(nn::TransformerLM& model,
                                           const eval::SynthLambada& task,
                                           int n_prompts, int n_tokens) {
  std::vector<std::vector<int>> out;
  for (int i = 0; i < n_prompts; ++i) {
    const auto ex = task.make_example("test", static_cast<std::uint64_t>(i));
    // Prompt = everything up to and including the QUERY + key.
    out.push_back(model.generate(ex.tokens, n_tokens));
  }
  return out;
}

double mean_agreement(const std::vector<std::vector<int>>& ref,
                      const std::vector<std::vector<int>>& got) {
  double total = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::size_t match = 0;
    while (match < ref[i].size() && match < got[i].size() &&
           ref[i][match] == got[i][match]) {
      ++match;
    }
    total += static_cast<double>(match);
  }
  return total / static_cast<double>(ref.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "opt-1.3b-sim");
  const int n_prompts = static_cast<int>(cli.get_int("prompts", 12));
  const int n_tokens = static_cast<int>(cli.get_int("tokens", 8));

  const model::ModelSpec spec = model::spec_by_name(name);
  // Generation needs headroom: prompts use a shortened task layout so
  // n_tokens fit inside the model's max_seq window.
  eval::SynthLambadaConfig task_cfg = spec.task;
  task_cfg.seq_len = spec.task.seq_len - n_tokens;
  const eval::SynthLambada task(task_cfg);

  auto model = model::get_or_train(spec);

  const auto digital = generate_all(*model, task, n_prompts, n_tokens);

  core::DeployOptions naive;
  naive.tile = cim::TileConfig::paper_table2();
  naive.nora.enabled = false;
  core::deploy_analog(*model, task, naive);
  const auto analog_naive = generate_all(*model, task, n_prompts, n_tokens);

  model->to_digital();
  core::DeployOptions nopts;
  nopts.tile = cim::TileConfig::paper_table2();
  nopts.nora.enabled = true;
  core::deploy_analog(*model, task, nopts);
  const auto analog_nora = generate_all(*model, task, n_prompts, n_tokens);

  std::printf("greedy continuations, model %s, %d prompts:\n\n", name.c_str(),
              n_prompts);
  util::Table table({"backend", "mean tokens agreeing with digital"});
  table.add_row({"digital fp32", util::Table::num(
                                     mean_agreement(digital, digital), 2)});
  table.add_row({"naive analog", util::Table::num(
                                     mean_agreement(digital, analog_naive), 2)});
  table.add_row({"NORA analog", util::Table::num(
                                    mean_agreement(digital, analog_nora), 2)});
  table.print();
  std::printf("\nfirst prompt, generated ids:\n  digital: ");
  for (int t : digital[0]) std::printf("%d ", t);
  std::printf("\n  naive:   ");
  for (int t : analog_naive[0]) std::printf("%d ", t);
  std::printf("\n  NORA:    ");
  for (int t : analog_nora[0]) std::printf("%d ", t);
  std::printf("\n\nnoise compounds over autoregressive steps; NORA keeps the "
              "trajectory aligned.\n");
  return 0;
}
