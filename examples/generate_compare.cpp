// Autoregressive generation on analog hardware: error accumulation.
//
// A single noisy forward pass perturbs one prediction; during greedy
// decoding every generated token is conditioned on previous (possibly
// corrupted) outputs, so analog noise compounds. This example generates
// continuations with the KV-cached decoder under three backends —
// digital fp32, naive analog, NORA analog — and reports how long each
// analog continuation agrees with the digital one.
//
// All continuations are produced by the continuous-batching scheduler
// (serve::Scheduler) rather than a per-prompt generate() loop: the
// prompts share every analog tile pass, and per-request noise-stream
// keying keeps each continuation independent of the batch composition.
//
//   ./generate_compare [--model=opt-1.3b-sim] [--prompts=12] [--tokens=8]
//                      [--batch=4]
#include <cstdio>

#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

namespace {

std::vector<std::vector<int>> generate_all(nn::TransformerLM& model,
                                           const eval::SynthLambada& task,
                                           int n_prompts, int n_tokens,
                                           int max_batch,
                                           serve::Metrics* metrics_out) {
  serve::SchedulerConfig cfg;
  cfg.max_batch = max_batch;
  serve::Scheduler sched(model, cfg);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < n_prompts; ++i) {
    const auto ex = task.make_example("test", static_cast<std::uint64_t>(i));
    // Prompt = everything up to and including the QUERY + key.
    serve::RequestParams p;
    p.prompt = ex.tokens;
    p.max_new_tokens = n_tokens;
    // Per-prompt stream fixed across backends, so the three runs differ
    // only in the backend, never in the noise keying.
    p.stream_seed = 7000 + static_cast<std::uint64_t>(i);
    ids.push_back(sched.submit(std::move(p)));
  }
  sched.run_until_idle();
  std::vector<std::vector<int>> out;
  for (const auto id : ids) out.push_back(sched.request(id).tokens);
  if (metrics_out != nullptr) *metrics_out = sched.metrics();
  return out;
}

double mean_agreement(const std::vector<std::vector<int>>& ref,
                      const std::vector<std::vector<int>>& got) {
  double total = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::size_t match = 0;
    while (match < ref[i].size() && match < got[i].size() &&
           ref[i][match] == got[i][match]) {
      ++match;
    }
    total += static_cast<double>(match);
  }
  return total / static_cast<double>(ref.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "opt-1.3b-sim");
  const int n_prompts = static_cast<int>(cli.get_int("prompts", 12));
  const int n_tokens = static_cast<int>(cli.get_int("tokens", 8));
  const int max_batch = static_cast<int>(cli.get_int("batch", 4));

  const model::ModelSpec spec = model::spec_by_name(name);
  // Generation needs headroom: prompts use a shortened task layout so
  // n_tokens fit inside the model's max_seq window.
  eval::SynthLambadaConfig task_cfg = spec.task;
  task_cfg.seq_len = spec.task.seq_len - n_tokens;
  const eval::SynthLambada task(task_cfg);

  auto model = model::get_or_train(spec);

  serve::Metrics m_digital, m_naive, m_nora;
  const auto digital =
      generate_all(*model, task, n_prompts, n_tokens, max_batch, &m_digital);

  core::DeployOptions naive;
  naive.tile = cim::TileConfig::paper_table2();
  naive.nora.enabled = false;
  core::deploy_analog(*model, task, naive);
  const auto analog_naive =
      generate_all(*model, task, n_prompts, n_tokens, max_batch, &m_naive);

  model->to_digital();
  core::DeployOptions nopts;
  nopts.tile = cim::TileConfig::paper_table2();
  nopts.nora.enabled = true;
  core::deploy_analog(*model, task, nopts);
  const auto analog_nora =
      generate_all(*model, task, n_prompts, n_tokens, max_batch, &m_nora);

  std::printf("greedy continuations, model %s, %d prompts:\n\n", name.c_str(),
              n_prompts);
  util::Table table({"backend", "mean tokens agreeing with digital"});
  table.add_row({"digital fp32", util::Table::num(
                                     mean_agreement(digital, digital), 2)});
  table.add_row({"naive analog", util::Table::num(
                                     mean_agreement(digital, analog_naive), 2)});
  table.add_row({"NORA analog", util::Table::num(
                                    mean_agreement(digital, analog_nora), 2)});
  table.print();
  std::printf("\nfirst prompt, generated ids:\n  digital: ");
  for (int t : digital[0]) std::printf("%d ", t);
  std::printf("\n  naive:   ");
  for (int t : analog_naive[0]) std::printf("%d ", t);
  std::printf("\n  NORA:    ");
  for (int t : analog_nora[0]) std::printf("%d ", t);
  std::printf("\n\nnoise compounds over autoregressive steps; NORA keeps the "
              "trajectory aligned.\n");

  std::printf("\nserving metrics (continuous batching, max_batch %d):\n",
              max_batch);
  util::Table stable({"backend", "occupancy", "tok/s", "TTFT p50 (s)",
                      "queue wait (steps)"});
  auto add_serving_row = [&stable](const char* backend,
                                   const serve::Metrics& m) {
    stable.add_row({backend, util::Table::num(m.mean_occupancy(), 2),
                    util::Table::num(m.tokens_per_s(), 1),
                    util::Table::num(m.ttft_p50_s(), 4),
                    util::Table::num(m.mean_queue_wait_steps(), 2)});
  };
  add_serving_row("digital fp32", m_digital);
  add_serving_row("naive analog", m_naive);
  add_serving_row("NORA analog", m_nora);
  stable.print();
  return 0;
}
