// End-to-end LLM deployment on simulated analog CIM hardware.
//
// Loads (or trains, on first run) a synthetic LLM from the model zoo,
// then evaluates SynthLambada accuracy under three settings, mirroring
// paper Fig. 5a:
//   1. digital full precision (fp32),
//   2. naive analog mapping at the Table II operating point,
//   3. NORA-rescaled analog mapping.
//
//   ./deploy_llm [--model=opt-1.3b-sim] [--examples=128] [--lambda=0.5]
#include <cstdio>

#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "opt-1.3b-sim");
  const int n_examples = static_cast<int>(cli.get_int("examples", 128));
  const float lambda = static_cast<float>(cli.get_double("lambda", 0.5));

  const model::ModelSpec spec = model::spec_by_name(name);
  const eval::SynthLambada task(spec.task);
  eval::EvalOptions eo;
  eo.n_examples = n_examples;

  util::Table table({"setting", "SynthLambada acc (%)", "loss"});

  auto model = model::get_or_train(spec);
  const auto fp = eval::evaluate(*model, task, eo);
  table.add_row({"digital full precision", util::Table::pct(fp.accuracy),
                 util::Table::num(fp.avg_loss, 3)});

  core::DeployOptions naive;
  naive.tile = cim::TileConfig::paper_table2();
  naive.nora.enabled = false;
  core::deploy_analog(*model, task, naive);
  const auto analog_naive = eval::evaluate(*model, task, eo);
  table.add_row({"naive analog (Table II)", util::Table::pct(analog_naive.accuracy),
                 util::Table::num(analog_naive.avg_loss, 3)});

  model->to_digital();
  core::DeployOptions nora_opts;
  nora_opts.tile = cim::TileConfig::paper_table2();
  nora_opts.nora.enabled = true;
  nora_opts.nora.lambda = lambda;
  core::deploy_analog(*model, task, nora_opts);
  const auto analog_nora = eval::evaluate(*model, task, eo);
  table.add_row({"NORA analog (Table II)", util::Table::pct(analog_nora.accuracy),
                 util::Table::num(analog_nora.avg_loss, 3)});

  std::printf("\n");
  table.print("model " + name + " on simulated analog CIM:");
  std::printf("\naccuracy drop: naive %.1f%%  ->  NORA %.1f%%\n",
              100.0 * (fp.accuracy - analog_naive.accuracy),
              100.0 * (fp.accuracy - analog_nora.accuracy));
  return 0;
}
