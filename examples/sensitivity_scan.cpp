// Mini sensitivity scan (a single-model version of the Fig. 3 study).
//
// Takes one zoo model, injects each of the eight non-idealities alone at
// a chosen MSE-matched level, and prints the accuracy drop — a quick way
// to see which noise sources matter for a given model before running the
// full benchmark sweep.
//
//   ./sensitivity_scan [--model=opt-1.3b-sim] [--mse=0.00155] [--examples=96]
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "opt-1.3b-sim");
  const double mse = cli.get_double("mse", 1.55e-3);
  const int n_examples = static_cast<int>(cli.get_int("examples", 96));

  std::printf("sensitivity scan: %s, one non-ideality at a time, "
              "MSE-matched level %.2e\n\n", name.c_str(), mse);
  const auto fp = bench::eval_digital(name, n_examples);
  std::printf("digital fp32 accuracy: %.2f%%\n\n", 100.0 * fp.accuracy);

  util::Table table({"non-ideality", "type", "calibrated param",
                     "analog acc (%)", "drop (pts)"});
  for (const auto& knob : bench::fig3_knobs()) {
    const double param = bench::solve_level(knob, mse);
    const auto r = bench::eval_analog(name, knob.make(param),
                                      /*nora=*/false, 0.5f, n_examples);
    table.add_row({knob.name, knob.category, util::Table::num(param, 5),
                   util::Table::pct(r.accuracy),
                   util::Table::pct(fp.accuracy - r.accuracy)});
  }
  table.print();
  std::printf("\nIO non-idealities dominate; tile non-idealities are nearly "
              "free (paper Sec. III-A).\n");
  return 0;
}
