// Calibration workflow walkthrough: what NORA actually computes.
//
// Runs the offline calibration pass on a zoo model, prints the
// per-channel activation/weight ranges of a chosen layer, the resulting
// smoothing vector s, and the layer-by-layer kurtosis and scaling-factor
// effects of applying it.
//
//   ./calibrate_inspect [--model=opt-1.3b-sim] [--layer=0] [--lambda=0.5]
#include <algorithm>
#include <cstdio>

#include "core/nora.hpp"
#include "eval/evaluator.hpp"
#include "model/zoo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("model", "opt-1.3b-sim");
  const std::size_t layer = static_cast<std::size_t>(cli.get_int("layer", 0));
  const float lambda = static_cast<float>(cli.get_double("lambda", 0.5));

  const model::ModelSpec spec = model::spec_by_name(name);
  auto model = model::get_or_train(spec);
  const eval::SynthLambada task(spec.task);

  // Step 1: offline calibration on held-out data (the paper's Pile set).
  const auto cals = core::calibrate(*model, task, 32);
  if (layer >= cals.size()) {
    std::fprintf(stderr, "layer index %zu out of range (%zu linear layers)\n",
                 layer, cals.size());
    return 1;
  }
  const auto& cal = cals[layer];
  std::printf("calibrated %zu linear layers; inspecting '%s'\n\n", cals.size(),
              cal.layer.c_str());

  // Step 2: the smoothing vector s_k = max|x_k|^l / max|w_k|^(1-l).
  const auto s = core::smoothing_vector(cal, lambda, 1e-3f);
  std::vector<std::size_t> order(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return s[a] > s[b]; });
  util::Table chan({"channel", "max|x_k|", "max|w_k|", "s_k"});
  std::printf("top-8 channels by s (the outlier channels NORA tames):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size()); ++i) {
    const std::size_t c = order[i];
    chan.add_row({std::to_string(c), util::Table::num(cal.act_abs_max[c], 3),
                  util::Table::num(cal.w_abs_max[c], 3),
                  util::Table::num(s[c], 3)});
  }
  chan.print();

  // Step 3: distribution effect per layer.
  core::NoraOptions nopts;
  nopts.lambda = lambda;
  const auto before = core::distribution_stats(*model, task, nopts, false);
  const auto after = core::distribution_stats(*model, task, nopts, true);
  std::printf("\nper-layer input kurtosis before -> after rescaling:\n");
  util::Table kt({"layer", "input kurt (before)", "input kurt (after)",
                  "weight kurt (before)", "weight kurt (after)"});
  for (std::size_t i = 0; i < before.size(); ++i) {
    kt.add_row({before[i].layer, util::Table::num(before[i].input_kurtosis, 2),
                util::Table::num(after[i].input_kurtosis, 2),
                util::Table::num(before[i].weight_kurtosis, 2),
                util::Table::num(after[i].weight_kurtosis, 2)});
  }
  kt.print();

  // Step 4: deploy with NORA and confirm accuracy.
  core::DeployOptions dep;
  dep.tile = cim::TileConfig::paper_table2();
  dep.nora.enabled = true;
  dep.nora.lambda = lambda;
  core::deploy_analog(*model, task, dep);
  eval::EvalOptions eo;
  eo.n_examples = 96;
  const auto acc = eval::evaluate(*model, task, eo);
  std::printf("\nanalog accuracy with NORA at Table II settings: %.2f%%\n",
              100.0 * acc.accuracy);
  return 0;
}
