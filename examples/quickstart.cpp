// Quickstart: the analog CIM tile simulator and NORA rescaling on a raw
// GEMM — no language model involved.
//
// We build an activation matrix with LLM-style outlier channels, map a
// weight matrix onto simulated analog tiles at the paper's Table II
// operating point, and compare the matrix-product error of the naive
// mapping vs the NORA-rescaled mapping.
//
//   ./quickstart [--rows=N] [--cols=N] [--tokens=N] [--lambda=F]
#include <cmath>
#include <cstdio>
#include <vector>

#include "cim/analog_matmul.hpp"
#include "cim/tile_config.hpp"
#include "tensor/ops.hpp"
#include "tensor/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nora;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::int64_t k = cli.get_int("rows", 256);    // input channels
  const std::int64_t n = cli.get_int("cols", 256);    // output channels
  const std::int64_t t = cli.get_int("tokens", 64);
  const float lambda = static_cast<float>(cli.get_double("lambda", 0.5));

  util::Rng rng(1);
  util::Rng wrng = rng.split("w"), xrng = rng.split("x");

  // Weights: near-Gaussian (like real LLM weights, paper Fig. 4).
  Matrix w(k, n);
  w.fill_gaussian(wrng, 1.0f / std::sqrt(static_cast<float>(k)));

  // Activations: Gaussian with 5% of channels amplified 20x -> the
  // long-tail, high-kurtosis distribution that breaks A/D conversion.
  Matrix x(t, k);
  x.fill_gaussian(xrng, 1.0f);
  for (std::int64_t c = 0; c < k; c += 20) {
    for (std::int64_t r = 0; r < t; ++r) x.at(r, c) *= 20.0f;
  }
  std::printf("activation kurtosis: %.1f   weight kurtosis: %.2f\n",
              stats::kurtosis(x), stats::kurtosis(w));

  const Matrix ref = ops::matmul(x, w);

  // NORA smoothing vector: s_k = max|x_k|^lambda / max|w_k|^(1-lambda).
  const auto ax = ops::col_abs_max(x);
  const auto wx = ops::row_abs_max(w);
  std::vector<float> s(static_cast<std::size_t>(k), 1.0f);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (ax[i] > 0.0f && wx[i] > 0.0f) {
      s[i] = std::pow(ax[i], lambda) / std::pow(wx[i], 1.0f - lambda);
    }
  }

  const cim::TileConfig hw = cim::TileConfig::paper_table2();
  util::Table table({"mapping", "output MSE", "rel err (%)", "mean alpha*gamma"});
  for (const bool use_nora : {false, true}) {
    cim::AnalogMatmul unit(w, use_nora ? s : std::vector<float>{}, hw, 42);
    const Matrix y = unit.forward(x);
    const double err = ops::mse(y, ref);
    const double rel =
        std::sqrt(err) / (ops::frobenius_norm(ref) / std::sqrt(double(ref.size())));
    table.add_row({use_nora ? "NORA rescaled" : "naive",
                   util::Table::num(err, 6), util::Table::num(100.0 * rel, 2),
                   util::Table::num(unit.mean_alpha() * unit.mean_gamma(), 4)});
  }
  table.print("\nAnalog GEMM at the paper's Table II operating point:");
  std::printf("\nNORA shifts the conversion burden from activations to weights:\n"
              "smaller alpha*gamma means larger ADC input current, higher SNR.\n");
  return 0;
}
