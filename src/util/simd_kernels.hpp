// AVX2+FMA implementations of the analog hot-loop kernels.
//
// Every kernel here is the elementwise vector image of a scalar loop in
// the simulator, including the FMA contractions GCC bakes into the
// scalar -O3 -march=native build (vfmadd/vfnmadd placement read off the
// disassembly of the shipped objects). The callers branch on
// util::simd::use_avx2() and keep their original scalar loops verbatim
// for the other side, so the scalar path is bit-identical by
// construction and the AVX2 path is bit-identical by these kernels'
// contract — enforced by tests/test_simd_kernels.cpp (randomized
// equality against the scalar recurrences) and by the golden-stream
// tests run with NORA_FORCE_SCALAR on and off.
//
// When the build does not target AVX2+FMA the declarations remain but
// the definitions abort; util::simd::active() never selects kAvx2 in
// that configuration, so they are unreachable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nora::util::simd {

/// Eight-column double-precision dot product, columns at stride `stride`
/// from `w`: out[i] = (float)sum_k fma((double)w[i*stride + k], (double)x[k], ·)
/// — the exact loop-carried fma chain of AnalogTile's quad accumulate,
/// run on eight independent columns (two 4-lane chains).
void mvm_dot8_avx2(const float* w, std::int64_t stride, const float* x,
                   std::size_t n, float out[8]);

/// Eight-column fused IR-drop accumulate. Per column, per row k (exactly
/// the compiled scalar recurrence of IrDropModel::accumulate_columns_fused4):
///   c      = w[k] * x[k]                      (float multiply)
///   ca    += (double)fabsf(c)
///   t      = (double)kappa * ca
///   factor = fnma(t, inv_n, 1.0)              (single-rounded 1 - t*inv_n)
///   acc    = fma((double)c, factor, acc)
/// with inv_n = 1.0 / (double)n. out[i] = (float)acc_i.
void ir_fused8_avx2(const float* w, std::int64_t stride, const float* x,
                    std::size_t n, float kappa, float out[8]);

/// DAC input pipeline, vector stage: v = xs[k]*inv_alpha, clip to ±1
/// (counting clips), then — when steps > 0 — the mid-tread quantizer
///   q = round(v / bound * half); q = clamp(q, -half, half-1); v = q*bound/half
/// with half = steps/2 and round() emulated exactly (trunc + half-away
/// adjustment; std::round is correctly rounded, so the emulation is
/// bit-exact). Stores v into out. Returns the clip count.
std::int64_t dac_scale_clip_quantize_avx2(const float* xs, float* out,
                                          std::size_t n, float inv_alpha,
                                          float steps, float bound);

/// v[k] += (float)fma(stddev, raw[k], 0.0) — the additive-input-noise
/// epilogue; the fma-with-zero mirrors the compiled scalar expression
/// `(float)(0.0 + stddev * raw[k])`.
void add_scaled_gaussian_avx2(float* v, const double* raw, std::size_t n,
                              double stddev);

/// dst[k] = (float)fma(stddev, raw[k], mean) — the Gaussian fill
/// scale/convert stage (the compiled form of `(float)(mean + stddev*g)`).
void scale_convert_avx2(float* dst, const double* raw, std::size_t n,
                        double mean, double stddev);

}  // namespace nora::util::simd
