// Deterministic random number generation for the whole project.
//
// Every stochastic component in the simulator (noise injection, weight
// initialization, dataset synthesis) draws from an explicitly seeded
// xoshiro256** stream so that runs are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace nora::util {

/// splitmix64: used to expand a single 64-bit seed into the 256-bit
/// xoshiro state, and as a convenient stateless hash for seed derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derive a child seed from a parent seed and a label, so independent
/// subsystems ("weights", "dac-noise", ...) get decorrelated streams.
std::uint64_t derive_seed(std::uint64_t parent, std::string_view label);

/// Counter-based stream derivation (Philox-style keying): map a base
/// seed plus up to three 64-bit work-item coordinates onto an
/// independent child seed, statelessly. This is what makes the parallel
/// analog forward bit-identical for any thread count: every
/// (epoch, token, row-block/tile) work item seeds its own Rng from its
/// coordinates instead of consuming a shared sequential stream.
std::uint64_t derive_stream(std::uint64_t base, std::uint64_t a,
                            std::uint64_t b = 0, std::uint64_t c = 0);

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal (Box-Muller, cached second draw).
  double gaussian();

  /// Normal with the given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Batched standard normals: fills `out` with EXACTLY the sequence
  /// out.size() successive gaussian() calls would produce — including
  /// the Box-Muller pair cache, which is consumed first and left
  /// populated when the total draw count is odd. Interleaving fills and
  /// single draws is therefore bit-identical to an all-single-draw
  /// sequence; the fill only amortizes the per-call state handling over
  /// the whole span (the analog hot path drains thousands of draws per
  /// tile pass).
  void gaussian_fill(std::span<double> out);

  /// Batched scaled draws: equivalent to
  ///   for (auto& v : out) v = static_cast<float>(gaussian(mean, stddev));
  /// bit for bit (same draws, same double arithmetic, same rounding).
  void gaussian_fill(std::span<float> out, double mean, double stddev);

  /// Bernoulli with probability p of returning true.
  bool bernoulli(double p);

  /// Split off an independent child stream identified by a label.
  Rng split(std::string_view label) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_ = 0;
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace nora::util
