// Runtime-dispatched SIMD kernel selection.
//
// The analog hot loops (MVM accumulate, IR-drop fused accumulate, the
// DAC/quantizer pipeline, Gaussian scale/convert) each exist in two
// variants: the scalar reference (the code the golden-stream tests were
// captured against) and an AVX2+FMA implementation that is bit-identical
// by construction — every vector op is the IEEE-754 elementwise image of
// the scalar op sequence, including the FMA contractions GCC bakes into
// the scalar build (vfmadd/vfnmadd placement read off the disassembly
// and pinned by tests/test_simd_kernels.cpp).
//
// The ISA is resolved exactly once, on first use:
//   - NORA_FORCE_SCALAR=1 (env) forces the scalar variants — this is the
//     CI lever proving both paths produce the same bits;
//   - otherwise AVX2+FMA is used when the CPU reports it.
// Per-call dispatch is a single relaxed load of a cached enum, so the
// hot loops pay one predictable branch per MVM, not per element.
#pragma once

namespace nora::util::simd {

enum class Isa {
  kScalar,  // portable reference path
  kAvx2,    // AVX2 + FMA vector kernels
};

/// The ISA selected for this process (resolved once, then cached).
Isa active();

/// Human-readable name ("scalar" / "avx2") for logs and bench output.
const char* isa_name(Isa isa);

/// True when the AVX2 kernels are compiled in and selected.
inline bool use_avx2() { return active() == Isa::kAvx2; }

}  // namespace nora::util::simd
