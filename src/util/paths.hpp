// Resolution of the on-disk model cache directory.
//
// Trained synthetic-LLM checkpoints are expensive relative to everything
// else in the project, so they are trained once and cached. The cache
// location is $NORA_CACHE_DIR if set, otherwise ./models_cache.
#pragma once

#include <string>

namespace nora::util {

/// Directory for cached model checkpoints; created if missing.
std::string model_cache_dir();

/// True if the file exists and is readable.
bool file_exists(const std::string& path);

}  // namespace nora::util
