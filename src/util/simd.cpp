#include "util/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace nora::util::simd {

namespace {

Isa resolve() {
  // Explicit override first: NORA_FORCE_SCALAR=1 (or any non-empty value
  // other than "0") pins the scalar reference kernels.
  if (const char* force = std::getenv("NORA_FORCE_SCALAR");
      force != nullptr && *force != '\0' && std::strcmp(force, "0") != 0) {
    return Isa::kScalar;
  }
#if defined(__AVX2__) && defined(__FMA__)
  // The AVX2 kernels use FMA intrinsics to mirror the contracted scalar
  // build, so both features must be present at runtime; the compile-time
  // guard keeps non-AVX2 builds (where the kernels are stubs) on the
  // scalar path unconditionally.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
#endif
  return Isa::kScalar;
}

}  // namespace

Isa active() {
  static const Isa isa = resolve();
  return isa;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return "avx2";
    case Isa::kScalar: break;
  }
  return "scalar";
}

}  // namespace nora::util::simd
