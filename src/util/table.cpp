#include "util/table.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace nora::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header row");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  return num(100.0 * fraction, precision);
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::string_view caption) const {
  if (!caption.empty()) std::cout << caption << '\n';
  std::cout << to_string() << std::flush;
}

void Table::write_csv(const std::string& path) const {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  std::ofstream f(path);
  if (!f) return;
  f << to_csv();
}

}  // namespace nora::util
