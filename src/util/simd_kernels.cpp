#include "util/simd_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace nora::util::simd {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

// Gather one 4-wide lane group for rows [k, k+4) of four columns:
// r[t] = { w0[k+t], w1[k+t], w2[k+t], w3[k+t] }.
inline void load_transpose4(const float* w0, const float* w1, const float* w2,
                            const float* w3, std::size_t k, __m128 r[4]) {
  __m128 a0 = _mm_loadu_ps(w0 + k);
  __m128 a1 = _mm_loadu_ps(w1 + k);
  __m128 a2 = _mm_loadu_ps(w2 + k);
  __m128 a3 = _mm_loadu_ps(w3 + k);
  _MM_TRANSPOSE4_PS(a0, a1, a2, a3);
  r[0] = a0;
  r[1] = a1;
  r[2] = a2;
  r[3] = a3;
}

inline __m128 gather_lane(const float* w0, const float* w1, const float* w2,
                          const float* w3, std::size_t k) {
  return _mm_set_ps(w3[k], w2[k], w1[k], w0[k]);
}

}  // namespace

void mvm_dot8_avx2(const float* w, std::int64_t stride, const float* x,
                   std::size_t n, float out[8]) {
  const float* wa0 = w + 0 * stride;
  const float* wa1 = w + 1 * stride;
  const float* wa2 = w + 2 * stride;
  const float* wa3 = w + 3 * stride;
  const float* wb0 = w + 4 * stride;
  const float* wb1 = w + 5 * stride;
  const float* wb2 = w + 6 * stride;
  const float* wb3 = w + 7 * stride;
  __m256d sa = _mm256_setzero_pd();
  __m256d sb = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128 la[4], lb[4];
    load_transpose4(wa0, wa1, wa2, wa3, k, la);
    load_transpose4(wb0, wb1, wb2, wb3, k, lb);
    for (int t = 0; t < 4; ++t) {
      const __m256d xk = _mm256_set1_pd(static_cast<double>(x[k + t]));
      sa = _mm256_fmadd_pd(_mm256_cvtps_pd(la[t]), xk, sa);
      sb = _mm256_fmadd_pd(_mm256_cvtps_pd(lb[t]), xk, sb);
    }
  }
  for (; k < n; ++k) {
    const __m256d xk = _mm256_set1_pd(static_cast<double>(x[k]));
    sa = _mm256_fmadd_pd(
        _mm256_cvtps_pd(gather_lane(wa0, wa1, wa2, wa3, k)), xk, sa);
    sb = _mm256_fmadd_pd(
        _mm256_cvtps_pd(gather_lane(wb0, wb1, wb2, wb3, k)), xk, sb);
  }
  _mm_storeu_ps(out, _mm256_cvtpd_ps(sa));
  _mm_storeu_ps(out + 4, _mm256_cvtpd_ps(sb));
}

void ir_fused8_avx2(const float* w, std::int64_t stride, const float* x,
                    std::size_t n, float kappa, float out[8]) {
  const float* wa0 = w + 0 * stride;
  const float* wa1 = w + 1 * stride;
  const float* wa2 = w + 2 * stride;
  const float* wa3 = w + 3 * stride;
  const float* wb0 = w + 4 * stride;
  const float* wb1 = w + 5 * stride;
  const float* wb2 = w + 6 * stride;
  const float* wb3 = w + 7 * stride;
  const __m256d kd = _mm256_set1_pd(static_cast<double>(kappa));
  const __m256d inv_n = _mm256_set1_pd(1.0 / static_cast<double>(n));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m128 absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  __m256d caa = _mm256_setzero_pd(), cab = _mm256_setzero_pd();
  __m256d aa = _mm256_setzero_pd(), ab = _mm256_setzero_pd();
  // One lane step of the scalar recurrence (see header for the op map).
  const auto step = [&](__m128 wf, __m128 xk, __m256d& ca, __m256d& acc) {
    const __m128 c = _mm_mul_ps(wf, xk);
    ca = _mm256_add_pd(ca, _mm256_cvtps_pd(_mm_and_ps(c, absmask)));
    const __m256d t = _mm256_mul_pd(kd, ca);
    const __m256d factor = _mm256_fnmadd_pd(t, inv_n, one);
    acc = _mm256_fmadd_pd(_mm256_cvtps_pd(c), factor, acc);
  };
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128 la[4], lb[4];
    load_transpose4(wa0, wa1, wa2, wa3, k, la);
    load_transpose4(wb0, wb1, wb2, wb3, k, lb);
    for (int t = 0; t < 4; ++t) {
      const __m128 xk = _mm_set1_ps(x[k + t]);
      step(la[t], xk, caa, aa);
      step(lb[t], xk, cab, ab);
    }
  }
  for (; k < n; ++k) {
    const __m128 xk = _mm_set1_ps(x[k]);
    step(gather_lane(wa0, wa1, wa2, wa3, k), xk, caa, aa);
    step(gather_lane(wb0, wb1, wb2, wb3, k), xk, cab, ab);
  }
  _mm_storeu_ps(out, _mm256_cvtpd_ps(aa));
  _mm_storeu_ps(out + 4, _mm256_cvtpd_ps(ab));
}

std::int64_t dac_scale_clip_quantize_avx2(const float* xs, float* out,
                                          std::size_t n, float inv_alpha,
                                          float steps, float bound) {
  const bool quant = steps > 0.0f;
  const float half = steps / 2.0f;
  const __m256 va = _mm256_set1_ps(inv_alpha);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 signmask = _mm256_castsi256_ps(_mm256_set1_epi32(
      static_cast<int>(0x80000000u)));
  const __m256 vb = _mm256_set1_ps(bound);
  const __m256 vh = _mm256_set1_ps(half);
  const __m256 vnh = _mm256_set1_ps(-half);
  const __m256 vh1 = _mm256_set1_ps(half - 1.0f);
  const __m256 vhalfc = _mm256_set1_ps(0.5f);
  std::int64_t clipped = 0;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m256 v = _mm256_mul_ps(_mm256_loadu_ps(xs + k), va);
    const __m256 clip =
        _mm256_cmp_ps(_mm256_and_ps(v, absmask), one, _CMP_GT_OQ);
    clipped += _mm_popcnt_u32(
        static_cast<unsigned>(_mm256_movemask_ps(clip)));
    // v > 0 ? 1 : -1, branchless: copysign(1, v); only the clipped lanes
    // (|v| > 1, so v != 0) consume it.
    const __m256 sign1 = _mm256_or_ps(one, _mm256_and_ps(v, signmask));
    v = _mm256_blendv_ps(v, sign1, clip);
    if (quant) {
      const __m256 y = _mm256_mul_ps(_mm256_div_ps(v, vb), vh);
      // round-half-away-from-zero: trunc, then +-1 where |frac| >= 0.5.
      const __m256 t =
          _mm256_round_ps(y, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
      const __m256 frac = _mm256_and_ps(_mm256_sub_ps(y, t), absmask);
      const __m256 ge = _mm256_cmp_ps(frac, vhalfc, _CMP_GE_OQ);
      // Blend, don't add-zero: t + (+0) would flip a -0 lane (y in
      // (-0.5, 0] truncates to -0, and -0 + +0 = +0) while the scalar
      // round returns trunc's -0 untouched.
      const __m256 sign1 = _mm256_or_ps(one, _mm256_and_ps(y, signmask));
      __m256 q = _mm256_blendv_ps(t, _mm256_add_ps(t, sign1), ge);
      q = _mm256_max_ps(q, vnh);
      q = _mm256_min_ps(q, vh1);
      v = _mm256_div_ps(_mm256_mul_ps(q, vb), vh);
    }
    _mm256_storeu_ps(out + k, v);
  }
  for (; k < n; ++k) {
    float v = xs[k] * inv_alpha;
    if (std::fabs(v) > 1.0f) {
      ++clipped;
      v = v > 0.0f ? 1.0f : -1.0f;
    }
    if (quant) {
      float q = std::round(v / bound * half);
      q = std::clamp(q, -half, half - 1.0f);
      v = q * bound / half;
    }
    out[k] = v;
  }
  return clipped;
}

void add_scaled_gaussian_avx2(float* v, const double* raw, std::size_t n,
                              double stddev) {
  const __m256d sd = _mm256_set1_pd(stddev);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d term = _mm256_fmadd_pd(sd, _mm256_loadu_pd(raw + k), zero);
    _mm_storeu_ps(v + k,
                  _mm_add_ps(_mm_loadu_ps(v + k), _mm256_cvtpd_ps(term)));
  }
  for (; k < n; ++k) {
    v[k] += static_cast<float>(std::fma(stddev, raw[k], 0.0));
  }
}

void scale_convert_avx2(float* dst, const double* raw, std::size_t n,
                        double mean, double stddev) {
  const __m256d sd = _mm256_set1_pd(stddev);
  const __m256d mu = _mm256_set1_pd(mean);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm_storeu_ps(dst + k, _mm256_cvtpd_ps(_mm256_fmadd_pd(
                               sd, _mm256_loadu_pd(raw + k), mu)));
  }
  for (; k < n; ++k) {
    dst[k] = static_cast<float>(std::fma(stddev, raw[k], mean));
  }
}

#else  // !(__AVX2__ && __FMA__)

// util::simd::active() never returns kAvx2 in a build without AVX2+FMA,
// so these are unreachable; they exist to keep the link uniform.
void mvm_dot8_avx2(const float*, std::int64_t, const float*, std::size_t,
                   float[8]) {
  std::abort();
}
void ir_fused8_avx2(const float*, std::int64_t, const float*, std::size_t,
                    float, float[8]) {
  std::abort();
}
std::int64_t dac_scale_clip_quantize_avx2(const float*, float*, std::size_t,
                                          float, float, float) {
  std::abort();
}
void add_scaled_gaussian_avx2(float*, const double*, std::size_t, double) {
  std::abort();
}
void scale_convert_avx2(float*, const double*, std::size_t, double, double) {
  std::abort();
}

#endif

}  // namespace nora::util::simd
