#include "util/paths.hpp"

#include <cstdlib>
#include <filesystem>

namespace nora::util {

std::string model_cache_dir() {
  const char* env = std::getenv("NORA_CACHE_DIR");
  std::string dir = env != nullptr && *env != '\0' ? env : "models_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

}  // namespace nora::util
