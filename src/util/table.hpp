// Console / CSV table writer used by the benchmark harness to print the
// rows and series of each paper table / figure in a uniform format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nora::util {

/// Collects rows of string cells and renders them as an aligned console
/// table (GitHub-markdown-ish) and/or writes them to a CSV file.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 4);
  /// Format as a percentage, e.g. 87.99.
  static std::string pct(double fraction, int precision = 2);

  /// Render as an aligned text table.
  std::string to_string() const;
  /// Render as CSV.
  std::string to_csv() const;

  /// Print to stdout with an optional caption line.
  void print(std::string_view caption = "") const;
  /// Write CSV next to the binary (best effort; ignores I/O failure).
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nora::util
