// Minimal command-line option parser for the bench / example binaries.
//
// Accepts "--key=value" and "--flag" arguments; everything else is an error
// so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace nora::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key, bool fallback = false) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace nora::util
