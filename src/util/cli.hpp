// Minimal command-line option parser for the bench / example binaries.
//
// Accepts "--key=value" and "--flag" arguments; everything else is an error
// so typos in sweep scripts fail loudly. Giving the same flag twice is an
// error too (the old behavior silently kept the last value). After a binary
// has looked up everything it understands, check_unknown() rejects any
// flag the user passed that nothing ever consumed — the classic silent
// "--stpes=100" typo.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace nora::util {

class Cli {
 public:
  /// Throws std::invalid_argument on a malformed argument or on a flag
  /// given more than once (naming the flag).
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key, bool fallback = false) const;

  /// Throws std::invalid_argument naming the first flag the user passed
  /// that no has()/get*() call ever asked about. Call once, after all
  /// lookups — a typoed flag then fails the run instead of silently
  /// falling back to the default.
  void check_unknown() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  /// Every key a lookup asked about (i.e. the binary's flag vocabulary).
  mutable std::set<std::string> consulted_;
};

}  // namespace nora::util
