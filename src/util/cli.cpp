#include "util/cli.hpp"

#include <stdexcept>

namespace nora::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: unexpected argument '" + arg +
                                  "' (expected --key=value or --flag)");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    if (key.empty()) {
      throw std::invalid_argument("Cli: empty flag name in '--" + arg + "'");
    }
    if (values_.count(key) > 0) {
      throw std::invalid_argument("Cli: duplicate flag '--" + key +
                                  "' (given more than once)");
    }
    values_[key] = eq == std::string::npos ? "1" : arg.substr(eq + 1);
  }
}

bool Cli::has(const std::string& key) const {
  consulted_.insert(key);
  return values_.count(key) > 0;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  consulted_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  consulted_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  consulted_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Cli::get_flag(const std::string& key, bool fallback) const {
  consulted_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

void Cli::check_unknown() const {
  for (const auto& [key, value] : values_) {
    if (consulted_.count(key) == 0) {
      throw std::invalid_argument("Cli: unknown flag '--" + key +
                                  "' (not accepted by " + program_ + ")");
    }
  }
}

}  // namespace nora::util
