// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — used by the checkpoint
// format to detect bit-rot and truncation before weights are loaded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nora::util {

/// CRC-32 of `len` bytes. Pass a previous result as `crc` to continue a
/// running checksum over multiple buffers; 0 starts a fresh one.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc = 0);

}  // namespace nora::util
