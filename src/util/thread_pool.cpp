#include "util/thread_pool.hpp"

#include <algorithm>

namespace nora::util {

ThreadPool::ThreadPool(int threads) { resize(threads); }

ThreadPool::~ThreadPool() { resize(1); }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(1);
  return pool;
}

int ThreadPool::clamp_width(int threads) {
  // Deterministic clamp instead of throwing: per-chip pool domains size
  // themselves from config knobs (chips x threads_per_chip) that may ask
  // for 0 or for more than the host offers. 0 / negative degrade to the
  // sequential width; requests beyond hardware_concurrency() clamp to it
  // so N chip pools never oversubscribe the host N-fold. When the host
  // cannot report its width (hardware_concurrency() == 0) the requested
  // width is honored as-is — there is nothing to clamp against.
  if (threads < 1) return 1;
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc > 0 && threads > static_cast<int>(hc)) return static_cast<int>(hc);
  return threads;
}

void ThreadPool::resize(int threads) {
  threads = clamp_width(threads);
  const std::size_t want_workers = static_cast<std::size_t>(threads - 1);
  if (want_workers == workers_.size()) {
    n_threads_.store(threads, std::memory_order_relaxed);
    return;
  }
  // Quiesce the current crew. Callers guarantee no parallel_for is in
  // flight, so jobs_ is empty and workers are parked on cv_work_.
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = false;
  }
  workers_.reserve(want_workers);
  for (std::size_t i = 0; i < want_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  n_threads_.store(threads, std::memory_order_relaxed);
}

void ThreadPool::ensure(int threads) {
  if (threads > this->threads()) resize(threads);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      job = jobs_.back();  // newest first: unblocks nested loops fastest
    }
    assist(*job);
    remove_job(job);
  }
}

void ThreadPool::assist(Job& job) {
  for (;;) {
    const std::int64_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::int64_t end = std::min(job.n, begin + job.grain);
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        for (std::int64_t i = begin; i < end; ++i) (*job.fn)(i);
      } catch (...) {
        bool expected = false;
        if (job.failed.compare_exchange_strong(expected, true)) {
          job.error = std::current_exception();
        }
      }
    }
    if (job.done.fetch_add(end - begin, std::memory_order_acq_rel) +
            (end - begin) ==
        job.n) {
      std::lock_guard<std::mutex> lk(m_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::remove_job(const std::shared_ptr<Job>& job) {
  std::lock_guard<std::mutex> lk(m_);
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn,
                              std::int64_t grain) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n == 1 || threads() <= 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = grain;
  {
    std::lock_guard<std::mutex> lk(m_);
    jobs_.push_back(job);
  }
  cv_work_.notify_all();
  assist(*job);  // the caller always helps drain its own job
  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) >= job->n;
    });
  }
  remove_job(job);
  if (job->failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(job->error);
  }
}

}  // namespace nora::util
