// A small shared-counter work pool for deterministic parallel loops.
//
// Design constraints (see DESIGN.md "Threading & RNG streams"):
//   - Work items must produce bit-identical results for ANY thread count,
//     including 1. The pool therefore never decides *what* a work item
//     computes — callers key all randomness and write disjoint outputs;
//     the pool only decides *who* runs each item.
//   - parallel_for must be safely nestable (a worker executing an item
//     may itself call parallel_for): the claiming thread always helps
//     drain its own job, so an inner loop completes even when every
//     other worker is busy.
//   - With zero workers (the default) parallel_for degrades to a plain
//     sequential loop with no synchronization, so single-threaded runs
//     pay nothing and stay on the exact same code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nora::util {

class ThreadPool {
 public:
  /// threads counts the calling thread too: ThreadPool(4) spawns 3
  /// workers and expects the caller to participate in parallel_for.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, including the calling thread (>= 1).
  int threads() const { return n_threads_.load(std::memory_order_relaxed); }

  /// Set the execution width exactly (joins or spawns workers). Must not
  /// be called concurrently with an in-flight parallel_for. Out-of-range
  /// requests clamp deterministically (see clamp_width) instead of
  /// throwing or oversubscribing.
  void resize(int threads);
  /// Grow to at least `clamp_width(threads)`; never shrinks.
  void ensure(int threads);

  /// The width resize(threads) would actually install: requests < 1
  /// clamp to 1; requests above hardware_concurrency() clamp to it
  /// (when the host reports one). Pure function of (threads, host).
  static int clamp_width(int threads);

  /// Run fn(0) .. fn(n-1), distributing indices over the pool in chunks
  /// of `grain`. Blocks until every index has completed. The first
  /// exception thrown by any item is rethrown here (remaining items are
  /// skipped, already-claimed ones still finish). fn must write only
  /// per-index-disjoint state; execution order is unspecified.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                    std::int64_t grain = 1);

  /// The process-wide pool. Starts at width 1 (purely sequential);
  /// benches and deployment plumbing size it via resize()/ensure().
  static ThreadPool& global();

 private:
  struct Job {
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t n = 0;
    std::int64_t grain = 1;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // written once by the failed CAS winner
  };

  void worker_loop();
  /// Claim and run chunks of `job` until none are left.
  void assist(Job& job);
  void remove_job(const std::shared_ptr<Job>& job);

  mutable std::mutex m_;
  std::condition_variable cv_work_;  // workers: new job available / stop
  std::condition_variable cv_done_;  // callers: a job finished
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Job>> jobs_;  // active jobs, newest assisted first
  std::atomic<int> n_threads_{1};
  bool stop_ = false;
};

}  // namespace nora::util
