#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/simd.hpp"
#include "util/simd_kernels.hpp"

namespace nora::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::string_view label) {
  // FNV-1a over the label, mixed with the parent through splitmix64.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  std::uint64_t s = parent ^ h;
  return splitmix64(s);
}

std::uint64_t derive_stream(std::uint64_t base, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c) {
  // Chained splitmix64 absorption: each coordinate passes through a full
  // mixing round, so adjacent counters (t vs t+1, tile i vs i+1) land in
  // decorrelated streams.
  std::uint64_t s = base;
  s = splitmix64(s) ^ a;
  s = splitmix64(s) ^ b;
  s = splitmix64(s) ^ c;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::gaussian() {
  if (has_cached_gauss_) {
    has_cached_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  // glibc's sincos shares its kernels with sin/cos and returns the same
  // bits for both halves (spot-checked exhaustively in the test suite's
  // golden draws); one call saves a second argument reduction on the
  // analog hot path, where gaussians dominate the noise-injection cost.
  double sin_t = 0.0, cos_t = 0.0;
  ::sincos(theta, &sin_t, &cos_t);
  cached_gauss_ = r * sin_t;
  has_cached_gauss_ = true;
  return r * cos_t;
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

void Rng::gaussian_fill(std::span<double> out) {
  std::size_t i = 0;
  const std::size_t n = out.size();
  // Drain the cached second Box-Muller draw first, exactly like a
  // gaussian() call would.
  if (i < n && has_cached_gauss_) {
    has_cached_gauss_ = false;
    out[i++] = cached_gauss_;
  }
  // Whole pairs: cos draw returned first, sin draw immediately after —
  // the same two values, in the same order, as two sequential gaussian()
  // calls (the second of which would have come from the cache).
  while (i + 1 < n) {
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    double sin_t = 0.0, cos_t = 0.0;
    ::sincos(theta, &sin_t, &cos_t);  // same bits as sin/cos, one call
    out[i] = r * cos_t;
    out[i + 1] = r * sin_t;
    i += 2;
  }
  // Odd tail: one more pair, sin half left in the cache for the next
  // draw — identical end state to the sequential call sequence.
  if (i < n) out[i] = gaussian();
}

void Rng::gaussian_fill(std::span<float> out, double mean, double stddev) {
  std::size_t i = 0;
  const std::size_t n = out.size();
  if (i < n && has_cached_gauss_) {
    has_cached_gauss_ = false;
    out[i++] = static_cast<float>(mean + stddev * cached_gauss_);
  }
  // Generate raw standard normals into a chunk buffer, then scale/convert
  // through the dispatched kernel. The raw pair values (r*cos, r*sin) are
  // the identical single-rounded products the fused expression formed, and
  // the convert is the fma the compiler contracts `mean + stddev*g` into,
  // so chunking changes no output bit on either dispatch path.
  double raw[256];
  while (i + 1 < n) {
    const std::size_t m = std::min<std::size_t>(
        sizeof(raw) / sizeof(raw[0]), ((n - i) / 2) * 2);
    for (std::size_t p = 0; p < m; p += 2) {
      double u1 = 0.0;
      do {
        u1 = uniform();
      } while (u1 <= 1e-300);
      const double u2 = uniform();
      const double r = std::sqrt(-2.0 * std::log(u1));
      const double theta = 2.0 * M_PI * u2;
      double sin_t = 0.0, cos_t = 0.0;
      ::sincos(theta, &sin_t, &cos_t);  // same bits as sin/cos, one call
      raw[p] = r * cos_t;
      raw[p + 1] = r * sin_t;
    }
    if (simd::use_avx2()) {
      simd::scale_convert_avx2(out.data() + i, raw, m, mean, stddev);
    } else {
      for (std::size_t p = 0; p < m; ++p) {
        out[i + p] = static_cast<float>(std::fma(stddev, raw[p], mean));
      }
    }
    i += m;
  }
  if (i < n) out[i] = static_cast<float>(gaussian(mean, stddev));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split(std::string_view label) const {
  return Rng(derive_seed(seed_, label));
}

}  // namespace nora::util
