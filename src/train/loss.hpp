// Softmax cross-entropy over logits, with per-position weights.
//
// SynthLambada training puts full weight on the final (answer) position
// and a small auxiliary weight on all other next-token positions, which
// speeds up representation learning without changing the task metric.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace nora::train {

struct LossResult {
  double loss = 0.0;   // weighted mean cross-entropy
  Matrix dlogits;      // gradient w.r.t. logits
};

/// logits: [T x V]; targets[t] is the target id for position t, or -1 to
/// skip; weights[t] scales position t's contribution (pass {} for all 1).
LossResult softmax_cross_entropy(const Matrix& logits,
                                 std::span<const int> targets,
                                 std::span<const float> weights = {});

}  // namespace nora::train
