#include "train/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/serialize.hpp"
#include "util/crc32.hpp"

namespace nora::train {

namespace {
constexpr char kMagic[4] = {'N', 'C', 'K', 'P'};
// v1: magic, version, payload (no integrity check) — still readable.
// v2: magic, version, i64 payload size, i64 CRC-32 of the payload,
//     payload. Bit-rot and truncation fail loudly at load time instead
//     of materializing as garbage weights.
constexpr std::int64_t kVersion = 2;

void write_config(std::ostream& out, const nn::TransformerConfig& cfg) {
  write_i64(out, cfg.vocab_size);
  write_i64(out, cfg.d_model);
  write_i64(out, cfg.n_layers);
  write_i64(out, cfg.n_heads);
  write_i64(out, cfg.d_ff);
  write_i64(out, cfg.max_seq);
  write_i64(out, cfg.norm_kind == nn::NormKind::kRmsNorm ? 1 : 0);
  write_i64(out, cfg.mlp_kind == nn::MlpKind::kSiluGated ? 1 : 0);
  write_f32(out, cfg.init_std);
  write_i64(out, static_cast<std::int64_t>(cfg.seed));
  write_i64(out, static_cast<std::int64_t>(cfg.norm_gain.size()));
  for (float g : cfg.norm_gain) write_f32(out, g);
}

nn::TransformerConfig read_config(std::istream& in) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = read_i64(in);
  cfg.d_model = read_i64(in);
  cfg.n_layers = read_i64(in);
  cfg.n_heads = read_i64(in);
  cfg.d_ff = read_i64(in);
  cfg.max_seq = read_i64(in);
  cfg.norm_kind = read_i64(in) == 1 ? nn::NormKind::kRmsNorm : nn::NormKind::kLayerNorm;
  cfg.mlp_kind = read_i64(in) == 1 ? nn::MlpKind::kSiluGated : nn::MlpKind::kGelu;
  cfg.init_std = read_f32(in);
  cfg.seed = static_cast<std::uint64_t>(read_i64(in));
  const std::int64_t n_gain = read_i64(in);
  if (n_gain < 0 || n_gain > (1 << 24)) {
    throw std::runtime_error("checkpoint: implausible gain length");
  }
  cfg.norm_gain.resize(static_cast<std::size_t>(n_gain));
  for (auto& g : cfg.norm_gain) g = read_f32(in);
  return cfg;
}
}  // namespace

namespace {
/// Parse the payload (config + params) shared by all format versions.
std::unique_ptr<nn::TransformerLM> read_payload(std::istream& in,
                                                const std::string& path) {
  auto model = std::make_unique<nn::TransformerLM>(read_config(in));
  const auto params = model->collect_params();
  const std::int64_t count = read_i64(in);
  if (count != static_cast<std::int64_t>(params.size())) {
    throw std::runtime_error("load_checkpoint: parameter count mismatch in " + path);
  }
  for (nn::Param* p : params) {
    Matrix m = read_matrix(in);
    if (!m.same_shape(p->value)) {
      throw std::runtime_error("load_checkpoint: shape mismatch for " + p->name);
    }
    p->value = std::move(m);
  }
  return model;
}
}  // namespace

void save_checkpoint(const std::string& path, nn::TransformerLM& model) {
  // Serialize the payload in memory first so its CRC-32 can precede it.
  std::ostringstream payload_out(std::ios::binary);
  write_config(payload_out, model.config());
  const auto params = model.collect_params();
  write_i64(payload_out, static_cast<std::int64_t>(params.size()));
  for (const nn::Param* p : params) write_matrix(payload_out, p->value);
  const std::string payload = payload_out.str();

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  write_i64(out, kVersion);
  write_i64(out, static_cast<std::int64_t>(payload.size()));
  write_i64(out, util::crc32(payload.data(), payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

std::unique_ptr<nn::TransformerLM> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  const std::int64_t version = read_i64(in);
  if (version == 1) {
    // Legacy checksum-less format (seed checkpoints / model cache).
    return read_payload(in, path);
  }
  if (version != kVersion) {
    throw std::runtime_error("load_checkpoint: unsupported version in " + path);
  }
  const std::int64_t payload_size = read_i64(in);
  if (payload_size < 0) {
    throw std::runtime_error("load_checkpoint: implausible payload size in " + path);
  }
  const std::uint32_t expected_crc = static_cast<std::uint32_t>(read_i64(in));
  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (in.gcount() != static_cast<std::streamsize>(payload.size())) {
    throw std::runtime_error("load_checkpoint: truncated checkpoint " + path);
  }
  const std::uint32_t actual_crc = util::crc32(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    throw std::runtime_error(
        "load_checkpoint: CRC-32 mismatch in " + path +
        " (file is corrupt or truncated)");
  }
  std::istringstream payload_in(payload, std::ios::binary);
  return read_payload(payload_in, path);
}

}  // namespace nora::train
