// Model checkpoint I/O.
//
// Format: magic "NCKP", version, the full TransformerConfig (including
// the planted norm gains), then every Param matrix in collect_params()
// order. Loading reconstructs the model from the embedded config, so a
// checkpoint is fully self-describing.
#pragma once

#include <memory>
#include <string>

#include "nn/transformer.hpp"

namespace nora::train {

void save_checkpoint(const std::string& path, nn::TransformerLM& model);

/// Throws std::runtime_error on missing/corrupt file.
std::unique_ptr<nn::TransformerLM> load_checkpoint(const std::string& path);

}  // namespace nora::train
