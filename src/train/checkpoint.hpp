// Model checkpoint I/O.
//
// Format (v2): magic "NCKP", version, payload size, CRC-32 of the
// payload, then the payload — the full TransformerConfig (including the
// planted norm gains) followed by every Param matrix in
// collect_params() order. Loading verifies the checksum (bit-rot and
// truncation fail with a clear error) and reconstructs the model from
// the embedded config, so a checkpoint is fully self-describing.
// Checksum-less v1 checkpoints remain readable.
#pragma once

#include <memory>
#include <string>

#include "nn/transformer.hpp"

namespace nora::train {

void save_checkpoint(const std::string& path, nn::TransformerLM& model);

/// Throws std::runtime_error on missing, corrupt, truncated, or
/// checksum-mismatched files.
std::unique_ptr<nn::TransformerLM> load_checkpoint(const std::string& path);

}  // namespace nora::train
