#include "train/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::train {

LossResult softmax_cross_entropy(const Matrix& logits,
                                 std::span<const int> targets,
                                 std::span<const float> weights) {
  const std::int64_t t_len = logits.rows();
  const std::int64_t v = logits.cols();
  if (static_cast<std::int64_t>(targets.size()) != t_len) {
    throw std::invalid_argument("cross_entropy: targets length mismatch");
  }
  if (!weights.empty() && static_cast<std::int64_t>(weights.size()) != t_len) {
    throw std::invalid_argument("cross_entropy: weights length mismatch");
  }
  LossResult res;
  res.dlogits = Matrix(t_len, v);
  double total_weight = 0.0;
  for (std::int64_t t = 0; t < t_len; ++t) {
    const int target = targets[static_cast<std::size_t>(t)];
    if (target < 0) continue;
    if (target >= v) throw std::invalid_argument("cross_entropy: target out of range");
    const float w = weights.empty() ? 1.0f : weights[static_cast<std::size_t>(t)];
    if (w <= 0.0f) continue;
    total_weight += w;
  }
  if (total_weight == 0.0) return res;
  const double inv_w = 1.0 / total_weight;
  for (std::int64_t t = 0; t < t_len; ++t) {
    const int target = targets[static_cast<std::size_t>(t)];
    const float w = weights.empty() ? 1.0f : weights[static_cast<std::size_t>(t)];
    if (target < 0 || w <= 0.0f) continue;
    const auto lr = logits.row(t);
    auto dr = res.dlogits.row(t);
    float row_max = lr[0];
    for (float x : lr) row_max = std::max(row_max, x);
    double denom = 0.0;
    for (std::int64_t c = 0; c < v; ++c) denom += std::exp(double(lr[c]) - row_max);
    const double log_denom = std::log(denom);
    const double logp = double(lr[target]) - row_max - log_denom;
    res.loss += -logp * w * inv_w;
    const double scale = w * inv_w;
    for (std::int64_t c = 0; c < v; ++c) {
      const double p = std::exp(double(lr[c]) - row_max - log_denom);
      dr[c] = static_cast<float>(scale * (p - (c == target ? 1.0 : 0.0)));
    }
  }
  return res;
}

}  // namespace nora::train
