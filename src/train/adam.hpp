// Adam optimizer over a model's Param set.
#pragma once

#include <vector>

#include "nn/param.hpp"

namespace nora::train {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style)
  float grad_clip = 1.0f;     // global L2 clip; 0 disables
};

class Adam {
 public:
  Adam(nn::ParamRefs params, AdamConfig cfg = {});

  /// One update from the accumulated gradients (does not zero them).
  void step();
  /// Override the learning rate (for schedules).
  void set_lr(float lr) { cfg_.lr = lr; }
  float lr() const { return cfg_.lr; }
  std::int64_t steps_taken() const { return t_; }

 private:
  nn::ParamRefs params_;
  AdamConfig cfg_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  std::int64_t t_ = 0;
};

}  // namespace nora::train
