#include "train/trainer.hpp"

#include <cmath>
#include <cstdio>

#include "eval/evaluator.hpp"
#include "tensor/ops.hpp"
#include "train/loss.hpp"

namespace nora::train {

namespace {
float schedule_lr(const TrainConfig& cfg, int step) {
  const float base = cfg.adam.lr;
  const int warmup = std::max(1, static_cast<int>(cfg.steps * cfg.warmup_frac));
  if (step < warmup) return base * static_cast<float>(step + 1) / warmup;
  const float progress =
      static_cast<float>(step - warmup) / std::max(1, cfg.steps - warmup);
  // Cosine decay to 10% of the base rate.
  return base * (0.1f + 0.9f * 0.5f * (1.0f + std::cos(progress * 3.14159265f)));
}
}  // namespace

TrainReport train_lm(nn::TransformerLM& model, const eval::SynthLambada& task,
                     const TrainConfig& cfg, const ProgressFn& progress) {
  Adam opt(model.collect_params(), cfg.adam);
  util::Rng rng(cfg.seed);
  TrainReport report;
  double running_loss = 0.0;
  int running_count = 0;
  for (int step = 0; step < cfg.steps; ++step) {
    opt.set_lr(schedule_lr(cfg, step));
    model.zero_grads();
    double batch_loss = 0.0;
    for (int b = 0; b < cfg.batch_size; ++b) {
      const auto ex = task.make_example("train", rng.next_u64() % (1ull << 48));
      const Matrix logits = model.forward(ex.tokens, /*training=*/true);
      LossResult res = softmax_cross_entropy(logits, ex.targets, ex.weights);
      // Average the gradient over the batch.
      ops::scale_inplace(res.dlogits, 1.0f / cfg.batch_size);
      model.backward(res.dlogits);
      batch_loss += res.loss;
    }
    batch_loss /= cfg.batch_size;
    running_loss += batch_loss;
    ++running_count;
    opt.step();
    report.steps_run = step + 1;
    const bool eval_now =
        cfg.eval_every > 0 &&
        ((step + 1) % cfg.eval_every == 0 || step + 1 == cfg.steps);
    if (eval_now) {
      eval::EvalOptions eo;
      eo.split = "valid";
      eo.n_examples = cfg.eval_examples;
      const auto ev = eval::evaluate(model, task, eo);
      report.final_accuracy = ev.accuracy;
      report.final_loss = running_loss / running_count;
      running_loss = 0.0;
      running_count = 0;
      if (progress) progress(step + 1, report.final_loss, ev.accuracy);
      if (cfg.verbose) {
        std::printf("  [train] step %4d  loss %.4f  valid-acc %.3f\n", step + 1,
                    report.final_loss, ev.accuracy);
        std::fflush(stdout);
      }
      if (cfg.target_accuracy > 0.0 && ev.accuracy >= cfg.target_accuracy) break;
    }
  }
  return report;
}

}  // namespace nora::train
