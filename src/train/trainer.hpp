// Training loop for the synthetic-LLM zoo.
//
// The paper starts from pretrained OPT/LLaMA/Mistral checkpoints; since
// none are available, we *train* each scaled-down stand-in from scratch
// on SynthLambada until it solves the task at high accuracy, then treat
// the frozen weights exactly like a downloaded checkpoint.
#pragma once

#include <functional>

#include "eval/synthlambada.hpp"
#include "nn/transformer.hpp"
#include "train/adam.hpp"

namespace nora::train {

struct TrainConfig {
  int steps = 1200;
  int batch_size = 16;
  AdamConfig adam{};
  float warmup_frac = 0.05f;  // linear warmup, then cosine decay to 10%
  int eval_every = 200;       // 0 disables progress evaluation
  int eval_examples = 64;
  std::uint64_t seed = 4242;
  bool verbose = true;
  /// Stop early once progress accuracy reaches this level (0 disables).
  double target_accuracy = 0.995;
};

struct TrainReport {
  int steps_run = 0;
  double final_loss = 0.0;
  double final_accuracy = 0.0;  // on the "valid" slice of the train split
};

using ProgressFn =
    std::function<void(int step, double loss, double accuracy)>;

TrainReport train_lm(nn::TransformerLM& model, const eval::SynthLambada& task,
                     const TrainConfig& cfg, const ProgressFn& progress = {});

}  // namespace nora::train
