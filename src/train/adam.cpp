#include "train/adam.hpp"

#include <cmath>

namespace nora::train {

Adam::Adam(nn::ParamRefs params, AdamConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  // Global gradient-norm clipping over trainable params.
  float clip_scale = 1.0f;
  if (cfg_.grad_clip > 0.0f) {
    double sq = 0.0;
    for (const nn::Param* p : params_) {
      if (!p->trainable) continue;
      const float* g = p->grad.data();
      for (std::int64_t i = 0; i < p->grad.size(); ++i) sq += double(g[i]) * g[i];
    }
    const double norm = std::sqrt(sq);
    if (norm > cfg_.grad_clip) {
      clip_scale = static_cast<float>(cfg_.grad_clip / norm);
    }
  }
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param* p = params_[i];
    if (!p->trainable) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::int64_t j = 0; j < p->value.size(); ++j) {
      const float gj = g[j] * clip_scale;
      m[j] = cfg_.beta1 * m[j] + (1.0f - cfg_.beta1) * gj;
      v[j] = cfg_.beta2 * v[j] + (1.0f - cfg_.beta2) * gj * gj;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                         cfg_.weight_decay * w[j]);
    }
  }
}

}  // namespace nora::train
