#include "shard/chip_set.hpp"

#include <stdexcept>
#include <string>

namespace nora::shard {

ChipSet::ChipSet(int n_chips, int threads_per_chip) {
  if (n_chips < 1) {
    throw std::invalid_argument("ChipSet: n_chips must be >= 1, got " +
                                std::to_string(n_chips));
  }
  pools_.reserve(static_cast<std::size_t>(n_chips));
  for (int c = 0; c < n_chips; ++c) {
    pools_.push_back(std::make_unique<util::ThreadPool>(threads_per_chip));
  }
}

std::vector<util::ThreadPool*> ChipSet::pool_range(int chip0, int count) {
  if (chip0 < 0 || count < 1 || chip0 + count > n_chips()) {
    throw std::out_of_range("ChipSet: pool range [" + std::to_string(chip0) +
                            ", " + std::to_string(chip0 + count) +
                            ") outside " + std::to_string(n_chips()) +
                            " chips");
  }
  std::vector<util::ThreadPool*> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int c = chip0; c < chip0 + count; ++c) {
    out.push_back(pools_[static_cast<std::size_t>(c)].get());
  }
  return out;
}

}  // namespace nora::shard
