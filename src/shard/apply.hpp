// Bind a PipelinePlan to a model: install the executed cim::ShardPlans
// (which chip pools run each analog layer's tiles, split along the
// layer's role axis) and the timing-chip stamps the co-simulator reads.
//
// Role axes follow the Megatron convention adapted to tile grids:
//   column split (disjoint output columns, no cross-chip reduction):
//     qkv, mlp up / gate, lm_head
//   row split (full-width fp32 partials, canonical tree all-reduce):
//     attention out-proj, mlp down
// Execution is bit-identical for ANY plan — see cim::ShardPlan — so
// applying, swapping or clearing plans never changes model outputs.
#pragma once

#include "nn/transformer.hpp"
#include "shard/chip_set.hpp"
#include "shard/plan.hpp"

namespace nora::shard {

/// Install `plan` on the model, drawing per-stage pools from `chips`.
/// Validates the plan against the model/chip shapes (throws
/// std::invalid_argument). `chips` must outlive the installed plan
/// (until clear_plan or the next apply_plan).
void apply_plan(nn::TransformerLM& model, ChipSet& chips,
                const PipelinePlan& plan);

/// Remove all shard plans and chip stamps: back to single-chip
/// execution on the legacy (linear-fold) path.
void clear_plan(nn::TransformerLM& model);

}  // namespace nora::shard
