// Multi-chip placement plans: which chips run which transformer blocks
// (pipeline parallelism) and how wide each stage shards its linears
// (tensor parallelism), plus the cost-model-driven search that picks a
// plan for a chip budget.
//
// A plan is PURE METADATA for the timing co-simulator plus a recipe for
// shard::apply_plan. It never changes what the model computes: sharded
// execution is bit-identical for any plan (see cim::ShardPlan), so the
// search is free to optimize simulated time alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/transformer.hpp"
#include "timing/hw_model.hpp"
#include "timing/trace.hpp"

namespace nora::shard {

/// One pipeline stage: a contiguous run of transformer blocks executed
/// on chips [chip0, chip0 + tp_chips), tensor-parallel across them
/// (column split for qkv/up/gate/lm_head, row split for out/down).
struct StagePlan {
  int first_block = 0;
  int n_blocks = 0;
  int chip0 = 0;
  int tp_chips = 1;
};

struct PipelinePlan {
  std::vector<StagePlan> stages;  // dataflow order, cover all blocks
  int n_chips = 1;                // chip budget the plan was built for

  /// Stage index owning block b; throws std::invalid_argument when the
  /// plan does not cover it.
  int stage_of_block(int b) const;
  /// The lm_head rides the last stage (it must follow the final block).
  const StagePlan& last_stage() const;
  /// Contiguity / coverage / chip-range check against a model shape.
  /// Throws std::invalid_argument naming the violation.
  void validate(int n_blocks) const;
  /// e.g. "2 chips: [b0..b0 @chip0 x2] [b1..b1 @chip2 x1]"
  std::string to_string() const;
};

/// Naive baseline: block i on chip i % n_chips, no tensor parallelism —
/// maximal pipeline-boundary crossings, the placement the cost-model
/// search must beat.
PipelinePlan plan_round_robin(int n_blocks, int n_chips);

/// Pure tensor parallelism: one stage holding every block, sharded
/// across all chips. The chip-invariance property tests sweep this plan
/// over chip counts.
PipelinePlan plan_tensor_parallel(int n_blocks, int n_chips);

/// The synthetic decode-step trace a candidate plan implies: every
/// block's ops (qkv, attention, out, up[, gate], down, then lm_head)
/// with the plan's chip / tensor-parallel stamps, `rows` tokens wide,
/// attention context ~ctx_hint. This is EXACTLY what the scheduler's
/// multi-chip replay sees for a decode step of `rows` sequences, so
/// searching on it optimizes the deployed metric, not a proxy.
timing::Trace plan_trace(nn::TransformerLM& model, const PipelinePlan& plan,
                         std::int64_t rows, std::int64_t ctx_hint);

/// Cost-model-driven placement: exhaustively enumerate contiguous
/// block partitions and per-stage chip widths within the budget, score
/// each candidate with hw.replay_pipelined(plan_trace(...)) — the event
/// clock, inter-chip link costs included — and return the minimum.
/// `microbatches` is the expected concurrent-sequence count of a decode
/// step (the pipeline occupancy the plan should optimize for).
/// Deterministic: ties break toward fewer stages, then fewer chips.
PipelinePlan plan_cost_model(nn::TransformerLM& model,
                             const timing::HwModel& hw, int n_chips,
                             std::int64_t microbatches = 8,
                             std::int64_t ctx_hint = 32);

}  // namespace nora::shard
