#include "shard/apply.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "nn/block.hpp"

namespace nora::shard {

namespace {

void bind_linear(nn::Linear& lin, const StagePlan& st, ChipSet& chips,
                 cim::ShardAxis axis) {
  lin.set_timing_chip(st.chip0);
  if (cim::AnalogMatmul* analog = lin.analog()) {
    cim::ShardPlan plan;
    plan.axis = axis;
    plan.n_chips = st.tp_chips;
    plan.pools = chips.pool_range(st.chip0, st.tp_chips);
    analog->set_shard_plan(std::move(plan));
  }
}

}  // namespace

void apply_plan(nn::TransformerLM& model, ChipSet& chips,
                const PipelinePlan& plan) {
  const int n_blocks = static_cast<int>(model.blocks().size());
  plan.validate(n_blocks);
  if (plan.n_chips > chips.n_chips()) {
    throw std::invalid_argument("apply_plan: plan wants " +
                                std::to_string(plan.n_chips) +
                                " chips, chip set has " +
                                std::to_string(chips.n_chips()));
  }
  for (int b = 0; b < n_blocks; ++b) {
    const StagePlan& st =
        plan.stages[static_cast<std::size_t>(plan.stage_of_block(b))];
    nn::TransformerBlock& blk = model.blocks()[static_cast<std::size_t>(b)];
    nn::CausalSelfAttention& attn = blk.attention();
    attn.set_timing_chip(st.chip0);
    bind_linear(attn.qkv(), st, chips, cim::ShardAxis::kColBlocks);
    bind_linear(attn.out_proj(), st, chips, cim::ShardAxis::kRowBlocks);
    nn::Mlp& mlp = blk.mlp();
    bind_linear(mlp.up(), st, chips, cim::ShardAxis::kColBlocks);
    if (nn::Linear* gate = mlp.gate()) {
      bind_linear(*gate, st, chips, cim::ShardAxis::kColBlocks);
    }
    bind_linear(mlp.down(), st, chips, cim::ShardAxis::kRowBlocks);
  }
  bind_linear(model.lm_head(), plan.last_stage(), chips,
              cim::ShardAxis::kColBlocks);
}

void clear_plan(nn::TransformerLM& model) {
  for (nn::Linear* lin : model.linear_layers()) {
    lin->set_timing_chip(0);
    if (cim::AnalogMatmul* analog = lin->analog()) {
      analog->clear_shard_plan();
    }
  }
  for (nn::TransformerBlock& blk : model.blocks()) {
    blk.attention().set_timing_chip(0);
  }
}

}  // namespace nora::shard
