#include "shard/plan.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/block.hpp"

namespace nora::shard {

namespace {

/// Timing-op shape of one linear under a stage's tensor parallelism.
/// Mirrors Linear::record_timing + the stamps apply_plan would install.
timing::TimingOp op_for(const nn::Linear& lin, std::int64_t rows, int chip,
                        int tp_chips, timing::ShardAxis axis) {
  timing::TimingOp op;
  op.layer = lin.name();
  op.rows = rows;
  op.k = lin.in_dim();
  op.n = lin.out_dim();
  op.macs = rows * op.k * op.n;
  op.chip = chip;
  const cim::AnalogMatmul* analog = lin.analog();
  if (analog != nullptr && !lin.digital_bypass()) {
    op.kind = timing::OpKind::kAnalogMvm;
    op.row_blocks = analog->row_blocks();
    op.col_blocks = analog->col_blocks();
    if (tp_chips > 1) {
      op.tp_chips = tp_chips;
      op.tp_axis = axis;
    }
  } else if (lin.is_int8() && !lin.digital_bypass()) {
    op.kind = timing::OpKind::kInt8Gemm;
  } else {
    op.kind = timing::OpKind::kDigitalGemm;
  }
  return op;
}

}  // namespace

int PipelinePlan::stage_of_block(int b) const {
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StagePlan& st = stages[s];
    if (b >= st.first_block && b < st.first_block + st.n_blocks) {
      return static_cast<int>(s);
    }
  }
  throw std::invalid_argument("PipelinePlan: block " + std::to_string(b) +
                              " not covered by any stage");
}

const StagePlan& PipelinePlan::last_stage() const {
  if (stages.empty()) {
    throw std::invalid_argument("PipelinePlan: no stages");
  }
  return stages.back();
}

void PipelinePlan::validate(int n_blocks) const {
  if (stages.empty()) {
    throw std::invalid_argument("PipelinePlan: no stages");
  }
  int next = 0;
  for (const StagePlan& st : stages) {
    if (st.first_block != next || st.n_blocks < 1) {
      throw std::invalid_argument(
          "PipelinePlan: stages must cover blocks contiguously in order");
    }
    if (st.chip0 < 0 || st.tp_chips < 1 || st.chip0 + st.tp_chips > n_chips) {
      throw std::invalid_argument(
          "PipelinePlan: stage chip range [" + std::to_string(st.chip0) +
          ", " + std::to_string(st.chip0 + st.tp_chips) + ") outside " +
          std::to_string(n_chips) + " chips");
    }
    next += st.n_blocks;
  }
  if (next != n_blocks) {
    throw std::invalid_argument("PipelinePlan: stages cover " +
                                std::to_string(next) + " of " +
                                std::to_string(n_blocks) + " blocks");
  }
}

std::string PipelinePlan::to_string() const {
  std::string out = std::to_string(n_chips) + " chips:";
  for (const StagePlan& st : stages) {
    out += " [b" + std::to_string(st.first_block) + "..b" +
           std::to_string(st.first_block + st.n_blocks - 1) + " @chip" +
           std::to_string(st.chip0) + " x" + std::to_string(st.tp_chips) + "]";
  }
  return out;
}

PipelinePlan plan_round_robin(int n_blocks, int n_chips) {
  if (n_blocks < 1 || n_chips < 1) {
    throw std::invalid_argument("plan_round_robin: need >= 1 block and chip");
  }
  PipelinePlan plan;
  plan.n_chips = n_chips;
  for (int b = 0; b < n_blocks; ++b) {
    plan.stages.push_back(StagePlan{b, 1, b % n_chips, 1});
  }
  return plan;
}

PipelinePlan plan_tensor_parallel(int n_blocks, int n_chips) {
  if (n_blocks < 1 || n_chips < 1) {
    throw std::invalid_argument("plan_tensor_parallel: need >= 1 block/chip");
  }
  PipelinePlan plan;
  plan.n_chips = n_chips;
  plan.stages.push_back(StagePlan{0, n_blocks, 0, n_chips});
  return plan;
}

timing::Trace plan_trace(nn::TransformerLM& model, const PipelinePlan& plan,
                         std::int64_t rows, std::int64_t ctx_hint) {
  const int n_blocks = static_cast<int>(model.blocks().size());
  plan.validate(n_blocks);
  if (rows < 1) rows = 1;
  if (ctx_hint < 1) ctx_hint = 1;
  timing::Trace trace;
  const std::int64_t d = model.config().d_model;
  for (int b = 0; b < n_blocks; ++b) {
    const StagePlan& st = plan.stages[static_cast<std::size_t>(
        plan.stage_of_block(b))];
    nn::TransformerBlock& blk = model.blocks()[static_cast<std::size_t>(b)];
    nn::CausalSelfAttention& attn = blk.attention();
    trace.ops.push_back(op_for(attn.qkv(), rows, st.chip0, st.tp_chips,
                               timing::ShardAxis::kColBlocks));
    timing::TimingOp scores;
    scores.kind = timing::OpKind::kAttention;
    scores.layer = attn.name() + ".scores";
    scores.rows = rows;
    scores.k = d;
    scores.n = d;
    scores.macs = 2 * d * rows * ctx_hint;
    scores.chip = st.chip0;
    trace.ops.push_back(std::move(scores));
    trace.ops.push_back(op_for(attn.out_proj(), rows, st.chip0, st.tp_chips,
                               timing::ShardAxis::kRowBlocks));
    nn::Mlp& mlp = blk.mlp();
    trace.ops.push_back(op_for(mlp.up(), rows, st.chip0, st.tp_chips,
                               timing::ShardAxis::kColBlocks));
    if (nn::Linear* gate = mlp.gate()) {
      trace.ops.push_back(op_for(*gate, rows, st.chip0, st.tp_chips,
                                 timing::ShardAxis::kColBlocks));
    }
    trace.ops.push_back(op_for(mlp.down(), rows, st.chip0, st.tp_chips,
                               timing::ShardAxis::kRowBlocks));
  }
  const StagePlan& last = plan.last_stage();
  trace.ops.push_back(op_for(model.lm_head(), rows, last.chip0,
                             last.tp_chips, timing::ShardAxis::kColBlocks));
  return trace;
}

PipelinePlan plan_cost_model(nn::TransformerLM& model,
                             const timing::HwModel& hw, int n_chips,
                             std::int64_t microbatches,
                             std::int64_t ctx_hint) {
  const int n_blocks = static_cast<int>(model.blocks().size());
  if (n_blocks < 1 || n_chips < 1) {
    throw std::invalid_argument("plan_cost_model: need >= 1 block and chip");
  }
  if (microbatches < 1) microbatches = 1;
  PipelinePlan best;
  std::int64_t best_ps = std::numeric_limits<std::int64_t>::max();
  // Tie key: fewer stages, then fewer chips used — a strictly simpler
  // plan wins an exact cost tie, and the scan order is deterministic.
  std::pair<int, int> best_tie{0, 0};
  PipelinePlan cur;
  cur.n_chips = n_chips;
  // Enumerate contiguous block partitions with per-stage chip widths;
  // stages occupy disjoint chip ranges left to right and the total may
  // be under budget (extra chips that do not pay for themselves idle).
  auto recurse = [&](auto&& self, int block0, int chip0) -> void {
    if (block0 == n_blocks) {
      const timing::Trace trace =
          plan_trace(model, cur, microbatches, ctx_hint);
      const std::int64_t ps = hw.replay_pipelined(trace).total_ps;
      const std::pair<int, int> tie{static_cast<int>(cur.stages.size()),
                                    chip0};
      if (ps < best_ps || (ps == best_ps && tie < best_tie)) {
        best_ps = ps;
        best_tie = tie;
        best = cur;
      }
      return;
    }
    if (chip0 >= n_chips) return;  // out of chips, blocks uncovered
    for (int len = 1; len <= n_blocks - block0; ++len) {
      for (int width = 1; width <= n_chips - chip0; ++width) {
        cur.stages.push_back(StagePlan{block0, len, chip0, width});
        self(self, block0 + len, chip0 + width);
        cur.stages.pop_back();
      }
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

}  // namespace nora::shard
