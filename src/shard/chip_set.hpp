// A set of N simulated analog "chips", each owning its own ThreadPool
// compute domain. The chips model the host-side execution domains of a
// multi-chip accelerator: sharded AnalogMatmuls fan their work items out
// to chip pools (see cim::ShardPlan) while the timing co-simulator
// charges the inter-chip link for the data that would move between them.
//
// Pools clamp their width deterministically (util::ThreadPool::
// clamp_width), so a ChipSet never oversubscribes the host no matter
// what chips x threads_per_chip the caller asks for.
#pragma once

#include <memory>
#include <vector>

#include "util/thread_pool.hpp"

namespace nora::shard {

class ChipSet {
 public:
  /// n_chips >= 1 simulated chips, each with a threads_per_chip-wide
  /// pool (clamped; <= 0 degrades to sequential chips). Throws
  /// std::invalid_argument when n_chips < 1.
  explicit ChipSet(int n_chips, int threads_per_chip = 1);

  int n_chips() const { return static_cast<int>(pools_.size()); }
  util::ThreadPool& pool(int chip) { return *pools_[static_cast<std::size_t>(chip)]; }

  /// Pool pointers for chips [chip0, chip0 + count) — the pools slot of
  /// a cim::ShardPlan. Throws std::out_of_range on a bad range.
  std::vector<util::ThreadPool*> pool_range(int chip0, int count);

 private:
  std::vector<std::unique_ptr<util::ThreadPool>> pools_;
};

}  // namespace nora::shard
