// SynthLambada — the synthetic stand-in for the Lambada last-word task.
//
// Lambada [Paperno'16] scores a model on predicting the final word of a
// passage, where the answer requires broad context. SynthLambada keeps
// that structure with a fully synthetic generator: each sequence
// establishes `n_pairs` random key->value token bindings early in the
// context, pads with filler, and ends with a QUERY marker plus one of
// the seen keys; the model must emit that key's bound value as the next
// token. Top-1 accuracy on the final position is the task metric, same
// 0..100% scale as the paper's Lambada accuracy.
//
// Sequences are generated deterministically from (split seed, index), so
// the train / calibration ("Pile"-stand-in) / test splits are disjoint,
// reproducible, and never stored on disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nora::eval {

struct Example {
  std::vector<int> tokens;     // full input sequence
  std::vector<int> targets;    // per-position target id or -1
  std::vector<float> weights;  // per-position loss weight
  int answer = -1;             // target of the final position
};

struct SynthLambadaConfig {
  int n_keys = 24;
  int n_vals = 24;
  int n_filler = 40;
  int seq_len = 32;
  int n_pairs = 3;
  /// Fixed-slot layout: pair k occupies positions (1+2k, 2+2k) right
  /// after BOS, with pair keys in slot order — retrieval is a one-hop
  /// content-to-position attention, which small models learn reliably.
  /// When false, pairs use random keys at random body positions
  /// (classic associative recall — requires a two-layer induction
  /// circuit and trains far more slowly; kept for ablations).
  bool fixed_slots = true;
  /// Query blocks at the end of the sequence: [Q k v] x (n_queries-1)
  /// then [Q k]. Evaluation always scores the final position only;
  /// training sequences use n_queries > 1 for denser supervision.
  int n_queries = 1;
  /// Auxiliary next-token loss weight on non-answer positions; the
  /// answer positions always have weight 1.
  float aux_weight = 0.0f;
  std::uint64_t seed = 777;

  int vocab_size() const { return 2 + n_keys + n_vals + n_filler; }
  int bos() const { return 0; }
  int query() const { return 1; }
  int key_id(int k) const { return 2 + k; }
  int val_id(int v) const { return 2 + n_keys + v; }
  int filler_id(int f) const { return 2 + n_keys + n_vals + f; }
};

class SynthLambada {
 public:
  explicit SynthLambada(SynthLambadaConfig cfg = {});

  const SynthLambadaConfig& config() const { return cfg_; }

  /// Deterministic example `index` of the named split
  /// ("train" / "calib" / "test").
  Example make_example(const std::string& split, std::uint64_t index) const;

  /// Token matrix of the first n calibration sequences (for the NORA
  /// activation-range calibration pass).
  std::vector<std::vector<int>> calibration_set(int n) const;

 private:
  SynthLambadaConfig cfg_;
};

}  // namespace nora::eval
