// Task evaluation: SynthLambada last-word accuracy (the paper's Lambada
// metric) and cross-entropy, for whatever backend the model's linear
// layers currently run on (digital fp32 or analog CIM).
#pragma once

#include <string>

#include "eval/synthlambada.hpp"
#include "nn/transformer.hpp"

namespace nora::eval {

struct EvalResult {
  double accuracy = 0.0;   // top-1 on the final (answer) position
  double avg_loss = 0.0;   // mean answer-position cross-entropy
  int n_examples = 0;
};

struct EvalOptions {
  std::string split = "test";
  int n_examples = 128;
};

EvalResult evaluate(nn::TransformerLM& model, const SynthLambada& task,
                    const EvalOptions& opts = {});

}  // namespace nora::eval
