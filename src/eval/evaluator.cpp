#include "eval/evaluator.hpp"

#include <cmath>

namespace nora::eval {

EvalResult evaluate(nn::TransformerLM& model, const SynthLambada& task,
                    const EvalOptions& opts) {
  EvalResult res;
  res.n_examples = opts.n_examples;
  if (opts.n_examples <= 0) return res;
  double loss = 0.0;
  int correct = 0;
  for (int i = 0; i < opts.n_examples; ++i) {
    const Example ex = task.make_example(opts.split, static_cast<std::uint64_t>(i));
    const Matrix logits = model.forward(ex.tokens, /*training=*/false);
    const auto last = logits.row(logits.rows() - 1);
    int best = 0;
    float row_max = last[0];
    for (std::int64_t v = 1; v < logits.cols(); ++v) {
      if (last[v] > last[best]) best = static_cast<int>(v);
      row_max = std::max(row_max, last[v]);
    }
    if (best == ex.answer) ++correct;
    double denom = 0.0;
    for (std::int64_t v = 0; v < logits.cols(); ++v) {
      denom += std::exp(double(last[v]) - row_max);
    }
    loss += -(double(last[ex.answer]) - row_max - std::log(denom));
  }
  res.accuracy = static_cast<double>(correct) / opts.n_examples;
  res.avg_loss = loss / opts.n_examples;
  return res;
}

}  // namespace nora::eval
