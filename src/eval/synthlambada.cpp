#include "eval/synthlambada.hpp"

#include <algorithm>
#include <stdexcept>

namespace nora::eval {

SynthLambada::SynthLambada(SynthLambadaConfig cfg) : cfg_(cfg) {
  if (cfg_.n_queries < 1) throw std::invalid_argument("SynthLambada: n_queries < 1");
  const int query_tokens = 3 * (cfg_.n_queries - 1) + 2;
  const int overhead = 1 /*BOS*/ + query_tokens + 2 * cfg_.n_pairs;
  if (cfg_.seq_len < overhead + 1) {
    throw std::invalid_argument("SynthLambada: seq_len too short for n_pairs/n_queries");
  }
  if (cfg_.n_pairs > cfg_.n_keys) {
    throw std::invalid_argument("SynthLambada: n_pairs exceeds n_keys");
  }
}

Example SynthLambada::make_example(const std::string& split,
                                   std::uint64_t index) const {
  util::Rng rng(util::derive_seed(util::derive_seed(cfg_.seed, split),
                                  "ex-" + std::to_string(index)));
  Example ex;
  const int t_len = cfg_.seq_len;
  // n_queries is a maximum: each example draws 1..n_queries query blocks
  // so that every structural variant (including the single-query layout
  // used at evaluation time) stays in-distribution during training.
  const int n_queries =
      1 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(cfg_.n_queries)));
  ex.tokens.reserve(static_cast<std::size_t>(t_len));
  ex.tokens.push_back(cfg_.bos());

  // Draw the pair keys (slot order when fixed_slots, shuffled otherwise)
  // and independently random values.
  std::vector<int> keys(static_cast<std::size_t>(cfg_.n_keys));
  for (int k = 0; k < cfg_.n_keys; ++k) keys[static_cast<std::size_t>(k)] = k;
  if (!cfg_.fixed_slots) {
    for (int k = 0; k < cfg_.n_pairs; ++k) {
      const auto j = k + static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(cfg_.n_keys - k)));
      std::swap(keys[static_cast<std::size_t>(k)], keys[static_cast<std::size_t>(j)]);
    }
  }
  std::vector<int> vals(static_cast<std::size_t>(cfg_.n_pairs));
  for (auto& v : vals) v = static_cast<int>(rng.uniform_index(cfg_.n_vals));

  // Body: the key-value pairs (pair k occupies two adjacent positions),
  // filler elsewhere.
  const int query_tokens = 3 * (n_queries - 1) + 2;
  const int body_len = t_len - 1 - query_tokens;
  std::vector<int> body(static_cast<std::size_t>(body_len), -1);
  const int slots = body_len / 2;
  std::vector<int> slot_ids(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) slot_ids[static_cast<std::size_t>(s)] = s;
  if (!cfg_.fixed_slots) {
    for (int k = 0; k < cfg_.n_pairs; ++k) {
      const auto j = k + static_cast<int>(
                             rng.uniform_index(static_cast<std::uint64_t>(slots - k)));
      std::swap(slot_ids[static_cast<std::size_t>(k)],
                slot_ids[static_cast<std::size_t>(j)]);
    }
    std::sort(slot_ids.begin(), slot_ids.begin() + cfg_.n_pairs);
  }
  for (int k = 0; k < cfg_.n_pairs; ++k) {
    const int pos = 2 * slot_ids[static_cast<std::size_t>(k)];
    body[static_cast<std::size_t>(pos)] =
        cfg_.key_id(keys[static_cast<std::size_t>(k)]);
    body[static_cast<std::size_t>(pos) + 1] =
        cfg_.val_id(vals[static_cast<std::size_t>(k)]);
  }
  for (auto& t : body) {
    if (t < 0) t = cfg_.filler_id(static_cast<int>(rng.uniform_index(cfg_.n_filler)));
  }
  for (int t : body) ex.tokens.push_back(t);

  // Targets: optional auxiliary next-token loss, then the query blocks.
  ex.targets.assign(static_cast<std::size_t>(t_len), -1);
  ex.weights.assign(static_cast<std::size_t>(t_len), 0.0f);
  if (cfg_.aux_weight > 0.0f) {
    for (std::size_t t = 0; t + 1 < ex.tokens.size(); ++t) {
      ex.targets[t] = ex.tokens[t + 1];
      ex.weights[t] = cfg_.aux_weight;
    }
  }
  // Query blocks: [Q k v] x (n_queries - 1) then the scored [Q k].
  // Each key position (the token right after Q) is supervised with the
  // bound value at full weight.
  for (int q = 0; q < n_queries; ++q) {
    const int pick = static_cast<int>(rng.uniform_index(cfg_.n_pairs));
    const int key_tok = cfg_.key_id(keys[static_cast<std::size_t>(pick)]);
    const int val_tok = cfg_.val_id(vals[static_cast<std::size_t>(pick)]);
    ex.tokens.push_back(cfg_.query());
    ex.tokens.push_back(key_tok);
    const std::size_t key_pos = ex.tokens.size() - 1;
    ex.targets[key_pos] = val_tok;
    ex.weights[key_pos] = 1.0f;
    if (q + 1 < n_queries) {
      ex.tokens.push_back(val_tok);
    } else {
      ex.answer = val_tok;
    }
  }
  if (static_cast<int>(ex.tokens.size()) != t_len) {
    throw std::logic_error("SynthLambada: internal length mismatch");
  }
  return ex;
}

std::vector<std::vector<int>> SynthLambada::calibration_set(int n) const {
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(make_example("calib", static_cast<std::uint64_t>(i)).tokens);
  }
  return out;
}

}  // namespace nora::eval
