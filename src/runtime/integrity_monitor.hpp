// Runtime integrity monitoring + self-healing for an analog-deployed
// model over simulated serving time.
//
// Deployment-time screening (core::deploy_analog + HealthPolicy) decides
// which layers run analog; nothing after that watches them, while PCM
// conductance drift, 1/f read noise and post-deployment device failures
// silently erode accuracy over a serving lifetime. The IntegrityMonitor
// closes that gap:
//
//   * A virtual serving clock (advance_to) ages every analog layer
//     relative to its own programming epoch via set_read_time.
//   * Between inspections the tiles' ABFT checksum columns and ADC
//     saturation counters observe live traffic; inspect() folds each
//     window into a per-layer EWMA and compares it against budgets.
//   * An over-budget layer walks an escalation ladder, cheapest rung
//     first, each rung matched to the failure mode it can actually fix:
//       1. analog re-read  — re-derives the effective conductances,
//          clearing transient upsets (costs one read pass);
//       2. tile refresh    — reprograms the layer from its original
//          deployment seed, resetting drift (costs a reprogram; recorded
//          permanent wear is replayed because reprogramming cannot fix
//          broken silicon);
//       3. digital fallback — the PR-1 graceful-degradation path, for
//          damage the hardware cannot shed.
//     A rung that cures the symptom shows up as a clean next window and
//     the strike count resets; a rung that does not escalates.
//
// Every action is recorded in the layer's faults::LayerReport runtime
// fields, making the DeploymentReport the single operator-facing record
// of a layer's whole service history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/deployment_report.hpp"
#include "nn/transformer.hpp"

namespace nora::runtime {

/// When, if ever, analog layers are reprogrammed during service.
enum class RefreshPolicy {
  kNever,     // deploy once, let drift run (the naive baseline)
  kPeriodic,  // refresh every refresh_period_s of virtual time, blindly
  kWatchdog,  // refresh (or escalate) only when the monitor flags a layer
};

const char* to_string(RefreshPolicy policy);
/// Parse "never" / "periodic" / "watchdog" (throws std::invalid_argument).
RefreshPolicy refresh_policy_from_string(const std::string& name);

struct MonitorConfig {
  RefreshPolicy policy = RefreshPolicy::kWatchdog;
  /// kPeriodic: virtual seconds between blind refreshes of each layer.
  float refresh_period_s = 86400.0f;
  /// EWMA smoothing factor for the per-window statistics (1 = only the
  /// latest window, smaller = longer memory).
  double ewma_alpha = 0.5;
  /// Watchdog budget on the EWMA of the ABFT checksum flag rate.
  double flag_rate_budget = 0.02;
  /// Watchdog budget on the EWMA of the ADC saturation rate.
  double adc_saturation_budget = 0.25;
  /// Refreshes that may fail to clear a layer WITHIN ONE trouble episode
  /// (run of consecutive over-budget windows) before rung 3 (digital
  /// fallback) fires. The count resets when a window comes back clean:
  /// aging that legitimately recurs (drift, 1/f noise) earns a fresh
  /// refresh each episode, while damage a refresh cannot shed (wear)
  /// stays over budget and escalates within the same episode.
  int fallback_after_refreshes = 1;
};

/// Service-time health record of one layer.
struct LayerHealth {
  std::string layer;
  bool analog = false;         // still on the analog backend
  float programmed_at = 0.0f;  // virtual time of the last (re)program
  int strikes = 0;             // consecutive over-budget inspections
  int episode_refreshes = 0;   // rung-2 actions in the current episode
  std::int64_t rereads = 0;    // rung-1 actions taken
  std::int64_t refreshes = 0;  // rung-2 actions taken (incl. periodic)
  bool fallback = false;       // rung 3 fired
  double flag_ewma = 0.0;      // EWMA of the ABFT flag rate
  double sat_ewma = 0.0;       // EWMA of the ADC saturation rate
  bool ewma_init = false;      // first window after (re)start seen
  std::int64_t abft_checks = 0;  // lifetime checksum reads observed
  std::int64_t abft_flags = 0;   // lifetime flags observed
  std::string last_reason;       // latest escalation trigger
};

/// Per-chip aggregation of LayerHealth for multi-chip deployments (each
/// layer carries its pipeline-placement chip via Linear::timing_chip,
/// stamped by shard::apply_plan; an unsharded model aggregates into the
/// single chip 0).
struct ChipHealth {
  int chip = 0;
  std::int64_t layers = 0;       // monitored layers placed on this chip
  std::int64_t analog_layers = 0;  // of which still on the analog backend
  std::int64_t rereads = 0;      // summed rung-1 actions
  std::int64_t refreshes = 0;    // summed rung-2 actions
  int fallbacks = 0;             // rung-3 layers on this chip
  double max_flag_ewma = 0.0;    // worst ABFT flag-rate EWMA on the chip
  double max_sat_ewma = 0.0;     // worst ADC saturation EWMA on the chip
};

class IntegrityMonitor {
 public:
  /// The model must already be analog-deployed; `deploy_seed` is the
  /// DeployOptions::seed it was deployed with (refreshes re-derive the
  /// per-layer seeds from it, exactly like deploy_analog). `report`, if
  /// non-null, must be the report filled by deploy_analog for this
  /// model; the monitor keeps its runtime fields in sync and must
  /// outlive neither pointer.
  IntegrityMonitor(nn::TransformerLM& model, std::uint64_t deploy_seed,
                   MonitorConfig cfg = {},
                   faults::DeploymentReport* report = nullptr);

  float now() const { return now_; }

  /// Advance the virtual serving clock (monotonic; throws on a backward
  /// step). Ages every analog layer to its own relative read time; under
  /// kPeriodic, layers whose age reached refresh_period_s are refreshed
  /// first. Returns the number of refreshes performed.
  int advance_to(float t_seconds);

  /// Close the observation window since the previous inspect(): fold the
  /// tiles' ABFT / ADC counters into the per-layer EWMAs, walk the
  /// escalation ladder for over-budget layers (kWatchdog only — the
  /// other policies observe without acting), sync the report, and reset
  /// the tile counters so the next window starts fresh. Returns the
  /// number of actions (rereads + refreshes + fallbacks) taken.
  int inspect();

  const std::vector<LayerHealth>& health() const { return health_; }
  const LayerHealth* find(const std::string& layer) const;

  /// Aggregate health() by each layer's placement chip (indexed 0..max
  /// chip stamp, so every chip of the deployment appears even when
  /// healthy). One entry covering chip 0 for unsharded models.
  std::vector<ChipHealth> chip_health() const;

  std::int64_t total_rereads() const;
  std::int64_t total_refreshes() const;
  int total_fallbacks() const;

 private:
  /// Reprogram layer i from its original seed and restart its epoch.
  void refresh_layer(std::size_t i, const std::string& why);
  /// Copy layer i's health into the deployment report, if attached.
  void sync_report(std::size_t i);

  std::vector<nn::Linear*> linears_;
  std::uint64_t deploy_seed_;
  MonitorConfig cfg_;
  faults::DeploymentReport* report_;
  std::vector<LayerHealth> health_;
  float now_ = 0.0f;
};

}  // namespace nora::runtime
