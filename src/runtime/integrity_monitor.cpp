#include "runtime/integrity_monitor.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "core/nora.hpp"

namespace nora::runtime {

const char* to_string(RefreshPolicy policy) {
  switch (policy) {
    case RefreshPolicy::kNever: return "never";
    case RefreshPolicy::kPeriodic: return "periodic";
    case RefreshPolicy::kWatchdog: return "watchdog";
  }
  return "?";
}

RefreshPolicy refresh_policy_from_string(const std::string& name) {
  // Case-insensitive: CLI flags and config files spell these every way
  // ("Watchdog", "PERIODIC"); the error still echoes the original input.
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "never") return RefreshPolicy::kNever;
  if (lower == "periodic") return RefreshPolicy::kPeriodic;
  if (lower == "watchdog") return RefreshPolicy::kWatchdog;
  throw std::invalid_argument("unknown refresh policy: " + name);
}

IntegrityMonitor::IntegrityMonitor(nn::TransformerLM& model,
                                   std::uint64_t deploy_seed,
                                   MonitorConfig cfg,
                                   faults::DeploymentReport* report)
    : linears_(model.linear_layers()),
      deploy_seed_(deploy_seed),
      cfg_(cfg),
      report_(report) {
  if (!(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0)) {
    throw std::invalid_argument("IntegrityMonitor: ewma_alpha must be in (0, 1]");
  }
  health_.reserve(linears_.size());
  for (const nn::Linear* lin : linears_) {
    LayerHealth h;
    h.layer = lin->name();
    h.analog = lin->is_analog();
    health_.push_back(std::move(h));
  }
}

int IntegrityMonitor::advance_to(float t_seconds) {
  if (t_seconds < now_) {
    throw std::invalid_argument("IntegrityMonitor: serving clock cannot go backwards");
  }
  now_ = t_seconds;
  int refreshed = 0;
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    if (!linears_[i]->is_analog()) continue;
    LayerHealth& h = health_[i];
    if (cfg_.policy == RefreshPolicy::kPeriodic && cfg_.refresh_period_s > 0 &&
        now_ - h.programmed_at >= cfg_.refresh_period_s) {
      refresh_layer(i, "periodic refresh");
      ++refreshed;
      sync_report(i);
    }
    linears_[i]->analog()->set_read_time(now_ - h.programmed_at);
  }
  return refreshed;
}

int IntegrityMonitor::inspect() {
  int actions = 0;
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    nn::Linear* lin = linears_[i];
    LayerHealth& h = health_[i];
    h.analog = lin->is_analog();
    if (!h.analog) continue;
    cim::AnalogMatmul* analog = lin->analog();
    const cim::AbftStats window = analog->abft_stats();
    const std::int64_t adc_reads = analog->adc_reads();
    if (window.checks == 0 && adc_reads == 0) continue;  // no traffic: skip
    h.abft_checks += window.checks;
    h.abft_flags += window.flags;
    const double flag_rate = window.flag_rate();
    const double sat_rate = analog->adc_saturation_rate();
    if (!h.ewma_init) {
      h.flag_ewma = flag_rate;
      h.sat_ewma = sat_rate;
      h.ewma_init = true;
    } else {
      h.flag_ewma = cfg_.ewma_alpha * flag_rate + (1.0 - cfg_.ewma_alpha) * h.flag_ewma;
      h.sat_ewma = cfg_.ewma_alpha * sat_rate + (1.0 - cfg_.ewma_alpha) * h.sat_ewma;
    }
    const bool flag_over = h.flag_ewma > cfg_.flag_rate_budget;
    const bool sat_over = h.sat_ewma > cfg_.adc_saturation_budget;
    // Reset the tile counters now so the next window — and the window
    // right after an escalation action — starts fresh.
    analog->reset_stats();
    if (!flag_over && !sat_over) {
      h.strikes = 0;  // the last action (if any) cured the symptom
      h.episode_refreshes = 0;
      sync_report(i);
      continue;
    }
    char why[128];
    if (flag_over) {
      std::snprintf(why, sizeof why, "ABFT flag-rate ewma %.4f exceeds %.4f",
                    h.flag_ewma, cfg_.flag_rate_budget);
    } else {
      std::snprintf(why, sizeof why, "ADC saturation ewma %.4f exceeds %.4f",
                    h.sat_ewma, cfg_.adc_saturation_budget);
    }
    h.last_reason = why;
    if (cfg_.policy != RefreshPolicy::kWatchdog) {
      // Observation-only policies record the symptom but never act.
      sync_report(i);
      continue;
    }
    ++h.strikes;
    ++actions;
    if (h.strikes <= 1) {
      // Rung 1: analog re-read. Re-deriving the effective conductances
      // clears transient upsets; drift and wear survive and will strike
      // again next window.
      analog->set_read_time(now_ - h.programmed_at);
      ++h.rereads;
      h.ewma_init = false;  // judge the cheap fix on fresh evidence
    } else if (h.episode_refreshes < cfg_.fallback_after_refreshes) {
      // Rung 2: reprogram from the original seed — resets drift; wear is
      // replayed (broken silicon stays broken). The episode counter (not
      // the lifetime one) gates rung 3, so drift that recurs months later
      // earns a fresh refresh rather than an instant fallback.
      refresh_layer(i, h.last_reason);
      ++h.episode_refreshes;
      h.ewma_init = false;
    } else {
      // Rung 3: the hardware cannot shed this damage — degrade to the
      // digital path (the PR-1 graceful-degradation route).
      lin->to_digital();
      h.analog = false;
      h.fallback = true;
    }
    sync_report(i);
  }
  return actions;
}

void IntegrityMonitor::refresh_layer(std::size_t i, const std::string& why) {
  core::refresh_analog_layer(*linears_[i], deploy_seed_);
  LayerHealth& h = health_[i];
  h.programmed_at = now_;
  ++h.refreshes;
  h.last_reason = why;
}

void IntegrityMonitor::sync_report(std::size_t i) {
  if (report_ == nullptr) return;
  faults::LayerReport* rep = report_->find(health_[i].layer);
  if (rep == nullptr) return;
  const LayerHealth& h = health_[i];
  rep->runtime_rereads = h.rereads;
  rep->runtime_refreshes = h.refreshes;
  rep->runtime_fallback = h.fallback;
  rep->runtime_reason = h.last_reason;
  rep->abft_checks = h.abft_checks;
  rep->abft_flags = h.abft_flags;
  rep->abft_flag_ewma = h.flag_ewma;
  rep->adc_saturation_ewma = h.sat_ewma;
  if (h.fallback) rep->analog = false;
}

const LayerHealth* IntegrityMonitor::find(const std::string& layer) const {
  for (const auto& h : health_) {
    if (h.layer == layer) return &h;
  }
  return nullptr;
}

std::int64_t IntegrityMonitor::total_rereads() const {
  std::int64_t n = 0;
  for (const auto& h : health_) n += h.rereads;
  return n;
}

std::int64_t IntegrityMonitor::total_refreshes() const {
  std::int64_t n = 0;
  for (const auto& h : health_) n += h.refreshes;
  return n;
}

int IntegrityMonitor::total_fallbacks() const {
  int n = 0;
  for (const auto& h : health_) n += h.fallback ? 1 : 0;
  return n;
}

std::vector<ChipHealth> IntegrityMonitor::chip_health() const {
  int max_chip = 0;
  for (const nn::Linear* lin : linears_) {
    max_chip = std::max(max_chip, lin->timing_chip());
  }
  std::vector<ChipHealth> chips(static_cast<std::size_t>(max_chip + 1));
  for (std::size_t c = 0; c < chips.size(); ++c) {
    chips[c].chip = static_cast<int>(c);
  }
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    const int c = linears_[i]->timing_chip();
    ChipHealth& ch = chips[static_cast<std::size_t>(c)];
    const LayerHealth& h = health_[i];
    ch.layers += 1;
    ch.analog_layers += h.analog ? 1 : 0;
    ch.rereads += h.rereads;
    ch.refreshes += h.refreshes;
    ch.fallbacks += h.fallback ? 1 : 0;
    ch.max_flag_ewma = std::max(ch.max_flag_ewma, h.flag_ewma);
    ch.max_sat_ewma = std::max(ch.max_sat_ewma, h.sat_ewma);
  }
  return chips;
}

}  // namespace nora::runtime
