// Bounded pool of KV-cache slabs for the serving layer, with a
// cross-request prefix cache.
//
// A production server cannot let every request grow an unbounded
// nn::KvCache: cache memory is THE capacity limit of batched LLM
// serving. The pool owns a global token budget; a request is admitted
// only if its worst-case cache footprint (prompt + max_new_tokens,
// clamped to the model's max_seq) fits in the remaining budget, and its
// slab is trimmed and recycled the moment it retires or is cancelled.
// Slab objects themselves are reused across requests, so steady-state
// serving does no cache (re)allocation beyond matrix growth.
//
// Prefix cache: on analog CIM the KV rows of position i depend only on
// tokens 0..i and the per-row noise keys (stream, 0..i) — nothing about
// what comes after. Two requests with the SAME noise stream whose
// prompts share a prefix therefore share those rows bit-for-bit, and a
// warm run that reads them from a retired predecessor's slab is
// indistinguishable from a cold run (property-tested). The pool keeps
// at most one published (immutable, refcounted) prefix entry per
// stream; a new request leases the longest common prefix, pays the
// budget only for its private suffix slab, and NEVER writes the shared
// rows — divergence is copy-on-write by construction, because all
// appends go to the private slab. Store entries are LRU-evicted (when
// unreferenced) under budget pressure, and invalidated wholesale when
// the analog substrate changes under the server's feet (drift advance,
// monitor repair actions) — a stale prefix would break the
// bit-identical-to-cold-run contract.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "nn/kv_cache.hpp"

namespace nora::serve {

class KvCachePool {
 public:
  /// budget_tokens: total cached positions the pool may hold across all
  /// live slabs AND published prefix entries. bytes_per_token:
  /// model-dependent cost of one cached position (n_layers * 2 *
  /// d_model * sizeof(float)), reported in metrics; 0 if unknown.
  explicit KvCachePool(std::int64_t budget_tokens,
                       std::int64_t bytes_per_token = 0);

  /// Lease a slab with capacity `tokens`. Returns nullptr when the
  /// remaining budget cannot hold it even after evicting every
  /// unreferenced prefix entry (the caller queues or rejects the
  /// request). The returned cache is empty, with cache->capacity set,
  /// and stays owned by the pool. Placement is best-fit on warmed
  /// storage: the free slab whose matrices' reserved row capacity is
  /// the smallest that already covers `tokens` (so big warmed slabs are
  /// kept for big requests), else the most-warmed free slab (least new
  /// allocation), else a fresh slab.
  nn::KvCache* acquire(std::int64_t tokens);

  /// Return a leased slab: its contents are trimmed away and the slab
  /// is recycled for the next acquire. Throws std::invalid_argument for
  /// a pointer that is not a live lease of this pool.
  void release(nn::KvCache* cache);

  /// A granted prefix lease: `base` points at an immutable published
  /// cache whose first `tokens` rows the request may read (base is
  /// non-null iff tokens > 0). The holder must pair it with exactly one
  /// release_prefix(base).
  struct PrefixLease {
    const nn::KvCache* base = nullptr;
    std::int64_t tokens = 0;
  };

  /// Look up the published entry for `stream` and lease the longest
  /// common prefix of its tokens and `prompt`, capped at prompt.size()
  /// - 1 (the request must compute at least one row itself to produce
  /// logits) and at the entry's resident length. A hit pins the entry
  /// (refcount) against eviction. {} on miss.
  PrefixLease lease_prefix(std::uint64_t stream, std::span<const int> prompt);

  /// Drop one reference on a leased prefix base. Throws
  /// std::invalid_argument for a pointer that is not a referenced
  /// entry. The last release of an invalidated entry frees it.
  void release_prefix(const nn::KvCache* base);

  /// Retire a leased slab by PUBLISHING its first prompt.size() rows as
  /// the prefix entry for `stream` (replacing any previous entry for
  /// that stream), instead of trimming them away. Counts as the lease's
  /// release either way. Returns false — and recycles the slab exactly
  /// like release() — when the store cannot fit the entry even after
  /// evicting unreferenced entries, or the slab holds fewer rows than
  /// the prompt. Only cold, untainted requests may be published (the
  /// scheduler enforces that: no degraded tokens, no leased base).
  bool publish_prefix(std::uint64_t stream, std::span<const int> prompt,
                      nn::KvCache* cache);

  /// Invalidate every published entry: the analog substrate changed
  /// (drift advance, re-read / refresh / fallback), so cached rows no
  /// longer match what a cold run would compute. Unreferenced entries
  /// are freed immediately; referenced ones are marked dead (in-flight
  /// readers finish on the old rows — their outputs predate the change)
  /// and freed on their last release_prefix. Returns entries affected.
  std::int64_t invalidate_prefixes();

  std::int64_t budget_tokens() const { return budget_; }
  std::int64_t bytes_per_token() const { return bytes_per_token_; }
  std::int64_t used_tokens() const;
  std::int64_t free_tokens() const;
  /// Highest used_tokens() ever observed — never exceeds the budget.
  std::int64_t high_water_tokens() const;
  /// Live leases.
  std::size_t live() const;
  /// Lifetime successful acquire() / release() counts (publish_prefix
  /// counts as a release). The serve Auditor's slab-conservation
  /// invariant is
  ///   total_acquires - total_releases == live
  /// at every step, and both-equal at idle (zero leaked slabs).
  std::int64_t total_acquires() const;
  std::int64_t total_releases() const;

  /// Prefix-store accounting. Conservation invariants (Auditor):
  ///   prefix_leases - prefix_lease_releases == prefix_refs   (always)
  ///   used_tokens == prefix_tokens                           (at idle)
  std::int64_t prefix_tokens() const;      // resident store tokens
  std::int64_t prefix_entries() const;     // resident entries (incl. dead)
  std::int64_t prefix_refs() const;        // outstanding leases
  std::int64_t prefix_leases() const;      // lifetime lease_prefix hits
  std::int64_t prefix_lease_releases() const;
  std::int64_t prefix_hit_tokens() const;  // lifetime tokens served warm
  std::int64_t prefix_published() const;
  std::int64_t prefix_evicted() const;     // LRU + replacement evictions
  std::int64_t prefix_invalidated() const;

 private:
  struct Slab {
    std::unique_ptr<nn::KvCache> cache;
    std::int64_t lease_tokens = 0;  // 0 = free
  };
  /// One published prefix: immutable rows for `tokens` under `stream`.
  struct PrefixEntry {
    std::uint64_t stream = 0;
    std::vector<int> tokens;  // prompt tokens the resident rows encode
    std::unique_ptr<nn::KvCache> cache;
    std::int64_t refs = 0;
    std::int64_t stamp = 0;  // LRU clock (bumped on lease and publish)
    bool dead = false;       // invalidated while leased
  };

  // All helpers assume m_ is held.
  /// Rows the slab's warmed storage can hold without allocating.
  static std::int64_t warmed_rows(const Slab& s);
  /// Evict unreferenced entries (LRU first) until `need` extra tokens
  /// fit in the budget or nothing evictable remains.
  void evict_for_locked(std::int64_t need);
  void drop_entry_locked(std::size_t idx);

  mutable std::mutex m_;
  std::int64_t budget_ = 0;
  std::int64_t bytes_per_token_ = 0;
  std::int64_t used_ = 0;
  std::int64_t high_water_ = 0;
  std::int64_t acquires_ = 0;
  std::int64_t releases_ = 0;
  std::int64_t clock_ = 0;
  std::int64_t prefix_leases_ = 0;
  std::int64_t prefix_lease_releases_ = 0;
  std::int64_t prefix_hit_tokens_ = 0;
  std::int64_t prefix_published_ = 0;
  std::int64_t prefix_evicted_ = 0;
  std::int64_t prefix_invalidated_ = 0;
  std::vector<Slab> slabs_;
  std::vector<PrefixEntry> entries_;
};

}  // namespace nora::serve
