// Bounded pool of KV-cache slabs for the serving layer.
//
// A production server cannot let every request grow an unbounded
// nn::KvCache: cache memory is THE capacity limit of batched LLM
// serving. The pool owns a global token budget; a request is admitted
// only if its worst-case cache footprint (prompt + max_new_tokens,
// clamped to the model's max_seq) fits in the remaining budget, and its
// slab is trimmed and recycled the moment it retires or is cancelled.
// Slab objects themselves are reused across requests, so steady-state
// serving does no cache (re)allocation beyond matrix growth.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/kv_cache.hpp"

namespace nora::serve {

class KvCachePool {
 public:
  /// budget_tokens: total cached positions the pool may hold across all
  /// live slabs. bytes_per_token: model-dependent cost of one cached
  /// position (n_layers * 2 * d_model * sizeof(float)), reported in
  /// metrics; 0 if unknown.
  explicit KvCachePool(std::int64_t budget_tokens,
                       std::int64_t bytes_per_token = 0);

  /// Lease a slab with capacity `tokens`. Returns nullptr when the
  /// remaining budget cannot hold it (the caller queues or rejects the
  /// request). The returned cache is empty, with cache->capacity set,
  /// and stays owned by the pool.
  nn::KvCache* acquire(std::int64_t tokens);

  /// Return a leased slab: its contents are trimmed away and the slab
  /// is recycled for the next acquire. Throws std::invalid_argument for
  /// a pointer that is not a live lease of this pool.
  void release(nn::KvCache* cache);

  std::int64_t budget_tokens() const { return budget_; }
  std::int64_t bytes_per_token() const { return bytes_per_token_; }
  std::int64_t used_tokens() const;
  std::int64_t free_tokens() const;
  /// Highest used_tokens() ever observed — never exceeds the budget.
  std::int64_t high_water_tokens() const;
  /// Live leases.
  std::size_t live() const;
  /// Lifetime successful acquire() / release() counts. The serve
  /// Auditor's slab-conservation invariant is
  ///   total_acquires - total_releases == live
  /// at every step, and both-equal at idle (zero leaked slabs).
  std::int64_t total_acquires() const;
  std::int64_t total_releases() const;

 private:
  struct Slab {
    std::unique_ptr<nn::KvCache> cache;
    std::int64_t lease_tokens = 0;  // 0 = free
  };

  mutable std::mutex m_;
  std::int64_t budget_ = 0;
  std::int64_t bytes_per_token_ = 0;
  std::int64_t used_ = 0;
  std::int64_t high_water_ = 0;
  std::int64_t acquires_ = 0;
  std::int64_t releases_ = 0;
  std::vector<Slab> slabs_;
};

}  // namespace nora::serve
