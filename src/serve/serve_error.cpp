#include "serve/serve_error.hpp"

namespace nora::serve {

const char* to_string(ServeError code) {
  switch (code) {
    case ServeError::kNone: return "none";
    case ServeError::kEmptyPrompt: return "empty_prompt";
    case ServeError::kMaxTokensNonPositive: return "max_tokens_non_positive";
    case ServeError::kDeadlineNegative: return "deadline_negative";
    case ServeError::kPromptTooLong: return "prompt_too_long";
    case ServeError::kFootprintOverBudget: return "footprint_over_budget";
    case ServeError::kQueueFull: return "queue_full";
    case ServeError::kPoolExhausted: return "pool_exhausted";
    case ServeError::kMaintenance: return "maintenance";
    case ServeError::kRetryBudgetExhausted: return "retry_budget_exhausted";
    case ServeError::kCount: break;
  }
  return "?";
}

bool is_transient(ServeError code) {
  switch (code) {
    case ServeError::kPoolExhausted:
    case ServeError::kMaintenance:
      return true;
    default:
      return false;
  }
}

std::string describe(ServeError code, const std::string& detail) {
  std::string s = to_string(code);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

}  // namespace nora::serve
