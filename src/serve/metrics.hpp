// Serving metrics: per-request latency records and aggregate counters
// for the continuous-batching scheduler.
//
// Latencies are tracked on two clocks. The *step* clock (scheduler
// decode iterations) is fully deterministic and is what tests assert
// on; the *wall* clock feeds the operator-facing throughput and
// time-to-first-token numbers the serve_throughput bench reports.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/serve_error.hpp"

namespace nora::serve {

/// q-th percentile (q in [0,1]) with linear interpolation; 0 on empty.
/// Takes the samples by const reference (the old by-value signature
/// copied the whole vector per call) and sorts an internal scratch copy
/// exactly once. For several quantiles over the same samples use
/// percentiles() — one sort total instead of one per quantile.
double percentile(std::span<const double> values, double q);
/// Brace-literal convenience (std::span gains list-init only in C++26).
inline double percentile(std::initializer_list<double> values, double q) {
  return percentile(std::span<const double>(values.begin(), values.size()), q);
}

/// Evaluate all of `qs` (each in [0,1]) against `values` from a single
/// sorted pass. Returns one result per quantile, in order; all zeros on
/// an empty sample set (no sort performed).
std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> qs);

/// Process-wide count of sample sorts performed by percentile() /
/// percentiles() — a test hook: the regression test asserts a metrics
/// dump with N samples sorts at most once per sample vector.
std::int64_t percentile_sort_count();

struct Metrics {
  // Request outcomes.
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t finished = 0;
  std::int64_t cancelled = 0;
  std::int64_t expired = 0;
  std::int64_t rejected = 0;
  /// rejected, broken down by structured cause (indexed by ServeError;
  /// sums to `rejected`). kNone stays zero by construction.
  std::array<std::int64_t, static_cast<std::size_t>(ServeError::kCount)>
      rejected_by_code{};

  // Degraded-mode serving and retry/backoff.
  std::int64_t retries = 0;            // transient-condition requeues
  std::int64_t maintenance_windows = 0;  // windows opened by monitor actions
  std::int64_t maintenance_steps = 0;    // busy steps served under a window
  std::int64_t degraded_tokens = 0;    // tokens emitted via digital fallback
  std::int64_t wasted_tokens = 0;      // tokens discarded by retried attempts

  // Scheduler activity.
  std::int64_t steps = 0;       // step() calls that had any work to consider
  std::int64_t busy_steps = 0;  // steps that ran a decode batch
  double occupancy_sum = 0.0;   // batch size summed over busy steps
  std::int64_t max_occupancy = 0;

  // Token accounting.
  std::int64_t prompt_tokens = 0;     // prefilled tokens of admitted requests
  std::int64_t generated_tokens = 0;  // emitted by finished+cancelled+expired

  // Latency aggregates (deterministic step clock).
  double queue_wait_steps_sum = 0.0;  // submit -> admission, admitted requests
  double ttft_steps_sum = 0.0;        // submit -> first token
  // Wall-clock samples for percentiles (one per request that produced
  // its first token / finished).
  std::vector<double> ttft_s;
  std::vector<double> request_wall_s;
  double wall_s = 0.0;  // total serving wall time spent inside step()

  // KV pool accounting (tokens; bytes = tokens * kv_bytes_per_token).
  std::int64_t kv_budget_tokens = 0;
  std::int64_t kv_used_tokens = 0;
  std::int64_t kv_high_water_tokens = 0;
  std::int64_t kv_bytes_per_token = 0;

  // Cross-request prefix cache (see KvCachePool). hits/hit_tokens are
  // lifetime counters; prefix_tokens is the store's current residency.
  std::int64_t kv_prefix_hits = 0;        // leases granted
  std::int64_t kv_prefix_hit_tokens = 0;  // prompt tokens served warm
  std::int64_t kv_prefix_tokens = 0;      // resident store tokens (now)
  std::int64_t kv_prefix_published = 0;
  std::int64_t kv_prefix_evicted = 0;
  std::int64_t kv_prefix_invalidated = 0;

  // Integrity-monitor interaction.
  std::int64_t monitor_inspections = 0;
  std::int64_t monitor_actions = 0;  // rereads + refreshes + fallbacks

  // Simulated-hardware time from the timing co-simulator (all zero /
  // empty when SchedulerConfig::timing.enabled is false). The sim clock
  // is integer picoseconds and replay-exact: a pure function of the
  // workload, bit-identical at any host thread count.
  std::int64_t sim_time_ps = 0;    // simulated clock after the last step
  std::int64_t sim_events = 0;     // DES events dispatched across replays
  std::int64_t finished_tokens = 0;  // tokens of requests that FINISHED
  std::vector<double> sim_ttft_us;   // submit -> first token, sim clock
  std::vector<double> sim_tpot_us;   // per-token decode interval, sim clock
  // Inter-chip traffic from pipelined replay (zero when shard_replay is
  // off or every op sits on one chip).
  std::int64_t sim_link_ps = 0;        // sim time spent on chip-to-chip links
  std::int64_t sim_link_transfers = 0;  // individual link transfer events

  double mean_occupancy() const {
    return busy_steps > 0 ? occupancy_sum / static_cast<double>(busy_steps)
                          : 0.0;
  }
  double mean_queue_wait_steps() const {
    return admitted > 0 ? queue_wait_steps_sum / static_cast<double>(admitted)
                        : 0.0;
  }
  double tokens_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(generated_tokens) / wall_s : 0.0;
  }
  double ttft_p50_s() const { return percentile(ttft_s, 0.5); }
  double ttft_p95_s() const { return percentile(ttft_s, 0.95); }
  double sim_time_s() const { return static_cast<double>(sim_time_ps) * 1e-12; }
  /// Generated tokens per simulated second (0 without sim time).
  double sim_tokens_per_s() const {
    return sim_time_ps > 0
               ? static_cast<double>(generated_tokens) / sim_time_s()
               : 0.0;
  }
  /// Goodput: only tokens of requests that ran to completion count.
  double sim_goodput_tokens_per_s() const {
    return sim_time_ps > 0
               ? static_cast<double>(finished_tokens) / sim_time_s()
               : 0.0;
  }
  double sim_ttft_p50_us() const { return percentile(sim_ttft_us, 0.5); }
  double sim_ttft_p95_us() const { return percentile(sim_ttft_us, 0.95); }
  double sim_tpot_p50_us() const { return percentile(sim_tpot_us, 0.5); }
  double sim_tpot_p95_us() const { return percentile(sim_tpot_us, 0.95); }
  std::int64_t rejected_with(ServeError code) const {
    return rejected_by_code[static_cast<std::size_t>(code)];
  }

  /// One consistent read of every derived quantile. Both renderers go
  /// through this, so the console dump and /metrics JSON can never
  /// disagree on a percentile (each sample vector is sorted exactly
  /// once per snapshot; the old code computed them independently per
  /// renderer and could diverge when samples landed between the calls).
  struct Snapshot {
    double ttft_p50_s = 0.0;
    double ttft_p95_s = 0.0;
    double sim_ttft_p50_us = 0.0;
    double sim_ttft_p95_us = 0.0;
    double sim_tpot_p50_us = 0.0;
    double sim_tpot_p95_us = 0.0;
  };
  Snapshot snapshot() const;

  /// Multi-line human-readable dump.
  std::string to_string() const;
  /// Single JSON object (stable key order, machine-readable).
  std::string to_json() const;
};

}  // namespace nora::serve
