// Step-wise conservation auditor for the serving layer.
//
// The chaos-soak harness (bench/chaos_soak) drives the scheduler through
// injected faults, bursts and racing cancels; the Auditor is the oracle
// that says whether the system actually held together. After every step
// it takes one consistent AuditSnapshot and checks the conservation
// invariants that no amount of chaos may break:
//
//   * slab conservation: pool acquires - releases == live leases, and
//     used tokens stay within [0, budget];
//   * state conservation: every submitted id is in exactly one state,
//     terminal states are frozen (a finished/cancelled/expired/rejected
//     request never changes state or token count again), and the
//     running-state count matches the scheduler's active batch;
//   * metrics conservation: outcome counters sum back to `submitted`,
//     the per-code reject breakdown sums to `rejected`, and the token
//     totals (generated, degraded) equal the per-request tallies of
//     terminal records;
//   * prefix conservation: granted prefix leases minus their releases
//     equal the outstanding refcount, each running request holds at
//     most one lease, and the store's residency stays within the pool's
//     used tokens;
//   * idle drain: once nothing is queued or running, the pool holds
//     exactly the published prefix rows and nothing else (zero leaked
//     slabs, zero outstanding prefix leases), and every request reached
//     a terminal state.
//
// Violations are collected as human-readable strings rather than thrown,
// so a soak run reports ALL breakage of a step, then exits nonzero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"

namespace nora::serve {

class Auditor {
 public:
  explicit Auditor(const Scheduler& sched) : sched_(sched) {}

  /// Audit the scheduler's current cross-section. Returns the number of
  /// NEW violations found by this check (0 = clean).
  std::size_t check();

  /// Audit an idle scheduler: everything check() asserts, plus the
  /// drain invariants (all ids terminal, zero live slabs, pool empty,
  /// acquires == releases).
  std::size_t check_idle();

  std::int64_t checks() const { return checks_; }
  const std::vector<std::string>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

 private:
  std::size_t audit(const AuditSnapshot& s, bool idle);
  void expect(bool ok, std::int64_t step, const std::string& msg);

  const Scheduler& sched_;
  std::int64_t checks_ = 0;
  std::size_t found_this_check_ = 0;
  std::vector<std::string> violations_;
  // Terminal-freeze tracking across checks (indexed by request id).
  std::vector<RequestState> prev_states_;
  std::vector<std::int64_t> prev_tokens_;
};

}  // namespace nora::serve
