#include "serve/kv_cache_pool.hpp"

#include <stdexcept>

namespace nora::serve {

KvCachePool::KvCachePool(std::int64_t budget_tokens,
                         std::int64_t bytes_per_token)
    : budget_(budget_tokens), bytes_per_token_(bytes_per_token) {
  if (budget_ <= 0) {
    throw std::invalid_argument("KvCachePool: budget must be positive");
  }
}

nn::KvCache* KvCachePool::acquire(std::int64_t tokens) {
  if (tokens <= 0) {
    throw std::invalid_argument("KvCachePool::acquire: non-positive lease");
  }
  std::lock_guard<std::mutex> lock(m_);
  if (used_ + tokens > budget_) return nullptr;
  Slab* free_slab = nullptr;
  for (Slab& s : slabs_) {
    if (s.lease_tokens == 0) {
      free_slab = &s;
      break;
    }
  }
  if (free_slab == nullptr) {
    slabs_.push_back(Slab{std::make_unique<nn::KvCache>(), 0});
    free_slab = &slabs_.back();
  }
  free_slab->lease_tokens = tokens;
  free_slab->cache->capacity = tokens;
  ++acquires_;
  used_ += tokens;
  if (used_ > high_water_) high_water_ = used_;
  return free_slab->cache.get();
}

void KvCachePool::release(nn::KvCache* cache) {
  std::lock_guard<std::mutex> lock(m_);
  for (Slab& s : slabs_) {
    if (s.cache.get() == cache && s.lease_tokens > 0) {
      used_ -= s.lease_tokens;
      s.lease_tokens = 0;
      ++releases_;
      // Trim rather than clear: the per-layer block vector survives, so
      // the recycled slab re-enters service allocation-free.
      cache->trim(0);
      cache->capacity = 0;
      return;
    }
  }
  throw std::invalid_argument("KvCachePool::release: not a live lease");
}

std::int64_t KvCachePool::used_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  return used_;
}

std::int64_t KvCachePool::free_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  return budget_ - used_;
}

std::int64_t KvCachePool::high_water_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  return high_water_;
}

std::int64_t KvCachePool::total_acquires() const {
  std::lock_guard<std::mutex> lock(m_);
  return acquires_;
}

std::int64_t KvCachePool::total_releases() const {
  std::lock_guard<std::mutex> lock(m_);
  return releases_;
}

std::size_t KvCachePool::live() const {
  std::lock_guard<std::mutex> lock(m_);
  std::size_t n = 0;
  for (const Slab& s : slabs_) {
    if (s.lease_tokens > 0) ++n;
  }
  return n;
}

}  // namespace nora::serve
