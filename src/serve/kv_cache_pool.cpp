#include "serve/kv_cache_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace nora::serve {

KvCachePool::KvCachePool(std::int64_t budget_tokens,
                         std::int64_t bytes_per_token)
    : budget_(budget_tokens), bytes_per_token_(bytes_per_token) {
  if (budget_ <= 0) {
    throw std::invalid_argument("KvCachePool: budget must be positive");
  }
}

std::int64_t KvCachePool::warmed_rows(const Slab& s) {
  // All per-layer matrices of a slab are reserved together
  // (TransformerLM::init_cache_blocks), so the first block's K capacity
  // stands for the whole slab's warmed footprint. A never-used slab has
  // no blocks yet and counts as cold.
  if (s.cache == nullptr || s.cache->blocks.empty()) return 0;
  return s.cache->blocks.front().k.row_capacity();
}

void KvCachePool::drop_entry_locked(std::size_t idx) {
  used_ -= static_cast<std::int64_t>(entries_[idx].tokens.size());
  // Hand the entry's warmed storage back to the slab pool instead of
  // freeing it: publication moved a slab out of circulation, and this
  // is where it returns — so the publish/evict churn of steady-state
  // serving recycles storage exactly like plain release() always did.
  std::unique_ptr<nn::KvCache> cache = std::move(entries_[idx].cache);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (cache != nullptr) {
    cache->trim(0);
    cache->capacity = 0;
    slabs_.push_back(Slab{std::move(cache), 0});
  }
}

void KvCachePool::evict_for_locked(std::int64_t need) {
  while (used_ + need > budget_) {
    // LRU among unreferenced entries (dead ones with refs > 0 cannot be
    // freed yet; dead ones with refs == 0 never linger here).
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].refs != 0) continue;
      if (victim == entries_.size() ||
          entries_[i].stamp < entries_[victim].stamp) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return;  // nothing evictable
    ++prefix_evicted_;
    drop_entry_locked(victim);
  }
}

nn::KvCache* KvCachePool::acquire(std::int64_t tokens) {
  if (tokens <= 0) {
    throw std::invalid_argument("KvCachePool::acquire: non-positive lease");
  }
  std::lock_guard<std::mutex> lock(m_);
  if (used_ + tokens > budget_) {
    // Prefix entries are a cache, leases are demand: demand wins.
    evict_for_locked(tokens);
    if (used_ + tokens > budget_) return nullptr;
  }
  // Best-fit on warmed storage: the smallest free slab whose reserved
  // rows already cover the request (first-fit handed big warmed slabs
  // to small requests and then grew cold slabs for the big ones —
  // avoidable steady-state allocations). With no covering slab, take
  // the most-warmed one: it needs the least new allocation to grow.
  Slab* best_cover = nullptr;
  Slab* most_warmed = nullptr;
  bool have_free = false;
  for (Slab& s : slabs_) {
    if (s.lease_tokens != 0) continue;
    const std::int64_t w = warmed_rows(s);
    if (w >= tokens) {
      if (best_cover == nullptr || w < warmed_rows(*best_cover)) {
        best_cover = &s;
      }
    }
    if (!have_free || w > warmed_rows(*most_warmed)) most_warmed = &s;
    have_free = true;
  }
  Slab* free_slab = best_cover != nullptr ? best_cover : most_warmed;
  if (free_slab == nullptr) {
    slabs_.push_back(Slab{std::make_unique<nn::KvCache>(), 0});
    free_slab = &slabs_.back();
  }
  free_slab->lease_tokens = tokens;
  free_slab->cache->capacity = tokens;
  ++acquires_;
  used_ += tokens;
  if (used_ > high_water_) high_water_ = used_;
  return free_slab->cache.get();
}

void KvCachePool::release(nn::KvCache* cache) {
  std::lock_guard<std::mutex> lock(m_);
  for (Slab& s : slabs_) {
    if (s.cache.get() == cache && s.lease_tokens > 0) {
      used_ -= s.lease_tokens;
      s.lease_tokens = 0;
      ++releases_;
      // Trim rather than clear: the per-layer block vector survives, so
      // the recycled slab re-enters service allocation-free.
      cache->trim(0);
      cache->capacity = 0;
      return;
    }
  }
  throw std::invalid_argument("KvCachePool::release: not a live lease");
}

KvCachePool::PrefixLease KvCachePool::lease_prefix(
    std::uint64_t stream, std::span<const int> prompt) {
  if (prompt.size() < 2) return {};  // a 1-token prompt can share nothing
  std::lock_guard<std::mutex> lock(m_);
  for (PrefixEntry& e : entries_) {
    if (e.stream != stream || e.dead) continue;
    // Longest common prefix, capped so the request still computes at
    // least one row itself (the logits feeding its first new token come
    // from the last prompt position) and at the entry's resident rows.
    const std::size_t cap =
        std::min(e.tokens.size(), prompt.size() - 1);
    std::size_t l = 0;
    while (l < cap && e.tokens[l] == prompt[l]) ++l;
    if (l == 0) return {};
    ++e.refs;
    e.stamp = ++clock_;
    ++prefix_leases_;
    prefix_hit_tokens_ += static_cast<std::int64_t>(l);
    return {e.cache.get(), static_cast<std::int64_t>(l)};
  }
  return {};
}

void KvCachePool::release_prefix(const nn::KvCache* base) {
  std::lock_guard<std::mutex> lock(m_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    PrefixEntry& e = entries_[i];
    if (e.cache.get() != base || e.refs <= 0) continue;
    --e.refs;
    ++prefix_lease_releases_;
    if (e.dead && e.refs == 0) drop_entry_locked(i);
    return;
  }
  throw std::invalid_argument(
      "KvCachePool::release_prefix: not a referenced entry");
}

bool KvCachePool::publish_prefix(std::uint64_t stream,
                                 std::span<const int> prompt,
                                 nn::KvCache* cache) {
  std::lock_guard<std::mutex> lock(m_);
  std::size_t si = slabs_.size();
  for (std::size_t i = 0; i < slabs_.size(); ++i) {
    if (slabs_[i].cache.get() == cache && slabs_[i].lease_tokens > 0) {
      si = i;
      break;
    }
  }
  if (si == slabs_.size()) {
    throw std::invalid_argument("KvCachePool::publish_prefix: not a live lease");
  }
  // The lease ends here whatever happens below (the Auditor's
  // acquire/release conservation counts a publish as a release).
  used_ -= slabs_[si].lease_tokens;
  slabs_[si].lease_tokens = 0;
  ++releases_;
  const std::int64_t keep = static_cast<std::int64_t>(prompt.size());
  const bool rows_ok = keep > 0 && cache->length >= keep;
  if (rows_ok) {
    // Replace any previous entry for this stream — one entry per
    // stream keeps lookup O(streams) and the store self-limiting.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].stream != stream) continue;
      if (entries_[i].refs == 0) {
        ++prefix_evicted_;
        drop_entry_locked(i);
      } else {
        entries_[i].dead = true;  // freed on its last release
      }
      break;
    }
  }
  bool fits = rows_ok;
  if (fits && used_ + keep > budget_) {
    evict_for_locked(keep);
    fits = used_ + keep <= budget_;
  }
  if (!fits) {
    // Cannot publish: recycle the slab exactly like release().
    cache->trim(0);
    cache->capacity = 0;
    return false;
  }
  PrefixEntry e;
  e.stream = stream;
  e.tokens.assign(prompt.begin(), prompt.end());
  e.cache = std::move(slabs_[si].cache);
  e.stamp = ++clock_;
  slabs_.erase(slabs_.begin() + static_cast<std::ptrdiff_t>(si));
  e.cache->trim(keep);
  e.cache->capacity = keep;
  used_ += keep;
  if (used_ > high_water_) high_water_ = used_;
  ++prefix_published_;
  entries_.push_back(std::move(e));
  return true;
}

std::int64_t KvCachePool::invalidate_prefixes() {
  std::lock_guard<std::mutex> lock(m_);
  std::int64_t n = 0;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    ++n;
    ++prefix_invalidated_;
    if (entries_[i].refs == 0) {
      drop_entry_locked(i);
    } else {
      entries_[i].dead = true;
    }
  }
  return n;
}

std::int64_t KvCachePool::used_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  return used_;
}

std::int64_t KvCachePool::free_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  return budget_ - used_;
}

std::int64_t KvCachePool::high_water_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  return high_water_;
}

std::int64_t KvCachePool::total_acquires() const {
  std::lock_guard<std::mutex> lock(m_);
  return acquires_;
}

std::int64_t KvCachePool::total_releases() const {
  std::lock_guard<std::mutex> lock(m_);
  return releases_;
}

std::size_t KvCachePool::live() const {
  std::lock_guard<std::mutex> lock(m_);
  std::size_t n = 0;
  for (const Slab& s : slabs_) {
    if (s.lease_tokens > 0) ++n;
  }
  return n;
}

std::int64_t KvCachePool::prefix_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  std::int64_t n = 0;
  for (const PrefixEntry& e : entries_) {
    n += static_cast<std::int64_t>(e.tokens.size());
  }
  return n;
}

std::int64_t KvCachePool::prefix_entries() const {
  std::lock_guard<std::mutex> lock(m_);
  return static_cast<std::int64_t>(entries_.size());
}

std::int64_t KvCachePool::prefix_refs() const {
  std::lock_guard<std::mutex> lock(m_);
  std::int64_t n = 0;
  for (const PrefixEntry& e : entries_) n += e.refs;
  return n;
}

std::int64_t KvCachePool::prefix_leases() const {
  std::lock_guard<std::mutex> lock(m_);
  return prefix_leases_;
}

std::int64_t KvCachePool::prefix_lease_releases() const {
  std::lock_guard<std::mutex> lock(m_);
  return prefix_lease_releases_;
}

std::int64_t KvCachePool::prefix_hit_tokens() const {
  std::lock_guard<std::mutex> lock(m_);
  return prefix_hit_tokens_;
}

std::int64_t KvCachePool::prefix_published() const {
  std::lock_guard<std::mutex> lock(m_);
  return prefix_published_;
}

std::int64_t KvCachePool::prefix_evicted() const {
  std::lock_guard<std::mutex> lock(m_);
  return prefix_evicted_;
}

std::int64_t KvCachePool::prefix_invalidated() const {
  std::lock_guard<std::mutex> lock(m_);
  return prefix_invalidated_;
}

}  // namespace nora::serve
