#include "serve/scheduler.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <stdexcept>

#include "util/rng.hpp"

namespace nora::serve {

const char* to_string(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kGrowth: return "growth";
    case BatchPolicy::kLatencyAware: return "latency";
  }
  return "?";
}

BatchPolicy batch_policy_from_string(const std::string& s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "growth") return BatchPolicy::kGrowth;
  if (lower == "latency" || lower == "latency-aware" ||
      lower == "latency_aware") {
    return BatchPolicy::kLatencyAware;
  }
  throw std::invalid_argument("unknown batch policy '" + s +
                              "' (expected growth|latency)");
}

const char* to_string(RequestState state) {
  switch (state) {
    case RequestState::kQueued: return "queued";
    case RequestState::kRunning: return "running";
    case RequestState::kFinished: return "finished";
    case RequestState::kCancelled: return "cancelled";
    case RequestState::kExpired: return "expired";
    case RequestState::kRejected: return "rejected";
  }
  return "?";
}

namespace {
std::int64_t kv_bytes_per_token(const nn::TransformerConfig& cfg) {
  // One cached position: K and V rows of d_model floats in every layer.
  return cfg.n_layers * 2 * cfg.d_model *
         static_cast<std::int64_t>(sizeof(float));
}
}  // namespace

Scheduler::Scheduler(nn::TransformerLM& model, SchedulerConfig cfg)
    : model_(model),
      cfg_(cfg),
      pool_(cfg.kv_budget_tokens > 0
                ? cfg.kv_budget_tokens
                : static_cast<std::int64_t>(std::max(cfg.max_batch, 1)) *
                      model.config().max_seq,
            kv_bytes_per_token(model.config())),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.max_batch < 1) {
    throw std::invalid_argument("Scheduler: max_batch must be >= 1");
  }
  if (cfg_.step_dt_s < 0.0f) {
    throw std::invalid_argument("Scheduler: negative step_dt_s");
  }
  if (cfg_.retry.max_attempts < 1) {
    throw std::invalid_argument("Scheduler: retry.max_attempts must be >= 1");
  }
  if (cfg_.retry.backoff_base_steps < 1 || cfg_.retry.backoff_cap_steps < 1 ||
      cfg_.retry.jitter_steps < 0) {
    throw std::invalid_argument("Scheduler: invalid retry backoff/jitter");
  }
  if (cfg_.maintenance_window_steps < 0) {
    throw std::invalid_argument("Scheduler: negative maintenance window");
  }
  if (cfg_.prefill_tokens_per_step < 0) {
    throw std::invalid_argument("Scheduler: negative prefill_tokens_per_step");
  }
  if (cfg_.shard_replay && !cfg_.timing.enabled) {
    throw std::invalid_argument(
        "Scheduler: shard_replay requires timing.enabled");
  }
  if (cfg_.timing.enabled) {
    hw_timing_.emplace(cfg_.timing);  // validates the timing config
  }
  metrics_.kv_budget_tokens = pool_.budget_tokens();
  metrics_.kv_bytes_per_token = pool_.bytes_per_token();
}

double Scheduler::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::int64_t Scheduler::footprint(const RequestParams& p) const {
  // Worst-case cache length: the whole prompt plus every new token
  // except the last (which is emitted without being appended), clamped
  // to the model's hard ceiling.
  const std::int64_t want = static_cast<std::int64_t>(p.prompt.size()) +
                            static_cast<std::int64_t>(p.max_new_tokens) - 1;
  return std::min(want, model_.config().max_seq);
}

std::int64_t Scheduler::backoff_steps_locked(std::int64_t id,
                                             int attempt) const {
  // Bounded exponential: attempt 2 waits base, attempt 3 waits 2*base,
  // ... capped. Jitter comes from a counter-keyed stream over
  // (seed, id, attempt), never from a shared stateful RNG, so the retry
  // schedule of a given workload is bit-identical across runs and
  // independent of what else is in flight.
  const RetryPolicy& r = cfg_.retry;
  std::int64_t b = r.backoff_base_steps;
  for (int k = 2; k < attempt && b < r.backoff_cap_steps; ++k) b *= 2;
  b = std::min<std::int64_t>(b, r.backoff_cap_steps);
  if (r.jitter_steps > 0) {
    const std::uint64_t draw = util::derive_stream(
        util::derive_seed(cfg_.seed, "serve-retry"),
        static_cast<std::uint64_t>(id), static_cast<std::uint64_t>(attempt));
    b += static_cast<std::int64_t>(
        draw % static_cast<std::uint64_t>(r.jitter_steps + 1));
  }
  return std::max<std::int64_t>(b, 1);
}

void Scheduler::emit_token_locked(std::int64_t id, int token, bool degraded) {
  if (!cfg_.record_events) return;
  ServeEvent e;
  e.kind = ServeEventKind::kToken;
  e.id = id;
  e.step = step_;
  e.token = token;
  e.degraded = degraded;
  events_.push_back(e);
}

void Scheduler::emit_terminal_locked(std::int64_t id, RequestState state,
                                     ServeError error) {
  if (!cfg_.record_events) return;
  ServeEvent e;
  e.kind = ServeEventKind::kTerminal;
  e.id = id;
  e.step = step_;
  e.state = state;
  e.error = error;
  events_.push_back(e);
}

void Scheduler::emit_discard_locked(std::int64_t id) {
  if (!cfg_.record_events) return;
  ServeEvent e;
  e.kind = ServeEventKind::kDiscard;
  e.id = id;
  e.step = step_;
  events_.push_back(e);
}

void Scheduler::reject_locked(RequestRecord& rec, ServeError code,
                              std::string detail) {
  rec.state = RequestState::kRejected;
  rec.error = code;
  rec.error_detail = std::move(detail);
  rec.finish_step = step_;
  ++metrics_.rejected;
  ++metrics_.rejected_by_code[static_cast<std::size_t>(code)];
  emit_terminal_locked(rec.id, RequestState::kRejected, code);
}

std::int64_t Scheduler::submit(RequestParams params) {
  std::lock_guard<std::mutex> lock(m_);
  const std::int64_t id = next_id_++;
  RequestRecord rec;
  rec.id = id;
  rec.prompt_tokens = static_cast<std::int64_t>(params.prompt.size());
  rec.submit_step = step_;
  rec.stream = params.stream_seed != 0
                   ? params.stream_seed
                   : util::derive_stream(
                         util::derive_seed(cfg_.seed, "serve-request"),
                         static_cast<std::uint64_t>(id));
  ++metrics_.submitted;
  submit_s_.push_back(now_s());
  if (hw_timing_) rec.sim_submit_ps = sim_now_ps_;

  ServeError code = ServeError::kNone;
  std::string detail;
  if (params.prompt.empty()) {
    code = ServeError::kEmptyPrompt;
  } else if (params.max_new_tokens <= 0) {
    code = ServeError::kMaxTokensNonPositive;
    detail = "max_new_tokens = " + std::to_string(params.max_new_tokens);
  } else if (params.deadline_steps < 0) {
    // 0 is the documented "no deadline"; a negative value is a caller
    // bug, not an immediately-expired request — reject it loudly.
    code = ServeError::kDeadlineNegative;
    detail = "deadline_steps = " + std::to_string(params.deadline_steps);
  } else if (static_cast<std::int64_t>(params.prompt.size()) >=
             model_.config().max_seq) {
    code = ServeError::kPromptTooLong;
    detail = std::to_string(params.prompt.size()) + " tokens leave no room "
             "under max_seq " + std::to_string(model_.config().max_seq);
  } else if (footprint(params) > pool_.budget_tokens()) {
    code = ServeError::kFootprintOverBudget;
    detail = "KV footprint " + std::to_string(footprint(params)) +
             " > pool budget " + std::to_string(pool_.budget_tokens());
  } else if (cfg_.reject_during_maintenance && in_maintenance_locked()) {
    code = ServeError::kMaintenance;
    detail = "maintenance window open until step " +
             std::to_string(maintenance_until_);
  } else if (cfg_.queue_capacity > 0 &&
             queue_.size() >= cfg_.queue_capacity) {
    code = ServeError::kQueueFull;
    detail = std::to_string(queue_.size()) + " waiting (capacity " +
             std::to_string(cfg_.queue_capacity) + ")";
  }
  if (code != ServeError::kNone) {
    reject_locked(rec, code, std::move(detail));
    records_.push_back(std::move(rec));
    return id;
  }

  rec.state = RequestState::kQueued;
  records_.push_back(std::move(rec));
  // Stash the params on the record's running twin at admission time; the
  // queue holds only ids, the prompt lives in params_.
  Pending p;
  p.id = id;
  p.params = std::move(params);
  params_.push_back(std::move(p));
  queue_.push_back(id);
  return id;
}

bool Scheduler::cancel(std::int64_t id) {
  std::lock_guard<std::mutex> lock(m_);
  if (id < 0 || id >= static_cast<std::int64_t>(records_.size())) return false;
  const RequestState s = records_[static_cast<std::size_t>(id)].state;
  if (s != RequestState::kQueued && s != RequestState::kRunning) return false;
  cancels_.push_back(id);
  return true;
}

void Scheduler::retire_locked(Active& a, RequestState state) {
  RequestRecord& rec = records_[static_cast<std::size_t>(a.id)];
  rec.state = state;
  rec.finish_step = step_;
  rec.wall_s = now_s() - submit_s_[static_cast<std::size_t>(a.id)];
  metrics_.request_wall_s.push_back(rec.wall_s);
  metrics_.generated_tokens += static_cast<std::int64_t>(rec.tokens.size());
  metrics_.degraded_tokens += rec.degraded_tokens;
  if (hw_timing_) {
    rec.sim_finish_ps = sim_now_ps_;
    if (state == RequestState::kFinished && rec.sim_first_token_ps >= 0 &&
        rec.tokens.size() >= 2) {
      // Mean decode interval after the first token, on the sim clock.
      metrics_.sim_tpot_us.push_back(
          static_cast<double>(rec.sim_finish_ps - rec.sim_first_token_ps) /
          static_cast<double>(rec.tokens.size() - 1) * 1e-6);
    }
  }
  if (a.cache != nullptr) {
    // Publish the prompt's KV rows for the next request on this stream —
    // but only from a COLD, UNTAINTED run: a leased base means the slab
    // lacks the prefix rows, and any digital-bypass token means some
    // rows came off the fp32 path and would break the bit-identical-to-
    // cold-run contract for a future reader.
    const bool publish = state == RequestState::kFinished &&
                         a.base == nullptr && rec.degraded_tokens == 0;
    if (publish) {
      pool_.publish_prefix(rec.stream, a.origin.prompt, a.cache);
    } else {
      pool_.release(a.cache);
    }
    a.cache = nullptr;
  }
  if (a.base != nullptr) {
    pool_.release_prefix(a.base);
    a.base = nullptr;
  }
  switch (state) {
    case RequestState::kFinished:
      ++metrics_.finished;
      metrics_.finished_tokens += static_cast<std::int64_t>(rec.tokens.size());
      break;
    case RequestState::kCancelled: ++metrics_.cancelled; break;
    case RequestState::kExpired: ++metrics_.expired; break;
    default: break;
  }
  emit_terminal_locked(a.id, state, rec.error);
}

void Scheduler::requeue_locked(Active& a) {
  // Transient failure: the attempt is abandoned — its slab goes back to
  // the pool and its partial output is discarded (a retry restarts the
  // prompt from scratch; keeping half of an old decode would splice two
  // different noise histories into one "output"). The request itself
  // returns to the queue with exponential backoff.
  RequestRecord& rec = records_[static_cast<std::size_t>(a.id)];
  rec.state = RequestState::kQueued;
  metrics_.wasted_tokens += static_cast<std::int64_t>(rec.tokens.size());
  rec.tokens.clear();
  rec.logits.clear();
  rec.degraded_tokens = 0;
  if (a.cache != nullptr) {
    pool_.release(a.cache);
    a.cache = nullptr;
  }
  if (a.base != nullptr) {
    pool_.release_prefix(a.base);
    a.base = nullptr;
  }
  ++metrics_.retries;
  Pending p;
  p.id = a.id;
  p.params = std::move(a.origin);
  p.attempt = a.attempt + 1;
  p.not_before = step_ + backoff_steps_locked(a.id, p.attempt);
  ++rec.attempts;
  params_.push_back(std::move(p));
  queue_.push_back(a.id);
  emit_discard_locked(a.id);
}

bool Scheduler::admit_locked() {
  // Admission is paused for the whole maintenance window: the analog
  // substrate is being repaired, and prefilling new requests through
  // the digital bypass would silently hand out fully-degraded outputs.
  if (in_maintenance_locked()) return false;
  bool admitted_any = false;
  // Latency-aware policy: bound the prompt tokens co-admitted this step
  // so one arrival burst doesn't convoy into a single giant prefill that
  // delays every first token in it. The first prefill of a step is
  // always admitted (prefill_taken == 0), so an oversized prompt can
  // never livelock the queue.
  const bool latency_aware = cfg_.batch_policy == BatchPolicy::kLatencyAware;
  const std::int64_t prefill_budget = cfg_.prefill_tokens_per_step > 0
                                          ? cfg_.prefill_tokens_per_step
                                          : model_.config().max_seq;
  std::int64_t prefill_taken = 0;
  // Index walk instead of front-pop: backoff-delayed retries are
  // *skipped* (they forfeited their FIFO position), while a ready
  // request blocked on the pool still halts the scan under the queue
  // policy (no overtake). Entries appended during the walk (requeues)
  // are not rescanned this step.
  std::size_t qi = 0;
  std::size_t scan_end = queue_.size();
  while (qi < scan_end &&
         static_cast<int>(running_.size()) < cfg_.max_batch) {
    const std::int64_t id = queue_[qi];
    RequestRecord& rec = records_[static_cast<std::size_t>(id)];
    auto pit = std::find_if(params_.begin(), params_.end(),
                            [&](const Pending& p) { return p.id == id; });
    if (rec.state != RequestState::kQueued || pit == params_.end()) {
      // Cancelled / expired while queued; params already dropped.
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
      --scan_end;
      continue;
    }
    if (pit->not_before > step_) {
      ++qi;  // still backing off; younger requests may overtake
      continue;
    }
    const std::int64_t prompt_len =
        static_cast<std::int64_t>(pit->params.prompt.size());
    if (latency_aware && prefill_taken > 0 &&
        prefill_taken + prompt_len > prefill_budget) {
      // Budget spent: later arrivals prefill on subsequent steps. Stop
      // scanning (no overtake — the same FIFO stance as the pool-full
      // queue policy).
      break;
    }
    // Prefix lease first: a hit shrinks both the prefill (only the
    // suffix is computed) and the private slab the budget must cover.
    // The request's own stream key is what makes the shared rows
    // bit-identical to the prefill it skips.
    const KvCachePool::PrefixLease pl =
        pool_.lease_prefix(rec.stream, pit->params.prompt);
    nn::KvCache* cache = pool_.acquire(footprint(pit->params) - pl.tokens);
    if (cache == nullptr) {
      if (pl.base != nullptr) pool_.release_prefix(pl.base);
      if (!cfg_.reject_on_pool_full) {
        // FIFO: wait for retirements to free budget rather than letting
        // a smaller request overtake the head of the queue.
        break;
      }
      if (pit->attempt < cfg_.retry.max_attempts) {
        // Transient: schedule another attempt with backoff instead of
        // failing the request outright. It moves to the back of the
        // queue — it forfeits its position for this attempt.
        pit->attempt += 1;
        pit->not_before = step_ + backoff_steps_locked(id, pit->attempt);
        ++rec.attempts;
        ++metrics_.retries;
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
        --scan_end;
        queue_.push_back(id);
        continue;
      }
      const bool retried = pit->attempt > 1;
      reject_locked(
          rec,
          retried ? ServeError::kRetryBudgetExhausted
                  : ServeError::kPoolExhausted,
          retried ? "pool still full after " + std::to_string(pit->attempt) +
                        " attempts"
                  : "KV footprint " + std::to_string(footprint(pit->params)) +
                        " > " + std::to_string(pool_.free_tokens()) +
                        " free tokens");
      params_.erase(pit);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
      --scan_end;
      continue;
    }
    rec.state = RequestState::kRunning;
    if (rec.start_step < 0) {
      rec.start_step = step_;
      metrics_.queue_wait_steps_sum +=
          static_cast<double>(step_ - rec.submit_step);
    }
    ++metrics_.admitted;
    metrics_.prompt_tokens += rec.prompt_tokens;
    Active a;
    a.id = id;
    a.cache = cache;
    a.base = pl.base;
    a.base_len = pl.tokens;
    a.attempt = pit->attempt;
    a.origin = std::move(pit->params);
    // Prefill only the suffix past the shared prefix; its rows join the
    // leased base rows to form the full global history.
    a.pending.assign(a.origin.prompt.begin() +
                         static_cast<std::ptrdiff_t>(a.base_len),
                     a.origin.prompt.end());
    a.remaining = a.origin.max_new_tokens;
    a.deadline_step = a.origin.deadline_steps > 0
                          ? rec.submit_step + a.origin.deadline_steps
                          : -1;
    params_.erase(pit);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
    --scan_end;
    running_.push_back(std::move(a));
    admitted_any = true;
    prefill_taken += prompt_len;
  }
  return admitted_any;
}

void Scheduler::open_maintenance_locked() {
  if (step_ >= maintenance_until_) ++metrics_.maintenance_windows;
  maintenance_until_ =
      std::max(maintenance_until_, step_ + cfg_.maintenance_window_steps);
  if (cfg_.maintenance_policy == MaintenancePolicy::kRequeue) {
    // Drain: give every in-flight request with retry budget back to the
    // queue; the rest stay and finish on the digital bypass — a window
    // may degrade or delay a request but never drop one.
    for (auto it = running_.begin(); it != running_.end();) {
      if (it->attempt < cfg_.retry.max_attempts) {
        requeue_locked(*it);
        it = running_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool Scheduler::step() {
  std::unique_lock<std::mutex> lock(m_);
  // 1. Cancels flagged since the previous step.
  //
  // Cancel-vs-retire audit (exactly-once pool release): cancel() only
  // flags an id; every state change happens here, under the lock, at a
  // step boundary. A request can reach retire_locked through at most one
  // of three doors per step — this cancels loop, the deadline sweep, or
  // the harvest below — because each door first checks the live state
  // (kQueued/kRunning) or membership in running_, and retire_locked
  // immediately (a) flips the record to a terminal state, (b) removes the
  // Active from running_ at the call site, and (c) nulls a.cache after
  // releasing it. A cancel racing a natural finish in the same step is
  // therefore safe in both orders: cancel-first retires the request and
  // erases it from running_ before the harvest walks it; finish-first
  // leaves the record terminal, so next step's cancels loop skips it (and
  // a second cancel of the same id re-checks the state too). Requeues
  // (maintenance drain, pool retry) flip the record back to kQueued
  // under the same lock before the next door check, so a cancel landing
  // after a requeue takes the queued door and drops the pending params.
  // The KvCachePool::release throw on a non-live lease is the backstop
  // asserting this invariant, and the cancel-at-every-step and chaos
  // racing-cancel tests hammer it.
  for (const std::int64_t id : cancels_) {
    RequestRecord& rec = records_[static_cast<std::size_t>(id)];
    if (rec.state == RequestState::kQueued) {
      rec.state = RequestState::kCancelled;
      rec.finish_step = step_;
      ++metrics_.cancelled;
      params_.erase(std::remove_if(params_.begin(), params_.end(),
                                   [&](const Pending& p) {
                                     return p.id == id;
                                   }),
                    params_.end());
      emit_terminal_locked(id, RequestState::kCancelled, rec.error);
    } else if (rec.state == RequestState::kRunning) {
      auto it = std::find_if(running_.begin(), running_.end(),
                             [&](const Active& a) { return a.id == id; });
      if (it != running_.end()) {
        retire_locked(*it, RequestState::kCancelled);
        running_.erase(it);
      }
    }
  }
  cancels_.clear();
  // 2. Deadlines (queued and running alike; expiry frees the slab). The
  // deadline is absolute from the original submission, so retried
  // attempts and maintenance stalls eat into the same budget.
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->deadline_step >= 0 && step_ >= it->deadline_step) {
      retire_locked(*it, RequestState::kExpired);
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto qit = queue_.begin(); qit != queue_.end();) {
    const std::int64_t id = *qit;
    RequestRecord& rec = records_[static_cast<std::size_t>(id)];
    auto pit = std::find_if(params_.begin(), params_.end(),
                            [&](const Pending& p) { return p.id == id; });
    const bool expired =
        rec.state == RequestState::kQueued && pit != params_.end() &&
        pit->params.deadline_steps > 0 &&
        step_ >= rec.submit_step + pit->params.deadline_steps;
    if (expired) {
      rec.state = RequestState::kExpired;
      rec.finish_step = step_;
      ++metrics_.expired;
      params_.erase(pit);
      qit = queue_.erase(qit);
      emit_terminal_locked(id, RequestState::kExpired, rec.error);
    } else {
      ++qit;
    }
  }
  // 3. Admission (paused while a maintenance window is open).
  admit_locked();
  if (running_.empty()) {
    const bool more = !queue_.empty();
    if (more) {
      // Starved tick (head-of-line blocked on the pool, maintenance
      // window, or retry backoff) still advances the step clock, so
      // deadlines, backoff timers and the window itself keep counting.
      ++step_;
      ++metrics_.steps;
    }
    return more;
  }
  ++metrics_.steps;
  ++metrics_.busy_steps;
  metrics_.occupancy_sum += static_cast<double>(running_.size());
  metrics_.max_occupancy = std::max(
      metrics_.max_occupancy, static_cast<std::int64_t>(running_.size()));
  const bool degraded_step = in_maintenance_locked();
  if (degraded_step) ++metrics_.maintenance_steps;

  // 4. Build the batch. Per-request state is only read here; the model
  // call below runs without the lock so submit()/cancel() never block on
  // a decode step. segments_ is member scratch (steady-state steps reuse
  // its capacity); nothing outside step() touches it, and step() itself
  // is single-caller by contract.
  segments_.clear();
  segments_.reserve(running_.size());
  for (Active& a : running_) {
    segments_.push_back({std::span<const int>(a.pending),
                         a.cache,
                         records_[static_cast<std::size_t>(a.id)].stream,
                         a.base,
                         a.base_len});
  }
  lock.unlock();
  const auto t0 = std::chrono::steady_clock::now();
  // Inside a maintenance window the analog substrate is off line being
  // repaired: decode through the non-destructive fp32 bypass instead of
  // stalling the batch. Only step() flips the bypass, and only around
  // this call, so the analog deployment is untouched for everyone else.
  Matrix logits;
  {
    // Timing on: collect this forward's op trace via the thread-local
    // sink (ops are emitted from this thread only, so the trace is a
    // pure function of the batch). Timing off: installs nullptr over
    // nullptr — a strict no-op.
    if (hw_timing_) trace_.clear();
    timing::ScopedTrace traced(hw_timing_ ? &trace_ : nullptr);
    if (degraded_step) model_.set_digital_bypass(true);
    logits = model_.forward_serve(segments_);
    if (degraded_step) model_.set_digital_bypass(false);
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  lock.lock();
  metrics_.wall_s += dt;
  if (hw_timing_) {
    // Replay BEFORE the harvest below: tokens emitted this step carry
    // the post-step simulated timestamp, exactly as real hardware would
    // deliver them after the step's latency elapsed.
    const timing::StepTiming st = cfg_.shard_replay
                                      ? hw_timing_->replay_pipelined(trace_)
                                      : hw_timing_->replay(trace_);
    sim_now_ps_ += st.total_ps;
    metrics_.sim_time_ps = sim_now_ps_;
    metrics_.sim_events += st.events;
    metrics_.sim_link_ps += st.link_ps;
    metrics_.sim_link_transfers += st.link_transfers;
    for (const timing::LayerTiming& lt : st.layers) {
      bool merged = false;
      for (timing::LayerTiming& acc : timing_layers_) {
        if (acc.layer == lt.layer) {
          acc.ps += lt.ps;
          acc.ops += lt.ops;
          merged = true;
          break;
        }
      }
      if (!merged) timing_layers_.push_back(lt);
    }
  }

  // 5. Harvest: greedy argmax of each segment's last row. Survivors are
  // compacted in place (stable order) instead of round-tripping through
  // a fresh `keep` vector every step.
  const std::int64_t vocab = model_.config().vocab_size;
  std::int64_t row = 0;
  std::size_t kept = 0;
  for (std::size_t idx = 0; idx < running_.size(); ++idx) {
    Active& a = running_[idx];
    row += static_cast<std::int64_t>(a.pending.size());
    const auto last = logits.row(row - 1);
    int best = 0;
    for (std::int64_t v = 1; v < vocab; ++v) {
      if (last[v] > last[best]) best = static_cast<int>(v);
    }
    RequestRecord& rec = records_[static_cast<std::size_t>(a.id)];
    rec.tokens.push_back(best);
    if (degraded_step) ++rec.degraded_tokens;
    emit_token_locked(a.id, best, degraded_step);
    if (cfg_.record_logits) {
      rec.logits.emplace_back(last.begin(), last.end());
    }
    if (rec.first_token_step < 0) {
      rec.first_token_step = step_ + 1;
      metrics_.ttft_steps_sum +=
          static_cast<double>(rec.first_token_step - rec.submit_step);
      rec.ttft_s = now_s() - submit_s_[static_cast<std::size_t>(a.id)];
      metrics_.ttft_s.push_back(rec.ttft_s);
      if (hw_timing_ && rec.sim_submit_ps >= 0) {
        rec.sim_first_token_ps = sim_now_ps_;
        metrics_.sim_ttft_us.push_back(
            static_cast<double>(sim_now_ps_ - rec.sim_submit_ps) * 1e-6);
      }
    }
    a.pending.assign(1, best);
    --a.remaining;
    // Done when the token budget is spent or the next decode step could
    // not fit (its input token would overflow cache capacity / max_seq).
    // The model ceiling counts the shared prefix; the slab capacity is
    // private rows only (that is all the pool leased).
    const bool full =
        a.base_len + a.cache->length + 1 > model_.config().max_seq ||
        (a.cache->capacity > 0 && a.cache->length + 1 > a.cache->capacity);
    if (a.remaining <= 0 || full) {
      retire_locked(a, RequestState::kFinished);
    } else {
      if (kept != idx) running_[kept] = std::move(a);
      ++kept;
    }
  }
  running_.resize(kept);
  ++step_;

  // 6. Integrity-monitor hook: fold serving time into the drift clock
  // and let ABFT statistics gathered from live traffic drive the
  // escalation ladder. Runs between batches, so in-flight requests see
  // a refreshed (or fallen-back) layer only at the next step boundary —
  // their caches and stream keys are untouched. Any action taken opens
  // (or extends) a maintenance window when the config prices repairs
  // at maintenance_window_steps > 0.
  if (cfg_.monitor != nullptr && cfg_.inspect_every > 0) {
    dt_accum_s_ += cfg_.step_dt_s;
    if (++busy_since_inspect_ >= cfg_.inspect_every) {
      busy_since_inspect_ = 0;
      std::int64_t actions = 0;
      bool substrate_changed = false;
      if (dt_accum_s_ > 0.0) {
        actions += cfg_.monitor->advance_to(
            cfg_.monitor->now() + static_cast<float>(dt_accum_s_));
        dt_accum_s_ = 0.0;
        // Advancing the drift clock changes the tile conductances a
        // cold run would see — even when no escalation fires.
        substrate_changed = true;
      }
      ++metrics_.monitor_inspections;
      actions += cfg_.monitor->inspect();
      metrics_.monitor_actions += actions;
      if (actions > 0) substrate_changed = true;
      if (substrate_changed) {
        // Published prefix rows predate the change: a future lease
        // would no longer be bit-identical to its cold run. Readers
        // already holding a lease keep their (pre-change) rows.
        pool_.invalidate_prefixes();
      }
      if (actions > 0 && cfg_.maintenance_window_steps > 0) {
        open_maintenance_locked();
      }
    }
  }
  return !running_.empty() || !queue_.empty();
}

std::int64_t Scheduler::run_until_idle() {
  std::int64_t n = 0;
  while (step()) ++n;
  return n + 1;  // the final returning-false call still did bookkeeping
}

RequestRecord Scheduler::request(std::int64_t id) const {
  std::lock_guard<std::mutex> lock(m_);
  if (id < 0 || id >= static_cast<std::int64_t>(records_.size())) {
    throw std::out_of_range("Scheduler::request: unknown id");
  }
  return records_[static_cast<std::size_t>(id)];
}

std::vector<RequestRecord> Scheduler::completed() const {
  std::lock_guard<std::mutex> lock(m_);
  std::vector<RequestRecord> out;
  for (const RequestRecord& r : records_) {
    if (r.state != RequestState::kQueued && r.state != RequestState::kRunning) {
      out.push_back(r);
    }
  }
  return out;
}

std::int64_t Scheduler::current_step() const {
  std::lock_guard<std::mutex> lock(m_);
  return step_;
}

std::size_t Scheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(m_);
  return queue_.size() + running_.size();
}

bool Scheduler::in_maintenance() const {
  std::lock_guard<std::mutex> lock(m_);
  return in_maintenance_locked();
}

std::int64_t Scheduler::sim_now_ps() const {
  std::lock_guard<std::mutex> lock(m_);
  return sim_now_ps_;
}

std::vector<timing::LayerTiming> Scheduler::timing_layers() const {
  std::lock_guard<std::mutex> lock(m_);
  return timing_layers_;
}

std::vector<ServeEvent> Scheduler::drain_events() {
  std::lock_guard<std::mutex> lock(m_);
  std::vector<ServeEvent> out;
  out.swap(events_);
  return out;
}

namespace {
void fill_prefix_metrics(const KvCachePool& pool, Metrics& m) {
  m.kv_prefix_hits = pool.prefix_leases();
  m.kv_prefix_hit_tokens = pool.prefix_hit_tokens();
  m.kv_prefix_tokens = pool.prefix_tokens();
  m.kv_prefix_published = pool.prefix_published();
  m.kv_prefix_evicted = pool.prefix_evicted();
  m.kv_prefix_invalidated = pool.prefix_invalidated();
}
}  // namespace

Metrics Scheduler::metrics() const {
  std::lock_guard<std::mutex> lock(m_);
  Metrics m = metrics_;
  m.kv_used_tokens = pool_.used_tokens();
  m.kv_high_water_tokens = pool_.high_water_tokens();
  fill_prefix_metrics(pool_, m);
  return m;
}

AuditSnapshot Scheduler::audit_snapshot() const {
  std::lock_guard<std::mutex> lock(m_);
  AuditSnapshot s;
  s.step = step_;
  s.in_maintenance = in_maintenance_locked();
  s.queued = queue_.size();
  s.running = running_.size();
  s.states.reserve(records_.size());
  s.token_counts.reserve(records_.size());
  s.degraded_counts.reserve(records_.size());
  for (const RequestRecord& r : records_) {
    s.states.push_back(r.state);
    s.token_counts.push_back(static_cast<std::int64_t>(r.tokens.size()));
    s.degraded_counts.push_back(r.degraded_tokens);
  }
  s.metrics = metrics_;
  s.metrics.kv_used_tokens = pool_.used_tokens();
  s.metrics.kv_high_water_tokens = pool_.high_water_tokens();
  fill_prefix_metrics(pool_, s.metrics);
  s.pool_budget = pool_.budget_tokens();
  s.pool_used = pool_.used_tokens();
  s.pool_live = static_cast<std::int64_t>(pool_.live());
  s.pool_acquires = pool_.total_acquires();
  s.pool_releases = pool_.total_releases();
  s.pool_prefix_tokens = pool_.prefix_tokens();
  s.pool_prefix_refs = pool_.prefix_refs();
  s.pool_prefix_leases = pool_.prefix_leases();
  s.pool_prefix_lease_releases = pool_.prefix_lease_releases();
  return s;
}

}  // namespace nora::serve
