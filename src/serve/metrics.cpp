#include "serve/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

namespace nora::serve {

namespace {

std::atomic<std::int64_t> g_sort_count{0};

/// Interpolated quantile over an already-sorted sample vector.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<double> sorted_copy(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  g_sort_count.fetch_add(1, std::memory_order_relaxed);
  return sorted;
}

}  // namespace

std::int64_t percentile_sort_count() {
  return g_sort_count.load(std::memory_order_relaxed);
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  return quantile_sorted(sorted_copy(values), q);
}

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> qs) {
  if (values.empty()) return std::vector<double>(qs.size(), 0.0);
  const std::vector<double> sorted = sorted_copy(values);
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile_sorted(sorted, q));
  return out;
}

namespace {
std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}
}  // namespace

Metrics::Snapshot Metrics::snapshot() const {
  Snapshot snap;
  const double qs[] = {0.5, 0.95};
  const std::vector<double> ttft_q = percentiles(ttft_s, qs);
  snap.ttft_p50_s = ttft_q[0];
  snap.ttft_p95_s = ttft_q[1];
  const std::vector<double> sim_ttft_q = percentiles(sim_ttft_us, qs);
  snap.sim_ttft_p50_us = sim_ttft_q[0];
  snap.sim_ttft_p95_us = sim_ttft_q[1];
  const std::vector<double> sim_tpot_q = percentiles(sim_tpot_us, qs);
  snap.sim_tpot_p50_us = sim_tpot_q[0];
  snap.sim_tpot_p95_us = sim_tpot_q[1];
  return snap;
}

std::string Metrics::to_string() const {
  const Snapshot snap = snapshot();
  std::string s;
  s += "serving metrics\n";
  s += "  requests: " + std::to_string(submitted) + " submitted, " +
       std::to_string(finished) + " finished, " + std::to_string(cancelled) +
       " cancelled, " + std::to_string(expired) + " expired, " +
       std::to_string(rejected) + " rejected\n";
  if (rejected > 0) {
    s += "  rejects:  ";
    bool first = true;
    for (std::size_t c = 0; c < rejected_by_code.size(); ++c) {
      if (rejected_by_code[c] == 0) continue;
      if (!first) s += ", ";
      s += std::string(nora::serve::to_string(static_cast<ServeError>(c))) +
           " " +
           std::to_string(rejected_by_code[c]);
      first = false;
    }
    s += "\n";
  }
  if (retries > 0 || maintenance_windows > 0 || degraded_tokens > 0) {
    s += "  degraded: " + std::to_string(retries) + " retries, " +
         std::to_string(maintenance_windows) + " maintenance windows (" +
         std::to_string(maintenance_steps) + " steps), " +
         std::to_string(degraded_tokens) + " fallback tokens, " +
         std::to_string(wasted_tokens) + " wasted tokens\n";
  }
  s += "  tokens:   " + std::to_string(prompt_tokens) + " prompt, " +
       std::to_string(generated_tokens) + " generated";
  if (wall_s > 0.0) {
    s += " (" + fmt("%.1f", tokens_per_s()) + " tok/s over " +
         fmt("%.2f", wall_s) + " s)";
  }
  s += "\n";
  s += "  batching: " + std::to_string(busy_steps) + " busy steps / " +
       std::to_string(steps) + " steps, mean occupancy " +
       fmt("%.2f", mean_occupancy()) + ", max " +
       std::to_string(max_occupancy) + "\n";
  s += "  latency:  queue wait mean " + fmt("%.2f", mean_queue_wait_steps()) +
       " steps; TTFT p50 " + fmt("%.4f", snap.ttft_p50_s) + " s, p95 " +
       fmt("%.4f", snap.ttft_p95_s) + " s\n";
  s += "  kv pool:  " + std::to_string(kv_used_tokens) + " / " +
       std::to_string(kv_budget_tokens) + " tokens in use, high water " +
       std::to_string(kv_high_water_tokens) + " tokens";
  if (kv_bytes_per_token > 0) {
    s += " (" +
         fmt("%.1f", static_cast<double>(kv_high_water_tokens *
                                         kv_bytes_per_token) /
                         1024.0) +
         " KiB)";
  }
  s += "\n";
  if (kv_prefix_published > 0 || kv_prefix_hits > 0) {
    s += "  prefix:   " + std::to_string(kv_prefix_hits) + " hits (" +
         std::to_string(kv_prefix_hit_tokens) + " tokens warm), " +
         std::to_string(kv_prefix_published) + " published, " +
         std::to_string(kv_prefix_evicted) + " evicted, " +
         std::to_string(kv_prefix_invalidated) + " invalidated, " +
         std::to_string(kv_prefix_tokens) + " tokens resident\n";
  }
  s += "  monitor:  " + std::to_string(monitor_inspections) +
       " inspections, " + std::to_string(monitor_actions) + " actions\n";
  if (sim_time_ps > 0) {
    s += "  sim time: " + fmt("%.1f", static_cast<double>(sim_time_ps) * 1e-6) +
         " us over " + std::to_string(sim_events) + " events; " +
         fmt("%.0f", sim_tokens_per_s()) + " tok/s, goodput " +
         fmt("%.0f", sim_goodput_tokens_per_s()) + " tok/s\n";
    s += "  sim lat:  TTFT p50 " + fmt("%.1f", snap.sim_ttft_p50_us) +
         " us, p95 " + fmt("%.1f", snap.sim_ttft_p95_us) + " us; TPOT p50 " +
         fmt("%.2f", snap.sim_tpot_p50_us) + " us, p95 " +
         fmt("%.2f", snap.sim_tpot_p95_us) + " us\n";
    if (sim_link_transfers > 0) {
      s += "  sim link: " +
           fmt("%.1f", static_cast<double>(sim_link_ps) * 1e-6) + " us over " +
           std::to_string(sim_link_transfers) + " inter-chip transfers\n";
    }
  }
  return s;
}

std::string Metrics::to_json() const {
  const Snapshot snap = snapshot();
  std::string s = "{";
  auto add_i = [&s](const char* k, std::int64_t v, bool comma = true) {
    s += std::string("\"") + k + "\":" + std::to_string(v);
    if (comma) s += ",";
  };
  auto add_d = [&s](const char* k, double v, bool comma = true) {
    // JSON has no NaN/Inf literals; %.6g would happily print them and
    // corrupt the document. Non-finite aggregates serialize as null.
    s += std::string("\"") + k + "\":" +
         (std::isfinite(v) ? fmt("%.6g", v) : std::string("null"));
    if (comma) s += ",";
  };
  add_i("submitted", submitted);
  add_i("admitted", admitted);
  add_i("finished", finished);
  add_i("cancelled", cancelled);
  add_i("expired", expired);
  add_i("rejected", rejected);
  {
    // Per-code reject counts under one nested object, stable key order.
    s += "\"rejected_by_code\":{";
    bool first = true;
    for (std::size_t c = 1; c < rejected_by_code.size(); ++c) {
      if (rejected_by_code[c] == 0) continue;
      if (!first) s += ",";
      s += std::string("\"") +
           nora::serve::to_string(static_cast<ServeError>(c)) +
           "\":" + std::to_string(rejected_by_code[c]);
      first = false;
    }
    s += "},";
  }
  add_i("retries", retries);
  add_i("maintenance_windows", maintenance_windows);
  add_i("maintenance_steps", maintenance_steps);
  add_i("degraded_tokens", degraded_tokens);
  add_i("wasted_tokens", wasted_tokens);
  add_i("steps", steps);
  add_i("busy_steps", busy_steps);
  add_d("mean_occupancy", mean_occupancy());
  add_i("max_occupancy", max_occupancy);
  add_i("prompt_tokens", prompt_tokens);
  add_i("generated_tokens", generated_tokens);
  add_d("wall_s", wall_s);
  add_d("tokens_per_s", tokens_per_s());
  add_d("mean_queue_wait_steps", mean_queue_wait_steps());
  add_d("ttft_p50_s", snap.ttft_p50_s);
  add_d("ttft_p95_s", snap.ttft_p95_s);
  add_i("kv_budget_tokens", kv_budget_tokens);
  add_i("kv_used_tokens", kv_used_tokens);
  add_i("kv_high_water_tokens", kv_high_water_tokens);
  add_i("kv_bytes_per_token", kv_bytes_per_token);
  add_i("kv_prefix_hits", kv_prefix_hits);
  add_i("kv_prefix_hit_tokens", kv_prefix_hit_tokens);
  add_i("kv_prefix_tokens", kv_prefix_tokens);
  add_i("kv_prefix_published", kv_prefix_published);
  add_i("kv_prefix_evicted", kv_prefix_evicted);
  add_i("kv_prefix_invalidated", kv_prefix_invalidated);
  add_i("monitor_inspections", monitor_inspections);
  add_i("monitor_actions", monitor_actions);
  add_i("sim_time_ps", sim_time_ps);
  add_i("sim_events", sim_events);
  add_i("finished_tokens", finished_tokens);
  add_d("sim_tokens_per_s", sim_tokens_per_s());
  add_d("sim_goodput_tokens_per_s", sim_goodput_tokens_per_s());
  add_d("sim_ttft_p50_us", snap.sim_ttft_p50_us);
  add_d("sim_ttft_p95_us", snap.sim_ttft_p95_us);
  add_d("sim_tpot_p50_us", snap.sim_tpot_p50_us);
  add_d("sim_tpot_p95_us", snap.sim_tpot_p95_us);
  add_i("sim_link_ps", sim_link_ps);
  add_i("sim_link_transfers", sim_link_transfers, /*comma=*/false);
  s += "}";
  return s;
}

}  // namespace nora::serve
