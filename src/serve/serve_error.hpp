// Structured error taxonomy for the serving layer.
//
// Every reject / requeue decision the scheduler makes is tagged with an
// enum code instead of a free-text string, so operators (and the chaos
// auditor) can aggregate outcomes by cause, retry policies can key off
// is_transient(), and tests can assert exact codes instead of matching
// prose. A human-readable `to_string` plus an optional per-instance
// detail string keep the display quality of the old free text.
#pragma once

#include <string>

namespace nora::serve {

enum class ServeError {
  kNone = 0,              // no error (live or finished normally)
  kEmptyPrompt,           // submit(): prompt had no tokens
  kMaxTokensNonPositive,  // submit(): max_new_tokens <= 0
  kDeadlineNegative,      // submit(): deadline_steps < 0 (0 means "none")
  kPromptTooLong,         // submit(): prompt leaves no room under max_seq
  kFootprintOverBudget,   // submit(): worst-case KV footprint > whole pool
  kQueueFull,             // submit(): bounded queue at capacity
  kPoolExhausted,         // admission: KV pool cannot hold the request now
  kMaintenance,           // a maintenance window paused/aborted the attempt
  kRetryBudgetExhausted,  // transient condition persisted past max_attempts
  kCount,                 // sentinel: number of codes (array sizing)
};

/// Stable lower-snake name for dashboards / JSON keys ("pool_exhausted").
const char* to_string(ServeError code);

/// Transient conditions are retryable under the RetryPolicy: the request
/// itself is fine, the substrate is momentarily unable to take it.
/// Permanent codes describe an invalid request and never retry.
bool is_transient(ServeError code);

/// Display helper: "pool_exhausted: KV footprint 24 > 10 free" when a
/// detail is present, bare code name otherwise.
std::string describe(ServeError code, const std::string& detail);

}  // namespace nora::serve
