#include "serve/auditor.hpp"

namespace nora::serve {

namespace {
bool is_terminal(RequestState s) {
  return s != RequestState::kQueued && s != RequestState::kRunning;
}
}  // namespace

void Auditor::expect(bool ok, std::int64_t step, const std::string& msg) {
  if (ok) return;
  ++found_this_check_;
  violations_.push_back("step " + std::to_string(step) + ": " + msg);
}

std::size_t Auditor::check() {
  return audit(sched_.audit_snapshot(), /*idle=*/false);
}

std::size_t Auditor::check_idle() {
  return audit(sched_.audit_snapshot(), /*idle=*/true);
}

std::size_t Auditor::audit(const AuditSnapshot& s, bool idle) {
  ++checks_;
  found_this_check_ = 0;
  const std::int64_t step = s.step;

  // --- Slab conservation ---------------------------------------------
  expect(s.pool_acquires - s.pool_releases == s.pool_live, step,
         "pool leak: acquires " + std::to_string(s.pool_acquires) +
             " - releases " + std::to_string(s.pool_releases) +
             " != live " + std::to_string(s.pool_live));
  expect(s.pool_used >= 0, step,
         "pool used negative: " + std::to_string(s.pool_used));
  expect(s.pool_used <= s.pool_budget, step,
         "pool over budget: " + std::to_string(s.pool_used) + " > " +
             std::to_string(s.pool_budget));
  // Every live lease belongs to a running request, one slab each.
  expect(s.pool_live == static_cast<std::int64_t>(s.running), step,
         "live leases " + std::to_string(s.pool_live) + " != running " +
             std::to_string(s.running));

  // --- Prefix-store conservation -------------------------------------
  // Every granted prefix lease is eventually released exactly once; the
  // outstanding refcount is the lifetime difference at every step.
  expect(s.pool_prefix_leases - s.pool_prefix_lease_releases ==
             s.pool_prefix_refs,
         step,
         "prefix lease leak: leases " + std::to_string(s.pool_prefix_leases) +
             " - releases " + std::to_string(s.pool_prefix_lease_releases) +
             " != refs " + std::to_string(s.pool_prefix_refs));
  expect(s.pool_prefix_tokens >= 0 && s.pool_prefix_tokens <= s.pool_budget,
         step,
         "prefix store residency out of range: " +
             std::to_string(s.pool_prefix_tokens));
  // A running request holds at most one prefix lease.
  expect(s.pool_prefix_refs <= static_cast<std::int64_t>(s.running), step,
         "prefix refs " + std::to_string(s.pool_prefix_refs) +
             " exceed running " + std::to_string(s.running));
  // Resident store tokens are part of the pool's used tokens.
  expect(s.pool_prefix_tokens <= s.pool_used, step,
         "prefix store " + std::to_string(s.pool_prefix_tokens) +
             " tokens exceed pool used " + std::to_string(s.pool_used));

  // --- State conservation --------------------------------------------
  expect(s.states.size() == static_cast<std::size_t>(s.metrics.submitted),
         step,
         "record count " + std::to_string(s.states.size()) +
             " != submitted " + std::to_string(s.metrics.submitted));
  std::int64_t n_queued = 0, n_running = 0, n_finished = 0, n_cancelled = 0,
               n_expired = 0, n_rejected = 0;
  for (const RequestState st : s.states) {
    switch (st) {
      case RequestState::kQueued: ++n_queued; break;
      case RequestState::kRunning: ++n_running; break;
      case RequestState::kFinished: ++n_finished; break;
      case RequestState::kCancelled: ++n_cancelled; break;
      case RequestState::kExpired: ++n_expired; break;
      case RequestState::kRejected: ++n_rejected; break;
    }
  }
  expect(n_running == static_cast<std::int64_t>(s.running), step,
         "running records " + std::to_string(n_running) + " != batch " +
             std::to_string(s.running));
  // queue_ may briefly hold stale ids of requests cancelled/expired while
  // queued (dropped lazily at the next admission scan), so <=, not ==.
  expect(n_queued <= static_cast<std::int64_t>(s.queued), step,
         "queued records " + std::to_string(n_queued) + " > queue size " +
             std::to_string(s.queued));
  expect(n_finished == s.metrics.finished, step,
         "finished records " + std::to_string(n_finished) + " != metric " +
             std::to_string(s.metrics.finished));
  expect(n_cancelled == s.metrics.cancelled, step,
         "cancelled records " + std::to_string(n_cancelled) + " != metric " +
             std::to_string(s.metrics.cancelled));
  expect(n_expired == s.metrics.expired, step,
         "expired records " + std::to_string(n_expired) + " != metric " +
             std::to_string(s.metrics.expired));
  expect(n_rejected == s.metrics.rejected, step,
         "rejected records " + std::to_string(n_rejected) + " != metric " +
             std::to_string(s.metrics.rejected));
  // Exactly-one-outcome: live + terminal == submitted.
  expect(n_queued + n_running + n_finished + n_cancelled + n_expired +
                 n_rejected ==
             s.metrics.submitted,
         step, "state counts do not sum to submitted");

  // --- Terminal freeze -----------------------------------------------
  const std::size_t known = prev_states_.size();
  for (std::size_t id = 0; id < known && id < s.states.size(); ++id) {
    if (!is_terminal(prev_states_[id])) continue;
    expect(s.states[id] == prev_states_[id], step,
           "request " + std::to_string(id) + " left terminal state " +
               to_string(prev_states_[id]) + " for " +
               to_string(s.states[id]));
    expect(s.token_counts[id] == prev_tokens_[id], step,
           "request " + std::to_string(id) +
               " token count changed after terminal: " +
               std::to_string(prev_tokens_[id]) + " -> " +
               std::to_string(s.token_counts[id]));
  }
  prev_states_ = s.states;
  prev_tokens_ = s.token_counts;

  // --- Metrics / token conservation ----------------------------------
  std::int64_t by_code = 0;
  for (const std::int64_t c : s.metrics.rejected_by_code) by_code += c;
  expect(by_code == s.metrics.rejected, step,
         "rejected_by_code sums to " + std::to_string(by_code) +
             ", rejected = " + std::to_string(s.metrics.rejected));
  std::int64_t terminal_tokens = 0, terminal_degraded = 0;
  for (std::size_t id = 0; id < s.states.size(); ++id) {
    if (!is_terminal(s.states[id])) continue;
    terminal_tokens += s.token_counts[id];
    terminal_degraded += s.degraded_counts[id];
  }
  expect(terminal_tokens == s.metrics.generated_tokens, step,
         "terminal token sum " + std::to_string(terminal_tokens) +
             " != generated_tokens " +
             std::to_string(s.metrics.generated_tokens));
  expect(terminal_degraded == s.metrics.degraded_tokens, step,
         "terminal degraded sum " + std::to_string(terminal_degraded) +
             " != degraded_tokens " +
             std::to_string(s.metrics.degraded_tokens));

  // --- Idle drain ----------------------------------------------------
  if (idle) {
    expect(s.queued == 0 && s.running == 0, step,
           "idle audit with work in flight: queued " +
               std::to_string(s.queued) + ", running " +
               std::to_string(s.running));
    expect(n_queued == 0 && n_running == 0, step,
           "idle audit with non-terminal records");
    // With prefix caching, an idle pool legitimately retains published
    // prefix rows — but ONLY those: anything above the store's
    // residency is a leaked slab.
    expect(s.pool_used == s.pool_prefix_tokens, step,
           "idle pool holds " + std::to_string(s.pool_used) +
               " tokens but the prefix store only accounts for " +
               std::to_string(s.pool_prefix_tokens) + " (leaked slab)");
    expect(s.pool_prefix_refs == 0, step,
           "idle pool has " + std::to_string(s.pool_prefix_refs) +
               " outstanding prefix leases");
    expect(s.pool_live == 0, step,
           "idle pool has " + std::to_string(s.pool_live) + " live leases");
    expect(s.pool_acquires == s.pool_releases, step,
           "lifetime acquires " + std::to_string(s.pool_acquires) +
               " != releases " + std::to_string(s.pool_releases));
  }
  return found_this_check_;
}

}  // namespace nora::serve
