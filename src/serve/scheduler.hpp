// Continuous-batching scheduler over the analog transformer.
//
// Requests (prompt, max_new_tokens, optional deadline) enter a FIFO
// queue; each step() the scheduler admits queued requests into the
// running batch as slots and KV budget allow, then drives ONE
// TransformerLM::forward_serve over the whole batch — newly admitted
// requests contribute their full prompt as a prefill segment, running
// requests contribute their single next-token decode segment. A request
// joins at any step and retires the moment it is done; its KV slab goes
// straight back to the pool, so the batch recomposes continuously
// instead of draining in static generations.
//
// Degraded-mode serving: the analog substrate is allowed to degrade
// *during* service. When the attached runtime::IntegrityMonitor takes
// an escalation action (re-read / refresh / digital fallback), the
// scheduler can open an explicit MAINTENANCE WINDOW instead of
// pretending the repair was free: admission pauses (queue reason
// ServeError::kMaintenance), and the in-flight batch either keeps
// decoding on the non-destructive fp32 digital bypass (tokens tallied
// per request as degraded_tokens) or is drained and retried later,
// per MaintenancePolicy. Transient admission failures (KV-pool
// exhaustion, maintenance) are re-queued under a RetryPolicy with
// bounded exponential backoff; the jitter comes from a counter-keyed
// RNG stream, so retry schedules are bit-reproducible.
//
// Determinism contract: each request's noise stream is keyed on its own
// (stream seed, request-local position) — see cim::StreamKey — so its
// tokens AND logits are bit-identical whether it is served alone,
// batched with any mix of other requests, or replayed across runs, at
// any thread-pool width. Scheduling decisions (deadlines, backoff,
// maintenance windows) use only the deterministic step counter; wall
// time feeds metrics exclusively. Tokens emitted inside a maintenance
// window come from the digital path and are therefore *flagged*
// (degraded_tokens) rather than silently passed off as analog output.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nn/transformer.hpp"
#include "runtime/integrity_monitor.hpp"
#include "serve/kv_cache_pool.hpp"
#include "serve/metrics.hpp"
#include "serve/serve_error.hpp"
#include "timing/hw_model.hpp"
#include "timing/trace.hpp"

namespace nora::serve {

enum class RequestState {
  kQueued,     // accepted, waiting for a batch slot / KV slab / backoff
  kRunning,    // admitted; holds a KV slab, decoding
  kFinished,   // emitted max_new_tokens (or hit its cache capacity)
  kCancelled,  // cancel() before finishing; partial output kept
  kExpired,    // deadline passed before finishing
  kRejected,   // refused (invalid / queue full / pool policy / retry spent)
};

const char* to_string(RequestState state);

struct RequestParams {
  std::vector<int> prompt;
  int max_new_tokens = 8;
  /// Steps after submission by which the request must FINISH. 0 means
  /// EXPLICITLY "no deadline" (the request may run forever); negative
  /// values are rejected at submit() with ServeError::kDeadlineNegative.
  /// The deadline is absolute from the original submission step — it is
  /// NOT extended by retries or maintenance windows.
  std::int64_t deadline_steps = 0;
  /// Noise-stream key for this request's rows; 0 derives one from the
  /// scheduler seed and the request id. Two requests with the same seed
  /// and prompt produce identical output — that is the reproducibility
  /// hook, not a bug.
  std::uint64_t stream_seed = 0;
};

struct RequestRecord {
  std::int64_t id = -1;
  RequestState state = RequestState::kQueued;
  std::uint64_t stream = 0;
  std::vector<int> tokens;  // generated so far (partial on cancel/expire)
  /// Last-position logits row per generated token (record_logits only) —
  /// what the batch-invariance property test compares bitwise.
  std::vector<std::vector<float>> logits;
  std::int64_t prompt_tokens = 0;
  std::int64_t submit_step = -1;
  std::int64_t start_step = -1;        // first admission step
  std::int64_t first_token_step = -1;  // TTFT on the step clock
  std::int64_t finish_step = -1;
  double ttft_s = 0.0;
  double wall_s = 0.0;
  /// Structured outcome cause; kNone unless rejected. error_detail adds
  /// the human-readable specifics (counts, budgets) for display.
  ServeError error = ServeError::kNone;
  std::string error_detail;
  /// Attempts scheduled so far (1 = original submission, +1 per retry).
  int attempts = 1;
  /// Tokens in `tokens` that were produced on the digital-fallback path
  /// inside a maintenance window (operators see which outputs were
  /// degraded). Reset when a retry discards the attempt's output.
  std::int64_t degraded_tokens = 0;
  /// Simulated-hardware clock stamps (picoseconds; -1 until reached,
  /// all -1 when timing is disabled). Stamps are taken at step
  /// boundaries of the replayed clock, so they are replay-exact for
  /// step-synchronous submission.
  std::int64_t sim_submit_ps = -1;
  std::int64_t sim_first_token_ps = -1;
  std::int64_t sim_finish_ps = -1;
};

/// What a ServeEvent describes. Events are the scheduler's push-side
/// observation stream for a network front end: instead of polling
/// request() per id per step (O(requests) copies), a server drains the
/// event log once per step and learns exactly what changed.
enum class ServeEventKind {
  kToken,     // one new token was emitted for `id`
  kTerminal,  // `id` reached a terminal state (state/error filled in)
  kDiscard,   // a transient failure discarded `id`'s partial output and
              // requeued it (a streaming server cannot unsend tokens —
              // it must either have sent none yet, or abort the stream)
};

/// One observation from step()/submit(). Recorded only when
/// SchedulerConfig::record_events is set; drained via drain_events().
struct ServeEvent {
  ServeEventKind kind = ServeEventKind::kToken;
  std::int64_t id = -1;
  std::int64_t step = 0;  // scheduler step the event was recorded at
  int token = -1;         // kToken: the emitted token id
  bool degraded = false;  // kToken: emitted via the digital bypass
  RequestState state = RequestState::kQueued;  // kTerminal: final state
  ServeError error = ServeError::kNone;        // kTerminal: cause
};

/// Bounded-exponential-backoff retry for transient conditions
/// (ServeError::is_transient): KV-pool exhaustion under the reject
/// policy, and maintenance-window drains under MaintenancePolicy::
/// kRequeue. Attempt numbering starts at 1 (the original submission);
/// max_attempts = 1 disables retries entirely.
struct RetryPolicy {
  int max_attempts = 1;
  /// Backoff before attempt k (k >= 2) is
  ///   min(backoff_base_steps * 2^(k-2), backoff_cap_steps)
  /// scheduler steps, plus jitter.
  int backoff_base_steps = 1;
  int backoff_cap_steps = 64;
  /// Max extra steps of jitter, drawn uniformly from a counter-keyed
  /// RNG stream over (scheduler seed, request id, attempt): the same
  /// submission replays the exact same retry schedule, run after run.
  int jitter_steps = 0;
};

/// How admission grows the batch each step.
enum class BatchPolicy {
  /// Greedy batch growth: admit every queued request that fits (slots +
  /// KV budget). Maximizes occupancy; a burst of long prompts convoys
  /// behind one giant prefill step and every TTFT in it pays for the
  /// whole batch.
  kGrowth,
  /// Latency-aware: cap the prompt tokens co-admitted per step
  /// (prefill_tokens_per_step), spreading prefill work across steps so
  /// early arrivals reach their first token sooner on the simulated
  /// clock. The first prefill of a step is always admitted regardless
  /// of budget (no livelock on oversized prompts). Token OUTPUTS are
  /// identical under either policy — request streams are batch
  /// invariant — only latency changes.
  kLatencyAware,
};

const char* to_string(BatchPolicy policy);
/// Parses "growth" / "latency" (case-insensitive); throws
/// std::invalid_argument otherwise.
BatchPolicy batch_policy_from_string(const std::string& s);

/// What happens to the in-flight batch when a maintenance window opens.
enum class MaintenancePolicy {
  /// Keep decoding through the non-destructive digital bypass; every
  /// token emitted inside the window is tallied as degraded.
  kDigitalFallback,
  /// Drain: release slabs and re-queue in-flight requests as retries
  /// (their partial output is discarded to wasted_tokens). Requests
  /// whose retry budget is already spent stay running on the digital
  /// bypass instead — a maintenance window never drops a request.
  kRequeue,
};

struct SchedulerConfig {
  /// Max concurrently running (decoding) requests per step.
  int max_batch = 8;
  /// KV pool budget in tokens; 0 = max_batch * model max_seq.
  std::int64_t kv_budget_tokens = 0;
  /// Max requests waiting in the queue (admitted + running excluded);
  /// submissions beyond this are rejected. 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// When the pool cannot hold a request's worst-case footprint at
  /// admission time: true = reject it (or retry it, if the RetryPolicy
  /// grants attempts), false = leave it queued until retirements free
  /// budget (head-of-line blocking, no overtake — FIFO fairness over
  /// utilization). Backoff-delayed retries may always be overtaken:
  /// they forfeited their queue position when they failed.
  bool reject_on_pool_full = false;
  /// Keep per-token logits rows in RequestRecord (tests only; memory!).
  bool record_logits = false;
  /// Record ServeEvents (token emissions, terminal transitions, output
  /// discards) for drain_events(). A network front end sets this and
  /// drains after every step; with no drainer the log grows unbounded,
  /// so it is off by default.
  bool record_events = false;
  /// Base seed for derived per-request noise streams (and retry jitter).
  std::uint64_t seed = 7102;
  /// Retry/backoff policy for transient conditions.
  RetryPolicy retry;
  /// Optional runtime integrity monitor over the (analog) model. The
  /// scheduler calls inspect() every inspect_every busy steps, so ABFT
  /// flags raised by serving traffic trigger the re-read / refresh /
  /// fallback ladder mid-serve.
  runtime::IntegrityMonitor* monitor = nullptr;
  /// Virtual seconds of serving time one busy step represents; when > 0
  /// the scheduler advances the monitor's drift clock before inspecting.
  float step_dt_s = 0.0f;
  /// Busy steps between monitor inspections; 0 disables the hook.
  int inspect_every = 0;
  /// Steps a maintenance window stays open after the monitor takes any
  /// escalation action (models the wall-clock cost of a re-read /
  /// reprogram the instantaneous simulation hides). 0 = legacy
  /// behavior: actions are treated as free and no window opens —
  /// in-flight requests keep their analog path untouched.
  int maintenance_window_steps = 0;
  /// In-flight handling when a window opens (see MaintenancePolicy).
  MaintenancePolicy maintenance_policy = MaintenancePolicy::kDigitalFallback;
  /// Reject new submissions arriving inside a maintenance window with
  /// ServeError::kMaintenance instead of queueing them (load shedding
  /// for callers that would rather fail fast and retry elsewhere).
  bool reject_during_maintenance = false;
  /// Hardware timing co-simulation (timing.enabled=false is a strict
  /// no-op on the data path: no trace is installed, no replay runs, sim
  /// metrics stay zero). When enabled, every busy step's forward trace
  /// is replayed through timing::HwModel and the simulated clock feeds
  /// Metrics::sim_* — replay-exact at any host thread count.
  timing::TimingConfig timing;
  /// Multi-chip replay: busy steps replay through
  /// timing::HwModel::replay_pipelined — microbatches flow through the
  /// chip pipeline the trace ops' chip/tensor-parallel stamps describe
  /// (stamped by shard::apply_plan), and inter-chip transfer events
  /// feed Metrics::sim_link_*. Requires timing.enabled; meaningless
  /// (but harmless — it degenerates to a microbatched serial chain)
  /// without a shard plan applied to the model.
  bool shard_replay = false;
  /// Admission policy (see BatchPolicy).
  BatchPolicy batch_policy = BatchPolicy::kGrowth;
  /// kLatencyAware prompt-token budget per step; 0 = model max_seq.
  /// Negative values are rejected at construction.
  std::int64_t prefill_tokens_per_step = 0;
};

/// One consistent cross-section of the scheduler for invariant checking
/// (the chaos Auditor): every per-request state and token tally plus the
/// pool's conservation counters, captured under a single lock.
struct AuditSnapshot {
  std::int64_t step = 0;
  bool in_maintenance = false;
  std::size_t queued = 0;   // ids waiting (incl. backoff)
  std::size_t running = 0;  // ids holding a slab
  std::vector<RequestState> states;        // indexed by request id
  std::vector<std::int64_t> token_counts;  // tokens.size() per id
  std::vector<std::int64_t> degraded_counts;  // degraded_tokens per id
  Metrics metrics;  // KV fields filled from the pool
  std::int64_t pool_budget = 0;
  std::int64_t pool_used = 0;
  std::int64_t pool_live = 0;
  std::int64_t pool_acquires = 0;
  std::int64_t pool_releases = 0;
  // Prefix-store conservation (see KvCachePool): at every step
  //   pool_prefix_leases - pool_prefix_lease_releases == pool_prefix_refs
  // and at idle the pool's used tokens are exactly the resident store.
  std::int64_t pool_prefix_tokens = 0;
  std::int64_t pool_prefix_refs = 0;
  std::int64_t pool_prefix_leases = 0;
  std::int64_t pool_prefix_lease_releases = 0;
};

/// FIFO queue + continuous batcher. All public methods are thread-safe;
/// step() itself must be called from one thread at a time (the serving
/// loop), while submit()/cancel() may race it from any thread.
class Scheduler {
 public:
  Scheduler(nn::TransformerLM& model, SchedulerConfig cfg = {});

  /// Enqueue a request. Always returns a request id; invalid requests
  /// (empty prompt, non-positive max_new_tokens, negative deadline,
  /// prompt that cannot fit max_seq, footprint larger than the whole
  /// pool, queue full) are recorded as kRejected with a structured
  /// ServeError instead of throwing.
  std::int64_t submit(RequestParams params);

  /// Request cancellation; takes effect at the next step() boundary.
  /// Returns false for unknown or already-terminal ids.
  bool cancel(std::int64_t id);

  /// Run one scheduling round: apply cancels/deadlines, admit from the
  /// queue, run one batched decode step, retire finished requests.
  /// Returns true if any request is still queued or running afterwards.
  bool step();

  /// step() until idle; returns the number of steps taken.
  std::int64_t run_until_idle();

  /// Snapshot of one request (throws std::out_of_range on unknown id).
  RequestRecord request(std::int64_t id) const;
  /// Terminal states only: finished + cancelled + expired + rejected.
  std::vector<RequestRecord> completed() const;

  std::int64_t current_step() const;
  /// Running + queued request count.
  std::size_t in_flight() const;
  /// True while a maintenance window is open (admission paused,
  /// in-flight decode on the digital bypass).
  bool in_maintenance() const;

  /// Take (and clear) every ServeEvent recorded since the last drain.
  /// Empty unless config().record_events. Thread-safe, like submit().
  std::vector<ServeEvent> drain_events();

  /// Simulated-hardware clock (picoseconds; 0 unless timing enabled).
  std::int64_t sim_now_ps() const;
  /// Per-layer simulated time accumulated over all replayed steps, in
  /// first-appearance order. Empty unless timing is enabled.
  std::vector<timing::LayerTiming> timing_layers() const;

  /// Aggregate metrics snapshot (KV pool fields filled from the pool).
  Metrics metrics() const;
  /// Cheap full cross-section for invariant checking (no logits copies).
  AuditSnapshot audit_snapshot() const;

  const KvCachePool& pool() const { return pool_; }
  const SchedulerConfig& config() const { return cfg_; }

 private:
  struct Active {
    std::int64_t id = -1;
    nn::KvCache* cache = nullptr;  // private slab leased from pool_
    /// Shared prefix leased from the pool's prefix store: the first
    /// base_len prompt tokens' KV rows are read from `base` instead of
    /// being prefilled. Held (refcounted) until retire/requeue.
    const nn::KvCache* base = nullptr;
    std::int64_t base_len = 0;
    std::vector<int> pending;      // tokens to feed next step
    int remaining = 0;             // new tokens still to emit
    std::int64_t deadline_step = -1;  // absolute; -1 = none
    int attempt = 1;               // which attempt this run is
    RequestParams origin;          // full params, kept for requeue/retry
  };
  /// Accepted-but-not-admitted request payloads (queue_ holds only ids).
  struct Pending {
    std::int64_t id = -1;
    RequestParams params;
    int attempt = 1;               // 1 = original submission
    std::int64_t not_before = 0;   // backoff: not admitted before this step
  };

  // All helpers below assume m_ is held.
  std::int64_t footprint(const RequestParams& p) const;
  double now_s() const;
  void emit_token_locked(std::int64_t id, int token, bool degraded);
  void emit_terminal_locked(std::int64_t id, RequestState state,
                            ServeError error);
  void emit_discard_locked(std::int64_t id);
  bool in_maintenance_locked() const { return step_ < maintenance_until_; }
  /// Backoff (incl. keyed jitter) before the given attempt of `id`.
  std::int64_t backoff_steps_locked(std::int64_t id, int attempt) const;
  void reject_locked(RequestRecord& rec, ServeError code, std::string detail);
  void retire_locked(Active& a, RequestState state);
  /// Release the slab, discard the attempt's output and put the request
  /// back in the queue with backoff. Caller erases `a` from running_.
  void requeue_locked(Active& a);
  bool admit_locked();
  /// Open (or extend) a maintenance window after monitor actions.
  void open_maintenance_locked();

  nn::TransformerLM& model_;
  SchedulerConfig cfg_;
  KvCachePool pool_;
  /// Engaged only when cfg_.timing.enabled (construction validates the
  /// timing config); absent = zero timing work anywhere on the path.
  std::optional<timing::HwModel> hw_timing_;

  mutable std::mutex m_;
  std::chrono::steady_clock::time_point epoch_;
  std::int64_t next_id_ = 0;
  std::int64_t step_ = 0;
  std::int64_t maintenance_until_ = 0;  // window open while step_ < this
  std::deque<std::int64_t> queue_;    // ids waiting for admission
  std::vector<Pending> params_;       // payloads of queued requests
  std::vector<Active> running_;       // current batch, admission order
  // step() batch scratch: rebuilt each step, capacity reused. Only
  // step() touches it (step is single-caller; submit/cancel don't).
  std::vector<nn::TransformerLM::ServeSegment> segments_;
  std::vector<std::int64_t> cancels_;  // ids flagged since last step
  std::vector<RequestRecord> records_;  // indexed by id
  std::vector<ServeEvent> events_;    // pending drain_events() payload
  std::vector<double> submit_s_;      // wall submit time per id (epoch-rel)
  Metrics metrics_;
  int busy_since_inspect_ = 0;
  double dt_accum_s_ = 0.0;
  // Timing co-sim state (untouched when hw_timing_ is absent). trace_
  // is cleared and re-filled by each traced forward; sim_now_ps_
  // advances by each busy step's replayed duration.
  timing::Trace trace_;
  std::int64_t sim_now_ps_ = 0;
  std::vector<timing::LayerTiming> timing_layers_;
};

}  // namespace nora::serve
