// Continuous-batching scheduler over the analog transformer.
//
// Requests (prompt, max_new_tokens, optional deadline) enter a FIFO
// queue; each step() the scheduler admits queued requests into the
// running batch as slots and KV budget allow, then drives ONE
// TransformerLM::forward_serve over the whole batch — newly admitted
// requests contribute their full prompt as a prefill segment, running
// requests contribute their single next-token decode segment. A request
// joins at any step and retires the moment it is done; its KV slab goes
// straight back to the pool, so the batch recomposes continuously
// instead of draining in static generations.
//
// Determinism contract: each request's noise stream is keyed on its own
// (stream seed, request-local position) — see cim::StreamKey — so its
// tokens AND logits are bit-identical whether it is served alone,
// batched with any mix of other requests, or replayed across runs, at
// any thread-pool width. Scheduling decisions use only the deterministic
// step counter; wall time feeds metrics exclusively.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "nn/transformer.hpp"
#include "runtime/integrity_monitor.hpp"
#include "serve/kv_cache_pool.hpp"
#include "serve/metrics.hpp"

namespace nora::serve {

enum class RequestState {
  kQueued,     // accepted, waiting for a batch slot / KV slab
  kRunning,    // admitted; holds a KV slab, decoding
  kFinished,   // emitted max_new_tokens (or hit its cache capacity)
  kCancelled,  // cancel() before finishing; partial output kept
  kExpired,    // deadline passed before finishing
  kRejected,   // refused at submit (invalid / queue full / pool policy)
};

const char* to_string(RequestState state);

struct RequestParams {
  std::vector<int> prompt;
  int max_new_tokens = 8;
  /// Steps after submission by which the request must FINISH; 0 = none.
  std::int64_t deadline_steps = 0;
  /// Noise-stream key for this request's rows; 0 derives one from the
  /// scheduler seed and the request id. Two requests with the same seed
  /// and prompt produce identical output — that is the reproducibility
  /// hook, not a bug.
  std::uint64_t stream_seed = 0;
};

struct RequestRecord {
  std::int64_t id = -1;
  RequestState state = RequestState::kQueued;
  std::uint64_t stream = 0;
  std::vector<int> tokens;  // generated so far (partial on cancel/expire)
  /// Last-position logits row per generated token (record_logits only) —
  /// what the batch-invariance property test compares bitwise.
  std::vector<std::vector<float>> logits;
  std::int64_t prompt_tokens = 0;
  std::int64_t submit_step = -1;
  std::int64_t start_step = -1;        // admission step
  std::int64_t first_token_step = -1;  // TTFT on the step clock
  std::int64_t finish_step = -1;
  double ttft_s = 0.0;
  double wall_s = 0.0;
  std::string reject_reason;
};

struct SchedulerConfig {
  /// Max concurrently running (decoding) requests per step.
  int max_batch = 8;
  /// KV pool budget in tokens; 0 = max_batch * model max_seq.
  std::int64_t kv_budget_tokens = 0;
  /// Max requests waiting in the queue (admitted + running excluded);
  /// submissions beyond this are rejected. 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// When the pool cannot hold a request's worst-case footprint at
  /// admission time: true = reject it outright, false = leave it queued
  /// until retirements free budget (head-of-line blocking, no overtake —
  /// FIFO fairness over utilization).
  bool reject_on_pool_full = false;
  /// Keep per-token logits rows in RequestRecord (tests only; memory!).
  bool record_logits = false;
  /// Base seed for derived per-request noise streams.
  std::uint64_t seed = 7102;
  /// Optional runtime integrity monitor over the (analog) model. The
  /// scheduler calls inspect() every inspect_every busy steps, so ABFT
  /// flags raised by serving traffic trigger the re-read / refresh /
  /// fallback ladder mid-serve. In-flight requests keep their KV caches
  /// and stream keys across an action, so decoding continues unharmed.
  runtime::IntegrityMonitor* monitor = nullptr;
  /// Virtual seconds of serving time one busy step represents; when > 0
  /// the scheduler advances the monitor's drift clock before inspecting.
  float step_dt_s = 0.0f;
  /// Busy steps between monitor inspections; 0 disables the hook.
  int inspect_every = 0;
};

/// FIFO queue + continuous batcher. All public methods are thread-safe;
/// step() itself must be called from one thread at a time (the serving
/// loop), while submit()/cancel() may race it from any thread.
class Scheduler {
 public:
  Scheduler(nn::TransformerLM& model, SchedulerConfig cfg = {});

  /// Enqueue a request. Always returns a request id; invalid requests
  /// (empty prompt, non-positive max_new_tokens, prompt that cannot fit
  /// max_seq, footprint larger than the whole pool, queue full) are
  /// recorded as kRejected with a reason instead of throwing.
  std::int64_t submit(RequestParams params);

  /// Request cancellation; takes effect at the next step() boundary.
  /// Returns false for unknown or already-terminal ids.
  bool cancel(std::int64_t id);

  /// Run one scheduling round: apply cancels/deadlines, admit from the
  /// queue, run one batched decode step, retire finished requests.
  /// Returns true if any request is still queued or running afterwards.
  bool step();

  /// step() until idle; returns the number of steps taken.
  std::int64_t run_until_idle();

  /// Snapshot of one request (throws std::out_of_range on unknown id).
  RequestRecord request(std::int64_t id) const;
  /// Terminal states only: finished + cancelled + expired + rejected.
  std::vector<RequestRecord> completed() const;

  std::int64_t current_step() const;
  /// Running + queued request count.
  std::size_t in_flight() const;

  /// Aggregate metrics snapshot (KV pool fields filled from the pool).
  Metrics metrics() const;

  const KvCachePool& pool() const { return pool_; }
  const SchedulerConfig& config() const { return cfg_; }

 private:
  struct Active {
    std::int64_t id = -1;
    nn::KvCache* cache = nullptr;  // leased from pool_ while running
    std::vector<int> pending;      // tokens to feed next step
    int remaining = 0;             // new tokens still to emit
    std::int64_t deadline_step = -1;  // absolute; -1 = none
  };
  /// Accepted-but-not-admitted request payloads (queue_ holds only ids).
  struct Pending {
    std::int64_t id = -1;
    RequestParams params;
  };

  // All helpers below assume m_ is held.
  std::int64_t footprint(const RequestParams& p) const;
  double now_s() const;
  void retire_locked(Active& a, RequestState state);
  bool admit_locked();

  nn::TransformerLM& model_;
  SchedulerConfig cfg_;
  KvCachePool pool_;

  mutable std::mutex m_;
  std::chrono::steady_clock::time_point epoch_;
  std::int64_t next_id_ = 0;
  std::int64_t step_ = 0;
  std::deque<std::int64_t> queue_;    // ids waiting for admission
  std::vector<Pending> params_;       // payloads of queued requests
  std::vector<Active> running_;       // current batch, admission order
  // step() batch scratch: rebuilt each step, capacity reused. Only
  // step() touches it (step is single-caller; submit/cancel don't).
  std::vector<nn::TransformerLM::ServeSegment> segments_;
  std::vector<std::int64_t> cancels_;  // ids flagged since last step
  std::vector<RequestRecord> records_;  // indexed by id
  std::vector<double> submit_s_;      // wall submit time per id (epoch-rel)
  Metrics metrics_;
  int busy_since_inspect_ = 0;
  double dt_accum_s_ = 0.0;
};

}  // namespace nora::serve
