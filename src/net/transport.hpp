// Byte-stream transport abstraction for the HTTP front end.
//
// The server's connection state machine reads and writes through this
// interface, so the SAME code path is driven two ways:
//
//   * TcpTransport — a real nonblocking socket accepted by TcpListener,
//     used by nora_serve and bench/serve_load;
//   * SimTransport — one end of a deterministic in-memory byte pipe with
//     bounded capacity, used by the chaos harness and unit tests. Every
//     read/write moves exactly the bytes the caller asked for (subject
//     to capacity), nothing depends on kernel buffering or timing, so a
//     chaos soak over sim transports is replay-exact from its seed.
//
// Bounded pipe capacity is what makes the sim honest about backpressure:
// a stalled reader fills the pipe, the server's write() starts returning
// kAgain, its write buffer grows, and the write-stall machinery has to
// actually work — exactly like a zero-window TCP peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace nora::net {

class Transport {
 public:
  /// read()/write() result conventions (mirroring nonblocking sockets):
  /// > 0 bytes moved; kAgain = would block, try later; kEof = peer
  /// closed cleanly (read only); kError = connection reset / broken.
  static constexpr std::ptrdiff_t kAgain = -1;
  static constexpr std::ptrdiff_t kEof = -2;
  static constexpr std::ptrdiff_t kError = -3;

  virtual ~Transport() = default;

  virtual std::ptrdiff_t read(char* buf, std::size_t n) = 0;
  virtual std::ptrdiff_t write(const char* buf, std::size_t n) = 0;
  /// Close this end; idempotent. Peer reads drain buffered bytes then
  /// see kEof; peer writes see kError.
  virtual void close() = 0;
  virtual bool closed() const = 0;
  /// OS descriptor for poller registration; -1 for simulated transports.
  virtual int fd() const { return -1; }
};

/// One end of an in-memory duplex pipe. Create with make_sim_pair();
/// both ends stay valid until both unique_ptrs die (shared core).
class SimTransport : public Transport {
 public:
  std::ptrdiff_t read(char* buf, std::size_t n) override;
  std::ptrdiff_t write(const char* buf, std::size_t n) override;
  void close() override;
  bool closed() const override;

  /// Bytes buffered and waiting for this end to read.
  std::size_t readable() const;
  /// True if the peer closed (kEof after draining) — lets a pump loop
  /// know this end is worth polling.
  bool peer_closed() const;

  struct Core;  // shared pipe state

 private:
  friend std::pair<std::unique_ptr<SimTransport>, std::unique_ptr<SimTransport>>
  make_sim_pair(std::size_t capacity);
  SimTransport(std::shared_ptr<Core> core, int side);
  std::shared_ptr<Core> core_;
  int side_;  // 0 or 1
};

/// A connected pair of sim endpoints; `capacity` bounds each direction
/// independently (like a socket buffer).
std::pair<std::unique_ptr<SimTransport>, std::unique_ptr<SimTransport>>
make_sim_pair(std::size_t capacity = 4096);

/// A real nonblocking TCP connection (client or accepted).
class TcpTransport : public Transport {
 public:
  /// Takes ownership of a connected nonblocking fd.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  std::ptrdiff_t read(char* buf, std::size_t n) override;
  std::ptrdiff_t write(const char* buf, std::size_t n) override;
  void close() override;
  bool closed() const override;
  int fd() const override { return fd_; }

  /// Nonblocking connect to 127.0.0.1:port; returns nullptr on
  /// immediate failure. The connection may still be in progress — poll
  /// for writability before use (a failed connect surfaces as kError).
  static std::unique_ptr<TcpTransport> connect_local(int port);

 private:
  int fd_ = -1;
};

/// Listening TCP socket on 127.0.0.1 (loopback only: this is a bench /
/// demo server, not something to expose on an interface).
class TcpListener {
 public:
  /// port 0 = ephemeral; bound port readable via port().
  TcpListener(int port, int backlog);
  ~TcpListener();

  /// Accept one pending connection (nonblocking); nullptr when none.
  std::unique_ptr<TcpTransport> accept();

  int fd() const { return fd_; }
  int port() const { return port_; }
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace nora::net
