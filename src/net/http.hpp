// Incremental, bounded HTTP/1.1 request parser and response encoding.
//
// The parser is written for a hostile network: it consumes bytes as they
// arrive (a slow-loris client that dribbles one byte per second makes
// progress checks, not crashes), enforces hard ceilings on request-line,
// header-block and body sizes, and turns every malformed input into a
// structured error with the HTTP status the server should answer with
// (400/413/431/501/505) instead of throwing. One parser instance serves
// a whole keep-alive connection: reset() arms it for the next request
// and any pipelined bytes already received are kept.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nora::net {

struct HttpRequest {
  std::string method;   // uppercase by convention of the sender
  std::string target;   // origin-form, e.g. "/v1/completions?x=1"
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  // Connection semantics already resolved

  /// Case-insensitive single-header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;
  /// Target path without the query string.
  std::string path() const;
};

struct HttpLimits {
  /// Request line + headers, including all CRLFs (431 beyond this).
  std::size_t max_header_bytes = 8192;
  /// Declared Content-Length ceiling (413 beyond this).
  std::size_t max_body_bytes = 65536;
};

class HttpParser {
 public:
  enum class Status {
    kNeedMore,  // incomplete; feed more bytes
    kComplete,  // request() is valid; reset() before the next request
    kError,     // protocol violation; error_status()/error() describe it
  };

  explicit HttpParser(HttpLimits limits = {});

  /// Append bytes and advance the parse. Once kComplete or kError is
  /// reached, further feed() calls buffer the bytes but do not parse
  /// (pipelined data waits for reset()).
  Status feed(std::string_view data);
  /// Re-examine already-buffered bytes (used by reset() internally and
  /// after construction with leftover data).
  Status advance();

  Status status() const { return status_; }
  const HttpRequest& request() const { return req_; }
  /// HTTP status code the server should answer a kError parse with.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// True once any byte of the *current* request has been seen — the
  /// header-timeout clock starts here, not at connection accept.
  bool started() const { return started_; }

  /// Arm for the next request on the same connection, keeping (and
  /// immediately parsing) any pipelined bytes already buffered.
  Status reset();

 private:
  enum class Phase { kHeaders, kBody, kDone, kFailed };

  Status fail(int status, std::string msg);
  bool parse_head(std::string_view head);

  HttpLimits limits_;
  Phase phase_ = Phase::kHeaders;
  Status status_ = Status::kNeedMore;
  std::string buf_;          // unconsumed input
  HttpRequest req_;
  std::size_t body_needed_ = 0;
  bool started_ = false;
  int error_status_ = 400;
  std::string error_;
};

/// Reason phrase for the handful of statuses the server emits.
const char* http_status_text(int code);

/// A complete non-chunked response with Content-Length.
std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          std::string_view extra_headers = {});

/// Response head that opens a chunked stream (no terminating blank-line
/// chunk yet); follow with http_chunk() calls and http_last_chunk().
std::string http_chunked_head(int status, std::string_view content_type,
                              bool keep_alive,
                              std::string_view extra_headers = {});
std::string http_chunk(std::string_view payload);
std::string_view http_last_chunk();

}  // namespace nora::net
