#include "net/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nora::net {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::int64_t JsonValue::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

double JsonValue::get_double(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}
JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}
JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.arr_ = std::move(a);
  return v;
}
JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParseResult run() {
    JsonParseResult r;
    skip_ws();
    if (!parse_value(r.value, 0)) {
      r.error = error_;
      r.offset = pos_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      r.error = "trailing characters after document";
      r.offset = pos_;
      return r;
    }
    r.ok = true;
    r.offset = pos_;
    return r;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("unexpected end of document");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return fail("invalid literal");
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return fail("invalid literal");
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return fail("invalid literal");
        out = JsonValue::make_null();
        return true;
      default:
        // Rejects NaN/Infinity/-Infinity by construction: only a digit
        // or minus may start a number.
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail(std::string("unexpected character '") + c + "'");
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;  // leading zero may not be followed by digits
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("leading zero in number");
      }
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string num(text_.substr(start, pos_ - start));
    const double d = std::strtod(num.c_str(), nullptr);
    if (!std::isfinite(d)) return fail("number out of range");
    out = JsonValue::make_number(d);
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (eof()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // BMP-only UTF-8 encoding; surrogate pairs are passed through
          // as two 3-byte sequences (lossless for round-tripping, which
          // is all the serving layer needs).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(arr));
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("object key must be a string");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      if (obj.count(key) > 0) return fail("duplicate object key '" + key + "'");
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  int max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

std::string json_check(std::string_view text) {
  const JsonParseResult r = json_parse(text);
  return r.ok ? std::string() : r.error;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace nora::net
