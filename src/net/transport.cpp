#include "net/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace nora::net {

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

struct SimTransport::Core {
  explicit Core(std::size_t cap) : capacity(cap) {}
  std::size_t capacity;
  // pipes[d]: bytes flowing from side d to side 1-d.
  std::deque<char> pipes[2];
  bool side_closed[2] = {false, false};
};

SimTransport::SimTransport(std::shared_ptr<Core> core, int side)
    : core_(std::move(core)), side_(side) {}

std::pair<std::unique_ptr<SimTransport>, std::unique_ptr<SimTransport>>
make_sim_pair(std::size_t capacity) {
  auto core = std::make_shared<SimTransport::Core>(capacity);
  std::unique_ptr<SimTransport> a(new SimTransport(core, 0));
  std::unique_ptr<SimTransport> b(new SimTransport(core, 1));
  return {std::move(a), std::move(b)};
}

std::ptrdiff_t SimTransport::read(char* buf, std::size_t n) {
  if (core_->side_closed[side_]) return kError;  // read after own close
  auto& pipe = core_->pipes[1 - side_];
  if (pipe.empty()) {
    return core_->side_closed[1 - side_] ? kEof : kAgain;
  }
  const std::size_t take = std::min(n, pipe.size());
  for (std::size_t i = 0; i < take; ++i) {
    buf[i] = pipe.front();
    pipe.pop_front();
  }
  return static_cast<std::ptrdiff_t>(take);
}

std::ptrdiff_t SimTransport::write(const char* buf, std::size_t n) {
  if (core_->side_closed[side_]) return kError;
  if (core_->side_closed[1 - side_]) return kError;  // EPIPE
  auto& pipe = core_->pipes[side_];
  if (pipe.size() >= core_->capacity) return kAgain;
  const std::size_t room = core_->capacity - pipe.size();
  const std::size_t put = std::min(n, room);
  if (put == 0) return kAgain;
  pipe.insert(pipe.end(), buf, buf + put);
  return static_cast<std::ptrdiff_t>(put);
}

void SimTransport::close() { core_->side_closed[side_] = true; }

bool SimTransport::closed() const { return core_->side_closed[side_]; }

std::size_t SimTransport::readable() const {
  return core_->pipes[1 - side_].size();
}

bool SimTransport::peer_closed() const {
  return core_->side_closed[1 - side_];
}

// ---------------------------------------------------------------------------
// TcpTransport / TcpListener
// ---------------------------------------------------------------------------

namespace {
void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("net: fcntl(O_NONBLOCK) failed: " +
                             std::string(std::strerror(errno)));
  }
}
}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  set_nonblocking(fd_);
  // Token chunks are a few dozen bytes; without TCP_NODELAY Nagle would
  // batch them behind delayed ACKs and wreck TTFT/TPOT measurements.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpTransport::~TcpTransport() { close(); }

std::ptrdiff_t TcpTransport::read(char* buf, std::size_t n) {
  if (fd_ < 0) return kError;
  const ssize_t r = ::recv(fd_, buf, n, 0);
  if (r > 0) return r;
  if (r == 0) return kEof;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return kAgain;
  return kError;
}

std::ptrdiff_t TcpTransport::write(const char* buf, std::size_t n) {
  if (fd_ < 0) return kError;
  const ssize_t r = ::send(fd_, buf, n, MSG_NOSIGNAL);
  if (r >= 0) return r;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return kAgain;
  return kError;
}

void TcpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpTransport::closed() const { return fd_ < 0; }

std::unique_ptr<TcpTransport> TcpTransport::connect_local(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    return nullptr;
  }
  const int r = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr));
  if (r < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpTransport>(fd);
}

TcpListener::TcpListener(int port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("net: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net: bind(127.0.0.1:" + std::to_string(port) +
                             ") failed: " + err);
  }
  if (::listen(fd_, backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net: listen() failed: " + err);
  }
  set_nonblocking(fd_);
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpTransport> TcpListener::accept() {
  if (fd_ < 0) return nullptr;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return nullptr;  // EAGAIN / transient — caller retries
  return std::make_unique<TcpTransport>(cfd);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace nora::net
