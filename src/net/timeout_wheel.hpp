// Hashed timeout wheel on a monotonic millisecond clock.
//
// The server arms exactly one deadline per connection (idle, header, or
// write-stall, depending on the connection's phase) and re-arms it on
// every phase change or byte of write progress. A wheel makes that
// churn O(1): schedule/cancel are constant-time, and expire() touches
// only the slots the clock actually crossed. Cancellation is lazy — a
// cancelled or rescheduled entry stays in its slot and is discarded
// when its slot comes around, checked against the live-deadline map.
//
// The clock source is the caller's: real servers pass
// steady_clock-derived ms, deterministic harnesses pass virtual ms
// (step * step_ms), which is what makes timeout behavior replayable in
// the chaos soak.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace nora::net {

class TimeoutWheel {
 public:
  /// tick_ms: slot granularity (deadlines round up to the next tick);
  /// slots: wheel size — one rotation covers tick_ms * slots.
  explicit TimeoutWheel(std::int64_t tick_ms = 50, std::size_t slots = 256);

  /// Arm (or re-arm) `key` to fire at deadline_ms. One deadline per key.
  void schedule(std::uint64_t key, std::int64_t deadline_ms);
  /// Disarm; a later expire() will not report the key.
  void cancel(std::uint64_t key);

  /// Append every key whose deadline is <= now_ms to `out` (disarming
  /// it), advancing the wheel. now_ms must be monotonic non-decreasing.
  void expire(std::int64_t now_ms, std::vector<std::uint64_t>& out);

  /// Earliest live deadline, or -1 when nothing is armed (gives the
  /// poll loop its sleep bound). O(live entries) worst case, but only
  /// consulted when the server is otherwise idle.
  std::int64_t next_deadline() const;

  std::size_t armed() const { return live_.size(); }

 private:
  struct Entry {
    std::uint64_t key;
    std::int64_t deadline_ms;
  };
  std::size_t slot_for(std::int64_t deadline_ms) const;

  std::int64_t tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  std::unordered_map<std::uint64_t, std::int64_t> live_;  // key -> deadline
  std::int64_t last_tick_ = 0;  // wheel position in ticks
};

}  // namespace nora::net
