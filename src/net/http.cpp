#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace nora::net {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Token characters legal in an HTTP method (RFC 9110 tchar, abridged).
bool is_method_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '-' ||
         c == '_';
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

std::string HttpRequest::path() const {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

HttpParser::HttpParser(HttpLimits limits) : limits_(limits) {}

HttpParser::Status HttpParser::fail(int status, std::string msg) {
  phase_ = Phase::kFailed;
  status_ = Status::kError;
  error_status_ = status;
  error_ = std::move(msg);
  return status_;
}

HttpParser::Status HttpParser::feed(std::string_view data) {
  buf_.append(data.data(), data.size());
  return advance();
}

HttpParser::Status HttpParser::advance() {
  if (phase_ == Phase::kDone || phase_ == Phase::kFailed) return status_;
  if (phase_ == Phase::kHeaders) {
    if (!buf_.empty()) started_ = true;
    const std::size_t end = buf_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buf_.size() > limits_.max_header_bytes) {
        return fail(431, "header block exceeds " +
                             std::to_string(limits_.max_header_bytes) +
                             " bytes");
      }
      return status_ = Status::kNeedMore;
    }
    if (end + 4 > limits_.max_header_bytes) {
      return fail(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    const std::string head = buf_.substr(0, end);
    buf_.erase(0, end + 4);
    if (!parse_head(head)) return status_;  // fail() already recorded
    if (body_needed_ == 0) {
      phase_ = Phase::kDone;
      return status_ = Status::kComplete;
    }
    phase_ = Phase::kBody;
  }
  // Body phase: take exactly Content-Length bytes; surplus stays
  // buffered for the next (pipelined) request.
  if (buf_.size() < body_needed_) return status_ = Status::kNeedMore;
  req_.body = buf_.substr(0, body_needed_);
  buf_.erase(0, body_needed_);
  body_needed_ = 0;
  phase_ = Phase::kDone;
  return status_ = Status::kComplete;
}

bool HttpParser::parse_head(std::string_view head) {
  // ---- request line ----------------------------------------------------
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() ||
      !std::all_of(method.begin(), method.end(), is_method_char)) {
    fail(400, "malformed method token");
    return false;
  }
  if (target.empty() || target[0] != '/') {
    fail(400, "target must be origin-form (start with '/')");
    return false;
  }
  if (version == "HTTP/1.1") {
    req_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    req_.version_minor = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    fail(505, "unsupported HTTP version '" + std::string(version) + "'");
    return false;
  } else {
    fail(400, "malformed HTTP version");
    return false;
  }
  req_.method.assign(method);
  req_.target.assign(target);

  // ---- headers ---------------------------------------------------------
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  bool have_length = false;
  std::size_t content_length = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view h = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (h.empty()) continue;
    if (h[0] == ' ' || h[0] == '\t') {
      fail(400, "obsolete header folding rejected");
      return false;
    }
    const std::size_t colon = h.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      fail(400, "malformed header field");
      return false;
    }
    const std::string_view name = h.substr(0, colon);
    if (name.back() == ' ' || name.back() == '\t') {
      fail(400, "whitespace before header colon");
      return false;
    }
    const std::string_view value = trim(h.substr(colon + 1));
    req_.headers.emplace_back(std::string(name), std::string(value));

    if (iequals(name, "Content-Length")) {
      if (have_length) {
        fail(400, "duplicate Content-Length");
        return false;
      }
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(), [](char c) {
            return c >= '0' && c <= '9';
          }) ||
          value.size() > 18) {
        fail(400, "malformed Content-Length");
        return false;
      }
      content_length = 0;
      for (const char c : value) {
        content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
      }
      have_length = true;
    } else if (iequals(name, "Transfer-Encoding")) {
      // We never need chunked *requests* (bodies are tiny JSON) and a
      // permissive half-implementation is how request-smuggling bugs
      // happen — refuse loudly instead.
      fail(501, "Transfer-Encoding requests not supported");
      return false;
    }
  }
  if (have_length && content_length > limits_.max_body_bytes) {
    fail(413, "body of " + std::to_string(content_length) +
                  " bytes exceeds limit " +
                  std::to_string(limits_.max_body_bytes));
    return false;
  }
  body_needed_ = have_length ? content_length : 0;

  // ---- connection semantics -------------------------------------------
  req_.keep_alive = req_.version_minor >= 1;
  if (const std::string* conn = req_.header("Connection")) {
    if (iequals(*conn, "close")) req_.keep_alive = false;
    if (iequals(*conn, "keep-alive")) req_.keep_alive = true;
  }
  return true;
}

HttpParser::Status HttpParser::reset() {
  phase_ = Phase::kHeaders;
  status_ = Status::kNeedMore;
  req_ = HttpRequest{};
  body_needed_ = 0;
  started_ = !buf_.empty();
  error_status_ = 400;
  error_.clear();
  return advance();
}

const char* http_status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

namespace {
std::string response_head(int status, std::string_view content_type,
                          bool keep_alive, std::string_view extra_headers) {
  std::string s = "HTTP/1.1 " + std::to_string(status) + " " +
                  http_status_text(status) + "\r\n";
  s += "Content-Type: ";
  s += content_type;
  s += "\r\n";
  s += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  if (!extra_headers.empty()) s += extra_headers;  // caller supplies CRLFs
  return s;
}
}  // namespace

std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          std::string_view extra_headers) {
  std::string s = response_head(status, content_type, keep_alive,
                                extra_headers);
  s += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  s.append(body.data(), body.size());
  return s;
}

std::string http_chunked_head(int status, std::string_view content_type,
                              bool keep_alive,
                              std::string_view extra_headers) {
  std::string s = response_head(status, content_type, keep_alive,
                                extra_headers);
  s += "Transfer-Encoding: chunked\r\n\r\n";
  return s;
}

std::string http_chunk(std::string_view payload) {
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", payload.size());
  std::string s = size_line;
  s.append(payload.data(), payload.size());
  s += "\r\n";
  return s;
}

std::string_view http_last_chunk() { return "0\r\n\r\n"; }

}  // namespace nora::net
