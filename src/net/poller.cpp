#include "net/poller.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace nora::net {

Poller::Poller(bool force_poll) {
  const char* env = std::getenv("NORA_NET_FORCE_POLL");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') force_poll = true;
#ifdef __linux__
  if (!force_poll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      throw std::runtime_error("net: epoll_create1 failed: " +
                               std::string(std::strerror(errno)));
    }
  }
#else
  (void)force_poll;
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::add(int fd, std::uint64_t key, bool want_read, bool want_write) {
  interest_[fd] = Interest{key, want_read, want_write};
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = key;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw std::runtime_error("net: epoll_ctl(ADD) failed: " +
                               std::string(std::strerror(errno)));
    }
  }
#endif
}

void Poller::modify(int fd, std::uint64_t key, bool want_read,
                    bool want_write) {
  interest_[fd] = Interest{key, want_read, want_write};
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = key;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw std::runtime_error("net: epoll_ctl(MOD) failed: " +
                               std::string(std::strerror(errno)));
    }
  }
#endif
}

void Poller::remove(int fd) {
  interest_.erase(fd);
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);  // best-effort
  }
#endif
}

int Poller::wait(std::vector<Event>& out, int timeout_ms) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event evs[256];
    const int n = ::epoll_wait(epoll_fd_, evs, 256, timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR
    for (int i = 0; i < n; ++i) {
      Event e;
      e.key = evs[i].data.u64;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return n;
  }
#endif
  // poll(2) fallback.
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> keys;
  fds.reserve(interest_.size());
  keys.reserve(interest_.size());
  for (const auto& [fd, in] : interest_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((in.want_read ? POLLIN : 0) |
                                  (in.want_write ? POLLOUT : 0));
    fds.push_back(p);
    keys.push_back(in.key);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n <= 0) return 0;
  int count = 0;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    Event e;
    e.key = keys[i];
    e.readable = (fds[i].revents & (POLLIN | POLLHUP)) != 0;
    e.writable = (fds[i].revents & POLLOUT) != 0;
    e.error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
    ++count;
  }
  return count;
}

}  // namespace nora::net
