#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "net/json.hpp"
#include "net/signals.hpp"

namespace nora::net {

namespace {
/// Poller keys reserved for non-connection fds.
constexpr std::uint64_t kListenerKey = 0;
constexpr std::uint64_t kWakeKey = 1;
constexpr std::uint64_t kFirstConnKey = 2;

/// Canned shed response, written best-effort to over-cap connections.
constexpr std::string_view kShedBody =
    "{\"error\":\"connection_cap\",\"detail\":\"server at max connections\"}";
}  // namespace

int http_status_for(serve::ServeError code) {
  switch (code) {
    case serve::ServeError::kNone:
      return 200;
    case serve::ServeError::kEmptyPrompt:
    case serve::ServeError::kMaxTokensNonPositive:
    case serve::ServeError::kDeadlineNegative:
    case serve::ServeError::kPromptTooLong:
      return 400;  // the request itself is invalid; retrying cannot help
    case serve::ServeError::kFootprintOverBudget:
      return 413;  // too large for this deployment, ever
    case serve::ServeError::kQueueFull:
      return 429;  // back off and retry: admission pressure
    case serve::ServeError::kMaintenance:
    case serve::ServeError::kPoolExhausted:
    case serve::ServeError::kRetryBudgetExhausted:
      return 503;  // substrate momentarily unable; transient by taxonomy
    case serve::ServeError::kCount:
      break;
  }
  return 500;
}

std::string NetMetrics::to_json(std::int64_t active_now) const {
  std::string s = "{";
  auto add = [&s](const char* k, std::int64_t v, bool comma = true) {
    s += std::string("\"") + k + "\":" + std::to_string(v);
    if (comma) s += ",";
  };
  add("accepted", accepted);
  add("active", active_now);
  add("max_active", max_active);
  add("shed", shed);
  add("closed", closed);
  add("requests", requests);
  add("responses_2xx", responses_2xx);
  add("responses_4xx", responses_4xx);
  add("responses_5xx", responses_5xx);
  add("malformed", malformed);
  add("completions", completions);
  add("streams_started", streams_started);
  add("chunks_sent", chunks_sent);
  add("header_timeouts", header_timeouts);
  add("idle_timeouts", idle_timeouts);
  add("write_stall_cancels", write_stall_cancels);
  add("disconnect_cancels", disconnect_cancels);
  add("overflow_closes", overflow_closes);
  add("discard_aborts", discard_aborts);
  add("drain_cancels", drain_cancels);
  add("bytes_in", bytes_in);
  add("bytes_out", bytes_out, /*comma=*/false);
  s += "}";
  return s;
}

HttpServer::HttpServer(serve::Scheduler& sched, ServerConfig cfg)
    : sched_(sched),
      cfg_(cfg),
      wheel_(cfg.wheel_tick_ms, 256) {
  if (!sched_.config().record_events) {
    throw std::invalid_argument(
        "HttpServer: SchedulerConfig::record_events must be true (the "
        "server streams tokens from drain_events())");
  }
  if (cfg_.max_connections < 1) {
    throw std::invalid_argument("HttpServer: max_connections must be >= 1");
  }
}

HttpServer::~HttpServer() {
  for (auto& [key, c] : conns_) {
    if (c->t != nullptr) c->t->close();
  }
}

std::int64_t HttpServer::steady_now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int HttpServer::retry_after_s() const {
  // RetryPolicy hint: one backoff quantum at the observed step rate.
  // Before any step has been timed, assume a conservative 10 ms/step.
  const double step_s = ewma_step_s_ > 0.0 ? ewma_step_s_ : 0.01;
  const double secs =
      std::ceil(static_cast<double>(
                    sched_.config().retry.backoff_base_steps) *
                step_s);
  return static_cast<int>(std::clamp(secs, 1.0, 60.0));
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

void HttpServer::arm_deadline(Conn& c, std::int64_t now_ms) {
  Conn::DeadlineKind want = Conn::DeadlineKind::kNone;
  if (pending_out(c) > 0) {
    want = Conn::DeadlineKind::kWriteStall;
  } else if (c.req_id >= 0) {
    // Waiting on the scheduler with nothing queued: bounded by the
    // request's own deadline_steps and the drain machinery, not by a
    // socket timer.
    want = Conn::DeadlineKind::kNone;
  } else if (c.parser.started()) {
    want = Conn::DeadlineKind::kHeader;
  } else {
    want = Conn::DeadlineKind::kIdle;
  }
  if (want == c.deadline) return;  // keep the armed budget running
  c.deadline = want;
  switch (want) {
    case Conn::DeadlineKind::kNone:
      wheel_.cancel(c.key);
      break;
    case Conn::DeadlineKind::kHeader:
      wheel_.schedule(c.key, now_ms + cfg_.header_timeout_ms);
      break;
    case Conn::DeadlineKind::kIdle:
      wheel_.schedule(c.key, now_ms + cfg_.idle_timeout_ms);
      break;
    case Conn::DeadlineKind::kWriteStall:
      wheel_.schedule(c.key, now_ms + cfg_.write_stall_timeout_ms);
      break;
  }
}

void HttpServer::expire_deadlines(std::int64_t now_ms) {
  expired_scratch_.clear();
  wheel_.expire(now_ms, expired_scratch_);
  for (const std::uint64_t key : expired_scratch_) {
    const auto it = conns_.find(key);
    if (it == conns_.end()) continue;
    Conn& c = *it->second;
    const Conn::DeadlineKind kind = c.deadline;
    c.deadline = Conn::DeadlineKind::kNone;
    switch (kind) {
      case Conn::DeadlineKind::kHeader:
        // The head never completed inside its whole-request budget:
        // classic slow-loris. Answer 408 and drop the connection.
        ++net_metrics_.header_timeouts;
        queue_response(c, 408, "{\"error\":\"header_timeout\"}", now_ms, {},
                       /*close_after=*/true);
        break;
      case Conn::DeadlineKind::kIdle:
        ++net_metrics_.idle_timeouts;
        c.dead = true;
        break;
      case Conn::DeadlineKind::kWriteStall:
        // The client stopped draining its stream. It stalls only
        // itself: cancel the scheduler request (slab back to the pool)
        // and drop the connection — no point writing a goodbye the
        // peer is not reading.
        abort_request(c, &net_metrics_.write_stall_cancels);
        c.dead = true;
        break;
      case Conn::DeadlineKind::kNone:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Output path
// ---------------------------------------------------------------------------

void HttpServer::queue_bytes(Conn& c, std::string_view bytes,
                             std::int64_t now_ms) {
  if (c.dead) return;
  // Compact the flushed prefix once it dominates the buffer.
  if (c.out_off > 4096 && c.out_off * 2 > c.out.size()) {
    c.out.erase(0, c.out_off);
    c.out_off = 0;
  }
  c.out.append(bytes.data(), bytes.size());
  handle_writable(c, now_ms);  // opportunistic immediate flush
  if (!c.dead) {
    arm_deadline(c, now_ms);
    update_poller_interest(c);
  }
}

void HttpServer::queue_response(Conn& c, int status, std::string_view body,
                                std::int64_t now_ms,
                                std::string_view extra_headers,
                                bool close_after) {
  if (status >= 200 && status < 300) ++net_metrics_.responses_2xx;
  else if (status >= 400 && status < 500) ++net_metrics_.responses_4xx;
  else if (status >= 500) ++net_metrics_.responses_5xx;
  const bool keep_alive = !close_after && !c.want_close;
  if (close_after) c.want_close = true;
  queue_bytes(c,
              http_response(status, "application/json", body, keep_alive,
                            extra_headers),
              now_ms);
}

void HttpServer::handle_writable(Conn& c, std::int64_t now_ms) {
  if (c.dead || c.t == nullptr) return;
  bool progressed = false;
  while (pending_out(c) > 0) {
    const std::ptrdiff_t r =
        c.t->write(c.out.data() + c.out_off, pending_out(c));
    if (r > 0) {
      c.out_off += static_cast<std::size_t>(r);
      net_metrics_.bytes_out += r;
      progressed = true;
      continue;
    }
    if (r == Transport::kAgain) break;
    // kError: peer reset under us.
    abort_request(c, &net_metrics_.disconnect_cancels);
    c.dead = true;
    return;
  }
  if (pending_out(c) == 0) {
    c.out.clear();
    c.out_off = 0;
    if (c.want_close) {
      c.dead = true;
      return;
    }
    arm_deadline(c, now_ms);
  } else if (progressed && c.deadline == Conn::DeadlineKind::kWriteStall) {
    // Forward progress re-arms the stall budget.
    c.deadline = Conn::DeadlineKind::kNone;
    arm_deadline(c, now_ms);
  }
  update_poller_interest(c);
}

void HttpServer::update_poller_interest(Conn& c) {
  if (poller_ == nullptr || c.t == nullptr || c.t->fd() < 0 || !c.registered) {
    return;
  }
  const bool want_write = pending_out(c) > 0;
  if (want_write == c.poller_writable) return;
  c.poller_writable = want_write;
  poller_->modify(c.t->fd(), c.key, /*want_read=*/true, want_write);
}

// ---------------------------------------------------------------------------
// Input path
// ---------------------------------------------------------------------------

void HttpServer::handle_readable(Conn& c, std::int64_t now_ms) {
  if (c.dead || c.t == nullptr) return;
  char buf[4096];
  // Bounded sweep per pump: a fire-hose sender cannot starve the loop.
  for (int i = 0; i < 8; ++i) {
    const std::ptrdiff_t r = c.t->read(buf, sizeof(buf));
    if (r > 0) {
      net_metrics_.bytes_in += r;
      c.parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
      continue;
    }
    if (r == Transport::kAgain) break;
    // EOF or reset. Mid-request disconnects cancel the scheduler work.
    abort_request(c, &net_metrics_.disconnect_cancels);
    c.dead = true;
    return;
  }
  if (c.req_id >= 0) return;  // pipelined bytes parked until terminal
  dispatch(c, now_ms);
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

void HttpServer::dispatch(Conn& c, std::int64_t now_ms) {
  // Loop: a keep-alive reset may reveal a fully-buffered pipelined
  // request; serve it in the same sweep. A closing connection has
  // already said its last word — in particular an errored parser must
  // answer exactly once, not once per pump while the close flushes.
  while (!c.dead && !c.want_close && c.req_id < 0) {
    const HttpParser::Status st = c.parser.status();
    if (st == HttpParser::Status::kNeedMore) {
      arm_deadline(c, now_ms);
      return;
    }
    if (st == HttpParser::Status::kError) {
      ++net_metrics_.malformed;
      queue_response(c, c.parser.error_status(),
                     "{\"error\":\"malformed_request\",\"detail\":" +
                         json_escape(c.parser.error()) + "}",
                     now_ms, {}, /*close_after=*/true);
      return;
    }
    ++net_metrics_.requests;
    const HttpRequest& req = c.parser.request();
    const std::string path = req.path();
    if (path == "/healthz") {
      if (req.method != "GET") {
        queue_response(c, 405, "{\"error\":\"method_not_allowed\"}", now_ms);
      } else if (draining_) {
        queue_response(c, 503, "{\"status\":\"draining\"}", now_ms,
                       "Retry-After: 5\r\n");
      } else {
        queue_response(c, 200, "{\"status\":\"ok\"}", now_ms);
      }
      finish_response(c, now_ms);
      continue;
    }
    if (path == "/metrics") {
      if (req.method != "GET") {
        queue_response(c, 405, "{\"error\":\"method_not_allowed\"}", now_ms);
      } else {
        queue_response(c, 200, metrics_json(), now_ms);
      }
      finish_response(c, now_ms);
      continue;
    }
    if (path == "/v1/completions") {
      if (req.method != "POST") {
        queue_response(c, 405, "{\"error\":\"method_not_allowed\"}", now_ms);
        finish_response(c, now_ms);
        continue;
      }
      dispatch_completion(c, now_ms);
      if (c.req_id >= 0) return;  // streaming/waiting; no reset yet
      continue;
    }
    queue_response(c, 404, "{\"error\":\"not_found\"}", now_ms);
    finish_response(c, now_ms);
  }
}

void HttpServer::dispatch_completion(Conn& c, std::int64_t now_ms) {
  if (draining_) {
    queue_response(c, 503,
                   "{\"error\":\"draining\",\"detail\":\"server is "
                   "shutting down\"}",
                   now_ms,
                   "Retry-After: " + std::to_string(retry_after_s()) + "\r\n",
                   /*close_after=*/true);
    return;
  }
  const HttpRequest& req = c.parser.request();
  const JsonParseResult parsed = json_parse(req.body);
  if (!parsed.ok || !parsed.value.is_object()) {
    queue_response(c, 400,
                   "{\"error\":\"bad_json\",\"detail\":" +
                       json_escape(parsed.ok ? "body must be a JSON object"
                                             : parsed.error) +
                       "}",
                   now_ms);
    finish_response(c, now_ms);
    return;
  }
  const JsonValue* prompt = parsed.value.find("prompt");
  if (prompt == nullptr || !prompt->is_array() || prompt->as_array().empty()) {
    queue_response(c, 400,
                   "{\"error\":\"bad_request\",\"detail\":\"'prompt' must "
                   "be a non-empty array of token ids\"}",
                   now_ms);
    finish_response(c, now_ms);
    return;
  }
  if (prompt->as_array().size() >
      static_cast<std::size_t>(cfg_.max_prompt_tokens)) {
    queue_response(c, 413,
                   "{\"error\":\"prompt_too_long\",\"detail\":\"limit " +
                       std::to_string(cfg_.max_prompt_tokens) + " tokens\"}",
                   now_ms);
    finish_response(c, now_ms);
    return;
  }
  serve::RequestParams params;
  params.prompt.reserve(prompt->as_array().size());
  for (const JsonValue& v : prompt->as_array()) {
    if (!v.is_number()) {
      queue_response(c, 400,
                     "{\"error\":\"bad_request\",\"detail\":\"'prompt' "
                     "entries must be numbers\"}",
                     now_ms);
      finish_response(c, now_ms);
      return;
    }
    params.prompt.push_back(static_cast<int>(v.as_int()));
  }
  params.max_new_tokens = static_cast<int>(parsed.value.get_int(
      "max_new_tokens", cfg_.default_max_new_tokens));
  params.deadline_steps = parsed.value.get_int("deadline_steps", 0);
  params.stream_seed = static_cast<std::uint64_t>(
      parsed.value.get_int("stream_seed", 0));
  if (params.stream_seed == 0 && cfg_.fingerprint_streams) {
    // Derive the noise stream from the prompt head (FNV-1a) so repeat
    // prompts and multi-turn continuations share a stream — the
    // precondition for a KV prefix-cache hit. 0 stays reserved as the
    // "derive from request id" sentinel, so force the top bit.
    std::uint64_t h = 1469598103934665603ull;
    const std::size_t k = std::min(
        params.prompt.size(),
        static_cast<std::size_t>(std::max(cfg_.fingerprint_tokens, 1)));
    for (std::size_t i = 0; i < k; ++i) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
          params.prompt[i]));
      h *= 1099511628211ull;
    }
    params.stream_seed = h | (1ull << 63);
  }
  const bool stream = parsed.value.get_bool("stream", true);

  const std::int64_t id = sched_.submit(std::move(params));
  const serve::RequestRecord rec = sched_.request(id);
  if (rec.state == serve::RequestState::kRejected) {
    // Admission backpressure surfaces here, synchronously: map the
    // structured ServeError onto a status, with a Retry-After hint for
    // the transient codes (the client-side mirror of the RetryPolicy).
    const int status = http_status_for(rec.error);
    std::string extra;
    if (status == 429 || status == 503) {
      extra = "Retry-After: " + std::to_string(retry_after_s()) + "\r\n";
    }
    queue_response(c, status,
                   "{\"error\":" +
                       json_escape(serve::to_string(rec.error)) +
                       ",\"detail\":" + json_escape(rec.error_detail) +
                       ",\"id\":" + std::to_string(id) + "}",
                   now_ms, extra);
    finish_response(c, now_ms);
    return;
  }
  ++net_metrics_.completions;
  c.req_id = id;
  c.streaming = stream;
  c.streamed_tokens = 0;
  req_conn_[id] = c.key;
  if (stream) {
    ++net_metrics_.streams_started;
    ++net_metrics_.responses_2xx;
    queue_bytes(c,
                http_chunked_head(200, "application/json",
                                  c.parser.request().keep_alive) +
                    http_chunk("{\"id\":" + std::to_string(id) + "}\n"),
                now_ms);
  }
  arm_deadline(c, now_ms);
}

void HttpServer::finish_response(Conn& c, std::int64_t now_ms) {
  if (c.dead || c.want_close) return;
  const bool keep_alive = c.parser.request().keep_alive && !draining_;
  if (!keep_alive) {
    c.want_close = true;
    if (pending_out(c) == 0) c.dead = true;
    return;
  }
  c.parser.reset();  // re-parses any pipelined bytes already buffered
  arm_deadline(c, now_ms);
}

// ---------------------------------------------------------------------------
// Scheduler event routing (the streaming hot path)
// ---------------------------------------------------------------------------

void HttpServer::route_events(std::int64_t now_ms) {
  for (const serve::ServeEvent& ev : sched_.drain_events()) {
    const auto it = req_conn_.find(ev.id);
    if (it == req_conn_.end()) continue;  // not ours / already aborted
    const auto cit = conns_.find(it->second);
    if (cit == conns_.end()) {
      req_conn_.erase(it);
      continue;
    }
    Conn& c = *cit->second;
    switch (ev.kind) {
      case serve::ServeEventKind::kToken: {
        if (!c.streaming || c.dead) break;
        std::string payload =
            "{\"token\":" + std::to_string(ev.token);
        if (ev.degraded) payload += ",\"degraded\":true";
        payload += "}\n";
        const std::string chunk = http_chunk(payload);
        if (pending_out(c) + chunk.size() > cfg_.max_write_buffer_bytes) {
          // Bounded buffer: the slow client pays, nobody else queues
          // behind it. The stream is unfinishable — cancel and drop.
          ++net_metrics_.overflow_closes;
          abort_request(c, nullptr);
          c.dead = true;
          break;
        }
        ++net_metrics_.chunks_sent;
        ++c.streamed_tokens;
        queue_bytes(c, chunk, now_ms);
        break;
      }
      case serve::ServeEventKind::kDiscard: {
        // A transient failure requeued the request and discarded its
        // partial output. Chunks already on the wire cannot be unsent:
        // if anything was streamed, abort the stream (cancel; the
        // terminal event closes it out). A stream with nothing sent
        // yet, or a non-streaming request, just waits for the retry.
        if (c.streaming && c.streamed_tokens > 0) {
          ++net_metrics_.discard_aborts;
          sched_.cancel(ev.id);
        }
        break;
      }
      case serve::ServeEventKind::kTerminal: {
        if (c.streaming) {
          std::string payload = "{\"done\":true,\"state\":" +
                                json_escape(serve::to_string(ev.state));
          if (ev.error != serve::ServeError::kNone) {
            payload +=
                ",\"error\":" + json_escape(serve::to_string(ev.error));
          }
          payload += ",\"generated\":" +
                     std::to_string(c.streamed_tokens) + "}\n";
          queue_bytes(c, http_chunk(payload) +
                             std::string(http_last_chunk()),
                      now_ms);
        } else {
          const serve::RequestRecord rec = sched_.request(ev.id);
          std::string body = "{\"id\":" + std::to_string(ev.id) +
                             ",\"state\":" +
                             json_escape(serve::to_string(rec.state)) +
                             ",\"tokens\":[";
          for (std::size_t i = 0; i < rec.tokens.size(); ++i) {
            if (i > 0) body += ",";
            body += std::to_string(rec.tokens[i]);
          }
          body += "],\"degraded_tokens\":" +
                  std::to_string(rec.degraded_tokens);
          if (rec.error != serve::ServeError::kNone) {
            body += ",\"error\":" + json_escape(serve::to_string(rec.error)) +
                    ",\"detail\":" + json_escape(rec.error_detail);
          }
          body += "}";
          // Admission-time rejects (pool pressure after retries, expiry)
          // reach a non-streaming client as a proper error status.
          const int status = rec.state == serve::RequestState::kRejected
                                 ? http_status_for(rec.error)
                                 : 200;
          std::string extra;
          if (status == 429 || status == 503) {
            extra = "Retry-After: " + std::to_string(retry_after_s()) +
                    "\r\n";
          }
          queue_response(c, status, body, now_ms, extra);
        }
        req_conn_.erase(it);
        c.req_id = -1;
        c.streaming = false;
        c.streamed_tokens = 0;
        finish_response(c, now_ms);
        if (!c.dead && c.req_id < 0 && !c.want_close) {
          dispatch(c, now_ms);  // serve a parked pipelined request
        }
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void HttpServer::abort_request(Conn& c, std::int64_t* counter) {
  if (c.req_id < 0) return;
  sched_.cancel(c.req_id);
  req_conn_.erase(c.req_id);
  c.req_id = -1;
  c.streaming = false;
  c.streamed_tokens = 0;
  if (counter != nullptr) ++(*counter);
}

void HttpServer::close_conn(Conn& c) {
  wheel_.cancel(c.key);
  if (c.t != nullptr) {
    if (poller_ != nullptr && c.registered && c.t->fd() >= 0) {
      poller_->remove(c.t->fd());
    }
    c.t->close();
  }
  ++net_metrics_.closed;
}

void HttpServer::reap_dead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->dead) {
      Conn& c = *it->second;
      // A dead connection with an un-aborted request (e.g. killed by
      // the drain deadline) must not leak its scheduler entry.
      abort_request(c, nullptr);
      close_conn(c);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t HttpServer::adopt(std::unique_ptr<Transport> t,
                                std::int64_t now_ms) {
  if (static_cast<int>(conns_.size()) >= cfg_.max_connections) {
    // Listen-queue shedding: one canned 503, best-effort, then close.
    // Drain whatever the client already sent first — closing a TCP
    // socket with unread inbound bytes raises RST, which would destroy
    // the 503 before the peer can read it.
    ++net_metrics_.shed;
    char sink[1024];
    while (t->read(sink, sizeof(sink)) > 0) {
    }
    const std::string resp = http_response(
        503, "application/json", kShedBody, /*keep_alive=*/false,
        "Retry-After: " + std::to_string(retry_after_s()) + "\r\n");
    t->write(resp.data(), resp.size());
    t->close();
    return 0;
  }
  auto conn = std::make_unique<Conn>();
  Conn& c = *conn;
  c.key = next_key_++;
  c.t = std::move(t);
  c.parser = HttpParser(HttpLimits{cfg_.max_header_bytes, cfg_.max_body_bytes});
  ++net_metrics_.accepted;
  conns_.emplace(c.key, std::move(conn));
  net_metrics_.max_active = std::max(
      net_metrics_.max_active, static_cast<std::int64_t>(conns_.size()));
  if (poller_ != nullptr && c.t->fd() >= 0) {
    poller_->add(c.t->fd(), c.key, /*want_read=*/true, /*want_write=*/false);
    c.registered = true;
  }
  arm_deadline(c, now_ms);
  return c.key;
}

void HttpServer::accept_pending(std::int64_t now_ms) {
  if (listener_ == nullptr || draining_) return;
  while (true) {
    std::unique_ptr<TcpTransport> t = listener_->accept();
    if (t == nullptr) break;
    adopt(std::move(t), now_ms);
  }
}

void HttpServer::step_scheduler_once() {
  if (!cfg_.step_scheduler || sched_.in_flight() == 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  sched_.step();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ewma_step_s_ = ewma_step_s_ > 0.0 ? 0.9 * ewma_step_s_ + 0.1 * dt : dt;
}

void HttpServer::request_shutdown(std::int64_t now_ms) {
  if (draining_) return;
  draining_ = true;
  drain_deadline_ms_ = now_ms + cfg_.drain_timeout_ms;
  if (listener_ != nullptr) listener_->close();
  // Idle keep-alive connections have nothing left to wait for.
  for (auto& [key, c] : conns_) {
    if (c->req_id < 0 && pending_out(*c) == 0 && !c->parser.started()) {
      c->dead = true;
    } else if (c->req_id < 0) {
      c->want_close = true;
    }
  }
  reap_dead();
}

bool HttpServer::drained() const {
  return draining_ && conns_.empty() && req_conn_.empty();
}

bool HttpServer::pump(std::int64_t now_ms) {
  accept_pending(now_ms);
  // I/O sweep. Sim transports have no readiness source, so every
  // connection gets a nonblocking read/write attempt; kAgain is cheap.
  for (auto& [key, c] : conns_) {
    if (!c->dead) handle_readable(*c, now_ms);
    if (!c->dead && pending_out(*c) > 0) handle_writable(*c, now_ms);
  }
  expire_deadlines(now_ms);
  step_scheduler_once();
  route_events(now_ms);
  if (draining_ && drain_deadline_ms_ >= 0 && now_ms >= drain_deadline_ms_) {
    for (auto& [key, c] : conns_) {
      if (c->req_id >= 0) abort_request(*c, &net_metrics_.drain_cancels);
      c->dead = true;
    }
  }
  reap_dead();
  return !conns_.empty() || !req_conn_.empty() ||
         (cfg_.step_scheduler && sched_.in_flight() > 0);
}

void HttpServer::listen() {
  if (listener_ != nullptr) return;
  listener_ =
      std::make_unique<TcpListener>(cfg_.port, cfg_.listen_backlog);
}

int HttpServer::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

int HttpServer::run() {
  listen();
  poller_ = std::make_unique<Poller>(cfg_.force_poll);
  poller_->add(listener_->fd(), kListenerKey, /*want_read=*/true,
               /*want_write=*/false);
  if (shutdown_wake_fd() >= 0) {
    poller_->add(shutdown_wake_fd(), kWakeKey, /*want_read=*/true,
                 /*want_write=*/false);
  }
  std::vector<Poller::Event> events;
  while (true) {
    std::int64_t now = steady_now_ms();
    if (shutdown_requested() && !draining_) request_shutdown(now);
    if (shutdown_signal_count() >= 2) {
      // The operator insisted: abandon the drain.
      for (auto& [key, c] : conns_) {
        abort_request(*c, &net_metrics_.drain_cancels);
        c->dead = true;
      }
      reap_dead();
      poller_.reset();
      return 1;
    }
    if (drained()) {
      poller_.reset();
      return 0;
    }
    int timeout_ms = 100;  // upper bound; also the shutdown-flag poll rate
    if (cfg_.step_scheduler && sched_.in_flight() > 0) {
      timeout_ms = 0;  // decode work pending: don't sleep on the poller
    } else {
      const std::int64_t next = wheel_.next_deadline();
      if (next >= 0) {
        timeout_ms = static_cast<int>(
            std::clamp<std::int64_t>(next - now, 0, 100));
      }
      if (draining_ && drain_deadline_ms_ >= 0) {
        timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
            drain_deadline_ms_ - now, 0, timeout_ms));
      }
    }
    events.clear();
    poller_->wait(events, timeout_ms);
    now = steady_now_ms();
    for (const Poller::Event& ev : events) {
      if (ev.key == kListenerKey) {
        accept_pending(now);
        continue;
      }
      if (ev.key == kWakeKey) {
        drain_wake_fd();  // flag handled at the top of the loop
        continue;
      }
      const auto it = conns_.find(ev.key);
      if (it == conns_.end()) continue;
      Conn& c = *it->second;
      if (ev.error && !ev.readable) {
        abort_request(c, &net_metrics_.disconnect_cancels);
        c.dead = true;
        continue;
      }
      if (ev.readable) handle_readable(c, now);
      if (ev.writable && !c.dead) handle_writable(c, now);
    }
    expire_deadlines(now);
    step_scheduler_once();
    route_events(now);
    if (draining_ && drain_deadline_ms_ >= 0 && now >= drain_deadline_ms_) {
      for (auto& [key, c] : conns_) {
        if (c->req_id >= 0) abort_request(*c, &net_metrics_.drain_cancels);
        c->dead = true;
      }
    }
    reap_dead();
  }
}

std::string HttpServer::metrics_json() const {
  return "{\"serve\":" + sched_.metrics().to_json() + ",\"net\":" +
         net_metrics_.to_json(static_cast<std::int64_t>(conns_.size())) + "}";
}

}  // namespace nora::net
