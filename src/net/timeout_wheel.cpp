#include "net/timeout_wheel.hpp"

#include <algorithm>
#include <stdexcept>

namespace nora::net {

TimeoutWheel::TimeoutWheel(std::int64_t tick_ms, std::size_t slots)
    : tick_ms_(tick_ms), slots_(slots) {
  if (tick_ms < 1 || slots < 2) {
    throw std::invalid_argument("TimeoutWheel: tick_ms >= 1, slots >= 2");
  }
}

std::size_t TimeoutWheel::slot_for(std::int64_t deadline_ms) const {
  // Round the deadline UP to a tick so an entry never fires early.
  const std::int64_t tick = (deadline_ms + tick_ms_ - 1) / tick_ms_;
  return static_cast<std::size_t>(tick) % slots_.size();
}

void TimeoutWheel::schedule(std::uint64_t key, std::int64_t deadline_ms) {
  live_[key] = deadline_ms;  // stale slot entries are skipped lazily
  slots_[slot_for(deadline_ms)].push_back(Entry{key, deadline_ms});
}

void TimeoutWheel::cancel(std::uint64_t key) { live_.erase(key); }

void TimeoutWheel::expire(std::int64_t now_ms, std::vector<std::uint64_t>& out) {
  if (live_.empty()) {
    last_tick_ = now_ms / tick_ms_;
    return;
  }
  const std::int64_t now_tick = now_ms / tick_ms_;
  // Walk every slot the clock crossed since the last expire, plus one
  // tick ahead: slots are keyed on the deadline rounded UP, so an entry
  // due now may live in slot now_tick+1. The deadline comparison below
  // keeps future entries in that slot from firing early. Cap the walk
  // at one full rotation (further laps revisit the same slots).
  const std::int64_t ticks =
      std::min<std::int64_t>(now_tick + 1 - last_tick_,
                             static_cast<std::int64_t>(slots_.size()));
  for (std::int64_t t = 0; t <= ticks; ++t) {
    const std::size_t s =
        static_cast<std::size_t>(last_tick_ + t) % slots_.size();
    auto& slot = slots_[s];
    for (std::size_t i = 0; i < slot.size();) {
      const Entry& e = slot[i];
      const auto it = live_.find(e.key);
      if (it == live_.end() || it->second != e.deadline_ms) {
        // Cancelled or re-armed elsewhere: lazy-delete.
        slot[i] = slot.back();
        slot.pop_back();
        continue;
      }
      if (e.deadline_ms <= now_ms) {
        out.push_back(e.key);
        live_.erase(it);
        slot[i] = slot.back();
        slot.pop_back();
        continue;
      }
      ++i;  // same slot, a future rotation
    }
  }
  last_tick_ = now_tick;
}

std::int64_t TimeoutWheel::next_deadline() const {
  std::int64_t best = -1;
  for (const auto& [key, deadline] : live_) {
    if (best < 0 || deadline < best) best = deadline;
  }
  return best;
}

}  // namespace nora::net
