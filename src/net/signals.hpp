// SIGINT/SIGTERM handling for serving loops and long-running benches.
//
// The handler does the only two async-signal-safe things that help: it
// sets a flag and writes one byte to a self-pipe. Loops either poll
// shutdown_requested() at their step boundary (benches) or register
// wake_fd() with their Poller so a signal interrupts a blocking wait
// immediately (the server). A second signal while a graceful drain is
// in progress is the operator insisting — callers should treat
// shutdown_signal_count() >= 2 as "stop now, skip the drain".
#pragma once

namespace nora::net {

/// Install handlers for SIGINT and SIGTERM. Idempotent; first call wins.
void install_signal_handlers();

/// True once any handled signal arrived.
bool shutdown_requested();

/// How many handled signals have arrived (2+ = abandon graceful drain).
int shutdown_signal_count();

/// Read end of the self-pipe; becomes readable when a signal lands.
/// -1 until install_signal_handlers() ran. Never read it empty —
/// drain_wake_fd() does the nonblocking drain.
int shutdown_wake_fd();
void drain_wake_fd();

/// Tests only: forget previous signals (handlers stay installed).
void reset_shutdown_flag();

}  // namespace nora::net
