// Minimal recursive-descent JSON reader for the network front end.
//
// Two jobs, both dependency-free: (a) parse the tiny request bodies the
// completion endpoint accepts, (b) act as the well-formedness oracle for
// everything the repo serializes (Metrics::to_json, /metrics, bench
// output) — a strict parser rejects unbalanced braces, unquoted keys,
// trailing commas and the NaN/Inf literals printf likes to emit.
//
// Strictness over features: no comments, no trailing commas, UTF-8
// passed through untouched, \uXXXX unescaped only for the BMP. Depth is
// bounded so hostile bodies cannot blow the stack.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nora::net {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map: deterministic iteration order for re-serialization.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Typed conveniences with fallbacks (absent or wrong type → fallback).
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;       // human-readable, with byte offset
  std::size_t offset = 0;  // where parsing stopped / failed
};

/// Parse one complete JSON document. Trailing non-whitespace after the
/// document is an error (a concatenation bug, not a document).
JsonParseResult json_parse(std::string_view text, int max_depth = 64);

/// Well-formedness check: empty string on success, else the parse error.
std::string json_check(std::string_view text);

/// Serialize a string with full JSON escaping (quotes included).
std::string json_escape(std::string_view s);

}  // namespace nora::net
