// Readiness notification: epoll on Linux with a poll(2) fallback.
//
// The fallback is selectable at runtime (Poller(force_poll=true) or
// NORA_NET_FORCE_POLL=1) so the poll path stays exercised on the same
// CI machines that run the epoll path — a fallback that only compiles
// on platforms nobody tests is a fallback that does not work.
// Level-triggered semantics on both paths: the server re-arms interest
// per connection as its write buffer fills and drains.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace nora::net {

class Poller {
 public:
  struct Event {
    std::uint64_t key = 0;
    bool readable = false;
    bool writable = false;
    bool error = false;  // HUP / ERR: the connection needs tearing down
  };

  explicit Poller(bool force_poll = false);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, std::uint64_t key, bool want_read, bool want_write);
  void modify(int fd, std::uint64_t key, bool want_read, bool want_write);
  void remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever, 0 = poll and return).
  /// Appends ready events to `out` (not cleared). Returns event count,
  /// 0 on timeout; EINTR reports as 0 so signal wake-ups fall through
  /// to the caller's shutdown check.
  int wait(std::vector<Event>& out, int timeout_ms);

  bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;  // -1 = poll fallback
  struct Interest {
    std::uint64_t key;
    bool want_read;
    bool want_write;
  };
  std::unordered_map<int, Interest> interest_;  // poll fallback bookkeeping
};

}  // namespace nora::net
