#include "net/signals.hpp"

#include <atomic>
#include <csignal>

#include <fcntl.h>
#include <unistd.h>

namespace nora::net {

namespace {

std::atomic<int> g_signal_count{0};
int g_pipe[2] = {-1, -1};
std::atomic<bool> g_installed{false};

void on_signal(int) {
  g_signal_count.fetch_add(1, std::memory_order_relaxed);
  if (g_pipe[1] >= 0) {
    const char b = 1;
    // Best-effort, async-signal-safe; a full pipe already wakes the poller.
    [[maybe_unused]] const auto r = ::write(g_pipe[1], &b, 1);
  }
}

}  // namespace

void install_signal_handlers() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  if (::pipe(g_pipe) == 0) {
    ::fcntl(g_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);
  } else {
    g_pipe[0] = g_pipe[1] = -1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking poll/epoll must wake
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_signal_count.load(std::memory_order_relaxed) > 0;
}

int shutdown_signal_count() {
  return g_signal_count.load(std::memory_order_relaxed);
}

int shutdown_wake_fd() { return g_pipe[0]; }

void drain_wake_fd() {
  if (g_pipe[0] < 0) return;
  char buf[64];
  while (::read(g_pipe[0], buf, sizeof(buf)) > 0) {
  }
}

void reset_shutdown_flag() {
  g_signal_count.store(0, std::memory_order_relaxed);
  drain_wake_fd();
}

}  // namespace nora::net
