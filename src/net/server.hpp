// Fault-tolerant HTTP/1.1 front end for serve::Scheduler.
//
// A single-threaded, nonblocking server: one event loop owns the
// listener, every connection, the timeout wheel AND the scheduler's
// step() slot (step() is documented single-caller; submit()/cancel()
// are thread-safe so nothing else changes). Each connection runs the
// state machine
//
//   read -> parse (incremental, bounded) -> submit -> stream -> drain
//
// with exactly one armed deadline at a time: header timeout while a
// request is incomplete (slow-loris defense — the budget covers the
// WHOLE head, not each byte), idle timeout between requests, and a
// write-stall timeout whenever bytes are queued and the client is not
// draining them. A stalled or vanished client costs the system one
// Scheduler::cancel — never a stuck step loop, never a leaked KV slab.
//
// Robustness mapping at the edge:
//   * malformed request        -> 400/413/431/501/505, connection closed
//   * scheduler reject         -> ServeError-mapped status (see
//     http_status_for): invalid request 400/413, queue full 429 +
//     Retry-After, maintenance / pool pressure / retry budget 503 +
//     Retry-After (hint derived from the RetryPolicy backoff and the
//     observed step rate)
//   * connection cap           -> 503 shed at accept
//   * SIGTERM/SIGINT           -> graceful drain: stop accepting,
//     finish in-flight streams, 503 new work, force-cancel at the
//     drain deadline, exit 0
//
// Determinism: the loop never consults wall time directly — every
// decision takes `now_ms` from the caller. run() feeds steady_clock;
// tests and the chaos harness feed a virtual clock and SimTransports,
// which makes connection-lifecycle chaos replay-exact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/http.hpp"
#include "net/poller.hpp"
#include "net/timeout_wheel.hpp"
#include "net/transport.hpp"
#include "serve/scheduler.hpp"

namespace nora::net {

/// ServeError -> HTTP status. 200 for kNone (not an error).
int http_status_for(serve::ServeError code);

/// Connection/HTTP outcome counters, reported at /metrics next to the
/// scheduler's serving metrics.
struct NetMetrics {
  std::int64_t accepted = 0;   // connections accepted or adopted
  std::int64_t shed = 0;       // refused over max_connections (503)
  std::int64_t closed = 0;
  std::int64_t max_active = 0;
  std::int64_t requests = 0;   // complete requests parsed
  std::int64_t responses_2xx = 0;
  std::int64_t responses_4xx = 0;
  std::int64_t responses_5xx = 0;
  std::int64_t malformed = 0;         // parse/protocol errors
  std::int64_t completions = 0;       // submitted to the scheduler
  std::int64_t streams_started = 0;   // chunked responses opened
  std::int64_t chunks_sent = 0;       // token chunks queued
  std::int64_t header_timeouts = 0;   // slow-loris kills (408)
  std::int64_t idle_timeouts = 0;     // keep-alive reaping
  std::int64_t write_stall_cancels = 0;   // stalled reader -> cancel
  std::int64_t disconnect_cancels = 0;    // client vanished mid-request
  std::int64_t overflow_closes = 0;       // write buffer cap exceeded
  std::int64_t discard_aborts = 0;        // requeue after tokens streamed
  std::int64_t drain_cancels = 0;         // drain deadline force-cancels
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;

  std::string to_json(std::int64_t active_now) const;
};

struct ServerConfig {
  int port = 0;               // 0 = ephemeral (port() after listen())
  int listen_backlog = 128;
  int max_connections = 1024;
  std::size_t max_header_bytes = 8192;
  std::size_t max_body_bytes = 65536;
  /// Per-connection pending-write cap. Streaming appends beyond this
  /// mean the client is hopelessly slow: the request is cancelled and
  /// the connection dropped. Complete (non-chunked) responses may
  /// exceed it transiently — they are bounded by construction.
  std::size_t max_write_buffer_bytes = 65536;
  std::int64_t idle_timeout_ms = 30000;
  std::int64_t header_timeout_ms = 5000;
  std::int64_t write_stall_timeout_ms = 5000;
  /// After request_shutdown(): how long in-flight requests may keep
  /// running before they are force-cancelled.
  std::int64_t drain_timeout_ms = 30000;
  std::int64_t wheel_tick_ms = 50;
  int default_max_new_tokens = 16;
  /// Hard cap on prompt length accepted at the HTTP layer (the
  /// scheduler applies its own max_seq check on top).
  int max_prompt_tokens = 4096;
  /// pump()/run() drive Scheduler::step(). Set false when an outer
  /// harness (the chaos soak) owns the step loop.
  bool step_scheduler = true;
  bool force_poll = false;  // use the poll(2) path even where epoll exists
  /// Requests that do not pass an explicit "stream_seed" get one derived
  /// from a fingerprint of their prompt's leading tokens instead of the
  /// scheduler's per-request-id default. Same prompt head -> same noise
  /// stream, which is what makes the KV prefix cache hit across HTTP
  /// requests (the pool only shares rows between requests on the same
  /// stream — see serve::KvCachePool). Clients that want statistically
  /// independent replays of the same prompt pass their own seeds.
  bool fingerprint_streams = true;
  /// Leading prompt tokens hashed into the fingerprint. Prompts agreeing
  /// on this many head tokens land on the same stream; the pool then
  /// shares exactly their common prefix.
  int fingerprint_tokens = 16;
};

class HttpServer {
 public:
  /// The scheduler's config().record_events must be true — the server
  /// streams from drain_events(). Throws std::invalid_argument if not.
  HttpServer(serve::Scheduler& sched, ServerConfig cfg);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // ---- real-socket mode -------------------------------------------------
  /// Bind + listen on 127.0.0.1:cfg.port. Throws on failure.
  void listen();
  int port() const;
  /// Event loop until drained (request_shutdown() via signal or call).
  /// Returns 0 on a clean drain, 1 if the drain was abandoned (second
  /// signal or drain deadline with connections still open).
  int run();

  // ---- deterministic mode (tests, chaos harness) ------------------------
  /// Add a connection over an arbitrary transport (usually a sim pipe).
  /// Returns the connection key (0 = shed at the connection cap).
  std::uint64_t adopt(std::unique_ptr<Transport> t, std::int64_t now_ms);
  /// One nonblocking iteration at virtual time now_ms: I/O sweep over
  /// all connections, timeouts, optional scheduler step, event routing.
  /// Returns true while any connection or server-owned request lives.
  bool pump(std::int64_t now_ms);

  // ---- drain ------------------------------------------------------------
  void request_shutdown(std::int64_t now_ms);
  bool draining() const { return draining_; }
  /// True once draining finished: no connections, no owned requests.
  bool drained() const;

  std::size_t connections() const { return conns_.size(); }
  const NetMetrics& net_metrics() const { return net_metrics_; }
  /// {"serve":<scheduler metrics>,"net":<connection metrics>}
  std::string metrics_json() const;
  serve::Scheduler& scheduler() { return sched_; }

 private:
  struct Conn {
    std::uint64_t key = 0;
    std::unique_ptr<Transport> t;
    HttpParser parser;
    std::string out;            // bytes queued for the client
    std::size_t out_off = 0;    // flushed prefix (compacted lazily)
    std::int64_t req_id = -1;   // scheduler request in flight, -1 = none
    bool streaming = false;     // chunked response in progress
    std::size_t streamed_tokens = 0;
    bool want_close = false;    // close once out is flushed
    bool dead = false;          // tear down at end of sweep
    enum class DeadlineKind { kNone, kHeader, kIdle, kWriteStall };
    DeadlineKind deadline = DeadlineKind::kNone;
    bool registered = false;    // poller registration (real fds only)
    bool poller_writable = false;  // current EPOLLOUT interest
  };

  std::size_t pending_out(const Conn& c) const { return c.out.size() - c.out_off; }
  void arm_deadline(Conn& c, std::int64_t now_ms);
  void queue_bytes(Conn& c, std::string_view bytes, std::int64_t now_ms);
  void queue_response(Conn& c, int status, std::string_view body,
                      std::int64_t now_ms, std::string_view extra_headers = {},
                      bool close_after = false);
  void handle_readable(Conn& c, std::int64_t now_ms);
  void handle_writable(Conn& c, std::int64_t now_ms);
  void dispatch(Conn& c, std::int64_t now_ms);
  void dispatch_completion(Conn& c, std::int64_t now_ms);
  void finish_response(Conn& c, std::int64_t now_ms);
  void route_events(std::int64_t now_ms);
  void expire_deadlines(std::int64_t now_ms);
  void step_scheduler_once();
  void abort_request(Conn& c, std::int64_t* counter);
  void close_conn(Conn& c);
  void reap_dead();
  void accept_pending(std::int64_t now_ms);
  void update_poller_interest(Conn& c);
  int retry_after_s() const;
  std::int64_t steady_now_ms() const;

  serve::Scheduler& sched_;
  ServerConfig cfg_;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<Poller> poller_;  // real mode only
  TimeoutWheel wheel_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::unordered_map<std::int64_t, std::uint64_t> req_conn_;  // req -> conn
  std::uint64_t next_key_ = 2;  // 0 = listener key, 1 = signal wake key
  NetMetrics net_metrics_;
  bool draining_ = false;
  std::int64_t drain_deadline_ms_ = -1;
  double ewma_step_s_ = 0.0;  // observed decode-step wall time
  std::vector<std::uint64_t> expired_scratch_;
};

}  // namespace nora::net
