#include "tensor/serialize.hpp"

#include <cstring>
#include <stdexcept>

namespace nora {

namespace {
constexpr char kMagic[4] = {'N', 'M', 'A', 'T'};
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("read_i64: truncated stream");
  return v;
}

void write_f32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

float read_f32(std::istream& in) {
  float v = 0.0f;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("read_f32: truncated stream");
  return v;
}

void write_matrix(std::ostream& out, const Matrix& m) {
  out.write(kMagic, sizeof kMagic);
  write_i64(out, m.rows());
  write_i64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix read_matrix(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("read_matrix: bad magic");
  }
  const std::int64_t rows = read_i64(in);
  const std::int64_t cols = read_i64(in);
  if (rows < 0 || cols < 0 || rows * cols > (std::int64_t{1} << 32)) {
    throw std::runtime_error("read_matrix: implausible shape");
  }
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!in) throw std::runtime_error("read_matrix: truncated data");
  return m;
}

}  // namespace nora
