// Distribution statistics used throughout the paper's analysis:
// kurtosis (Fig. 4 / Fig. 6 measure how outlier-heavy activations are)
// and kernel-density-style histograms (Fig. 4 KDE plots).
#pragma once

#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace nora::stats {

double mean(std::span<const float> xs);
double variance(std::span<const float> xs);  // population variance
double stddev(std::span<const float> xs);

/// Fisher (excess) kurtosis: E[(x-mu)^4]/sigma^4 - 3. Gaussian -> 0.
/// The paper reports e.g. activation kurtosis 113.61 vs weight 1.25
/// (Fig. 4) with this convention.
double kurtosis(std::span<const float> xs);

double mean(const Matrix& m);
double kurtosis(const Matrix& m);

struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> density;  // normalized so that sum(density)*bin = 1
  double bin_width() const {
    return density.empty() ? 0.0 : (hi - lo) / static_cast<double>(density.size());
  }
};

/// Fixed-bin density estimate over [lo, hi]; out-of-range samples are
/// clamped into the edge bins (mirrors how the paper's KDE plots clip).
Histogram histogram(std::span<const float> xs, double lo, double hi, int bins);

/// Fraction of |x| above the given threshold — a quick outlier measure.
double outlier_fraction(std::span<const float> xs, double threshold);

}  // namespace nora::stats
