// Dense linear-algebra kernels on Matrix.
//
// GEMM is the inner loop of both training and analog simulation; it is a
// simple cache-blocked kernel tuned for the small (d <= a few hundred)
// matrices this project uses, not a general BLAS replacement.
#pragma once

#include "tensor/matrix.hpp"

namespace nora::ops {

/// C = A(MxK) * B(KxN).
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A(MxK) * B^T(NxK)  — the natural layout for Linear layers that
/// store weights as [out, in].
Matrix matmul_bt(const Matrix& a, const Matrix& b);
/// C = A^T(KxM) * B(KxN)  — used by backward passes.
Matrix matmul_at(const Matrix& a, const Matrix& b);

/// C += A * B with the same shapes as matmul; used to accumulate grads.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c);

void add_inplace(Matrix& a, const Matrix& b);       // a += b
void sub_inplace(Matrix& a, const Matrix& b);       // a -= b
void scale_inplace(Matrix& a, float s);             // a *= s
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);  // elementwise product

/// Add a length-cols row vector to every row of a.
void add_row_vector(Matrix& a, std::span<const float> v);
/// Multiply every row of a elementwise by a length-cols vector.
void mul_row_vector(Matrix& a, std::span<const float> v);
/// Divide every row of a elementwise by a length-cols vector (no zero check).
void div_row_vector(Matrix& a, std::span<const float> v);

/// max_k |a[r][k]| for each row r.
std::vector<float> row_abs_max(const Matrix& a);
/// max_r |a[r][c]| for each column c.
std::vector<float> col_abs_max(const Matrix& a);

float abs_max(const Matrix& a);
float frobenius_norm(const Matrix& a);
/// Mean squared elementwise difference; shapes must match.
double mse(const Matrix& a, const Matrix& b);

}  // namespace nora::ops
