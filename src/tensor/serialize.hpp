// Binary (de)serialization of matrices for model checkpoints.
//
// Format: little-endian, magic "NMAT", i64 rows, i64 cols, raw float data.
#pragma once

#include <istream>
#include <ostream>

#include "tensor/matrix.hpp"

namespace nora {

void write_matrix(std::ostream& out, const Matrix& m);
Matrix read_matrix(std::istream& in);  // throws std::runtime_error on corruption

void write_i64(std::ostream& out, std::int64_t v);
std::int64_t read_i64(std::istream& in);
void write_f32(std::ostream& out, float v);
float read_f32(std::istream& in);

}  // namespace nora
