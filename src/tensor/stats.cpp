#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nora::stats {

double mean(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (float x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  const double mu = mean(xs);
  double s = 0.0;
  for (float x : xs) {
    const double d = x - mu;
    s += d * d;
  }
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const float> xs) { return std::sqrt(variance(xs)); }

double kurtosis(std::span<const float> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double m2 = 0.0, m4 = 0.0;
  for (float x : xs) {
    const double d = x - mu;
    const double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
  }
  const double n = static_cast<double>(xs.size());
  m2 /= n;
  m4 /= n;
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double mean(const Matrix& m) {
  return mean(std::span<const float>(m.data(), static_cast<std::size_t>(m.size())));
}

double kurtosis(const Matrix& m) {
  return kurtosis(std::span<const float>(m.data(), static_cast<std::size_t>(m.size())));
}

Histogram histogram(std::span<const float> xs, double lo, double hi, int bins) {
  if (bins <= 0 || hi <= lo) throw std::invalid_argument("histogram: bad bins/range");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.density.assign(static_cast<std::size_t>(bins), 0.0);
  if (xs.empty()) return h;
  const double w = (hi - lo) / bins;
  for (float x : xs) {
    int b = static_cast<int>(std::floor((x - lo) / w));
    b = std::clamp(b, 0, bins - 1);
    h.density[static_cast<std::size_t>(b)] += 1.0;
  }
  const double norm = 1.0 / (static_cast<double>(xs.size()) * w);
  for (auto& d : h.density) d *= norm;
  return h;
}

double outlier_fraction(std::span<const float> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (float x : xs) {
    if (std::fabs(x) > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

}  // namespace nora::stats
