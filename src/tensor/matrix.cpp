#include "tensor/matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace nora {

Matrix::Matrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), 0.0f) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Matrix: negative shape");
}

Matrix::Matrix(std::int64_t rows, std::int64_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != rows * cols) {
    throw std::invalid_argument("Matrix: data size does not match shape");
  }
}

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::fill_gaussian(util::Rng& rng, float stddev) {
  for (auto& x : data_) x = static_cast<float>(rng.gaussian(0.0, stddev));
}

void Matrix::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

Matrix Matrix::slice_rows(std::int64_t r0, std::int64_t r1) const {
  if (r0 < 0 || r1 < r0 || r1 > rows_) {
    throw std::out_of_range("Matrix::slice_rows: bad range");
  }
  Matrix out(r1 - r0, cols_);
  std::copy(data_.begin() + r0 * cols_, data_.begin() + r1 * cols_, out.data());
  return out;
}

void Matrix::resize_rows(std::int64_t new_rows) {
  if (new_rows < 0) {
    throw std::invalid_argument("Matrix::resize_rows: negative row count");
  }
  data_.resize(static_cast<std::size_t>(new_rows * cols_), 0.0f);
  rows_ = new_rows;
}

void Matrix::reserve_rows(std::int64_t rows) {
  if (rows > 0) data_.reserve(static_cast<std::size_t>(rows * cols_));
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

}  // namespace nora
