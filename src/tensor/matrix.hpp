// Dense row-major float matrix — the numerical workhorse of the project.
//
// All neural-network activations and weights, and all analog-tile data,
// are 2-D float matrices. A deliberately small, concrete class (no
// expression templates, no views) keeps the simulator code easy to audit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace nora {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols, zero-initialized.
  Matrix(std::int64_t rows, std::int64_t cols);
  /// rows x cols with explicit contents (row-major, size must match).
  Matrix(std::int64_t rows, std::int64_t cols, std::vector<float> data);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float& at(std::int64_t r, std::int64_t c) { return data_[r * cols_ + c]; }
  float at(std::int64_t r, std::int64_t c) const { return data_[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Row r as a contiguous span.
  std::span<float> row(std::int64_t r) {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const float> row(std::int64_t r) const {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  void fill(float v);
  /// Entries iid N(0, stddev^2).
  void fill_gaussian(util::Rng& rng, float stddev);
  /// Entries iid uniform in [lo, hi).
  void fill_uniform(util::Rng& rng, float lo, float hi);

  /// Copy of row range [r0, r1).
  Matrix slice_rows(std::int64_t r0, std::int64_t r1) const;
  Matrix transposed() const;

  /// Change the row count in place (column count unchanged). Growth
  /// zero-fills the new rows; existing rows keep their contents.
  /// Shrinking retains the underlying storage, so shrink-then-regrow
  /// within the high-water mark allocates nothing — this is what lets a
  /// recycled KV slab serve its next request allocation-free.
  void resize_rows(std::int64_t new_rows);
  /// Pre-allocate storage for up to `rows` rows (shape unchanged), so
  /// later resize_rows calls up to that limit never allocate.
  void reserve_rows(std::int64_t rows);
  /// Rows the underlying storage can hold without reallocating — the
  /// high-water mark reserve_rows/resize_rows have warmed up. This is
  /// what KvCachePool's best-fit placement matches leases against.
  std::int64_t row_capacity() const {
    return cols_ > 0 ? static_cast<std::int64_t>(data_.capacity()) / cols_
                     : 0;
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace nora
