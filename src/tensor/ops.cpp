#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace nora::ops {

namespace {

void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}

/// Row-parallel grain: aim for ~256k multiply-adds per chunk so small
/// GEMMs stay effectively serial (one chunk) and large ones split.
std::int64_t row_grain(std::int64_t m, std::int64_t flops_per_row) {
  return std::clamp<std::int64_t>(
      std::int64_t{262144} / std::max<std::int64_t>(1, flops_per_row), 1,
      std::max<std::int64_t>(1, m));
}

// Micro-kernel free blocked GEMM: C(MxN) += A(MxK) * B(KxN), row-major.
// The k-blocked / j-inner loop order streams B rows through cache and
// lets the compiler vectorize the innermost j loop. Rows of C are
// independent and each keeps the exact (k-block, k) accumulation order
// of the sequential kernel, so fanning rows over the pool is
// bit-identical to running serially.
void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kBlock = 64;
  util::ThreadPool::global().parallel_for(
      m,
      [=](std::int64_t i) {
        float* crow = c + i * n;
        for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
          const std::int64_t k1 = std::min(k, k0 + kBlock);
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float aik = a[i * k + kk];
            if (aik == 0.0f) continue;
            const float* brow = b + kk * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
          }
        }
      },
      row_grain(m, k * n));
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul: inner dimensions differ");
  Matrix c(a.rows(), b.cols());
  gemm_acc(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.rows(), "matmul_acc: inner dimensions differ");
  require(c.rows() == a.rows() && c.cols() == b.cols(),
          "matmul_acc: output shape mismatch");
  gemm_acc(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_bt: inner dimensions differ");
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Output rows are disjoint and each dot product keeps its sequential
  // accumulation order: bit-identical for any thread count.
  util::ThreadPool::global().parallel_for(
      m,
      [=](std::int64_t i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          const float* brow = pb + j * k;
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          crow[j] = acc;
        }
      },
      row_grain(m, k * n));
  return c;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at: inner dimensions differ");
  const std::int64_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a.data() + kk * m;
    const float* brow = b.data() + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

void add_inplace(Matrix& a, const Matrix& b) {
  require(a.same_shape(b), "add_inplace: shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void sub_inplace(Matrix& a, const Matrix& b) {
  require(a.same_shape(b), "sub_inplace: shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] -= pb[i];
}

void scale_inplace(Matrix& a, float s) {
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] *= s;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  add_inplace(c, b);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  sub_inplace(c, b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  require(a.same_shape(b), "hadamard: shape mismatch");
  Matrix c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < c.size(); ++i) pc[i] *= pb[i];
  return c;
}

void add_row_vector(Matrix& a, std::span<const float> v) {
  require(static_cast<std::int64_t>(v.size()) == a.cols(),
          "add_row_vector: length mismatch");
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) row[c] += v[c];
  }
}

void mul_row_vector(Matrix& a, std::span<const float> v) {
  require(static_cast<std::int64_t>(v.size()) == a.cols(),
          "mul_row_vector: length mismatch");
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) row[c] *= v[c];
  }
}

void div_row_vector(Matrix& a, std::span<const float> v) {
  require(static_cast<std::int64_t>(v.size()) == a.cols(),
          "div_row_vector: length mismatch");
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) row[c] /= v[c];
  }
}

std::vector<float> row_abs_max(const Matrix& a) {
  std::vector<float> out(static_cast<std::size_t>(a.rows()), 0.0f);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    float m = 0.0f;
    for (float x : a.row(r)) m = std::max(m, std::fabs(x));
    out[static_cast<std::size_t>(r)] = m;
  }
  return out;
}

std::vector<float> col_abs_max(const Matrix& a) {
  std::vector<float> out(static_cast<std::size_t>(a.cols()), 0.0f);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      out[static_cast<std::size_t>(c)] =
          std::max(out[static_cast<std::size_t>(c)], std::fabs(row[c]));
    }
  }
  return out;
}

float abs_max(const Matrix& a) {
  float m = 0.0f;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

float frobenius_norm(const Matrix& a) {
  double s = 0.0;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.size(); ++i) s += double(p[i]) * p[i];
  return static_cast<float>(std::sqrt(s));
}

double mse(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("mse: shape mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double d = double(pa[i]) - pb[i];
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}

}  // namespace nora::ops
