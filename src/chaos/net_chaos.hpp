// Deterministic network-fault injection for the HTTP front end.
//
// NetChaosEngine extends the chaos subsystem across the wire: it owns a
// population of simulated HTTP clients attached to an HttpServer over
// bounded in-memory pipes (net::SimTransport) and drives every
// connection-lifecycle failure the server claims to survive:
//
//   * well-behaved streaming and unary completion clients (the control
//     group — these must actually finish);
//   * slow-loris readers that trickle one header byte per step and must
//     die to the header timeout, never to resource exhaustion;
//   * stalled writers that submit a stream and then stop reading it,
//     forcing the write-stall/overflow cancel path;
//   * mid-stream disconnects that vanish while tokens are in flight and
//     must cost exactly one Scheduler::cancel;
//   * connect bursts and malformed requests.
//
// Same replay discipline as ChaosEngine: every decision is a pure
// function of (seed, step, kind, index) via counter-keyed draws, the
// pipes are deterministic, and the server only sees the virtual clock
// the harness feeds to pump() — so a soak that mixes physical chaos,
// traffic chaos and network chaos stays bit-replayable from its seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "net/transport.hpp"

namespace nora::chaos {

struct NetChaosConfig {
  std::uint64_t seed = 2300;

  /// Probability per step of one well-behaved completion client
  /// connecting (streaming or unary, drawn per client).
  double connect_rate = 0.0;
  /// Probability per step of a connect burst of `burst_size` clients.
  double burst_rate = 0.0;
  int burst_size = 8;
  /// Probability per step of killing one random live client's transport
  /// mid-whatever-it-was-doing (the mid-stream disconnect).
  double disconnect_rate = 0.0;
  /// Probability per step of spawning a slow-loris client (one header
  /// byte per step, never completes inside any sane header budget).
  double loris_rate = 0.0;
  /// Probability per step of spawning a stalled writer: submits a
  /// streaming completion, then never reads a single response byte.
  double stall_rate = 0.0;
  /// Probability per step of a malformed request (must cost one 4xx and
  /// a closed connection, nothing else).
  double malformed_rate = 0.0;

  /// Bytes a reading client drains per step (small values make the
  /// server's chunk pacing and write buffering do real work).
  int read_chunk = 256;
  /// Per-direction sim-pipe capacity. Deliberately small: a stalled
  /// reader must actually backpressure the server.
  std::size_t pipe_capacity = 512;
  /// Live-client cap; spawns beyond it are recorded as skipped.
  int max_clients = 64;
  /// Virtual milliseconds per soak step. MUST match the clock the
  /// harness feeds server.pump() (now_ms = step * step_ms) — adopt()
  /// arms deadlines against the same clock.
  std::int64_t step_ms = 100;

  // Shape of generated completion requests.
  int prompt_len_min = 1;
  int prompt_len_max = 8;
  int max_new_min = 1;
  int max_new_max = 12;
};

struct NetChaosStats {
  std::int64_t connects = 0;       // well-behaved clients spawned
  std::int64_t bursts = 0;
  std::int64_t disconnects = 0;    // transports killed mid-flight
  std::int64_t loris_spawned = 0;
  std::int64_t stalls_spawned = 0;
  std::int64_t malformed_sent = 0;
  std::int64_t skipped = 0;        // spawns refused at max_clients

  // Client-side observations (what actually came back over the pipes).
  std::int64_t responses_2xx = 0;
  std::int64_t responses_4xx = 0;
  std::int64_t responses_5xx = 0;
  std::int64_t streams_completed = 0;  // saw {"done":true,...}
  std::int64_t tokens_received = 0;    // token chunks observed
  std::int64_t stall_reaped = 0;       // stalled writers the server killed
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;

  std::int64_t total_events() const {
    return connects + bursts + disconnects + loris_spawned + stalls_spawned +
           malformed_sent;
  }
};

class NetChaosEngine {
 public:
  /// `vocab` bounds generated prompt token ids. The server must be in
  /// deterministic mode (the harness owns pump() and the clock).
  NetChaosEngine(net::HttpServer& server, NetChaosConfig cfg, int vocab);

  /// Spawn/kill/drive clients scheduled for virtual step `step`. Call
  /// once per step; the harness then calls server.pump(now_ms).
  void tick(std::int64_t step);

  /// True once every spawned client reached a terminal fate (response
  /// finished, connection closed by either side, or reaped).
  bool all_done() const { return clients_.empty(); }
  std::size_t live_clients() const { return clients_.size(); }
  const NetChaosStats& stats() const { return stats_; }

 private:
  enum class ClientKind { kStream, kUnary, kLoris, kStall, kMalformed };

  struct Client {
    std::unique_ptr<net::SimTransport> t;
    ClientKind kind = ClientKind::kStream;
    std::string to_send;
    std::size_t sent = 0;
    std::string received;
    bool done = false;
  };

  std::uint64_t draw(std::int64_t step, std::uint64_t kind,
                     std::uint64_t index) const;
  static double u01(std::uint64_t x);

  void spawn(std::int64_t step, std::uint64_t index, ClientKind kind);
  std::string completion_request(std::int64_t step, std::uint64_t index,
                                 bool stream);
  void drive(Client& c);
  void finalize(Client& c);

  net::HttpServer& server_;
  NetChaosConfig cfg_;
  int vocab_;
  std::uint64_t base_ = 0;
  std::vector<std::unique_ptr<Client>> clients_;
  NetChaosStats stats_;
};

}  // namespace nora::chaos
