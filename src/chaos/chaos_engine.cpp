#include "chaos/chaos_engine.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace nora::chaos {

namespace {
// Event-kind ordinals for stream keying. Stable: renumbering would
// change every replay schedule.
enum Kind : std::uint64_t {
  kUpset = 1,
  kWear = 2,
  kStorm = 3,
  kSubmit = 4,
  kBurst = 5,
  kCancel = 6,
  kShape = 7,  // request-shape draws (prompt/max_new/deadline/tokens)
};
}  // namespace

ChaosEngine::ChaosEngine(serve::Scheduler& sched, nn::TransformerLM& model,
                         ChaosConfig cfg)
    : sched_(sched), model_(model), cfg_(cfg) {
  base_ = util::derive_seed(cfg_.seed, "chaos-engine");
  layers_ = model_.linear_layers();
  if (cfg_.prompt_len_min < 1) cfg_.prompt_len_min = 1;
  if (cfg_.prompt_len_max < cfg_.prompt_len_min) {
    cfg_.prompt_len_max = cfg_.prompt_len_min;
  }
  if (cfg_.max_new_min < 1) cfg_.max_new_min = 1;
  if (cfg_.max_new_max < cfg_.max_new_min) cfg_.max_new_max = cfg_.max_new_min;
}

std::uint64_t ChaosEngine::draw(std::int64_t step, std::uint64_t kind,
                                std::uint64_t index) const {
  return util::derive_stream(base_, static_cast<std::uint64_t>(step), kind,
                             index);
}

double ChaosEngine::u01(std::uint64_t x) {
  // Top 53 bits -> [0, 1), the standard double construction.
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

int ChaosEngine::count_for(double rate, std::int64_t step,
                           std::uint64_t kind) const {
  if (rate <= 0.0) return 0;
  int n = static_cast<int>(rate);
  const double frac = rate - static_cast<double>(n);
  if (frac > 0.0 && u01(draw(step, kind, 0)) < frac) ++n;
  return n;
}

void ChaosEngine::inject_upset(std::int64_t step, std::uint64_t index,
                               bool storm) {
  const std::uint64_t kind = storm ? kStorm : kUpset;
  if (layers_.empty()) {
    ++stats_.skipped;
    return;
  }
  nn::Linear* lin =
      layers_[draw(step, kind, index * 4 + 1) % layers_.size()];
  cim::AnalogMatmul* am = lin->analog();
  if (am == nullptr) {
    // The monitor already dropped this layer to digital (or it was never
    // analog): physical chaos has nothing to hit. Recorded, not retried
    // elsewhere — a replay must take the same branch.
    ++stats_.skipped;
    return;
  }
  const std::int64_t k = static_cast<std::int64_t>(
      draw(step, kind, index * 4 + 2) % static_cast<std::uint64_t>(am->in_dim()));
  const std::int64_t n = static_cast<std::int64_t>(
      draw(step, kind, index * 4 + 3) %
      static_cast<std::uint64_t>(am->out_dim()));
  // Storms pin devices at max conductance — the worst case for the ADC
  // input range; ordinary upsets land anywhere in [0, 1).
  const float g = storm
                      ? 1.0f
                      : static_cast<float>(u01(draw(step, kind, index * 4)));
  am->upset_device(k, n, g);
  ++stats_.upsets;
}

void ChaosEngine::inject_wear(std::int64_t step, std::uint64_t index) {
  if (layers_.empty()) {
    ++stats_.skipped;
    return;
  }
  nn::Linear* lin =
      layers_[draw(step, kWear, index * 4 + 1) % layers_.size()];
  cim::AnalogMatmul* am = lin->analog();
  if (am == nullptr) {
    ++stats_.skipped;
    return;
  }
  const std::int64_t k = static_cast<std::int64_t>(
      draw(step, kWear, index * 4 + 2) %
      static_cast<std::uint64_t>(am->in_dim()));
  const std::int64_t n = static_cast<std::int64_t>(
      draw(step, kWear, index * 4 + 3) %
      static_cast<std::uint64_t>(am->out_dim()));
  // Broken silicon is stuck off or stuck on, not somewhere nice.
  const bool on = (draw(step, kWear, index * 4) & 1) != 0;
  am->wear_stuck(k, n, on ? 1.0f : 0.0f);
  ++stats_.wears;
}

void ChaosEngine::submit_one(std::int64_t step, std::uint64_t index) {
  const std::int64_t vocab = model_.config().vocab_size;
  serve::RequestParams p;
  // 64 keyed draws per request keep token draws collision-free for any
  // prompt length the serve layer accepts under the tiny test models.
  const std::uint64_t slot = index * 64;
  const std::uint64_t h = draw(step, kShape, slot);
  const int len = cfg_.prompt_len_min +
                  static_cast<int>(h % static_cast<std::uint64_t>(
                                           cfg_.prompt_len_max -
                                           cfg_.prompt_len_min + 1));
  p.prompt.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    p.prompt.push_back(static_cast<int>(
        draw(step, kShape, slot + 8 + static_cast<std::uint64_t>(i)) %
        static_cast<std::uint64_t>(vocab)));
  }
  const std::uint64_t h2 = draw(step, kShape, slot + 1);
  p.max_new_tokens =
      cfg_.max_new_min +
      static_cast<int>(h2 % static_cast<std::uint64_t>(
                                cfg_.max_new_max - cfg_.max_new_min + 1));
  const std::uint64_t h3 = draw(step, kShape, slot + 2);
  if (cfg_.deadline_prob > 0.0 && u01(h3) < cfg_.deadline_prob) {
    p.deadline_steps =
        cfg_.deadline_min +
        static_cast<std::int64_t>(
            (h3 >> 8) % static_cast<std::uint64_t>(
                            cfg_.deadline_max - cfg_.deadline_min + 1));
  }
  ids_.push_back(sched_.submit(std::move(p)));
  ++stats_.submits;
}

void ChaosEngine::cancel_one(std::int64_t step, std::uint64_t index) {
  const auto snap_size =
      static_cast<std::uint64_t>(sched_.audit_snapshot().states.size());
  if (snap_size == 0) {
    ++stats_.skipped;
    return;
  }
  // Bias toward the most recent submissions: old ids are almost always
  // terminal already, and a cancel that always lands on a terminal id
  // never exercises the racing-cancel path it exists to hammer.
  const std::uint64_t window = std::min<std::uint64_t>(snap_size, 64);
  const std::int64_t id = static_cast<std::int64_t>(
      snap_size - 1 - draw(step, kCancel, index * 2 + 1) % window);
  ++stats_.cancels_attempted;
  if (sched_.cancel(id)) ++stats_.cancels_accepted;
}

void ChaosEngine::tick(std::int64_t step) {
  // Physical faults first, traffic second: a step's upsets are visible
  // to the decode that the scheduler runs right after this tick.
  const int upsets = count_for(cfg_.upset_rate, step, kUpset);
  for (int i = 0; i < upsets; ++i) {
    inject_upset(step, static_cast<std::uint64_t>(i) + 1, /*storm=*/false);
  }
  const int wears = count_for(cfg_.wear_rate, step, kWear);
  for (int i = 0; i < wears; ++i) {
    inject_wear(step, static_cast<std::uint64_t>(i) + 1);
  }
  if (cfg_.adc_storm_rate > 0.0 &&
      u01(draw(step, kStorm, 0)) < cfg_.adc_storm_rate) {
    ++stats_.storms;
    for (int i = 0; i < cfg_.adc_storm_size; ++i) {
      inject_upset(step, static_cast<std::uint64_t>(i) + 1, /*storm=*/true);
    }
  }
  std::uint64_t shape_index = static_cast<std::uint64_t>(step) << 8;
  if (cfg_.submit_rate > 0.0 &&
      u01(draw(step, kSubmit, 0)) < cfg_.submit_rate) {
    submit_one(step, shape_index++);
  }
  if (cfg_.burst_rate > 0.0 && u01(draw(step, kBurst, 0)) < cfg_.burst_rate) {
    ++stats_.bursts;
    for (int i = 0; i < cfg_.burst_size; ++i) submit_one(step, shape_index++);
  }
  if (cfg_.cancel_rate > 0.0 &&
      u01(draw(step, kCancel, 0)) < cfg_.cancel_rate) {
    cancel_one(step, 1);
  }
}

}  // namespace nora::chaos
