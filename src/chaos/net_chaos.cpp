#include "chaos/net_chaos.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace nora::chaos {

namespace {
// Stable event-kind ordinals for stream keying (independent of the
// ChaosEngine ordinals — different base seed label, different class).
enum Kind : std::uint64_t {
  kConnect = 1,
  kConnBurst = 2,
  kDisconnect = 3,
  kLoris = 4,
  kStall = 5,
  kMalformed = 6,
  kShape = 7,  // request-shape draws (prompt/max_new/stream-vs-unary)
};

/// Count non-overlapping occurrences of `needle` in `hay`.
std::int64_t count_occurrences(const std::string& hay,
                               const std::string& needle) {
  std::int64_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}
}  // namespace

NetChaosEngine::NetChaosEngine(net::HttpServer& server, NetChaosConfig cfg,
                               int vocab)
    : server_(server), cfg_(cfg), vocab_(std::max(vocab, 1)) {
  base_ = util::derive_seed(cfg_.seed, "net-chaos-engine");
  if (cfg_.prompt_len_min < 1) cfg_.prompt_len_min = 1;
  if (cfg_.prompt_len_max < cfg_.prompt_len_min) {
    cfg_.prompt_len_max = cfg_.prompt_len_min;
  }
  if (cfg_.max_new_min < 1) cfg_.max_new_min = 1;
  if (cfg_.max_new_max < cfg_.max_new_min) cfg_.max_new_max = cfg_.max_new_min;
  if (cfg_.read_chunk < 1) cfg_.read_chunk = 1;
}

std::uint64_t NetChaosEngine::draw(std::int64_t step, std::uint64_t kind,
                                   std::uint64_t index) const {
  return util::derive_stream(base_, static_cast<std::uint64_t>(step), kind,
                             index);
}

double NetChaosEngine::u01(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

std::string NetChaosEngine::completion_request(std::int64_t step,
                                               std::uint64_t index,
                                               bool stream) {
  const std::uint64_t slot = index * 64;
  const std::uint64_t h = draw(step, kShape, slot);
  const int len = cfg_.prompt_len_min +
                  static_cast<int>(h % static_cast<std::uint64_t>(
                                           cfg_.prompt_len_max -
                                           cfg_.prompt_len_min + 1));
  std::string body = "{\"prompt\":[";
  for (int i = 0; i < len; ++i) {
    if (i > 0) body += ",";
    body += std::to_string(
        draw(step, kShape, slot + 8 + static_cast<std::uint64_t>(i)) %
        static_cast<std::uint64_t>(vocab_));
  }
  const std::uint64_t h2 = draw(step, kShape, slot + 1);
  const int max_new =
      cfg_.max_new_min +
      static_cast<int>(h2 % static_cast<std::uint64_t>(
                                cfg_.max_new_max - cfg_.max_new_min + 1));
  body += "],\"max_new_tokens\":" + std::to_string(max_new) +
          ",\"stream_seed\":" + std::to_string(draw(step, kShape, slot + 2)) +
          ",\"stream\":" + (stream ? "true" : "false") + "}";
  // Connection: close keeps client completion detection trivial and
  // deterministic: read until kEof, then inspect what came back.
  return "POST /v1/completions HTTP/1.1\r\n"
         "Host: sim\r\n"
         "Connection: close\r\n"
         "Content-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

void NetChaosEngine::spawn(std::int64_t step, std::uint64_t index,
                           ClientKind kind) {
  if (static_cast<int>(clients_.size()) >= cfg_.max_clients) {
    ++stats_.skipped;
    return;
  }
  auto [server_end, client_end] = net::make_sim_pair(cfg_.pipe_capacity);
  auto c = std::make_unique<Client>();
  c->t = std::move(client_end);
  c->kind = kind;
  switch (kind) {
    case ClientKind::kStream:
      c->to_send = completion_request(step, index, /*stream=*/true);
      ++stats_.connects;
      break;
    case ClientKind::kUnary:
      c->to_send = completion_request(step, index, /*stream=*/false);
      ++stats_.connects;
      break;
    case ClientKind::kLoris:
      // A real-looking request the server never gets all of.
      c->to_send =
          "GET /healthz HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n";
      ++stats_.loris_spawned;
      break;
    case ClientKind::kStall:
      c->to_send = completion_request(step, index, /*stream=*/true);
      ++stats_.stalls_spawned;
      break;
    case ClientKind::kMalformed:
      c->to_send = "BOGUS \x01/ HTTP/9.9\r\n\r\n";
      ++stats_.malformed_sent;
      break;
  }
  // Adopt on the same virtual clock the harness feeds pump(), so the
  // connection's first deadline is armed against consistent time.
  server_.adopt(std::move(server_end), /*now_ms=*/step * cfg_.step_ms);
  clients_.push_back(std::move(c));
}

void NetChaosEngine::finalize(Client& c) {
  if (c.done) return;
  c.done = true;
  if (c.received.rfind("HTTP/1.1 2", 0) == 0) {
    ++stats_.responses_2xx;
  } else if (c.received.rfind("HTTP/1.1 4", 0) == 0) {
    ++stats_.responses_4xx;
  } else if (c.received.rfind("HTTP/1.1 5", 0) == 0) {
    ++stats_.responses_5xx;
  }
  stats_.tokens_received += count_occurrences(c.received, "{\"token\":");
  stats_.streams_completed += count_occurrences(c.received, "\"done\":true");
}

void NetChaosEngine::drive(Client& c) {
  if (c.done) return;
  // Send phase. Loris trickles one byte per step; everyone else pushes
  // as much as the pipe will take.
  if (c.sent < c.to_send.size() && !c.t->closed()) {
    const std::size_t budget =
        c.kind == ClientKind::kLoris ? 1 : c.to_send.size() - c.sent;
    const std::ptrdiff_t w = c.t->write(c.to_send.data() + c.sent, budget);
    if (w > 0) {
      c.sent += static_cast<std::size_t>(w);
      stats_.bytes_sent += w;
    } else if (w == net::Transport::kError) {
      // Server already dropped us (timeout, malformed, shed).
      finalize(c);
      return;
    }
  }
  // Read phase. Stalled writers never read — that is their whole job;
  // they are reaped once the server gives up on them.
  if (c.kind == ClientKind::kStall) {
    if (c.t->peer_closed()) {
      ++stats_.stall_reaped;
      finalize(c);
    }
    return;
  }
  char buf[1024];
  std::size_t budget = static_cast<std::size_t>(cfg_.read_chunk);
  while (budget > 0) {
    const std::ptrdiff_t r =
        c.t->read(buf, std::min(budget, sizeof(buf)));
    if (r > 0) {
      c.received.append(buf, static_cast<std::size_t>(r));
      stats_.bytes_received += r;
      budget -= static_cast<std::size_t>(r);
      continue;
    }
    if (r == net::Transport::kAgain) return;  // drained for this step
    finalize(c);  // kEof/kError: response (or rejection) is complete
    return;
  }
}

void NetChaosEngine::tick(std::int64_t step) {
  std::uint64_t shape_index = static_cast<std::uint64_t>(step) << 8;
  if (cfg_.connect_rate > 0.0 &&
      u01(draw(step, kConnect, 0)) < cfg_.connect_rate) {
    const bool unary = (draw(step, kConnect, 1) & 3) == 0;  // 1 in 4
    spawn(step, shape_index++,
          unary ? ClientKind::kUnary : ClientKind::kStream);
  }
  if (cfg_.burst_rate > 0.0 &&
      u01(draw(step, kConnBurst, 0)) < cfg_.burst_rate) {
    ++stats_.bursts;
    for (int i = 0; i < cfg_.burst_size; ++i) {
      spawn(step, shape_index++, ClientKind::kStream);
    }
  }
  if (cfg_.loris_rate > 0.0 && u01(draw(step, kLoris, 0)) < cfg_.loris_rate) {
    spawn(step, shape_index++, ClientKind::kLoris);
  }
  if (cfg_.stall_rate > 0.0 && u01(draw(step, kStall, 0)) < cfg_.stall_rate) {
    spawn(step, shape_index++, ClientKind::kStall);
  }
  if (cfg_.malformed_rate > 0.0 &&
      u01(draw(step, kMalformed, 0)) < cfg_.malformed_rate) {
    spawn(step, shape_index++, ClientKind::kMalformed);
  }
  if (cfg_.disconnect_rate > 0.0 && !clients_.empty() &&
      u01(draw(step, kDisconnect, 0)) < cfg_.disconnect_rate) {
    // Kill a uniformly random live client's transport. Hitting one that
    // already finished is the race working as intended.
    Client& victim =
        *clients_[draw(step, kDisconnect, 1) % clients_.size()];
    if (!victim.t->closed()) {
      victim.t->close();
      ++stats_.disconnects;
      finalize(victim);
    }
  }
  for (auto& c : clients_) drive(*c);
  clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                [](const std::unique_ptr<Client>& c) {
                                  return c->done;
                                }),
                 clients_.end());
}

}  // namespace nora::chaos
