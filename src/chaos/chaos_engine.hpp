// Deterministic chaos injection for the serving stack.
//
// The ChaosEngine drives every failure mode the runtime claims to
// survive — transient device upsets, permanent wear, ADC-saturation
// storms, KV-budget pressure, request bursts and racing cancels — on a
// REPLAYABLE schedule: each step's events are decided by counter-keyed
// draws over (seed, step, event-kind, index), never by a shared
// stateful RNG, so the same seed produces the same injection schedule
// run after run regardless of what the scheduler did in between. That
// is what makes a chaos soak debuggable: a violating run can be
// replayed exactly from its seed.
//
// The engine uses the scheduler's virtual step clock, not wall time.
// tick(step) is called once per soak iteration before Scheduler::step()
// and injects everything scheduled for that step. With all rates at
// zero, tick() is a no-op and the serve output must be bit-identical to
// a chaos-free run — the regression gate in bench/chaos_soak.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/transformer.hpp"
#include "serve/scheduler.hpp"

namespace nora::chaos {

struct ChaosConfig {
  std::uint64_t seed = 2300;

  /// Expected transient device upsets per step (fractional rates fire
  /// probabilistically; >1 fires multiple per step). Each upset flips a
  /// random device of a random analog layer to a random conductance in
  /// [0, 1) until the next drift re-read.
  double upset_rate = 0.0;
  /// Expected permanent stuck devices per step (wear_stuck: survives
  /// re-reads and refreshes). Stuck-off (0) or stuck-on (~max) g.
  double wear_rate = 0.0;
  /// Probability per step of an ADC-saturation storm: a burst of
  /// `adc_storm_size` max-conductance upsets concentrated on one layer,
  /// driving output currents into ADC saturation until re-read.
  double adc_storm_rate = 0.0;
  int adc_storm_size = 32;

  /// Probability per step of one background request submission.
  double submit_rate = 0.0;
  /// Probability per step of a submission burst (queue/KV pressure).
  double burst_rate = 0.0;
  int burst_size = 4;
  /// Probability per step of cancelling a uniformly random id among all
  /// ever submitted (terminal ids are no-ops — that is the race).
  double cancel_rate = 0.0;

  // Shape of chaos-generated traffic.
  int prompt_len_min = 1;
  int prompt_len_max = 8;
  int max_new_min = 1;
  int max_new_max = 12;
  /// Fraction of chaos requests given a finite deadline (exercises
  /// expiry under load); drawn from [deadline_min, deadline_max] steps.
  double deadline_prob = 0.0;
  int deadline_min = 4;
  int deadline_max = 64;
};

/// Tally of everything actually injected (skips count scheduled events
/// whose target was gone, e.g. an upset aimed at a layer the monitor
/// already dropped to digital).
struct ChaosStats {
  std::int64_t upsets = 0;
  std::int64_t wears = 0;
  std::int64_t storms = 0;
  std::int64_t submits = 0;
  std::int64_t bursts = 0;
  std::int64_t cancels_attempted = 0;
  std::int64_t cancels_accepted = 0;
  std::int64_t skipped = 0;
  std::int64_t total_events() const {
    return upsets + wears + storms + submits + bursts + cancels_attempted;
  }
};

class ChaosEngine {
 public:
  ChaosEngine(serve::Scheduler& sched, nn::TransformerLM& model,
              ChaosConfig cfg);

  /// Inject everything scheduled for virtual step `step`. Idempotence
  /// is NOT provided — call once per step, before Scheduler::step().
  void tick(std::int64_t step);

  const ChaosStats& stats() const { return stats_; }
  /// Ids of every request this engine submitted (for harness bookkeeping).
  const std::vector<std::int64_t>& submitted_ids() const { return ids_; }

 private:
  // Keyed draw helpers: every random decision is a pure function of
  // (cfg_.seed, step, kind, index).
  std::uint64_t draw(std::int64_t step, std::uint64_t kind,
                     std::uint64_t index) const;
  static double u01(std::uint64_t x);
  int count_for(double rate, std::int64_t step, std::uint64_t kind) const;

  void inject_upset(std::int64_t step, std::uint64_t index, bool storm);
  void inject_wear(std::int64_t step, std::uint64_t index);
  void submit_one(std::int64_t step, std::uint64_t index);
  void cancel_one(std::int64_t step, std::uint64_t index);

  serve::Scheduler& sched_;
  nn::TransformerLM& model_;
  ChaosConfig cfg_;
  std::uint64_t base_ = 0;
  std::vector<nn::Linear*> layers_;  // all linear layers, analog or not
  ChaosStats stats_;
  std::vector<std::int64_t> ids_;
};

}  // namespace nora::chaos
