#include "cost/device_costs_cli.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace nora::cost {

namespace {

double read_cost(const util::Cli& cli, const char* flag, double fallback,
                 bool strictly_positive) {
  const double v = cli.get_double(flag, fallback);
  if (!std::isfinite(v) || v < 0.0 || (strictly_positive && v == 0.0)) {
    throw std::invalid_argument(
        std::string("--") + flag + "=" + std::to_string(v) +
        ": device cost must be finite and " +
        (strictly_positive ? "> 0" : ">= 0"));
  }
  return v;
}

}  // namespace

DeviceCosts device_costs_from_cli(const util::Cli& cli,
                                  const DeviceCosts& base) {
  DeviceCosts d = base;
  d.adc_fom_fj_per_step =
      read_cost(cli, "adc-fom-fj", base.adc_fom_fj_per_step, false);
  d.dac_fom_fj_per_step =
      read_cost(cli, "dac-fom-fj", base.dac_fom_fj_per_step, false);
  d.cell_read_fj = read_cost(cli, "cell-read-fj", base.cell_read_fj, false);
  // Latency / throughput constants are divisors downstream: zero is as
  // fatal as negative.
  d.tile_read_latency_ns =
      read_cost(cli, "tile-read-ns", base.tile_read_latency_ns, true);
  d.cell_area_um2 = read_cost(cli, "cell-area-um2", base.cell_area_um2, false);
  d.adc_area_um2 = read_cost(cli, "adc-area-um2", base.adc_area_um2, false);
  d.fp32_mac_pj = read_cost(cli, "fp32-mac-pj", base.fp32_mac_pj, false);
  d.int8_mac_pj = read_cost(cli, "int8-mac-pj", base.int8_mac_pj, false);
  d.digital_macs_per_ns =
      read_cost(cli, "digital-macs-per-ns", base.digital_macs_per_ns, true);
  d.dram_pj_per_byte =
      read_cost(cli, "dram-pj-per-byte", base.dram_pj_per_byte, false);
  d.sram_pj_per_byte =
      read_cost(cli, "sram-pj-per-byte", base.sram_pj_per_byte, false);
  d.dram_bytes_per_ns =
      read_cost(cli, "dram-bytes-per-ns", base.dram_bytes_per_ns, true);
  d.chip_link_latency_ns =
      read_cost(cli, "chip-link-ns", base.chip_link_latency_ns, false);
  d.chip_link_bytes_per_ns = read_cost(cli, "chip-link-bytes-per-ns",
                                       base.chip_link_bytes_per_ns, true);
  return d;
}

}  // namespace nora::cost
