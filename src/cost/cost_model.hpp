// First-order energy / latency / area model for analog CIM vs digital
// inference — the paper's stated future work ("the evaluation of power,
// area, and latency is also considered an essential part") and the
// quantitative backing for its introduction's energy-efficiency claim.
//
// The model is analytic and deliberately simple; every constant is a
// documented, overridable parameter with values taken from standard
// sources:
//   - ADC energy via the Walden figure-of-merit: E = FoM * 2^bits per
//     conversion (FoM ~ 30 fJ/step for embedded SAR ADCs).
//   - digital MAC energies from Horowitz, ISSCC'14 (45 nm): fp32 MAC
//     ~4.6 pJ, int8 MAC ~0.23 pJ.
//   - DRAM access energy ~20 pJ/byte (HBM-class), SRAM ~1 pJ/byte.
//   - one full-tile analog MVM (all columns in parallel, including
//     conversion) ~100 ns, after ISAAC [Shafiee et al., ISCA'16].
//
// The qualitative outputs a user should trust: where the analog/digital
// energy crossover sits as a function of converter resolution and
// reuse, and how strongly ADC energy dominates the analog budget —
// not the absolute joules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cim/tile_config.hpp"
#include "nn/transformer.hpp"

namespace nora::cost {

struct DeviceCosts {
  // Converters (Walden FoM, fJ per conversion step).
  double adc_fom_fj_per_step = 30.0;
  double dac_fom_fj_per_step = 5.0;
  // NVM crossbar.
  double cell_read_fj = 0.5;           // per cell per MVM
  double tile_read_latency_ns = 100.0; // one tile MVM incl. conversion
  double cell_area_um2 = 0.05;         // 1T1R-class cell
  double adc_area_um2 = 2500.0;        // one shared ADC per tile column group
  // Digital compute (Horowitz ISSCC'14, 45 nm).
  double fp32_mac_pj = 4.6;
  double int8_mac_pj = 0.23;
  double digital_macs_per_ns = 256.0;  // effective sustained throughput
  // Memory hierarchy for digital weight streaming.
  double dram_pj_per_byte = 20.0;
  double sram_pj_per_byte = 1.0;
  double dram_bytes_per_ns = 64.0;
  // Inter-chip link (multi-chip sharding): per-hop launch latency plus
  // serialization bandwidth for activations and fp32 partial sums moving
  // between chips (SerDes-class link, far slower than the on-chip
  // partial-sum bus).
  double chip_link_latency_ns = 20.0;
  double chip_link_bytes_per_ns = 32.0;
};

/// Cost of running `tokens` activations through one [k x n] linear layer.
struct LayerCost {
  std::string layer;
  double energy_pj = 0.0;
  double latency_ns = 0.0;
  // Energy breakdown (sums to energy_pj).
  double adc_pj = 0.0;
  double dac_pj = 0.0;
  double cell_pj = 0.0;   // analog crossbar reads
  double mac_pj = 0.0;    // digital MACs
  double mem_pj = 0.0;    // weight/activation movement
  double area_um2 = 0.0;  // weight storage + converters (analog only)
};

/// Analog CIM execution of y = x(T x K) * W(K x N) on the tile grid
/// implied by cfg (tile_rows x tile_cols tiles, per-row-block DAC,
/// per-tile-column ADC). Row blocks convert inputs once per token; all
/// tiles fire in parallel, so per-token latency is one tile read.
LayerCost analog_linear_cost(std::int64_t k, std::int64_t n,
                             std::int64_t tokens, const cim::TileConfig& cfg,
                             const DeviceCosts& d = {});

/// Digital execution at fp32 (bits = 32) or int8 (bits = 8). Weights
/// stream from DRAM once per batch of `tokens` (weight reuse amortizes
/// the memory-wall term — the effect the paper's intro appeals to).
LayerCost digital_linear_cost(std::int64_t k, std::int64_t n,
                              std::int64_t tokens, int bits,
                              const DeviceCosts& d = {});

struct ModelCost {
  double energy_pj = 0.0;
  double latency_ns = 0.0;
  std::vector<LayerCost> layers;
};

enum class Backend { kDigitalFp32, kDigitalInt8, kAnalogCim };

/// Aggregate cost of all linear layers of a model for one forward pass
/// over `tokens` positions (attention/normalization excluded on every
/// backend, mirroring the paper's deployment split).
ModelCost model_linear_cost(nn::TransformerLM& model, std::int64_t tokens,
                            Backend backend, const cim::TileConfig& cfg,
                            const DeviceCosts& d = {});

}  // namespace nora::cost
