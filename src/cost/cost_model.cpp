#include "cost/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::cost {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }
}  // namespace

LayerCost analog_linear_cost(std::int64_t k, std::int64_t n,
                             std::int64_t tokens, const cim::TileConfig& cfg,
                             const DeviceCosts& d) {
  if (k <= 0 || n <= 0 || tokens <= 0) {
    throw std::invalid_argument("analog_linear_cost: non-positive dims");
  }
  LayerCost c;
  const std::int64_t row_blocks = ceil_div(k, cfg.tile_rows);
  const double dac_steps = cfg.dac_steps() > 0 ? cfg.dac_steps() : 256.0;
  const double adc_steps = cfg.adc_steps() > 0 ? cfg.adc_steps() : 256.0;
  // DAC: every input element converted once per token (row blocks each
  // convert their own slice; slices partition k).
  const double dac_convs = static_cast<double>(tokens) * k;
  c.dac_pj = dac_convs * d.dac_fom_fj_per_step * dac_steps * 1e-3;
  // ADC: every tile outputs its columns once per token; partial sums
  // from different row blocks are converted separately.
  const double adc_convs = static_cast<double>(tokens) * row_blocks * n;
  c.adc_pj = adc_convs * d.adc_fom_fj_per_step * adc_steps * 1e-3;
  // Crossbar: every cell contributes current on every read.
  c.cell_pj = static_cast<double>(tokens) * k * n * d.cell_read_fj * 1e-3;
  c.energy_pj = c.dac_pj + c.adc_pj + c.cell_pj;
  // All tiles fire in parallel; tokens are sequential (the O(1) MVM of
  // the paper's Sec. I). Bound-management retries would multiply this.
  c.latency_ns = static_cast<double>(tokens) * d.tile_read_latency_ns;
  // Area: cells (differential pair -> 2 devices per weight) + one ADC
  // per physical tile.
  const std::int64_t tiles = row_blocks * ceil_div(n, cfg.tile_cols);
  c.area_um2 = 2.0 * static_cast<double>(k) * n * d.cell_area_um2 +
               static_cast<double>(tiles) * d.adc_area_um2;
  return c;
}

LayerCost digital_linear_cost(std::int64_t k, std::int64_t n,
                              std::int64_t tokens, int bits,
                              const DeviceCosts& d) {
  if (k <= 0 || n <= 0 || tokens <= 0) {
    throw std::invalid_argument("digital_linear_cost: non-positive dims");
  }
  if (bits != 8 && bits != 32) {
    throw std::invalid_argument("digital_linear_cost: bits must be 8 or 32");
  }
  LayerCost c;
  const double macs = static_cast<double>(tokens) * k * n;
  const double mac_pj = bits == 32 ? d.fp32_mac_pj : d.int8_mac_pj;
  c.mac_pj = macs * mac_pj;
  // Memory wall: weights stream from DRAM once per batch (amortized over
  // `tokens`), activations move through SRAM per token.
  const double weight_bytes = static_cast<double>(k) * n * (bits / 8.0);
  const double act_bytes = static_cast<double>(tokens) * (k + n) * (bits / 8.0);
  c.mem_pj = weight_bytes * d.dram_pj_per_byte + act_bytes * d.sram_pj_per_byte;
  c.energy_pj = c.mac_pj + c.mem_pj;
  // Latency: compute-bound or DRAM-bound, whichever dominates.
  const double compute_ns = macs / d.digital_macs_per_ns;
  const double mem_ns = weight_bytes / d.dram_bytes_per_ns;
  c.latency_ns = std::max(compute_ns, mem_ns);
  return c;
}

ModelCost model_linear_cost(nn::TransformerLM& model, std::int64_t tokens,
                            Backend backend, const cim::TileConfig& cfg,
                            const DeviceCosts& d) {
  ModelCost total;
  for (auto* lin : model.linear_layers()) {
    LayerCost c;
    switch (backend) {
      case Backend::kAnalogCim:
        c = analog_linear_cost(lin->in_dim(), lin->out_dim(), tokens, cfg, d);
        break;
      case Backend::kDigitalFp32:
        c = digital_linear_cost(lin->in_dim(), lin->out_dim(), tokens, 32, d);
        break;
      case Backend::kDigitalInt8:
        c = digital_linear_cost(lin->in_dim(), lin->out_dim(), tokens, 8, d);
        break;
    }
    c.layer = lin->name();
    total.energy_pj += c.energy_pj;
    total.latency_ns += c.latency_ns;
    total.layers.push_back(std::move(c));
  }
  return total;
}

}  // namespace nora::cost
