// CLI binding for cost::DeviceCosts: every physical constant of the cost
// model (and of the timing co-simulator, which shares the struct) becomes
// an overridable --flag, so benches can sweep device assumptions without
// recompiling. Values are validated on read — a negative or non-finite
// "physical constant" is always a typo, and latency/throughput constants
// must be strictly positive or the models divide by zero.
#pragma once

#include "cost/cost_model.hpp"
#include "util/cli.hpp"

namespace nora::cost {

/// Read DeviceCosts overrides from `cli` on top of `base`. Flags:
///   --adc-fom-fj --dac-fom-fj --cell-read-fj --tile-read-ns
///   --cell-area-um2 --adc-area-um2 --fp32-mac-pj --int8-mac-pj
///   --digital-macs-per-ns --dram-pj-per-byte --sram-pj-per-byte
///   --dram-bytes-per-ns --chip-link-ns --chip-link-bytes-per-ns
/// Throws std::invalid_argument naming the flag and offending value when
/// a value is negative or non-finite, or when --tile-read-ns /
/// --digital-macs-per-ns / --dram-bytes-per-ns /
/// --chip-link-bytes-per-ns is zero.
DeviceCosts device_costs_from_cli(const util::Cli& cli,
                                  const DeviceCosts& base = {});

}  // namespace nora::cost
