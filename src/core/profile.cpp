#include "core/profile.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace nora::core {

namespace {
constexpr char kMagic[4] = {'N', 'P', 'R', 'O'};
constexpr std::int64_t kVersion = 1;

void write_string(std::ostream& out, const std::string& s) {
  write_i64(out, static_cast<std::int64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::int64_t n = read_i64(in);
  if (n < 0 || n > (1 << 16)) throw std::runtime_error("profile: bad string");
  std::string s(static_cast<std::size_t>(n), '\0');
  in.read(s.data(), n);
  if (!in) throw std::runtime_error("profile: truncated string");
  return s;
}

void write_floats(std::ostream& out, const std::vector<float>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::istream& in) {
  const std::int64_t n = read_i64(in);
  if (n < 0 || n > (1 << 24)) throw std::runtime_error("profile: bad vector");
  std::vector<float> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  if (!in) throw std::runtime_error("profile: truncated vector");
  return v;
}
}  // namespace

NoraProfile make_profile(nn::TransformerLM& model,
                         const eval::SynthLambada& task,
                         const NoraOptions& opts) {
  NoraProfile profile;
  profile.lambda = opts.lambda;
  profile.layers = calibrate(model, task, opts.calib_examples);
  return profile;
}

void save_profile(const std::string& path, const NoraProfile& profile) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_profile: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  write_i64(out, kVersion);
  write_f32(out, profile.lambda);
  write_i64(out, static_cast<std::int64_t>(profile.layers.size()));
  for (const auto& layer : profile.layers) {
    write_string(out, layer.layer);
    write_floats(out, layer.act_abs_max);
    write_floats(out, layer.w_abs_max);
  }
  if (!out) throw std::runtime_error("save_profile: write failed for " + path);
}

NoraProfile load_profile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_profile: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("load_profile: bad magic in " + path);
  }
  if (read_i64(in) != kVersion) {
    throw std::runtime_error("load_profile: unsupported version in " + path);
  }
  NoraProfile profile;
  profile.lambda = read_f32(in);
  const std::int64_t n = read_i64(in);
  if (n < 0 || n > (1 << 16)) throw std::runtime_error("load_profile: bad count");
  for (std::int64_t i = 0; i < n; ++i) {
    LayerCalibration layer;
    layer.layer = read_string(in);
    layer.act_abs_max = read_floats(in);
    layer.w_abs_max = read_floats(in);
    profile.layers.push_back(std::move(layer));
  }
  return profile;
}

void deploy_analog_with_profile(nn::TransformerLM& model,
                                const NoraProfile& profile,
                                const cim::TileConfig& tile, float s_min,
                                std::uint64_t seed) {
  const auto linears = model.linear_layers();
  if (linears.size() != profile.layers.size()) {
    throw std::invalid_argument("deploy_analog_with_profile: layer count mismatch");
  }
  for (std::size_t i = 0; i < linears.size(); ++i) {
    if (linears[i]->name() != profile.layers[i].layer) {
      throw std::invalid_argument("deploy_analog_with_profile: layer '" +
                                  linears[i]->name() + "' does not match '" +
                                  profile.layers[i].layer + "'");
    }
    auto s = smoothing_vector(profile.layers[i], profile.lambda, s_min);
    linears[i]->to_analog(tile, std::move(s),
                          util::derive_seed(seed, linears[i]->name()));
  }
}

}  // namespace nora::core
