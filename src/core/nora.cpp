#include "core/nora.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "tensor/stats.hpp"
#include "util/thread_pool.hpp"

namespace nora::core {

std::vector<LayerCalibration> calibrate(nn::TransformerLM& model,
                                        const eval::SynthLambada& task,
                                        int n_examples) {
  if (model.is_analog()) {
    throw std::logic_error("calibrate: model must be digital during calibration");
  }
  const auto linears = model.linear_layers();
  for (auto* lin : linears) lin->set_capture_input(true);
  for (const auto& tokens : task.calibration_set(n_examples)) {
    model.forward(tokens, /*training=*/false);
  }
  std::vector<LayerCalibration> out;
  out.reserve(linears.size());
  for (auto* lin : linears) {
    LayerCalibration cal;
    cal.layer = lin->name();
    cal.act_abs_max.assign(lin->input_abs_max().begin(), lin->input_abs_max().end());
    cal.w_abs_max = lin->weight_row_abs_max();
    out.push_back(std::move(cal));
    lin->set_capture_input(false);
  }
  return out;
}

std::vector<float> smoothing_vector(const LayerCalibration& cal, float lambda,
                                    float s_min) {
  if (cal.act_abs_max.size() != cal.w_abs_max.size()) {
    throw std::invalid_argument("smoothing_vector: channel count mismatch");
  }
  std::vector<float> s(cal.act_abs_max.size(), 1.0f);
  for (std::size_t k = 0; k < s.size(); ++k) {
    const float ax = cal.act_abs_max[k];
    const float wx = cal.w_abs_max[k];
    // s_k = max|x_k|^lambda / max|w_k|^(1-lambda). Dead channels (no
    // activation or zero weight row) keep s = 1.
    if (ax <= 0.0f || wx <= 0.0f) continue;
    const float v = std::pow(ax, lambda) / std::pow(wx, 1.0f - lambda);
    s[k] = std::isfinite(v) ? std::max(v, s_min) : 1.0f;
  }
  return s;
}

std::vector<LayerCalibration> deploy_analog(nn::TransformerLM& model,
                                            const eval::SynthLambada& task,
                                            const DeployOptions& opts,
                                            faults::DeploymentReport* report) {
  // Grow the execution pool up front so the first forward doesn't pay
  // the thread-spawn cost (a no-op at the default n_threads = 1).
  if (opts.tile.n_threads > 1) {
    util::ThreadPool::global().ensure(opts.tile.n_threads);
  }
  std::vector<LayerCalibration> cals;
  if (opts.nora.enabled) {
    cals = calibrate(model, task, opts.nora.calib_examples);
  }
  const auto linears = model.linear_layers();
  std::vector<std::vector<float>> s_vecs(linears.size());
  for (std::size_t i = 0; i < linears.size(); ++i) {
    if (opts.nora.enabled) {
      s_vecs[i] = smoothing_vector(cals[i], opts.nora.lambda, opts.nora.s_min);
    }
  }
  // Programming is deterministic given the layer seed, so a layer can be
  // re-programmed at any time to restore its exact as-deployed state.
  const auto program_layer = [&](std::size_t i) {
    std::vector<float> s = s_vecs[i];
    linears[i]->to_analog(opts.tile, std::move(s),
                          util::derive_seed(opts.seed, linears[i]->name()));
  };
  for (std::size_t i = 0; i < linears.size(); ++i) program_layer(i);

  if (report == nullptr && !opts.health.enabled) return cals;

  faults::DeploymentReport local;
  faults::DeploymentReport& rep = report != nullptr ? *report : local;
  rep.layers.assign(linears.size(), faults::LayerReport{});
  for (std::size_t i = 0; i < linears.size(); ++i) {
    rep.layers[i].layer = linears[i]->name();
    rep.layers[i].faults = linears[i]->analog()->fault_stats();
  }
  if (!opts.health.enabled) return cals;

  const HealthPolicy& hp = opts.health;
  const auto fall_back = [&](std::size_t i, std::string reason) {
    linears[i]->to_digital();
    rep.layers[i].analog = false;
    rep.layers[i].reason = std::move(reason);
  };
  // (1) Structural check: a layer still riddled with faults after spare
  // remapping is beyond repair — no point probing it.
  for (std::size_t i = 0; i < linears.size(); ++i) {
    const double f = rep.layers[i].faults.residual_fault_fraction();
    if (f > hp.max_residual_fault_fraction) {
      char why[96];
      std::snprintf(why, sizeof why,
                    "residual fault density %.4f exceeds %.4f", f,
                    hp.max_residual_fault_fraction);
      fall_back(i, why);
    }
  }
  // (2) Probe forwards: catch non-finite outputs (the AnalogMatmul guard
  // names the offending layer), degrading one layer per attempt.
  const auto probe_set = task.calibration_set(hp.probe_examples);
  for (std::size_t attempt = 0; attempt <= linears.size(); ++attempt) {
    for (auto* lin : linears) {
      if (lin->is_analog()) lin->analog()->reset_stats();
    }
    try {
      for (const auto& tokens : probe_set) {
        model.forward(tokens, /*training=*/false);
      }
      break;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      bool matched = false;
      for (std::size_t i = 0; i < linears.size(); ++i) {
        if (!linears[i]->is_analog()) continue;
        if (what.find("AnalogMatmul[" + linears[i]->name() + "]") !=
            std::string::npos) {
          rep.layers[i].nonfinite_output = true;
          fall_back(i, "non-finite output during health probe");
          matched = true;
          break;
        }
      }
      if (!matched) throw;  // not an analog-layer guard: genuine error
    }
  }
  // (3) ADC saturation over the probe batch.
  for (std::size_t i = 0; i < linears.size(); ++i) {
    if (!linears[i]->is_analog()) continue;
    const double rate = linears[i]->analog()->adc_saturation_rate();
    rep.layers[i].adc_saturation_rate = rate;
    if (rate > hp.max_adc_saturation_rate) {
      char why[96];
      std::snprintf(why, sizeof why,
                    "ADC saturation rate %.3f exceeds %.3f", rate,
                    hp.max_adc_saturation_rate);
      fall_back(i, why);
    }
  }
  // (4) Re-program the survivors from their original seeds so the probe
  // leaves no trace in their noise streams: deployment with health
  // checking produces the same analog state as deployment without it.
  for (std::size_t i = 0; i < linears.size(); ++i) {
    if (linears[i]->is_analog()) program_layer(i);
  }
  return cals;
}

std::vector<LayerDistStats> distribution_stats(nn::TransformerLM& model,
                                               const eval::SynthLambada& task,
                                               const NoraOptions& nora,
                                               bool apply_nora) {
  if (model.is_analog()) {
    throw std::logic_error("distribution_stats: run on the digital model");
  }
  // One pass for ranges (to build s), one pass capturing full inputs.
  const auto cals = calibrate(model, task, nora.calib_examples);
  const auto linears = model.linear_layers();
  for (auto* lin : linears) lin->set_capture_full(true);
  for (const auto& tokens : task.calibration_set(nora.calib_examples)) {
    model.forward(tokens, /*training=*/false);
  }
  std::vector<LayerDistStats> out;
  out.reserve(linears.size());
  for (std::size_t i = 0; i < linears.size(); ++i) {
    nn::Linear* lin = linears[i];
    // These analytics describe the fp32 reference distributions; a layer
    // already re-targeted to a quantized backend (e.g. kept INT8 after a
    // degraded deployment) would contribute misleading rows.
    if (lin->is_int8()) {
      lin->set_capture_full(false);
      continue;
    }
    LayerDistStats st;
    st.layer = lin->name();
    Matrix x = lin->captured_inputs();
    Matrix w = lin->weight().value;
    if (apply_nora) {
      const auto s = smoothing_vector(cals[i], nora.lambda, nora.s_min);
      for (std::int64_t t = 0; t < x.rows(); ++t) {
        auto row = x.row(t);
        for (std::int64_t c = 0; c < x.cols(); ++c) row[c] /= s[static_cast<std::size_t>(c)];
      }
      for (std::int64_t k = 0; k < w.rows(); ++k) {
        auto row = w.row(k);
        const float sk = s[static_cast<std::size_t>(k)];
        for (auto& v : row) v *= sk;
      }
    }
    st.input_kurtosis = stats::kurtosis(x);
    st.weight_kurtosis = stats::kurtosis(w);
    out.push_back(std::move(st));
    lin->set_capture_full(false);
  }
  return out;
}

void deploy_digital_int8(nn::TransformerLM& model,
                         const eval::SynthLambada& task,
                         const NoraOptions& nora, bool static_act) {
  std::vector<LayerCalibration> cals;
  if (nora.enabled || static_act) {
    cals = calibrate(model, task, nora.calib_examples);
  }
  const auto linears = model.linear_layers();
  for (std::size_t i = 0; i < linears.size(); ++i) {
    std::vector<float> s;
    if (nora.enabled) s = smoothing_vector(cals[i], nora.lambda, nora.s_min);
    float static_scale = 0.0f;
    if (static_act) {
      // Calibrated per-tensor range of the (rescaled) activations.
      float amax = 0.0f;
      for (std::size_t k = 0; k < cals[i].act_abs_max.size(); ++k) {
        const float sk = s.empty() ? 1.0f : s[k];
        amax = std::max(amax, cals[i].act_abs_max[k] / sk);
      }
      static_scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    }
    linears[i]->to_int8(std::move(s), static_scale);
  }
}

void set_read_time(nn::TransformerLM& model, float t_seconds) {
  bool any_analog = false;
  bool any_drift = false;
  for (auto* lin : model.linear_layers()) {
    if (!lin->is_analog()) continue;
    any_analog = true;
    any_drift |= lin->analog()->config().drift_enabled;
    lin->analog()->set_read_time(t_seconds);
  }
  if (t_seconds > 0.0f && any_analog && !any_drift) {
    throw std::logic_error(
        "core::set_read_time: no analog layer was deployed with "
        "tile.drift_enabled — advancing the drift clock would silently "
        "measure nothing");
  }
}

void refresh_analog_layer(nn::Linear& layer, std::uint64_t deploy_seed) {
  const cim::AnalogMatmul* analog = layer.analog();
  if (analog == nullptr) {
    throw std::logic_error("refresh_analog_layer: layer is not analog");
  }
  const cim::TileConfig cfg = analog->config();
  std::vector<float> s(analog->s().begin(), analog->s().end());
  const auto wear = analog->wear();  // copy: to_analog destroys the backend
  layer.to_analog(cfg, std::move(s), util::derive_seed(deploy_seed, layer.name()));
  for (const auto& rec : wear) {
    layer.analog()->wear_stuck(rec.k, rec.n, rec.value);
  }
}

std::vector<LayerDistStats> scaling_factor_stats(nn::TransformerLM& model) {
  std::vector<LayerDistStats> out;
  for (auto* lin : model.linear_layers()) {
    // Layers degraded to the digital path have no analog backend, and an
    // analog layer that never ran a forward has no alpha statistics —
    // both would otherwise show up as misleading zero rows.
    if (!lin->is_analog()) continue;
    if (lin->analog()->stats().alpha_count == 0) continue;
    LayerDistStats st;
    st.layer = lin->name();
    st.alpha_gamma_gmax = lin->analog()->mean_alpha_gamma_gmax();
    out.push_back(std::move(st));
  }
  return out;
}

}  // namespace nora::core
