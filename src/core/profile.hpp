// Persistent NORA calibration profiles.
//
// The paper (Sec. IV, citing SmoothQuant): "this component could be
// calculated by a small calibration dataset offline and used for all
// tasks". A NoraProfile captures exactly that artifact — the per-layer
// per-channel activation/weight ranges plus lambda — so a deployment can
// program tiles without re-running calibration (or even without the
// calibration data being present).
//
// Format: magic "NPRO", version, lambda, then per layer: name,
// act_abs_max[], w_abs_max[].
#pragma once

#include <string>
#include <vector>

#include "core/nora.hpp"

namespace nora::core {

struct NoraProfile {
  float lambda = 0.5f;
  std::vector<LayerCalibration> layers;
};

/// Build a profile by calibrating the (digital) model.
NoraProfile make_profile(nn::TransformerLM& model,
                         const eval::SynthLambada& task,
                         const NoraOptions& opts);

void save_profile(const std::string& path, const NoraProfile& profile);
NoraProfile load_profile(const std::string& path);  // throws on corruption

/// Deploy all linear layers to analog using a saved profile (layer names
/// must match the model). Throws std::invalid_argument on mismatch.
void deploy_analog_with_profile(nn::TransformerLM& model,
                                const NoraProfile& profile,
                                const cim::TileConfig& tile, float s_min,
                                std::uint64_t seed);

}  // namespace nora::core
