// NORA — Noise-Optimized Rescaling (the paper's contribution, Sec. IV).
//
// For every analog-mapped linear layer, a per-input-channel rescale
//   s_k = max|x_k|^lambda / max|w_k|^(1-lambda)          (Sec. IV)
// is folded into the tile's scaling factors: weights are programmed as
// w_kj * s_k / gamma'_j (Eq. 6) and inputs streamed as x_k / (alpha'_i s_k)
// (Eq. 7). The product of scale-backs alpha'_i * gamma'_j (Eq. 8) shrinks,
// which (a) tightens the input distribution entering the DAC (less
// quantization/clipping loss) and (b) raises the output current into the
// ADC (higher SNR against additive Gaussian noise). The transform is
// mathematically exact — with all non-idealities disabled the model
// output is unchanged.
//
// max|x_k| comes from a small offline calibration pass (the paper uses
// the Pile; we use held-out SynthLambada sequences), exploiting that LLM
// activation outliers live in fixed channels regardless of input [4,33].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cim/tile_config.hpp"
#include "eval/synthlambada.hpp"
#include "faults/deployment_report.hpp"
#include "nn/transformer.hpp"

namespace nora::core {

struct NoraOptions {
  bool enabled = true;
  /// Migration strength: 0 = all burden on weights' side unused (s from
  /// weights only), 1 = s from activations only. Paper follows
  /// SmoothQuant's default 0.5.
  float lambda = 0.5f;
  /// Lower clamp on s entries (guards dead channels).
  float s_min = 1e-3f;
  int calib_examples = 32;
};

struct LayerCalibration {
  std::string layer;
  std::vector<float> act_abs_max;  // per input channel, from calibration
  std::vector<float> w_abs_max;    // per input channel (row max of W)
};

/// Run the offline calibration pass on the *digital* model: record
/// per-channel max|x_k| at the input of every linear layer.
std::vector<LayerCalibration> calibrate(nn::TransformerLM& model,
                                        const eval::SynthLambada& task,
                                        int n_examples);

/// The NORA smoothing vector for one layer (clamped, NaN-safe).
std::vector<float> smoothing_vector(const LayerCalibration& cal, float lambda,
                                    float s_min);

/// Per-layer health check for fault-tolerant deployment: a layer whose
/// post-repair fault density, probe-time ADC saturation rate, or output
/// finiteness violates these thresholds is degraded to the digital
/// backend (graceful degradation instead of silent garbage).
struct HealthPolicy {
  bool enabled = false;
  /// Max tolerated fault density in the mapped columns after spare
  /// remapping.
  float max_residual_fault_fraction = 0.02f;
  /// Max tolerated ADC saturation rate over the probe batch.
  float max_adc_saturation_rate = 0.5f;
  /// Calibration sequences forwarded through the deployed model to
  /// probe saturation and non-finite outputs.
  int probe_examples = 2;
};

struct DeployOptions {
  cim::TileConfig tile;       // hardware operating point (Table II etc.)
                              // tile.n_threads sets the execution width
                              // of every deployed analog layer; deploy
                              // grows the global thread pool to match.
                              // Results are bit-identical for any value
                              // (see AnalogMatmul::forward).
  NoraOptions nora;           // nora.enabled = false -> naive mapping
  HealthPolicy health;        // off by default: no probe, no fallback
  std::uint64_t seed = 2025;  // per-layer analog seeds derive from this
};

/// Convert every linear layer of the model to the analog backend
/// (running calibration first if NORA is enabled). The model must
/// currently be digital. Returns the per-layer calibrations used.
///
/// When opts.health.enabled, a post-deployment health pass runs:
/// structurally broken layers (fault density beyond repair), layers
/// producing non-finite probe outputs, and layers saturating the ADC
/// beyond the policy threshold fall back to the digital path; surviving
/// analog layers are re-programmed from their original seeds so the
/// probe leaves no trace in their noise streams. If `report` is non-null
/// it is filled with the per-layer outcome (also when health checking is
/// disabled, in which case it is purely observational).
std::vector<LayerCalibration> deploy_analog(
    nn::TransformerLM& model, const eval::SynthLambada& task,
    const DeployOptions& opts, faults::DeploymentReport* report = nullptr);

// ---------------------------------------------------------------------
// Distribution analytics (Fig. 4 / Fig. 6).

struct LayerDistStats {
  std::string layer;
  double input_kurtosis = 0.0;   // of x (naive) or x / s (NORA)
  double weight_kurtosis = 0.0;  // of W (naive) or W * s (NORA)
  double alpha_gamma_gmax = 0.0; // only filled after analog forwards
};

/// Capture activations on the digital model over calibration data and
/// report per-layer input/weight kurtosis as they would enter the tiles,
/// i.e. after dividing/multiplying by this layer's s (pass lambda < 0 or
/// nora.enabled=false semantics via `apply_nora`).
std::vector<LayerDistStats> distribution_stats(nn::TransformerLM& model,
                                               const eval::SynthLambada& task,
                                               const NoraOptions& nora,
                                               bool apply_nora);

/// After analog forwards, collect mean alpha*gamma*g_max per layer.
/// Layers degraded to the digital path and analog layers that never ran
/// a forward are skipped instead of reported as zeros.
std::vector<LayerDistStats> scaling_factor_stats(nn::TransformerLM& model);

/// PCM drift: re-read every analog layer t seconds after programming.
/// Throws std::logic_error when t > 0 and the model holds analog layers
/// but none was deployed with tile.drift_enabled — advancing the clock
/// would silently measure nothing (a classic lifetime-sweep foot-gun).
void set_read_time(nn::TransformerLM& model, float t_seconds);

/// Reprogram one currently-analog layer from its original deployment
/// seed: the rescale vector and tile config are taken from the live
/// backend, so the result is the exact as-deployed analog state — drift
/// is reset and transient upsets are cleared. Permanent wear recorded on
/// the old backend is replayed onto the new one (reprogramming cannot
/// fix broken silicon). This is the refresh rung of the runtime
/// escalation ladder; it is also usable standalone.
void refresh_analog_layer(nn::Linear& layer, std::uint64_t deploy_seed);

/// Digital W8A8 INT8 deployment — the digital-core baseline family of
/// the paper's related work (Sec. VI). nora.enabled selects plain INT8
/// (false) vs SmoothQuant-rescaled INT8 (true); the rescale vector uses
/// the same calibration and formula as NORA. static_act selects static
/// per-tensor activation quantization (scales fixed from calibration —
/// the deployment mode SmoothQuant targets) instead of per-token
/// dynamic scaling.
void deploy_digital_int8(nn::TransformerLM& model,
                         const eval::SynthLambada& task,
                         const NoraOptions& nora, bool static_act = false);

}  // namespace nora::core
