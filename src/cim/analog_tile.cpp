#include "cim/analog_tile.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/simd.hpp"
#include "util/simd_kernels.hpp"

namespace nora::cim {

AnalogTile::AnalogTile(const Matrix& w_slice, const TileConfig& cfg,
                       util::Rng rng)
    : cfg_(cfg),
      rows_(w_slice.rows()),
      cols_(w_slice.cols()),
      adc_(cfg.adc_steps(), cfg.adc_bound),
      read_noise_(cfg.w_noise),
      ir_drop_(cfg.ir_drop, static_cast<int>(w_slice.rows())),
      drift_(cfg.drift) {
  if (rows_ == 0 || cols_ == 0) {
    throw std::invalid_argument("AnalogTile: empty weight slice");
  }
  // Per-column scale gamma_j = max|w_j| (Eq. 4); zero columns map to 1 so
  // the normalized weights stay finite (their outputs are exactly zero).
  gamma_.assign(static_cast<std::size_t>(cols_), 0.0f);
  for (std::int64_t k = 0; k < rows_; ++k) {
    const auto row = w_slice.row(k);
    for (std::int64_t j = 0; j < cols_; ++j) {
      gamma_[static_cast<std::size_t>(j)] =
          std::max(gamma_[static_cast<std::size_t>(j)], std::fabs(row[j]));
    }
  }
  for (auto& g : gamma_) {
    if (g == 0.0f) g = 1.0f;
  }
  // Store the conductances transposed so each column's weights are
  // contiguous for the per-column MVM loop.
  w_hat_t_ = Matrix(cols_, rows_);
  for (std::int64_t k = 0; k < rows_; ++k) {
    for (std::int64_t j = 0; j < cols_; ++j) {
      w_hat_t_.at(j, k) = w_slice.at(k, j) / gamma_[static_cast<std::size_t>(j)];
    }
  }
  // Program-time non-idealities, sampled exactly once.
  if (cfg_.device == DeviceKind::kReramQuantized) {
    // Discrete conductance levels, bit-sliced over multiple cells:
    // effective precision = bits_per_cell * cells_per_weight bits.
    const int total_bits = cfg_.reram_bits_per_cell * cfg_.reram_cells_per_weight;
    if (total_bits <= 0 || total_bits > 16) {
      throw std::invalid_argument("AnalogTile: ReRAM precision out of range");
    }
    const noise::UniformQuantizer grid(static_cast<float>(1 << total_bits), 1.0f);
    float* p = w_hat_t_.data();
    for (std::int64_t i = 0; i < w_hat_t_.size(); ++i) p[i] = grid.quantize(p[i]);
  }
  // Hard faults: sampled over the physical geometry (logical columns
  // plus spares) from a dedicated child stream, so fault-free configs
  // leave every existing RNG stream untouched.
  if (cfg_.spare_cols < 0) {
    throw std::invalid_argument("AnalogTile: spare_cols must be >= 0");
  }
  const std::int64_t phys_cols = cols_ + cfg_.spare_cols;
  fault_stats_.devices = rows_ * cols_;
  fault_stats_.physical_devices = rows_ * phys_cols;
  fault_stats_.spare_cols = cfg_.spare_cols;
  phys_col_.resize(static_cast<std::size_t>(cols_));
  std::iota(phys_col_.begin(), phys_col_.end(), std::int64_t{0});
  if (cfg_.faults.any()) {
    util::Rng fault_rng = rng.split("faults");
    fault_map_ =
        faults::FaultMap::sample(rows_, phys_cols, cfg_.faults, fault_rng);
    fault_stats_.faulty_devices = fault_map_.faulty_total();
    fault_stats_.stuck_zero = fault_map_.stuck_zero_count();
    fault_stats_.stuck_gmax = fault_map_.stuck_gmax_count();
    fault_stats_.dead_rows = fault_map_.dead_rows();
    fault_stats_.dead_cols = fault_map_.dead_cols();
    fault_stats_.tile_dead = fault_map_.tile_dead();
    // Spare-column remap: move the worst logical columns onto the
    // cleanest spares (a remap must strictly improve the column).
    if (cfg_.spare_cols > 0 && !fault_map_.tile_dead()) {
      std::vector<bool> spare_used(static_cast<std::size_t>(cfg_.spare_cols),
                                   false);
      for (std::int64_t j = 0; j < cols_; ++j) {
        const double density = fault_map_.column_fault_fraction(j);
        if (density <= cfg_.spare_remap_threshold) continue;
        std::int64_t best = -1;
        double best_density = density;
        for (std::int64_t sp = 0; sp < cfg_.spare_cols; ++sp) {
          if (spare_used[static_cast<std::size_t>(sp)]) continue;
          const double d = fault_map_.column_fault_fraction(cols_ + sp);
          if (d < best_density) {
            best = sp;
            best_density = d;
          }
        }
        if (best >= 0) {
          spare_used[static_cast<std::size_t>(best)] = true;
          phys_col_[static_cast<std::size_t>(j)] = cols_ + best;
          ++fault_stats_.cols_remapped;
        }
      }
    }
    for (std::int64_t j = 0; j < cols_; ++j) {
      fault_stats_.residual_faulty +=
          fault_map_.faulty_in_column(phys_col_[static_cast<std::size_t>(j)]);
    }
  }

  const noise::ProgrammingNoise prog(cfg_.prog_noise_scale);
  // Keep the targets around only if the verify loop needs them.
  const bool verify = cfg_.max_program_retries > 0 && prog.enabled();
  std::vector<float> targets;
  if (verify) {
    targets.assign(w_hat_t_.data(), w_hat_t_.data() + w_hat_t_.size());
  }
  util::Rng prog_rng = rng.split("programming");
  prog.apply(w_hat_t_, prog_rng, cfg_.write_verify_iters);
  force_faults(w_hat_t_);
  if (verify) {
    // Program-verify-reprogram [Mackin'22-style closed loop]: read each
    // device back, and while it is outside the acceptance band, issue
    // another programming attempt. Stuck devices never converge — they
    // burn their retry budget and are recorded as verify failures.
    util::Rng verify_rng = rng.split("verify");
    float* p = w_hat_t_.data();
    for (std::int64_t j = 0; j < cols_; ++j) {
      const std::int64_t pc = phys_col_[static_cast<std::size_t>(j)];
      for (std::int64_t k = 0; k < rows_; ++k) {
        const std::int64_t i = j * rows_ + k;
        const bool stuck =
            !fault_map_.empty() &&
            fault_map_.at(pc, k) != faults::DeviceFault::kNone;
        if (stuck) {
          fault_stats_.reprogram_rounds += cfg_.max_program_retries;
          if (std::fabs(p[i] - targets[static_cast<std::size_t>(i)]) >
              cfg_.program_tolerance) {
            ++fault_stats_.verify_failures;
          }
          continue;
        }
        const float target = targets[static_cast<std::size_t>(i)];
        int r = 0;
        while (std::fabs(p[i] - target) > cfg_.program_tolerance &&
               r < cfg_.max_program_retries) {
          p[i] = target + prog.correct(p[i] - target, target, verify_rng);
          ++r;
        }
        if (r > 0) {
          ++fault_stats_.reprogram_devices;
          fault_stats_.reprogram_rounds += r;
        }
        if (std::fabs(p[i] - target) > cfg_.program_tolerance) {
          ++fault_stats_.verify_failures;
        }
      }
    }
  }
  if (cfg_.drift_enabled) {
    util::Rng drift_rng = rng.split("drift");
    drift_nu_t_ = drift_.sample_exponents(cols_, rows_, drift_rng);
  }
  w_hat_t_effective_ = w_hat_t_;
  if (cfg_.abft_checksum) {
    // The checksum column is programmed after repair/verify completes, so
    // the as-programmed signature absorbs programming noise, stuck-at
    // faults and spare remapping: only *post-programming* change flags.
    abft_rng_ = rng.split("abft");
    abft_ref_ = abft_signature(w_hat_t_);
    abft_eff_ = abft_ref_;
    abft_gamma_ = 1.0f;
    for (double c : abft_ref_) {
      abft_gamma_ = std::max(abft_gamma_, static_cast<float>(std::fabs(c)));
    }
  }
}

std::vector<double> AnalogTile::abft_signature(const Matrix& w_hat_t) const {
  std::vector<double> sig(static_cast<std::size_t>(rows_), 0.0);
  for (std::int64_t j = 0; j < cols_; ++j) {
    const float* wcol = w_hat_t.data() + j * rows_;
    const double gamma = gamma_[static_cast<std::size_t>(j)];
    for (std::int64_t k = 0; k < rows_; ++k) {
      sig[static_cast<std::size_t>(k)] += gamma * wcol[k];
    }
  }
  return sig;
}

void AnalogTile::force_faults(Matrix& w_hat_t) const {
  if (fault_map_.empty()) return;
  for (std::int64_t j = 0; j < cols_; ++j) {
    fault_map_.apply_to_column(phys_col_[static_cast<std::size_t>(j)],
                               w_hat_t.row(j));
  }
}

void AnalogTile::force_wear(Matrix& w_hat_t) const {
  for (const WearRecord& w : wear_) w_hat_t.at(w.j, w.k) = w.value;
}

void AnalogTile::reset_stats() {
  adc_reads_ = 0;
  adc_saturations_ = 0;
  abft_ = AbftStats{};
}

void AnalogTile::set_read_time(float t_seconds) {
  read_time_s_ = t_seconds;
  w_hat_t_effective_ = w_hat_t_;
  if (cfg_.drift_enabled && t_seconds > 0.0f) {
    drift_.apply(w_hat_t_effective_, drift_nu_t_, t_seconds);
    // Stuck devices are pinned at their defect conductance; drift acts
    // only on working devices.
    force_faults(w_hat_t_effective_);
    force_wear(w_hat_t_effective_);
  }
  // The re-read re-derives the effective state, clearing transient
  // upsets; the checksum signature follows the devices it sums.
  if (cfg_.abft_checksum) abft_eff_ = abft_signature(w_hat_t_effective_);
}

void AnalogTile::upset_device(std::int64_t j, std::int64_t k, float value) {
  if (j < 0 || j >= cols_ || k < 0 || k >= rows_) {
    throw std::invalid_argument("AnalogTile::upset_device: out of range");
  }
  const float old = w_hat_t_effective_.at(j, k);
  w_hat_t_effective_.at(j, k) = value;
  if (cfg_.abft_checksum) {
    abft_eff_[static_cast<std::size_t>(k)] +=
        double(gamma_[static_cast<std::size_t>(j)]) * (double(value) - old);
  }
}

void AnalogTile::wear_stuck(std::int64_t j, std::int64_t k, float value) {
  if (j < 0 || j >= cols_ || k < 0 || k >= rows_) {
    throw std::invalid_argument("AnalogTile::wear_stuck: out of range");
  }
  wear_.push_back({j, k, value});
  w_hat_t_.at(j, k) = value;  // persists across re-reads and drift updates
  upset_device(j, k, value);  // and takes effect immediately
}

float AnalogTile::read_sigma() const {
  const float sigma = read_noise_.sigma();
  if (!cfg_.drift_enabled) return sigma;
  const float sigma_1f = drift_.read_noise_sigma(read_time_s_);
  if (sigma_1f <= 0.0f) return sigma;
  // 1/f read noise grows slowly with time since programming; it adds in
  // quadrature with the short-term cycle-to-cycle component.
  return std::sqrt(sigma * sigma + sigma_1f * sigma_1f);
}

bool AnalogTile::mvm(std::span<const float> x_hat, float x_hat_l2, float alpha,
                     std::span<float> y, util::Rng& rng, util::Rng* abft_rng,
                     TileRunCounters& counters, TileMvmScratch& scratch) const {
  if (static_cast<std::int64_t>(x_hat.size()) != rows_ ||
      static_cast<std::int64_t>(y.size()) != cols_) {
    throw std::invalid_argument("AnalogTile::mvm: size mismatch");
  }
  if (cfg_.abft_checksum && abft_rng == nullptr) {
    throw std::invalid_argument("AnalogTile::mvm: ABFT needs a checksum stream");
  }
  const bool use_ir = ir_drop_.enabled();
  const float sigma_r = read_sigma();
  // Batch the per-column noise draws: the per-column pattern (read noise
  // then output noise, each gated by its config flag) is data-independent,
  // so one gaussian_fill produces exactly the draw sequence the former
  // per-column rng.gaussian calls consumed, in the same order. Scaling a
  // standard normal g as `0.0 + stddev * g` below is the literal
  // expression gaussian(0.0, stddev) evaluates, so every output bit is
  // unchanged. stddev_r keeps the original single-precision
  // sigma_r * x_hat_l2 product before widening, matching the old
  // call-site argument exactly.
  const int draws_per_col =
      (sigma_r > 0.0f ? 1 : 0) + (cfg_.out_noise > 0.0f ? 1 : 0);
  const double* g = nullptr;
  if (draws_per_col > 0) {
    const std::size_t need =
        static_cast<std::size_t>(draws_per_col) * static_cast<std::size_t>(cols_);
    if (scratch.noise.size() < need) scratch.noise.resize(need);
    rng.gaussian_fill(std::span<double>(scratch.noise.data(), need));
    g = scratch.noise.data();
  }
  const double stddev_r = sigma_r * x_hat_l2;
  const double stddev_o = cfg_.out_noise;
  bool any_saturated = false;
  // Per-column epilogue: short-term read noise (aggregated, statistically
  // exact) and the system additive output noise, both before the ADC,
  // then quantize and scale into y. The draws were prefilled in column
  // order, so grouping columns below does not reorder them.
  const auto finish_col = [&](std::int64_t j, float acc) {
    if (sigma_r > 0.0f) {
      acc += static_cast<float>(0.0 + stddev_r * (*g++));
    }
    if (cfg_.out_noise > 0.0f) {
      acc += static_cast<float>(0.0 + stddev_o * (*g++));
    }
    ++counters.adc_reads;
    if (adc_.saturates(acc)) {
      ++counters.adc_saturations;
      any_saturated = true;
    }
    acc = adc_.quantize(acc);
    y[j] += alpha * gamma_[static_cast<std::size_t>(j)] * acc;
  };
  // Columns are mutually independent, and one column's accumulation is a
  // serial double-add chain; running four side by side pipelines the
  // chains through the FP units without changing any column's operation
  // sequence — every output bit matches the one-column-at-a-time loop.
  const float* wbase = w_hat_t_effective_.data();
  const std::size_t n = static_cast<std::size_t>(rows_);
  // Kernel dispatch, resolved once per process: the AVX2 kernels run the
  // identical per-column op sequence (including the compiled FMA
  // contractions) on eight columns at a time, so every output bit matches
  // the scalar loops below; finish_col still runs in ascending j order,
  // which keeps the prefilled noise-draw consumption order unchanged.
  const bool use_avx2 = util::simd::use_avx2();
  std::int64_t j = 0;
  if (use_ir) {
    if (use_avx2) {
      const float kappa = ir_drop_.kappa();
      for (; j + 8 <= cols_; j += 8) {
        float acc8[8];
        util::simd::ir_fused8_avx2(wbase + j * rows_, rows_, x_hat.data(), n,
                                   kappa, acc8);
        for (int t = 0; t < 8; ++t) finish_col(j + t, acc8[t]);
      }
    }
    for (; j + 4 <= cols_; j += 4) {
      float acc4[4];
      ir_drop_.accumulate_columns_fused4(wbase + j * rows_,
                                         wbase + (j + 1) * rows_,
                                         wbase + (j + 2) * rows_,
                                         wbase + (j + 3) * rows_,
                                         x_hat.data(), n, acc4);
      finish_col(j, acc4[0]);
      finish_col(j + 1, acc4[1]);
      finish_col(j + 2, acc4[2]);
      finish_col(j + 3, acc4[3]);
    }
  } else {
    if (use_avx2) {
      for (; j + 8 <= cols_; j += 8) {
        float acc8[8];
        util::simd::mvm_dot8_avx2(wbase + j * rows_, rows_, x_hat.data(), n,
                                  acc8);
        for (int t = 0; t < 8; ++t) finish_col(j + t, acc8[t]);
      }
    }
    for (; j + 4 <= cols_; j += 4) {
      const float* w0 = wbase + j * rows_;
      const float* w1 = wbase + (j + 1) * rows_;
      const float* w2 = wbase + (j + 2) * rows_;
      const float* w3 = wbase + (j + 3) * rows_;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double xk = x_hat[k];
        s0 += double(w0[k]) * xk;
        s1 += double(w1[k]) * xk;
        s2 += double(w2[k]) * xk;
        s3 += double(w3[k]) * xk;
      }
      finish_col(j, static_cast<float>(s0));
      finish_col(j + 1, static_cast<float>(s1));
      finish_col(j + 2, static_cast<float>(s2));
      finish_col(j + 3, static_cast<float>(s3));
    }
  }
  for (; j < cols_; ++j) {
    const float* wcol = wbase + j * rows_;
    float acc;
    if (use_ir) {
      acc = ir_drop_.accumulate_column_fused(wcol, x_hat.data(), n);
    } else {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += double(wcol[k]) * x_hat[k];
      acc = static_cast<float>(s);
    }
    finish_col(j, acc);
  }
  if (cfg_.abft_checksum) {
    abft_check(x_hat, x_hat_l2, alpha, *abft_rng, counters.abft);
  }
  return any_saturated;
}

bool AnalogTile::mvm(std::span<const float> x_hat, float x_hat_l2, float alpha,
                     std::span<float> y, util::Rng& rng) {
  TileRunCounters counters;
  const bool saturated =
      mvm(x_hat, x_hat_l2, alpha, y, rng,
          cfg_.abft_checksum ? &abft_rng_ : nullptr, counters, scratch_buf_);
  add_run_counters(counters);
  return saturated;
}

void AnalogTile::add_run_counters(const TileRunCounters& c) {
  adc_reads_ += c.adc_reads;
  adc_saturations_ += c.adc_saturations;
  abft_.accumulate(c.abft);
}

void AnalogTile::abft_check(std::span<const float> x_hat, float x_hat_l2,
                            float alpha, util::Rng& abft_rng,
                            AbftStats& out) const {
  // Analog read of the checksum column (current effective conductances)
  // against the digital replay of the as-programmed signature. Both
  // sides run the identical accumulation, so an unchanged tile yields a
  // residual of exactly 0.0 — the detector has no float-rounding floor.
  double c = 0.0, d = 0.0;
  for (std::int64_t k = 0; k < rows_; ++k) {
    c += abft_eff_[static_cast<std::size_t>(k)] * x_hat[k];
    d += abft_ref_[static_cast<std::size_t>(k)] * x_hat[k];
  }
  double c_norm = c / abft_gamma_;
  double d_norm = d / abft_gamma_;
  // The checksum read suffers the same converters and noise sources as
  // any data column, drawn from a dedicated stream so the data path is
  // untouched whether or not ABFT is enabled.
  const float sigma_r = read_sigma();
  if (sigma_r > 0.0f || cfg_.out_noise > 0.0f) {
    const double noise_std =
        std::sqrt(double(sigma_r) * sigma_r * x_hat_l2 * x_hat_l2 +
                  double(cfg_.out_noise) * cfg_.out_noise);
    c_norm += abft_rng.gaussian(0.0, noise_std);
  }
  if (adc_.enabled()) {
    // Compare in the converter's output domain: the digital reference is
    // replayed through the same quantize/saturate view, so a checksum
    // read that rails the ADC (the column sums all data columns and can
    // exceed the per-column full scale) rails on BOTH sides and cancels
    // instead of flagging forever.
    c_norm = adc_.quantize(static_cast<float>(c_norm));
    d_norm = adc_.quantize(static_cast<float>(d_norm));
  }
  const double residual = double(alpha) * abft_gamma_ * (c_norm - d_norm);
  // The threshold is calibrated once against the AS-DEPLOYED noise floor
  // (short-term read noise + output noise), not the current read noise:
  // slowly-growing 1/f noise is an aging symptom the watchdog must see,
  // so it is deliberately left out of the tolerance and shows up as
  // excess residual instead.
  const double fresh_sigma = read_noise_.sigma();
  const double fresh_std =
      std::sqrt(fresh_sigma * fresh_sigma * x_hat_l2 * x_hat_l2 +
                double(cfg_.out_noise) * cfg_.out_noise);
  const double threshold =
      double(alpha) * abft_gamma_ *
      (double(cfg_.abft_threshold_sigma) * fresh_std + 0.5 * adc_.step_size());
  ++out.checks;
  const double r = std::fabs(residual);
  out.residual_abs_sum += r;
  out.residual_max = std::max(out.residual_max, r);
  out.ratio_sum += r / std::max(threshold, 1e-30);
  if (r > threshold) ++out.flags;
}

}  // namespace nora::cim
