#include "cim/analog_tile.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::cim {

AnalogTile::AnalogTile(const Matrix& w_slice, const TileConfig& cfg,
                       util::Rng rng)
    : cfg_(cfg),
      rows_(w_slice.rows()),
      cols_(w_slice.cols()),
      adc_(cfg.adc_steps(), cfg.adc_bound),
      read_noise_(cfg.w_noise),
      ir_drop_(cfg.ir_drop, static_cast<int>(w_slice.rows())),
      drift_(cfg.drift) {
  if (rows_ == 0 || cols_ == 0) {
    throw std::invalid_argument("AnalogTile: empty weight slice");
  }
  // Per-column scale gamma_j = max|w_j| (Eq. 4); zero columns map to 1 so
  // the normalized weights stay finite (their outputs are exactly zero).
  gamma_.assign(static_cast<std::size_t>(cols_), 0.0f);
  for (std::int64_t k = 0; k < rows_; ++k) {
    const auto row = w_slice.row(k);
    for (std::int64_t j = 0; j < cols_; ++j) {
      gamma_[static_cast<std::size_t>(j)] =
          std::max(gamma_[static_cast<std::size_t>(j)], std::fabs(row[j]));
    }
  }
  for (auto& g : gamma_) {
    if (g == 0.0f) g = 1.0f;
  }
  // Store the conductances transposed so each column's weights are
  // contiguous for the per-column MVM loop.
  w_hat_t_ = Matrix(cols_, rows_);
  for (std::int64_t k = 0; k < rows_; ++k) {
    for (std::int64_t j = 0; j < cols_; ++j) {
      w_hat_t_.at(j, k) = w_slice.at(k, j) / gamma_[static_cast<std::size_t>(j)];
    }
  }
  // Program-time non-idealities, sampled exactly once.
  if (cfg_.device == DeviceKind::kReramQuantized) {
    // Discrete conductance levels, bit-sliced over multiple cells:
    // effective precision = bits_per_cell * cells_per_weight bits.
    const int total_bits = cfg_.reram_bits_per_cell * cfg_.reram_cells_per_weight;
    if (total_bits <= 0 || total_bits > 16) {
      throw std::invalid_argument("AnalogTile: ReRAM precision out of range");
    }
    const noise::UniformQuantizer grid(static_cast<float>(1 << total_bits), 1.0f);
    float* p = w_hat_t_.data();
    for (std::int64_t i = 0; i < w_hat_t_.size(); ++i) p[i] = grid.quantize(p[i]);
  }
  const noise::ProgrammingNoise prog(cfg_.prog_noise_scale);
  util::Rng prog_rng = rng.split("programming");
  prog.apply(w_hat_t_, prog_rng, cfg_.write_verify_iters);
  if (cfg_.drift_enabled) {
    util::Rng drift_rng = rng.split("drift");
    drift_nu_t_ = drift_.sample_exponents(cols_, rows_, drift_rng);
  }
  w_hat_t_effective_ = w_hat_t_;
}

void AnalogTile::set_read_time(float t_seconds) {
  w_hat_t_effective_ = w_hat_t_;
  if (cfg_.drift_enabled && t_seconds > 0.0f) {
    drift_.apply(w_hat_t_effective_, drift_nu_t_, t_seconds);
  }
}

bool AnalogTile::mvm(std::span<const float> x_hat, float x_hat_l2, float alpha,
                     std::span<float> y, util::Rng& rng) {
  if (static_cast<std::int64_t>(x_hat.size()) != rows_ ||
      static_cast<std::int64_t>(y.size()) != cols_) {
    throw std::invalid_argument("AnalogTile::mvm: size mismatch");
  }
  const bool use_ir = ir_drop_.enabled();
  if (use_ir && contrib_buf_.size() != x_hat.size()) {
    contrib_buf_.resize(x_hat.size());
  }
  bool any_saturated = false;
  for (std::int64_t j = 0; j < cols_; ++j) {
    const float* wcol = w_hat_t_effective_.data() + j * rows_;
    float acc;
    if (use_ir) {
      for (std::int64_t k = 0; k < rows_; ++k) contrib_buf_[k] = wcol[k] * x_hat[k];
      acc = ir_drop_.accumulate_column(
          std::span<const float>(contrib_buf_.data(), contrib_buf_.size()));
    } else {
      double s = 0.0;
      for (std::int64_t k = 0; k < rows_; ++k) s += double(wcol[k]) * x_hat[k];
      acc = static_cast<float>(s);
    }
    // Short-term read noise (aggregated, statistically exact) and the
    // system additive output noise, both before the ADC.
    if (read_noise_.enabled()) {
      acc += static_cast<float>(rng.gaussian(0.0, read_noise_.sigma() * x_hat_l2));
    }
    if (cfg_.out_noise > 0.0f) {
      acc += static_cast<float>(rng.gaussian(0.0, cfg_.out_noise));
    }
    ++adc_reads_;
    if (adc_.saturates(acc)) {
      ++adc_saturations_;
      any_saturated = true;
    }
    acc = adc_.quantize(acc);
    y[j] += alpha * gamma_[static_cast<std::size_t>(j)] * acc;
  }
  return any_saturated;
}

}  // namespace nora::cim
