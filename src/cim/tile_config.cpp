#include "cim/tile_config.hpp"

namespace nora::cim {

TileConfig TileConfig::ideal() {
  TileConfig c;
  c.dac_bits = 0;
  c.adc_bits = 0;
  c.in_noise = 0.0f;
  c.out_noise = 0.0f;
  c.sshape_k = 0.0f;
  c.w_noise = 0.0f;
  c.prog_noise_scale = 0.0f;
  c.ir_drop = 0.0f;
  c.drift_enabled = false;
  c.bound_management = false;
  return c;
}

TileConfig TileConfig::ideal_except_out_noise(float sigma) {
  TileConfig c = ideal();
  c.out_noise = sigma;
  return c;
}

TileConfig TileConfig::ideal_except_in_noise(float sigma) {
  TileConfig c = ideal();
  c.in_noise = sigma;
  return c;
}

TileConfig TileConfig::ideal_except_adc(int bits, float bound) {
  TileConfig c = ideal();
  c.adc_bits = bits;
  c.adc_bound = bound;
  return c;
}

TileConfig TileConfig::ideal_except_dac(int bits) {
  TileConfig c = ideal();
  c.dac_bits = bits;
  return c;
}

TileConfig TileConfig::ideal_except_w_noise(float sigma) {
  TileConfig c = ideal();
  c.w_noise = sigma;
  return c;
}

TileConfig TileConfig::ideal_except_prog_noise(float scale) {
  TileConfig c = ideal();
  c.prog_noise_scale = scale;
  return c;
}

TileConfig TileConfig::ideal_except_ir_drop(float scale) {
  TileConfig c = ideal();
  c.ir_drop = scale;
  return c;
}

TileConfig TileConfig::ideal_except_sshape(float k) {
  TileConfig c = ideal();
  c.sshape_k = k;
  return c;
}

}  // namespace nora::cim
