#include "cim/mse_probe.hpp"

#include <cmath>

#include "cim/analog_matmul.hpp"
#include "tensor/ops.hpp"

namespace nora::cim {

double feature_map_mse(const TileConfig& cfg, const MseProbeOptions& opts) {
  util::Rng rng(opts.seed);
  util::Rng wrng = rng.split("weights");
  util::Rng xrng = rng.split("inputs");
  Matrix w(opts.k, opts.n);
  w.fill_gaussian(wrng, 1.0f / std::sqrt(static_cast<float>(opts.k)));
  Matrix x(opts.t, opts.k);
  x.fill_gaussian(xrng, 1.0f);
  const Matrix ref = ops::matmul(x, w);
  double total = 0.0;
  for (int r = 0; r < opts.repeats; ++r) {
    AnalogMatmul unit(w, {}, cfg, util::derive_seed(opts.seed, "probe-" + std::to_string(r)));
    total += ops::mse(unit.forward(x), ref);
  }
  return total / opts.repeats;
}

std::function<double(double)> mse_of_knob(
    std::function<TileConfig(double)> make_cfg, MseProbeOptions opts) {
  return [make_cfg = std::move(make_cfg), opts](double param) {
    return feature_map_mse(make_cfg(param), opts);
  };
}

}  // namespace nora::cim
