// A full analog matrix-multiply unit: a logical [K x N] weight matrix
// partitioned over a grid of physical tiles (paper Table II: 512x512),
// with the input path (rescale -> DAC -> non-idealities) and digital
// accumulation of per-tile partial sums.
//
// This is where NORA's rescale vector `s` (Eq. 6-8) plugs in:
//   - weights are programmed as  (w_kj * s_k) / gamma'_j
//   - inputs are streamed as      x_k / (alpha'_i * s_k)
// With all noise disabled the `s` terms cancel exactly and the unit
// computes x * W bit-for-bit (up to float rounding) — the core
// output-invariance property of the method, enforced by tests.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cim/analog_tile.hpp"
#include "cim/tile_config.hpp"
#include "faults/repair.hpp"
#include "noise/quantizer.hpp"
#include "noise/sshape.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace nora::util {
class ThreadPool;
}

namespace nora::cim {

/// Which tile-grid axis a multi-chip shard plan partitions.
enum class ShardAxis : std::uint8_t {
  kRowBlocks = 0,  // chip owns a contiguous row-block range (row split:
                   // every chip produces full-width partial sums)
  kColBlocks,      // chip owns a contiguous tile-column range (column
                   // split: chips produce disjoint output columns)
};

/// Multi-chip execution plan for ONE AnalogMatmul: the logical tile grid
/// stays a single unit (weights, streams and statistics are untouched),
/// but its (token, row-block, tile) work items are partitioned over
/// `n_chips` contiguous ranges of `axis`, each executed on that chip's
/// own ThreadPool domain. Because the sharded path always runs at
/// per-tile work-item granularity with a canonical-order reduction, the
/// output bits are invariant under axis, chip count AND per-chip thread
/// count — the plan only decides WHERE each item runs.
struct ShardPlan {
  ShardAxis axis = ShardAxis::kRowBlocks;
  int n_chips = 1;
  /// One pool per chip (the chip's compute domain); a nullptr entry runs
  /// that chip's items on the dispatching thread.
  std::vector<util::ThreadPool*> pools;
};

/// Explicit per-row noise-stream coordinates for the keyed forward
/// overload. `stream` replaces the forward-call epoch and `token`
/// replaces the in-call row index, so the caller — not the call
/// sequence — decides which noise a row sees. The serving layer keys
/// rows on (request stream, request-local position), which is what
/// makes a request's output bit-identical whether it is served alone
/// or inside a continuously-formed batch.
struct StreamKey {
  std::uint64_t stream = 0;
  std::uint64_t token = 0;
};

struct ArrayStats {
  double alpha_sum = 0.0;          // sum of final per-(token, block) alphas
  std::int64_t alpha_count = 0;
  std::int64_t dac_samples = 0;
  std::int64_t dac_clipped = 0;    // |x/alpha/s| > 1 before quantization
  std::int64_t bm_retries = 0;     // bound-management re-runs

  double mean_alpha() const {
    return alpha_count > 0 ? alpha_sum / static_cast<double>(alpha_count) : 0.0;
  }
  double dac_clip_fraction() const {
    return dac_samples > 0
               ? static_cast<double>(dac_clipped) / static_cast<double>(dac_samples)
               : 0.0;
  }
  void accumulate(const ArrayStats& o) {
    alpha_sum += o.alpha_sum;
    alpha_count += o.alpha_count;
    dac_samples += o.dac_samples;
    dac_clipped += o.dac_clipped;
    bm_retries += o.bm_retries;
  }
};

class AnalogMatmul {
 public:
  /// w: logical weights [K x N] (input dim x output dim).
  /// s: NORA rescale vector of length K, or empty for the naive mapping
  ///    (equivalent to all-ones).
  AnalogMatmul(const Matrix& w, std::vector<float> s, const TileConfig& cfg,
               std::uint64_t seed);

  std::int64_t in_dim() const { return k_; }
  std::int64_t out_dim() const { return n_; }
  const TileConfig& config() const { return cfg_; }
  /// Tile-grid geometry (timing co-sim resource shape): row blocks
  /// partition the input dim, column blocks the output dim.
  std::int64_t row_blocks() const {
    return static_cast<std::int64_t>(blocks_.size());
  }
  std::int64_t col_blocks() const {
    return blocks_.empty() ? 0
                           : static_cast<std::int64_t>(blocks_[0].tiles.size());
  }
  std::span<const float> s() const { return s_; }

  /// Label used in diagnostics/errors (typically the owning layer name).
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// x: [T x K] activations. Returns [T x N]. Every noise draw comes
  /// from a counter-keyed stream derived from (construction seed,
  /// forward-call index, token, row-block, bound-management attempt,
  /// tile), so the result is deterministic given the construction seed
  /// and the forward-call sequence — and bit-identical for ANY value of
  /// cfg.n_threads, since no stream depends on execution order. The
  /// (token x row-block) work items fan out over the global thread pool
  /// when cfg.n_threads > 1. Throws std::runtime_error naming the layer
  /// label, token and column if any output is NaN/Inf — non-finite
  /// values must not propagate silently into the rest of the
  /// transformer.
  Matrix forward(const Matrix& x);

  /// Keyed forward: row t draws its noise from (construction seed,
  /// keys[t].stream, keys[t].token, ...) instead of the internal
  /// forward-call epoch and row index, and does NOT advance the epoch
  /// counter. Rows with equal `stream` form a group: under the
  /// kAvgAbsMax policy the shared alpha is averaged per contiguous
  /// group rather than over the whole call, so a group's result does
  /// not depend on what else shares the batch. Statistics accumulate
  /// exactly like the unkeyed forward.
  Matrix forward(const Matrix& x, std::span<const StreamKey> keys);

  /// PCM drift: re-read all tiles t seconds after programming.
  void set_read_time(float t_seconds);

  // --- multi-chip sharding ---
  /// Install a multi-chip execution plan (see ShardPlan). Validates that
  /// pools has exactly plan.n_chips entries and n_chips >= 1; throws
  /// std::invalid_argument otherwise. Must not be called while a forward
  /// is in flight. The sharded path differs from the unsharded one in
  /// two DOCUMENTED, deterministic ways: (a) partial sums reduce over
  /// row blocks through a canonical stride-doubling tree instead of the
  /// legacy linear fold, and (b) bound management retries per TILE
  /// rather than per row block (each chip re-runs only its own arrays,
  /// so alpha_count counts per-tile attempts). Neither depends on the
  /// plan: any (axis, n_chips, threads) choice yields identical bits.
  void set_shard_plan(ShardPlan plan);
  /// Return to the unsharded execution path.
  void clear_shard_plan();
  bool sharded() const { return sharded_; }
  /// The installed plan, or nullptr when unsharded.
  const ShardPlan* shard_plan() const { return sharded_ ? &shard_ : nullptr; }

  // --- analytics for Fig. 6 ---
  /// Mean per-column gamma over all tiles.
  double mean_gamma() const;
  /// Running mean alpha over all forwards so far.
  double mean_alpha() const { return stats_.mean_alpha(); }
  /// mean(alpha) * mean(gamma) * g_max — the Fig. 6c quantity; smaller
  /// means larger output current into the ADC, i.e. higher SNR.
  double mean_alpha_gamma_gmax() const;

  const ArrayStats& stats() const { return stats_; }
  std::int64_t adc_reads() const;
  std::int64_t adc_saturations() const;
  /// Fraction of ADC reads that saturated (0 when nothing was read).
  double adc_saturation_rate() const;
  /// Clears the array stats and every per-tile ADC counter.
  void reset_stats();

  /// Program-time fault/repair statistics aggregated over all tiles
  /// (all zeros for a fault-free configuration).
  faults::ArrayFaultStats fault_stats() const;

  // --- runtime integrity (ABFT checksum columns) ---
  bool abft_enabled() const { return cfg_.abft_checksum; }
  /// Checksum statistics aggregated over all tiles since construction /
  /// reset_stats().
  AbftStats abft_stats() const;

  /// A permanent post-deployment device failure in logical weight
  /// coordinates (input dim k, output dim n).
  struct WearRecord {
    std::int64_t k = 0, n = 0;
    float value = 0.0f;
  };
  /// Transient single-event upset at logical (k, n): the device reads
  /// `value` until the next set_read_time re-derives the state.
  void upset_device(std::int64_t k, std::int64_t n, float value);
  /// Permanent wear at logical (k, n): survives re-reads and drift.
  /// Recorded so a refresh (which rebuilds the matmul on the same
  /// physical hardware) can replay it — reprogramming cannot fix broken
  /// silicon.
  void wear_stuck(std::int64_t k, std::int64_t n, float value);
  const std::vector<WearRecord>& wear() const { return wear_; }

 private:
  struct RowBlock {
    std::int64_t k0 = 0, k1 = 0;               // input-dim range
    std::vector<std::unique_ptr<AnalogTile>> tiles;  // one per column block
    std::vector<std::int64_t> col0;             // output-dim offsets
  };

  /// Everything one (token, row-block) work item produces besides its
  /// output slice: DAC/alpha/bound-management stats plus the per-tile
  /// runtime counters. Held privately per work item and folded into the
  /// shared state serially, in canonical (token, row-block) order, so
  /// the accumulated statistics are race-free AND bit-identical for any
  /// thread count.
  struct BlockWork {
    ArrayStats stats;
    std::vector<TileRunCounters> tiles;  // one per column-block tile
  };

  /// Run one (token, row-block, tile-range) work item: input rescale ->
  /// DAC -> non-idealities -> tile MVMs over tiles [ti0, ti1), with the
  /// bound-management retry loop inside. All randomness comes from
  /// streams keyed on (epoch, t, b, attempt, tile) with GLOBAL tile
  /// indices, so any partition of a block's tiles into work items draws
  /// identical bits. `y` is the block's full output row (width n_); the
  /// item touches only its owned tiles' column spans. `commit_dac` dedups
  /// the per-block DAC traffic counters when a block is split into
  /// several items (exactly one of them — tiles [0, x) — commits).
  /// Thread-safe for concurrent calls with distinct (t, b, tile-range).
  void run_work_item(std::size_t b, std::size_t ti0, std::size_t ti1,
                     bool commit_dac, std::uint64_t t,
                     std::span<const float> xrow, float avg_alpha_b,
                     std::uint64_t epoch, std::span<float> y,
                     BlockWork& work) const;

  /// Sharded execution of one token chunk [tc0, tc1): per-tile work
  /// items fan out over the plan's chip pools, then partial sums reduce
  /// through the canonical tree and statistics fold in (t, b, tile)
  /// order. Bit-identical for any plan.
  void run_chunk_sharded(const Matrix& x, std::span<const StreamKey> keys,
                         std::uint64_t epoch, std::int64_t tc0,
                         std::int64_t tc1, std::int64_t n_groups, Matrix& y);

  /// Shared body of both forward overloads; `keys` empty selects the
  /// legacy (epoch, row-index) keying.
  Matrix forward_impl(const Matrix& x, std::span<const StreamKey> keys);

  /// Resolve logical (k, n) to the owning tile and its local (col j,
  /// row k) coordinates. Throws std::invalid_argument when out of range.
  AnalogTile& locate(std::int64_t k, std::int64_t n, std::int64_t& j_local,
                     std::int64_t& k_local);

  TileConfig cfg_;
  std::string label_;
  std::int64_t k_ = 0, n_ = 0;
  std::vector<float> s_;
  std::vector<RowBlock> blocks_;
  noise::UniformQuantizer dac_;
  noise::SShapeNonlinearity sshape_;
  /// Root of all runtime noise streams; per-work-item streams are
  /// derived from it with derive_stream(stream_base_, epoch, t, ...).
  std::uint64_t stream_base_ = 0;
  /// Forward-call counter: successive forwards use fresh, decorrelated
  /// noise streams (the parallel analogue of an advancing sequential
  /// RNG state).
  std::uint64_t fwd_epoch_ = 0;
  ArrayStats stats_;
  std::vector<WearRecord> wear_;  // permanent post-deployment faults
  // forward_impl scratch, reused across calls (assign() keeps capacity)
  // so steady-state decode steps allocate nothing here. forward() was
  // never safe to call concurrently on one AnalogMatmul (fwd_epoch_,
  // stats_); these add no new restriction.
  std::vector<std::int64_t> group_of_;
  std::vector<float> avg_alpha_;
  std::vector<float> partial_;
  std::vector<BlockWork> works_;
  // multi-chip execution plan (see set_shard_plan) + per-chip item lists
  // (scratch, same reuse story as the buffers above)
  ShardPlan shard_;
  bool sharded_ = false;
  std::vector<std::vector<std::int64_t>> chip_items_;
};

}  // namespace nora::cim
