// A full analog matrix-multiply unit: a logical [K x N] weight matrix
// partitioned over a grid of physical tiles (paper Table II: 512x512),
// with the input path (rescale -> DAC -> non-idealities) and digital
// accumulation of per-tile partial sums.
//
// This is where NORA's rescale vector `s` (Eq. 6-8) plugs in:
//   - weights are programmed as  (w_kj * s_k) / gamma'_j
//   - inputs are streamed as      x_k / (alpha'_i * s_k)
// With all noise disabled the `s` terms cancel exactly and the unit
// computes x * W bit-for-bit (up to float rounding) — the core
// output-invariance property of the method, enforced by tests.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cim/analog_tile.hpp"
#include "cim/tile_config.hpp"
#include "faults/repair.hpp"
#include "noise/quantizer.hpp"
#include "noise/sshape.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace nora::cim {

struct ArrayStats {
  double alpha_sum = 0.0;          // sum of final per-(token, block) alphas
  std::int64_t alpha_count = 0;
  std::int64_t dac_samples = 0;
  std::int64_t dac_clipped = 0;    // |x/alpha/s| > 1 before quantization
  std::int64_t bm_retries = 0;     // bound-management re-runs

  double mean_alpha() const {
    return alpha_count > 0 ? alpha_sum / static_cast<double>(alpha_count) : 0.0;
  }
  double dac_clip_fraction() const {
    return dac_samples > 0
               ? static_cast<double>(dac_clipped) / static_cast<double>(dac_samples)
               : 0.0;
  }
};

class AnalogMatmul {
 public:
  /// w: logical weights [K x N] (input dim x output dim).
  /// s: NORA rescale vector of length K, or empty for the naive mapping
  ///    (equivalent to all-ones).
  AnalogMatmul(const Matrix& w, std::vector<float> s, const TileConfig& cfg,
               std::uint64_t seed);

  std::int64_t in_dim() const { return k_; }
  std::int64_t out_dim() const { return n_; }
  const TileConfig& config() const { return cfg_; }
  std::span<const float> s() const { return s_; }

  /// Label used in diagnostics/errors (typically the owning layer name).
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// x: [T x K] activations. Returns [T x N]. Consumes randomness from
  /// the internal stream (deterministic given construction seed and
  /// call sequence). Throws std::runtime_error naming the layer label,
  /// token and column if any output is NaN/Inf — non-finite values must
  /// not propagate silently into the rest of the transformer.
  Matrix forward(const Matrix& x);

  /// PCM drift: re-read all tiles t seconds after programming.
  void set_read_time(float t_seconds);

  // --- analytics for Fig. 6 ---
  /// Mean per-column gamma over all tiles.
  double mean_gamma() const;
  /// Running mean alpha over all forwards so far.
  double mean_alpha() const { return stats_.mean_alpha(); }
  /// mean(alpha) * mean(gamma) * g_max — the Fig. 6c quantity; smaller
  /// means larger output current into the ADC, i.e. higher SNR.
  double mean_alpha_gamma_gmax() const;

  const ArrayStats& stats() const { return stats_; }
  std::int64_t adc_reads() const;
  std::int64_t adc_saturations() const;
  /// Fraction of ADC reads that saturated (0 when nothing was read).
  double adc_saturation_rate() const;
  /// Clears the array stats and every per-tile ADC counter.
  void reset_stats();

  /// Program-time fault/repair statistics aggregated over all tiles
  /// (all zeros for a fault-free configuration).
  faults::ArrayFaultStats fault_stats() const;

  // --- runtime integrity (ABFT checksum columns) ---
  bool abft_enabled() const { return cfg_.abft_checksum; }
  /// Checksum statistics aggregated over all tiles since construction /
  /// reset_stats().
  AbftStats abft_stats() const;

  /// A permanent post-deployment device failure in logical weight
  /// coordinates (input dim k, output dim n).
  struct WearRecord {
    std::int64_t k = 0, n = 0;
    float value = 0.0f;
  };
  /// Transient single-event upset at logical (k, n): the device reads
  /// `value` until the next set_read_time re-derives the state.
  void upset_device(std::int64_t k, std::int64_t n, float value);
  /// Permanent wear at logical (k, n): survives re-reads and drift.
  /// Recorded so a refresh (which rebuilds the matmul on the same
  /// physical hardware) can replay it — reprogramming cannot fix broken
  /// silicon.
  void wear_stuck(std::int64_t k, std::int64_t n, float value);
  const std::vector<WearRecord>& wear() const { return wear_; }

 private:
  struct RowBlock {
    std::int64_t k0 = 0, k1 = 0;               // input-dim range
    std::vector<std::unique_ptr<AnalogTile>> tiles;  // one per column block
    std::vector<std::int64_t> col0;             // output-dim offsets
  };

  /// Run one (token, row-block) MVM attempt at the given alpha.
  /// Returns true if any ADC saturated.
  bool run_block(RowBlock& block, std::span<const float> x_s, float alpha,
                 std::span<float> y);

  /// Resolve logical (k, n) to the owning tile and its local (col j,
  /// row k) coordinates. Throws std::invalid_argument when out of range.
  AnalogTile& locate(std::int64_t k, std::int64_t n, std::int64_t& j_local,
                     std::int64_t& k_local);

  TileConfig cfg_;
  std::string label_;
  std::int64_t k_ = 0, n_ = 0;
  std::vector<float> s_;
  std::vector<RowBlock> blocks_;
  noise::UniformQuantizer dac_;
  noise::SShapeNonlinearity sshape_;
  util::Rng rng_;
  ArrayStats stats_;
  std::vector<WearRecord> wear_;  // permanent post-deployment faults
  std::vector<float> xs_buf_;    // x / s for the current token
  std::vector<float> xhat_buf_;  // post-DAC normalized inputs
};

}  // namespace nora::cim
