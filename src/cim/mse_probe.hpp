// Reference feature-map MSE probe — defines the noise *levels* of the
// paper's sensitivity sweeps.
//
// Fig. 3's x-axis is "the noise magnitude that causes a given MSE
// (1e-4 ... 2.8e-3) on a 4096x4096 feature map". We reproduce the
// protocol on a scaled reference workload (Gaussian X [T x K] with unit
// variance, Gaussian W [K x N] with variance 1/K, K = N = 256 by
// default): run the analog unit with a single non-ideality enabled and
// measure the MSE against the exact digital product. Combined with
// noise::MseCalibrator this inverts "parameter -> MSE" into
// "target MSE -> parameter", exactly as the paper's axis requires.
#pragma once

#include <cstdint>
#include <functional>

#include "cim/tile_config.hpp"

namespace nora::cim {

struct MseProbeOptions {
  std::int64_t k = 256;   // feature-map inner dim (paper: 4096, scaled down)
  std::int64_t n = 256;
  std::int64_t t = 32;    // number of probe vectors
  std::uint64_t seed = 0xfeedbeefULL;
  int repeats = 2;        // average stochastic noise over this many runs
};

/// MSE of the analog product under `cfg` vs the exact digital product.
double feature_map_mse(const TileConfig& cfg, const MseProbeOptions& opts = {});

/// Convenience: an MSE function over one noise knob, for MseCalibrator.
/// `make_cfg(param)` must return an otherwise-ideal TileConfig with the
/// knob of interest set to `param`.
std::function<double(double)> mse_of_knob(
    std::function<TileConfig(double)> make_cfg, MseProbeOptions opts = {});

}  // namespace nora::cim
