// A single physical analog CIM tile (paper Fig. 2a, Eq. 3-5).
//
// The tile stores one [rows x cols] slice of a (possibly rescaled) weight
// matrix as normalized conductances:
//
//   w_hat_kj = f_map(w_kj / gamma_j) + prog_noise,
//   gamma_j  = max_k |w_kj|            (per-column scale, Eq. 4/6)
//
// and executes one MVM per input vector:
//
//   y_j = alpha * gamma_j * f_adc( sum_k w_hat_kj x_hat_k + out_noise )
//
// where x_hat is the DAC-quantized, noise-perturbed, nonlinearity-
// distorted input produced by the owning tile array. All non-idealities
// are controlled by TileConfig; with everything disabled the tile
// reproduces the digital GEMV exactly (unit-tested).
#pragma once

#include <span>
#include <vector>

#include "cim/tile_config.hpp"
#include "faults/fault_model.hpp"
#include "faults/repair.hpp"
#include "noise/drift.hpp"
#include "noise/ir_drop.hpp"
#include "noise/programming.hpp"
#include "noise/quantizer.hpp"
#include "noise/read_noise.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace nora::cim {

/// Runtime ABFT checksum statistics of one tile (or aggregated over a
/// tile array). A "check" is one checksum-column read per MVM; a "flag"
/// is a residual beyond the noise-calibrated threshold.
struct AbftStats {
  std::int64_t checks = 0;
  std::int64_t flags = 0;
  double residual_abs_sum = 0.0;  // sum of |residual| (output units)
  double residual_max = 0.0;      // max |residual| seen
  double ratio_sum = 0.0;         // sum of |residual| / threshold

  double flag_rate() const {
    return checks > 0 ? static_cast<double>(flags) / static_cast<double>(checks)
                      : 0.0;
  }
  double mean_ratio() const {
    return checks > 0 ? ratio_sum / static_cast<double>(checks) : 0.0;
  }
  void accumulate(const AbftStats& o) {
    checks += o.checks;
    flags += o.flags;
    residual_abs_sum += o.residual_abs_sum;
    residual_max = residual_max > o.residual_max ? residual_max : o.residual_max;
    ratio_sum += o.ratio_sum;
  }
};

/// Per-work-item runtime counters of one tile MVM (ADC activity plus the
/// ABFT checksum record). The parallel forward accumulates these locally
/// per (token, row-block) work item and folds them into the owning tiles
/// in canonical work-item order afterwards, so the tile counters are both
/// race-free and bit-identical for any thread count.
struct TileRunCounters {
  std::int64_t adc_reads = 0;
  std::int64_t adc_saturations = 0;
  AbftStats abft;
};

/// Caller-owned scratch for the thread-safe mvm form. One MVM drains up
/// to two Gaussian draws per column (read noise + output noise); the
/// tile prefills them into `noise` with a single batched
/// Rng::gaussian_fill instead of 2*cols individual calls. The buffer
/// grows to the high-water mark on first use and is reused verbatim
/// afterwards, so a warmed-up scratch performs zero allocations per MVM.
struct TileMvmScratch {
  std::vector<double> noise;  // prefilled standard normals, drained per column
};

class AnalogTile {
 public:
  /// w_slice: logical weights [rows x cols] (any NORA rescale already
  /// folded in by the caller). Programming noise, drift exponents and
  /// the hard-fault map are sampled once here, at "program time"; the
  /// spare-column remap and program-verify-reprogram retry loop also run
  /// here, recording their work in fault_stats().
  AnalogTile(const Matrix& w_slice, const TileConfig& cfg, util::Rng rng);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::span<const float> gamma() const { return gamma_; }

  /// One analog MVM. x_hat: normalized inputs [rows] (post-DAC).
  /// x_hat_l2: L2 norm of x_hat (for the aggregated read-noise form).
  /// Accumulates alpha * gamma_j * adc(...) into y[j] (j in [0, cols)).
  /// Returns true if any ADC saturated (drives bound management).
  ///
  /// Thread-safe form: all mutable state is caller-owned — noise draws
  /// come from `rng` (and `abft_rng` for the checksum read; required
  /// when ABFT is enabled), counters accumulate into `counters`, and
  /// `scratch` provides the reusable noise-prefill buffer. Concurrent
  /// calls on the same tile are safe as long as each supplies its own
  /// arguments.
  bool mvm(std::span<const float> x_hat, float x_hat_l2, float alpha,
           std::span<float> y, util::Rng& rng, util::Rng* abft_rng,
           TileRunCounters& counters, TileMvmScratch& scratch) const;

  /// Sequential convenience form: draws the checksum read from the
  /// tile's own dedicated stream and updates the member counters
  /// directly. Not safe for concurrent calls on the same tile.
  bool mvm(std::span<const float> x_hat, float x_hat_l2, float alpha,
           std::span<float> y, util::Rng& rng);

  /// Fold one work item's counters into the tile (deterministic
  /// reduction step of the parallel forward).
  void add_run_counters(const TileRunCounters& c);

  /// Re-derive the effective conductances at read time t seconds after
  /// programming (PCM drift + global compensation). t = 0 restores the
  /// as-programmed state.
  void set_read_time(float t_seconds);

  /// ADC saturation statistics since construction or the last
  /// reset_stats() call.
  std::int64_t adc_reads() const { return adc_reads_; }
  std::int64_t adc_saturations() const { return adc_saturations_; }
  /// Zero the runtime (ADC) counters. Program-time fault/repair stats
  /// are immutable facts about the tile and are not cleared.
  void reset_stats();

  /// Program-time fault and repair record (all zeros for a fault-free
  /// configuration).
  const faults::TileRepairStats& fault_stats() const { return fault_stats_; }

  // --- runtime integrity (ABFT checksum column) ---
  bool abft_enabled() const { return cfg_.abft_checksum; }
  /// Checksum residual statistics since construction / reset_stats().
  const AbftStats& abft_stats() const { return abft_; }

  /// Transient single-event upset: overwrite the conductance currently
  /// read at logical (col j, row k). Cleared by the next set_read_time
  /// (an analog re-read re-derives the effective state).
  void upset_device(std::int64_t j, std::int64_t k, float value);
  /// Permanent wear: the physical device sticks at `value`. Survives
  /// re-reads and drift updates; only reconstructing the tile (a refresh
  /// onto healthy hardware) clears it — the runtime refresh path replays
  /// wear because reprogramming cannot fix broken silicon.
  void wear_stuck(std::int64_t j, std::int64_t k, float value);

 private:
  /// Force the stuck conductances of every mapped physical column.
  void force_faults(Matrix& w_hat_t) const;
  /// Re-apply recorded wear faults (after drift re-derives the state).
  void force_wear(Matrix& w_hat_t) const;
  /// Gamma-folded column-sum signature of the given conductances.
  std::vector<double> abft_signature(const Matrix& w_hat_t) const;
  /// One checksum-column read + comparison against the signature.
  void abft_check(std::span<const float> x_hat, float x_hat_l2, float alpha,
                  util::Rng& abft_rng, AbftStats& out) const;
  /// Effective read-noise std at the current read time (short-term
  /// cycle-to-cycle noise plus the slowly-growing 1/f drift component).
  float read_sigma() const;

  struct WearRecord {
    std::int64_t j = 0, k = 0;
    float value = 0.0f;
  };

  TileConfig cfg_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> gamma_;   // per-column scale
  Matrix w_hat_t_;             // programmed conductances, TRANSPOSED [cols x rows]
  Matrix w_hat_t_effective_;   // after drift at current read time
  Matrix drift_nu_t_;          // per-device drift exponents [cols x rows]
  noise::UniformQuantizer adc_;
  noise::ShortTermReadNoise read_noise_;
  noise::IrDropModel ir_drop_;
  noise::PcmDriftModel drift_;
  TileMvmScratch scratch_buf_;  // scratch for the sequential mvm form
  faults::FaultMap fault_map_;            // physical [cols + spares] x rows
  std::vector<std::int64_t> phys_col_;    // logical column -> physical column
  faults::TileRepairStats fault_stats_;
  std::int64_t adc_reads_ = 0;
  std::int64_t adc_saturations_ = 0;
  float read_time_s_ = 0.0f;          // current read time (drift clock)
  std::vector<WearRecord> wear_;      // permanent post-deployment faults
  // ABFT checksum column: as-programmed signature vs the signature of
  // the currently-read conductances, both in double so an unchanged tile
  // has a residual of exactly zero (no false positives by construction).
  std::vector<double> abft_ref_;
  std::vector<double> abft_eff_;
  float abft_gamma_ = 1.0f;           // checksum column's own gamma
  util::Rng abft_rng_;                // dedicated stream: data path untouched
  AbftStats abft_;
};

}  // namespace nora::cim
