// A single physical analog CIM tile (paper Fig. 2a, Eq. 3-5).
//
// The tile stores one [rows x cols] slice of a (possibly rescaled) weight
// matrix as normalized conductances:
//
//   w_hat_kj = f_map(w_kj / gamma_j) + prog_noise,
//   gamma_j  = max_k |w_kj|            (per-column scale, Eq. 4/6)
//
// and executes one MVM per input vector:
//
//   y_j = alpha * gamma_j * f_adc( sum_k w_hat_kj x_hat_k + out_noise )
//
// where x_hat is the DAC-quantized, noise-perturbed, nonlinearity-
// distorted input produced by the owning tile array. All non-idealities
// are controlled by TileConfig; with everything disabled the tile
// reproduces the digital GEMV exactly (unit-tested).
#pragma once

#include <span>
#include <vector>

#include "cim/tile_config.hpp"
#include "faults/fault_model.hpp"
#include "faults/repair.hpp"
#include "noise/drift.hpp"
#include "noise/ir_drop.hpp"
#include "noise/programming.hpp"
#include "noise/quantizer.hpp"
#include "noise/read_noise.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace nora::cim {

class AnalogTile {
 public:
  /// w_slice: logical weights [rows x cols] (any NORA rescale already
  /// folded in by the caller). Programming noise, drift exponents and
  /// the hard-fault map are sampled once here, at "program time"; the
  /// spare-column remap and program-verify-reprogram retry loop also run
  /// here, recording their work in fault_stats().
  AnalogTile(const Matrix& w_slice, const TileConfig& cfg, util::Rng rng);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::span<const float> gamma() const { return gamma_; }

  /// One analog MVM. x_hat: normalized inputs [rows] (post-DAC).
  /// x_hat_l2: L2 norm of x_hat (for the aggregated read-noise form).
  /// Accumulates alpha * gamma_j * adc(...) into y[j] (j in [0, cols)).
  /// Returns true if any ADC saturated (drives bound management).
  bool mvm(std::span<const float> x_hat, float x_hat_l2, float alpha,
           std::span<float> y, util::Rng& rng);

  /// Re-derive the effective conductances at read time t seconds after
  /// programming (PCM drift + global compensation). t = 0 restores the
  /// as-programmed state.
  void set_read_time(float t_seconds);

  /// ADC saturation statistics since construction or the last
  /// reset_stats() call.
  std::int64_t adc_reads() const { return adc_reads_; }
  std::int64_t adc_saturations() const { return adc_saturations_; }
  /// Zero the runtime (ADC) counters. Program-time fault/repair stats
  /// are immutable facts about the tile and are not cleared.
  void reset_stats();

  /// Program-time fault and repair record (all zeros for a fault-free
  /// configuration).
  const faults::TileRepairStats& fault_stats() const { return fault_stats_; }

 private:
  /// Force the stuck conductances of every mapped physical column.
  void force_faults(Matrix& w_hat_t) const;

  TileConfig cfg_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> gamma_;   // per-column scale
  Matrix w_hat_t_;             // programmed conductances, TRANSPOSED [cols x rows]
  Matrix w_hat_t_effective_;   // after drift at current read time
  Matrix drift_nu_t_;          // per-device drift exponents [cols x rows]
  noise::UniformQuantizer adc_;
  noise::ShortTermReadNoise read_noise_;
  noise::IrDropModel ir_drop_;
  noise::PcmDriftModel drift_;
  std::vector<float> contrib_buf_;  // per-row contributions (IR-drop path)
  faults::FaultMap fault_map_;            // physical [cols + spares] x rows
  std::vector<std::int64_t> phys_col_;    // logical column -> physical column
  faults::TileRepairStats fault_stats_;
  std::int64_t adc_reads_ = 0;
  std::int64_t adc_saturations_ = 0;
};

}  // namespace nora::cim
